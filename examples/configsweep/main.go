// Configuration sweep: generate one synthetic translation unit and solve
// its constraint graph under a spread of the paper's solver
// configurations, validating that all of them produce the identical
// solution and comparing their runtime and explicit-pointee counts
// (a single-file miniature of Tables V and VI).
package main

import (
	"fmt"
	"log"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/workload"
)

func main() {
	// One mid-sized file from the synthetic gdb suite.
	files := workload.GenerateSuite(workload.Suites[10],
		workload.Options{Seed: 42, Scale: 0.004, SizeScale: 1})
	module := files[0].Module
	fmt.Printf("workload: %s (%d IR instructions)\n\n", files[0].Name, module.NumInstrs())

	configs := []string{
		"EP+Naive",
		"EP+WL(FIFO)",
		"EP+OVS+WL(LRF)+OCD",
		"IP+Naive",
		"IP+WL(FIFO)",
		"IP+WL(LIFO)",
		"IP+WL(LRF)",
		"IP+WL(2LRF)",
		"IP+WL(TOPO)",
		"IP+WL(FIFO)+LCD+DP",
		"IP+WL(FIFO)+HCD",
		"IP+OVS+WL(FIFO)",
		"IP+WL(FIFO)+PIP",
		"IP+OVS+WL(FIFO)+LCD+DP+PIP",
		"IP+Wave",
		"IP+Wave+PIP",
	}

	fmt.Printf("%-30s %12s %10s %8s %8s\n", "configuration", "time", "pointees", "visits", "unions")
	var baseline string
	for _, name := range configs {
		cfg, err := pip.ParseConfig(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pip.Analyze(module, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats()
		fmt.Printf("%-30s %12v %10d %8d %8d\n", name, st.Duration, st.ExplicitPointees, st.Visits, st.Unifications)

		dump := res.Dump()
		if baseline == "" {
			baseline = dump
		} else if dump != baseline {
			log.Fatalf("configuration %s produced a different solution!", name)
		}
	}
	fmt.Println("\nall configurations produced the identical solution (the paper's validation step).")
}
