// Incomplete-program soundness demo: a small "registry" library module
// with an exported API. The analysis must assume external modules call the
// exported functions with arbitrary pointers and read/write every exported
// object — yet it proves that the module-private freelist never escapes,
// which is exactly the precision a compiler needs to optimize the private
// parts of a translation unit.
package main

import (
	"fmt"
	"log"

	"github.com/pip-analysis/pip"
)

const registryC = `
extern void *malloc(long n);
extern void free(void *p);
extern void audit_log(void *entry);   /* unknown external sink */

struct entry {
    int id;
    void *payload;
    struct entry *next;
};

/* Exported head: external modules may traverse and even rewrite it. */
struct entry *registry;

/* Private freelist: never handed out, never escapes. */
static struct entry *freelist;

static struct entry *alloc_entry() {
    struct entry *e;
    if (freelist != NULL) {
        e = freelist;
        freelist = e->next;
        return e;
    }
    return (struct entry*)malloc(sizeof(struct entry));
}

void registry_add(int id, void *payload) {
    struct entry *e = alloc_entry();
    e->id = id;
    e->payload = payload;
    e->next = registry;
    registry = e;
    audit_log(e);                     /* e escapes here */
}

void registry_recycle() {
    struct entry *e = registry;
    registry = NULL;
    while (e != NULL) {
        struct entry *next = e->next;
        e->next = freelist;
        freelist = e;
        e = next;
    }
}
`

func main() {
	res, err := pip.AnalyzeC("registry.c", registryC, pip.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("registry.c — what the incomplete-program analysis knows:")
	fmt.Println()

	fmt.Println("externally accessible objects (conservatively escaped):")
	for _, obj := range res.ExternallyAccessible() {
		fmt.Printf("  %s\n", obj)
	}

	// The exported registry head may be overwritten by external modules,
	// so it must carry unknown-origin pointees.
	ext, err := res.PointsToExternal("registry")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregistry may hold pointers of unknown origin: %v (required for soundness)\n", ext)

	// The freelist is static and, despite sharing entry objects with the
	// exported list, external code can also reach those same entries —
	// show what the analysis concludes either way.
	targets, extFree, err := res.PointsTo("freelist")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("freelist -> %v external=%v\n", targets, extFree)

	// Every heap entry passed to audit_log escapes; verify via the dump.
	fmt.Println("\nfull solution:")
	fmt.Print(res.Dump())
}
