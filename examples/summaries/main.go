// Summary-function demo (paper Section III-B): imported library functions
// are normally treated with the maximally conservative constraint — their
// arguments escape and their results have unknown origins. Handwritten
// summaries recover precision for well-understood functions: the same file
// analyzed with and without a summary for strchr shows the difference.
package main

import (
	"fmt"
	"log"

	"github.com/pip-analysis/pip"
)

const searchC = `
extern char *strchr(char *s, int c);

static char scratch[128];
static char *slash;            /* module-private cache */

void scan() {
    slash = strchr(scratch, '/');
}
`

func main() {
	m, err := pip.CompileC("search.c", searchC)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, res *pip.Result) {
		targets, external, err := res.PointsTo("slash")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s slash -> %v external=%v\n", label, targets, external)
		esc, _ := res.Escaped("scratch")
		fmt.Printf("%-18s scratch escaped: %v\n\n", "", esc)
	}

	// Without a summary: strchr is a black box. scratch escapes, and the
	// result may be any externally accessible pointer.
	plain, err := pip.Analyze(m, pip.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	show("generic import:", plain)

	// With a summary — "returns a pointer into its first argument" — the
	// result is exactly the scratch buffer and nothing escapes.
	m2, _ := pip.CompileC("search.c", searchC)
	summarized, err := pip.AnalyzeWithSummaries(m2, pip.DefaultConfig(),
		map[string]pip.Summary{
			"strchr": {RetAliasesArgs: []int{0}},
		})
	if err != nil {
		log.Fatal(err)
	}
	show("with summary:", summarized)
}
