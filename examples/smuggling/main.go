// Pointer-smuggling soundness demo (paper Section III-C): pointers can be
// converted to integers and back — directly via casts, or indirectly by
// storing a pointer and reloading its bytes as a scalar ("pointer
// smuggling"). The analysis stays sound under the PNVI-ae-udi provenance
// model by treating every exposed pointee as externally accessible, while
// unexposed private objects stay private.
package main

import (
	"fmt"
	"log"

	"github.com/pip-analysis/pip"
)

const smuggleC = `
static int exposed_target;
static int hidden_target;
static int *keeper;          /* holds &hidden_target, never exposed */

long expose() {
    int *p = &exposed_target;
    return (long)p;              /* address exposed: Ω ⊒ p */
}

int *recreate(long addr) {
    int *back = (int*)addr;      /* unknown origin: back ⊒ Ω */
    return back;
}

long smuggle() {
    int *boxed[1];
    boxed[0] = &exposed_target;
    long *raw = (long*)boxed;    /* type-punned view of the box */
    return raw[0];               /* loading a pointer as a scalar */
}

static void keep_private() {
    keeper = &hidden_target;     /* taken, stored, but never exposed as
                                    an integer and never handed out */
}
`

func main() {
	res, err := pip.AnalyzeC("smuggle.c", smuggleC, pip.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	for _, g := range []string{"exposed_target", "hidden_target"} {
		esc, err := res.Escaped(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s externally accessible: %v\n", g, esc)
	}

	targets, external, err := res.PointsTo("recreate.back")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecreate.back -> %v external=%v\n", targets, external)
	fmt.Println("\nA recreated pointer may target any exposed object (here: exposed_target),")
	fmt.Println("but never hidden_target, whose address was never exposed as an integer.")
	fmt.Println("\nfull solution:")
	fmt.Print(res.Dump())
}
