// Call-graph and mod/ref demo: two of the compiler clients the paper's
// introduction motivates. A plugin-style dispatcher resolves its indirect
// calls through the points-to solution; the mod/ref summaries then tell an
// optimizer which globals each entry point can touch — including the
// conservative effects of external code, since the module is incomplete.
package main

import (
	"fmt"
	"log"

	"github.com/pip-analysis/pip"
)

const pluginC = `
extern void register_external(void *cb);

static int stat_hits, stat_misses, config_level;

static void on_hit() { stat_hits = stat_hits + 1; }
static void on_miss() { stat_misses = stat_misses + 1; }

static void (*handlers[2])();

void setup() {
    handlers[0] = on_hit;
    handlers[1] = on_miss;
    register_external(on_miss);    /* on_miss escapes! */
}

void dispatch(int which) {
    handlers[which]();
}

int get_level() {
    return config_level;
}
`

func main() {
	res, err := pip.AnalyzeC("plugin.c", pluginC, pip.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	cg := res.CallGraph()
	fmt.Println("call graph (Graphviz):")
	fmt.Println(cg.DOT())

	dispatch := res.Module.Func("dispatch")
	callees, external := cg.Callees(dispatch)
	fmt.Print("dispatch may call:")
	for _, f := range callees {
		fmt.Printf(" %s", f.FName)
	}
	if external {
		fmt.Print(" <external>")
	}
	fmt.Println()

	mr := res.ModRef(cg)
	for _, query := range []struct{ fn, global string }{
		{"dispatch", "stat_hits"},
		{"dispatch", "config_level"},
		{"get_level", "stat_hits"},
	} {
		may, err := res.FunctionMayModify(mr, query.fn, query.global)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("may %s modify %s?  %v\n", query.fn, query.global, may)
	}
	fmt.Println("\nmod/ref summaries:")
	fmt.Print(mr.Report())
}
