// Optimizer demo: the compiler transformations the paper's introduction
// motivates, driven by the sound points-to analysis. A loop body reloads a
// pointer-indirected value; BasicAA alone cannot prove the reload
// redundant, but the points-to sets separate the two heap objects, and the
// interprocedural mod/ref summaries let the elimination survive even
// across a helper call.
package main

import (
	"fmt"
	"log"

	"github.com/pip-analysis/pip"
)

const kernelC = `
extern void *malloc(long);

static long *weights;
static long *biases;
static long stat_applies;

static void note() { stat_applies = stat_applies + 1; }

void setup(int n) {
    weights = (long*)malloc(sizeof(long) * n);
    biases = (long*)malloc(sizeof(long) * n);
}

long apply(int n) {
    long *w = weights;
    long *b = biases;
    long acc = 0;
    int i;
    for (i = 0; i < n; i++) {
        acc += w[i] * 3;
        b[i] = acc;        /* cannot touch w: distinct heap objects */
        acc += w[i];       /* reload eliminable */
        note();            /* touches only stat_applies */
    }
    return acc;
}
`

func main() {
	res, err := pip.AnalyzeC("kernel.c", kernelC, pip.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	before := countLoads(res)
	stats, err := res.OptimizeInterprocedural()
	if err != nil {
		log.Fatal(err)
	}
	after := countLoads(res)
	fmt.Printf("loads: %d -> %d (eliminated %d), dead stores removed: %d\n",
		before, after, stats.LoadsEliminated, stats.StoresEliminated)
	fmt.Println("\noptimized MIR:")
	fmt.Print(pip.PrintIR(res.Module))
}

func countLoads(res *pip.Result) int {
	n := 0
	text := pip.PrintIR(res.Module)
	for i := 0; i+6 < len(text); i++ {
		if text[i:i+6] == " load " {
			n++
		}
	}
	return n
}
