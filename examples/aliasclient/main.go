// Alias-client demo (the paper's Figure 9 setup on one file): compile a
// realistic C routine, then compare the MayAlias rates of the local
// BasicAA-style analysis, the sound Andersen analysis, and their
// combination. The two image planes live in distinct static globals and
// come from distinct heap allocation sites: BasicAA cannot track pointers
// through memory, but the points-to analysis proves the planes disjoint.
package main

import (
	"fmt"
	"log"

	"github.com/pip-analysis/pip"
)

const imageC = `
extern void *malloc(long n);

static float *pixels;   /* plane 1: private to this module */
static float *mask;     /* plane 2: private to this module */

void setup(int w, int h) {
    pixels = (float*)malloc(sizeof(float) * w * h);
    mask = (float*)malloc(sizeof(float) * w * h);
}

/* Apply the mask in place. px and mk are loaded back from memory, which
   defeats a local IR-walking analysis, but the points-to sets name the two
   distinct allocation sites. */
void apply_mask(int n) {
    float *px = pixels;
    float *mk = mask;
    int i;
    for (i = 0; i < n; i = i + 1) {
        px[i] = px[i] * mk[i];
    }
}
`

func main() {
	res, err := pip.AnalyzeC("image.c", imageC, pip.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	aa := res.AliasAnalysis()

	fmt.Println("image.c — intra-procedural store×(load ∪ store) conflict rates:")
	fmt.Printf("  %-18s %5.1f%% MayAlias\n", "BasicAA", 100*res.MayAliasRate(aa.Basic))
	fmt.Printf("  %-18s %5.1f%% MayAlias\n", "Andersen", 100*res.MayAliasRate(aa.Andersen))
	fmt.Printf("  %-18s %5.1f%% MayAlias\n", "Andersen+BasicAA", 100*res.MayAliasRate(aa.Combined))

	// The headline query: does writing px[i] disturb mk[i]?
	px, pxExt, err := res.PointsTo("apply_mask.px")
	if err != nil {
		log.Fatal(err)
	}
	mk, mkExt, _ := res.PointsTo("apply_mask.mk")
	fmt.Printf("\npx -> %v external=%v\nmk -> %v external=%v\n", px, pxExt, mk, mkExt)
	fmt.Println("\ndistinct heap allocation sites -> the masked multiply can be vectorized.")
}
