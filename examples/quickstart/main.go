// Quickstart: analyze the paper's Figure 1 program and reproduce the
// introduction's claims — p, q, and r may point to x, z, or external
// memory, but never to the module-private y; only r may point to the
// local w, and w never escapes.
package main

import (
	"fmt"
	"log"

	"github.com/pip-analysis/pip"
)

const figure1 = `
static int x, y;
int z;
extern int* getPtr();

int* p = &x;

void callMe(int* q) {
    int w;
    int* r = getPtr();
    if (r == NULL)
        r = &w;
}
`

func main() {
	res, err := pip.AnalyzeC("figure1.c", figure1, pip.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 analysis (incomplete program, sound solution):")
	for _, name := range []string{"p", "callMe.q", "callMe.r"} {
		targets, external, err := res.PointsTo(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s -> %v", name, targets)
		if external {
			fmt.Print(" + <any external memory>")
		}
		fmt.Println()
	}

	fmt.Println("\nexternally accessible objects:")
	for _, obj := range res.ExternallyAccessible() {
		fmt.Printf("  %s\n", obj)
	}

	for _, g := range []string{"y"} {
		esc, err := res.Escaped(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nstatic %s escaped: %v (the analysis keeps module-private state private)\n", g, esc)
	}
	fmt.Printf("\nsolver: %v with configuration %s\n", res.Stats().Duration, pip.DefaultConfig())
}
