# Build/test/benchmark entry points. The race and smoke targets are part
# of the engine's verification story (see README "Parallel batch-analysis
# engine"): test-race is the dedicated data-race target over the
# concurrent engine and the solver core; bench-smoke is the checked-in
# small-corpus engine pass that verifies the parallel path is
# solution-identical to the sequential one and reports the wall-clock
# speedup.

GO ?= go

.PHONY: build test test-race bench-smoke bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) run ./cmd/pipbench -scale 0.04 -sizescale 0.12 -reps 1 -run smoke

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
