# Build/test/benchmark entry points. The race and smoke targets are part
# of the engine's verification story (see README "Parallel batch-analysis
# engine"): test-race is the dedicated data-race target over the
# concurrent engine and the solver core; bench-smoke is the checked-in
# small-corpus engine pass that verifies the parallel path is
# solution-identical to the sequential one and reports the wall-clock
# speedup.

GO ?= go

.PHONY: build test test-race fmt-check bench-smoke serve-smoke bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench-smoke:
	$(GO) run ./cmd/pipbench -scale 0.04 -sizescale 0.12 -reps 1 -run smoke

# End-to-end check of the analysis service: ephemeral port, one real
# HTTP solve + healthz + metrics, graceful drain.
serve-smoke:
	$(GO) run ./cmd/pipserve -smoke

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
