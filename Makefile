# Build/test/benchmark entry points. The race and smoke targets are part
# of the engine's verification story (see README "Parallel batch-analysis
# engine"): test-race is the dedicated data-race target over the
# concurrent engine and the solver core; bench-smoke is the checked-in
# small-corpus engine pass that verifies the parallel path is
# solution-identical to the sequential one and reports the wall-clock
# speedup.

GO ?= go

.PHONY: build test test-race fmt-check bench-smoke bench-snapshot store-snapshot serve-smoke router-smoke chaos router-chaos membership-chaos differential incremental-differential fuzz staticcheck bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench-smoke:
	$(GO) run ./cmd/pipbench -scale 0.04 -sizescale 0.12 -reps 1 -run smoke

# Machine-readable solver-effort snapshot (per-configuration solve wall,
# rule firings, worklist peak); CI archives the same shape as
# BENCH_PR4.json.
bench-snapshot:
	$(GO) run ./cmd/pipbench -scale 0.02 -sizescale 0.1 -maxinstrs 4000 -reps 1 -run headline -json results/BENCH_PR4.json

# End-to-end check of the analysis service: ephemeral port, one real
# HTTP solve + healthz + a validated Prometheus /metrics scrape +
# legacy JSON metrics + a traced request round-tripped through
# /debug/trace?id= and /debug/flightrec, graceful drain.
serve-smoke:
	$(GO) run ./cmd/pipserve -smoke

# Same, for router mode: an in-process solving backend is spun up and
# one traced solve is pushed through the full consistent-hash forward
# path, then the router's /metrics exposition and the merged cluster
# trace from /debug/trace?id= (router + backend spans under one
# X-Trace-Id) are validated.
router-smoke:
	$(GO) run ./cmd/pipserve -router -smoke

# Warm-restart measurement: the corpus solved cold with a persistent
# store attached, then re-answered by a fresh engine over the same
# directory — every warm answer a fingerprint-verified disk hit with
# zero rule firings (the run panics otherwise). CI archives the same
# shape as BENCH_PR8.json.
store-snapshot:
	$(GO) run ./cmd/pipbench -scale 0.02 -sizescale 0.1 -maxinstrs 4000 -reps 1 -run store,headline -json results/BENCH_PR8.json

# Fault-injection invariant suite under the race detector: every
# injection point armed at >= 1%, pinned seed (override with
# PIP_CHAOS_SEED). Asserts no admitted request is dropped, every answer
# is exact or the sound Ω-degradation, and the cache never serves a
# corrupted entry. See the "Fault model & resilience" section of
# DESIGN.md.
chaos:
	$(GO) test -race -v ./internal/chaos/ ./internal/faults/

# The PR-8 slice of the suite under its own pinned seed (override with
# PIP_CHAOS_SEED3): kill a live shard behind the router mid-load with
# injected forward faults, and hammer the persistent store with save
# errors and load bit-flips across restarts. The kill-shard run asserts
# the flight recorder dumps a breaker.open naming the killed backend;
# set PIP_CHAOS_DUMPDIR to keep the dump files (CI uploads them as
# artifacts on failure).
router-chaos:
	$(GO) test -race -v -run 'TestChaosRouterKillShard|TestChaosStoreFaults' ./internal/chaos/

# The PR-10 membership-churn scenario under its own pinned seed
# (override with PIP_CHAOS_SEED4): a cluster under concurrent load has a
# backend drained via the admin surface, a fresh one joined, the drained
# one removed, and a live one killed for the health prober to discover —
# with forward faults injected and hedged forwards racing the slow tail.
# Asserts zero dropped requests, bit-exact non-degraded answers, a
# monotone ring generation, a membership.change flight dump on disk, and
# hedge volume inside its token-bucket budget. PIP_CHAOS_DUMPDIR keeps
# the dump files for CI artifact upload on failure.
membership-chaos:
	$(GO) test -race -v -run TestChaosMembershipChurn ./internal/chaos/

# Differential correctness gate for intra-solve parallelism: sweeps
# generator-driven problems across a worker-count × configuration ×
# firing-cap matrix and asserts bit-identical fingerprints and identical
# degrade decisions for every worker count >= 1 (and canonical equality
# against the sequential solver when unbudgeted). Set PIP_SOLVE_WORKERS
# to pin the parallel arm (CI runs {1,8}); unset sweeps {1,2,4,8}.
differential:
	$(GO) test -race -run Differential -v ./internal/core/differential/

# Short bounded fuzz pass over the stratified-presaturation plan and its
# differential oracle (plus the existing engine/frontend/IR targets'
# seed corpora via plain `make test`). Go's fuzzer allows one fuzz
# target per invocation, so each runs separately. Override FUZZTIME for
# longer campaigns.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzStrataDifferential -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzStrataPlan -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzEngineRecovery -fuzztime=$(FUZZTIME) ./internal/engine/
	$(GO) test -run=^$$ -fuzz=FuzzIncrementalEdit -fuzztime=$(FUZZTIME) ./internal/core/differential/
	$(GO) test -run=^$$ -fuzz=FuzzDemandSlice -fuzztime=$(FUZZTIME) ./internal/core/differential/

# Edit-script differential gate for incremental re-solving plus the
# demand-vs-exhaustive oracle, under the race detector (the CI
# incremental-differential job). Set PIP_SOLVE_WORKERS to pin the
# parallel arm like the `differential` target.
incremental-differential:
	$(GO) test -race -run 'Incremental|Demand|Summary' -v \
		./internal/core/ ./internal/core/differential/ ./internal/core/incr/ ./internal/engine/

# Lint beyond go vet; CI installs the tool, it is not a module
# dependency.
staticcheck:
	staticcheck ./...

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
