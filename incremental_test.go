package pip

import (
	"strings"
	"testing"
)

// figure1CEdit is figure1C with one appended function: a monotone edit
// from the constraint set's point of view.
const figure1CEdit = figure1C + `
void alsoExported(int* s) {
    int* t = s;
}
`

func TestSessionIncrementalAnalyze(t *testing.T) {
	cfg := MustParseConfig("IP+WL(FIFO)")
	eng := NewEngine(BatchOptions{Workers: 2})
	sess := eng.NewSession(cfg)
	if sess.Generation() != -1 {
		t.Fatalf("fresh session generation = %d, want -1", sess.Generation())
	}

	m0, err := CompileC("figure1.c", figure1C)
	if err != nil {
		t.Fatal(err)
	}
	r0 := sess.Analyze(m0)
	if r0.Err != nil {
		t.Fatal(r0.Err)
	}
	if r0.Incremental == nil || r0.Incremental.Generation != 0 {
		t.Fatalf("generation 0 stats: %+v", r0.Incremental)
	}
	if sess.Generation() != 0 {
		t.Fatalf("session generation = %d, want 0", sess.Generation())
	}

	// Identical source re-analyzed: empty delta, solution reused.
	m1, err := CompileC("figure1.c", figure1C)
	if err != nil {
		t.Fatal(err)
	}
	r1 := sess.Analyze(m1)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	if !r1.Incremental.ReusedSolution {
		t.Fatalf("identical source should reuse the solution: %+v", r1.Incremental)
	}
	// The reused result still answers queries against the resubmission.
	if ext, err := r1.Result.PointsToExternal("callMe.q"); err != nil || !ext {
		t.Fatalf("reused result query: ext=%v err=%v", ext, err)
	}

	// Edited source: the analysis answers exactly like a from-scratch run.
	m2, err := CompileC("figure1.c", figure1CEdit)
	if err != nil {
		t.Fatal(err)
	}
	r2 := sess.Analyze(m2)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if r2.Incremental == nil || r2.Incremental.ReusedSolution {
		t.Fatalf("edit should re-solve: %+v", r2.Incremental)
	}
	ref, err := Analyze(m2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"p", "callMe.q", "alsoExported.s"} {
		got, gotExt, err := r2.Result.PointsTo(name)
		if err != nil {
			t.Fatal(err)
		}
		want, wantExt, err := ref.PointsTo(name)
		if err != nil {
			t.Fatal(err)
		}
		if gotExt != wantExt || strings.Join(got, " ") != strings.Join(want, " ") {
			t.Fatalf("%s: incremental %v/%v want %v/%v", name, got, gotExt, want, wantExt)
		}
	}
	if sess.Generation() != 2 {
		t.Fatalf("session generation = %d, want 2", sess.Generation())
	}
	if st := eng.Stats(); st.Incremental != 3 {
		t.Fatalf("engine incremental counter = %d, want 3", st.Incremental)
	}
}

func TestAnalyzeDemandAPI(t *testing.T) {
	cfg := DefaultConfig()
	eng := NewEngine(BatchOptions{Workers: 1})
	m, err := CompileC("figure1.c", figure1C)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.AnalyzeDemand(m, cfg, nil, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Demand == nil {
		t.Fatal("demand analysis should report DemandStats")
	}
	if res.Demand.ExploredVars == 0 || res.Demand.ExploredVars > res.Demand.TotalVars {
		t.Fatalf("implausible demand stats: %+v", res.Demand)
	}
	// The explored root's answer is exact on the external flag and a sound
	// superset on named targets (unexplored variables soundly join the
	// escaped set, which PointsTo folds into Ω-tainted answers).
	ref, err := Analyze(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, gotExt, err := res.Result.PointsTo("p")
	if err != nil {
		t.Fatal(err)
	}
	want, wantExt, err := ref.PointsTo("p")
	if err != nil {
		t.Fatal(err)
	}
	if gotExt != wantExt {
		t.Fatalf("demand PointsTo(p) external = %v want %v", gotExt, wantExt)
	}
	gotSet := map[string]bool{}
	for _, x := range got {
		gotSet[x] = true
	}
	for _, x := range want {
		if !gotSet[x] {
			t.Fatalf("demand PointsTo(p) = %v missing exhaustive target %s", got, x)
		}
	}
	if extP, err := res.Result.PointsToExternal("p"); err != nil || extP != wantExt {
		t.Fatalf("demand PointsToExternal(p) = %v, %v; want %v", extP, err, wantExt)
	}
	if st := eng.Stats(); st.Demand != 1 {
		t.Fatalf("engine demand counter = %d, want 1", st.Demand)
	}

	// Unknown root names are reported, not solved around.
	if _, err := eng.AnalyzeDemand(m, cfg, nil, []string{"nosuch"}); err == nil {
		t.Fatal("unknown demand root should error")
	}
}
