package pip_test

import (
	"fmt"
	"log"

	"github.com/pip-analysis/pip"
)

// The paper's Figure 1: a sound points-to solution for an incomplete
// program. p may point to x, z, or external memory — never to the
// module-private y.
func ExampleAnalyzeC() {
	res, err := pip.AnalyzeC("figure1.c", `
		static int x, y;
		int z;
		extern int* getPtr();
		int* p = &x;
		void callMe(int* q) {
			int w;
			int* r = getPtr();
			if (r == NULL) r = &w;
		}
	`, pip.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	targets, external, _ := res.PointsTo("p")
	fmt.Println(targets, external)
	escaped, _ := res.Escaped("y")
	fmt.Println("y escaped:", escaped)
	// Output:
	// [@callMe @getPtr @p @x @z] true
	// y escaped: false
}

// Solver configurations use the paper's notation and all produce the same
// solution.
func ExampleParseConfig() {
	for _, name := range []string{"IP+WL(FIFO)+PIP", "EP+OVS+WL(LRF)+OCD"} {
		cfg, err := pip.ParseConfig(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cfg)
	}
	// Output:
	// IP+WL(FIFO)+PIP
	// EP+OVS+WL(LRF)+OCD
}

// Handwritten summaries (paper Section III-B) replace the conservative
// treatment of well-known library functions.
func ExampleAnalyzeWithSummaries() {
	m, err := pip.CompileC("dup.c", `
		extern char *strchr(char *s, int c);
		static char buf[16];
		static char *hit;
		void scan() { hit = strchr(buf, 47); }
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pip.AnalyzeWithSummaries(m, pip.DefaultConfig(), map[string]pip.Summary{
		"strchr": {RetAliasesArgs: []int{0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	targets, external, _ := res.PointsTo("hit")
	fmt.Println(targets, external)
	// Output:
	// [@buf] false
}

// The call graph resolves indirect calls through points-to sets.
func ExampleResult_CallGraph() {
	res, err := pip.AnalyzeC("d.c", `
		static int inc(int v) { return v + 1; }
		static int dec(int v) { return v - 1; }
		static int (*ops[2])(int) = { inc, dec };
		int run(int i, int v) { return ops[i](v); }
	`, pip.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cg := res.CallGraph()
	callees, external := cg.Callees(res.Module.Func("run"))
	for _, f := range callees {
		fmt.Println(f.FName)
	}
	fmt.Println("may call external code:", external)
	// Output:
	// dec
	// inc
	// may call external code: false
}
