package pip

import (
	"fmt"
	"strings"
	"testing"
)

// batchSources builds n small distinct mini-C modules.
func batchModules(t *testing.T, n int) []*Module {
	t.Helper()
	mods := make([]*Module, n)
	for i := range mods {
		src := fmt.Sprintf(`
static int a%d, b%d;
int *shared%d;
extern int *fetch%d(int *p);
int *get%d() {
    shared%d = &a%d;
    return fetch%d(&b%d);
}
`, i, i, i, i, i, i, i, i, i)
		m, err := CompileC(fmt.Sprintf("m%d.c", i), src)
		if err != nil {
			t.Fatal(err)
		}
		mods[i] = m
	}
	return mods
}

// TestAnalyzeBatchMatchesAnalyze: the batch facade must return, per module
// and in input order, exactly what the one-at-a-time path returns.
func TestAnalyzeBatchMatchesAnalyze(t *testing.T) {
	mods := batchModules(t, 10)
	cfg := DefaultConfig()
	batch := AnalyzeBatch(mods, cfg, BatchOptions{Workers: 4})
	if len(batch) != len(mods) {
		t.Fatalf("got %d results for %d modules", len(batch), len(mods))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("module %d: %v", i, br.Err)
		}
		want, err := Analyze(mods[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		if br.Result.Dump() != want.Dump() {
			t.Fatalf("module %d: batch solution differs from Analyze:\n%s\nvs\n%s",
				i, br.Result.Dump(), want.Dump())
		}
		// Queries work on batch results like on single results.
		name := fmt.Sprintf("get%d.$ret", i)
		gotExt, err := br.Result.PointsToExternal(name)
		if err != nil {
			t.Fatal(err)
		}
		if !gotExt {
			t.Fatalf("module %d: %s should point to external memory", i, name)
		}
	}
}

// TestAnalyzeBatchCache: identical module contents share one solve.
func TestAnalyzeBatchCache(t *testing.T) {
	m, err := CompileC("dup.c", `int *p; int *get() { return p; }`)
	if err != nil {
		t.Fatal(err)
	}
	mods := []*Module{m, m, m, m}
	batch := AnalyzeBatch(mods, DefaultConfig(), BatchOptions{Workers: 1, Cache: true})
	hits := 0
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("module %d: %v", i, br.Err)
		}
		if br.CacheHit {
			hits++
		}
	}
	if hits != len(mods)-1 {
		t.Fatalf("expected %d cache hits, got %d", len(mods)-1, hits)
	}
}

// TestAnalyzeBatchIsolatesFailures: a nil module must fail its own slot
// only.
func TestAnalyzeBatchIsolatesFailures(t *testing.T) {
	mods := batchModules(t, 3)
	mods[1] = nil
	batch := AnalyzeBatch(mods, DefaultConfig(), BatchOptions{Workers: 2})
	if batch[0].Err != nil || batch[2].Err != nil {
		t.Fatalf("healthy modules failed: %v / %v", batch[0].Err, batch[2].Err)
	}
	if batch[1].Err == nil {
		t.Fatal("nil module did not fail")
	}
	if !strings.Contains(batch[1].Err.Error(), "engine") {
		t.Fatalf("unexpected error: %v", batch[1].Err)
	}
}
