package pip

import (
	"fmt"
	"strings"
	"testing"
)

// batchSources builds n small distinct mini-C modules.
func batchModules(t *testing.T, n int) []*Module {
	t.Helper()
	mods := make([]*Module, n)
	for i := range mods {
		src := fmt.Sprintf(`
static int a%d, b%d;
int *shared%d;
extern int *fetch%d(int *p);
int *get%d() {
    shared%d = &a%d;
    return fetch%d(&b%d);
}
`, i, i, i, i, i, i, i, i, i)
		m, err := CompileC(fmt.Sprintf("m%d.c", i), src)
		if err != nil {
			t.Fatal(err)
		}
		mods[i] = m
	}
	return mods
}

// TestAnalyzeBatchMatchesAnalyze: the batch facade must return, per module
// and in input order, exactly what the one-at-a-time path returns.
func TestAnalyzeBatchMatchesAnalyze(t *testing.T) {
	mods := batchModules(t, 10)
	cfg := DefaultConfig()
	batch := AnalyzeBatch(mods, cfg, BatchOptions{Workers: 4})
	if len(batch) != len(mods) {
		t.Fatalf("got %d results for %d modules", len(batch), len(mods))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("module %d: %v", i, br.Err)
		}
		want, err := Analyze(mods[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		if br.Result.Dump() != want.Dump() {
			t.Fatalf("module %d: batch solution differs from Analyze:\n%s\nvs\n%s",
				i, br.Result.Dump(), want.Dump())
		}
		// Queries work on batch results like on single results.
		name := fmt.Sprintf("get%d.$ret", i)
		gotExt, err := br.Result.PointsToExternal(name)
		if err != nil {
			t.Fatal(err)
		}
		if !gotExt {
			t.Fatalf("module %d: %s should point to external memory", i, name)
		}
	}
}

// TestAnalyzeBatchCache: identical module contents share one solve.
func TestAnalyzeBatchCache(t *testing.T) {
	m, err := CompileC("dup.c", `int *p; int *get() { return p; }`)
	if err != nil {
		t.Fatal(err)
	}
	mods := []*Module{m, m, m, m}
	batch := AnalyzeBatch(mods, DefaultConfig(), BatchOptions{Workers: 1, Cache: true})
	hits := 0
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("module %d: %v", i, br.Err)
		}
		if br.CacheHit {
			hits++
		}
	}
	if hits != len(mods)-1 {
		t.Fatalf("expected %d cache hits, got %d", len(mods)-1, hits)
	}
}

// TestEngineFacadeSharedCache: a long-lived Engine serves repeat modules
// from its cache, and — the regression this guards — queries on a
// cache-hit result still resolve. The cached Gen is keyed by the module
// instance that populated the cache, so the Result must be paired with
// that instance, not with the structurally equal one from the new request.
func TestEngineFacadeSharedCache(t *testing.T) {
	eng := NewEngine(BatchOptions{Cache: true, CacheEntries: 8})
	src := `static int x; int *p = &x; extern void take(int**); void f() { take(&p); }`
	var hit *Result
	for i := 0; i < 3; i++ {
		m, err := CompileC("repeat.c", src) // fresh instance each round
		if err != nil {
			t.Fatal(err)
		}
		br := eng.Analyze(m, DefaultConfig())
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		if (i > 0) != br.CacheHit {
			t.Fatalf("round %d: cacheHit=%v", i, br.CacheHit)
		}
		hit = br.Result
	}
	targets, external, err := hit.PointsTo("p")
	if err != nil {
		t.Fatalf("query on cache-hit result: %v", err)
	}
	if !external || len(targets) == 0 {
		t.Fatalf("cache-hit result lost facts: %v external=%v", targets, external)
	}
	st := eng.Stats()
	if st.Jobs != 3 || st.CacheHits != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestEngineCacheBounded: CacheEntries caps occupancy under churn; the
// overflow shows up as evictions.
func TestEngineCacheBounded(t *testing.T) {
	eng := NewEngine(BatchOptions{Workers: 2, Cache: true, CacheEntries: 3})
	mods := batchModules(t, 9)
	for _, br := range eng.AnalyzeBatch(mods, DefaultConfig(), nil) {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
	}
	st := eng.Stats()
	if st.CacheEntries > 3 {
		t.Fatalf("cache occupancy %d exceeds cap 3", st.CacheEntries)
	}
	if st.CacheEvictions != int64(len(mods)-3) {
		t.Fatalf("evictions %d, want %d", st.CacheEvictions, len(mods)-3)
	}
	if eng.CacheCap() != 3 {
		t.Fatalf("CacheCap = %d", eng.CacheCap())
	}
}

// TestAnalyzeBatchIsolatesFailures: a nil module must fail its own slot
// only.
func TestAnalyzeBatchIsolatesFailures(t *testing.T) {
	mods := batchModules(t, 3)
	mods[1] = nil
	batch := AnalyzeBatch(mods, DefaultConfig(), BatchOptions{Workers: 2})
	if batch[0].Err != nil || batch[2].Err != nil {
		t.Fatalf("healthy modules failed: %v / %v", batch[0].Err, batch[2].Err)
	}
	if batch[1].Err == nil {
		t.Fatal("nil module did not fail")
	}
	if !strings.Contains(batch[1].Err.Error(), "engine") {
		t.Fatalf("unexpected error: %v", batch[1].Err)
	}
}
