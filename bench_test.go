package pip

// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI). One benchmark per artifact:
//
//	BenchmarkTable3Corpus      Table III  (corpus generation + phase 1)
//	BenchmarkFigure9Precision  Figure 9   (alias-analysis MayAlias rates)
//	BenchmarkTable5Configs     Table V    (solver runtime per configuration)
//	BenchmarkFigure10Ratios    Figure 10  (per-file ratio series)
//	BenchmarkTable6Pointees    Table VI   (explicit pointee counts)
//
// plus ablation benchmarks for the design choices called out in DESIGN.md
// (pointee representation, iteration order, cycle detection, PIP).
//
// The benchmarks run on a reduced corpus so `go test -bench=.` finishes on
// a laptop; `cmd/pipbench -scale 1 -sizescale 1` runs the full-size
// evaluation and prints the paper-formatted tables.

import (
	"sync"
	"testing"

	"github.com/pip-analysis/pip/internal/alias"
	"github.com/pip-analysis/pip/internal/bench"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/workload"
)

var benchOpts = workload.Options{Seed: 1, Scale: 0.02, SizeScale: 0.1, MaxInstrs: 4000}

var (
	corpusOnce sync.Once
	corpus     *bench.Corpus
)

func benchCorpus(b *testing.B) *bench.Corpus {
	b.Helper()
	corpusOnce.Do(func() { corpus = bench.BuildCorpus(benchOpts) })
	return corpus
}

// BenchmarkTable3Corpus measures corpus generation plus constraint
// generation (analysis phase 1), the inputs to Table III.
func BenchmarkTable3Corpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := bench.BuildCorpus(benchOpts)
		if len(c.Files) == 0 {
			b.Fatal("empty corpus")
		}
		_ = bench.Table3(c)
	}
}

// BenchmarkTable5Configs measures the constraint-solving phase for each
// configuration row of Table V over the whole (reduced) corpus.
func BenchmarkTable5Configs(b *testing.B) {
	c := benchCorpus(b)
	configs := append([]string{}, bench.Table5Configs...)
	configs = append(configs, "EP+Naive") // the EP Oracle's usual winner
	for _, name := range configs {
		cfg := core.MustParseConfig(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, f := range c.Files {
					core.MustSolve(f.Gen.Problem, cfg)
				}
			}
		})
	}
}

// BenchmarkFigure10Ratios measures the full Table V / Figure 10 pipeline:
// all configurations plus the EP-oracle pool, producing the ratio series.
func BenchmarkFigure10Ratios(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		res := bench.MeasureRuntime(c, 1)
		if out := bench.Figure10(res); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkTable6Pointees measures solving plus explicit-pointee counting
// for the Table VI configurations.
func BenchmarkTable6Pointees(b *testing.B) {
	c := benchCorpus(b)
	for _, name := range []string{"IP+WL(FIFO)", "IP+WL(FIFO)+PIP"} {
		cfg := core.MustParseConfig(name)
		b.Run(name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				for _, f := range c.Files {
					sol := core.MustSolve(f.Gen.Problem, cfg)
					total += sol.Stats.ExplicitPointees
				}
			}
			if total == 0 {
				b.Fatal("no pointees")
			}
		})
	}
}

// BenchmarkFigure9Precision measures the alias-analysis client over the
// corpus for the three analysis configurations of Figure 9.
func BenchmarkFigure9Precision(b *testing.B) {
	c := benchCorpus(b)
	b.Run("BasicAA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range c.Files {
				basic := alias.NewBasicAA(f.Module)
				alias.ConflictRate(f.Module, basic)
			}
		}
	})
	b.Run("Andersen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range c.Files {
				sol := core.MustSolve(f.Gen.Problem, core.DefaultConfig())
				and := alias.NewAndersen(f.Gen, sol)
				alias.ConflictRate(f.Module, and)
			}
		}
	})
	b.Run("Combined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range c.Files {
				basic := alias.NewBasicAA(f.Module)
				sol := core.MustSolve(f.Gen.Problem, core.DefaultConfig())
				and := alias.NewAndersen(f.Gen, sol)
				alias.ConflictRate(f.Module, alias.Combined{basic, and})
			}
		}
	})
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationRepresentation isolates the paper's central claim: the
// implicit pointee representation vs the explicit Ω node, on an
// escape-heavy pathological file where the difference is largest.
func BenchmarkAblationRepresentation(b *testing.B) {
	files := workload.GenerateSuite(workload.Suites[11],
		workload.Options{Seed: 9, Scale: 0.001, SizeScale: 0.02})
	f := files[0]
	gen := core.Generate(f.Module)
	for _, name := range []string{"EP+WL(FIFO)", "IP+WL(FIFO)", "IP+WL(FIFO)+PIP"} {
		cfg := core.MustParseConfig(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustSolve(gen.Problem, cfg)
			}
		})
	}
}

// BenchmarkAblationSolverKind compares the three solver families: naive
// iteration, the worklist algorithm, and wave propagation (the latter an
// extension beyond the paper's Table IV).
func BenchmarkAblationSolverKind(b *testing.B) {
	c := benchCorpus(b)
	for _, name := range []string{"IP+Naive", "IP+WL(FIFO)", "IP+Wave", "IP+WL(FIFO)+PIP", "IP+Wave+PIP"} {
		cfg := core.MustParseConfig(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, f := range c.Files {
					core.MustSolve(f.Gen.Problem, cfg)
				}
			}
		})
	}
}

// BenchmarkAblationOrders compares the five worklist iteration orders.
func BenchmarkAblationOrders(b *testing.B) {
	c := benchCorpus(b)
	for _, order := range []string{"FIFO", "LIFO", "LRF", "2LRF", "TOPO"} {
		cfg := core.MustParseConfig("IP+WL(" + order + ")+PIP")
		b.Run(order, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, f := range c.Files {
					core.MustSolve(f.Gen.Problem, cfg)
				}
			}
		})
	}
}

// BenchmarkAblationCycleDetection compares the cycle-detection techniques
// on top of the same baseline.
func BenchmarkAblationCycleDetection(b *testing.B) {
	c := benchCorpus(b)
	for _, name := range []string{
		"IP+WL(FIFO)",
		"IP+WL(FIFO)+OCD",
		"IP+WL(FIFO)+HCD",
		"IP+WL(FIFO)+LCD",
		"IP+WL(FIFO)+HCD+LCD",
		"IP+OVS+WL(FIFO)",
	} {
		cfg := core.MustParseConfig(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, f := range c.Files {
					core.MustSolve(f.Gen.Problem, cfg)
				}
			}
		})
	}
}

// BenchmarkAblationPIPRules isolates the contribution of each of the four
// PIP additions (Section IV) on an escape-heavy pathological file.
func BenchmarkAblationPIPRules(b *testing.B) {
	files := workload.GenerateSuite(workload.Suites[11],
		workload.Options{Seed: 9, Scale: 0.001, SizeScale: 0.02})
	gen := core.Generate(files[0].Module)
	cases := []struct {
		name string
		mask uint8
	}{
		{"none", 0}, {"rule1", 1}, {"rule2", 2}, {"rule3", 4}, {"rule4", 8},
		{"rules12", 3}, {"all", 0xF},
	}
	for _, c := range cases {
		cfg := core.Config{Rep: core.IP, Solver: core.Worklist, Order: core.FIFO}
		if c.mask != 0 {
			cfg.PIP = true
			cfg.PIPMask = c.mask
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.MustSolve(gen.Problem, cfg)
			}
		})
	}
}

// BenchmarkPhase1Generation measures constraint generation alone.
func BenchmarkPhase1Generation(b *testing.B) {
	c := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range c.Files {
			core.Generate(f.Module)
		}
	}
}
