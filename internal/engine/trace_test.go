package engine

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/obs"
)

// TestEngineTraceRecordsJobsAndSolves asserts the pool's trace wiring:
// with Options.Trace set, every job gets a span on a worker track carrying
// queue-wait and outcome args, and the solve's own phase spans land on the
// same trace.
func TestEngineTraceRecordsJobsAndSolves(t *testing.T) {
	tr := obs.New("engine-test", 1<<14)
	eng := New(Options{Workers: 3, Trace: tr})
	mods := testModules(6)
	rs := eng.Run(jobsFor(mods, core.DefaultConfig()))
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
	}
	tree := tr.Tree()
	// Scheduling decides which workers pick up jobs; at least one worker
	// track must exist, but not any particular one.
	if !strings.Contains(tree, "worker-") {
		t.Fatalf("no worker track in trace:\n%s", tree)
	}
	for _, want := range []string{"job", "solve", "propagate"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("trace missing %q spans:\n%s", want, tree)
		}
	}
	// RunOne lands on the shared inline track.
	eng.RunOne(Job{Module: mods[0], Config: core.DefaultConfig()})
	if !strings.Contains(tr.Tree(), "inline:") {
		t.Fatalf("RunOne did not record on the inline track:\n%s", tr.Tree())
	}
}

// TestJobTraceOverridesWorkerTrack asserts a request-scoped Job.Trace lane
// receives the solve spans even when the engine has no trace of its own.
func TestJobTraceOverridesWorkerTrack(t *testing.T) {
	tr := obs.New("request", 1<<12)
	eng := New(Options{Workers: 2})
	mods := testModules(1)
	res := eng.RunOne(Job{Module: mods[0], Config: core.DefaultConfig(),
		Trace: tr.NewTrack("req-abc")})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	tree := tr.Tree()
	if !strings.Contains(tree, "req-abc:") || !strings.Contains(tree, "solve") {
		t.Fatalf("solve spans missing from the request lane:\n%s", tree)
	}
}

// TestTelemetryAggregationAcrossOverlappingRuns is the Telemetry.Merge
// contract test for concurrent work (run under -race in CI): overlapping
// Run and RunOne calls on one engine must aggregate telemetry to exactly
// the sum of the per-job telemetries, while the busy-span wall clock
// counts overlap once. Phase-duration sums are CPU time, so they may
// exceed the busy-span wall — that is documented behavior, not a bug.
func TestTelemetryAggregationAcrossOverlappingRuns(t *testing.T) {
	eng := New(Options{Workers: 4})
	mods := testModules(8)
	cfg := core.DefaultConfig()

	var (
		mu      sync.Mutex
		results []Result
		wg      sync.WaitGroup
	)
	collect := func(rs ...Result) {
		mu.Lock()
		results = append(results, rs...)
		mu.Unlock()
	}
	for g := 0; g < 3; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			collect(eng.Run(jobsFor(mods, cfg))...)
		}()
		go func() {
			defer wg.Done()
			for _, m := range mods[:3] {
				collect(eng.RunOne(Job{Module: m, Config: cfg}))
			}
		}()
	}
	wg.Wait()

	var want core.Telemetry
	var cpu int64
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d failed: %v", i, r.Err)
		}
		want.Merge(r.Sol.Telemetry)
		cpu += int64(r.Duration)
	}
	st := eng.Stats()
	if st.Jobs != len(results) {
		t.Fatalf("stats counted %d jobs, collected %d results", st.Jobs, len(results))
	}
	if st.Telemetry != want {
		t.Fatalf("aggregated telemetry diverged:\nengine: %+v\nsum:    %+v", st.Telemetry, want)
	}
	if int64(st.CPU) != cpu {
		t.Fatalf("CPU sum = %v, per-result sum = %v", st.CPU, time.Duration(cpu))
	}
	// The busy-span wall counts overlapping work once; with 4 workers and
	// 3 concurrent submitters it must not exceed the CPU sum (each job
	// contributes at least its own solve time to CPU while at most one
	// busy span is open at a time).
	if st.Wall > st.CPU {
		t.Logf("wall %v > cpu %v (possible on a starved machine; informational)", st.Wall, st.CPU)
	}
}
