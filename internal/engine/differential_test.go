package engine

import (
	"math/rand"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/workload"
)

// tinyOpts keeps the differential corpus fast; every suite still
// contributes files (including ghostscript's pathological outliers).
var tinyOpts = workload.Options{Seed: 7, Scale: 0.01, SizeScale: 0.03, MaxInstrs: 1200}

// diffConfigs spans the technique families: the PIP default, plain IP, an
// EP configuration (materialized Ω), and cycle-detection variants.
var diffConfigs = []string{
	"IP+WL(FIFO)+PIP",
	"IP+WL(FIFO)",
	"IP+WL(FIFO)+LCD+DP",
	"EP+OVS+WL(LRF)+OCD",
}

// suiteJobs builds one job per (file, config) over the tiny corpus.
func suiteJobs(t testing.TB) []Job {
	t.Helper()
	files := workload.GenerateCorpus(tinyOpts)
	if len(files) < len(workload.Suites) {
		t.Fatalf("corpus too small: %d files", len(files))
	}
	var jobs []Job
	for _, name := range diffConfigs {
		cfg := core.MustParseConfig(name)
		for _, f := range files {
			jobs = append(jobs, Job{Module: f.Module, Config: cfg})
		}
	}
	return jobs
}

// TestDifferentialWorkloadSuites is the engine's core guarantee: over every
// workload suite and a spread of solver configurations, the parallel path
// at workers ∈ {1, 2, 8} and a cached double pass produce solutions
// identical to the plain sequential path.
func TestDifferentialWorkloadSuites(t *testing.T) {
	jobs := suiteJobs(t)
	rep := Differential(jobs, DiffOptions{WorkerCounts: []int{1, 2, 8}, CachedPass: true})
	if !rep.OK() {
		t.Fatalf("parallel engine is not solution-identical:\n%s", rep)
	}
	if rep.Jobs != len(jobs) {
		t.Fatalf("harness lost jobs: %d != %d", rep.Jobs, len(jobs))
	}
}

// TestDifferentialAdversarialModules feeds the adversarial-linker modules
// (both the incomplete A modules and the closed whole programs) through
// the harness: they exercise the Ω/escape machinery hardest.
func TestDifferentialAdversarialModules(t *testing.T) {
	var jobs []Job
	for seed := int64(1); seed <= 10; seed++ {
		lg := workload.GenerateLinked(seed)
		for _, name := range diffConfigs {
			cfg := core.MustParseConfig(name)
			jobs = append(jobs,
				Job{Module: lg.A, Config: cfg},
				Job{Module: lg.Whole, Config: cfg})
		}
	}
	rep := Differential(jobs, DiffOptions{WorkerCounts: []int{1, 2, 8}, CachedPass: true})
	if !rep.OK() {
		t.Fatalf("adversarial modules diverge across solver paths:\n%s", rep)
	}
}

// TestShuffledSubmissionDeterminism submits the same jobs in shuffled
// orders at different worker counts and checks that, after inverting the
// permutation, every run returns byte-identical per-job solutions: result
// ordering depends only on submission indices, never on scheduling.
func TestShuffledSubmissionDeterminism(t *testing.T) {
	base := suiteJobs(t)
	reference := outcomesOf(New(Options{Workers: 1}).Run(base))
	for _, workers := range []int{2, 8} {
		perm := rand.New(rand.NewSource(int64(workers))).Perm(len(base))
		shuffled := make([]Job, len(base))
		for to, from := range perm {
			shuffled[to] = base[from]
		}
		rs := New(Options{Workers: workers}).Run(shuffled)
		for to, from := range perm {
			got := outcomeOf(rs[to])
			if got.err != reference[from].err {
				t.Fatalf("workers=%d: job %d failure behaviour changed", workers, from)
			}
			if got.fingerprint != reference[from].fingerprint {
				t.Fatalf("workers=%d: job %d solution changed under shuffled submission:\n%s",
					workers, from, firstDiff(reference[from].fingerprint, got.fingerprint))
			}
		}
	}
}
