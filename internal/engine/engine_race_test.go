package engine

// The dedicated race target (`go test -race ./internal/engine/...`, wired
// to `make test-race`): concurrent solves over shared read-only modules,
// shared pre-generated constraint problems, and shared cached solutions.
// Queries on a Solution must be strictly read-only for these tests to pass
// under the race detector — which is why core.Solution carries a flattened
// representative table instead of a live (path-compressing) union-find.

import (
	"expvar"
	"sync"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/workload"
)

var raceWorkerCounts = []int{1, 2, 8}

// TestRaceSharedModules solves the same modules concurrently: many jobs
// share one *ir.Module, so any write to module state during constraint
// generation is a detectable race.
func TestRaceSharedModules(t *testing.T) {
	mods := testModules(4)
	for _, workers := range raceWorkerCounts {
		var jobs []Job
		for _, cfgName := range diffConfigs {
			cfg := core.MustParseConfig(cfgName)
			for _, m := range mods {
				jobs = append(jobs, Job{Module: m, Config: cfg})
			}
		}
		for i, r := range New(Options{Workers: workers}).Run(jobs) {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
		}
	}
}

// TestRaceSharedGen shares one pre-generated *core.Gen across concurrent
// solves under different configurations, the exact sharing pattern of the
// benchmark drivers (phase 1 is hoisted out, phase 2 fans out).
func TestRaceSharedGen(t *testing.T) {
	gens := make([]*core.Gen, 0)
	for _, m := range testModules(3) {
		gens = append(gens, core.Generate(m))
	}
	for _, workers := range raceWorkerCounts {
		var jobs []Job
		for _, cfgName := range diffConfigs {
			cfg := core.MustParseConfig(cfgName)
			for _, g := range gens {
				// Several reps so solves on the shared problem overlap.
				jobs = append(jobs, Job{Gen: g, Config: cfg, Reps: 2})
			}
		}
		for i, r := range New(Options{Workers: workers}).Run(jobs) {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
		}
	}
}

// TestRaceSharedCachedSolution queries one cache-shared Solution from many
// goroutines at once. Every query path (PointsTo, Explicit, Escaped,
// ExternalSet, MayShareTargets, Canonical, Fingerprint) must be read-only.
func TestRaceSharedCachedSolution(t *testing.T) {
	m := workload.GenerateLinked(3).A
	eng := New(Options{Workers: 8, Cache: true})
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Module: m, Config: core.DefaultConfig()}
	}
	rs := eng.Run(jobs)
	sol := rs[0].Sol
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := core.VarID(sol.NumVars())
			for v := core.VarID(0); v < n; v++ {
				sol.PointsTo(v)
				sol.Explicit(v)
				sol.PointsToExternal(v)
				sol.Escaped(v)
				sol.Rep(v)
				sol.MayShareTargets(v, (v+core.VarID(w))%n)
			}
			sol.ExternalSet()
			_ = sol.Fingerprint()
			_ = sol.Canonical()
		}(w)
	}
	wg.Wait()
	// All 16 identical jobs must have shared one solution (one solve, the
	// rest cache hits — modulo concurrent first-pass duplicates).
	hits := eng.Stats().CacheHits
	if hits == 0 {
		t.Fatal("no cache hits on identical concurrent jobs")
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
}

// TestRacePublishConcurrent hammers Publish from many goroutines — many
// engines racing to register and re-point the same expvar name while
// readers scrape it. The original expvar.Get-then-Publish sequence was
// check-then-act: two engines could both miss the existence check and
// double-Publish, which panics inside expvar. The registry-based Publish
// must survive this under the race detector.
func TestRacePublishConcurrent(t *testing.T) {
	const name = "pip-engine-race-publish"
	engines := make([]*Engine, 8)
	for i := range engines {
		engines[i] = New(Options{Workers: 1})
	}
	var wg sync.WaitGroup
	for i := range engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			for n := 0; n < 100; n++ {
				e.Publish(name)
			}
		}(engines[i])
	}
	// Concurrent scrapes: the exported Func must always see a live engine.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 100; n++ {
				if v := expvar.Get(name); v != nil {
					_ = v.String()
				}
			}
		}()
	}
	wg.Wait()
	if expvar.Get(name) == nil {
		t.Fatal("name never registered")
	}
}

// TestRaceServeLikeLifecycle mixes the daemon's concurrent access pattern:
// RunOne from many request goroutines against one shared caching engine,
// interleaved with Stats scrapes (which read cache occupancy and the open
// busy span) — the /metrics-while-solving pattern.
func TestRaceServeLikeLifecycle(t *testing.T) {
	mods := testModules(4)
	eng := New(Options{Workers: 4, Cache: true, CacheEntries: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 6; n++ {
				m := mods[(w+n)%len(mods)]
				if r := eng.RunOne(Job{Module: m, Config: core.DefaultConfig()}); r.Err != nil {
					t.Errorf("worker %d: %v", w, r.Err)
				}
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				st := eng.Stats()
				if st.CacheEntries > 2 {
					t.Errorf("occupancy %d exceeds cap", st.CacheEntries)
				}
			}
		}()
	}
	wg.Wait()
}
