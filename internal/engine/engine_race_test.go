package engine

// The dedicated race target (`go test -race ./internal/engine/...`, wired
// to `make test-race`): concurrent solves over shared read-only modules,
// shared pre-generated constraint problems, and shared cached solutions.
// Queries on a Solution must be strictly read-only for these tests to pass
// under the race detector — which is why core.Solution carries a flattened
// representative table instead of a live (path-compressing) union-find.

import (
	"sync"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/workload"
)

var raceWorkerCounts = []int{1, 2, 8}

// TestRaceSharedModules solves the same modules concurrently: many jobs
// share one *ir.Module, so any write to module state during constraint
// generation is a detectable race.
func TestRaceSharedModules(t *testing.T) {
	mods := testModules(4)
	for _, workers := range raceWorkerCounts {
		var jobs []Job
		for _, cfgName := range diffConfigs {
			cfg := core.MustParseConfig(cfgName)
			for _, m := range mods {
				jobs = append(jobs, Job{Module: m, Config: cfg})
			}
		}
		for i, r := range New(Options{Workers: workers}).Run(jobs) {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
		}
	}
}

// TestRaceSharedGen shares one pre-generated *core.Gen across concurrent
// solves under different configurations, the exact sharing pattern of the
// benchmark drivers (phase 1 is hoisted out, phase 2 fans out).
func TestRaceSharedGen(t *testing.T) {
	gens := make([]*core.Gen, 0)
	for _, m := range testModules(3) {
		gens = append(gens, core.Generate(m))
	}
	for _, workers := range raceWorkerCounts {
		var jobs []Job
		for _, cfgName := range diffConfigs {
			cfg := core.MustParseConfig(cfgName)
			for _, g := range gens {
				// Several reps so solves on the shared problem overlap.
				jobs = append(jobs, Job{Gen: g, Config: cfg, Reps: 2})
			}
		}
		for i, r := range New(Options{Workers: workers}).Run(jobs) {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
		}
	}
}

// TestRaceSharedCachedSolution queries one cache-shared Solution from many
// goroutines at once. Every query path (PointsTo, Explicit, Escaped,
// ExternalSet, MayShareTargets, Canonical, Fingerprint) must be read-only.
func TestRaceSharedCachedSolution(t *testing.T) {
	m := workload.GenerateLinked(3).A
	eng := New(Options{Workers: 8, Cache: true})
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Module: m, Config: core.DefaultConfig()}
	}
	rs := eng.Run(jobs)
	sol := rs[0].Sol
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := core.VarID(sol.NumVars())
			for v := core.VarID(0); v < n; v++ {
				sol.PointsTo(v)
				sol.Explicit(v)
				sol.PointsToExternal(v)
				sol.Escaped(v)
				sol.Rep(v)
				sol.MayShareTargets(v, (v+core.VarID(w))%n)
			}
			sol.ExternalSet()
			_ = sol.Fingerprint()
			_ = sol.Canonical()
		}(w)
	}
	wg.Wait()
	// All 16 identical jobs must have shared one solution (one solve, the
	// rest cache hits — modulo concurrent first-pass duplicates).
	hits := eng.Stats().CacheHits
	if hits == 0 {
		t.Fatal("no cache hits on identical concurrent jobs")
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
}
