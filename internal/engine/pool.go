package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunIndexed runs fn(i) for every i in [0, n) across a bounded worker
// pool. It is the engine's generic fan-out primitive for work that is not
// a solve (corpus constraint generation, per-file alias clients, corpus
// serialization in pipgen). Writes by fn must go to index-disjoint
// locations; RunIndexed returns after all calls complete, so results
// indexed by i are deterministically ordered. workers <= 0 means
// runtime.GOMAXPROCS(0).
func RunIndexed(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
