package engine

import (
	"math/rand"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
	"github.com/pip-analysis/pip/internal/workload"
)

// FuzzEngineRecovery feeds mutated MIR through the engine and asserts that
// no panic ever escapes the per-job recovery boundary: a job either
// produces a solution or reports an error. Mutations use the ir/mutate.go
// helpers to damage otherwise-valid modules (dangling operand rewrites,
// instruction removal without use cleanup), which routinely breaks the
// invariants constraint generation relies on.
func FuzzEngineRecovery(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(ir.Print(workload.GenerateLinked(seed).A), seed)
	}
	f.Fuzz(func(t *testing.T, src string, mutSeed int64) {
		m, err := ir.Parse(src)
		if err != nil {
			return
		}
		mutate(m, mutSeed)
		eng := New(Options{Workers: 2, Cache: true})
		// Three jobs over one module: two plain configurations (the second
		// may be served from cache) and one with a tiny firing budget that
		// aborts the solve mid-flight — often inside a cycle-collapse pass
		// on the cyclic seeds below. All must come back as a result, never
		// as a crash.
		tight := core.MustParseConfig("IP+WL(FIFO)+OCD")
		tight.Budget = core.Budget{Firings: 1 + mutSeed%32}
		rs := eng.Run([]Job{
			{Module: m, Config: core.DefaultConfig()},
			{Module: m, Config: core.MustParseConfig("EP+WL(FIFO)")},
			{Module: m, Config: tight},
		})
		for i, r := range rs {
			if r.Err == nil && r.Sol == nil {
				t.Fatalf("job %d returned neither solution nor error", i)
			}
			if r.Err == nil && r.Degraded != r.Sol.Degraded {
				t.Fatalf("job %d: Result.Degraded=%v disagrees with Sol.Degraded=%v",
					i, r.Degraded, r.Sol.Degraded)
			}
		}
	})
}

// mutate damages a module deterministically in mutSeed: it removes random
// instructions (leaving their uses dangling) and rewires random operands
// to values from other functions.
func mutate(m *ir.Module, mutSeed int64) {
	rng := rand.New(rand.NewSource(mutSeed))
	var instrs []*ir.Instr
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		instrs = append(instrs, in)
	})
	if len(instrs) == 0 {
		return
	}
	for k := 0; k < 1+rng.Intn(4); k++ {
		in := instrs[rng.Intn(len(instrs))]
		switch rng.Intn(3) {
		case 0:
			ir.RemoveInstr(in)
		case 1:
			if len(in.Args) > 0 {
				in.Args[rng.Intn(len(in.Args))] = instrs[rng.Intn(len(instrs))]
			}
		default:
			if len(in.Args) > 0 && len(m.Funcs) > 0 {
				f := m.Funcs[rng.Intn(len(m.Funcs))]
				ir.ReplaceUses(f, in.Args[0], instrs[rng.Intn(len(instrs))])
			}
		}
	}
}
