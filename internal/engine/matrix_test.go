package engine

import (
	"expvar"
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/workload"
)

// The cross-configuration differential matrix: every valid configuration,
// solved over the adversarial workload modules, must produce the same
// solution (the paper validates its configuration space exactly this way),
// and every configuration's canonical name must round-trip through
// ParseConfig — the matrix uses the names as job identities, so a name
// collision or parse drift would silently merge distinct configurations.

// matrixSeeds picks the adversarial modules the matrix runs over. -short
// keeps one seed so the 304-configuration sweep stays fast in CI.
func matrixSeeds(t *testing.T) []int64 {
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2, 3}
}

func TestCrossConfigurationMatrix(t *testing.T) {
	configs := core.AllConfigs()
	// Name round trip first: the rest of the test keys jobs by name.
	seen := map[string]bool{}
	for _, cfg := range configs {
		name := cfg.String()
		if seen[name] {
			t.Fatalf("duplicate configuration name %q", name)
		}
		seen[name] = true
		parsed, err := core.ParseConfig(name)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", name, err)
		}
		if parsed != cfg {
			t.Fatalf("configuration round trip: %q -> %+v, want %+v", name, parsed, cfg)
		}
	}

	eng := New(Options{})
	for _, seed := range matrixSeeds(t) {
		lm := workload.GenerateLinked(seed)
		for _, mod := range []struct {
			name string
			gen  *core.Gen
		}{
			{"A", core.Generate(lm.A)},
			{"whole", core.Generate(lm.Whole)},
		} {
			want := core.ReferenceSolve(mod.gen.Problem)
			jobs := make([]Job, len(configs))
			for i, cfg := range configs {
				jobs[i] = Job{Gen: mod.gen, Config: cfg}
			}
			for i, r := range eng.Run(jobs) {
				if r.Err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, mod.name, configs[i], r.Err)
				}
				if r.Degraded {
					t.Fatalf("seed %d %s %s: unbudgeted solve degraded", seed, mod.name, configs[i])
				}
				if got := r.Sol.Canonical(); got != want {
					t.Fatalf("seed %d %s: configuration %s disagrees with the reference solution",
						seed, mod.name, configs[i])
				}
			}
		}
	}
}

// TestMatrixDifferential pushes a per-configuration job set through the
// differential harness: within each configuration, the sequential path,
// every pool size, and the cached double pass must be solution-identical.
// (Across configurations only Canonical agrees — cycle representatives and
// explicit sets legitimately differ — so fingerprint comparison stays
// within one configuration.)
func TestMatrixDifferential(t *testing.T) {
	configs := core.AllConfigs()
	stride := 16
	if testing.Short() {
		stride = 64
	}
	m := workload.GenerateLinked(4).A
	var jobs []Job
	for i := 0; i < len(configs); i += stride {
		jobs = append(jobs, Job{Module: m, Config: configs[i]})
	}
	rep := Differential(jobs, DiffOptions{WorkerCounts: []int{1, 4}, CachedPass: true})
	if !rep.OK() {
		t.Fatalf("differential mismatches:\n%s", rep)
	}
}

// TestBudgetedDifferential: firing budgets are deterministic, so budgeted
// jobs — including ones that always degrade — are differential-safe across
// every engine path. Degraded solutions must not be cached; completed
// budgeted solves still are.
func TestBudgetedDifferential(t *testing.T) {
	m := workload.GenerateLinked(5).A
	degrading := core.DefaultConfig()
	degrading.Budget = core.Budget{Firings: 3}
	generous := core.MustParseConfig("EP+WL(FIFO)")
	generous.Budget = core.Budget{Firings: 1 << 40}
	jobs := []Job{
		{Module: m, Config: degrading},
		{Module: m, Config: generous},
		{Module: m, Config: core.DefaultConfig()},
	}
	rep := Differential(jobs, DiffOptions{WorkerCounts: []int{1, 4}, CachedPass: true})
	if !rep.OK() {
		t.Fatalf("budgeted differential mismatches:\n%s", rep)
	}

	eng := New(Options{Cache: true})
	first := eng.Run(jobs)
	if !first[0].Degraded {
		t.Fatal("3-firing job did not degrade")
	}
	if first[1].Degraded || first[2].Degraded {
		t.Fatal("generous/unbudgeted jobs degraded")
	}
	second := eng.Run(jobs)
	if second[0].CacheHit {
		t.Fatal("degraded solution was served from the cache")
	}
	if !second[1].CacheHit || !second[2].CacheHit {
		t.Fatal("completed solutions were not cached")
	}
	st := eng.Stats()
	if st.Degraded != 2 { // job 0 degraded on both passes
		t.Fatalf("Stats.Degraded = %d, want 2", st.Degraded)
	}
	if !st.Telemetry.Degraded {
		t.Fatal("aggregated telemetry lost the degraded bit")
	}
}

// TestBudgetCacheKeySeparation: a budgeted and an unbudgeted job over the
// same module must never share a cached solution, and the engine-level
// default budget must be folded in before the key is derived.
func TestBudgetCacheKeySeparation(t *testing.T) {
	m := workload.GenerateLinked(6).A
	budgeted := core.DefaultConfig()
	budgeted.Budget = core.Budget{Firings: 1 << 40}
	if CacheKey("h", core.DefaultConfig()) == CacheKey("h", budgeted) {
		t.Fatal("budget not part of the cache key")
	}

	// An engine-wide default budget that always degrades: even with the
	// cache on, an unbudgeted engine afterwards must not see those entries.
	strict := New(Options{Cache: true, Budget: core.Budget{Firings: -1}})
	r := strict.RunOne(Job{Module: m, Config: core.DefaultConfig()})
	if r.Err != nil || !r.Degraded {
		t.Fatalf("strict engine: err=%v degraded=%v", r.Err, r.Degraded)
	}
	// Same engine, job with its own generous budget overriding nothing
	// (job budget zero -> default applies): still degraded.
	r2 := strict.RunOne(Job{Module: m, Config: core.DefaultConfig()})
	if !r2.Degraded || r2.CacheHit {
		t.Fatalf("second strict run: degraded=%v cacheHit=%v", r2.Degraded, r2.CacheHit)
	}
	// A job carrying its own budget wins over the engine default.
	own := core.DefaultConfig()
	own.Budget = core.Budget{Firings: 1 << 40}
	r3 := strict.RunOne(Job{Module: m, Config: own})
	if r3.Err != nil || r3.Degraded {
		t.Fatalf("own-budget job: err=%v degraded=%v", r3.Err, r3.Degraded)
	}
}

// TestEngineStatsExport covers the JSON/expvar telemetry export: the
// aggregated stats marshal with the telemetry schema and publish exactly
// once under a stable expvar name.
func TestEngineStatsExport(t *testing.T) {
	m := workload.GenerateLinked(7).A
	eng := New(Options{})
	if r := eng.RunOne(Job{Module: m, Config: core.DefaultConfig()}); r.Err != nil {
		t.Fatal(r.Err)
	}
	js := eng.Stats().JSON()
	for _, key := range []string{"\"jobs\"", "\"degraded\"", "\"telemetry\"",
		"\"offline_ns\"", "\"propagate_ns\"", "\"collapse_ns\"", "\"firings\"", "\"worklist_peak\""} {
		if !strings.Contains(js, key) {
			t.Fatalf("stats JSON lacks %s:\n%s", key, js)
		}
	}

	eng.Publish("pip-engine-test")
	v := expvar.Get("pip-engine-test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if !strings.Contains(v.String(), "\"telemetry\"") {
		t.Fatalf("expvar export lacks telemetry: %s", v.String())
	}
	// Re-publishing re-points the export: the latest engine wins, so a
	// process that rebuilds its engine keeps exporting live stats.
	eng.Publish("pip-engine-test")
	fresh := New(Options{})
	fresh.Publish("pip-engine-test")
	if s := expvar.Get("pip-engine-test").String(); !strings.Contains(s, "\"jobs\":0") {
		t.Fatalf("expvar still exports the old engine after re-publish: %s", s)
	}
	eng.Publish("pip-engine-test")
	if s := expvar.Get("pip-engine-test").String(); !strings.Contains(s, "\"jobs\":1") {
		t.Fatalf("expvar not re-pointed back: %s", s)
	}
}

// TestStatsMerge covers the cross-engine aggregation used by the bench
// corpus drivers.
func TestStatsMerge(t *testing.T) {
	a := Stats{Jobs: 1, CacheHits: 2, Failures: 3, Degraded: 4, Wall: 10, CPU: 20,
		PeakInFlight: 2, Workers: 4, Telemetry: core.Telemetry{WorklistPeak: 5}}
	b := Stats{Jobs: 10, Degraded: 1, Wall: 1, CPU: 2, PeakInFlight: 7, Workers: 2,
		Telemetry: core.Telemetry{WorklistPeak: 3, Degraded: true}}
	a.Merge(b)
	if a.Jobs != 11 || a.CacheHits != 2 || a.Failures != 3 || a.Degraded != 5 {
		t.Fatalf("counters: %+v", a)
	}
	if a.Wall != 11 || a.CPU != 22 || a.PeakInFlight != 7 || a.Workers != 4 {
		t.Fatalf("times/peaks: %+v", a)
	}
	if a.Telemetry.WorklistPeak != 5 || !a.Telemetry.Degraded {
		t.Fatalf("telemetry: %+v", a.Telemetry)
	}
}
