package engine

import "container/list"

// solutionCache is the engine's content-hash-keyed solution cache: a
// size-bounded LRU. The batch engine originally used a plain map, which is
// fine for a short-lived benchmark process but grows without bound under
// the unbounded request stream of a long-running service (pipserve): every
// distinct (module, configuration) pair would stay resident forever. The
// LRU bounds resident solutions while keeping the hot set — repeated
// queries over the same modules — cached.
//
// The cache is not internally synchronized; the engine calls it under its
// own mutex.
type solutionCache struct {
	// max bounds the number of resident entries; <= 0 means unbounded
	// (the original map behaviour, still right for one-shot batch runs).
	max       int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	evictions int64
	// reserved holds one reservation per cache key currently being solved:
	// the first job to miss becomes the leader, later jobs with the same
	// key wait on its done channel instead of solving redundantly. Entries
	// are removed by Engine.release, which the leader defers — including
	// across recovered panics, so a dead leader cannot strand its waiters.
	reserved map[string]*reservation
}

// reservation is the rendezvous between the leader solving a cache key
// and the jobs coalesced behind it. The leader fills c/ok (ok only for
// an exact, cacheable solution) before release closes done.
type reservation struct {
	done chan struct{}
	c    cached
	ok   bool
}

type cacheEntry struct {
	key string
	val cached
}

func newSolutionCache(max int) *solutionCache {
	return &solutionCache{
		max:      max,
		entries:  map[string]*list.Element{},
		order:    list.New(),
		reserved: map[string]*reservation{},
	}
}

// get returns the cached value and marks the entry most recently used.
func (c *solutionCache) get(key string) (cached, bool) {
	el, ok := c.entries[key]
	if !ok {
		return cached{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts or refreshes an entry, evicting least-recently-used entries
// until occupancy is back under the cap. The evicted entries are returned
// so the engine can flush them to the persistent store (outside its mutex)
// instead of losing them — the disk tier's lazy write-behind.
func (c *solutionCache) put(key string, val cached) []cacheEntry {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return nil
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	var evicted []cacheEntry
	for c.max > 0 && len(c.entries) > c.max {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		ent := oldest.Value.(*cacheEntry)
		delete(c.entries, ent.key)
		c.evictions++
		evicted = append(evicted, *ent)
	}
	return evicted
}

// snapshot returns every resident entry, most recently used first; the
// engine's SyncStore flushes the lot on graceful drain.
func (c *solutionCache) snapshot() []cacheEntry {
	out := make([]cacheEntry, 0, len(c.entries))
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*cacheEntry))
	}
	return out
}

// drop removes an entry outright (used when lookup verification finds a
// corrupted entry — it must not survive to be served later).
func (c *solutionCache) drop(key string) {
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// len returns the current occupancy.
func (c *solutionCache) len() int { return len(c.entries) }
