package engine

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/faults"
)

// armFaults arms a fault spec for the duration of one test. The faults
// registry is process-global, so every armed test must disarm on exit or
// it would bleed injections into later tests.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	reg, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("bad fault spec %q: %v", spec, err)
	}
	faults.Arm(reg)
	t.Cleanup(faults.Disarm)
}

func TestRetryRecoversInjectedError(t *testing.T) {
	// The dispatch point errors exactly on its first hit; the retry's
	// second attempt sees hit #2 and sails through.
	armFaults(t, "seed=1;engine.dispatch=error:@1")
	mods := testModules(1)
	eng := New(Options{Workers: 1, Retry: RetryPolicy{Max: 2, BaseDelay: time.Millisecond}})
	res := eng.RunOne(Job{Module: mods[0], Config: core.DefaultConfig()})
	if res.Err != nil {
		t.Fatalf("job not recovered by retry: %v", res.Err)
	}
	if res.Retries != 1 {
		t.Fatalf("expected 1 retry, got %d", res.Retries)
	}
	want := core.MustSolve(core.Generate(mods[0]).Problem, core.DefaultConfig())
	if res.Sol.Fingerprint() != want.Fingerprint() {
		t.Fatalf("retried solution differs from direct solve")
	}
	st := eng.Stats()
	if st.Retries != 1 || st.RetrySuccesses != 1 || st.Failures != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestRetryRecoversPanic(t *testing.T) {
	armFaults(t, "seed=1;engine.dispatch=panic:@1")
	mods := testModules(1)
	eng := New(Options{Workers: 1, Retry: RetryPolicy{Max: 2, BaseDelay: time.Millisecond}})
	res := eng.RunOne(Job{Module: mods[0], Config: core.DefaultConfig()})
	if res.Err != nil {
		t.Fatalf("panicked job not recovered by retry: %v", res.Err)
	}
	if res.Retries != 1 {
		t.Fatalf("expected 1 retry, got %d", res.Retries)
	}
}

func TestNoRetryWhenDisabled(t *testing.T) {
	armFaults(t, "seed=1;engine.dispatch=error:@1")
	mods := testModules(1)
	eng := New(Options{Workers: 1})
	res := eng.RunOne(Job{Module: mods[0], Config: core.DefaultConfig()})
	if res.Err == nil {
		t.Fatal("expected the injected error to surface with retry disabled")
	}
	if !faults.IsFault(res.Err) {
		t.Fatalf("error lost its fault identity: %v", res.Err)
	}
	if st := eng.Stats(); st.Retries != 0 || st.Failures != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestDegradedResultNotRetried(t *testing.T) {
	// A one-firing budget degrades every solve to Ω. That is a success
	// carrying a sound answer — the retry layer must not re-solve it.
	mods := testModules(1)
	cfg := core.DefaultConfig()
	cfg.Budget = core.Budget{Firings: 1}
	eng := New(Options{Workers: 1, Retry: RetryPolicy{Max: 3, BaseDelay: time.Millisecond}})
	res := eng.RunOne(Job{Module: mods[0], Config: cfg})
	if res.Err != nil {
		t.Fatalf("budgeted solve failed: %v", res.Err)
	}
	if !res.Degraded {
		t.Fatal("expected a degraded result under a one-firing budget")
	}
	if res.Retries != 0 {
		t.Fatalf("degraded result was retried %d times", res.Retries)
	}
	if st := eng.Stats(); st.Retries != 0 {
		t.Fatalf("unexpected retries in stats: %+v", st)
	}
}

func TestPanicMessageFormatPreserved(t *testing.T) {
	armFaults(t, "seed=1;engine.dispatch=panic:1")
	mods := testModules(1)
	eng := New(Options{Workers: 1})
	res := eng.RunOne(Job{Module: mods[0], Config: core.DefaultConfig()})
	if res.Err == nil {
		t.Fatal("expected the injected panic to surface as an error")
	}
	if !strings.HasPrefix(res.Err.Error(), "engine: job panicked: ") {
		t.Fatalf("recovered panic lost its report format: %v", res.Err)
	}
}

func TestWatchdogForcesDegradation(t *testing.T) {
	// The solve sleeps 2s at the core.solve point while its wall deadline
	// is 10ms; the watchdog fires at 3×10ms and answers with the sound
	// Ω-degradation instead of waiting the sleep out.
	armFaults(t, "seed=1;core.solve=latency:1:2s")
	mods := testModules(1)
	cfg := core.DefaultConfig()
	cfg.Budget = core.Budget{Deadline: 10 * time.Millisecond}
	eng := New(Options{Workers: 1, WatchdogFactor: 3})
	start := time.Now()
	res := eng.RunOne(Job{Module: mods[0], Config: cfg})
	if res.Err != nil {
		t.Fatalf("watchdog path returned error: %v", res.Err)
	}
	if !res.Degraded || !res.Sol.Degraded {
		t.Fatal("watchdog answer must be the degraded (sound Ω) solution")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("watchdog did not cut the solve short: took %v", elapsed)
	}
	if st := eng.Stats(); st.WatchdogFired != 1 {
		t.Fatalf("expected WatchdogFired=1, got %+v", st)
	}
}

func TestMemGuardTightensBudget(t *testing.T) {
	// A 1-byte soft limit is always exceeded, so every job is switched to
	// the tight budget; one firing degrades the solve to Ω.
	mods := testModules(2)
	eng := New(Options{
		Workers:      1,
		MemSoftLimit: 1,
		TightBudget:  core.Budget{Firings: 1},
	})
	for i, m := range mods {
		res := eng.RunOne(Job{Module: m, Config: core.DefaultConfig()})
		if res.Err != nil {
			t.Fatalf("job %d failed: %v", i, res.Err)
		}
		if !res.Degraded {
			t.Fatalf("job %d: tight one-firing budget should degrade the solve", i)
		}
	}
	if st := eng.Stats(); st.MemTightened != int64(len(mods)) {
		t.Fatalf("expected MemTightened=%d, got %+v", len(mods), st)
	}
}

// TestReservationReleasedOnPanic is the regression test for the leaked
// cache reservation: a job that panics after becoming the leader for a
// cache key must still release the reservation, or every later job with
// the same key blocks forever waiting on a leader that no longer exists.
func TestReservationReleasedOnPanic(t *testing.T) {
	// The cache-insert point panics on its first hit only — after the
	// leader has acquired the reservation and solved.
	armFaults(t, "seed=1;engine.cache.insert=panic:@1")
	mods := testModules(1)
	eng := New(Options{Workers: 1, Cache: true})
	job := Job{Module: mods[0], Config: core.DefaultConfig()}
	first := eng.RunOne(job)
	if first.Err == nil {
		t.Fatal("expected the first job to fail from the injected panic")
	}
	done := make(chan Result, 1)
	go func() { done <- eng.RunOne(job) }()
	select {
	case second := <-done:
		if second.Err != nil {
			t.Fatalf("second job failed: %v", second.Err)
		}
		if second.CacheHit {
			t.Fatal("second job cannot hit the cache: the panicked leader never stored")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second job deadlocked: the panicked leader leaked its reservation")
	}
}

func TestCorruptCacheEntryNotServed(t *testing.T) {
	// Every insert flips the stored content hash, so every later lookup
	// must detect the mismatch, drop the entry, and re-solve.
	armFaults(t, "seed=1;engine.cache.insert=flip:1")
	mods := testModules(1)
	eng := New(Options{Workers: 1, Cache: true})
	job := Job{Module: mods[0], Config: core.DefaultConfig()}
	first := eng.RunOne(job)
	if first.Err != nil {
		t.Fatalf("first solve failed: %v", first.Err)
	}
	second := eng.RunOne(job)
	if second.Err != nil {
		t.Fatalf("re-solve after corruption failed: %v", second.Err)
	}
	if second.CacheHit {
		t.Fatal("corrupted cache entry was served as a hit")
	}
	if first.Sol.Fingerprint() != second.Sol.Fingerprint() {
		t.Fatal("re-solved solution differs from the original")
	}
	if st := eng.Stats(); st.CacheCorrupt < 1 {
		t.Fatalf("corruption went uncounted: %+v", st)
	}
}

func TestCacheIntactWhenArmedButNotFlipping(t *testing.T) {
	// Armed faults record content hashes on insert; with no flip rule the
	// hashes must verify and the second pass still hits.
	armFaults(t, "seed=1;core.wave=error:0")
	mods := testModules(1)
	eng := New(Options{Workers: 1, Cache: true})
	job := Job{Module: mods[0], Config: core.DefaultConfig()}
	if res := eng.RunOne(job); res.Err != nil {
		t.Fatalf("first solve failed: %v", res.Err)
	}
	second := eng.RunOne(job)
	if second.Err != nil {
		t.Fatalf("second solve failed: %v", second.Err)
	}
	if !second.CacheHit {
		t.Fatal("verified entry should still be served as a cache hit")
	}
	if st := eng.Stats(); st.CacheCorrupt != 0 {
		t.Fatalf("spurious corruption detections: %+v", st)
	}
}

func TestCoalescingSharesExactSolution(t *testing.T) {
	// The leader's solve sleeps 400ms, giving the waiters (started after
	// a short head start) time to queue behind its reservation instead of
	// solving redundantly.
	armFaults(t, "seed=1;core.solve=latency:1:400ms")
	mods := testModules(1)
	eng := New(Options{Workers: 8, Cache: true})
	job := Job{Module: mods[0], Config: core.DefaultConfig()}

	const waiters = 5
	results := make([]Result, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = eng.RunOne(job)
	}()
	time.Sleep(50 * time.Millisecond)
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = eng.RunOne(job)
		}(i)
	}
	wg.Wait()

	solves := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if !r.CacheHit {
			solves++
		}
		if r.Sol.Fingerprint() != results[0].Sol.Fingerprint() {
			t.Fatalf("job %d: coalesced solution differs", i)
		}
	}
	if solves != 1 {
		t.Fatalf("expected exactly 1 real solve, got %d", solves)
	}
	st := eng.Stats()
	if st.Coalesced != waiters {
		t.Fatalf("expected %d coalesced jobs, got %+v", waiters, st)
	}
	if st.CacheHits != waiters {
		t.Fatalf("coalesced jobs must count as cache hits: %+v", st)
	}
}

func TestDegradedLeaderNotSharedWithWaiters(t *testing.T) {
	// Every solve degrades under a one-firing budget. Waiters must not be
	// handed the leader's degraded solution as a cache hit — each solves
	// for itself (and gets its own sound degradation).
	mods := testModules(1)
	cfg := core.DefaultConfig()
	cfg.Budget = core.Budget{Firings: 1}
	eng := New(Options{Workers: 4, Cache: true})
	job := Job{Module: mods[0], Config: cfg}
	var wg sync.WaitGroup
	results := make([]Result, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = eng.RunOne(job)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if !r.Degraded {
			t.Fatalf("job %d: expected degradation under one-firing budget", i)
		}
		if r.CacheHit {
			t.Fatalf("job %d: degraded solution must never be served from cache", i)
		}
	}
}

func TestBackoffBoundedAndGrowing(t *testing.T) {
	rp := RetryPolicy{BaseDelay: 4 * time.Millisecond, MaxDelay: 32 * time.Millisecond}
	for attempt := 1; attempt <= 8; attempt++ {
		d := rp.backoff(attempt)
		full := 4 * time.Millisecond << (attempt - 1)
		if full > rp.MaxDelay {
			full = rp.MaxDelay
		}
		if d < full/2 || d > full {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, full/2, full)
		}
	}
}
