package engine

import (
	"fmt"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
)

// TestSolutionCacheLRU unit-tests the eviction order: the least recently
// *used* entry goes first, and get refreshes recency.
func TestSolutionCacheLRU(t *testing.T) {
	c := newSolutionCache(2)
	c.put("a", cached{})
	c.put("b", cached{})
	if _, ok := c.get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	c.put("c", cached{}) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past the cap")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 || c.evictions != 1 {
		t.Fatalf("len=%d evictions=%d, want 2/1", c.len(), c.evictions)
	}
	// Re-putting an existing key refreshes, never evicts.
	c.put("c", cached{})
	if c.len() != 2 || c.evictions != 1 {
		t.Fatalf("re-put changed occupancy: len=%d evictions=%d", c.len(), c.evictions)
	}
}

// TestCacheBoundedUnderChurn is the lifecycle regression test for the
// unbounded-map cache: a churning workload of distinct jobs must never
// push occupancy past the configured cap, while the hot tail stays cached.
func TestCacheBoundedUnderChurn(t *testing.T) {
	const cap = 8
	mods := testModules(3)
	eng := New(Options{Workers: 4, Cache: true, CacheEntries: cap})
	// 60 distinct cache keys over 3 modules: explicit keys make every job
	// a distinct entry without generating 60 modules.
	var jobs []Job
	for round := 0; round < 20; round++ {
		for i, m := range mods {
			jobs = append(jobs, Job{
				Key:    fmt.Sprintf("churn-%d-%d", round, i),
				Module: m,
				Config: core.DefaultConfig(),
			})
		}
	}
	for start := 0; start < len(jobs); start += 6 {
		end := start + 6
		if end > len(jobs) {
			end = len(jobs)
		}
		for i, r := range eng.Run(jobs[start:end]) {
			if r.Err != nil {
				t.Fatalf("job %d: %v", start+i, r.Err)
			}
		}
		if occ := eng.Stats().CacheEntries; occ > cap {
			t.Fatalf("cache occupancy %d exceeds cap %d after %d jobs", occ, cap, end)
		}
	}
	st := eng.Stats()
	if st.CacheEntries != cap {
		t.Fatalf("occupancy %d, want full cache %d", st.CacheEntries, cap)
	}
	if want := int64(len(jobs) - cap); st.CacheEvictions != want {
		t.Fatalf("evictions %d, want %d", st.CacheEvictions, want)
	}
	// The most recent cap keys are still resident: re-running them is all
	// cache hits and evicts nothing.
	before := st.CacheHits
	for i, r := range eng.Run(jobs[len(jobs)-cap:]) {
		if r.Err != nil || !r.CacheHit {
			t.Fatalf("tail job %d: err=%v hit=%v", i, r.Err, r.CacheHit)
		}
	}
	st = eng.Stats()
	if st.CacheHits != before+cap {
		t.Fatalf("cache hits %d, want %d", st.CacheHits, before+cap)
	}
	if want := int64(len(jobs) - cap); st.CacheEvictions != want {
		t.Fatalf("hot re-run evicted entries: %d, want %d", st.CacheEvictions, want)
	}
}

// TestCacheUnboundedWithoutCap preserves the batch default: CacheEntries 0
// means every solution stays resident and nothing is ever evicted.
func TestCacheUnboundedWithoutCap(t *testing.T) {
	mods := testModules(5)
	eng := New(Options{Workers: 2, Cache: true})
	for i, r := range eng.Run(jobsFor(mods, core.DefaultConfig())) {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	st := eng.Stats()
	if st.CacheEntries != len(mods) || st.CacheEvictions != 0 {
		t.Fatalf("unbounded cache: entries=%d evictions=%d, want %d/0",
			st.CacheEntries, st.CacheEvictions, len(mods))
	}
}
