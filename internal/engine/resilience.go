package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"time"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
)

// This file is the engine's resilience layer: retry with backoff for
// transient job failures, a watchdog that force-degrades stuck solves to
// the sound Ω top element, a soft memory guard that tightens budgets
// under heap pressure, and cache-entry integrity verification. All of it
// leans on the paper's central property — the Ω-degraded solution is
// sound for any problem — so every recovery path ends in either the
// exact answer or a sound over-approximation, never silent wrongness.

// RetryPolicy bounds re-solves of transiently failed jobs. A transient
// failure is a recovered panic or an injected fault (see retryable);
// budget-degraded results are successes carrying a sound solution and
// are never retried.
type RetryPolicy struct {
	// Max is how many times a failed job is re-solved. 0 disables retry.
	Max int
	// BaseDelay seeds the exponential backoff: attempt n sleeps about
	// BaseDelay·2ⁿ⁻¹ with jitter. Default 2ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. Default 100ms.
	MaxDelay time.Duration
}

// backoff returns the sleep before retry attempt n (1-based):
// exponential growth capped at MaxDelay, with uniform jitter over the
// upper half of the interval so workers that failed together do not
// retry in lockstep.
func (rp RetryPolicy) backoff(attempt int) time.Duration {
	base := rp.BaseDelay
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	cap := rp.MaxDelay
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cap {
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// panicError is a recovered job panic carried as an error. Keeping the
// panic value and stack in a dedicated type (rather than a flattened
// fmt.Errorf) lets the retry layer classify panics as transient with
// errors.As while preserving the exact report format callers log.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("engine: job panicked: %v\n%s", p.val, p.stack)
}

// retryable reports whether a job failure is worth re-solving: recovered
// panics and injected faults are transient; structural errors (invalid
// configuration, missing module, malformed problem) would fail the same
// way again.
func retryable(err error) bool {
	var pe *panicError
	if errors.As(err, &pe) {
		return true
	}
	return faults.IsFault(err)
}

// solveGuarded runs one solve under the watchdog. Solves with no wall
// deadline (or no watchdog configured) run inline. With both, the solve
// runs in a child goroutine; if it has not answered within
// WatchdogFactor× its deadline — the budget's own strided clock checks
// should have degraded it long before — the job is answered with the
// sound Ω-degradation built from the problem alone, and the stuck solve
// is abandoned (it keeps its goroutine until it finishes; its result is
// discarded, never cached, so a late answer cannot leak into anything).
func (e *Engine) solveGuarded(prob *core.Problem, cfg core.Config, tk obs.Track, ar *core.Arena) (*core.Solution, error) {
	factor := e.opts.WatchdogFactor
	if factor <= 0 || cfg.Budget.Deadline <= 0 {
		return core.SolveTracedIn(prob, cfg, tk, ar)
	}
	type outcome struct {
		sol *core.Solution
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: &panicError{val: r, stack: debug.Stack()}}
			}
		}()
		// Watchdogged solves never borrow the worker's arena: an abandoned
		// solve keeps running after the watchdog answers for it, and the
		// worker would hand the same arena to its next job while the zombie
		// still writes into it. The nil arena draws from the shared pool,
		// and a pooled arena abandoned this way is simply never returned.
		sol, err := core.SolveTracedIn(prob, cfg, tk, nil)
		ch <- outcome{sol: sol, err: err}
	}()
	timer := time.NewTimer(time.Duration(factor) * cfg.Budget.Deadline)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.sol, out.err
	case <-timer.C:
		e.mu.Lock()
		e.stats.WatchdogFired++
		e.mu.Unlock()
		e.anomaly("engine.watchdog", "")
		return core.DegradedSolution(prob), nil
	}
}

// sampleMem refreshes the soft memory guard: at most once per
// memSampleEvery, read the heap size and latch whether it exceeds
// Options.MemSoftLimit. Called on the engine loop (every job start), so
// a busy engine tracks pressure continuously and an idle one pays
// nothing.
const memSampleEvery = 100 * time.Millisecond

func (e *Engine) sampleMem() {
	if e.opts.MemSoftLimit == 0 {
		return
	}
	now := time.Now().UnixNano()
	last := e.lastMemSample.Load()
	if now-last < int64(memSampleEvery) || !e.lastMemSample.CompareAndSwap(last, now) {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.memOver.Store(ms.HeapAlloc > e.opts.MemSoftLimit)
}

// tightenBudget lowers b to the componentwise minimum of b and tight
// (treating "unset" as no constraint). The result is never looser than
// either input, so applying it under memory pressure can only degrade
// more solves to Ω sooner — a sound trade of precision for survival.
func tightenBudget(b, tight core.Budget) core.Budget {
	if tight.Deadline > 0 && (b.Deadline == 0 || tight.Deadline < b.Deadline) {
		b.Deadline = tight.Deadline
	}
	if tight.Firings != 0 && (b.Firings == 0 || tight.Firings < b.Firings) {
		b.Firings = tight.Firings
	}
	return b
}

// fingerprintHash is the content hash stored next to cached solutions
// when faults are armed and beside every persisted store entry: FNV-64a
// over the solution's canonical fingerprint text (core.FingerprintHash).
// Lookup recomputes it and refuses to serve a mismatching entry.
func fingerprintHash(sol *core.Solution) uint64 {
	return core.FingerprintHash(sol)
}
