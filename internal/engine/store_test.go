package engine

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/store"
)

func engineWithStore(t *testing.T, dir string, cacheEntries int) *Engine {
	t.Helper()
	ds, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	eng := New(Options{Workers: 2, Cache: true, CacheEntries: cacheEntries})
	eng.SetStore(ds)
	return eng
}

// TestWarmRestartZeroResolves is the tentpole acceptance check at engine
// level: solve a batch, drain (SyncStore), then answer the same batch
// from a fresh engine over the same directory — every result must be a
// fingerprint-verified disk hit, with zero re-solves.
func TestWarmRestartZeroResolves(t *testing.T) {
	dir := t.TempDir()
	mods := testModules(8)
	cfg := core.DefaultConfig()

	eng := engineWithStore(t, dir, 0)
	first := eng.Run(jobsFor(mods, cfg))
	want := make([]string, len(first))
	for i, r := range first {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		want[i] = r.Sol.Fingerprint()
	}
	if err := eng.SyncStore(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.StoreFlushed != int64(len(mods)) || st.StoreEntries != len(mods) {
		t.Fatalf("drain flushed %d entries (store holds %d), want %d",
			st.StoreFlushed, st.StoreEntries, len(mods))
	}

	// "Restart": a brand-new engine (cold memory tier) over the same dir.
	eng2 := engineWithStore(t, dir, 0)
	second := eng2.Run(jobsFor(mods, cfg))
	for i, r := range second {
		if r.Err != nil {
			t.Fatalf("restarted job %d failed: %v", i, r.Err)
		}
		if !r.DiskHit || !r.CacheHit {
			t.Fatalf("restarted job %d was re-solved (DiskHit=%v CacheHit=%v)", i, r.DiskHit, r.CacheHit)
		}
		if r.Sol.Fingerprint() != want[i] {
			t.Fatalf("restarted job %d: fingerprint differs from the original solve", i)
		}
	}
	st2 := eng2.Stats()
	if st2.DiskHits != int64(len(mods)) {
		t.Fatalf("DiskHits = %d, want %d", st2.DiskHits, len(mods))
	}
	if n := st2.Telemetry.Firings.Total(); n != 0 {
		t.Fatalf("restarted engine fired %d rules — disk hits must not solve", n)
	}

	// Third pass on the warm engine: promoted entries answer from memory.
	third := eng2.Run(jobsFor(mods, cfg))
	for i, r := range third {
		if !r.CacheHit || r.DiskHit {
			t.Fatalf("third-pass job %d not a memory hit (CacheHit=%v DiskHit=%v)", i, r.CacheHit, r.DiskHit)
		}
	}
}

// TestEvictionFlushesToStore: entries pushed out of a tiny memory LRU
// land in the disk tier and come back as verified disk hits.
func TestEvictionFlushesToStore(t *testing.T) {
	dir := t.TempDir()
	mods := testModules(6)
	cfg := core.DefaultConfig()
	eng := engineWithStore(t, dir, 2) // memory holds 2 of 6
	rs := eng.Run(jobsFor(mods, cfg))
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
	}
	st := eng.Stats()
	if st.StoreFlushed < int64(len(mods)-2) {
		t.Fatalf("StoreFlushed = %d, want >= %d (evictions must flush)", st.StoreFlushed, len(mods)-2)
	}
	// Re-running the batch: nothing re-solves — everything answers from
	// memory or the disk tier.
	again := eng.Run(jobsFor(mods, cfg))
	for i, r := range again {
		if !r.CacheHit {
			t.Fatalf("job %d re-solved after eviction (want memory or disk hit)", i)
		}
	}
	if st := eng.Stats(); st.DiskHits == 0 {
		t.Fatal("no disk hits — evicted entries were not consulted")
	}
}

// TestCorruptStoreEntryIsMissCleanAreHits is the ISSUE's store round-trip
// test at engine level: solve → flush → corrupt one entry on disk →
// restart → the corrupted entry re-solves (miss) while clean entries are
// verified hits with bit-identical fingerprints.
func TestCorruptStoreEntryIsMissCleanAreHits(t *testing.T) {
	dir := t.TempDir()
	mods := testModules(4)
	cfg := core.DefaultConfig()
	eng := engineWithStore(t, dir, 0)
	first := eng.Run(jobsFor(mods, cfg))
	want := make([]string, len(first))
	for i, r := range first {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		want[i] = r.Sol.Fingerprint()
	}
	if err := eng.SyncStore(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the last payload byte of the first record, on disk. Walking
	// the frame explicitly (header, then magic+keyLen+key+fp+payloadLen)
	// keeps the flip inside the payload so later records stay framed.
	path := filepath.Join(dir, "solutions.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const header = 10 // "PIPSTORE1\n"
	keyLen := int(raw[header+4]) | int(raw[header+5])<<8
	lenOff := header + 6 + keyLen + 8
	payloadLen := int(raw[lenOff]) | int(raw[lenOff+1])<<8 | int(raw[lenOff+2])<<16 | int(raw[lenOff+3])<<24
	raw[lenOff+4+payloadLen-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	eng2 := engineWithStore(t, dir, 0)
	second := eng2.Run(jobsFor(mods, cfg))
	resolved, diskHits := 0, 0
	for i, r := range second {
		if r.Err != nil {
			t.Fatalf("restarted job %d failed: %v", i, r.Err)
		}
		if r.Sol.Fingerprint() != want[i] {
			t.Fatalf("restarted job %d: wrong answer after corruption", i)
		}
		if r.DiskHit {
			diskHits++
		} else {
			resolved++
		}
	}
	if resolved != 1 || diskHits != len(mods)-1 {
		t.Fatalf("re-solved %d, disk hits %d; want exactly 1 re-solve and %d verified hits",
			resolved, diskHits, len(mods)-1)
	}
	if st := eng2.Stats(); st.StoreCorrupt != 1 {
		t.Fatalf("StoreCorrupt = %d, want 1", st.StoreCorrupt)
	}
}

// TestStoreLoadFaultFallsBackToSolve: an injected store.load error makes
// the disk tier miss; the job still answers correctly by solving.
func TestStoreLoadFaultFallsBackToSolve(t *testing.T) {
	dir := t.TempDir()
	mods := testModules(2)
	cfg := core.DefaultConfig()
	eng := engineWithStore(t, dir, 0)
	first := eng.Run(jobsFor(mods, cfg))
	if err := eng.SyncStore(); err != nil {
		t.Fatal(err)
	}

	reg, err := faults.ParseSpec("seed=11;store.load=error:1")
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	defer faults.Disarm()

	eng2 := engineWithStore(t, dir, 0)
	second := eng2.Run(jobsFor(mods, cfg))
	for i, r := range second {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.DiskHit {
			t.Fatalf("job %d served from a store whose every load faults", i)
		}
		if r.Sol.Fingerprint() != first[i].Sol.Fingerprint() {
			t.Fatalf("job %d: fallback solve produced a different answer", i)
		}
	}
}

// TestDegradedNeverFlushed: degraded results are not cached, so neither
// eviction nor SyncStore can leak them to disk.
func TestDegradedNeverFlushed(t *testing.T) {
	dir := t.TempDir()
	mods := testModules(3)
	cfg := core.DefaultConfig()
	cfg.Budget = core.Budget{Firings: 1} // degrade everything
	eng := engineWithStore(t, dir, 0)
	rs := eng.Run(jobsFor(mods, cfg))
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if !r.Degraded {
			t.Fatalf("job %d not degraded under a 1-firing budget", i)
		}
	}
	if err := eng.SyncStore(); err != nil {
		t.Fatal(err)
	}
	if n := eng.DiskStore().Len(); n != 0 {
		t.Fatalf("store holds %d entries after degraded-only run, want 0", n)
	}
}
