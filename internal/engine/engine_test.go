package engine

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/core/differential"
	"github.com/pip-analysis/pip/internal/ir"
	"github.com/pip-analysis/pip/internal/workload"
)

// testModules returns a deterministic set of small incomplete modules.
func testModules(n int) []*ir.Module {
	mods := make([]*ir.Module, 0, n)
	for seed := int64(1); len(mods) < n; seed++ {
		mods = append(mods, workload.GenerateLinked(seed).A)
	}
	return mods
}

func jobsFor(mods []*ir.Module, cfg core.Config) []Job {
	jobs := make([]Job, len(mods))
	for i, m := range mods {
		jobs[i] = Job{Module: m, Config: cfg}
	}
	return jobs
}

func TestRunMatchesDirectSolve(t *testing.T) {
	mods := testModules(12)
	cfg := core.DefaultConfig()
	eng := New(Options{Workers: 4})
	rs := eng.Run(jobsFor(mods, cfg))
	if len(rs) != len(mods) {
		t.Fatalf("got %d results for %d jobs", len(rs), len(mods))
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		gen := core.Generate(mods[i])
		want := core.MustSolve(gen.Problem, cfg)
		if got, wantFP := r.Sol.Fingerprint(), want.Fingerprint(); got != wantFP {
			t.Fatalf("job %d: engine solution differs from direct solve:\n%s", i, firstDiff(wantFP, got))
		}
		if r.Duration <= 0 {
			t.Fatalf("job %d: non-positive duration", i)
		}
	}
	st := eng.Stats()
	if st.Jobs != len(mods) || st.Failures != 0 || st.CacheHits != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.Wall <= 0 || st.CPU <= 0 {
		t.Fatalf("stats missing timings: %+v", st)
	}
	if st.PeakInFlight < 1 || st.PeakInFlight > 4 {
		t.Fatalf("peak in-flight out of range: %d", st.PeakInFlight)
	}
}

func TestCacheSecondPassHits(t *testing.T) {
	mods := testModules(6)
	cfg := core.DefaultConfig()
	eng := New(Options{Workers: 3, Cache: true})
	first := eng.Run(jobsFor(mods, cfg))
	second := eng.Run(jobsFor(mods, cfg))
	for i := range mods {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, first[i].Err, second[i].Err)
		}
		if first[i].CacheHit {
			t.Fatalf("job %d: unexpected cache hit on first pass", i)
		}
		if !second[i].CacheHit {
			t.Fatalf("job %d: expected cache hit on second pass", i)
		}
		if first[i].Sol.Fingerprint() != second[i].Sol.Fingerprint() {
			t.Fatalf("job %d: cached solution differs", i)
		}
	}
	st := eng.Stats()
	if st.CacheHits != len(mods) {
		t.Fatalf("expected %d cache hits, got %d", len(mods), st.CacheHits)
	}
	// Distinct configurations must not share cache entries.
	other := core.MustParseConfig("EP+WL(FIFO)")
	for i, r := range eng.Run(jobsFor(mods, other)) {
		if r.CacheHit {
			t.Fatalf("job %d: cache hit across configurations", i)
		}
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
}

func TestPanicBecomesJobFailure(t *testing.T) {
	mods := testModules(3)
	// Corrupt the middle module: a load whose pointer operand is nil makes
	// constraint generation crash.
	broken := false
	mods[1].ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if !broken && in.Op == ir.OpLoad {
			in.Args[0] = nil
			broken = true
		}
	})
	if !broken {
		t.Skip("no load instruction to corrupt")
	}
	eng := New(Options{Workers: 2})
	rs := eng.Run(jobsFor(mods, core.DefaultConfig()))
	if rs[0].Err != nil || rs[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", rs[0].Err, rs[2].Err)
	}
	if rs[1].Err == nil {
		t.Fatal("corrupted job did not fail")
	}
	if !strings.Contains(rs[1].Err.Error(), "panicked") {
		t.Fatalf("failure does not report the panic: %v", rs[1].Err)
	}
	if st := eng.Stats(); st.Failures != 1 {
		t.Fatalf("expected 1 failure, got %+v", st)
	}
}

func TestEmptyAndInvalidJobs(t *testing.T) {
	eng := New(Options{Workers: 2})
	if rs := eng.Run(nil); len(rs) != 0 {
		t.Fatalf("empty run returned %d results", len(rs))
	}
	rs := eng.Run([]Job{{Config: core.DefaultConfig()}})
	if rs[0].Err == nil {
		t.Fatal("job without Module or Gen must fail")
	}
}

func TestRepsKeepFastestDuration(t *testing.T) {
	m := testModules(1)[0]
	eng := New(Options{Workers: 1})
	r := eng.RunOne(Job{Module: m, Config: core.DefaultConfig(), Reps: 3})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Duration <= 0 {
		t.Fatal("reps run lost its duration")
	}
	// The kept duration is the minimum across reps, so it can never exceed
	// the first solution's recorded duration.
	if r.Duration > r.Sol.Stats.Duration {
		t.Fatalf("duration %v exceeds first-solve duration %v", r.Duration, r.Sol.Stats.Duration)
	}
}

// TestRunOneCountsWall: RunOne must contribute to Stats.Wall exactly like
// Run — the original implementation only accumulated wall time in Run, so
// a service built on RunOne would report zero busy time forever.
func TestRunOneCountsWall(t *testing.T) {
	m := testModules(1)[0]
	eng := New(Options{Workers: 1})
	if r := eng.RunOne(Job{Module: m, Config: core.DefaultConfig()}); r.Err != nil {
		t.Fatal(r.Err)
	}
	st := eng.Stats()
	if st.Wall <= 0 {
		t.Fatalf("RunOne left Stats.Wall at %v", st.Wall)
	}
	if st.Wall < st.CPU {
		t.Fatalf("single sequential job: wall %v < cpu %v", st.Wall, st.CPU)
	}
}

// TestOverlappingRunsWallNotDoubleCounted: wall time is a busy span (first
// job in → last job out), so N overlapping Run calls must accumulate at
// most the enclosing elapsed time, not N times it.
func TestOverlappingRunsWallNotDoubleCounted(t *testing.T) {
	mods := testModules(6)
	eng := New(Options{Workers: 4})
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, r := range eng.Run(jobsFor(mods, core.DefaultConfig())) {
				if r.Err != nil {
					t.Errorf("job %d: %v", i, r.Err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := eng.Stats()
	if st.Wall <= 0 {
		t.Fatal("no wall time recorded")
	}
	// Busy spans are disjoint sub-intervals of [start, start+elapsed], so
	// their sum cannot exceed the enclosing elapsed time. Under the old
	// per-Run accounting this could reach 3x elapsed.
	if st.Wall > elapsed {
		t.Fatalf("wall %v exceeds enclosing elapsed %v: overlap double-counted", st.Wall, elapsed)
	}
}

// TestLiveStatsIncludeOpenBusySpan: a snapshot taken mid-run (what a
// /metrics scrape does) must include the elapsed part of the open busy
// span instead of freezing at the last idle point.
func TestLiveStatsIncludeOpenBusySpan(t *testing.T) {
	eng := New(Options{Workers: 1})
	eng.noteStart()
	time.Sleep(5 * time.Millisecond)
	if st := eng.Stats(); st.Wall < 4*time.Millisecond {
		t.Fatalf("mid-run snapshot wall %v, want the open span included", st.Wall)
	}
	eng.noteDone(Result{})
	base := eng.Stats().Wall
	if base < 4*time.Millisecond {
		t.Fatalf("closed span lost: wall %v", base)
	}
	if again := eng.Stats().Wall; again != base {
		t.Fatalf("idle engine wall drifted: %v -> %v", base, again)
	}
}

func TestModuleHashDistinguishesContent(t *testing.T) {
	mods := testModules(2)
	h0, h1 := ModuleHash(mods[0]), ModuleHash(mods[1])
	if h0 == h1 {
		t.Fatal("distinct modules hash equal")
	}
	if h0 != ModuleHash(mods[0]) {
		t.Fatal("hash not deterministic")
	}
	cfg := core.DefaultConfig()
	if CacheKey(h0, cfg) == CacheKey(h1, cfg) {
		t.Fatal("cache keys collide")
	}
}

// TestSolveWorkersFolding checks the engine's default intra-solve worker
// count: it is folded into job configs (so the solve actually stratifies),
// counted by Stats.Stratified, and — because every SolveWorkers >= 1
// renders as the same "PAR" marker — parallel solves at different worker
// counts share one cache entry.
func TestSolveWorkersFolding(t *testing.T) {
	g := &core.Gen{Problem: differential.Generate(5, differential.DefaultGen())}
	eng := New(Options{Workers: 2, Cache: true, SolveWorkers: 4})
	res := eng.RunOne(Job{Gen: g, Key: "sw-fold", Config: core.MustParseConfig("IP+WL(FIFO)+PIP")})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Sol.Telemetry.Strata == 0 {
		t.Fatal("default SolveWorkers was not folded into the job config (no strata ran)")
	}
	if st := eng.Stats(); st.Stratified != 1 {
		t.Fatalf("Stratified = %d, want 1", st.Stratified)
	}

	// Derived cache keys: every worker count >= 1 renders as the same
	// "PAR" marker — the differential harness guarantees bit-identical
	// solutions, so they may share one cache entry — while the sequential
	// path keys separately (its solve is identical too, but only up to
	// Canonical, not Fingerprint).
	c4, c8, c0 := core.MustParseConfig("IP+WL(FIFO)+PIP"), core.MustParseConfig("IP+WL(FIFO)+PIP"), core.MustParseConfig("IP+WL(FIFO)+PIP")
	c4.SolveWorkers, c8.SolveWorkers = 4, 8
	if CacheKey("h", c4) != CacheKey("h", c8) {
		t.Fatal("worker counts 4 and 8 derive different cache keys")
	}
	if CacheKey("h", c4) == CacheKey("h", c0) {
		t.Fatal("parallel and sequential solves share a cache key")
	}
}
