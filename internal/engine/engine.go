// Package engine is the parallel batch-analysis engine: it fans independent
// per-file solves (and per-configuration sweeps) across a bounded goroutine
// worker pool. Every translation unit is an independent incomplete-program
// analysis (the paper's evaluation is embarrassingly parallel at the file
// level), so the engine can use all cores while guaranteeing results that
// are bit-identical to the sequential path — a guarantee enforced by the
// differential harness in this package (see differential.go).
//
// The engine provides:
//
//   - deterministic result ordering: Run(jobs)[i] always corresponds to
//     jobs[i], no matter how the scheduler interleaves workers;
//   - a content-hash-keyed solution cache, so repeated benchmark passes
//     over the same module under the same configuration skip re-solving;
//   - per-job panic recovery: a crashing solve becomes a reported job
//     failure instead of taking down the whole run;
//   - an engine stats block (jobs, cache hits, failures, wall/CPU time,
//     peak in-flight jobs).
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/core/incr"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/ir"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/store"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the goroutine pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache enables the content-hash-keyed solution cache. Cached
	// solutions are shared between results; Solution queries are
	// read-only, so sharing is safe across goroutines.
	Cache bool
	// CacheEntries bounds the number of resident cached solutions; when a
	// new solution would exceed the bound, the least recently used entry
	// is evicted (counted in Stats.CacheEvictions). <= 0 means unbounded,
	// which is fine for one-shot batch runs but not for a long-running
	// process serving an unbounded stream of distinct modules — servers
	// must set a cap.
	CacheEntries int
	// Budget is the default per-solve budget, applied to every job whose
	// own Config.Budget is zero. The effective budget is folded into the
	// job's configuration before the cache key is computed, so budgeted
	// and unbudgeted runs never share cached solutions. Degraded
	// solutions are never cached (a deadline abort is nondeterministic).
	Budget core.Budget
	// SolveWorkers is the default intra-solve worker count
	// (core.Config.SolveWorkers), applied to every job whose own config
	// leaves it zero. Like Budget it is folded in before the cache key is
	// computed; unlike Budget that changes nothing for sharing, because
	// every SolveWorkers >= 1 renders as the same "PAR" config marker —
	// the differential harness guarantees the solutions are bit-identical
	// across worker counts, so they may share cache entries.
	SolveWorkers int
	// Trace, when non-nil, records engine activity onto the trace: one
	// track per pool worker carrying a span per job (queue wait and run
	// time) with the solve's own phase spans nested inside. A nil trace
	// costs nothing. Jobs can redirect their solve spans to a different
	// lane (e.g. a request-scoped trace) via Job.Trace.
	Trace *obs.Trace

	// Retry re-solves jobs that failed transiently (recovered panics,
	// injected faults) with exponential backoff and jitter. Degraded
	// results are successes — they carry the sound Ω-degraded solution —
	// and are never retried. The zero policy disables retry.
	Retry RetryPolicy
	// WatchdogFactor, when > 0, bounds solves that carry a wall-clock
	// budget deadline: one that has not answered within WatchdogFactor×
	// its deadline (the budget's own strided checks should degrade it
	// far earlier) is force-answered with the sound Ω-degradation and
	// the stuck solve abandoned. 0 disables the watchdog.
	WatchdogFactor int
	// MemSoftLimit is a soft heap bound in bytes: while the sampled
	// heap allocation exceeds it, new jobs have their budgets tightened
	// to TightBudget (componentwise minimum) so the engine degrades
	// precision before the process nears OOM. 0 disables the guard.
	MemSoftLimit uint64
	// TightBudget is the budget imposed under memory pressure. Ignored
	// when MemSoftLimit is 0.
	TightBudget core.Budget

	// OnAnomaly, when non-nil, is called at the engine's anomaly sites —
	// watchdog-forced Ω ("engine.watchdog"), memory-guard budget
	// tightening ("engine.memguard"), cache verify-on-read failure
	// ("engine.cache_corrupt"), and store verified-miss
	// ("store.corrupt") — with a stable reason string and a detail (the
	// cache key where one exists). It is always invoked outside the
	// engine's mutex, so the hook may query Stats; it must still return
	// quickly (it runs on job goroutines).
	OnAnomaly func(reason, detail string)
}

// Job is one unit of work: solve one problem under one configuration.
// Either Gen (a pre-generated constraint problem) or Module must be set;
// when only Module is set, constraint generation runs inside the job (and
// inside its panic-recovery boundary).
type Job struct {
	// Key overrides the cache key. Empty means: derive it from the
	// module's content hash and the configuration (requires Module).
	Key    string
	Module *ir.Module
	Gen    *core.Gen
	// Summaries are extra handwritten imported-function summaries, used
	// only when generation runs in-job (Gen == nil).
	Summaries map[string]core.Summary
	Config    core.Config
	// Reps repeats the solve and keeps the fastest duration (the paper
	// solves each file 50 times and reports the minimum). Solutions are
	// deterministic, so only the timing differs; the first solution is
	// returned. <= 0 means 1.
	Reps int
	// Trace is the lane the solve's phase spans and convergence profile
	// are recorded onto (core.SolveTraced). The zero Track records
	// nothing; when unset and the engine has Options.Trace, the worker's
	// own track is used instead, nesting the solve under the job span.
	Trace obs.Track
	// Demand, when non-empty, switches the job to demand-driven mode: only
	// the constraint components reachable from these roots are solved, and
	// every other variable answers the sound Ω. Demand results are partial
	// by construction, so they bypass the solution cache entirely — a
	// cached demand slice must never answer a later exhaustive query.
	Demand []core.VarID
}

// Result is one job's outcome. Exactly one of Sol/Err is meaningful.
type Result struct {
	Gen *core.Gen
	Sol *core.Solution
	Err error
	// CacheHit reports that Sol was served from the solution cache.
	CacheHit bool
	// Degraded reports that the solve exhausted its budget and Sol is the
	// Ω-degraded solution (see core.Budget).
	Degraded bool
	// Duration is the fastest solve time across the job's reps (zero on
	// cache hits: nothing was solved).
	Duration time.Duration
	// Retries is how many times the job was re-solved after transient
	// failures before producing this result.
	Retries int
	// Coalesced reports that this result was shared from a concurrent
	// solve of the same cache key (request coalescing): the job waited
	// for the in-flight leader instead of re-solving. Coalesced results
	// are also CacheHits.
	Coalesced bool
	// DiskHit reports that Sol was loaded (and fingerprint-verified) from
	// the persistent store instead of solved: the warm-restart path. Disk
	// hits are also CacheHits, and the loaded solution is promoted into
	// the in-memory tier.
	DiskHit bool
	// Incremental describes which incremental path a RunIncremental call
	// took (reuse, resume, or fallback) and how much it reused; nil for
	// ordinary jobs.
	Incremental *incr.UpdateStats
	// DemandStats reports how much of the problem a demand-driven job
	// (Job.Demand non-empty) explored; nil for exhaustive jobs.
	DemandStats *core.DemandStats
	// DemandExplored is the demand job's exploration mask: variables
	// outside it answer the sound Ω. Nil for exhaustive jobs.
	DemandExplored []bool
}

// Stats is the engine's cumulative counters across all Run calls. The
// struct marshals to JSON (and through expvar via Engine.Publish) with the
// telemetry block aggregated across every solved job.
type Stats struct {
	Jobs      int `json:"jobs"`
	CacheHits int `json:"cache_hits"`
	Failures  int `json:"failures"`
	// Degraded counts jobs whose solve exhausted its budget and returned
	// the Ω-degraded solution.
	Degraded int `json:"degraded"`
	// CacheEntries is the cache occupancy at snapshot time, bounded by
	// Options.CacheEntries when a cap is configured.
	CacheEntries int `json:"cache_entries"`
	// CacheEvictions counts solutions dropped by the LRU bound.
	CacheEvictions int64 `json:"cache_evictions"`
	// Wall accumulates the engine's busy span: the wall-clock time during
	// which at least one job was running. Each busy span opens when a job
	// starts on an idle engine and closes when the last in-flight job
	// finishes, so overlapping Run calls (or RunOne calls racing a Run)
	// are counted once, not once per call.
	Wall time.Duration `json:"wall_ns"`
	// CPU accumulates per-job solve durations (the sequential-equivalent
	// cost of the work performed).
	CPU time.Duration `json:"cpu_ns"`
	// PeakInFlight is the maximum number of jobs observed running
	// concurrently.
	PeakInFlight int `json:"peak_in_flight"`
	// Workers is the configured pool bound.
	Workers int `json:"workers"`
	// Retries counts re-solves of transiently failed jobs;
	// RetrySuccesses counts the re-solves that then produced a result.
	Retries        int64 `json:"retries"`
	RetrySuccesses int64 `json:"retry_successes"`
	// WatchdogFired counts solves force-degraded to Ω by the watchdog.
	WatchdogFired int64 `json:"watchdog_fired"`
	// MemTightened counts jobs whose budget was tightened by the soft
	// memory guard.
	MemTightened int64 `json:"mem_tightened"`
	// CacheCorrupt counts cache entries whose content hash failed
	// verification on read; each was evicted and re-solved, never served.
	CacheCorrupt int64 `json:"cache_corrupt_detected"`
	// Stratified counts solved (non-cached) jobs whose solve actually ran
	// stratified parallel presaturation — SolveWorkers >= 1 on a problem
	// big enough to stratify. The gap between Jobs and Stratified shows
	// how much of a parallel-configured workload fell back to the plain
	// sequential path.
	Stratified int64 `json:"stratified"`
	// Coalesced counts jobs served by waiting on a concurrent identical
	// solve instead of solving themselves.
	Coalesced int64 `json:"coalesced"`
	// Incremental counts RunIncremental calls (all three paths: reuse,
	// resume, fallback); Demand counts demand-driven jobs.
	Incremental int64 `json:"incremental"`
	Demand      int64 `json:"demand"`
	// DiskHits counts jobs served from the persistent store's verified
	// second tier instead of being solved (warm-restart hits).
	DiskHits int64 `json:"disk_hits"`
	// StoreFlushed counts solutions appended to the persistent store, both
	// lazily on LRU eviction and in bulk on SyncStore (graceful drain).
	StoreFlushed int64 `json:"store_flushed"`
	// StoreEntries is the persistent store's live-entry count at snapshot
	// time; StoreCorrupt counts entries its verify-on-load rejected (each
	// was a miss answered by a re-solve, never served).
	StoreEntries int   `json:"store_entries"`
	StoreCorrupt int64 `json:"store_corrupt_detected"`
	// Telemetry aggregates per-solve telemetry across all non-cached jobs:
	// phase durations and firings sum, the worklist peak takes the max.
	Telemetry core.Telemetry `json:"telemetry"`
}

func (st Stats) String() string {
	return fmt.Sprintf("engine: %d jobs (%d cache hits, %d failures, %d degraded), wall %v, cpu %v, %d workers, peak in-flight %d",
		st.Jobs, st.CacheHits, st.Failures, st.Degraded, st.Wall.Round(time.Millisecond),
		st.CPU.Round(time.Millisecond), st.Workers, st.PeakInFlight)
}

// JSON renders the stats block (including aggregated telemetry) as
// indented JSON, the same shape expvar exports.
func (st Stats) JSON() string {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return "{}" // unreachable: Stats has no unmarshalable fields
	}
	return string(b)
}

// Merge accumulates u into st, for aggregating stats across several
// engines (the bench harness keeps one engine per worker count).
func (st *Stats) Merge(u Stats) {
	st.Jobs += u.Jobs
	st.CacheHits += u.CacheHits
	st.Failures += u.Failures
	st.Degraded += u.Degraded
	st.CacheEntries += u.CacheEntries
	st.CacheEvictions += u.CacheEvictions
	st.Wall += u.Wall
	st.CPU += u.CPU
	st.Retries += u.Retries
	st.RetrySuccesses += u.RetrySuccesses
	st.WatchdogFired += u.WatchdogFired
	st.MemTightened += u.MemTightened
	st.CacheCorrupt += u.CacheCorrupt
	st.Stratified += u.Stratified
	st.Coalesced += u.Coalesced
	st.Incremental += u.Incremental
	st.Demand += u.Demand
	st.DiskHits += u.DiskHits
	st.StoreFlushed += u.StoreFlushed
	st.StoreEntries += u.StoreEntries
	st.StoreCorrupt += u.StoreCorrupt
	if u.PeakInFlight > st.PeakInFlight {
		st.PeakInFlight = u.PeakInFlight
	}
	if u.Workers > st.Workers {
		st.Workers = u.Workers
	}
	st.Telemetry.Merge(u.Telemetry)
}

// published maps expvar names to the engine currently exported under each
// name. Guarded by publishMu; the atomic holder lets the expvar closure
// read the current engine without taking the mutex. Registering through
// this table (instead of an expvar.Get existence check followed by
// expvar.Publish) removes the check-then-act window in which two engines
// registering the same name concurrently could both miss the check and
// double-Publish — expvar panics on duplicate names.
var (
	publishMu sync.Mutex
	published = map[string]*atomic.Pointer[Engine]{}
)

// Publish registers the engine's live stats under the given expvar name
// (exported as JSON on /debug/vars when the host process serves it).
// Publishing a name that is already registered re-points the export at
// this engine — the latest engine wins — so a long-running process that
// rebuilds its engine keeps exporting live stats instead of a dead
// engine's frozen counters. Publish is safe to call concurrently.
func (e *Engine) Publish(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if h, ok := published[name]; ok {
		h.Store(e)
		return
	}
	h := &atomic.Pointer[Engine]{}
	h.Store(e)
	published[name] = h
	expvar.Publish(name, expvar.Func(func() any { return h.Load().Stats() }))
}

type cached struct {
	gen *core.Gen
	sol *core.Solution
	// fp is the solution's content hash, recorded at insert time only when
	// fault injection is armed; 0 means "no hash recorded". Lookup verifies
	// it so a corrupted entry is dropped instead of served (see verifyEntry).
	fp uint64
}

// Engine is a reusable batch solver. The zero value is not usable; call New.
type Engine struct {
	opts Options

	mu        sync.Mutex
	cache     *solutionCache
	stats     Stats
	inFlight  int
	busyStart time.Time // start of the current busy span; valid while inFlight > 0

	// dstore is the persistent second cache tier (nil = memory only):
	// consulted on memory misses, written lazily on LRU eviction and in
	// bulk by SyncStore. Guarded by mu for the pointer; the store itself
	// is internally synchronized.
	dstore *store.Store

	// Soft memory guard state: memOver latches whether the last heap
	// sample exceeded Options.MemSoftLimit; lastMemSample rate-limits
	// runtime.ReadMemStats (unix nanos of the last sample).
	memOver       atomic.Bool
	lastMemSample atomic.Int64
}

// New returns an engine with the given options.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{opts: opts}
	e.stats.Workers = opts.Workers
	if opts.Cache {
		e.cache = newSolutionCache(opts.CacheEntries)
	}
	return e
}

// Workers returns the configured pool bound.
func (e *Engine) Workers() int { return e.opts.Workers }

// CacheCap returns the configured cache bound (0 means unbounded, or no
// cache at all when Options.Cache is off).
func (e *Engine) CacheCap() int {
	if e.opts.CacheEntries < 0 {
		return 0
	}
	return e.opts.CacheEntries
}

// SetStore attaches a persistent store as the cache's second tier. Pass
// nil to detach. The engine does not own the store; the caller closes it
// after the engine is drained.
func (e *Engine) SetStore(s *store.Store) {
	e.mu.Lock()
	e.dstore = s
	e.mu.Unlock()
}

// DiskStore returns the attached persistent store, or nil.
func (e *Engine) DiskStore() *store.Store {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dstore
}

// SyncStore flushes every resident non-degraded cache entry to the
// persistent store and syncs it to stable storage — the graceful-drain
// flush that makes the next process start warm. No-op without a store.
func (e *Engine) SyncStore() error {
	e.mu.Lock()
	ds := e.dstore
	var ents []cacheEntry
	if ds != nil && e.cache != nil {
		ents = e.cache.snapshot()
	}
	e.mu.Unlock()
	if ds == nil {
		return nil
	}
	before := ds.Stats().Saves
	var err error
	for _, ent := range ents {
		if ent.val.sol == nil || ent.val.sol.Degraded {
			continue
		}
		if serr := ds.Save(ent.key, ent.val.sol); serr != nil && err == nil {
			err = serr
		}
	}
	flushed := ds.Stats().Saves - before
	e.mu.Lock()
	e.stats.StoreFlushed += int64(flushed)
	e.mu.Unlock()
	if serr := ds.Sync(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	if e.cache != nil {
		st.CacheEntries = e.cache.len()
		st.CacheEvictions = e.cache.evictions
	}
	if e.dstore != nil {
		st.StoreEntries = e.dstore.Len()
		st.StoreCorrupt = int64(e.dstore.Stats().Corrupt)
	}
	// An engine mid-run has an open busy span; fold the elapsed part in so
	// live exports (expvar, /metrics) show monotonic wall time instead of
	// a value frozen at the last idle point.
	if e.inFlight > 0 {
		st.Wall += time.Since(e.busyStart)
	}
	return st
}

// ModuleHash returns the content hash of a module (over its printed MIR
// form), the basis of the engine's cache keys.
func ModuleHash(m *ir.Module) string {
	h := sha256.Sum256([]byte(ir.Print(m)))
	return hex.EncodeToString(h[:])
}

// CacheKey combines a module content hash with a configuration.
func CacheKey(moduleHash string, cfg core.Config) string {
	return moduleHash + "|" + cfg.String()
}

// Run executes all jobs across the worker pool and returns their results
// in submission order: out[i] is jobs[i]'s result regardless of scheduling
// or submission shuffling by the caller.
func (e *Engine) Run(jobs []Job) []Result {
	out := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	workers := e.opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	submitted := time.Now()
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wtk obs.Track
			if e.opts.Trace != nil {
				wtk = e.opts.Trace.NewTrack(fmt.Sprintf("worker-%d", w))
			}
			// One arena per pool worker, reused across every job the worker
			// picks up: union-find forests, flag tables, simple-edge sets and
			// worklist storage survive from solve to solve instead of being
			// reallocated per job.
			ar := core.NewArena()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				// Queue wait is submission-to-pickup: all jobs are queued
				// the moment Run starts, so a deep batch shows later jobs
				// waiting longer — exactly the pool-saturation signal the
				// trace is for.
				sp := wtk.Begin("job",
					obs.N("index", int64(i)),
					obs.N("queue_wait_us", time.Since(submitted).Microseconds()))
				e.noteStart()
				out[i] = e.runJob(jobs[i], e.jobTrack(jobs[i], wtk), ar)
				e.noteDone(out[i])
				sp.End(
					obs.N("cache_hit", b2i(out[i].CacheHit)),
					obs.N("degraded", b2i(out[i].Degraded)))
			}
		}(w)
	}
	wg.Wait()
	return out
}

// RunOne executes a single job synchronously (still inside the recovery
// boundary and the cache). With engine tracing on, the job span lands on
// a shared "inline" track (RunOne has no pool queue, so queue wait is 0).
func (e *Engine) RunOne(j Job) Result {
	var wtk obs.Track
	if e.opts.Trace != nil {
		wtk = e.opts.Trace.NewTrack("inline")
	}
	sp := wtk.Begin("job", obs.N("queue_wait_us", 0))
	e.noteStart()
	res := e.runJob(j, e.jobTrack(j, wtk), nil)
	e.noteDone(res)
	sp.End(obs.N("cache_hit", b2i(res.CacheHit)), obs.N("degraded", b2i(res.Degraded)))
	return res
}

// jobTrack picks the lane for a job's solve spans: the job's own
// request-scoped lane when set, else the worker's track.
func (e *Engine) jobTrack(j Job, wtk obs.Track) obs.Track {
	if j.Trace.Enabled() {
		return j.Trace
	}
	return wtk
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (e *Engine) noteStart() {
	e.mu.Lock()
	if e.inFlight == 0 {
		e.busyStart = time.Now()
	}
	e.inFlight++
	if e.inFlight > e.stats.PeakInFlight {
		e.stats.PeakInFlight = e.inFlight
	}
	e.mu.Unlock()
}

func (e *Engine) noteDone(res Result) {
	e.mu.Lock()
	e.inFlight--
	if e.inFlight == 0 {
		// Close the busy span: wall time is first-job-in to last-job-out,
		// so concurrent Run/RunOne callers never double-count an overlap,
		// and a lone RunOne contributes its span too.
		e.stats.Wall += time.Since(e.busyStart)
	}
	e.stats.Jobs++
	if res.CacheHit {
		e.stats.CacheHits++
	}
	if res.Err != nil {
		e.stats.Failures++
	}
	if res.Degraded {
		e.stats.Degraded++
	}
	// Telemetry describes solving work, so cache hits (which solved
	// nothing) contribute nothing.
	if res.Sol != nil && !res.CacheHit {
		e.stats.Telemetry.Merge(res.Sol.Telemetry)
		if res.Sol.Telemetry.Strata > 0 {
			e.stats.Stratified++
		}
	}
	if res.Incremental != nil {
		e.stats.Incremental++
	}
	if res.DemandStats != nil {
		e.stats.Demand++
	}
	e.stats.CPU += res.Duration
	e.mu.Unlock()
}

func (e *Engine) store(key string, c cached) {
	e.mu.Lock()
	evicted := e.cache.put(key, c)
	ds := e.dstore
	e.mu.Unlock()
	// Lazy write-behind: entries pushed out of the memory tier are flushed
	// to the persistent store (outside the engine mutex) rather than lost,
	// so the disk tier accumulates the full history of the working set.
	if ds == nil {
		return
	}
	before := ds.Stats().Saves
	for _, ent := range evicted {
		if ent.val.sol == nil || ent.val.sol.Degraded {
			continue
		}
		_ = ds.Save(ent.key, ent.val.sol) // a failed flush only costs warmth
	}
	if flushed := ds.Stats().Saves - before; flushed > 0 {
		e.mu.Lock()
		e.stats.StoreFlushed += int64(flushed)
		e.mu.Unlock()
	}
}

// anomaly reports an anomaly to the Options.OnAnomaly hook, if any.
// Callers must not hold e.mu: the hook may read Stats.
func (e *Engine) anomaly(reason, detail string) {
	if e.opts.OnAnomaly != nil {
		e.opts.OnAnomaly(reason, detail)
	}
}

// acquire resolves key against the cache with request coalescing. It
// either returns a verified cache hit (rsv == nil), or makes the caller
// the leader for key (hit == false): the caller must solve and then
// release rsv exactly once, success or not. A caller that finds another
// leader in flight waits for it; a shared exact solution comes back as a
// coalesced hit, while a failed or degraded leader sends waiters back
// around the loop to solve for themselves.
func (e *Engine) acquire(key string) (c cached, hit bool, coalesced bool, rsv *reservation) {
	// A verify-on-read failure is detected under e.mu; the anomaly hook
	// must run outside it (it may read Stats), so flag it and fire on the
	// way out — whichever branch returns.
	corrupt := false
	defer func() {
		if corrupt {
			e.anomaly("engine.cache_corrupt", key)
		}
	}()
	for {
		e.mu.Lock()
		if c, ok := e.cache.get(key); ok {
			if e.verifyEntry(key, c) {
				e.mu.Unlock()
				return c, true, coalesced, nil
			}
			// Entry failed content-hash verification: verifyEntry dropped
			// it; fall through and solve as if it had never been cached.
			corrupt = true
		}
		r, inFlight := e.cache.reserved[key]
		if !inFlight {
			r = &reservation{done: make(chan struct{})}
			e.cache.reserved[key] = r
			e.mu.Unlock()
			return cached{}, false, coalesced, r
		}
		e.mu.Unlock()
		<-r.done
		if r.ok {
			e.mu.Lock()
			e.stats.Coalesced++
			e.mu.Unlock()
			return r.c, true, true, nil
		}
		// The leader failed or degraded; re-check the cache and contend
		// to become the next leader.
	}
}

// verifyEntry checks a cache entry's content hash on read. Entries carry
// a hash only when faults are armed (fp != 0); a mismatch means the
// entry no longer matches the solution it was stored with — it is
// dropped and counted, and the caller re-solves. Called under e.mu.
func (e *Engine) verifyEntry(key string, c cached) bool {
	if c.fp == 0 || faults.Active() == nil {
		return true
	}
	if fingerprintHash(c.sol) == c.fp {
		return true
	}
	e.cache.drop(key)
	e.stats.CacheCorrupt++
	return false
}

// release ends the caller's leadership of key: the reservation is
// removed and its waiters woken. Deferred by the leader in attemptJob so
// that every exit — including a recovered panic between reserve and
// store — releases exactly once; a leaked reservation would deadlock
// every later job with the same key.
func (e *Engine) release(key string, rsv *reservation) {
	e.mu.Lock()
	if e.cache.reserved[key] == rsv {
		delete(e.cache.reserved, key)
	}
	e.mu.Unlock()
	close(rsv.done)
}

// runJob executes one job with the retry policy: transient failures
// (recovered panics, injected faults) are re-solved up to Retry.Max
// times with exponential backoff and jitter. Structural failures and
// degraded results return immediately — a degraded result is a success
// carrying the sound Ω-degradation, and retrying it would just spend
// the budget again.
func (e *Engine) runJob(j Job, tk obs.Track, ar *core.Arena) Result {
	res := e.attemptJob(j, tk, ar)
	for n := 1; res.Err != nil && n <= e.opts.Retry.Max && retryable(res.Err); n++ {
		e.mu.Lock()
		e.stats.Retries++
		e.mu.Unlock()
		time.Sleep(e.opts.Retry.backoff(n))
		res = e.attemptJob(j, tk, ar)
		res.Retries = n
		if res.Err == nil {
			e.mu.Lock()
			e.stats.RetrySuccesses++
			e.mu.Unlock()
		}
	}
	return res
}

// attemptJob executes one solve attempt. Any panic below this frame — in
// constraint generation, the solver, cache-key hashing, or an injected
// fault — is converted into a Result.Err so one bad file cannot take
// down a batch run (and so the retry layer can classify it).
func (e *Engine) attemptJob(j Job, tk obs.Track, ar *core.Arena) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: &panicError{val: r, stack: debug.Stack()}}
		}
	}()
	if j.Gen == nil && j.Module == nil {
		return Result{Err: errors.New("engine: job has neither Module nor Gen")}
	}
	// Chaos hook: dispatch faults stand for everything that can go wrong
	// between queueing a job and starting its solve.
	if err := faults.Inject(faults.EngineDispatch); err != nil {
		return Result{Err: fmt.Errorf("engine: dispatch: %w", err)}
	}
	// Soft memory guard: under heap pressure, tighten the job's budget
	// before it is folded into the cache key, so pressured solves degrade
	// to Ω sooner instead of pushing the process toward OOM.
	e.sampleMem()
	if e.opts.MemSoftLimit != 0 && e.memOver.Load() && !e.opts.TightBudget.IsZero() {
		if t := tightenBudget(j.Config.Budget, e.opts.TightBudget); t != j.Config.Budget {
			j.Config.Budget = t
			e.mu.Lock()
			e.stats.MemTightened++
			e.mu.Unlock()
			e.anomaly("engine.memguard", "")
		}
	}
	// Fold the engine's default budget into the job's configuration before
	// computing the cache key: the budget is part of Config.String(), so a
	// budgeted job can never be served an unbudgeted cached solution (or
	// vice versa).
	if j.Config.Budget.IsZero() && !e.opts.Budget.IsZero() {
		j.Config.Budget = e.opts.Budget
	}
	// Same folding for the default intra-solve worker count; it too is part
	// of Config.String() (as the worker-count-independent "PAR" marker).
	if j.Config.SolveWorkers == 0 && e.opts.SolveWorkers > 0 {
		j.Config.SolveWorkers = e.opts.SolveWorkers
	}
	// Demand-driven jobs bypass the cache in both directions: their
	// solutions are partial slices, exact only on the explored components,
	// so serving a cached exhaustive solution would overstate the work done
	// and storing the slice would poison later exhaustive queries.
	if len(j.Demand) > 0 {
		gen := j.Gen
		if gen == nil {
			gen = core.GenerateWith(j.Module, j.Summaries)
		}
		dres, err := core.SolveDemandTraced(gen.Problem, j.Config, j.Demand, tk, ar)
		if err != nil {
			return Result{Err: err}
		}
		return Result{
			Gen:            gen,
			Sol:            dres.Sol,
			Degraded:       dres.Sol.Degraded,
			Duration:       dres.Sol.Stats.Duration,
			DemandStats:    &dres.Stats,
			DemandExplored: dres.Explored,
		}
	}
	key := j.Key
	var rsv *reservation
	if e.cache != nil {
		if key == "" && j.Module != nil {
			key = CacheKey(ModuleHash(j.Module), j.Config)
		}
		if key != "" {
			// Chaos hook: a lookup fault means the cache answered with
			// garbage or not at all; the job solves as if it had missed
			// (skipping the reservation too — a broken cache must not
			// serialize solves behind it).
			if err := faults.Inject(faults.EngineCacheLook); err == nil {
				c, hit, coalesced, r := e.acquire(key)
				if hit {
					return Result{Gen: c.gen, Sol: c.sol, CacheHit: true, Coalesced: coalesced}
				}
				rsv = r
				defer e.release(key, rsv)
			}
		}
	}
	gen := j.Gen
	if gen == nil {
		gen = core.GenerateWith(j.Module, j.Summaries)
	}
	// Second tier: on a memory miss the leader consults the persistent
	// store before solving. Store.Load re-verifies the CRC and fingerprint
	// of every entry, so a hit here is exactly the solution a fresh solve
	// would produce — it is promoted into the memory LRU and shared with
	// coalesced waiters like any other cache hit. This is the warm-restart
	// path: a restarted process re-answers its working set with zero
	// re-solves.
	if ds := e.DiskStore(); ds != nil && rsv != nil {
		corruptBefore := ds.Stats().Corrupt
		if sol, ok := ds.Load(key, gen.Problem); ok {
			ent := cached{gen: gen, sol: sol}
			if faults.Active() != nil {
				ent.fp = fingerprintHash(sol)
			}
			e.store(key, ent)
			rsv.c = ent
			rsv.ok = true
			e.mu.Lock()
			e.stats.DiskHits++
			e.mu.Unlock()
			return Result{Gen: gen, Sol: sol, CacheHit: true, DiskHit: true}
		} else if ds.Stats().Corrupt > corruptBefore {
			// A verified miss: the store had the entry but its
			// CRC/decode/fingerprint check failed. The job re-solves;
			// the anomaly hook gets the forensic signal.
			e.anomaly("store.corrupt", key)
		}
	}
	reps := j.Reps
	if reps < 1 {
		reps = 1
	}
	var sol *core.Solution
	var best time.Duration
	for r := 0; r < reps; r++ {
		s, err := e.solveGuarded(gen.Problem, j.Config, tk, ar)
		if err != nil {
			return Result{Err: err}
		}
		if r == 0 {
			sol = s
			best = s.Stats.Duration
		} else if s.Stats.Duration < best {
			best = s.Stats.Duration
		}
	}
	// Degraded solutions are never cached: a deadline abort depends on the
	// machine's momentary load, so caching it would freeze a nondeterministic
	// outcome into every later run. They are not shared with coalesced
	// waiters either — each waiter re-solves and gets its own chance at the
	// exact answer.
	if !sol.Degraded {
		if e.cache != nil && key != "" {
			// Chaos hook: an insert fault loses the cache write but not
			// the solve — the job still answers, the entry is just not
			// resident (an injected panic instead fails the whole attempt,
			// exercising the reservation-release-on-panic path).
			if err := faults.Inject(faults.EngineCacheIns); err == nil {
				ent := cached{gen: gen, sol: sol}
				if faults.Active() != nil {
					ent.fp = fingerprintHash(sol)
					if faults.ShouldCorrupt(faults.EngineCacheIns) {
						// Simulated corruption: perturb the stored hash so
						// the entry no longer matches its content, exactly
						// what a flipped bit in either would look like to
						// verification. The shared in-memory solution is
						// left intact — live results must stay usable.
						ent.fp ^= 0x9e3779b97f4a7c15
					}
				}
				e.store(key, ent)
			}
		}
		if rsv != nil {
			// Publish the exact solution to coalesced waiters (memory
			// ordering via close(done) in release, which the defer runs
			// after these writes).
			rsv.c = cached{gen: gen, sol: sol}
			rsv.ok = true
		}
	}
	return Result{Gen: gen, Sol: sol, Degraded: sol.Degraded, Duration: best}
}

// RunIncremental solves one generation of an incrementally resubmitted
// module. A nil prior state establishes generation 0 from scratch; a
// non-nil state is diffed against the resubmission and the solve reuses,
// resumes, or falls back as the summary delta allows (see
// internal/core/incr). A lineage's configuration is fixed at generation 0
// (with the engine's default budget and intra-solve worker count folded
// in); later generations inherit it and the job's own Config is ignored —
// a configuration change is a different lineage. Non-degraded results are
// stored into the solution cache under a generation-suffixed key so
// incremental generations never collide with each other or with ordinary
// exhaustive entries; the incremental path never serves from the cache
// (the summary diff is its fast path).
func (e *Engine) RunIncremental(st *incr.State, j Job) (Result, *incr.State) {
	var wtk obs.Track
	if e.opts.Trace != nil {
		wtk = e.opts.Trace.NewTrack("inline")
	}
	sp := wtk.Begin("incremental-job", obs.N("queue_wait_us", 0))
	e.noteStart()
	res, nst := e.attemptIncremental(st, j, e.jobTrack(j, wtk))
	e.noteDone(res)
	sp.End(obs.N("degraded", b2i(res.Degraded)))
	return res, nst
}

// attemptIncremental is one incremental solve attempt inside the panic
// recovery boundary. On failure the prior state is returned unchanged so
// the caller's lineage survives a bad resubmission.
func (e *Engine) attemptIncremental(st *incr.State, j Job, tk obs.Track) (res Result, nst *incr.State) {
	defer func() {
		if r := recover(); r != nil {
			res, nst = Result{Err: &panicError{val: r, stack: debug.Stack()}}, st
		}
	}()
	if j.Gen == nil && j.Module == nil {
		return Result{Err: errors.New("engine: job has neither Module nor Gen")}, st
	}
	if err := faults.Inject(faults.EngineDispatch); err != nil {
		return Result{Err: fmt.Errorf("engine: dispatch: %w", err)}, st
	}
	gen := j.Gen
	if gen == nil {
		gen = core.GenerateWith(j.Module, j.Summaries)
	}
	var stats *incr.UpdateStats
	var err error
	if st == nil {
		// Generation 0: fold the engine defaults into the lineage's
		// configuration once; every later generation inherits the result.
		if j.Config.Budget.IsZero() && !e.opts.Budget.IsZero() {
			j.Config.Budget = e.opts.Budget
		}
		if j.Config.SolveWorkers == 0 && e.opts.SolveWorkers > 0 {
			j.Config.SolveWorkers = e.opts.SolveWorkers
		}
		nst, err = incr.NewTraced(gen.Problem, j.Config, tk, nil)
		if err != nil {
			return Result{Err: err}, st
		}
		stats = &incr.UpdateStats{
			FallbackReason:  "initial solve",
			Added:           nst.Summary.NumConstraints(),
			FullConstraints: nst.Summary.NumConstraints(),
		}
	} else {
		nst, stats, err = st.UpdateTraced(gen.Problem, tk, nil)
		if err != nil {
			return Result{Err: err}, st
		}
	}
	sol := nst.Sol
	if e.cache != nil && j.Module != nil && !sol.Degraded {
		key := fmt.Sprintf("%s|inc-g%d", CacheKey(ModuleHash(j.Module), nst.Config), nst.Generation)
		e.store(key, cached{gen: gen, sol: sol})
	}
	dur := sol.Stats.Duration
	if stats.ReusedSolution {
		// Nothing was solved; the reused solution's duration belongs to the
		// generation that actually computed it.
		dur = 0
	}
	return Result{
		Gen:         gen,
		Sol:         sol,
		Degraded:    sol.Degraded,
		Duration:    dur,
		CacheHit:    stats.ReusedSolution,
		Incremental: stats,
	}, nst
}
