package engine

import (
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/core/differential"
)

// resumableCfg is a configuration on the checkpointable trajectory
// (no unification, no budget), so incremental growth actually resumes.
func resumableCfg() core.Config {
	return core.Config{Rep: core.IP, Solver: core.Worklist, Order: core.FIFO}
}

func TestRunIncrementalPaths(t *testing.T) {
	cfg := resumableCfg()
	base := differential.Generate(11, differential.DefaultGen())
	eng := New(Options{Workers: 2})

	// Generation 0: from-scratch solve establishing the lineage.
	res, st := eng.RunIncremental(nil, Job{Gen: &core.Gen{Problem: base}, Config: cfg})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Incremental == nil || res.Incremental.Generation != 0 {
		t.Fatalf("generation 0 stats missing: %+v", res.Incremental)
	}
	if st == nil || !st.Checkpointed() {
		t.Fatal("resumable lineage should checkpoint at generation 0")
	}
	if res.Sol.Fingerprint() != core.MustSolve(base, cfg).Fingerprint() {
		t.Fatal("generation 0 differs from direct solve")
	}

	// Constraint-identical resubmission: solution reused, no solve.
	res1, st1 := eng.RunIncremental(st, Job{Gen: &core.Gen{Problem: base.Clone()}, Config: cfg})
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}
	if !res1.Incremental.ReusedSolution || !res1.CacheHit || res1.Duration != 0 {
		t.Fatalf("identical resubmission should reuse: %+v", res1.Incremental)
	}

	// Monotone growth: resumes from the checkpoint, answer bit-identical
	// to a from-scratch solve of the grown problem.
	grown := base.Clone()
	v := grown.AddVar("new_r", core.Register, true)
	m := grown.AddVar("new_m", core.Memory, true)
	grown.AddBase(v, m)
	grown.AddSimple(0, v)
	res2, st2 := eng.RunIncremental(st1, Job{Gen: &core.Gen{Problem: grown}, Config: cfg})
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if !res2.Incremental.Resumed || res2.Incremental.FallbackReason != "" {
		t.Fatalf("monotone growth should resume: %+v", res2.Incremental)
	}
	if res2.Incremental.Reused == 0 || res2.Incremental.Added == 0 {
		t.Fatalf("resume should report reused and added work: %+v", res2.Incremental)
	}
	if res2.Sol.Fingerprint() != core.MustSolve(grown, cfg).Fingerprint() {
		t.Fatal("resumed solution differs from scratch")
	}

	// Removal: falls back to a full solve, still exact.
	shrunk := base.Clone()
	shrunk.Simple = shrunk.Simple[:len(shrunk.Simple)-1]
	res3, _ := eng.RunIncremental(st2, Job{Gen: &core.Gen{Problem: shrunk}, Config: cfg})
	if res3.Err != nil {
		t.Fatal(res3.Err)
	}
	if res3.Incremental.Resumed || res3.Incremental.FallbackReason == "" {
		t.Fatalf("removal should fall back: %+v", res3.Incremental)
	}
	if res3.Sol.Fingerprint() != core.MustSolve(shrunk, cfg).Fingerprint() {
		t.Fatal("fallback solution differs from scratch")
	}

	if stats := eng.Stats(); stats.Incremental != 4 {
		t.Fatalf("expected 4 incremental jobs counted, got %d", stats.Incremental)
	}
}

func TestRunIncrementalCachesGenerations(t *testing.T) {
	cfg := resumableCfg()
	mods := testModules(1)
	eng := New(Options{Workers: 1, Cache: true})

	res, st := eng.RunIncremental(nil, Job{Module: mods[0], Config: cfg})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Identical module resubmitted: the summary delta is empty.
	res1, _ := eng.RunIncremental(st, Job{Module: mods[0], Config: cfg})
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}
	if !res1.Incremental.ReusedSolution {
		t.Fatalf("identical module should reuse: %+v", res1.Incremental)
	}
	// Each generation stored under its own generation-suffixed key, so the
	// two never collide with each other or with a plain exhaustive entry.
	if stats := eng.Stats(); stats.CacheEntries != 2 {
		t.Fatalf("expected 2 generation-keyed cache entries, got %d", stats.CacheEntries)
	}
	if plain := eng.RunOne(Job{Module: mods[0], Config: cfg}); plain.CacheHit {
		t.Fatal("exhaustive job must not be served an incremental entry")
	}
}

func TestDemandJob(t *testing.T) {
	cfg := resumableCfg()
	mods := testModules(1)
	eng := New(Options{Workers: 1, Cache: true})

	res := eng.RunOne(Job{Module: mods[0], Config: cfg, Demand: []core.VarID{0}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.DemandStats == nil || res.DemandExplored == nil {
		t.Fatal("demand job should report demand stats and exploration mask")
	}
	if !res.DemandExplored[0] {
		t.Fatal("demand root not explored")
	}
	if res.DemandStats.ExploredVars > res.DemandStats.TotalVars {
		t.Fatalf("inconsistent demand stats: %+v", res.DemandStats)
	}
	// The slice answers match a direct demand solve of the same problem.
	want, err := core.SolveDemand(res.Gen.Problem, cfg, []core.VarID{0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sol.Fingerprint() != want.Sol.Fingerprint() {
		t.Fatal("engine demand solution differs from direct demand solve")
	}

	// Demand jobs bypass the cache in both directions: nothing stored, and
	// a later exhaustive job of the same module misses.
	if stats := eng.Stats(); stats.CacheEntries != 0 {
		t.Fatalf("demand job must not populate the cache, got %d entries", stats.CacheEntries)
	}
	if full := eng.RunOne(Job{Module: mods[0], Config: cfg}); full.CacheHit {
		t.Fatal("exhaustive job after demand job must not be a cache hit")
	}
	if stats := eng.Stats(); stats.Demand != 1 {
		t.Fatalf("expected 1 demand job counted, got %d", stats.Demand)
	}
}
