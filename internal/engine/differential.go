package engine

import (
	"fmt"
	"strings"

	"github.com/pip-analysis/pip/internal/core"
)

// The differential harness: every workload pushed through the engine can
// be re-run through the plain sequential path (a straight loop over
// core.Generate + core.Solve, no pool, no cache) and the two answers
// compared component by component — explicit pointee sets, the Ω flags,
// the escaped set, and cycle representatives, all folded into
// Solution.Fingerprint. The paper validates its 304 solver configurations
// by demanding identical solutions; the harness applies the same oracle to
// concurrency: any scheduling of the worker pool must be solution-identical
// to solving alone.

// DiffOptions configures a differential run.
type DiffOptions struct {
	// WorkerCounts are the parallel pool sizes to compare against the
	// sequential path. Default: 1, 2, 8.
	WorkerCounts []int
	// CachedPass additionally runs a cache-enabled engine twice over the
	// jobs and checks that the second (fully cached) pass is
	// solution-identical too.
	CachedPass bool
}

// Mismatch is one solution disagreement between two solver paths.
type Mismatch struct {
	Job    int
	Path   string
	Detail string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("job %d, path %q: %s", m.Job, m.Path, m.Detail)
}

// DiffReport is the outcome of a differential run.
type DiffReport struct {
	Jobs       int
	Paths      []string
	Mismatches []Mismatch
}

// OK reports whether every path produced identical solutions.
func (r *DiffReport) OK() bool { return len(r.Mismatches) == 0 }

func (r *DiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential: %d jobs, paths: %s\n", r.Jobs, strings.Join(r.Paths, ", "))
	if r.OK() {
		b.WriteString("all paths solution-identical\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d mismatches:\n", len(r.Mismatches))
	for i, m := range r.Mismatches {
		if i == 8 {
			fmt.Fprintf(&b, "  ... %d more\n", len(r.Mismatches)-i)
			break
		}
		fmt.Fprintf(&b, "  %s\n", m)
	}
	return b.String()
}

// jobOutcome is a path's answer for one job, reduced to comparable form.
type jobOutcome struct {
	fingerprint string
	err         string
}

// solveSequential is the reference path: a plain loop with no pool, no
// cache, and no recovery wrapper beyond what the engine's correctness is
// being compared against.
func solveSequential(jobs []Job) []jobOutcome {
	out := make([]jobOutcome, len(jobs))
	for i, j := range jobs {
		out[i] = outcomeOf(runSequential(j))
	}
	return out
}

// runSequential executes one job the way pre-engine code did: generate,
// then solve, with panics converted to errors only so that the harness can
// compare failure behaviour too.
func runSequential(j Job) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	if j.Gen == nil && j.Module == nil {
		return Result{Err: fmt.Errorf("job has neither Module nor Gen")}
	}
	gen := j.Gen
	if gen == nil {
		gen = core.GenerateWith(j.Module, j.Summaries)
	}
	sol, err := core.Solve(gen.Problem, j.Config)
	if err != nil {
		return Result{Err: err}
	}
	return Result{Gen: gen, Sol: sol, Duration: sol.Stats.Duration}
}

func outcomeOf(r Result) jobOutcome {
	if r.Err != nil {
		// Panic messages embed stack traces and addresses; classify all
		// failures as "failed" and compare only that both paths failed.
		return jobOutcome{err: "failed"}
	}
	return jobOutcome{fingerprint: r.Sol.Fingerprint()}
}

// compare records mismatches of got against the sequential reference.
func (r *DiffReport) compare(path string, want, got []jobOutcome) {
	for i := range want {
		switch {
		case want[i].err != got[i].err:
			r.Mismatches = append(r.Mismatches, Mismatch{Job: i, Path: path,
				Detail: fmt.Sprintf("failure behaviour differs: sequential %q vs %q", want[i].err, got[i].err)})
		case want[i].fingerprint != got[i].fingerprint:
			r.Mismatches = append(r.Mismatches, Mismatch{Job: i, Path: path,
				Detail: firstDiff(want[i].fingerprint, got[i].fingerprint)})
		}
	}
}

// firstDiff pinpoints the first differing fingerprint line.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("first divergence at line %d: sequential %q vs %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("fingerprint lengths differ: %d vs %d lines", len(al), len(bl))
}

// Differential solves jobs through the sequential reference path and then
// through the parallel engine at each configured worker count (plus an
// optional cached double pass), comparing complete solution fingerprints.
func Differential(jobs []Job, opt DiffOptions) *DiffReport {
	counts := opt.WorkerCounts
	if len(counts) == 0 {
		counts = []int{1, 2, 8}
	}
	rep := &DiffReport{Jobs: len(jobs), Paths: []string{"sequential"}}
	want := solveSequential(jobs)
	for _, w := range counts {
		path := fmt.Sprintf("parallel(workers=%d)", w)
		rep.Paths = append(rep.Paths, path)
		got := outcomesOf(New(Options{Workers: w}).Run(jobs))
		rep.compare(path, want, got)
	}
	if opt.CachedPass {
		eng := New(Options{Workers: counts[len(counts)-1], Cache: true})
		first := outcomesOf(eng.Run(jobs))
		rep.Paths = append(rep.Paths, "cached(pass=1)")
		rep.compare("cached(pass=1)", want, first)
		second := eng.Run(jobs)
		rep.Paths = append(rep.Paths, "cached(pass=2)")
		rep.compare("cached(pass=2)", want, outcomesOf(second))
		for i, r := range second {
			// Degraded results are never cached (see Engine.runJob), so the
			// second pass legitimately re-solves them.
			if r.Err == nil && !r.CacheHit && !r.Degraded && cacheableJob(jobs[i]) {
				rep.Mismatches = append(rep.Mismatches, Mismatch{Job: i, Path: "cached(pass=2)",
					Detail: "expected a cache hit on the second pass"})
			}
		}
	}
	return rep
}

// cacheableJob reports whether the engine can derive a cache key for j.
func cacheableJob(j Job) bool { return j.Key != "" || j.Module != nil }

func outcomesOf(rs []Result) []jobOutcome {
	out := make([]jobOutcome, len(rs))
	for i, r := range rs {
		out[i] = outcomeOf(r)
	}
	return out
}
