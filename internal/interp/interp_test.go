package interp

import (
	"testing"

	"github.com/pip-analysis/pip/internal/cfront"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

func machine(t *testing.T, src string) *Machine {
	t.Helper()
	m, err := cfront.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func mustCall(t *testing.T, mc *Machine, name string, args ...Value) Value {
	t.Helper()
	v, err := mc.Call(name, args...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestArithmeticAndControlFlow(t *testing.T) {
	mc := machine(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int sum(int n) {
    int s = 0;
    int i;
    for (i = 1; i <= n; i++) s += i;
    return s;
}
int sw(int k) {
    switch (k) {
    case 1: return 10;
    case 2: return 20;
    default: return 30;
    }
}
`)
	if v := mustCall(t, mc, "fib", IntVal(10)); v.Int != 55 {
		t.Fatalf("fib(10) = %v", v)
	}
	if v := mustCall(t, mc, "sum", IntVal(100)); v.Int != 5050 {
		t.Fatalf("sum(100) = %v", v)
	}
	for k, want := range map[int64]int64{1: 10, 2: 20, 7: 30} {
		if v := mustCall(t, mc, "sw", IntVal(k)); v.Int != want {
			t.Fatalf("sw(%d) = %v, want %d", k, v, want)
		}
	}
}

func TestPointersAndMemory(t *testing.T) {
	mc := machine(t, `
static int cell;

int roundtrip(int v) {
    int *p = &cell;
    *p = v;
    int **pp = &p;
    return **pp;
}

int swap(int a, int b) {
    int x = a, y = b;
    int *px = &x, *py = &y;
    int tmp = *px;
    *px = *py;
    *py = tmp;
    return x * 100 + y;
}
`)
	if v := mustCall(t, mc, "roundtrip", IntVal(42)); v.Int != 42 {
		t.Fatalf("roundtrip = %v", v)
	}
	if v := mustCall(t, mc, "swap", IntVal(3), IntVal(7)); v.Int != 703 {
		t.Fatalf("swap = %v", v)
	}
}

func TestStructsArraysHeap(t *testing.T) {
	mc := machine(t, `
extern void *malloc(long);

struct node { int v; struct node *next; };

int listSum(int n) {
    struct node *head = NULL;
    int i;
    for (i = 1; i <= n; i++) {
        struct node *nn = (struct node*)malloc(sizeof(struct node));
        nn->v = i;
        nn->next = head;
        head = nn;
    }
    int s = 0;
    while (head != NULL) { s += head->v; head = head->next; }
    return s;
}

int arrays() {
    int a[8];
    int i;
    for (i = 0; i < 8; i++) a[i] = i * i;
    return a[3] + a[7];
}
`)
	if v := mustCall(t, mc, "listSum", IntVal(10)); v.Int != 55 {
		t.Fatalf("listSum = %v", v)
	}
	if v := mustCall(t, mc, "arrays"); v.Int != 9+49 {
		t.Fatalf("arrays = %v", v)
	}
}

func TestFunctionPointersAndGlobals(t *testing.T) {
	mc := machine(t, `
static int twice(int v) { return v + v; }
static int thrice(int v) { return v + v + v; }
static int (*ops[2])(int) = { twice, thrice };

int apply(int which, int v) {
    return ops[which](v);
}

static int counter = 5;
int bump() { counter++; return counter; }
`)
	if v := mustCall(t, mc, "apply", IntVal(0), IntVal(21)); v.Int != 42 {
		t.Fatalf("apply(0) = %v", v)
	}
	if v := mustCall(t, mc, "apply", IntVal(1), IntVal(10)); v.Int != 30 {
		t.Fatalf("apply(1) = %v", v)
	}
	if v := mustCall(t, mc, "bump"); v.Int != 6 {
		t.Fatalf("bump = %v", v)
	}
	if v := mustCall(t, mc, "bump"); v.Int != 7 {
		t.Fatalf("bump again = %v", v)
	}
}

func TestPointerIntegerRoundTrip(t *testing.T) {
	mc := machine(t, `
static int target = 99;

int launder() {
    int *p = &target;
    long raw = (long)p;
    int *q = (int*)raw;
    return *q;
}
`)
	if v := mustCall(t, mc, "launder"); v.Int != 99 {
		t.Fatalf("launder = %v", v)
	}
}

func TestMemcpyIntrinsic(t *testing.T) {
	mc := machine(t, `
struct blob { int a; int b; int *p; };
static int shared = 7;
static struct blob src;
static struct blob dst;

int copyBlob() {
    src.a = 1; src.b = 2; src.p = &shared;
    dst = src;
    return dst.a + dst.b + *dst.p;
}
`)
	if v := mustCall(t, mc, "copyBlob"); v.Int != 10 {
		t.Fatalf("copyBlob = %v", v)
	}
}

func TestStepLimit(t *testing.T) {
	mc := machine(t, `
int spin() { while (1) { } return 0; }
`)
	mc.MaxSteps = 10_000
	if _, err := mc.Call("spin"); err == nil {
		t.Fatal("infinite loop terminated?")
	}
}

func TestErrorsOnExternalCall(t *testing.T) {
	mc := machine(t, `
extern int mystery();
int go_() { return mystery(); }
`)
	if _, err := mc.Call("go_"); err == nil {
		t.Fatal("external call must fail in the interpreter")
	}
}

// TestDynamicSoundness: every pointer value observed at runtime must be in
// the analyzed points-to set of the producing instruction — the dynamic
// counterpart of the paper's soundness claim.
func TestDynamicSoundness(t *testing.T) {
	src := `
extern void *malloc(long);

struct node { int v; struct node *next; };
static struct node *stack_;
static int slot;

static void push(int v) {
    struct node *nn = (struct node*)malloc(sizeof(struct node));
    nn->v = v;
    nn->next = stack_;
    stack_ = nn;
}

static int pop() {
    struct node *top = stack_;
    if (top == NULL) return -1;
    stack_ = top->next;
    return top->v;
}

int churn(int n) {
    int i;
    for (i = 0; i < n; i++) push(i);
    int s = 0;
    int *acc = &slot;
    while (1) {
        int v = pop();
        if (v < 0) break;
        *acc = *acc + v;
        s = *acc;
    }
    return s;
}
`
	m, err := cfront.Compile("dyn.c", src)
	if err != nil {
		t.Fatal(err)
	}
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())

	// Map runtime objects back to abstract locations via their origin.
	memFor := func(o *Object) (core.VarID, bool) {
		if o.Origin == nil {
			// Heap object from the interpreter's malloc: the analysis
			// models it via the call site; match by any heap var. Find
			// the producing call dynamically below instead.
			return core.NoVar, false
		}
		id, ok := gen.MemOf[o.Origin]
		return id, ok
	}

	mc, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	mc.Observe = func(at ir.Value, ptr Value) {
		var pv core.VarID
		var ok bool
		pv, ok = gen.VarOf[at]
		if !ok {
			return
		}
		objVar, known := memFor(ptr.Obj)
		if !known {
			// Heap object: accept any heap.* pointee or external.
			for _, x := range sol.PointsTo(pv) {
				if x == core.OmegaPointee {
					return
				}
				name := gen.Problem.Names[x]
				if len(name) >= 4 && name[:4] == "heap" {
					return
				}
			}
			violations++
			t.Errorf("value %v held heap pointer %v, not covered by Sol", at, ptr)
			return
		}
		for _, x := range sol.PointsTo(pv) {
			if x == objVar {
				return
			}
			if x == core.OmegaPointee && sol.Escaped(objVar) {
				return
			}
		}
		violations++
		t.Errorf("value %v held pointer to %s, missing from Sol", at, ptr.Obj.Name)
	}
	if v := mustCall(t, mc, "churn", IntVal(25)); v.Int != 300 {
		t.Fatalf("churn(25) = %v, want 300", v)
	}
	if violations > 0 {
		t.Fatalf("%d dynamic soundness violations", violations)
	}
}

func TestFloatsSelectAndComparisons(t *testing.T) {
	mc := machine(t, `
double mix(double a, double b) {
    return (a + b) * 2.0 - a / b;
}
int pick(int c, int x, int y) {
    return c ? x : y;
}
int ptrOrder(int n) {
    int arr[4];
    int *lo = &arr[0];
    int *hi = &arr[3];
    int r = 0;
    if (lo < hi) r += 1;
    if (hi <= lo) r += 10;
    if (lo == &arr[0]) r += 100;
    if (lo != hi) r += 1000;
    return r;
}
`)
	v, err := mc.Call("mix", Value{Kind: KFloat, Float: 3}, Value{Kind: KFloat, Float: 2})
	if err != nil || v.Kind != KFloat || v.Float != (3+2)*2-1.5 {
		t.Fatalf("mix = %v, %v", v, err)
	}
	if v := mustCall(t, mc, "pick", IntVal(1), IntVal(7), IntVal(9)); v.Int != 7 {
		t.Fatalf("pick(1) = %v", v)
	}
	if v := mustCall(t, mc, "pick", IntVal(0), IntVal(7), IntVal(9)); v.Int != 9 {
		t.Fatalf("pick(0) = %v", v)
	}
	if v := mustCall(t, mc, "ptrOrder", IntVal(0)); v.Int != 1101 {
		t.Fatalf("ptrOrder = %v", v)
	}
}

func TestCallocFreeAndDivByZero(t *testing.T) {
	mc := machine(t, `
extern void *calloc(long n, long sz);
extern void free(void *p);

long zeroed() {
    long *p = (long*)calloc(4, 8);
    long v = p[2];    /* calloc memory reads as zero */
    free(p);
    return v;
}
long divz(long a) { return a / 0 + a % 0; }
`)
	if v := mustCall(t, mc, "zeroed"); v.Int != 0 {
		t.Fatalf("zeroed = %v", v)
	}
	// Division by zero is defined as 0 in the interpreter (no trap model).
	if v := mustCall(t, mc, "divz", IntVal(9)); v.Int != 0 {
		t.Fatalf("divz = %v", v)
	}
}

func TestRuntimeErrors(t *testing.T) {
	mc := machine(t, `
int badLoad() {
    int *p = NULL;
    return *p;
}
int badStore() {
    int *p = NULL;
    *p = 1;
    return 0;
}
`)
	if _, err := mc.Call("badLoad"); err == nil {
		t.Fatal("load through null succeeded")
	}
	if _, err := mc.Call("badStore"); err == nil {
		t.Fatal("store through null succeeded")
	}
	if _, err := mc.Call("nonexistent"); err == nil {
		t.Fatal("call to missing function succeeded")
	}
}

func TestExternGlobalRejected(t *testing.T) {
	m, err := cfront.Compile("x.c", "extern int shared; int f() { return shared; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m); err == nil {
		t.Fatal("module with external global accepted")
	}
}

func TestShiftAndBitwise(t *testing.T) {
	mc := machine(t, `
long bits(long a, long b) {
    return ((a << 3) >> 1) ^ (a & b) | (a % 7);
}
`)
	a, b := int64(13), int64(6)
	want := ((a << 3) >> 1) ^ (a & b) | (a % 7)
	if v := mustCall(t, mc, "bits", IntVal(a), IntVal(b)); v.Int != want {
		t.Fatalf("bits = %v, want %d", v, want)
	}
}
