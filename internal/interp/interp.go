// Package interp is a reference interpreter for MIR. It executes closed
// modules (no unresolved external functions except the built-in allocator
// summaries) with a precise memory model, and optionally records every
// pointer value each instruction produces.
//
// The interpreter exists to validate the rest of the system dynamically:
//
//   - optimization passes must preserve observable behaviour
//     (differential testing in internal/opt);
//   - the points-to analysis must over-approximate reality: every pointer
//     an instruction actually held at runtime must appear in its analyzed
//     points-to set (dynamic soundness testing in internal/core).
package interp

import (
	"fmt"

	"github.com/pip-analysis/pip/internal/ir"
)

// Value is a runtime value: an integer, a float, or a pointer.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	// Ptr fields; Obj == nil encodes the null pointer.
	Obj *Object
	Off int64
}

// Kind discriminates runtime values.
type Kind uint8

const (
	KInt Kind = iota
	KFloat
	KPtr
)

func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprint(v.Int)
	case KFloat:
		return fmt.Sprint(v.Float)
	default:
		if v.Obj == nil {
			return "null"
		}
		return fmt.Sprintf("&%s+%d", v.Obj.Name, v.Off)
	}
}

// IntVal makes an integer value.
func IntVal(v int64) Value { return Value{Kind: KInt, Int: v} }

// PtrVal makes a pointer value.
func PtrVal(obj *Object, off int64) Value { return Value{Kind: KPtr, Obj: obj, Off: off} }

// Object is one runtime memory object.
type Object struct {
	Name string
	Size int64
	// Origin is the IR value that allocated the object (a *ir.Global,
	// the alloca or heap-call *ir.Instr), used to map runtime objects
	// back to abstract memory locations.
	Origin ir.Value
	// cells maps byte offsets to stored values (one cell per store site;
	// loads must hit a cell exactly, which holds for well-typed code).
	cells map[int64]Value
}

func (o *Object) load(off int64) Value {
	if v, ok := o.cells[off]; ok {
		return v
	}
	return IntVal(0) // zero-initialized memory
}

func (o *Object) store(off int64, v Value) { o.cells[off] = v }

// Machine executes one module.
type Machine struct {
	Mod     *ir.Module
	Globals map[*ir.Global]*Object
	// MaxSteps bounds execution (default 1e6).
	MaxSteps int
	steps    int
	heapSeq  int

	// Observe, when non-nil, is called for every pointer value an
	// instruction produces (including parameters at call entry).
	Observe func(at ir.Value, ptr Value)

	funcObjs map[*ir.Function]*Object
}

// New prepares a machine: global objects are allocated and initializers
// applied.
func New(m *ir.Module) (*Machine, error) {
	mc := &Machine{
		Mod:      m,
		Globals:  map[*ir.Global]*Object{},
		MaxSteps: 1_000_000,
		funcObjs: map[*ir.Function]*Object{},
	}
	for _, g := range m.Globals {
		if g.Linkage == ir.Declared {
			return nil, fmt.Errorf("cannot interpret module with external global @%s", g.GName)
		}
		mc.Globals[g] = &Object{
			Name:   "@" + g.GName,
			Size:   ir.SizeOf(g.Elem),
			Origin: g,
			cells:  map[int64]Value{},
		}
	}
	for _, g := range m.Globals {
		if g.Init == nil {
			continue
		}
		if err := mc.applyInit(mc.Globals[g], 0, g.Elem, g.Init); err != nil {
			return nil, err
		}
	}
	return mc, nil
}

func (mc *Machine) applyInit(obj *Object, off int64, t ir.Type, init ir.Value) error {
	switch init := init.(type) {
	case *ir.ConstInt:
		obj.store(off, IntVal(init.Val))
	case *ir.ConstFloat:
		obj.store(off, Value{Kind: KFloat, Float: init.Val})
	case *ir.ConstNull:
		obj.store(off, PtrVal(nil, 0))
	case *ir.ConstZero, *ir.ConstUndef:
		// zero/undef: leave cells empty (loads default to zero)
	case *ir.Global:
		obj.store(off, PtrVal(mc.Globals[init], 0))
	case *ir.Function:
		obj.store(off, mc.funcPtr(init))
	case *ir.ConstAggregate:
		elemOff := off
		switch t := t.(type) {
		case *ir.ArrayType:
			for _, e := range init.Elems {
				if e != nil {
					if err := mc.applyInit(obj, elemOff, t.Elem, e); err != nil {
						return err
					}
				}
				elemOff += ir.SizeOf(t.Elem)
			}
		case *ir.StructType:
			for i, e := range init.Elems {
				if i >= len(t.Fields) {
					break
				}
				if e != nil {
					if err := mc.applyInit(obj, off+ir.FieldOffset(t, i), t.Fields[i], e); err != nil {
						return err
					}
				}
			}
		default:
			return fmt.Errorf("aggregate initializer for non-aggregate %v", t)
		}
	default:
		return fmt.Errorf("unsupported initializer %T", init)
	}
	return nil
}

// funcPtr returns the per-machine singleton object standing for the
// function's "memory" (its address).
func (mc *Machine) funcPtr(f *ir.Function) Value {
	obj, ok := mc.funcObjs[f]
	if !ok {
		obj = &Object{Name: "@" + f.FName, Origin: f, cells: map[int64]Value{}}
		mc.funcObjs[f] = obj
	}
	return PtrVal(obj, 0)
}

// Call executes the named function with the given arguments.
func (mc *Machine) Call(name string, args ...Value) (Value, error) {
	f := mc.Mod.Func(name)
	if f == nil {
		return Value{}, fmt.Errorf("no function @%s", name)
	}
	return mc.call(f, args)
}

type frame struct {
	f      *ir.Function
	vals   map[ir.Value]Value
	locals []*Object
}

func (mc *Machine) call(f *ir.Function, args []Value) (Value, error) {
	if f.IsDecl() {
		return mc.callExternal(f, args)
	}
	fr := &frame{f: f, vals: map[ir.Value]Value{}}
	for i, p := range f.Params {
		var v Value
		if i < len(args) {
			v = args[i]
		}
		fr.vals[p] = v
		if v.Kind == KPtr && mc.Observe != nil {
			mc.Observe(p, v)
		}
	}
	block := f.Entry()
	var prev *ir.Block
	for {
		nextBlock, ret, done, err := mc.runBlock(fr, block, prev)
		if err != nil {
			return Value{}, err
		}
		if done {
			return ret, nil
		}
		prev, block = block, nextBlock
	}
}

// callExternal implements the built-in allocator/libc summaries so closed
// test programs can use malloc/free/memcpy.
func (mc *Machine) callExternal(f *ir.Function, args []Value) (Value, error) {
	switch f.FName {
	case "malloc", "calloc":
		size := int64(64)
		if len(args) > 0 && args[0].Kind == KInt {
			size = args[0].Int
		}
		mc.heapSeq++
		obj := &Object{
			Name:   fmt.Sprintf("heap#%d", mc.heapSeq),
			Size:   size,
			Origin: nil,
			cells:  map[int64]Value{},
		}
		return PtrVal(obj, 0), nil
	case "free":
		return Value{}, nil
	case "memcpy", "memmove":
		if len(args) >= 2 && args[0].Kind == KPtr && args[1].Kind == KPtr &&
			args[0].Obj != nil && args[1].Obj != nil {
			dst, src := args[0], args[1]
			for off, v := range src.Obj.cells {
				if off >= src.Off {
					dst.Obj.store(dst.Off+(off-src.Off), v)
				}
			}
			return args[0], nil
		}
		return Value{}, fmt.Errorf("bad memcpy arguments")
	default:
		return Value{}, fmt.Errorf("call to external function @%s", f.FName)
	}
}

// runBlock executes one basic block and returns the successor (or the
// return value when done).
func (mc *Machine) runBlock(fr *frame, b *ir.Block, prev *ir.Block) (*ir.Block, Value, bool, error) {
	for _, in := range b.Instrs {
		mc.steps++
		if mc.steps > mc.MaxSteps {
			return nil, Value{}, false, fmt.Errorf("step limit exceeded")
		}
		switch in.Op {
		case ir.OpPhi:
			found := false
			for i, incoming := range in.Blocks {
				if incoming == prev {
					fr.set(mc, in, mc.eval(fr, in.Args[i]))
					found = true
					break
				}
			}
			if !found {
				return nil, Value{}, false, fmt.Errorf("phi in %s has no edge from %v", b.BName, prevName(prev))
			}
		case ir.OpAlloca:
			obj := &Object{
				Name:   "%" + in.IName,
				Size:   ir.SizeOf(in.Ty),
				Origin: in,
				cells:  map[int64]Value{},
			}
			fr.locals = append(fr.locals, obj)
			fr.set(mc, in, PtrVal(obj, 0))
		case ir.OpLoad:
			p := mc.eval(fr, in.Args[0])
			if p.Kind != KPtr || p.Obj == nil {
				return nil, Value{}, false, fmt.Errorf("load through %s", p)
			}
			fr.set(mc, in, p.Obj.load(p.Off))
		case ir.OpStore:
			v := mc.eval(fr, in.Args[0])
			p := mc.eval(fr, in.Args[1])
			if p.Kind != KPtr || p.Obj == nil {
				return nil, Value{}, false, fmt.Errorf("store through %s", p)
			}
			p.Obj.store(p.Off, v)
		case ir.OpGEP:
			base := mc.eval(fr, in.Args[0])
			if base.Kind != KPtr {
				return nil, Value{}, false, fmt.Errorf("gep on %s", base)
			}
			off, err := mc.gepOffset(fr, in)
			if err != nil {
				return nil, Value{}, false, err
			}
			fr.set(mc, in, PtrVal(base.Obj, base.Off+off))
		case ir.OpBitcast:
			fr.set(mc, in, mc.eval(fr, in.Args[0]))
		case ir.OpPtrToInt:
			p := mc.eval(fr, in.Args[0])
			// PNVI-ae: the integer carries the provenance so a later
			// inttoptr can recreate the pointer.
			fr.set(mc, in, Value{Kind: KInt, Int: p.Off, Obj: p.Obj, Off: p.Off})
		case ir.OpIntToPtr:
			v := mc.eval(fr, in.Args[0])
			fr.set(mc, in, Value{Kind: KPtr, Obj: v.Obj, Off: v.Off})
		case ir.OpSelect:
			c := mc.eval(fr, in.Args[0])
			if c.Int != 0 {
				fr.set(mc, in, mc.eval(fr, in.Args[1]))
			} else {
				fr.set(mc, in, mc.eval(fr, in.Args[2]))
			}
		case ir.OpCall:
			callee := mc.eval(fr, in.Args[0])
			var target *ir.Function
			if cf, ok := in.Args[0].(*ir.Function); ok {
				target = cf
			} else if callee.Kind == KPtr && callee.Obj != nil {
				if cf, ok := callee.Obj.Origin.(*ir.Function); ok {
					target = cf
				}
			}
			if target == nil {
				return nil, Value{}, false, fmt.Errorf("indirect call to %s resolves to no function", callee)
			}
			args := make([]Value, len(in.CallArgs()))
			for i, a := range in.CallArgs() {
				args[i] = mc.eval(fr, a)
			}
			ret, err := mc.call(target, args)
			if err != nil {
				return nil, Value{}, false, err
			}
			fr.set(mc, in, ret)
		case ir.OpMemcpy:
			dst := mc.eval(fr, in.Args[0])
			src := mc.eval(fr, in.Args[1])
			if _, err := mc.callExternal(&ir.Function{FName: "memcpy"}, []Value{dst, src}); err != nil {
				return nil, Value{}, false, err
			}
		case ir.OpBin:
			x, y := mc.eval(fr, in.Args[0]), mc.eval(fr, in.Args[1])
			fr.set(mc, in, binOp(in.Sub, x, y))
		case ir.OpICmp:
			x, y := mc.eval(fr, in.Args[0]), mc.eval(fr, in.Args[1])
			fr.set(mc, in, icmpOp(in.Sub, x, y))
		case ir.OpRet:
			if len(in.Args) == 0 {
				return nil, Value{}, true, nil
			}
			return nil, mc.eval(fr, in.Args[0]), true, nil
		case ir.OpBr:
			return in.Blocks[0], Value{}, false, nil
		case ir.OpCondBr:
			c := mc.eval(fr, in.Args[0])
			if c.Int != 0 {
				return in.Blocks[0], Value{}, false, nil
			}
			return in.Blocks[1], Value{}, false, nil
		case ir.OpUnreachable:
			return nil, Value{}, false, fmt.Errorf("reached unreachable in %s", b.BName)
		default:
			return nil, Value{}, false, fmt.Errorf("cannot interpret %s", in.Op)
		}
	}
	return nil, Value{}, false, fmt.Errorf("block %s fell through", b.BName)
}

func prevName(b *ir.Block) string {
	if b == nil {
		return "<entry>"
	}
	return b.BName
}

// set records an instruction result and reports pointers to the observer.
func (fr *frame) set(mc *Machine, in *ir.Instr, v Value) {
	fr.vals[in] = v
	if v.Kind == KPtr && v.Obj != nil && mc.Observe != nil {
		mc.Observe(in, v)
	}
}

// eval resolves an operand to a runtime value.
func (mc *Machine) eval(fr *frame, v ir.Value) Value {
	switch v := v.(type) {
	case *ir.ConstInt:
		return IntVal(v.Val)
	case *ir.ConstFloat:
		return Value{Kind: KFloat, Float: v.Val}
	case *ir.ConstNull:
		return PtrVal(nil, 0)
	case *ir.ConstUndef, *ir.ConstZero:
		return IntVal(0)
	case *ir.Global:
		return PtrVal(mc.Globals[v], 0)
	case *ir.Function:
		return mc.funcPtr(v)
	default:
		return fr.vals[v]
	}
}

// gepOffset computes the dynamic byte offset of a gep.
func (mc *Machine) gepOffset(fr *frame, in *ir.Instr) (int64, error) {
	t := in.Ty
	var off int64
	for i, idxV := range in.Args[1:] {
		idx := mc.eval(fr, idxV)
		if idx.Kind != KInt {
			return 0, fmt.Errorf("non-integer gep index")
		}
		if i == 0 {
			off += idx.Int * ir.SizeOf(t)
			continue
		}
		switch cur := t.(type) {
		case *ir.StructType:
			fi := int(idx.Int)
			if fi < 0 || fi >= len(cur.Fields) {
				return 0, fmt.Errorf("gep field index %d out of range", fi)
			}
			off += ir.FieldOffset(cur, fi)
			t = cur.Fields[fi]
		case *ir.ArrayType:
			off += idx.Int * ir.SizeOf(cur.Elem)
			t = cur.Elem
		default:
			return 0, fmt.Errorf("gep into scalar type %v", cur)
		}
	}
	return off, nil
}

func binOp(kind string, x, y Value) Value {
	if x.Kind == KFloat || y.Kind == KFloat {
		a, b := x.Float, y.Float
		if x.Kind == KInt {
			a = float64(x.Int)
		}
		if y.Kind == KInt {
			b = float64(y.Int)
		}
		switch kind {
		case "add":
			return Value{Kind: KFloat, Float: a + b}
		case "sub":
			return Value{Kind: KFloat, Float: a - b}
		case "mul":
			return Value{Kind: KFloat, Float: a * b}
		case "div":
			if b == 0 {
				return Value{Kind: KFloat}
			}
			return Value{Kind: KFloat, Float: a / b}
		}
		return Value{Kind: KFloat}
	}
	a, b := x.Int, y.Int
	out := int64(0)
	switch kind {
	case "add":
		out = a + b
	case "sub":
		out = a - b
	case "mul":
		out = a * b
	case "div":
		if b != 0 {
			out = a / b
		}
	case "rem":
		if b != 0 {
			out = a % b
		}
	case "and":
		out = a & b
	case "or":
		out = a | b
	case "xor":
		out = a ^ b
	case "shl":
		out = a << (uint64(b) & 63)
	case "shr":
		out = a >> (uint64(b) & 63)
	}
	// Integer arithmetic on a provenance-carrying integer keeps the
	// provenance when the other operand is a plain integer (pointer
	// adjustment via integers).
	res := IntVal(out)
	if x.Obj != nil && y.Obj == nil {
		res.Obj = x.Obj
		res.Off = x.Off + (out - a) // offset moves with the arithmetic
	}
	return res
}

func icmpOp(pred string, x, y Value) Value {
	var a, b int64
	if x.Kind == KPtr || y.Kind == KPtr {
		// Pointer comparisons: equality by (object, offset); ordering by
		// offset within the same object.
		xo, yo := x.Obj, y.Obj
		switch pred {
		case "eq":
			return boolVal(xo == yo && x.Off == y.Off)
		case "ne":
			return boolVal(!(xo == yo && x.Off == y.Off))
		}
		a, b = x.Off, y.Off
	} else {
		a, b = x.Int, y.Int
	}
	switch pred {
	case "eq":
		return boolVal(a == b)
	case "ne":
		return boolVal(a != b)
	case "lt":
		return boolVal(a < b)
	case "le":
		return boolVal(a <= b)
	case "gt":
		return boolVal(a > b)
	case "ge":
		return boolVal(a >= b)
	}
	return IntVal(0)
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}
