package alias

import "github.com/pip-analysis/pip/internal/ir"

// ConflictStats aggregates the intra-procedural load/store conflict-rate
// metric of Figure 9 (Nagaraj and Govindarajan): for every store, query
// aliasing against every load and every other store in the same function.
type ConflictStats struct {
	NoAlias   int
	MayAlias  int
	MustAlias int
}

// Total returns the number of queries issued.
func (c ConflictStats) Total() int { return c.NoAlias + c.MayAlias + c.MustAlias }

// MayRate returns the fraction of queries answered MayAlias (Figure 9's
// y-axis; lower is better).
func (c ConflictStats) MayRate() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.MayAlias) / float64(t)
}

// Add accumulates other into c.
func (c *ConflictStats) Add(other ConflictStats) {
	c.NoAlias += other.NoAlias
	c.MayAlias += other.MayAlias
	c.MustAlias += other.MustAlias
}

// access is one memory access: the pointer operand and the accessed size.
type access struct {
	ptr     ir.Value
	size    int64
	isStore bool
}

// ConflictRate runs the pairwise client over every function of m using
// analysis an.
func ConflictRate(m *ir.Module, an Analysis) ConflictStats {
	var stats ConflictStats
	for _, f := range m.Funcs {
		var accs []access
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpLoad:
					accs = append(accs, access{ptr: in.Args[0], size: ir.SizeOf(in.Ty)})
				case ir.OpStore:
					accs = append(accs, access{ptr: in.Args[1], size: ir.SizeOf(in.Args[0].Type()), isStore: true})
				}
			}
		}
		for i, s := range accs {
			if !s.isStore {
				continue
			}
			for j, other := range accs {
				if i == j {
					continue
				}
				if other.isStore && j < i {
					continue // count each store/store pair once
				}
				switch an.Alias(s.ptr, s.size, other.ptr, other.size) {
				case NoAlias:
					stats.NoAlias++
				case MayAlias:
					stats.MayAlias++
				case MustAlias:
					stats.MustAlias++
				}
			}
		}
	}
	return stats
}
