package alias

import (
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

func mustModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func instrByName(m *ir.Module, name string) *ir.Instr {
	var out *ir.Instr
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.IName == name {
			out = in
		}
	})
	return out
}

const basicSrc = `
module "basic"
struct %Pair = { i64, i64 }
global @g : i64 = 0:i64 internal
global @h : i64 = 0:i64 internal
declare func @ext(ptr) -> ptr

func @f(%p: ptr) export {
entry:
  %a = alloca i64
  %b = alloca i64
  %pair = alloca %Pair
  %f0 = gep %Pair, %pair, 0:i64, 0:i64
  %f1 = gep %Pair, %pair, 0:i64, 1:i64
  %esc = alloca i64
  %r = call ptr, @ext(%esc)
  store 1:i64, %a
  store 2:i64, %b
  store 3:i64, @g
  ret
}
`

func TestBasicAADistinctObjects(t *testing.T) {
	m := mustModule(t, basicSrc)
	aa := NewBasicAA(m)
	a := instrByName(m, "a")
	b := instrByName(m, "b")
	g := m.Global("g")
	h := m.Global("h")

	if got := aa.Alias(a, 8, b, 8); got != NoAlias {
		t.Fatalf("alloca vs alloca = %v", got)
	}
	if got := aa.Alias(a, 8, g, 8); got != NoAlias {
		t.Fatalf("alloca vs global = %v", got)
	}
	if got := aa.Alias(g, 8, h, 8); got != NoAlias {
		t.Fatalf("global vs global = %v", got)
	}
	if got := aa.Alias(a, 8, a, 8); got != MustAlias {
		t.Fatalf("identical = %v", got)
	}
}

func TestBasicAAGEPOffsets(t *testing.T) {
	m := mustModule(t, basicSrc)
	aa := NewBasicAA(m)
	f0 := instrByName(m, "f0")
	f1 := instrByName(m, "f1")
	pair := instrByName(m, "pair")

	// Field 0 occupies [0,8), field 1 occupies [8,16): disjoint.
	if got := aa.Alias(f0, 8, f1, 8); got != NoAlias {
		t.Fatalf("disjoint fields = %v", got)
	}
	// The base pointer overlaps field 0 at offset 0.
	if got := aa.Alias(f0, 8, pair, 16); got != MustAlias {
		t.Fatalf("same offset = %v", got)
	}
	// Overlapping ranges: 8-byte store at 0 vs 16-byte access at 0.
	if got := aa.Alias(pair, 16, f1, 8); got != MayAlias {
		t.Fatalf("overlapping ranges = %v", got)
	}
}

func TestBasicAAEscapedAlloca(t *testing.T) {
	m := mustModule(t, basicSrc)
	aa := NewBasicAA(m)
	esc := instrByName(m, "esc")
	a := instrByName(m, "a")
	f := m.Func("f")
	p := f.Params[0]

	// a's address never escapes: NoAlias with the unknown parameter.
	if got := aa.Alias(a, 8, p, 8); got != NoAlias {
		t.Fatalf("private alloca vs param = %v", got)
	}
	// esc was passed to a call: captured, cannot refute.
	if got := aa.Alias(esc, 8, p, 8); got != MayAlias {
		t.Fatalf("captured alloca vs param = %v", got)
	}
	// But two identified objects still never alias, captured or not.
	if got := aa.Alias(esc, 8, a, 8); got != NoAlias {
		t.Fatalf("captured alloca vs other alloca = %v", got)
	}
}

func TestAndersenRefutesWhatBasicCannot(t *testing.T) {
	// Two heap pointers from different sites flow through memory; BasicAA
	// cannot track them, Andersen can.
	src := `
module "heapsplit"
declare func @malloc(i64) -> ptr

func @f() export {
entry:
  %s1 = alloca ptr
  %s2 = alloca ptr
  %h1 = call ptr, @malloc(8:i64)
  %h2 = call ptr, @malloc(8:i64)
  store %h1, %s1
  store %h2, %s2
  %p1 = load ptr, %s1
  %p2 = load ptr, %s2
  store 1:i64, %p1
  store 2:i64, %p2
  ret
}
`
	m := mustModule(t, src)
	basic := NewBasicAA(m)
	and, err := AnalyzeModule(m, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p1 := instrByName(m, "p1")
	p2 := instrByName(m, "p2")
	if got := basic.Alias(p1, 8, p2, 8); got != MayAlias {
		t.Fatalf("BasicAA should not refute loaded pointers: %v", got)
	}
	if got := and.Alias(p1, 8, p2, 8); got != NoAlias {
		t.Fatalf("Andersen should refute distinct heap sites: %v", got)
	}
	comb := Combined{basic, and}
	if got := comb.Alias(p1, 8, p2, 8); got != NoAlias {
		t.Fatalf("combined should take the NoAlias: %v", got)
	}
}

func TestAndersenUnknownPointers(t *testing.T) {
	src := `
module "unknown"
global @exp : ptr = null export
declare func @get() -> ptr

func @f(%q: ptr) export {
entry:
  %priv = alloca i64
  %r = call ptr, @get()
  store 1:i64, %r
  store 2:i64, %q
  ret
}
`
	m := mustModule(t, src)
	and, err := AnalyzeModule(m, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := instrByName(m, "r")
	priv := instrByName(m, "priv")
	f := m.Func("f")
	q := f.Params[0]
	// Two unknown-origin pointers may alias (both may target Ω).
	if got := and.Alias(r, 8, q, 8); got != MayAlias {
		t.Fatalf("unknown vs unknown = %v", got)
	}
	// A never-escaping alloca cannot alias an unknown pointer even under
	// Andersen (the paper's key precision point for incomplete programs).
	if got := and.Alias(priv, 8, q, 8); got != NoAlias {
		t.Fatalf("private alloca vs unknown pointer = %v", got)
	}
	// The exported global may be written by external code through q.
	if got := and.Alias(m.Global("exp"), 8, q, 8); got != MayAlias {
		t.Fatalf("exported global vs unknown pointer = %v", got)
	}
}

func TestConflictRateOrdering(t *testing.T) {
	// On a module with memory-indirected pointers, combining analyses must
	// be at least as precise as each alone.
	src := `
module "rate"
global @slot : ptr = null internal
declare func @ext(ptr) -> ptr

func @work(%in: ptr) export {
entry:
  %a = alloca i64
  %b = alloca i64
  %box = alloca ptr
  store %a, %box
  %pa = load ptr, %box
  store 1:i64, %pa
  store 2:i64, %b
  store 3:i64, %in
  %r = call ptr, @ext(%b)
  store 4:i64, %r
  %v = load i64, %a
  %w = load i64, %b
  ret
}
`
	m := mustModule(t, src)
	basic := NewBasicAA(m)
	and, err := AnalyzeModule(m, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sb := ConflictRate(m, basic)
	sa := ConflictRate(m, and)
	sc := ConflictRate(m, Combined{basic, and})
	if sb.Total() == 0 || sb.Total() != sa.Total() || sa.Total() != sc.Total() {
		t.Fatalf("query counts differ: %d %d %d", sb.Total(), sa.Total(), sc.Total())
	}
	if sc.MayRate() > sb.MayRate() || sc.MayRate() > sa.MayRate() {
		t.Fatalf("combined (%.2f) must not exceed basic (%.2f) or andersen (%.2f)",
			sc.MayRate(), sb.MayRate(), sa.MayRate())
	}
	if sc.MayAlias+sc.NoAlias+sc.MustAlias != sc.Total() {
		t.Fatal("stats inconsistent")
	}
}

// TestSoundnessAgainstSemantics: accesses that definitely alias must never
// be NoAlias under either analysis.
func TestNeverRefuteTrueAliases(t *testing.T) {
	src := `
module "true"
global @g : i64 = 0:i64 internal

func @f() export {
entry:
  %box = alloca ptr
  store @g, %box
  %p = load ptr, %box
  store 1:i64, %p
  store 2:i64, @g
  ret
}
`
	m := mustModule(t, src)
	basic := NewBasicAA(m)
	and, err := AnalyzeModule(m, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := instrByName(m, "p") // definitely &g
	g := m.Global("g")
	for name, an := range map[string]Analysis{"basic": basic, "andersen": and,
		"combined": Combined{basic, and}} {
		if got := an.Alias(p, 8, g, 8); got == NoAlias {
			t.Fatalf("%s refuted a true alias", name)
		}
	}
}

func TestCombinedPrecedence(t *testing.T) {
	m := mustModule(t, basicSrc)
	aa := NewBasicAA(m)
	a := instrByName(m, "a")
	comb := Combined{aa}
	if got := comb.Alias(a, 8, a, 8); got != MustAlias {
		t.Fatalf("combined must propagate MustAlias: %v", got)
	}
	if got := (Combined{}).Alias(a, 8, a, 8); got != MayAlias {
		t.Fatalf("empty combined should answer MayAlias: %v", got)
	}
}

func TestBasicAAUnknownGEPIndex(t *testing.T) {
	src := `
module "g"
func @f(%n: i64) export {
entry:
  %buf = alloca [16 x i64]
  %a = gep i64, %buf, %n
  %b = gep i64, %buf, 3:i64
  store 1:i64, %a
  store 2:i64, %b
  ret
}
`
	m := mustModule(t, src)
	aa := NewBasicAA(m)
	a := instrByName(m, "a")
	b := instrByName(m, "b")
	// Same base, one offset unknown: cannot refute.
	if got := aa.Alias(a, 8, b, 8); got != MayAlias {
		t.Fatalf("unknown index vs const offset = %v", got)
	}
	// Different bases still refutable even with unknown offsets.
	src2 := `
module "g2"
func @f(%n: i64) export {
entry:
  %x = alloca [4 x i64]
  %y = alloca [4 x i64]
  %a = gep i64, %x, %n
  %b = gep i64, %y, %n
  store 1:i64, %a
  store 2:i64, %b
  ret
}
`
	m2 := mustModule(t, src2)
	aa2 := NewBasicAA(m2)
	if got := aa2.Alias(instrByName(m2, "a"), 8, instrByName(m2, "b"), 8); got != NoAlias {
		t.Fatalf("distinct bases with unknown offsets = %v", got)
	}
}

func TestBasicAAMemcpyDoesNotCapture(t *testing.T) {
	src := `
module "mc"
func @f(%p: ptr) export {
entry:
  %a = alloca [8 x i8]
  memcpy %a, %p, 8:i64
  ret
}
`
	m := mustModule(t, src)
	aa := NewBasicAA(m)
	a := instrByName(m, "a")
	f := m.Func("f")
	// Writing INTO the alloca does not capture its address: it still
	// cannot alias the unknown parameter.
	if got := aa.Alias(a, 8, f.Params[0], 8); got != NoAlias {
		t.Fatalf("memcpy dst counted as captured: %v", got)
	}
}

func TestAndersenNullAndConstants(t *testing.T) {
	src := `
module "n"
global @g : i64 = 0:i64 internal
func @f(%p: ptr) export {
entry:
  store 1:i64, @g
  ret
}
`
	m := mustModule(t, src)
	and, err := AnalyzeModule(m, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Querying against a null-pointer constant cannot be refuted (no
	// model), must stay May.
	nullV := &ir.ConstNull{}
	if got := and.Alias(m.Global("g"), 8, nullV, 8); got != MayAlias {
		t.Fatalf("null query = %v", got)
	}
}

func TestConflictStatsAccumulation(t *testing.T) {
	var total ConflictStats
	total.Add(ConflictStats{NoAlias: 1, MayAlias: 2, MustAlias: 3})
	total.Add(ConflictStats{NoAlias: 4})
	if total.Total() != 10 || total.NoAlias != 5 {
		t.Fatalf("accumulation wrong: %+v", total)
	}
	if r := (ConflictStats{}).MayRate(); r != 0 {
		t.Fatalf("empty MayRate = %v", r)
	}
}
