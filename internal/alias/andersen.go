package alias

import (
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

// Andersen answers alias queries from a solved points-to problem: two
// accesses may alias only if their pointers' Sol sets intersect (including
// the implicit external part, Section III-D).
type Andersen struct {
	gen *core.Gen
	sol *core.Solution
}

// NewAndersen wraps a generation result and its solution.
func NewAndersen(gen *core.Gen, sol *core.Solution) *Andersen {
	return &Andersen{gen: gen, sol: sol}
}

// AnalyzeModule runs both analysis phases with the given configuration and
// returns the Andersen alias client.
func AnalyzeModule(m *ir.Module, cfg core.Config) (*Andersen, error) {
	gen := core.Generate(m)
	sol, err := core.Solve(gen.Problem, cfg)
	if err != nil {
		return nil, err
	}
	return NewAndersen(gen, sol), nil
}

// pointees classifies a pointer value: a singleton identified object
// (symbol addresses, possibly through casts/geps) or a constraint variable.
func (a *Andersen) pointerVar(v ir.Value) (core.VarID, bool) {
	// Strip offset-only derivations: field-insensitive sets are identical.
	for {
		in, ok := v.(*ir.Instr)
		if !ok || (in.Op != ir.OpGEP && in.Op != ir.OpBitcast) {
			break
		}
		if !ir.PointerCompatible(in.Args[0].Type()) {
			break
		}
		v = in.Args[0]
	}
	switch val := v.(type) {
	case *ir.Global:
		if id, ok := a.gen.VarOf[val]; ok {
			return id, true
		}
		return core.NoVar, false
	case *ir.Function:
		if id, ok := a.gen.VarOf[val]; ok {
			return id, true
		}
		return core.NoVar, false
	default:
		id, ok := a.gen.VarOf[v]
		return id, ok
	}
}

// symbolTarget reports the memory location a symbol address points to.
func (a *Andersen) symbolTarget(v ir.Value) (core.VarID, bool) {
	for {
		in, ok := v.(*ir.Instr)
		if !ok || (in.Op != ir.OpGEP && in.Op != ir.OpBitcast) {
			break
		}
		v = in.Args[0]
	}
	switch val := v.(type) {
	case *ir.Global:
		id, ok := a.gen.MemOf[val]
		return id, ok
	case *ir.Function:
		id, ok := a.gen.MemOf[val]
		return id, ok
	case *ir.Instr:
		if val.Op == ir.OpAlloca {
			id, ok := a.gen.MemOf[val]
			return id, ok
		}
	}
	return core.NoVar, false
}

// Alias implements Analysis. Sizes are ignored: the analysis is
// field-insensitive, so overlap within an object cannot be refuted.
func (a *Andersen) Alias(p ir.Value, _ int64, q ir.Value, _ int64) Result {
	if p == q {
		return MustAlias
	}
	pSym, pIsSym := a.symbolTarget(p)
	qSym, qIsSym := a.symbolTarget(q)
	// Both are direct object addresses: they alias iff same object.
	if pIsSym && qIsSym {
		if pSym == qSym {
			return MayAlias // same object, unknown offsets
		}
		return NoAlias
	}
	// One side is a direct address: check membership in the other's set.
	if pIsSym {
		return a.symbolVsVar(pSym, q)
	}
	if qIsSym {
		return a.symbolVsVar(qSym, p)
	}
	pv, okP := a.pointerVar(p)
	qv, okQ := a.pointerVar(q)
	if !okP || !okQ {
		// A pointer the generator did not model (e.g. null): cannot
		// refute.
		return MayAlias
	}
	if a.sol.MayShareTargets(pv, qv) {
		return MayAlias
	}
	return NoAlias
}

// symbolVsVar answers a query between the address of object sym and a
// pointer variable value.
func (a *Andersen) symbolVsVar(sym core.VarID, q ir.Value) Result {
	qv, ok := a.pointerVar(q)
	if !ok {
		return MayAlias
	}
	for _, x := range a.sol.PointsTo(qv) {
		if x == sym {
			return MayAlias
		}
		if x == core.OmegaPointee && a.sol.Escaped(sym) {
			return MayAlias
		}
	}
	return NoAlias
}
