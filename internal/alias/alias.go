// Package alias implements the alias-analysis clients used to evaluate
// points-to precision (paper Section VI-A): a BasicAA-style local analysis
// that traverses the IR ad hoc, an Andersen-backed analysis that queries
// points-to sets, and their combination, plus the load/store conflict-rate
// harness of Figure 9.
package alias

import "github.com/pip-analysis/pip/internal/ir"

// Result is an alias query answer.
type Result uint8

const (
	// NoAlias: the two accesses never overlap.
	NoAlias Result = iota
	// MayAlias: the analysis cannot rule out overlap.
	MayAlias
	// MustAlias: the two pointers are provably identical.
	MustAlias
)

func (r Result) String() string {
	switch r {
	case NoAlias:
		return "NoAlias"
	case MayAlias:
		return "MayAlias"
	case MustAlias:
		return "MustAlias"
	default:
		return "Result(?)"
	}
}

// Analysis is an alias analysis: it answers whether a byte range of sizeA
// at pointer a may overlap a byte range of sizeB at pointer b. Sizes of 0
// mean "unknown size".
type Analysis interface {
	Alias(a ir.Value, sizeA int64, b ir.Value, sizeB int64) Result
}

// Combined answers NoAlias if any member analysis proves NoAlias and
// MustAlias if any member proves MustAlias; otherwise MayAlias. This is the
// paper's "Andersen + BasicAA" configuration.
type Combined []Analysis

// Alias implements Analysis.
func (c Combined) Alias(a ir.Value, sizeA int64, b ir.Value, sizeB int64) Result {
	res := MayAlias
	for _, an := range c {
		switch an.Alias(a, sizeA, b, sizeB) {
		case NoAlias:
			return NoAlias
		case MustAlias:
			res = MustAlias
		}
	}
	return res
}
