package alias

import "github.com/pip-analysis/pip/internal/ir"

// BasicAA mimics LLVM's BasicAA pass (paper Section VI-A): ad-hoc IR
// traversal that finds the origins of pointers. It understands distinct
// allocations, constant getelementptr offsets, and stack slots whose
// address never escapes the function; it does not follow loads, calls, or
// nested pointers.
type BasicAA struct {
	captured map[*ir.Instr]bool
}

// NewBasicAA builds the analysis for a module, precomputing which allocas
// have their address captured (stored, passed to a call, cast to an
// integer, or merged through phi/select).
func NewBasicAA(m *ir.Module) *BasicAA {
	b := &BasicAA{captured: map[*ir.Instr]bool{}}
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		for ai, arg := range in.Args {
			base, _, known := decompose(arg)
			if !known {
				continue
			}
			al, isAlloca := base.(*ir.Instr)
			if !isAlloca || al.Op != ir.OpAlloca {
				continue
			}
			switch in.Op {
			case ir.OpLoad:
				// Address used only as a load source: not captured.
			case ir.OpStore:
				if ai == 0 {
					b.captured[al] = true // the address itself is stored
				}
			case ir.OpGEP, ir.OpBitcast, ir.OpICmp:
				// Derived pointers are tracked through decompose;
				// comparisons do not capture.
			case ir.OpMemcpy:
				// Reading/writing through the pointer does not capture
				// the address (the len operand cannot be a pointer).
			default:
				// Calls, ptrtoint, phi, select, ret, binary ops: treat
				// the address as captured.
				b.captured[al] = true
			}
		}
	})
	return b
}

// location is a decomposed pointer: an identified base object plus a
// constant byte offset, when derivable.
type location struct {
	base        ir.Value
	offset      int64
	exactOffset bool
}

// decompose strips gep/bitcast chains. The third result reports whether the
// base is an identified object (alloca, global, or function).
func decompose(v ir.Value) (ir.Value, location, bool) {
	loc := location{exactOffset: true}
	for {
		switch cur := v.(type) {
		case *ir.Global:
			loc.base = cur
			return cur, loc, true
		case *ir.Function:
			loc.base = cur
			return cur, loc, true
		case *ir.Instr:
			switch cur.Op {
			case ir.OpAlloca:
				loc.base = cur
				return cur, loc, true
			case ir.OpBitcast:
				v = cur.Args[0]
			case ir.OpGEP:
				off, exact := gepOffset(cur)
				if !exact {
					loc.exactOffset = false
				}
				loc.offset += off
				v = cur.Args[0]
			default:
				loc.base = cur
				return cur, loc, false
			}
		default:
			loc.base = v
			return v, loc, false
		}
	}
}

// gepOffset computes the constant byte offset of a gep, using the simple
// layout model of ir.SizeOf. The first index scales by the size of the
// base type; later indices walk into aggregates.
func gepOffset(in *ir.Instr) (int64, bool) {
	t := in.Ty
	var off int64
	for i, idx := range in.Args[1:] {
		ci, isConst := idx.(*ir.ConstInt)
		if !isConst {
			return off, false
		}
		if i == 0 {
			off += ci.Val * ir.SizeOf(t)
			continue
		}
		switch cur := t.(type) {
		case *ir.StructType:
			fi := int(ci.Val)
			if fi < 0 || fi >= len(cur.Fields) {
				return off, false
			}
			off += ir.FieldOffset(cur, fi)
			t = cur.Fields[fi]
		case *ir.ArrayType:
			off += ci.Val * ir.SizeOf(cur.Elem)
			t = cur.Elem
		default:
			return off, false
		}
	}
	return off, true
}

// Alias implements Analysis.
func (b *BasicAA) Alias(a ir.Value, sizeA int64, c ir.Value, sizeB int64) Result {
	if a == c {
		return MustAlias
	}
	baseA, locA, knownA := decompose(a)
	baseB, locB, knownB := decompose(c)

	if knownA && knownB {
		if baseA != baseB {
			// Distinct identified objects never overlap.
			return NoAlias
		}
		// Same object: compare offsets when exact.
		if locA.exactOffset && locB.exactOffset {
			if locA.offset == locB.offset {
				return MustAlias
			}
			lo, hi := locA, locB
			loSize := sizeA
			if lo.offset > hi.offset {
				lo, hi = hi, lo
				loSize = sizeB
			}
			if loSize > 0 && lo.offset+loSize <= hi.offset {
				return NoAlias
			}
		}
		return MayAlias
	}

	// One side identified, other unknown: a non-captured alloca cannot be
	// reached through an unknown pointer.
	check := func(base ir.Value, known bool, other ir.Value) Result {
		if !known {
			return MayAlias
		}
		if al, ok := base.(*ir.Instr); ok && al.Op == ir.OpAlloca && !b.captured[al] {
			return NoAlias
		}
		return MayAlias
	}
	if r := check(baseA, knownA, c); r == NoAlias {
		return NoAlias
	}
	if r := check(baseB, knownB, a); r == NoAlias {
		return NoAlias
	}
	return MayAlias
}
