package workload

import (
	"fmt"
	"math/rand"

	"github.com/pip-analysis/pip/internal/ir"
)

// The adversarial-linker generator (paper Section III-A): generate a
// random module A with exports and imports, generate a random external
// module B that implements A's imports and abuses A's exports (stores
// unknown pointers into exported globals, calls exported functions with
// foreign pointers, returns foreign pointers from imported functions),
// then link A+B into a closed whole program.
//
// The core soundness property test consumes both halves; the engine uses
// the incomplete modules A (and the closed whole programs) as stress
// inputs for its differential harness, because they exercise exactly the
// escape/Ω machinery that distinguishes solver configurations.

// LinkedModules is one adversarial A + whole-program pair, with the
// parallel bookkeeping the soundness check needs to map W values back to
// A values.
type LinkedModules struct {
	A     *ir.Module // the incomplete module
	Whole *ir.Module // A linked with the adversarial external module B

	// MemPairs lists A-owned memory objects: [0] is the A value, [1] the
	// identical W value.
	MemPairs [][2]ir.Value
	// LocalFuncPairs lists A's defined functions in both modules
	// (identical bodies by construction).
	LocalFuncPairs [][2]*ir.Function
}

// GenerateLinked builds the adversarial module pair for a seed. The same
// seed always yields the same pair.
func GenerateLinked(seed int64) *LinkedModules {
	g := newLinkedGen(seed)
	g.build()
	return &LinkedModules{
		A:              g.mA,
		Whole:          g.mW,
		MemPairs:       g.memPairs,
		LocalFuncPairs: g.localFuncPairs,
	}
}

// linkedGen builds module A and the whole program W in lockstep.
type linkedGen struct {
	rng *rand.Rand
	mA  *ir.Module
	mW  *ir.Module
	bA  *ir.Builder
	bW  *ir.Builder

	// Parallel value handles: vals[i] exists in both modules.
	valsA []ir.Value
	valsW []ir.Value

	// A-owned memory pairs for the coverage check.
	memPairs [][2]ir.Value // [0]=A object, [1]=W object

	// A's symbols, by kind.
	exportedPtrGlobalsA []*ir.Global
	exportedPtrGlobalsW []*ir.Global
	exportedFuncsW      []*ir.Function
	importsW            []*ir.Function // defined in B
	localFuncPairs      [][2]*ir.Function

	// B-owned globals (whole program only).
	bGlobals []*ir.Global
}

func newLinkedGen(seed int64) *linkedGen {
	g := &linkedGen{
		rng: rand.New(rand.NewSource(seed)),
		mA:  ir.NewModule("A"),
		mW:  ir.NewModule("whole"),
	}
	g.bA = ir.NewBuilder(g.mA)
	g.bW = ir.NewBuilder(g.mW)
	return g
}

// build constructs both modules and returns them.
func (g *linkedGen) build() (*ir.Module, *ir.Module) {
	rng := g.rng

	// Globals of A: pointer cells, some exported.
	nGlob := 3 + rng.Intn(4)
	for i := 0; i < nGlob; i++ {
		name := fmt.Sprintf("g%d", i)
		linkage := ir.Internal
		if rng.Intn(2) == 0 {
			linkage = ir.Exported
		}
		ga := g.bA.GlobalVar(name, ir.Ptr, nil, linkage)
		gw := g.bW.GlobalVar(name, ir.Ptr, nil, ir.Internal)
		g.memPairs = append(g.memPairs, [2]ir.Value{ga, gw})
		if linkage == ir.Exported {
			g.exportedPtrGlobalsA = append(g.exportedPtrGlobalsA, ga)
			g.exportedPtrGlobalsW = append(g.exportedPtrGlobalsW, gw)
		}
	}
	// Scalar globals too (targets for int pointers).
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("s%d", i)
		sa := g.bA.GlobalVar(name, ir.I64, nil, ir.Internal)
		sw := g.bW.GlobalVar(name, ir.I64, nil, ir.Internal)
		g.memPairs = append(g.memPairs, [2]ir.Value{sa, sw})
	}

	// Imports: functions defined by B.
	nImp := 1 + rng.Intn(2)
	sigPP := &ir.FuncType{Ret: ir.Ptr, Params: []ir.Type{ir.Ptr}}
	for i := 0; i < nImp; i++ {
		name := fmt.Sprintf("imp%d", i)
		g.bA.DeclareFunc(name, sigPP)
		// Defined later, in B.
		g.importsW = append(g.importsW, nil)
		_ = name
	}

	// Functions of A.
	nFunc := 2 + rng.Intn(3)
	for i := 0; i < nFunc; i++ {
		linkage := ir.Internal
		if rng.Intn(2) == 0 {
			linkage = ir.Exported
		}
		g.genAFunction(fmt.Sprintf("f%d", i), linkage)
	}

	// B: define the imports and a driver that abuses A's exports.
	g.genBModule()
	return g.mA, g.mW
}

// pick returns a random tracked pointer value pair, or nil if none exist.
func (g *linkedGen) pick() (ir.Value, ir.Value, bool) {
	if len(g.valsA) == 0 {
		return nil, nil, false
	}
	i := g.rng.Intn(len(g.valsA))
	return g.valsA[i], g.valsW[i], true
}

func (g *linkedGen) track(va, vw ir.Value) {
	g.valsA = append(g.valsA, va)
	g.valsW = append(g.valsW, vw)
}

// genAFunction emits a random function into both A and W with an identical
// body.
func (g *linkedGen) genAFunction(name string, linkage ir.Linkage) {
	sig := &ir.FuncType{Ret: ir.Ptr, Params: []ir.Type{ir.Ptr, ir.Ptr}}
	fa := g.bA.NewFunc(name, sig, []string{"a", "b"}, linkage)
	wLinkage := ir.Internal
	fw := g.bW.NewFunc(name, sig, []string{"a", "b"}, wLinkage)
	g.localFuncPairs = append(g.localFuncPairs, [2]*ir.Function{fa, fw})
	if linkage == ir.Exported {
		g.exportedFuncsW = append(g.exportedFuncsW, fw)
	}

	// Track params.
	for i := range fa.Params {
		g.track(fa.Params[i], fw.Params[i])
	}
	baseVals := len(g.valsA)

	nOps := 3 + g.rng.Intn(8)
	for op := 0; op < nOps; op++ {
		switch g.rng.Intn(7) {
		case 0: // alloca a pointer slot
			aa := g.bA.Alloca(ir.Ptr)
			aw := g.bW.Alloca(ir.Ptr)
			g.memPairs = append(g.memPairs, [2]ir.Value{aa, aw})
			g.track(aa, aw)
		case 1: // address of a random A global
			gi := g.rng.Intn(len(g.mA.Globals))
			ga := g.mA.Globals[gi]
			gw := g.mW.Global(ga.GName)
			g.track(ga, gw)
		case 2: // store v into ptr
			va, vw, ok := g.pick()
			pa, pw, ok2 := g.pick()
			if ok && ok2 {
				g.bA.Store(va, pa)
				g.bW.Store(vw, pw)
			}
		case 3: // load from ptr
			pa, pw, ok := g.pick()
			if ok {
				la := g.bA.Load(ir.Ptr, pa)
				lw := g.bW.Load(ir.Ptr, pw)
				g.track(la, lw)
			}
		case 4: // call an import
			if len(g.mA.Funcs) == 0 {
				continue
			}
			idx := g.rng.Intn(len(g.mA.Funcs))
			callee := g.mA.Funcs[idx]
			if callee.IsDecl() && len(callee.Sig.Params) == 1 {
				pa, pw, ok := g.pick()
				if !ok {
					continue
				}
				ra := g.bA.Call(ir.Ptr, callee, pa)
				calleeW := g.mW.Func(callee.FName) // may not exist yet
				if calleeW == nil {
					// Declared in W temporarily; B defines it later.
					calleeW = g.bW.DeclareFunc(callee.FName, callee.Sig)
				}
				rw := g.bW.Call(ir.Ptr, calleeW, pw)
				g.track(ra, rw)
			}
		case 5: // call a previously generated local function directly
			if len(g.localFuncPairs) < 2 {
				continue
			}
			pi := g.rng.Intn(len(g.localFuncPairs) - 1) // avoid self/recursion noise
			pa1, pw1, ok1 := g.pick()
			pa2, pw2, ok2 := g.pick()
			if !ok1 || !ok2 {
				continue
			}
			ra := g.bA.Call(ir.Ptr, g.localFuncPairs[pi][0], pa1, pa2)
			rw := g.bW.Call(ir.Ptr, g.localFuncPairs[pi][1], pw1, pw2)
			g.track(ra, rw)
		case 6: // pointer/integer round trip (exposure)
			if g.rng.Intn(3) != 0 {
				continue // keep rare
			}
			pa, pw, ok := g.pick()
			if !ok {
				continue
			}
			ia := g.bA.PtrToInt(pa)
			iw := g.bW.PtrToInt(pw)
			qa := g.bA.IntToPtr(ia)
			qw := g.bW.IntToPtr(iw)
			g.track(qa, qw)
		}
	}
	// Return a tracked pointer (prefer one created in this function).
	var ra, rw ir.Value = ir.Null(), ir.Null()
	if len(g.valsA) > baseVals {
		i := baseVals + g.rng.Intn(len(g.valsA)-baseVals)
		ra, rw = g.valsA[i], g.valsW[i]
	}
	g.bA.Ret(ra)
	g.bW.Ret(rw)
	// Values from this function's body must not leak into other bodies.
	g.valsA = g.valsA[:0]
	g.valsW = g.valsW[:0]
}

// genBModule emits, into the whole program only, the external module B:
// definitions for A's imports plus a driver that abuses A's exports.
func (g *linkedGen) genBModule() {
	rng := g.rng
	// B's own globals.
	nB := 2 + rng.Intn(3)
	for i := 0; i < nB; i++ {
		g.bGlobals = append(g.bGlobals,
			g.bW.GlobalVar(fmt.Sprintf("bglob%d", i), ir.Ptr, nil, ir.Internal))
	}
	pickB := func() *ir.Global { return g.bGlobals[rng.Intn(len(g.bGlobals))] }

	// Define A's imports: each takes a pointer and adversarially mixes it
	// with B's state before returning something.
	for _, fA := range g.mA.Funcs {
		if !fA.IsDecl() {
			continue
		}
		fW := g.mW.Func(fA.FName)
		if fW != nil && !fW.IsDecl() {
			continue
		}
		if fW != nil {
			// Declarations created on demand in case 4 are filled here by
			// mutating the function in place.
			g.defineImportBody(fW, pickB)
			continue
		}
		fW2 := g.bW.NewFunc(fA.FName, fA.Sig, []string{"p"}, ir.Internal)
		g.fillImportBody(fW2, pickB)
	}

	// Driver: calls every exported function with B pointers, stores B
	// pointers into exported globals, and reads them back.
	drv := g.bW.NewFunc("b_driver", &ir.FuncType{Ret: ir.Void}, nil, ir.Internal)
	_ = drv
	for _, gw := range g.exportedPtrGlobalsW {
		g.bW.Store(pickB(), gw)
		if rng.Intn(2) == 0 {
			// Store an exported global's address into B state, then
			// write through it from B.
			g.bW.Store(gw, pickB())
		}
	}
	for _, fw := range g.exportedFuncsW {
		args := []ir.Value{pickB(), pickB()}
		if len(g.exportedPtrGlobalsW) > 0 && rng.Intn(2) == 0 {
			args[0] = g.exportedPtrGlobalsW[rng.Intn(len(g.exportedPtrGlobalsW))]
		}
		r := g.bW.Call(ir.Ptr, fw, args[0], args[1])
		// B stores the result into its own state and back into A's
		// exported globals.
		g.bW.Store(r, pickB())
		if len(g.exportedPtrGlobalsW) > 0 {
			g.bW.Store(r, g.exportedPtrGlobalsW[rng.Intn(len(g.exportedPtrGlobalsW))])
		}
	}
	g.bW.Ret(nil)
}

// defineImportBody turns an on-demand declaration into a definition.
func (g *linkedGen) defineImportBody(f *ir.Function, pickB func() *ir.Global) {
	f.Linkage = ir.Internal
	saveF, saveB := g.bW.F, g.bW.B
	g.bW.F = f
	entry := g.bW.NewBlock("entry")
	g.bW.SetBlock(entry)
	g.fillImportBody(f, pickB)
	g.bW.F, g.bW.B = saveF, saveB
}

func (g *linkedGen) fillImportBody(f *ir.Function, pickB func() *ir.Global) {
	rng := g.rng
	p := f.Params[0]
	// Stash the argument in B state.
	g.bW.Store(p, pickB())
	// Mix: load whatever B has and store through the argument.
	v := g.bW.Load(ir.Ptr, pickB())
	g.bW.Store(v, p)
	// Return either the argument, a B global address, or a stashed value.
	switch rng.Intn(3) {
	case 0:
		g.bW.Ret(p)
	case 1:
		g.bW.Ret(pickB())
	default:
		g.bW.Ret(v)
	}
}
