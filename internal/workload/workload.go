package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/pip-analysis/pip/internal/ir"
)

// Options controls corpus generation.
type Options struct {
	// Seed makes the corpus deterministic; the same seed always yields
	// byte-identical modules.
	Seed int64
	// Scale multiplies per-suite file counts (1.0 = the paper's 3659
	// files). Each suite keeps at least one file.
	Scale float64
	// SizeScale multiplies per-file instruction targets (1.0 = the
	// paper's sizes).
	SizeScale float64
	// MaxInstrs, when positive, caps every file's instruction target
	// after scaling. Useful for fast test corpora.
	MaxInstrs int
	// NoPathological replaces the escape-heavy outlier files with
	// ordinary ones, for experiments isolating the common case.
	NoPathological bool
}

// DefaultOptions is a laptop-friendly configuration: 10% of the files at
// 25% size.
func DefaultOptions() Options {
	return Options{Seed: 1, Scale: 0.1, SizeScale: 0.25}
}

func (o Options) normalized() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.SizeScale <= 0 {
		o.SizeScale = 1
	}
	return o
}

// File is one generated translation unit.
type File struct {
	Suite        string
	Name         string
	Module       *ir.Module
	Pathological bool
}

// GenerateCorpus generates every suite.
func GenerateCorpus(opts Options) []File {
	var out []File
	for _, spec := range Suites {
		out = append(out, GenerateSuite(spec, opts)...)
	}
	return out
}

// GenerateSuite generates one suite's files.
func GenerateSuite(spec SuiteSpec, opts Options) []File {
	opts = opts.normalized()
	nFiles := int(float64(spec.Files)*opts.Scale + 0.5)
	if nFiles < 1 {
		nFiles = 1
	}
	nPath := spec.Pathological
	if opts.NoPathological {
		nPath = 0
	}
	if nPath > nFiles/2 {
		nPath = (nFiles + 1) / 2
	}
	mu, sigma := fitLogNormal(float64(spec.MeanInstrs), float64(spec.MaxInstrs), nFiles)
	var out []File
	for i := 0; i < nFiles; i++ {
		seed := opts.Seed*1_000_003 + int64(hashString(spec.Name))*7919 + int64(i)
		rng := rand.New(rand.NewSource(seed))
		name := fmt.Sprintf("%s/file%04d.c", spec.Name, i)
		if i < nPath {
			target := int(float64(spec.MaxInstrs) * opts.SizeScale)
			if target < 400 {
				target = 400
			}
			if opts.MaxInstrs > 0 && target > opts.MaxInstrs {
				target = opts.MaxInstrs
			}
			m := generatePathological(name, rng, target)
			out = append(out, File{Suite: spec.Name, Name: name, Module: m, Pathological: true})
			continue
		}
		target := int(math.Exp(mu+sigma*rng.NormFloat64()) * opts.SizeScale)
		if target < 30 {
			target = 30
		}
		maxT := int(float64(spec.MaxInstrs) * opts.SizeScale)
		if target > maxT && maxT > 30 {
			target = maxT
		}
		if opts.MaxInstrs > 0 && target > opts.MaxInstrs {
			target = opts.MaxInstrs
		}
		m := generateFile(name, spec, rng, target)
		out = append(out, File{Suite: spec.Name, Name: name, Module: m})
	}
	return out
}

// fitLogNormal finds (mu, sigma) such that a log-normal sample of size n
// has approximately the given mean and maximum.
func fitLogNormal(mean, max float64, n int) (mu, sigma float64) {
	if n < 2 {
		return math.Log(mean), 0.25
	}
	// Expected maximum of n standard normals ≈ quantile at 1 - 1/(n+1).
	q := 1 - 1/float64(n+1)
	z := math.Sqrt2 * math.Erfinv(2*q-1)
	r := math.Log(max / mean)
	disc := z*z - 2*r
	if disc < 0 {
		sigma = z
	} else {
		sigma = z - math.Sqrt(disc)
	}
	if sigma < 0.3 {
		sigma = 0.3
	}
	if sigma > 2.5 {
		sigma = 2.5
	}
	mu = math.Log(mean) - sigma*sigma/2
	return mu, sigma
}

func hashString(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// fileGen holds per-file generation state.
type fileGen struct {
	rng     *rand.Rand
	spec    SuiteSpec
	m       *ir.Module
	b       *ir.Builder
	target  int
	emitted int // instruction budget consumed

	structs  []*ir.StructType
	globals  []*ir.Global // pointer-holding globals
	intGlobs []*ir.Global
	funcs    []*ir.Function // defined so far (callable)
	externs  []*ir.Function
	hasHeap  bool

	// per-function pools
	ptrs    []ir.Value
	scalars []ir.Value
}

func generateFile(name string, spec SuiteSpec, rng *rand.Rand, target int) *ir.Module {
	g := &fileGen{rng: rng, spec: spec, target: target}
	g.m = ir.NewModule(name)
	g.b = ir.NewBuilder(g.m)
	g.declareModuleLevel()
	// Fill function bodies until the instruction budget is spent.
	avgBody := 40 + rng.Intn(40)
	idx := 0
	for g.emitted < g.target {
		left := g.target - g.emitted
		body := avgBody
		if body > left {
			body = left
		}
		g.genFunction(fmt.Sprintf("fn%d", idx), body)
		idx++
	}
	return g.m
}

func (g *fileGen) linkage(rate float64) ir.Linkage {
	if g.rng.Float64() < rate {
		return ir.Exported
	}
	return ir.Internal
}

func (g *fileGen) declareModuleLevel() {
	rng := g.rng
	// A couple of struct types.
	s1 := &ir.StructType{Name: "node", Fields: []ir.Type{ir.Ptr, ir.I64}}
	s2 := &ir.StructType{Name: "ctx", Fields: []ir.Type{ir.Ptr, ir.Ptr, ir.I32}}
	_ = g.m.AddStruct(s1)
	_ = g.m.AddStruct(s2)
	g.structs = []*ir.StructType{s1, s2}

	// Globals: pointer cells, scalar cells, arrays, structs.
	nGlobals := g.target/80 + 2
	for i := 0; i < nGlobals; i++ {
		lk := g.linkage(g.spec.ExportRate)
		switch rng.Intn(5) {
		case 0, 1:
			gl := g.b.GlobalVar(fmt.Sprintf("gp%d", i), ir.Ptr, nil, lk)
			g.globals = append(g.globals, gl)
		case 2:
			gl := g.b.GlobalVar(fmt.Sprintf("gi%d", i), ir.I64, nil, lk)
			g.intGlobs = append(g.intGlobs, gl)
		case 3:
			gl := g.b.GlobalVar(fmt.Sprintf("ga%d", i), &ir.ArrayType{Elem: ir.Ptr, Len: 4 + rng.Intn(12)}, nil, lk)
			g.globals = append(g.globals, gl)
		default:
			gl := g.b.GlobalVar(fmt.Sprintf("gs%d", i), g.structs[rng.Intn(len(g.structs))], nil, lk)
			g.globals = append(g.globals, gl)
		}
	}
	// Pointer globals reference each other (cross-references create the
	// copy cycles that cycle detection targets).
	for i, gl := range g.globals {
		if ir.TypesEqual(gl.Elem, ir.Ptr) && rng.Intn(2) == 0 && len(g.globals) > 1 {
			gl.Init = g.globals[(i+1+rng.Intn(len(g.globals)-1))%len(g.globals)]
		}
	}

	// Imported functions.
	nExterns := 2 + rng.Intn(5)
	for i := 0; i < nExterns; i++ {
		nArgs := rng.Intn(3)
		sig := &ir.FuncType{Ret: ir.Ptr}
		for a := 0; a < nArgs; a++ {
			if rng.Intn(2) == 0 {
				sig.Params = append(sig.Params, ir.Ptr)
			} else {
				sig.Params = append(sig.Params, ir.I64)
			}
		}
		g.externs = append(g.externs, g.b.DeclareFunc(fmt.Sprintf("ext%d", i), sig))
	}
	if g.rng.Float64() < g.spec.HeapRate+0.3 {
		g.hasHeap = true
		g.externs = append(g.externs,
			g.b.DeclareFunc("malloc", &ir.FuncType{Ret: ir.Ptr, Params: []ir.Type{ir.I64}}),
			g.b.DeclareFunc("free", &ir.FuncType{Ret: ir.Void, Params: []ir.Type{ir.Ptr}}))
	}
}

// anyPtr returns a random pointer value from the pool, creating one (the
// address of a global) if the pool is empty.
func (g *fileGen) anyPtr() ir.Value {
	if len(g.ptrs) == 0 {
		if len(g.globals) > 0 {
			return g.globals[g.rng.Intn(len(g.globals))]
		}
		a := g.b.Alloca(ir.Ptr)
		g.emitted++
		g.ptrs = append(g.ptrs, a)
		return a
	}
	return g.ptrs[g.rng.Intn(len(g.ptrs))]
}

func (g *fileGen) anyScalar() ir.Value {
	if len(g.scalars) == 0 || g.rng.Intn(4) == 0 {
		return ir.Int(int64(g.rng.Intn(1000)), ir.I64)
	}
	return g.scalars[g.rng.Intn(len(g.scalars))]
}

// genFunction emits one function with roughly budget instructions.
func (g *fileGen) genFunction(name string, budget int) {
	rng := g.rng
	nPtrArgs := rng.Intn(3)
	sig := &ir.FuncType{Ret: ir.Ptr}
	for i := 0; i < nPtrArgs; i++ {
		sig.Params = append(sig.Params, ir.Ptr)
	}
	if rng.Intn(2) == 0 {
		sig.Params = append(sig.Params, ir.I64)
	}
	f := g.b.NewFunc(name, sig, nil, g.linkage(g.spec.ExportRate))
	g.funcs = append(g.funcs, f)
	g.ptrs = g.ptrs[:0]
	g.scalars = g.scalars[:0]
	for _, p := range f.Params {
		if ir.TypesEqual(p.T, ir.Ptr) {
			g.ptrs = append(g.ptrs, p)
		} else {
			g.scalars = append(g.scalars, p)
		}
	}

	used := 0
	emit := func(n int) { used += n; g.emitted += n }
	for used < budget {
		r := rng.Float64()
		switch {
		case r < 0.32: // scalar arithmetic: the bulk of real code
			v := g.b.Bin(ir.BinKinds[rng.Intn(len(ir.BinKinds))], ir.I64, g.anyScalar(), g.anyScalar())
			g.scalars = append(g.scalars, v)
			emit(1)
		case r < 0.40: // comparison + diamond (adds realistic CFG weight)
			c := g.b.ICmp(ir.ICmpPreds[rng.Intn(len(ir.ICmpPreds))], g.anyScalar(), g.anyScalar())
			then := g.b.NewBlock(fmt.Sprintf("t%d", used))
			els := g.b.NewBlock(fmt.Sprintf("e%d", used))
			join := g.b.NewBlock(fmt.Sprintf("j%d", used))
			g.b.CondBr(c, then, els)
			g.b.SetBlock(then)
			v1 := g.anyPtr()
			g.b.Br(join)
			g.b.SetBlock(els)
			v2 := g.anyPtr()
			g.b.Br(join)
			g.b.SetBlock(join)
			p := g.b.Phi(ir.Ptr, []ir.Value{v1, v2}, []*ir.Block{then, els})
			g.ptrs = append(g.ptrs, p)
			emit(5)
		case r < 0.50: // alloca
			var t ir.Type = ir.Ptr
			switch rng.Intn(4) {
			case 0:
				t = ir.I64
			case 1:
				t = g.structs[rng.Intn(len(g.structs))]
			}
			a := g.b.Alloca(t)
			g.ptrs = append(g.ptrs, a)
			emit(1)
		case r < 0.62: // load
			if rng.Intn(3) == 0 { // scalar load
				v := g.b.Load(ir.I64, g.anyPtr())
				g.scalars = append(g.scalars, v)
			} else {
				v := g.b.Load(ir.Ptr, g.anyPtr())
				g.ptrs = append(g.ptrs, v)
			}
			emit(1)
		case r < 0.74: // store
			if rng.Intn(3) == 0 {
				g.b.Store(g.anyScalar(), g.anyPtr())
			} else {
				g.b.Store(g.anyPtr(), g.anyPtr())
			}
			emit(1)
		case r < 0.80: // gep
			v := g.b.GEP(g.structs[rng.Intn(len(g.structs))], g.anyPtr(),
				ir.Int(0, ir.I64), ir.Int(int64(rng.Intn(2)), ir.I64))
			g.ptrs = append(g.ptrs, v)
			emit(1)
		case r < 0.80+g.spec.SmuggleRate: // pointer-integer round trips
			i := g.b.PtrToInt(g.anyPtr())
			q := g.b.IntToPtr(i)
			g.ptrs = append(g.ptrs, q)
			g.scalars = append(g.scalars, i)
			emit(2)
		case r < 0.82+g.spec.SmuggleRate && len(g.funcs) > 0 && len(g.globals) > 0:
			// Publish a function address through a global (the source of
			// realistic indirect-call targets).
			fn := g.funcs[rng.Intn(len(g.funcs))]
			g.b.Store(fn, g.globals[rng.Intn(len(g.globals))])
			emit(1)
		default: // calls
			g.genCall()
			emit(2)
		}
	}
	g.b.Ret(g.anyPtr())
	g.emitted++
}

func (g *fileGen) genCall() {
	rng := g.rng
	r := rng.Float64()
	switch {
	case g.hasHeap && r < g.spec.HeapRate*0.5:
		h := g.b.Call(ir.Ptr, g.m.Func("malloc"), ir.Int(int64(8+rng.Intn(64)), ir.I64))
		g.ptrs = append(g.ptrs, h)
	case r < g.spec.ExternRate && len(g.externs) > 0:
		callee := g.externs[rng.Intn(len(g.externs))]
		args := make([]ir.Value, len(callee.Sig.Params))
		for i, pt := range callee.Sig.Params {
			if ir.TypesEqual(pt, ir.Ptr) {
				args[i] = g.anyPtr()
			} else {
				args[i] = g.anyScalar()
			}
		}
		v := g.b.Call(callee.Sig.Ret, callee, args...)
		if ir.TypesEqual(callee.Sig.Ret, ir.Ptr) {
			g.ptrs = append(g.ptrs, v)
		}
	case r < g.spec.ExternRate+g.spec.FnPtrRate:
		// Indirect call: load a function pointer back out of a global
		// half the time (resolvable), otherwise call through an
		// arbitrary pool pointer (usually unknown origin).
		callee := g.anyPtr()
		if rng.Intn(2) == 0 && len(g.globals) > 0 {
			callee = g.b.Load(ir.Ptr, g.globals[rng.Intn(len(g.globals))])
		}
		v := g.b.Call(ir.Ptr, callee, g.anyPtr())
		g.ptrs = append(g.ptrs, v)
	case len(g.funcs) > 0:
		callee := g.funcs[rng.Intn(len(g.funcs))]
		args := make([]ir.Value, len(callee.Sig.Params))
		for i, pt := range callee.Sig.Params {
			if ir.TypesEqual(pt, ir.Ptr) {
				args[i] = g.anyPtr()
			} else {
				args[i] = g.anyScalar()
			}
		}
		v := g.b.Call(ir.Ptr, callee, args...)
		g.ptrs = append(g.ptrs, v)
	default:
		v := g.b.Bin("add", ir.I64, g.anyScalar(), g.anyScalar())
		g.scalars = append(g.scalars, v)
	}
}

// generatePathological builds an escape-heavy module modeled on the
// paper's base/gdevp14.c outlier: a large set of exported pointer globals
// densely copied through one another. Every pointer both escapes and has
// unknown-origin pointees, so without PIP the solver materializes a
// quadratic number of doubled-up explicit pointees.
func generatePathological(name string, rng *rand.Rand, target int) *ir.Module {
	m := ir.NewModule(name)
	b := ir.NewBuilder(m)
	n := target / 6
	if n < 16 {
		n = 16
	}
	globals := make([]*ir.Global, n)
	for i := range globals {
		globals[i] = b.GlobalVar(fmt.Sprintf("tab%d", i), ir.Ptr, nil, ir.Exported)
	}
	for i, gl := range globals {
		gl.Init = globals[(i+1)%n]
	}
	ext := b.DeclareFunc("callback", &ir.FuncType{Ret: ir.Ptr, Params: []ir.Type{ir.Ptr}})

	nFuncs := 1 + n/64
	per := (target - n) / nFuncs
	for fi := 0; fi < nFuncs; fi++ {
		b.NewFunc(fmt.Sprintf("route%d", fi), &ir.FuncType{Ret: ir.Ptr, Params: []ir.Type{ir.Ptr}}, nil, ir.Exported)
		var last ir.Value = b.Load(ir.Ptr, globals[rng.Intn(n)])
		for i := 0; i < per/2; i++ {
			src := globals[rng.Intn(n)]
			dst := globals[rng.Intn(n)]
			v := b.Load(ir.Ptr, src)
			b.Store(v, dst)
			if i%16 == 0 {
				last = b.Call(ir.Ptr, ext, v)
			} else {
				last = v
			}
		}
		b.Ret(last)
	}
	return m
}
