// Package workload generates the synthetic benchmark corpus that stands in
// for the paper's SPEC CPU2017 and open-source C files (Table III). Each
// suite reproduces the paper's file count and per-file size distribution
// (mean and maximum IR instructions); file contents are random but
// deterministic in the seed, with a realistic mix of escaping globals,
// external calls, function pointers, heap allocation, pointer-integer
// casts, and copy chains. The ghostscript suite additionally contains
// escape-heavy "pathological" files modeled on the paper's base/gdevp14.c
// outlier, which dominates solver runtime without PIP.
package workload

// SuiteSpec describes one benchmark suite (one row of Table III).
type SuiteSpec struct {
	Name string
	// KLOC is the paper-reported thousands of lines of code (reporting
	// only; the generator works from instruction counts).
	KLOC int
	// Files is the paper's non-empty C file count.
	Files int
	// MeanInstrs and MaxInstrs give the per-file IR instruction
	// distribution to match.
	MeanInstrs int
	MaxInstrs  int

	// Behavioural knobs (fractions in [0,1]).
	ExportRate   float64 // fraction of globals/functions with external linkage
	ExternRate   float64 // fraction of calls that target imported functions
	FnPtrRate    float64 // fraction of calls made through function pointers
	HeapRate     float64 // fraction of functions that allocate
	SmuggleRate  float64 // fraction of functions with pointer-integer casts
	Pathological int     // number of escape-heavy outlier files
}

// Suites reproduces Table III. Mean/Max instruction counts are the paper's;
// behavioral rates are chosen per suite family (SPEC compute kernels escape
// little; interactive programs like emacs/gdb export and call out heavily).
var Suites = []SuiteSpec{
	{Name: "500.perlbench", KLOC: 362, Files: 68, MeanInstrs: 22725, MaxInstrs: 165497,
		ExportRate: 0.55, ExternRate: 0.30, FnPtrRate: 0.08, HeapRate: 0.35, SmuggleRate: 0.10},
	{Name: "502.gcc", KLOC: 902, Files: 372, MeanInstrs: 16244, MaxInstrs: 535524,
		ExportRate: 0.50, ExternRate: 0.25, FnPtrRate: 0.10, HeapRate: 0.30, SmuggleRate: 0.08},
	{Name: "505.mcf", KLOC: 2, Files: 12, MeanInstrs: 1228, MaxInstrs: 4778,
		ExportRate: 0.40, ExternRate: 0.15, FnPtrRate: 0.02, HeapRate: 0.20, SmuggleRate: 0.02},
	{Name: "507.cactuBSSN", KLOC: 102, Files: 345, MeanInstrs: 5691, MaxInstrs: 123596,
		ExportRate: 0.45, ExternRate: 0.20, FnPtrRate: 0.04, HeapRate: 0.25, SmuggleRate: 0.03},
	{Name: "525.x264", KLOC: 24, Files: 35, MeanInstrs: 10963, MaxInstrs: 87991,
		ExportRate: 0.50, ExternRate: 0.20, FnPtrRate: 0.12, HeapRate: 0.30, SmuggleRate: 0.05},
	{Name: "526.blender", KLOC: 981, Files: 996, MeanInstrs: 8600, MaxInstrs: 443034,
		ExportRate: 0.55, ExternRate: 0.30, FnPtrRate: 0.10, HeapRate: 0.35, SmuggleRate: 0.06},
	{Name: "538.imagick", KLOC: 155, Files: 97, MeanInstrs: 11195, MaxInstrs: 154125,
		ExportRate: 0.50, ExternRate: 0.25, FnPtrRate: 0.06, HeapRate: 0.40, SmuggleRate: 0.05},
	{Name: "544.nab", KLOC: 12, Files: 20, MeanInstrs: 5741, MaxInstrs: 22276,
		ExportRate: 0.45, ExternRate: 0.20, FnPtrRate: 0.03, HeapRate: 0.30, SmuggleRate: 0.03},
	{Name: "557.xz", KLOC: 15, Files: 89, MeanInstrs: 1448, MaxInstrs: 18935,
		ExportRate: 0.45, ExternRate: 0.20, FnPtrRate: 0.06, HeapRate: 0.20, SmuggleRate: 0.04},
	{Name: "emacs-29.4", KLOC: 253, Files: 143, MeanInstrs: 14085, MaxInstrs: 260284,
		ExportRate: 0.65, ExternRate: 0.35, FnPtrRate: 0.12, HeapRate: 0.35, SmuggleRate: 0.10},
	{Name: "gdb-15.2", KLOC: 172, Files: 251, MeanInstrs: 5508, MaxInstrs: 101443,
		ExportRate: 0.60, ExternRate: 0.35, FnPtrRate: 0.10, HeapRate: 0.30, SmuggleRate: 0.08},
	{Name: "ghostscript-10.04", KLOC: 797, Files: 1116, MeanInstrs: 7042, MaxInstrs: 441161,
		ExportRate: 0.60, ExternRate: 0.30, FnPtrRate: 0.12, HeapRate: 0.30, SmuggleRate: 0.08,
		Pathological: 3},
	{Name: "sendmail-8.18.1", KLOC: 89, Files: 115, MeanInstrs: 3752, MaxInstrs: 39205,
		ExportRate: 0.55, ExternRate: 0.30, FnPtrRate: 0.06, HeapRate: 0.25, SmuggleRate: 0.06},
}

// TotalFiles is the paper's corpus size.
func TotalFiles() int {
	n := 0
	for _, s := range Suites {
		n += s.Files
	}
	return n
}
