package workload

import (
	"math"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

func TestDeterministic(t *testing.T) {
	opts := Options{Seed: 7, Scale: 0.02, SizeScale: 0.05}
	a := GenerateSuite(Suites[2], opts) // 505.mcf, small
	b := GenerateSuite(Suites[2], opts)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic file counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if ir.Print(a[i].Module) != ir.Print(b[i].Module) {
			t.Fatalf("file %d differs between runs", i)
		}
	}
}

func TestModulesVerifyAndAnalyze(t *testing.T) {
	opts := Options{Seed: 3, Scale: 0.02, SizeScale: 0.05}
	files := GenerateCorpus(opts)
	if len(files) < len(Suites) {
		t.Fatalf("corpus too small: %d files", len(files))
	}
	sawPath := false
	for _, f := range files {
		if err := ir.Verify(f.Module); err != nil {
			t.Fatalf("%s does not verify: %v", f.Name, err)
		}
		g := core.Generate(f.Module)
		if err := g.Problem.Validate(); err != nil {
			t.Fatalf("%s: invalid problem: %v", f.Name, err)
		}
		sol := core.MustSolve(g.Problem, core.DefaultConfig())
		if sol.Stats.Duration <= 0 {
			t.Fatalf("%s: no duration", f.Name)
		}
		if f.Pathological {
			sawPath = true
		}
	}
	if !sawPath {
		t.Fatal("corpus must include pathological files")
	}
}

func TestSizeDistributionRoughlyMatchesSpec(t *testing.T) {
	spec := Suites[8] // 557.xz: 89 files, mean 1448
	files := GenerateSuite(spec, Options{Seed: 1, Scale: 1, SizeScale: 1})
	if len(files) != spec.Files {
		t.Fatalf("file count = %d, want %d", len(files), spec.Files)
	}
	total := 0
	maxn := 0
	for _, f := range files {
		n := f.Module.NumInstrs()
		total += n
		if n > maxn {
			maxn = n
		}
	}
	mean := float64(total) / float64(len(files))
	if math.Abs(mean-float64(spec.MeanInstrs)) > 0.6*float64(spec.MeanInstrs) {
		t.Fatalf("mean instrs = %.0f, spec %d (off by more than 60%%)", mean, spec.MeanInstrs)
	}
	if maxn > 3*spec.MaxInstrs {
		t.Fatalf("max instrs = %d, spec max %d", maxn, spec.MaxInstrs)
	}
}

func TestConstraintDensityMatchesPaper(t *testing.T) {
	// Table III: |V| is roughly 15-30% of instructions and |C| roughly
	// 25-50%. Check our generator lands in a sane band.
	spec := Suites[7] // 544.nab
	files := GenerateSuite(spec, Options{Seed: 2, Scale: 1, SizeScale: 0.5})
	var instrs, vars, cons int
	for _, f := range files {
		g := core.Generate(f.Module)
		instrs += f.Module.NumInstrs()
		vars += g.Problem.NumVars()
		cons += g.Problem.NumConstraints()
	}
	vr := float64(vars) / float64(instrs)
	cr := float64(cons) / float64(instrs)
	if vr < 0.08 || vr > 0.8 {
		t.Fatalf("|V|/instrs = %.2f out of band", vr)
	}
	if cr < 0.1 || cr > 1.2 {
		t.Fatalf("|C|/instrs = %.2f out of band", cr)
	}
}

func TestPathologicalShowsPIPBenefit(t *testing.T) {
	files := GenerateSuite(Suites[11], Options{Seed: 1, Scale: 0.003, SizeScale: 0.02}) // ghostscript
	var path *File
	for i := range files {
		if files[i].Pathological {
			path = &files[i]
			break
		}
	}
	if path == nil {
		t.Fatal("no pathological file generated")
	}
	g := core.Generate(path.Module)
	noPip := core.MustSolve(g.Problem, core.MustParseConfig("IP+WL(FIFO)"))
	pip := core.MustSolve(g.Problem, core.MustParseConfig("IP+WL(FIFO)+PIP"))
	if pip.Canonical() != noPip.Canonical() {
		t.Fatal("PIP changed the solution on a pathological file")
	}
	if noPip.Stats.ExplicitPointees < 4*pip.Stats.ExplicitPointees {
		t.Fatalf("pathological file should show a large explicit-pointee gap: %d vs %d",
			noPip.Stats.ExplicitPointees, pip.Stats.ExplicitPointees)
	}
}

func TestFitLogNormal(t *testing.T) {
	mu, sigma := fitLogNormal(1000, 50000, 100)
	if sigma <= 0 || sigma > 2.5 {
		t.Fatalf("sigma = %v", sigma)
	}
	// Mean of the fitted log-normal must be close to the requested mean.
	mean := math.Exp(mu + sigma*sigma/2)
	if math.Abs(mean-1000) > 1 {
		t.Fatalf("fitted mean = %v", mean)
	}
	// Degenerate cases.
	if _, s := fitLogNormal(100, 100, 1); s <= 0 {
		t.Fatal("single-file fit")
	}
}

func TestTotalFiles(t *testing.T) {
	if TotalFiles() != 3659 {
		t.Fatalf("TotalFiles = %d, want the paper's 3659", TotalFiles())
	}
}

func TestIndirectCallsResolveToFunctions(t *testing.T) {
	// The generator publishes function addresses through globals and
	// calls through loaded pointers, so some indirect calls must resolve
	// to defined functions (exercising the CALL inference rule).
	opts := Options{Seed: 11, Scale: 0.05, SizeScale: 0.2, MaxInstrs: 3000}
	files := GenerateSuite(Suites[10], opts) // gdb: high FnPtrRate
	resolved := 0
	for _, f := range files {
		g := core.Generate(f.Module)
		sol := core.MustSolve(g.Problem, core.DefaultConfig())
		funcMems := map[core.VarID]bool{}
		for _, fn := range f.Module.Funcs {
			if !fn.IsDecl() {
				funcMems[g.MemOf[fn]] = true
			}
		}
		f.Module.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
			if in.Op != ir.OpCall {
				return
			}
			if _, direct := in.Callee().(*ir.Function); direct {
				return
			}
			id, ok := g.VarOf[in.Callee()]
			if !ok {
				return
			}
			for _, x := range sol.PointsTo(id) {
				if funcMems[x] {
					resolved++
					return
				}
			}
		})
	}
	if resolved == 0 {
		t.Fatal("no indirect call resolved to a defined function across the suite")
	}
}

func TestNoPathologicalOption(t *testing.T) {
	opts := Options{Seed: 1, Scale: 0.01, SizeScale: 0.05, NoPathological: true}
	for _, f := range GenerateCorpus(opts) {
		if f.Pathological {
			t.Fatalf("%s is pathological despite NoPathological", f.Name)
		}
	}
}
