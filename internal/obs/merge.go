package obs

// Cross-process trace assembly. A request that crosses the shard router
// produces one Chrome trace per process (the router's admission/forward
// spans, each backend's queue-wait/solve spans), all recorded under one
// trace ID. MergeChrome stitches those per-process exports into a single
// trace_event JSON that loads in Perfetto as one timeline: each part
// becomes its own process (pid) named by process_name metadata, relative
// timestamps are aligned using the start_unix_ns wall-clock metadata
// WriteChrome embeds, and span IDs are prefixed per part so they stay
// globally unique. CheckChrome is the structural validator the tests,
// the smoke binary, and CI run against both single-process and merged
// traces.

import (
	"encoding/json"
	"fmt"
	"sort"
)

// TracePart is one process's contribution to a merged trace: a label for
// the process track ("router", "backend-0") and its WriteChrome output.
type TracePart struct {
	Process string
	Data    []byte
}

// mergeDoc mirrors chromeTrace with a generic metadata map so parsed
// parts round-trip fields MergeChrome does not interpret.
type mergeDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// metaNum reads a numeric metadata field (JSON numbers decode as float64).
func metaNum(m map[string]any, key string) (int64, bool) {
	v, ok := m[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int64(f), true
}

// MergeChrome merges per-process Chrome traces recorded under one trace
// ID into a single trace_event JSON. Parts whose metadata carries a
// trace_id must all agree (that is the point of the merge); parts with
// differing IDs are a caller bug and an error. Timestamps are shifted by
// each part's wall-clock start relative to the earliest part, so the
// merged timeline shows true cross-process ordering to clock accuracy.
func MergeChrome(parts []TracePart) ([]byte, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("obs: merge of zero trace parts")
	}
	docs := make([]mergeDoc, len(parts))
	traceID := ""
	var minStart int64
	haveStart := false
	for i, p := range parts {
		if err := json.Unmarshal(p.Data, &docs[i]); err != nil {
			return nil, fmt.Errorf("obs: merge part %q: %w", p.Process, err)
		}
		if id, _ := docs[i].Metadata["trace_id"].(string); id != "" {
			if traceID == "" {
				traceID = id
			} else if id != traceID {
				return nil, fmt.Errorf("obs: merge: part %q has trace ID %q, want %q",
					p.Process, id, traceID)
			}
		}
		if s, ok := metaNum(docs[i].Metadata, "start_unix_ns"); ok {
			if !haveStart || s < minStart {
				minStart = s
				haveStart = true
			}
		}
	}

	out := mergeDoc{
		DisplayTimeUnit: "ns",
		Metadata: map[string]any{
			"trace_id": traceID,
			"label":    "merged",
		},
	}
	var dropped int64
	procs := make([]string, 0, len(parts))
	for i, p := range parts {
		pid := i + 1
		procs = append(procs, p.Process)
		if d, ok := metaNum(docs[i].Metadata, "dropped_records"); ok {
			dropped += d
		}
		// Shift this part's relative microsecond timestamps onto the
		// merged timeline. Parts without start metadata stay unshifted.
		var shift float64
		if s, ok := metaNum(docs[i].Metadata, "start_unix_ns"); ok && haveStart {
			shift = float64(s-minStart) / 1e3
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pid,
			Args:  map[string]any{"name": p.Process},
		})
		for _, ev := range docs[i].TraceEvents {
			ev.PID = pid
			if ev.Phase != "M" {
				ev.TS += shift
			}
			if sid, ok := ev.Args["sid"].(string); ok {
				ev.Args["sid"] = p.Process + "/" + sid
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	out.Metadata["processes"] = procs
	out.Metadata["dropped_records"] = dropped
	// Order events for readability: metadata first, then by timestamp.
	// Per-(pid,tid) monotonicity is preserved — each part was sorted and
	// the stable sort never reorders equal-ts events within a part.
	sort.SliceStable(out.TraceEvents, func(a, b int) bool {
		ea, eb := &out.TraceEvents[a], &out.TraceEvents[b]
		if (ea.Phase == "M") != (eb.Phase == "M") {
			return ea.Phase == "M"
		}
		if ea.Phase == "M" {
			return false
		}
		return ea.TS < eb.TS
	})
	return json.Marshal(out)
}

// CheckChrome validates the structure of a Chrome trace_event JSON
// (single-process or merged): known phase types only, spans carry
// non-negative durations, timestamps are non-negative and monotonically
// non-decreasing per (pid, tid) track, every track carrying events is
// named by thread_name metadata, and span IDs (the sid argument
// WriteChrome attaches) are globally unique. It is the trace analogue of
// CheckExposition: cheap, dependency-free, and strict enough that a
// passing trace loads in Perfetto.
func CheckChrome(data []byte) error {
	var doc mergeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace: no traceEvents")
	}
	type track struct{ pid, tid int }
	lastTS := map[track]float64{}
	named := map[track]bool{}
	used := map[track]string{} // first event name per unnamed track, for the error
	sids := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		tk := track{ev.PID, ev.TID}
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				named[tk] = true
			}
			continue
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("obs: trace event %d (%q): complete span without non-negative dur", i, ev.Name)
			}
		case "i", "C":
			// instant / counter: nothing extra to check
		default:
			return fmt.Errorf("obs: trace event %d (%q): unknown phase %q", i, ev.Name, ev.Phase)
		}
		if ev.TS < 0 {
			return fmt.Errorf("obs: trace event %d (%q): negative ts %v", i, ev.Name, ev.TS)
		}
		if last, ok := lastTS[tk]; ok && ev.TS < last {
			return fmt.Errorf("obs: trace event %d (%q): ts %v goes backwards on pid %d tid %d (last %v)",
				i, ev.Name, ev.TS, ev.PID, ev.TID, last)
		}
		lastTS[tk] = ev.TS
		if _, ok := used[tk]; !ok {
			used[tk] = ev.Name
		}
		if sid, ok := ev.Args["sid"].(string); ok {
			if sids[sid] {
				return fmt.Errorf("obs: trace event %d (%q): duplicate span ID %q", i, ev.Name, sid)
			}
			sids[sid] = true
		}
	}
	for tk, name := range used {
		if !named[tk] {
			return fmt.Errorf("obs: trace: pid %d tid %d (first event %q) has no thread_name metadata", tk.pid, tk.tid, name)
		}
	}
	return nil
}
