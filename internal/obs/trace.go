// Package obs is the observability layer shared by the solver core, the
// batch engine, the analysis service, and the CLI binaries: a low-overhead
// per-solve structured trace recorder plus the Prometheus primitives the
// service exports on /metrics.
//
// The recorder is built for the solver's hot loops. Recording claims a slot
// in a preallocated ring of records with one atomic add — no locks, no
// allocation — and every recording method on a nil *Trace (or the zero
// Track) returns immediately, so instrumented code pays a single pointer
// test when tracing is off. When the ring fills, further records are
// dropped and counted rather than overwriting earlier ones: a span that is
// still open owns its slot until End, so overwrite semantics would tear
// open spans, and for a solve trace the head of the run (offline phases,
// first waves) is the part that explains the rest.
//
// Traces export to Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing, see chrome.go) and to a plain-text phase tree
// (tree.go).
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the record capacity New uses when the caller passes
// a non-positive one. At 64 bytes + args per record this bounds a trace
// to a few MiB, enough for the full phase tree and sampled profiles of a
// corpus-sized solve.
const DefaultCapacity = 1 << 16

// KV is one argument attached to a span or event. Num carries numeric
// arguments; a non-empty Str takes precedence and carries string
// arguments (request IDs, configuration names).
type KV struct {
	Key string
	Num int64
	Str string
}

// N builds a numeric argument.
func N(key string, v int64) KV { return KV{Key: key, Num: v} }

// S builds a string argument.
func S(key, v string) KV { return KV{Key: key, Str: v} }

// record states: a slot is claimed (filling), then published as a
// complete event or an open span; End republishes an open span as
// complete. Exporters read only published slots, and the release/acquire
// pair on state makes the plain field writes visible — recording never
// races with export even when a trace is exported while spans are open.
const (
	stateEmpty uint32 = iota
	stateFilling
	stateOpenSpan
	stateComplete
)

type recordKind uint8

const (
	kindSpan recordKind = iota + 1
	kindInstant
	kindCounter
)

// maxArgs bounds per-record arguments so records stay allocation-free.
const maxArgs = 4

type record struct {
	state atomic.Uint32
	dur   atomic.Int64 // span duration in ns; written by End
	// nargs is atomic because End extends args while an exporter may be
	// snapshotting an open span: the release store on nargs (after the
	// new elements are written) paired with the acquire load in snapshot
	// orders the plain writes to args.
	nargs atomic.Int32
	kind  recordKind
	track int32
	start int64 // ns since trace start
	name  string
	args  [maxArgs]KV
}

// Trace is a bounded, lock-free span/event recorder for one logical
// operation (a solve, a batch run, a server process). Create with New;
// a nil *Trace is a valid, disabled recorder.
type Trace struct {
	id    string
	label string
	start time.Time

	buf     []record
	cursor  atomic.Uint64
	dropped atomic.Uint64

	// Track registration is rare (a handful per trace), so a mutex is
	// fine here; recording itself never takes it.
	trackMu sync.Mutex
	tracks  []string // index = track id
}

// New returns a Trace with a fresh random ID. capacity <= 0 means
// DefaultCapacity.
func New(label string, capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Trace{
		id:    NewID(),
		label: label,
		start: time.Now(),
		buf:   make([]record, capacity),
	}
}

// NewID returns a fresh random trace/request ID (16 hex digits).
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to the
		// clock so IDs stay usable (uniqueness, not secrecy, is the goal).
		return hex.EncodeToString([]byte(time.Now().Format("150405.000")))[:16]
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace's identifier (empty on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SetID overrides the trace ID (a server adopts the request's
// X-Request-Id). Call before recording threads share the trace.
func (t *Trace) SetID(id string) {
	if t != nil && id != "" {
		t.id = id
	}
}

// Label returns the trace's label.
func (t *Trace) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// Enabled reports whether recording is live.
func (t *Trace) Enabled() bool { return t != nil }

// Len returns the number of claimed records.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	n := t.cursor.Load()
	if n > uint64(len(t.buf)) {
		return len(t.buf)
	}
	return int(n)
}

// Dropped returns the number of records dropped because the ring was full.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// now returns nanoseconds since the trace start.
func (t *Trace) now() int64 { return int64(time.Since(t.start)) }

// claim reserves the next record slot, or nil when the ring is full.
func (t *Trace) claim() *record {
	i := t.cursor.Add(1) - 1
	if i >= uint64(len(t.buf)) {
		t.dropped.Add(1)
		return nil
	}
	r := &t.buf[i]
	r.state.Store(stateFilling)
	return r
}

// Track is one logical lane of a trace (a solver phase stack, a worker
// goroutine, the HTTP front end). Lanes render as separate threads in
// Perfetto, so spans on one lane nest by time containment. The zero Track
// is disabled.
type Track struct {
	tr  *Trace
	tid int32
}

// NewTrack returns the lane with the given name, creating it on first
// use; repeated calls with one name share a lane (the engine's workers
// ask by name on every job).
func (t *Trace) NewTrack(name string) Track {
	if t == nil {
		return Track{}
	}
	t.trackMu.Lock()
	defer t.trackMu.Unlock()
	for i, n := range t.tracks {
		if n == name {
			return Track{tr: t, tid: int32(i)}
		}
	}
	t.tracks = append(t.tracks, name)
	return Track{tr: t, tid: int32(len(t.tracks) - 1)}
}

// trackNames snapshots the registered lane names.
func (t *Trace) trackNames() []string {
	t.trackMu.Lock()
	defer t.trackMu.Unlock()
	return append([]string(nil), t.tracks...)
}

// Enabled reports whether the lane records anywhere.
func (tk Track) Enabled() bool { return tk.tr != nil }

// Trace returns the lane's trace (nil for the zero Track).
func (tk Track) Trace() *Trace { return tk.tr }

// Span is an open span handle; close it with End. The zero Span is a
// no-op (returned whenever recording is off or the ring is full).
type Span struct {
	tr  *Trace
	rec *record
}

// Begin opens a span on the lane. args recorded at Begin survive even if
// End never runs (the exporter closes open spans at export time).
func (tk Track) Begin(name string, args ...KV) Span {
	if tk.tr == nil {
		return Span{}
	}
	r := tk.tr.claim()
	if r == nil {
		return Span{}
	}
	r.kind = kindSpan
	r.track = tk.tid
	r.name = name
	r.start = tk.tr.now()
	r.nargs.Store(int32(copyArgs(&r.args, args)))
	r.dur.Store(-1)
	r.state.Store(stateOpenSpan)
	return Span{tr: tk.tr, rec: r}
}

// End closes the span, optionally attaching result arguments (they fill
// the slots left after Begin's).
func (sp Span) End(args ...KV) {
	if sp.rec == nil {
		return
	}
	r := sp.rec
	n := int(r.nargs.Load())
	for _, a := range args {
		if n >= maxArgs {
			break
		}
		r.args[n] = a
		n++
	}
	r.nargs.Store(int32(n))
	r.dur.Store(sp.tr.now() - r.start)
	r.state.Store(stateComplete)
}

// Event records an instant event on the lane.
func (tk Track) Event(name string, args ...KV) {
	if tk.tr == nil {
		return
	}
	r := tk.tr.claim()
	if r == nil {
		return
	}
	r.kind = kindInstant
	r.track = tk.tid
	r.name = name
	r.start = tk.tr.now()
	r.nargs.Store(int32(copyArgs(&r.args, args)))
	r.state.Store(stateComplete)
}

// Count records one sample of a named counter series (rendered as a
// counter track in Perfetto — the convergence profile uses these).
func (tk Track) Count(name string, v int64) {
	if tk.tr == nil {
		return
	}
	r := tk.tr.claim()
	if r == nil {
		return
	}
	r.kind = kindCounter
	r.track = tk.tid
	r.name = name
	r.start = tk.tr.now()
	r.args[0] = KV{Key: name, Num: v}
	r.nargs.Store(1)
	r.state.Store(stateComplete)
}

func copyArgs(dst *[maxArgs]KV, src []KV) int {
	n := len(src)
	if n > maxArgs {
		n = maxArgs
	}
	copy(dst[:n], src[:n])
	return n
}

// exported is one published record in plain (exporter-friendly) form.
type exported struct {
	kind  recordKind
	track int32
	start int64 // ns since trace start
	dur   int64 // ns; spans only
	open  bool  // span had not ended at snapshot time
	name  string
	args  []KV
}

// Start returns the trace's wall-clock creation time (zero on a nil
// trace). Cross-process merging (MergeChrome) aligns per-process
// timelines by the difference of their start times.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Record is one published trace record in exported form — the shape the
// flight recorder persists in dumps and tests inspect. Kind is "span",
// "instant", or "counter".
type Record struct {
	Kind    string `json:"kind"`
	Track   string `json:"track"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns,omitempty"`
	Open    bool   `json:"open,omitempty"`
	Args    []KV   `json:"args,omitempty"`
}

func (k recordKind) String() string {
	switch k {
	case kindSpan:
		return "span"
	case kindInstant:
		return "instant"
	case kindCounter:
		return "counter"
	}
	return "unknown"
}

// Export returns a consistent copy of every published record with track
// names resolved, ordered by start time. Like WriteChrome it may run
// while recording continues; open spans are clipped to now.
func (t *Trace) Export() []Record {
	if t == nil {
		return nil
	}
	recs := t.snapshot()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].start < recs[j].start })
	names := t.trackNames()
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		rec := Record{
			Kind:    r.kind.String(),
			Name:    r.name,
			StartNS: r.start,
			Args:    r.args,
		}
		if int(r.track) < len(names) {
			rec.Track = names[r.track]
		}
		if r.kind == kindSpan {
			rec.DurNS = r.dur
			rec.Open = r.open
		}
		out = append(out, rec)
	}
	return out
}

// snapshot returns a consistent copy of every published record, closing
// still-open spans at the current time. Safe to call while recording
// continues: slots still being filled are skipped.
func (t *Trace) snapshot() []exported {
	if t == nil {
		return nil
	}
	n := t.Len()
	now := t.now()
	out := make([]exported, 0, n)
	for i := 0; i < n; i++ {
		r := &t.buf[i]
		st := r.state.Load()
		if st != stateComplete && st != stateOpenSpan {
			continue
		}
		na := r.nargs.Load()
		c := exported{
			kind:  r.kind,
			track: r.track,
			start: r.start,
			name:  r.name,
			args:  append([]KV(nil), r.args[:na]...),
		}
		if d := r.dur.Load(); d >= 0 {
			c.dur = d
		} else {
			c.dur = now - r.start // span still open: clip to now
			c.open = true
		}
		out = append(out, c)
	}
	return out
}
