package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Tree renders the trace as a plain-text phase tree: one section per
// lane, spans nested by time containment with durations, and per-span
// tallies of the instant events and counter samples recorded inside
// them. This is the terminal-friendly view of the same data WriteChrome
// exports for Perfetto.
func (t *Trace) Tree() string {
	if t == nil {
		return "(tracing disabled)\n"
	}
	recs := t.snapshot()
	names := t.trackNames()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%s): %d records", t.ID(), t.Label(), len(recs))
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, ", %d dropped (ring full)", d)
	}
	b.WriteByte('\n')

	byTrack := map[int32][]exported{}
	for _, r := range recs {
		byTrack[r.track] = append(byTrack[r.track], r)
	}
	tids := make([]int32, 0, len(byTrack))
	for tid := range byTrack {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	for _, tid := range tids {
		name := fmt.Sprintf("track %d", tid)
		if int(tid) < len(names) {
			name = names[tid]
		}
		fmt.Fprintf(&b, "%s:\n", name)
		writeTrackTree(&b, byTrack[tid])
	}
	return b.String()
}

// writeTrackTree prints one lane's spans as a containment tree, with
// event/counter tallies attached to the innermost enclosing span.
func writeTrackTree(b *strings.Builder, recs []exported) {
	var spans, points []exported
	for _, r := range recs {
		if r.kind == kindSpan {
			spans = append(spans, r)
		} else {
			points = append(points, r)
		}
	}
	// Sort spans outermost-first so a simple stack assigns children.
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].dur > spans[j].dur
	})

	type node struct {
		exported
		children []*node
		tally    map[string]tallyEntry
	}
	root := &node{}
	stack := []*node{root}
	contains := func(outer *node, r exported) bool {
		if outer == root {
			return true
		}
		return r.start >= outer.start && r.start+r.dur <= outer.start+outer.dur
	}
	var nodes []*node
	for _, sp := range spans {
		for len(stack) > 1 && !contains(stack[len(stack)-1], sp) {
			stack = stack[:len(stack)-1]
		}
		n := &node{exported: sp, tally: map[string]tallyEntry{}}
		parent := stack[len(stack)-1]
		parent.children = append(parent.children, n)
		stack = append(stack, n)
		nodes = append(nodes, n)
	}
	// Attach each point record to the innermost span containing it.
	orphan := map[string]tallyEntry{}
	for _, p := range points {
		var best *node
		for _, n := range nodes {
			if p.start >= n.start && p.start <= n.start+n.dur {
				if best == nil || n.dur < best.dur {
					best = n
				}
			}
		}
		if best != nil {
			addTally(best.tally, p)
		} else {
			addTally(orphan, p)
		}
	}

	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n != root {
			indent := strings.Repeat("  ", depth)
			fmt.Fprintf(b, "%s%-24s %10v", indent, n.name, time.Duration(n.dur).Round(time.Microsecond))
			if n.open {
				b.WriteString("  (open)")
			}
			for _, a := range n.args {
				if a.Str != "" {
					fmt.Fprintf(b, "  %s=%s", a.Key, a.Str)
				} else {
					fmt.Fprintf(b, "  %s=%d", a.Key, a.Num)
				}
			}
			b.WriteByte('\n')
			writeTally(b, n.tally, depth+1)
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	writeTally(b, orphan, 1)
}

type tallyEntry struct {
	count int
	last  int64 // last counter value seen (for counter series)
	isCtr bool
}

func addTally(m map[string]tallyEntry, p exported) {
	e := m[p.name]
	e.count++
	if p.kind == kindCounter && len(p.args) > 0 {
		e.isCtr = true
		e.last = p.args[0].Num
	}
	m[p.name] = e
}

func writeTally(b *strings.Builder, m map[string]tallyEntry, depth int) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	indent := strings.Repeat("  ", depth)
	for _, k := range keys {
		e := m[k]
		if e.isCtr {
			fmt.Fprintf(b, "%s· %s: %d samples, last %d\n", indent, k, e.count, e.last)
		} else {
			fmt.Fprintf(b, "%s· %s ×%d\n", indent, k, e.count)
		}
	}
}
