package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// This file exports a Trace in Chrome trace_event JSON ("JSON Object
// Format" with a traceEvents array), the interchange format loaded by
// Perfetto (ui.perfetto.dev) and chrome://tracing. Spans become complete
// events (ph "X"), instants become instant events (ph "i"), counter
// samples become counter events (ph "C"), and lanes are named through
// thread_name metadata events. Timestamps are microseconds since the
// trace start, the unit the format requires.

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

func argsMap(kvs []KV) map[string]any {
	if len(kvs) == 0 {
		return nil
	}
	m := make(map[string]any, len(kvs))
	for _, a := range kvs {
		if a.Str != "" {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Num
		}
	}
	return m
}

// WriteChrome writes the trace as Chrome trace_event JSON. It may be
// called while recording continues (open spans are clipped to the
// current time and marked "open": 1), though a trace is normally
// exported after its operation finishes.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: cannot export a nil trace")
	}
	recs := t.snapshot()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].start < recs[j].start })
	names := t.trackNames()

	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(recs)+len(names)),
		DisplayTimeUnit: "ns",
		Metadata: map[string]any{
			"trace_id":        t.ID(),
			"label":           t.Label(),
			"dropped_records": t.Dropped(),
			// Wall-clock start lets MergeChrome align this process's
			// relative timestamps against other processes' on one timeline.
			"start_unix_ns": t.start.UnixNano(),
		},
	}
	for i, name := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   i,
			Args:  map[string]any{"name": name},
		})
	}
	for seq, r := range recs {
		ev := chromeEvent{
			Name: r.name,
			TS:   float64(r.start) / 1e3,
			PID:  1,
			TID:  int(r.track),
			Args: argsMap(r.args),
		}
		// Every non-metadata event carries a span ID unique within this
		// export; MergeChrome prefixes it per process so the merged trace
		// has globally unique IDs (CheckChrome verifies).
		if ev.Args == nil {
			ev.Args = map[string]any{}
		}
		ev.Args["sid"] = "s" + strconv.Itoa(seq)
		switch r.kind {
		case kindSpan:
			ev.Phase = "X"
			d := float64(r.dur) / 1e3
			ev.Dur = &d
			if r.open {
				ev.Args["open"] = 1
			}
		case kindInstant:
			ev.Phase = "i"
			ev.Scope = "t"
		case kindCounter:
			ev.Phase = "C"
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeFile writes the Chrome trace to a file path; the conventional
// extension is .json (drag the file into ui.perfetto.dev to view). The
// write is atomic (temp file + rename) so periodic checkpointing can
// overwrite a live trace file without a crash mid-write ever leaving a
// torn, unloadable JSON behind.
func (t *Trace) WriteChromeFile(path string) error {
	if t == nil {
		return fmt.Errorf("obs: cannot export a nil trace")
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
