package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var buf strings.Builder
	p := NewPromWriter(&buf)
	p.Histogram("x_seconds", "test", h)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	out := buf.String()
	for _, line := range []string{
		`x_seconds_bucket{le="0.1"} 1`,
		`x_seconds_bucket{le="1"} 3`,
		`x_seconds_bucket{le="10"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		`x_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets()...)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 7.999 || got > 8.001 {
		t.Fatalf("sum = %g, want ~8", got)
	}
}

func TestCounterVecSortedAndEscaped(t *testing.T) {
	var buf strings.Builder
	p := NewPromWriter(&buf)
	p.CounterVec("pip_rule_firings_total", "per-rule firings", "rule",
		map[string]float64{"trans": 2, "load": 1})
	p.Gauge("pip_running", `gauge with "quotes"`, 3)
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	out := buf.String()
	loadIdx := strings.Index(out, `rule="load"`)
	transIdx := strings.Index(out, `rule="trans"`)
	if loadIdx < 0 || transIdx < 0 || loadIdx > transIdx {
		t.Fatalf("label samples missing or unsorted:\n%s", out)
	}
	if err := CheckExposition(out); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
}

func TestCheckExpositionRejectsGarbage(t *testing.T) {
	if err := CheckExposition("this is not a metric\n"); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := CheckExposition("pip_x 1\n"); err == nil {
		t.Fatal("sample without TYPE accepted")
	}
	ok := "# HELP pip_x help\n# TYPE pip_x counter\npip_x 1\n"
	if err := CheckExposition(ok); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}
