package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// This file provides the minimal Prometheus instrumentation the service
// needs without pulling in the client library: an atomic histogram and a
// text-exposition-format writer (the 0.0.4 format every Prometheus
// scraper and `promtool check metrics` accepts).

// Histogram is a fixed-bucket, lock-free histogram matching Prometheus
// semantics: counts[i] holds observations <= bounds[i] (cumulative counts
// are computed at exposition time), with the implicit +Inf bucket at the
// end. Observe is safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	return h
}

// LatencyBuckets are the default buckets for solve/queue latencies in
// seconds: 50µs to ~30s, roughly ×3 per step, spanning a cached lookup on
// a small module through a budget-bounded corpus solve.
func LatencyBuckets() []float64 {
	return []float64{50e-6, 150e-6, 500e-6, 1.5e-3, 5e-3, 15e-3, 50e-3, 150e-3, 0.5, 1.5, 5, 15, 30}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// PromWriter writes Prometheus text exposition format (version 0.0.4).
// Use one writer per scrape; methods emit complete metric families.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer over w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// formatLabels renders a label set ({} omitted when empty). Labels are
// key/value pairs; values are escaped per the exposition format.
func formatLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(kv[1])
		fmt.Fprintf(&b, `%s="%s"`, kv[0], v)
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// Counter emits a single-sample counter family.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.printf("%s %s\n", name, formatValue(v))
}

// CounterVec emits a counter family with one sample per label value.
// Samples are emitted in sorted label-value order for stable output.
func (p *PromWriter) CounterVec(name, help, label string, samples map[string]float64) {
	p.header(name, help, "counter")
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.printf("%s%s %s\n", name, formatLabels([][2]string{{label, k}}), formatValue(samples[k]))
	}
}

// CounterVec2 emits a counter family keyed by two labels. Samples are
// emitted in sorted label-value order for stable output.
func (p *PromWriter) CounterVec2(name, help, label1, label2 string, samples map[[2]string]float64) {
	p.header(name, help, "counter")
	keys := make([][2]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		p.printf("%s%s %s\n", name,
			formatLabels([][2]string{{label1, k[0]}, {label2, k[1]}}),
			formatValue(samples[k]))
	}
}

// Gauge emits a single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", name, formatValue(v))
}

// GaugeVec emits a gauge family with one sample per label value.
// Samples are emitted in sorted label-value order for stable output.
func (p *PromWriter) GaugeVec(name, help, label string, samples map[string]float64) {
	p.header(name, help, "gauge")
	keys := make([]string, 0, len(samples))
	for k := range samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.printf("%s%s %s\n", name, formatLabels([][2]string{{label, k}}), formatValue(samples[k]))
	}
}

// Histogram emits a histogram family with cumulative buckets, sum, and
// count, the shape Prometheus expects.
func (p *PromWriter) Histogram(name, help string, h *Histogram) {
	p.header(name, help, "histogram")
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		p.printf("%s_bucket{le=\"%s\"} %d\n", name, formatValue(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	p.printf("%s_sum %s\n", name, formatValue(h.Sum()))
	p.printf("%s_count %d\n", name, h.Count())
}
