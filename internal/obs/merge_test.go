package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chromePart records a few spans on a fresh trace under the given ID and
// returns its WriteChrome output — one process's contribution to a merge.
func chromePart(t *testing.T, id, label string, spans ...string) []byte {
	t.Helper()
	tr := New(label, 64)
	tr.SetID(id)
	lane := tr.NewTrack("req-r1")
	for _, name := range spans {
		sp := lane.Begin(name, S("request_id", "r1"))
		sp.End(N("status", 200))
	}
	lane.Event("mark")
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeChromeTwoProcesses is the tentpole unit contract: two
// recorders sharing one trace ID merge into a single validated
// trace_event JSON with per-process tracks, monotonic timestamps per
// track, and globally unique span IDs.
func TestMergeChromeTwoProcesses(t *testing.T) {
	const id = "trace-merge-1"
	router := chromePart(t, id, "pip-router", "/v1/solve", "forward")
	backend := chromePart(t, id, "pipserve", "/v1/solve", "queue-wait", "solve")

	merged, err := MergeChrome([]TracePart{
		{Process: "router", Data: router},
		{Process: "backend-0", Data: backend},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckChrome(merged); err != nil {
		t.Fatalf("merged trace fails validation: %v\n%s", err, merged)
	}

	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatal(err)
	}
	if got, _ := doc.Metadata["trace_id"].(string); got != id {
		t.Fatalf("merged trace_id = %q, want %q", got, id)
	}

	// Both processes appear as named pids, and every span's sid carries
	// its process prefix (the global-uniqueness mechanism).
	procs := map[string]int{}
	sidPrefixes := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" && ev.Name == "process_name" {
			name, _ := ev.Args["name"].(string)
			procs[name] = ev.PID
		}
		if sid, ok := ev.Args["sid"].(string); ok {
			pre, _, found := strings.Cut(sid, "/")
			if !found {
				t.Fatalf("merged sid %q lacks a process prefix", sid)
			}
			sidPrefixes[pre] = true
		}
	}
	for _, want := range []string{"router", "backend-0"} {
		if _, ok := procs[want]; !ok {
			t.Fatalf("merged trace missing process %q (have %v)", want, procs)
		}
		if !sidPrefixes[want] {
			t.Fatalf("no span IDs from process %q", want)
		}
	}
	if procs["router"] == procs["backend-0"] {
		t.Fatal("both processes share one pid; tracks would collide in Perfetto")
	}
}

// TestMergeChromeAlignsClocks: the later-started part's events are
// shifted onto the merged timeline by the wall-clock delta, so
// cross-process ordering survives the merge.
func TestMergeChromeAlignsClocks(t *testing.T) {
	early := New("early", 16)
	early.SetID("t")
	early.NewTrack("a").Event("first")
	time.Sleep(10 * time.Millisecond)
	late := New("late", 16)
	late.SetID("t")
	late.NewTrack("b").Event("second")

	var eb, lb bytes.Buffer
	if err := early.WriteChrome(&eb); err != nil {
		t.Fatal(err)
	}
	if err := late.WriteChrome(&lb); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeChrome([]TracePart{
		{Process: "p-early", Data: eb.Bytes()},
		{Process: "p-late", Data: lb.Bytes()},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatal(err)
	}
	var firstTS, secondTS float64 = -1, -1
	for _, ev := range doc.TraceEvents {
		switch ev.Name {
		case "first":
			firstTS = ev.TS
		case "second":
			secondTS = ev.TS
		}
	}
	if firstTS < 0 || secondTS < 0 {
		t.Fatalf("events missing from merge: first=%v second=%v", firstTS, secondTS)
	}
	// The late process started >= 10ms after the early one; its event must
	// land later on the merged timeline (clock alignment, not raw ts).
	if secondTS <= firstTS {
		t.Fatalf("clock alignment lost: second (%v µs) not after first (%v µs)", secondTS, firstTS)
	}
}

func TestMergeChromeRejectsMismatchedTraceIDs(t *testing.T) {
	a := chromePart(t, "id-a", "a", "x")
	b := chromePart(t, "id-b", "b", "y")
	if _, err := MergeChrome([]TracePart{{Process: "a", Data: a}, {Process: "b", Data: b}}); err == nil {
		t.Fatal("merge of different trace IDs did not error")
	}
	if _, err := MergeChrome(nil); err == nil {
		t.Fatal("merge of zero parts did not error")
	}
	if _, err := MergeChrome([]TracePart{{Process: "a", Data: []byte("not json")}}); err == nil {
		t.Fatal("merge of invalid JSON did not error")
	}
}

// TestCheckChromeCatchesStructuralBreaks: the validator must reject the
// failure shapes the merge machinery exists to prevent.
func TestCheckChromeCatchesStructuralBreaks(t *testing.T) {
	dur := 5.0
	mkDoc := func(events []chromeEvent) []byte {
		data, err := json.Marshal(mergeDoc{TraceEvents: events})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	threadMeta := chromeEvent{Name: "thread_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "lane"}}

	cases := []struct {
		name   string
		events []chromeEvent
	}{
		{"empty", nil},
		{"unknown phase", []chromeEvent{threadMeta,
			{Name: "e", Phase: "B", PID: 1, TID: 1, TS: 1}}},
		{"span without dur", []chromeEvent{threadMeta,
			{Name: "s", Phase: "X", PID: 1, TID: 1, TS: 1}}},
		{"backwards ts", []chromeEvent{threadMeta,
			{Name: "a", Phase: "i", PID: 1, TID: 1, TS: 10},
			{Name: "b", Phase: "i", PID: 1, TID: 1, TS: 5}}},
		{"unnamed track", []chromeEvent{
			{Name: "e", Phase: "i", PID: 1, TID: 1, TS: 1}}},
		{"duplicate sid", []chromeEvent{threadMeta,
			{Name: "a", Phase: "X", PID: 1, TID: 1, TS: 1, Dur: &dur, Args: map[string]any{"sid": "s0"}},
			{Name: "b", Phase: "X", PID: 1, TID: 1, TS: 2, Dur: &dur, Args: map[string]any{"sid": "s0"}}}},
	}
	for _, tc := range cases {
		if err := CheckChrome(mkDoc(tc.events)); err == nil {
			t.Errorf("%s: CheckChrome accepted a broken trace", tc.name)
		}
	}

	// And the happy path passes, so the cases above fail for their own
	// reasons rather than a validator that rejects everything.
	good := mkDoc([]chromeEvent{threadMeta,
		{Name: "a", Phase: "X", PID: 1, TID: 1, TS: 1, Dur: &dur, Args: map[string]any{"sid": "s0"}},
		{Name: "b", Phase: "i", PID: 1, TID: 1, TS: 2}})
	if err := CheckChrome(good); err != nil {
		t.Fatalf("CheckChrome rejected a well-formed trace: %v", err)
	}
}
