package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRingBound(t *testing.T) {
	f := NewFlightRecorder(FlightRecorderOptions{Records: 4, Cooldown: time.Nanosecond})
	for i := 0; i < 10; i++ {
		f.Record(ReqRecord{RequestID: fmt.Sprintf("r%d", i)})
	}
	if got := f.Recorded(); got != 10 {
		t.Fatalf("Recorded() = %d, want 10", got)
	}
	d := f.Trigger("test.reason", "")
	if d == nil {
		t.Fatal("trigger suppressed unexpectedly")
	}
	if len(d.Records) != 4 {
		t.Fatalf("dump carries %d records, want the ring bound 4", len(d.Records))
	}
	// Oldest-first, and only the most recent four survive the overwrites.
	for i, r := range d.Records {
		if want := fmt.Sprintf("r%d", 6+i); r.RequestID != want {
			t.Fatalf("record %d = %q, want %q (oldest-first recent window)", i, r.RequestID, want)
		}
	}
}

func TestFlightRecorderCooldownPerReasonDetail(t *testing.T) {
	now := time.Unix(1000, 0)
	f := NewFlightRecorder(FlightRecorderOptions{
		Cooldown: time.Second,
		Now:      func() time.Time { return now },
	})
	if f.Trigger("breaker.open", "backend-a") == nil {
		t.Fatal("first trigger suppressed")
	}
	if f.Trigger("breaker.open", "backend-a") != nil {
		t.Fatal("repeat trigger inside cooldown not suppressed")
	}
	// A different detail is a different anomaly: its own dump, no cooldown
	// interference (per-backend breaker events must each dump).
	if f.Trigger("breaker.open", "backend-b") == nil {
		t.Fatal("distinct detail suppressed by another key's cooldown")
	}
	if got := f.Suppressed(); got != 1 {
		t.Fatalf("Suppressed() = %d, want 1", got)
	}
	now = now.Add(2 * time.Second)
	if f.Trigger("breaker.open", "backend-a") == nil {
		t.Fatal("trigger after cooldown still suppressed")
	}
	if got := f.DumpCount(); got != 3 {
		t.Fatalf("DumpCount() = %d, want 3", got)
	}
}

func TestFlightRecorderDumpRetention(t *testing.T) {
	f := NewFlightRecorder(FlightRecorderOptions{Dumps: 2, Cooldown: time.Nanosecond})
	for i := 0; i < 5; i++ {
		// Distinct details dodge the cooldown so every trigger dumps.
		f.Trigger("test.reason", fmt.Sprintf("d%d", i))
		time.Sleep(time.Millisecond)
	}
	dumps := f.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("retained %d dumps, want 2", len(dumps))
	}
	if dumps[0].Detail != "d3" || dumps[1].Detail != "d4" {
		t.Fatalf("retention kept the wrong dumps: %+v", dumps)
	}
	if got := f.DumpCount(); got != 5 {
		t.Fatalf("DumpCount() = %d, want 5 (lifetime, not retained)", got)
	}
}

func TestFlightRecorderDumpFiles(t *testing.T) {
	dir := t.TempDir()
	var onDumpReason string
	f := NewFlightRecorder(FlightRecorderOptions{
		Dir:      dir,
		Cooldown: time.Nanosecond,
		Metrics:  func() string { return "pip_test_metric 1\n" },
		OnDump:   func(d *Dump) { onDumpReason = d.Reason },
	})
	f.Record(ReqRecord{TraceID: "t1", RequestID: "r1", Path: "/v1/solve", Status: 200})
	d := f.Trigger("engine.watchdog", "")
	if d == nil {
		t.Fatal("trigger suppressed")
	}
	if onDumpReason != "engine.watchdog" {
		t.Fatalf("OnDump saw reason %q", onDumpReason)
	}
	if d.File == "" {
		t.Fatal("dump has no file despite Dir being set")
	}
	if !strings.Contains(filepath.Base(d.File), "engine.watchdog") {
		t.Fatalf("dump file name %q does not carry the reason", d.File)
	}
	data, err := os.ReadFile(d.File)
	if err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("dump file is not valid JSON: %v", err)
	}
	if back.Reason != "engine.watchdog" || len(back.Records) != 1 ||
		back.Records[0].TraceID != "t1" || !strings.Contains(back.Metrics, "pip_test_metric") {
		t.Fatalf("dump file round-trip mismatch: %+v", back)
	}
}

func TestFlightRecorderNilNoOp(t *testing.T) {
	var f *FlightRecorder
	f.Record(ReqRecord{})
	if f.Trigger("x", "") != nil {
		t.Fatal("nil recorder returned a dump")
	}
	if f.Dumps() != nil || f.DumpCount() != 0 || f.Suppressed() != 0 || f.Recorded() != 0 {
		t.Fatal("nil recorder accessors not zero")
	}
}
