package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tk := tr.NewTrack("x")
	if tk.Enabled() {
		t.Fatal("track of nil trace reports enabled")
	}
	sp := tk.Begin("phase")
	tk.Event("ev", N("a", 1))
	tk.Count("c", 42)
	sp.End(N("b", 2))
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.ID() != "" {
		t.Fatal("nil trace accumulated state")
	}
	if got := tr.Tree(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil tree = %q", got)
	}
	if err := tr.WriteChrome(&bytes.Buffer{}); err == nil {
		t.Fatal("exporting a nil trace should error")
	}
}

func TestSpanEventCounterRecording(t *testing.T) {
	tr := New("test", 16)
	if tr.ID() == "" || len(tr.ID()) != 16 {
		t.Fatalf("bad trace id %q", tr.ID())
	}
	tk := tr.NewTrack("solver")
	sp := tk.Begin("solve", S("config", "IP+WL(FIFO)+PIP"))
	inner := tk.Begin("collapse")
	tk.Event("scc_collapse", N("size", 3), N("rep", 7))
	tk.Count("worklist_depth", 12)
	inner.End()
	sp.End(N("firings", 100))

	recs := tr.snapshot()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	byName := map[string]exported{}
	for _, r := range recs {
		byName[r.name] = r
	}
	solve := byName["solve"]
	if solve.kind != kindSpan || solve.open {
		t.Fatalf("solve span malformed: %+v", solve)
	}
	if len(solve.args) != 2 || solve.args[0].Str != "IP+WL(FIFO)+PIP" || solve.args[1].Num != 100 {
		t.Fatalf("solve args = %+v", solve.args)
	}
	if ev := byName["scc_collapse"]; ev.kind != kindInstant || len(ev.args) != 2 {
		t.Fatalf("event malformed: %+v", ev)
	}
	if c := byName["worklist_depth"]; c.kind != kindCounter || c.args[0].Num != 12 {
		t.Fatalf("counter malformed: %+v", c)
	}
}

func TestRingFullDropsAndCounts(t *testing.T) {
	tr := New("tiny", 2)
	tk := tr.NewTrack("t")
	tk.Event("a")
	tk.Event("b")
	tk.Event("c") // dropped
	sp := tk.Begin("late")
	sp.End() // Begin dropped; End is a no-op
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestTrackDedupByName(t *testing.T) {
	tr := New("t", 8)
	a := tr.NewTrack("worker-1")
	b := tr.NewTrack("worker-2")
	c := tr.NewTrack("worker-1")
	if a.tid != c.tid {
		t.Fatalf("same name, different tracks: %d vs %d", a.tid, c.tid)
	}
	if a.tid == b.tid {
		t.Fatal("different names share a track")
	}
}

func TestConcurrentRecordingAndExport(t *testing.T) {
	tr := New("race", 1<<12)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := tr.NewTrack("worker")
			for i := 0; i < 200; i++ {
				sp := tk.Begin("job", N("i", int64(i)))
				tk.Event("step")
				tk.Count("n", int64(i))
				sp.End(N("done", 1))
			}
		}(w)
	}
	// Export concurrently with recording: snapshot must stay consistent.
	for i := 0; i < 4; i++ {
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		_ = tr.Tree()
	}
	wg.Wait()
	if got, want := tr.Len()+int(tr.Dropped()), 8*200*3; got != want {
		t.Fatalf("records+dropped = %d, want %d", got, want)
	}
}

func TestWriteChromeShape(t *testing.T) {
	tr := New("chrome", 64)
	tk := tr.NewTrack("solver")
	sp := tk.Begin("offline")
	time.Sleep(time.Millisecond)
	sp.End()
	tk.Event("wave", N("pass", 1))
	tk.Count("worklist_depth", 5)
	open := tk.Begin("still-open")
	_ = open

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   *float64       `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if parsed.Metadata["trace_id"] != tr.ID() {
		t.Fatalf("metadata trace_id = %v", parsed.Metadata["trace_id"])
	}
	phases := map[string]string{}
	for _, ev := range parsed.TraceEvents {
		phases[ev.Name] = ev.Phase
		if ev.Phase == "X" {
			if ev.Dur == nil {
				t.Fatalf("span %s has no dur", ev.Name)
			}
			if *ev.Dur < 0 {
				t.Fatalf("span %s has negative dur", ev.Name)
			}
		}
	}
	want := map[string]string{
		"thread_name":    "M",
		"offline":        "X",
		"wave":           "i",
		"worklist_depth": "C",
		"still-open":     "X",
	}
	for name, ph := range want {
		if phases[name] != ph {
			t.Fatalf("event %s: phase %q, want %q (all: %v)", name, phases[name], ph, phases)
		}
	}
}

func TestTreeRendersNestingAndTallies(t *testing.T) {
	tr := New("tree", 64)
	tk := tr.NewTrack("solver")
	solve := tk.Begin("solve")
	col := tk.Begin("collapse")
	tk.Event("scc_collapse", N("size", 2))
	tk.Event("scc_collapse", N("size", 5))
	col.End()
	tk.Count("worklist_depth", 9)
	solve.End()

	out := tr.Tree()
	if !strings.Contains(out, "solver:") {
		t.Fatalf("missing track header:\n%s", out)
	}
	// collapse must be indented deeper than solve.
	solveIdx := strings.Index(out, "solve")
	colIdx := strings.Index(out, "collapse")
	if solveIdx < 0 || colIdx < 0 || colIdx < solveIdx {
		t.Fatalf("nesting wrong:\n%s", out)
	}
	if !strings.Contains(out, "scc_collapse ×2") {
		t.Fatalf("missing event tally:\n%s", out)
	}
	if !strings.Contains(out, "worklist_depth: 1 samples, last 9") {
		t.Fatalf("missing counter tally:\n%s", out)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tk Track // zero = disabled
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tk.Begin("solve")
		sp.End()
	}
}

func BenchmarkEnabledEvent(b *testing.B) {
	tr := New("bench", 1<<20)
	tk := tr.NewTrack("t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Event("ev", N("i", int64(i)))
	}
}
