package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strings"
)

// expositionLine matches one sample line of the text format:
// name{labels} value [timestamp].
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)( [0-9]+)?$`)

// CheckExposition validates text in the Prometheus exposition format
// (0.0.4): every line is a comment, blank, or a well-formed sample, every
// sample's family has a preceding TYPE line, and histogram families have
// _sum, _count, and buckets. The serve tests and the pipserve smoke
// self-test run scraped /metrics bodies through this, which is what lets
// CI assert the endpoint actually speaks the format Prometheus scrapes.
func CheckExposition(text string) error {
	types := map[string]string{}
	samples := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q", lineNo, parts[3])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			return fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		samples[name] = true
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE header", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for name, typ := range types {
		if typ != "histogram" {
			continue
		}
		for _, suffix := range []string{"_sum", "_count", "_bucket"} {
			if !samples[name+suffix] {
				return fmt.Errorf("histogram %s missing %s%s", name, name, suffix)
			}
		}
	}
	return nil
}
