package obs

// The flight recorder is the forensic layer over tracing: an always-on
// bounded ring of recent completed request records (their spans, outcome,
// and identifiers) that costs one mutexed append per request, plus a
// trigger API wired to the anomaly sites the resilience layer already
// detects (watchdog-forced Ω, breaker transitions, store corruption,
// memory-guard tightening, Ω degradation). A trigger snapshots the ring
// and a metrics scrape into a Dump — kept in memory for GET
// /debug/flightrec and optionally written to a timestamped JSON file —
// so the requests leading up to an anomaly are explainable after the
// fact, exactly the forensic record a degraded answer needs. Triggers
// are rate-limited per (reason, detail) so an anomaly storm produces a
// bounded number of dumps, never a dump storm.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ReqRecord is one completed request as the flight recorder keeps it:
// identifiers, outcome, timing, and the request's exported trace spans.
type ReqRecord struct {
	TraceID    string   `json:"trace_id,omitempty"`
	RequestID  string   `json:"request_id,omitempty"`
	Path       string   `json:"path,omitempty"`
	Status     int      `json:"status,omitempty"`
	Degraded   bool     `json:"degraded,omitempty"`
	Start      int64    `json:"start_unix_ns,omitempty"`
	DurationNS int64    `json:"duration_ns,omitempty"`
	Dropped    uint64   `json:"dropped_spans,omitempty"`
	Spans      []Record `json:"spans,omitempty"`
}

// Dump is one anomaly snapshot: the trigger that fired, the ring of
// recent requests at that moment, and a metrics scrape.
type Dump struct {
	Seq     uint64      `json:"seq"`
	Reason  string      `json:"reason"`
	Detail  string      `json:"detail,omitempty"`
	Time    time.Time   `json:"time"`
	Records []ReqRecord `json:"records"`
	Metrics string      `json:"metrics,omitempty"`
	File    string      `json:"file,omitempty"`
}

// FlightRecorderOptions configures a FlightRecorder; the zero value is
// usable (in-memory only, default bounds).
type FlightRecorderOptions struct {
	// Records bounds the ring of recent completed requests; <= 0 means
	// DefaultFlightRecords. The ring overwrites oldest-first — "recent"
	// is the point of a flight recorder.
	Records int
	// Dumps bounds retained dumps (oldest evicted); <= 0 means
	// DefaultFlightDumps.
	Dumps int
	// Dir, when non-empty, writes each dump to a timestamped JSON file
	// under it (created if missing). Empty keeps dumps in memory only.
	Dir string
	// Cooldown is the minimum interval between dumps for one
	// (reason, detail) pair; <= 0 means DefaultFlightCooldown.
	Cooldown time.Duration
	// Metrics, when non-nil, scrapes the owner's metrics exposition into
	// each dump. Called outside the recorder's lock, so it may read
	// state that itself queries the recorder.
	Metrics func() string
	// OnDump runs after each dump is recorded (outside the lock) — the
	// server uses it to checkpoint its trace file on the trigger path.
	OnDump func(d *Dump)
	// Now is replaceable for tests; nil means time.Now.
	Now func() time.Time
}

// Defaults for the zero FlightRecorderOptions value.
const (
	DefaultFlightRecords  = 64
	DefaultFlightDumps    = 8
	DefaultFlightCooldown = time.Second
)

// FlightRecorder is the bounded request ring plus the dump machinery.
// Create with NewFlightRecorder; all methods are safe for concurrent use.
type FlightRecorder struct {
	opts FlightRecorderOptions

	mu       sync.Mutex
	ring     []ReqRecord
	next     int
	filled   int
	lastDump map[string]time.Time
	dumps    []Dump

	dumpSeq    atomic.Uint64 // dumps recorded (pip_flightrec_dumps_total)
	suppressed atomic.Uint64 // triggers swallowed by the cooldown
	total      atomic.Uint64 // requests ever recorded
}

// NewFlightRecorder builds a recorder from opts.
func NewFlightRecorder(opts FlightRecorderOptions) *FlightRecorder {
	if opts.Records <= 0 {
		opts.Records = DefaultFlightRecords
	}
	if opts.Dumps <= 0 {
		opts.Dumps = DefaultFlightDumps
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultFlightCooldown
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &FlightRecorder{
		opts:     opts,
		ring:     make([]ReqRecord, opts.Records),
		lastDump: make(map[string]time.Time),
	}
}

// Record appends one completed request to the ring (overwriting the
// oldest entry when full). Nil receiver is a no-op, mirroring Trace.
func (f *FlightRecorder) Record(r ReqRecord) {
	if f == nil {
		return
	}
	f.total.Add(1)
	f.mu.Lock()
	f.ring[f.next] = r
	f.next = (f.next + 1) % len(f.ring)
	if f.filled < len(f.ring) {
		f.filled++
	}
	f.mu.Unlock()
}

// snapshotRing returns the ring oldest-first. Called under mu.
func (f *FlightRecorder) snapshotRing() []ReqRecord {
	out := make([]ReqRecord, 0, f.filled)
	start := f.next - f.filled
	if start < 0 {
		start += len(f.ring)
	}
	for i := 0; i < f.filled; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// Trigger fires an anomaly dump unless the same (reason, detail) pair
// dumped within the cooldown. It returns the dump, or nil when
// suppressed. Reasons are stable strings ("engine.watchdog",
// "breaker.open", ...); detail carries the specifics (the backend URL,
// the cache key) and is part of the rate-limit key, so per-backend
// breaker events each get their own dump.
func (f *FlightRecorder) Trigger(reason, detail string) *Dump {
	if f == nil {
		return nil
	}
	now := f.opts.Now()
	key := reason + "|" + detail
	f.mu.Lock()
	if last, ok := f.lastDump[key]; ok && now.Sub(last) < f.opts.Cooldown {
		f.mu.Unlock()
		f.suppressed.Add(1)
		return nil
	}
	f.lastDump[key] = now
	records := f.snapshotRing()
	f.mu.Unlock()

	d := &Dump{
		Seq:     f.dumpSeq.Add(1),
		Reason:  reason,
		Detail:  detail,
		Time:    now,
		Records: records,
	}
	// The metrics scrape and file write run outside mu: the scrape may
	// itself read recorder counters (the exposition exports
	// pip_flightrec_dumps_total), and neither belongs under a lock the
	// request path takes.
	if f.opts.Metrics != nil {
		d.Metrics = f.opts.Metrics()
	}
	if f.opts.Dir != "" {
		if path, err := f.writeDumpFile(d); err == nil {
			d.File = path
		} else {
			d.Detail = strings.TrimSpace(d.Detail + " [dump file: " + err.Error() + "]")
		}
	}
	f.mu.Lock()
	f.dumps = append(f.dumps, *d)
	if len(f.dumps) > f.opts.Dumps {
		f.dumps = f.dumps[len(f.dumps)-f.opts.Dumps:]
	}
	f.mu.Unlock()
	if f.opts.OnDump != nil {
		f.opts.OnDump(d)
	}
	return d
}

// writeDumpFile persists one dump as pretty JSON under Dir.
func (f *FlightRecorder) writeDumpFile(d *Dump) (string, error) {
	if err := os.MkdirAll(f.opts.Dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("flightrec-%s-%03d-%s.json",
		d.Time.UTC().Format("20060102T150405.000000000Z"), d.Seq, sanitizeReason(d.Reason))
	path := filepath.Join(f.opts.Dir, name)
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitizeReason maps a trigger reason onto a filename-safe slug.
func sanitizeReason(reason string) string {
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
			return c
		default:
			return '_'
		}
	}, reason)
}

// Dumps returns the retained dumps, newest last.
func (f *FlightRecorder) Dumps() []Dump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Dump(nil), f.dumps...)
}

// DumpCount returns how many dumps have been recorded over the
// recorder's lifetime (retained or not).
func (f *FlightRecorder) DumpCount() uint64 {
	if f == nil {
		return 0
	}
	return f.dumpSeq.Load()
}

// Suppressed returns how many triggers the cooldown swallowed.
func (f *FlightRecorder) Suppressed() uint64 {
	if f == nil {
		return 0
	}
	return f.suppressed.Load()
}

// Recorded returns how many requests have ever been recorded.
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.total.Load()
}
