package cfront

import "strconv"

// Expression parsing: precedence climbing with C's operator levels.

// parseExpr parses a full (comma-free) expression.
func (p *parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

// parseInitializer parses either an expression or a brace initializer.
func (p *parser) parseInitializer() (Expr, error) {
	t := p.peek()
	if t.kind == tPunct && t.text == "{" {
		p.pos++
		lst := &InitList{Line: t.line}
		for !p.acceptPunct("}") {
			if len(lst.Elems) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
				if p.acceptPunct("}") { // trailing comma
					return lst, nil
				}
			}
			e, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			lst.Elems = append(lst.Elems, e)
		}
		return lst, nil
	}
	return p.parseAssignExpr()
}

func (p *parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tPunct {
		return lhs, nil
	}
	switch t.text {
	case "=":
		p.pos++
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{LHS: lhs, RHS: rhs, Line: t.line}, nil
	case "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=":
		p.pos++
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		op := t.text[:1]
		return &Assign{LHS: lhs, RHS: &Binary{Op: op, X: lhs, Y: rhs, Line: t.line}, Line: t.line}, nil
	}
	return lhs, nil
}

func (p *parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.acceptPunct("?") {
		return c, nil
	}
	line := p.peek().line
	thenE, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	elseE, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, T: thenE, F: elseE, Line: line}, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tPunct {
			return lhs, nil
		}
		matched := false
		for _, op := range binLevels[level] {
			if t.text == op {
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.text, X: lhs, Y: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tPunct {
		switch t.text {
		case "&", "*", "-", "!", "~", "+":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.text == "+" {
				return x, nil
			}
			return &Unary{Op: t.text, X: x, Line: t.line}, nil
		case "++", "--":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			// Pre-increment: desugared to an assignment.
			op := "+"
			if t.text == "--" {
				op = "-"
			}
			return &Assign{LHS: x, RHS: &Binary{Op: op, X: x, Y: &IntLit{Val: 1, Line: t.line}, Line: t.line}, Line: t.line}, nil
		case "(":
			// Cast if '(' starts a type name.
			save := p.save()
			p.pos++
			if p.isTypeStart() {
				base, err := p.parseSpecifiers(nil)
				if err != nil {
					return nil, err
				}
				_, ct, err := p.parseDeclarator(base, true)
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &CastExpr{T: ct, X: x, Line: t.line}, nil
			}
			p.restore(save)
		}
	}
	if t.kind == tKeyword && t.text == "sizeof" {
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.isTypeStart() {
			base, err := p.parseSpecifiers(nil)
			if err != nil {
				return nil, err
			}
			_, ct, err := p.parseDeclarator(base, true)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &SizeofExpr{T: ct, Line: t.line}, nil
		}
		// sizeof(expr): parse and ignore the expression's value.
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		_ = x
		return &SizeofExpr{T: cLong, Line: t.line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tPunct {
			return x, nil
		}
		switch t.text {
		case "(":
			p.pos++
			call := &Call{Fun: x, Line: t.line}
			for !p.acceptPunct(")") {
				if len(call.Args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				arg, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			x = call
		case "[":
			p.pos++
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: idx, Line: t.line}
		case ".":
			p.pos++
			nt := p.next()
			if nt.kind != tIdent {
				return nil, p.errf(nt, "expected a field name")
			}
			x = &Member{X: x, Name: nt.text, Line: t.line}
		case "->":
			p.pos++
			nt := p.next()
			if nt.kind != tIdent {
				return nil, p.errf(nt, "expected a field name")
			}
			x = &Member{X: x, Name: nt.text, Arrow: true, Line: t.line}
		case "++", "--":
			// Post-increment used as a statement-level operation: desugar
			// to pre-increment (the produced value differs only for
			// scalar arithmetic, which the analysis does not observe).
			p.pos++
			op := "+"
			if t.text == "--" {
				op = "-"
			}
			x = &Assign{LHS: x, RHS: &Binary{Op: op, X: x, Y: &IntLit{Val: 1, Line: t.line}, Line: t.line}, Line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tInt:
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return nil, p.errf(t, "bad integer literal %q", t.text)
		}
		return &IntLit{Val: v, Line: t.line}, nil
	case tFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t, "bad float literal %q", t.text)
		}
		return &FloatLit{Val: v, Line: t.line}, nil
	case tChar:
		return &IntLit{Val: int64(t.text[0]), Line: t.line}, nil
	case tString:
		return &StrLit{Val: t.text, Line: t.line}, nil
	case tKeyword:
		if t.text == "NULL" {
			return &NullLit{Line: t.line}, nil
		}
		return nil, p.errf(t, "unexpected keyword %q in expression", t.text)
	case tIdent:
		if v, ok := p.enumConsts[t.text]; ok {
			return &IntLit{Val: v, Line: t.line}, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	case tPunct:
		if t.text == "(" {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, p.errf(t, "unexpected %s in expression", t)
}
