package cfront

import (
	"fmt"

	"github.com/pip-analysis/pip/internal/ir"
)

// Compile parses and lowers a mini-C translation unit to an MIR module.
func Compile(name, src string) (m *ir.Module, err error) {
	file, err := ParseC(src)
	if err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(*compileError); ok {
				m, err = nil, ce
				return
			}
			panic(r)
		}
	}()
	lw := &lowerer{
		mod:     ir.NewModule(name),
		globals: map[string]*symbol{},
	}
	lw.b = ir.NewBuilder(lw.mod)
	lw.lowerFile(file)
	if verr := ir.Verify(lw.mod); verr != nil {
		return nil, fmt.Errorf("internal lowering error: %w", verr)
	}
	return lw.mod, nil
}

// MustCompile is Compile that panics on error; for tests and examples.
func MustCompile(name, src string) *ir.Module {
	m, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

type compileError struct {
	line int
	msg  string
}

func (e *compileError) Error() string {
	if e.line <= 0 {
		// Errors raised after parsing (type lowering) have no source
		// position; "line 0" would point at nothing.
		return e.msg
	}
	return fmt.Sprintf("line %d: %s", e.line, e.msg)
}

// symbol binds a C name to its address value and type.
type symbol struct {
	ctype  CType
	val    ir.Value // address of the object, or the function value
	isFunc bool
}

type lowerer struct {
	mod *ir.Module
	b   *ir.Builder

	globals map[string]*symbol
	scopes  []map[string]*symbol

	curRet     CType
	terminated bool
	breakT     []*ir.Block
	contT      []*ir.Block
	strSeq     int
	blkSeq     int
	// usedNames tracks SSA names taken in the current function, so local
	// variables can keep their C names on their stack slots.
	usedNames map[string]bool
}

// namedAlloca emits a stack slot whose SSA name is derived from the C
// variable name, so analysis results stay readable ("callMe.r").
func (lw *lowerer) namedAlloca(name string, t ir.Type) *ir.Instr {
	slot := lw.b.Alloca(t)
	candidate := name
	// Avoid the builder's own tN namespace and duplicates from shadowing.
	if isBuilderTemp(candidate) {
		candidate += ".v"
	}
	for i := 2; lw.usedNames[candidate]; i++ {
		candidate = fmt.Sprintf("%s.%d", name, i)
	}
	lw.usedNames[candidate] = true
	slot.IName = candidate
	return slot
}

func isBuilderTemp(s string) bool {
	if len(s) < 2 || s[0] != 't' {
		return false
	}
	for i := 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func (lw *lowerer) errf(line int, format string, args ...interface{}) {
	panic(&compileError{line, fmt.Sprintf(format, args...)})
}

func (lw *lowerer) lookup(name string) *symbol {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if s, ok := lw.scopes[i][name]; ok {
			return s
		}
	}
	return lw.globals[name]
}

func (lw *lowerer) define(name string, s *symbol) {
	lw.scopes[len(lw.scopes)-1][name] = s
}

// freshBlock creates a uniquely named block.
func (lw *lowerer) freshBlock(hint string) *ir.Block {
	lw.blkSeq++
	return lw.b.NewBlock(fmt.Sprintf("%s.%d", hint, lw.blkSeq))
}

// setBlock moves the insertion point and resets termination tracking.
func (lw *lowerer) setBlock(blk *ir.Block) {
	lw.b.SetBlock(blk)
	lw.terminated = false
}

// lowerFile lowers the whole translation unit.
func (lw *lowerer) lowerFile(f *File) {
	// Merge duplicate declarations: a definition wins over externs.
	type fnInfo struct{ def *FuncDef }
	fns := map[string]*fnInfo{}
	var fnOrder []string
	for _, fd := range f.Funcs {
		info := fns[fd.Name]
		if info == nil {
			info = &fnInfo{def: fd}
			fns[fd.Name] = info
			fnOrder = append(fnOrder, fd.Name)
		} else if fd.Body != nil {
			info.def = fd
		}
	}
	type glInfo struct{ def *VarDecl }
	gls := map[string]*glInfo{}
	var glOrder []string
	for _, gd := range f.Globals {
		info := gls[gd.Name]
		if info == nil {
			gls[gd.Name] = &glInfo{def: gd}
			glOrder = append(glOrder, gd.Name)
		} else if gd.Storage != ExternStorage {
			gls[gd.Name].def = gd
		}
		_ = info
	}

	// Globals first.
	for _, name := range glOrder {
		gd := gls[name].def
		linkage := ir.Exported
		switch gd.Storage {
		case StaticStorage:
			linkage = ir.Internal
		case ExternStorage:
			linkage = ir.Declared
		}
		g := &ir.Global{GName: gd.Name, Elem: lw.irTypeOf(gd.Type), Linkage: linkage}
		if err := lw.mod.AddGlobal(g); err != nil {
			lw.errf(gd.Line, "%v", err)
		}
		lw.globals[gd.Name] = &symbol{ctype: gd.Type, val: g}
	}

	// Function symbols (so bodies can reference later definitions).
	for _, name := range fnOrder {
		fd := fns[name].def
		sig := lw.irFuncSig(fd.Type)
		var fn *ir.Function
		if fd.Body == nil {
			fn = &ir.Function{FName: fd.Name, Sig: sig, Linkage: ir.Declared}
			for i, pt := range sig.Params {
				fn.Params = append(fn.Params, &ir.Param{PName: fmt.Sprintf("p%d", i), T: pt, Index: i, Parent: fn})
			}
		} else {
			linkage := ir.Exported
			if fd.Storage == StaticStorage {
				linkage = ir.Internal
			}
			fn = &ir.Function{FName: fd.Name, Sig: sig, Linkage: linkage}
			for i, pt := range sig.Params {
				pn := fmt.Sprintf("p%d", i)
				if i < len(fd.Params) && fd.Params[i] != "" {
					pn = fd.Params[i]
				}
				fn.Params = append(fn.Params, &ir.Param{PName: pn, T: pt, Index: i, Parent: fn})
			}
		}
		if err := lw.mod.AddFunc(fn); err != nil {
			lw.errf(fd.Line, "%v", err)
		}
		lw.globals[fd.Name] = &symbol{ctype: fd.Type, val: fn, isFunc: true}
	}

	// Global initializers.
	for _, name := range glOrder {
		gd := gls[name].def
		if gd.Init == nil || gd.Storage == ExternStorage {
			continue
		}
		g := lw.mod.Global(gd.Name)
		g.Init = lw.constInit(gd.Init, gd.Type)
	}

	// Function bodies.
	for _, name := range fnOrder {
		fd := fns[name].def
		if fd.Body != nil {
			lw.lowerFuncBody(fd, lw.mod.Func(fd.Name))
		}
	}
}

// constInit lowers a global initializer to a constant value.
func (lw *lowerer) constInit(e Expr, want CType) ir.Value {
	switch e := e.(type) {
	case *IntLit:
		if it, ok := lw.irTypeOf(want).(ir.IntType); ok {
			return ir.Int(e.Val, it)
		}
		if e.Val == 0 && isPointerLike(want) {
			return ir.Null()
		}
		return ir.Int(e.Val, ir.I64)
	case *FloatLit:
		ft, ok := lw.irTypeOf(want).(ir.FloatType)
		if !ok {
			ft = ir.F64
		}
		return &ir.ConstFloat{Val: e.Val, T: ft}
	case *NullLit:
		return ir.Null()
	case *StrLit:
		return lw.stringGlobal(e.Val)
	case *Unary:
		if e.Op == "&" {
			if id, ok := e.X.(*Ident); ok {
				sym := lw.globals[id.Name]
				if sym == nil {
					lw.errf(e.Line, "unknown symbol %s in initializer", id.Name)
				}
				return sym.val
			}
		}
	case *Ident:
		sym := lw.globals[e.Name]
		if sym != nil && (sym.isFunc || isArr(sym.ctype)) {
			return sym.val
		}
	case *CastExpr:
		return lw.constInit(e.X, e.T)
	case *InitList:
		agg := &ir.ConstAggregate{T: lw.irTypeOf(want)}
		switch want := want.(type) {
		case *Arr:
			for _, el := range e.Elems {
				agg.Elems = append(agg.Elems, lw.constInit(el, want.Elem))
			}
		case *StructRef:
			if want.Def == nil {
				lw.errf(e.Line, "initializer for undefined struct")
			}
			for i, el := range e.Elems {
				if i >= len(want.Def.Fields) {
					lw.errf(e.Line, "too many initializers for struct %s", want.Name)
				}
				agg.Elems = append(agg.Elems, lw.constInit(el, want.Def.Fields[i].Type))
			}
		default:
			lw.errf(e.Line, "brace initializer for non-aggregate type %s", want)
		}
		return agg
	}
	lw.errf(e.exprLine(), "unsupported global initializer")
	return nil
}

func isArr(t CType) bool {
	_, ok := t.(*Arr)
	return ok
}

// stringGlobal interns a string literal as an internal byte-array global.
func (lw *lowerer) stringGlobal(s string) *ir.Global {
	lw.strSeq++
	g := &ir.Global{
		GName:   fmt.Sprintf("str.%d", lw.strSeq),
		Elem:    &ir.ArrayType{Elem: ir.I8, Len: len(s) + 1},
		Linkage: ir.Internal,
	}
	if err := lw.mod.AddGlobal(g); err != nil {
		panic(err)
	}
	return g
}

// lowerFuncBody lowers a function definition.
func (lw *lowerer) lowerFuncBody(fd *FuncDef, fn *ir.Function) {
	lw.b.F = fn
	entry := &ir.Block{BName: "entry", Parent: fn}
	fn.Blocks = append(fn.Blocks, entry)
	lw.setBlock(entry)
	lw.curRet = fd.Type.Ret
	lw.scopes = []map[string]*symbol{{}}
	lw.breakT, lw.contT = nil, nil
	lw.usedNames = map[string]bool{}
	for _, prm := range fn.Params {
		lw.usedNames[prm.PName] = true
	}

	// Spill parameters to stack slots so their address can be taken.
	for i, prm := range fn.Params {
		pt := decay(fd.Type.Params[i])
		slot := lw.namedAlloca(prm.PName+".addr", lw.irTypeOf(pt))
		lw.b.Store(prm, slot)
		if i < len(fd.Params) && fd.Params[i] != "" {
			lw.define(fd.Params[i], &symbol{ctype: pt, val: slot})
		}
	}
	lw.lowerBlock(fd.Body)
	if !lw.terminated {
		lw.emitDefaultReturn()
	}
	lw.scopes = nil
}

func (lw *lowerer) emitDefaultReturn() {
	if isVoid(lw.curRet) {
		lw.b.Ret(nil)
	} else {
		lw.b.Ret(lw.zeroValue(lw.curRet))
	}
	lw.terminated = true
}

func (lw *lowerer) zeroValue(t CType) ir.Value {
	switch it := lw.irTypeOf(t).(type) {
	case ir.IntType:
		return ir.Int(0, it)
	case ir.FloatType:
		return &ir.ConstFloat{T: it}
	case ir.PointerType:
		return ir.Null()
	default:
		return &ir.ConstUndef{T: it}
	}
}

// ensureLive starts a fresh block if the current one is terminated, so
// statements after return/break still lower into valid IR (they are
// unreachable).
func (lw *lowerer) ensureLive() {
	if lw.terminated {
		lw.setBlock(lw.freshBlock("dead"))
	}
}

// lowerStaticLocal hoists a function-scoped static (or extern) declaration
// to a module-level global.
func (lw *lowerer) lowerStaticLocal(vd *VarDecl) {
	name := lw.b.F.FName + "." + vd.Name
	for i := 2; lw.mod.Global(name) != nil; i++ {
		name = fmt.Sprintf("%s.%s.%d", lw.b.F.FName, vd.Name, i)
	}
	linkage := ir.Internal
	if vd.Storage == ExternStorage {
		linkage = ir.Declared
		name = vd.Name // extern declarations name the real symbol
		if existing := lw.mod.Global(name); existing != nil {
			lw.define(vd.Name, &symbol{ctype: vd.Type, val: existing})
			return
		}
	}
	g := &ir.Global{GName: name, Elem: lw.irTypeOf(vd.Type), Linkage: linkage}
	if err := lw.mod.AddGlobal(g); err != nil {
		lw.errf(vd.Line, "%v", err)
	}
	if vd.Init != nil && vd.Storage == StaticStorage {
		g.Init = lw.constInit(vd.Init, vd.Type)
	}
	lw.define(vd.Name, &symbol{ctype: vd.Type, val: g})
}

// lowerLocalInit initializes a fresh stack slot, supporting brace
// initializers for arrays and structs.
func (lw *lowerer) lowerLocalInit(slot ir.Value, t CType, init Expr, line int) {
	lst, isList := init.(*InitList)
	if !isList {
		v, vt := lw.rvalue(init)
		lw.storeConverted(v, vt, slot, t, line)
		return
	}
	switch t := t.(type) {
	case *Arr:
		elemIR := lw.irTypeOf(t.Elem)
		for i, e := range lst.Elems {
			addr := lw.b.GEP(elemIR, slot, ir.Int(int64(i), ir.I64))
			lw.lowerLocalInit(addr, t.Elem, e, line)
		}
	case *StructRef:
		if t.Def == nil {
			lw.errf(line, "initializer for undefined struct")
		}
		for i, e := range lst.Elems {
			if i >= len(t.Def.Fields) {
				lw.errf(line, "too many initializers for struct %s", t.Name)
			}
			f := t.Def.Fields[i]
			var addr ir.Value = slot
			if !t.Def.Union {
				addr = lw.b.GEP(lw.irStruct(t.Def), slot,
					ir.Int(0, ir.I64), ir.Int(int64(i), ir.I64))
			}
			lw.lowerLocalInit(addr, f.Type, e, line)
		}
	default:
		lw.errf(line, "brace initializer for non-aggregate type %s", t)
	}
}

func (lw *lowerer) lowerBlock(b *Block) {
	lw.scopes = append(lw.scopes, map[string]*symbol{})
	for _, s := range b.Stmts {
		lw.lowerStmt(s)
	}
	lw.scopes = lw.scopes[:len(lw.scopes)-1]
}

func (lw *lowerer) lowerStmt(s Stmt) {
	lw.ensureLive()
	switch s := s.(type) {
	case *Block:
		lw.lowerBlock(s)
	case *DeclStmt:
		for _, vd := range s.Vars {
			if vd.Storage == StaticStorage || vd.Storage == ExternStorage {
				lw.lowerStaticLocal(vd)
				continue
			}
			slot := lw.namedAlloca(vd.Name, lw.irTypeOf(vd.Type))
			lw.define(vd.Name, &symbol{ctype: vd.Type, val: slot})
			if vd.Init != nil {
				lw.lowerLocalInit(slot, vd.Type, vd.Init, vd.Line)
			}
		}
	case *ExprStmt:
		lw.rvalue(s.X)
	case *If:
		c := lw.toBool(lw.rvalue(s.C))
		thenB := lw.freshBlock("if.then")
		endB := lw.freshBlock("if.end")
		elseB := endB
		if s.Else != nil {
			elseB = lw.freshBlock("if.else")
		}
		lw.b.CondBr(c, thenB, elseB)
		lw.setBlock(thenB)
		lw.lowerStmt(s.Then)
		if !lw.terminated {
			lw.b.Br(endB)
		}
		if s.Else != nil {
			lw.setBlock(elseB)
			lw.lowerStmt(s.Else)
			if !lw.terminated {
				lw.b.Br(endB)
			}
		}
		lw.setBlock(endB)
	case *While:
		condB := lw.freshBlock("loop.cond")
		bodyB := lw.freshBlock("loop.body")
		endB := lw.freshBlock("loop.end")
		if s.Post {
			lw.b.Br(bodyB) // do-while enters the body first
		} else {
			lw.b.Br(condB)
		}
		lw.setBlock(condB)
		c := lw.toBool(lw.rvalue(s.C))
		lw.b.CondBr(c, bodyB, endB)
		lw.setBlock(bodyB)
		lw.breakT = append(lw.breakT, endB)
		lw.contT = append(lw.contT, condB)
		lw.lowerStmt(s.Body)
		lw.breakT = lw.breakT[:len(lw.breakT)-1]
		lw.contT = lw.contT[:len(lw.contT)-1]
		if !lw.terminated {
			lw.b.Br(condB)
		}
		lw.setBlock(endB)
	case *For:
		lw.scopes = append(lw.scopes, map[string]*symbol{})
		if s.Init != nil {
			lw.lowerStmt(s.Init)
		}
		condB := lw.freshBlock("for.cond")
		bodyB := lw.freshBlock("for.body")
		stepB := lw.freshBlock("for.step")
		endB := lw.freshBlock("for.end")
		lw.b.Br(condB)
		lw.setBlock(condB)
		if s.Cond != nil {
			c := lw.toBool(lw.rvalue(s.Cond))
			lw.b.CondBr(c, bodyB, endB)
		} else {
			lw.b.Br(bodyB)
		}
		lw.setBlock(bodyB)
		lw.breakT = append(lw.breakT, endB)
		lw.contT = append(lw.contT, stepB)
		lw.lowerStmt(s.Body)
		lw.breakT = lw.breakT[:len(lw.breakT)-1]
		lw.contT = lw.contT[:len(lw.contT)-1]
		if !lw.terminated {
			lw.b.Br(stepB)
		}
		lw.setBlock(stepB)
		if s.Step != nil {
			lw.rvalue(s.Step)
		}
		lw.b.Br(condB)
		lw.setBlock(endB)
		lw.scopes = lw.scopes[:len(lw.scopes)-1]
	case *Switch:
		x, _ := lw.rvalue(s.X)
		endB := lw.freshBlock("switch.end")
		bodyBs := make([]*ir.Block, len(s.Cases))
		for i := range s.Cases {
			bodyBs[i] = lw.freshBlock("case")
		}
		defaultTarget := endB
		for i := range s.Cases {
			if s.Cases[i].Val == nil {
				defaultTarget = bodyBs[i]
			}
		}
		for i := range s.Cases {
			if s.Cases[i].Val == nil {
				continue
			}
			v, _ := lw.rvalue(s.Cases[i].Val)
			cond := lw.b.ICmp("eq", x, v)
			next := lw.freshBlock("check")
			lw.b.CondBr(cond, bodyBs[i], next)
			lw.setBlock(next)
		}
		lw.b.Br(defaultTarget)
		lw.breakT = append(lw.breakT, endB)
		for i := range s.Cases {
			lw.setBlock(bodyBs[i])
			for _, st := range s.Cases[i].Body {
				lw.lowerStmt(st)
			}
			if !lw.terminated {
				if i+1 < len(s.Cases) {
					lw.b.Br(bodyBs[i+1]) // C fallthrough
				} else {
					lw.b.Br(endB)
				}
			}
		}
		lw.breakT = lw.breakT[:len(lw.breakT)-1]
		lw.setBlock(endB)
	case *Return:
		if s.X == nil {
			lw.b.Ret(nil)
		} else {
			v, vt := lw.rvalue(s.X)
			lw.b.Ret(lw.convert(v, vt, lw.curRet, s.Line))
		}
		lw.terminated = true
	case *Break:
		if len(lw.breakT) == 0 {
			lw.errf(s.Line, "break outside a loop")
		}
		lw.b.Br(lw.breakT[len(lw.breakT)-1])
		lw.terminated = true
	case *Continue:
		if len(lw.contT) == 0 {
			lw.errf(s.Line, "continue outside a loop")
		}
		lw.b.Br(lw.contT[len(lw.contT)-1])
		lw.terminated = true
	default:
		panic(fmt.Sprintf("lowerStmt: %T", s))
	}
}
