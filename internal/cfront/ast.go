package cfront

// AST nodes for mini-C. Every node carries a source line for diagnostics.

// Expr is an expression node.
type Expr interface{ exprLine() int }

type (
	// IntLit is an integer literal.
	IntLit struct {
		Val  int64
		Line int
	}
	// FloatLit is a floating literal.
	FloatLit struct {
		Val  float64
		Line int
	}
	// StrLit is a string literal.
	StrLit struct {
		Val  string
		Line int
	}
	// NullLit is the NULL keyword.
	NullLit struct{ Line int }
	// Ident is a name reference.
	Ident struct {
		Name string
		Line int
	}
	// Unary is &x, *x, -x, !x, ~x.
	Unary struct {
		Op   string
		X    Expr
		Line int
	}
	// Binary is x op y for arithmetic, comparison, and logical operators.
	Binary struct {
		Op   string
		X, Y Expr
		Line int
	}
	// Assign is lhs = rhs (and compound assignments, desugared by the
	// parser into Assign{lhs, Binary{...}}).
	Assign struct {
		LHS, RHS Expr
		Line     int
	}
	// Cond is c ? t : f.
	Cond struct {
		C, T, F Expr
		Line    int
	}
	// Call is fun(args...).
	Call struct {
		Fun  Expr
		Args []Expr
		Line int
	}
	// Index is x[i].
	Index struct {
		X, I Expr
		Line int
	}
	// Member is x.name or x->name.
	Member struct {
		X     Expr
		Name  string
		Arrow bool
		Line  int
	}
	// CastExpr is (T)x.
	CastExpr struct {
		T    CType
		X    Expr
		Line int
	}
	// SizeofExpr is sizeof(T).
	SizeofExpr struct {
		T    CType
		Line int
	}
	// InitList is a brace initializer { e1, e2, ... }.
	InitList struct {
		Elems []Expr
		Line  int
	}
)

func (e *IntLit) exprLine() int     { return e.Line }
func (e *FloatLit) exprLine() int   { return e.Line }
func (e *StrLit) exprLine() int     { return e.Line }
func (e *NullLit) exprLine() int    { return e.Line }
func (e *Ident) exprLine() int      { return e.Line }
func (e *Unary) exprLine() int      { return e.Line }
func (e *Binary) exprLine() int     { return e.Line }
func (e *Assign) exprLine() int     { return e.Line }
func (e *Cond) exprLine() int       { return e.Line }
func (e *Call) exprLine() int       { return e.Line }
func (e *Index) exprLine() int      { return e.Line }
func (e *Member) exprLine() int     { return e.Line }
func (e *CastExpr) exprLine() int   { return e.Line }
func (e *SizeofExpr) exprLine() int { return e.Line }
func (e *InitList) exprLine() int   { return e.Line }

// Stmt is a statement node.
type Stmt interface{ stmtLine() int }

type (
	// DeclStmt declares local variables.
	DeclStmt struct {
		Vars []*VarDecl
		Line int
	}
	// ExprStmt evaluates an expression for effect.
	ExprStmt struct {
		X    Expr
		Line int
	}
	// Block is { stmts }.
	Block struct {
		Stmts []Stmt
		Line  int
	}
	// If is if (c) then else els.
	If struct {
		C          Expr
		Then, Else Stmt
		Line       int
	}
	// While is while (c) body; DoWhile when Post is true.
	While struct {
		C    Expr
		Body Stmt
		Post bool
		Line int
	}
	// For is for (init; cond; step) body.
	For struct {
		Init Stmt
		Cond Expr
		Step Expr
		Body Stmt
		Line int
	}
	// Return is return [x].
	Return struct {
		X    Expr
		Line int
	}
	// Switch is switch (x) { cases }.
	Switch struct {
		X     Expr
		Cases []SwitchCase
		Line  int
	}
	// Break exits the innermost loop or switch.
	Break struct{ Line int }
	// Continue restarts the innermost loop.
	Continue struct{ Line int }
)

// SwitchCase is one case (or default, when Val is nil) with its body;
// control falls through to the next case unless the body breaks.
type SwitchCase struct {
	Val  Expr // nil for default
	Body []Stmt
	Line int
}

func (s *DeclStmt) stmtLine() int { return s.Line }
func (s *ExprStmt) stmtLine() int { return s.Line }
func (s *Block) stmtLine() int    { return s.Line }
func (s *If) stmtLine() int       { return s.Line }
func (s *While) stmtLine() int    { return s.Line }
func (s *For) stmtLine() int      { return s.Line }
func (s *Return) stmtLine() int   { return s.Line }
func (s *Switch) stmtLine() int   { return s.Line }
func (s *Break) stmtLine() int    { return s.Line }
func (s *Continue) stmtLine() int { return s.Line }

// Storage is a declaration's storage class.
type Storage uint8

const (
	// DefaultStorage is a plain (exported) definition.
	DefaultStorage Storage = iota
	// StaticStorage is internal linkage.
	StaticStorage
	// ExternStorage is a declaration defined elsewhere.
	ExternStorage
)

// VarDecl declares a variable (global or local).
type VarDecl struct {
	Name    string
	Type    CType
	Init    Expr
	Storage Storage
	Line    int
}

// FuncDef is a function definition or prototype.
type FuncDef struct {
	Name    string
	Type    *FuncCT
	Params  []string
	Body    *Block // nil for prototypes
	Storage Storage
	Line    int
}

// File is a parsed translation unit.
type File struct {
	Structs []*StructDef
	Globals []*VarDecl
	Funcs   []*FuncDef
}
