package cfront

import (
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

// FuzzCompile checks that the mini-C frontend never panics and that every
// module it produces verifies and can be analyzed.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		figure1C,
		"int x;",
		"static int *p = &p;",
		"struct s { struct s *next; int v; };",
		"int f(int (*g)(int), int v) { return g(v); }",
		"extern void *malloc(long); void *m() { return malloc(8); }",
		"char *s() { return \"hi\"; }",
		"int a[10]; int g(int i) { return a[i]; }",
		"long c(int *p) { return (long)p; }",
		"int w(int n) { int s = 0; while (n) { s += n; n--; } return s; }",
		"typedef int myint; myint t;",
		"int f() { return 1 ? 2 : 3; }",
		"void v() { do { } while (0); }",
		"int f(void) { return sizeof(struct { int x; }); }",
		"/* comment */ int g;",
		"#include <stdio.h>\nint x;",
		"enum e { A, B = 3 }; int f() { return B; }",
		"union u { int i; int *p; }; union u g;",
		"int f(int k) { switch (k) { case 1: return 1; default: break; } return 0; }",
		"int g() { static int c; c++; return c; }",
		"static int a; static int *t[2] = { &a, &a }; int *f(int i) { return t[i]; }",
		"struct s { int *x; }; static int v; static struct s d = { &v };",
		// Struct-table edge cases near the lowerer's registration guards:
		// an empty-bodied struct later redefined (the parser merges the
		// bodies), and a user struct named like a generated anonymous
		// struct, forcing the AddStruct-collision uniquify path.
		"struct s {}; struct s { int *p; }; struct s g; int *f() { return g.p; }",
		"struct anon0 { int a; }; struct anon0 g; int f() { return sizeof(struct { int x; }); }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Compile("fuzz.c", src)
		if err != nil {
			return
		}
		if verr := ir.Verify(m); verr != nil {
			t.Fatalf("accepted program does not verify: %v\nsource: %q", verr, src)
		}
		gen := core.Generate(m)
		if perr := gen.Problem.Validate(); perr != nil {
			t.Fatalf("invalid problem from accepted program: %v\nsource: %q", perr, src)
		}
		// The analysis must terminate and agree across representations.
		a := core.MustSolve(gen.Problem, core.MustParseConfig("IP+WL(FIFO)+PIP"))
		b := core.MustSolve(gen.Problem, core.MustParseConfig("EP+Naive"))
		if a.Canonical() != b.Canonical() {
			t.Fatalf("representation disagreement on fuzz program %q", src)
		}
	})
}
