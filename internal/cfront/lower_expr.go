package cfront

import (
	"fmt"

	"github.com/pip-analysis/pip/internal/ir"
)

// Expression lowering. rvalue produces a loaded value; lvalue produces the
// address of an object.

// rvalue lowers e to a value, applying C array/function decay.
func (lw *lowerer) rvalue(e Expr) (ir.Value, CType) {
	switch e := e.(type) {
	case *IntLit:
		return ir.Int(e.Val, ir.I32), cInt
	case *FloatLit:
		return &ir.ConstFloat{Val: e.Val, T: ir.F64}, cDouble
	case *StrLit:
		return lw.stringGlobal(e.Val), &Ptr{Elem: cChar}
	case *NullLit:
		return ir.Null(), &Ptr{Elem: cVoid}
	case *SizeofExpr:
		return ir.Int(ir.SizeOf(lw.irTypeOf(e.T)), ir.I64), cLong
	case *Ident:
		sym := lw.lookup(e.Name)
		if sym == nil {
			lw.errf(e.Line, "unknown identifier %q", e.Name)
		}
		if sym.isFunc {
			return sym.val, &Ptr{Elem: sym.ctype}
		}
		return lw.loadFrom(sym.val, sym.ctype, e.Line)
	case *Unary:
		return lw.rvalueUnary(e)
	case *Binary:
		return lw.rvalueBinary(e)
	case *Assign:
		addr, lt := lw.lvalue(e.LHS)
		v, vt := lw.rvalue(e.RHS)
		lw.storeConvertedAt(addr, lt, v, vt, e.Line)
		return lw.convert(v, vt, lt, e.Line), lt
	case *Cond:
		return lw.rvalueCond(e)
	case *Call:
		return lw.rvalueCall(e)
	case *Index, *Member:
		addr, t := lw.lvalue(e)
		return lw.loadFrom(addr, t, e.exprLine())
	case *CastExpr:
		v, vt := lw.rvalue(e.X)
		return lw.convert(v, vt, e.T, e.Line), e.T
	default:
		panic(fmt.Sprintf("rvalue: %T", e))
	}
}

// loadFrom loads an object of type t from addr, applying decay: arrays
// yield their address, structs yield the address too (consumers copy).
func (lw *lowerer) loadFrom(addr ir.Value, t CType, line int) (ir.Value, CType) {
	switch t := t.(type) {
	case *Arr:
		return addr, &Ptr{Elem: t.Elem}
	case *StructRef:
		return addr, t
	case *FuncCT:
		return addr, &Ptr{Elem: t}
	default:
		return lw.b.Load(lw.irTypeOf(t), addr), t
	}
}

// lvalue lowers e to (address, object type).
func (lw *lowerer) lvalue(e Expr) (ir.Value, CType) {
	switch e := e.(type) {
	case *Ident:
		sym := lw.lookup(e.Name)
		if sym == nil {
			lw.errf(e.Line, "unknown identifier %q", e.Name)
		}
		if sym.isFunc {
			lw.errf(e.Line, "function %q is not an lvalue", e.Name)
		}
		return sym.val, sym.ctype
	case *Unary:
		if e.Op != "*" {
			lw.errf(e.Line, "expression is not an lvalue")
		}
		v, vt := lw.rvalue(e.X)
		pt, ok := vt.(*Ptr)
		if !ok {
			lw.errf(e.Line, "dereference of non-pointer type %s", vt)
		}
		return v, pt.Elem
	case *Index:
		base, bt := lw.rvalue(e.X)
		pt, ok := bt.(*Ptr)
		if !ok {
			lw.errf(e.Line, "indexing a non-pointer type %s", bt)
		}
		idx, it := lw.rvalue(e.I)
		if !isInteger(it) {
			lw.errf(e.Line, "array index must be an integer, got %s", it)
		}
		addr := lw.b.GEP(lw.irTypeOf(pt.Elem), base, idx)
		return addr, pt.Elem
	case *Member:
		var base ir.Value
		var st CType
		if e.Arrow {
			v, vt := lw.rvalue(e.X)
			pt, ok := vt.(*Ptr)
			if !ok {
				lw.errf(e.Line, "-> on non-pointer type %s", vt)
			}
			base, st = v, pt.Elem
		} else {
			base, st = lw.lvalue(e.X)
		}
		sr, ok := st.(*StructRef)
		if !ok || sr.Def == nil {
			lw.errf(e.Line, "member access on non-struct type %s", st)
		}
		for fi, f := range sr.Def.Fields {
			if f.Name == e.Name {
				if sr.Def.Union {
					// Union members share storage at offset 0; reusing
					// the base address keeps the alias clients sound
					// (all members overlap).
					return base, f.Type
				}
				addr := lw.b.GEP(lw.irStruct(sr.Def), base,
					ir.Int(0, ir.I64), ir.Int(int64(fi), ir.I64))
				return addr, f.Type
			}
		}
		lw.errf(e.Line, "struct %s has no field %q", sr.Name, e.Name)
	case *CastExpr:
		// (T*)x used as lvalue target: *(T*)x pattern handled via Unary;
		// a cast itself is not an lvalue.
		lw.errf(e.Line, "cast expression is not an lvalue")
	}
	lw.errf(e.exprLine(), "expression is not an lvalue")
	return nil, nil
}

func (lw *lowerer) rvalueUnary(e *Unary) (ir.Value, CType) {
	switch e.Op {
	case "&":
		addr, t := lw.lvalue(e.X)
		return addr, &Ptr{Elem: t}
	case "*":
		v, vt := lw.rvalue(e.X)
		pt, ok := vt.(*Ptr)
		if !ok {
			lw.errf(e.Line, "dereference of non-pointer type %s", vt)
		}
		return lw.loadFrom(v, pt.Elem, e.Line)
	case "-":
		v, vt := lw.rvalue(e.X)
		it, ok := lw.irTypeOf(vt).(ir.IntType)
		if !ok {
			if ft, isF := lw.irTypeOf(vt).(ir.FloatType); isF {
				return lw.b.Bin("sub", ft, &ir.ConstFloat{T: ft}, v), vt
			}
			lw.errf(e.Line, "negation of non-numeric type %s", vt)
		}
		return lw.b.Bin("sub", it, ir.Int(0, it), v), vt
	case "!":
		v, vt := lw.rvalue(e.X)
		b := lw.toBool(v, vt)
		return lw.b.ICmp("eq", b, ir.Int(0, ir.I8)), cInt
	case "~":
		v, vt := lw.rvalue(e.X)
		it, ok := lw.irTypeOf(vt).(ir.IntType)
		if !ok {
			lw.errf(e.Line, "~ on non-integer type %s", vt)
		}
		return lw.b.Bin("xor", it, v, ir.Int(-1, it)), vt
	default:
		panic("unknown unary op " + e.Op)
	}
}

func (lw *lowerer) rvalueBinary(e *Binary) (ir.Value, CType) {
	switch e.Op {
	case "&&", "||":
		return lw.shortCircuit(e)
	}
	x, xt := lw.rvalue(e.X)
	y, yt := lw.rvalue(e.Y)

	switch e.Op {
	case "==", "!=", "<", "<=", ">", ">=":
		pred := map[string]string{"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}[e.Op]
		return lw.b.ICmp(pred, x, y), cInt
	}

	xPtr, xIsPtr := xt.(*Ptr)
	yPtr, yIsPtr := yt.(*Ptr)
	switch {
	case xIsPtr && yIsPtr && e.Op == "-":
		// Pointer difference: expose both and subtract as integers.
		xi := lw.b.PtrToInt(x)
		yi := lw.b.PtrToInt(y)
		return lw.b.Bin("sub", ir.I64, xi, yi), cLong
	case xIsPtr && (e.Op == "+" || e.Op == "-"):
		if !isInteger(yt) {
			lw.errf(e.Line, "pointer arithmetic with non-integer %s", yt)
		}
		off := y
		if e.Op == "-" {
			off = lw.b.Bin("sub", ir.I64, ir.Int(0, ir.I64), y)
		}
		elem := lw.irTypeOf(xPtr.Elem)
		if ir.TypesEqual(elem, ir.Void) {
			elem = ir.I8
		}
		return lw.b.GEP(elem, x, off), xt
	case yIsPtr && e.Op == "+":
		if !isInteger(xt) {
			lw.errf(e.Line, "pointer arithmetic with non-integer %s", xt)
		}
		elem := lw.irTypeOf(yPtr.Elem)
		if ir.TypesEqual(elem, ir.Void) {
			elem = ir.I8
		}
		return lw.b.GEP(elem, y, x), yt
	}

	kind := map[string]string{
		"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
		"&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
	}[e.Op]
	if kind == "" {
		panic("unknown binary op " + e.Op)
	}
	rt := arithType(xt, yt)
	irt := lw.irTypeOf(rt)
	return lw.b.Bin(kind, irt, x, y), rt
}

// arithType implements loose usual-arithmetic-conversions.
func arithType(a, b CType) CType {
	if isFloating(a) || isFloating(b) {
		return cDouble
	}
	ap, aok := a.(*Prim)
	bp, bok := b.(*Prim)
	if aok && bok && (ap.Kind == CLong || bp.Kind == CLong) {
		return cLong
	}
	return cInt
}

// shortCircuit lowers && and || with proper control flow.
func (lw *lowerer) shortCircuit(e *Binary) (ir.Value, CType) {
	x, xt := lw.rvalue(e.X)
	xb := lw.toBool(x, xt)
	rhsB := lw.freshBlock("sc.rhs")
	endB := lw.freshBlock("sc.end")
	firstB := lw.b.B
	if e.Op == "&&" {
		lw.b.CondBr(xb, rhsB, endB)
	} else {
		lw.b.CondBr(xb, endB, rhsB)
	}
	lw.setBlock(rhsB)
	y, yt := lw.rvalue(e.Y)
	yb := lw.toBool(y, yt)
	rhsEnd := lw.b.B
	lw.b.Br(endB)
	lw.setBlock(endB)
	phi := lw.b.Phi(ir.I1, []ir.Value{xb, yb}, []*ir.Block{firstB, rhsEnd})
	return phi, cInt
}

func (lw *lowerer) rvalueCond(e *Cond) (ir.Value, CType) {
	c := lw.toBool(lw.rvalue(e.C))
	thenB := lw.freshBlock("cond.then")
	elseB := lw.freshBlock("cond.else")
	endB := lw.freshBlock("cond.end")
	lw.b.CondBr(c, thenB, elseB)
	lw.setBlock(thenB)
	tv, tt := lw.rvalue(e.T)
	thenEnd := lw.b.B
	lw.b.Br(endB)
	lw.setBlock(elseB)
	fv, ft := lw.rvalue(e.F)
	fv = lw.convert(fv, ft, tt, e.Line)
	elseEnd := lw.b.B
	lw.b.Br(endB)
	lw.setBlock(endB)
	phi := lw.b.Phi(lw.irTypeOf(decay(tt)), []ir.Value{tv, fv}, []*ir.Block{thenEnd, elseEnd})
	return phi, tt
}

func (lw *lowerer) rvalueCall(e *Call) (ir.Value, CType) {
	var callee ir.Value
	var ft *FuncCT
	if id, ok := e.Fun.(*Ident); ok {
		sym := lw.lookup(id.Name)
		if sym == nil {
			lw.errf(e.Line, "call to undeclared function %q", id.Name)
		}
		if sym.isFunc {
			callee = sym.val
			ft = sym.ctype.(*FuncCT)
		}
	}
	if callee == nil {
		v, vt := lw.rvalue(e.Fun)
		callee = v
		switch t := vt.(type) {
		case *Ptr:
			if f, ok := t.Elem.(*FuncCT); ok {
				ft = f
			}
		case *FuncCT:
			ft = t
		}
		if ft == nil {
			lw.errf(e.Line, "called value has non-function type %s", vt)
		}
	}
	args := make([]ir.Value, 0, len(e.Args))
	for i, a := range e.Args {
		v, vt := lw.rvalue(a)
		if i < len(ft.Params) {
			v = lw.convert(v, vt, decay(ft.Params[i]), e.Line)
		}
		args = append(args, v)
	}
	ret := lw.b.Call(lw.irTypeOf(ft.Ret), callee, args...)
	return ret, ft.Ret
}

// toBool converts a value to an i1 condition.
func (lw *lowerer) toBool(v ir.Value, t CType) ir.Value {
	if ir.TypesEqual(v.Type(), ir.I1) {
		return v
	}
	if isPointerLike(t) {
		return lw.b.ICmp("ne", v, ir.Null())
	}
	if it, ok := v.Type().(ir.IntType); ok {
		return lw.b.ICmp("ne", v, ir.Int(0, it))
	}
	if ft, ok := v.Type().(ir.FloatType); ok {
		return lw.b.ICmp("ne", v, &ir.ConstFloat{T: ft})
	}
	return lw.b.ICmp("ne", v, ir.Int(0, ir.I64))
}

// convert coerces v from type "from" to type "to", inserting the cast
// instructions the analysis cares about (ptrtoint / inttoptr).
func (lw *lowerer) convert(v ir.Value, from, to CType, line int) ir.Value {
	from, to = decay(from), decay(to)
	if sameType(from, to) {
		return v
	}
	fromPtr := isPointerLike(from)
	toPtr := isPointerLike(to)
	switch {
	case fromPtr && toPtr:
		return v // ptr-to-ptr casts are free with opaque pointers
	case fromPtr && isInteger(to):
		return lw.b.PtrToInt(v)
	case isInteger(from) && toPtr:
		if ci, ok := v.(*ir.ConstInt); ok && ci.Val == 0 {
			return ir.Null()
		}
		return lw.b.IntToPtr(v)
	case isVoid(to):
		return v
	case !fromPtr && !toPtr:
		// Numeric conversions: reinterpretation is irrelevant to the
		// analysis; use a bitcast to keep SSA types coherent.
		if ir.TypesEqual(v.Type(), lw.irTypeOf(to)) {
			return v
		}
		if _, isConst := v.(*ir.ConstInt); isConst {
			return v
		}
		return lw.b.Bitcast(lw.irTypeOf(to), v)
	default:
		// Struct-to-struct or otherwise incompatible: pass through.
		return v
	}
}

// storeConverted stores v (of type vt) into slot declared as type lt.
func (lw *lowerer) storeConverted(v ir.Value, vt CType, slot ir.Value, lt CType, line int) {
	lw.storeConvertedAt(slot, lt, v, vt, line)
}

func (lw *lowerer) storeConvertedAt(addr ir.Value, lt CType, v ir.Value, vt CType, line int) {
	if sr, isStruct := lt.(*StructRef); isStruct {
		// Struct assignment: raw copy (v is the source address).
		size := ir.SizeOf(lw.irStruct(sr.Def))
		lw.b.Memcpy(addr, v, ir.Int(size, ir.I64))
		return
	}
	lw.b.Store(lw.convert(v, vt, lt, line), addr)
}
