package cfront

import (
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/ir"
)

// expectCompileError runs f on a fresh lowerer and requires it to panic
// with a *compileError — the type Compile's recover converts to an error.
// Anything else (no panic, or a raw panic value) would crash a Compile
// caller instead of reporting a diagnostic.
func expectCompileError(t *testing.T, name string, f func(lw *lowerer)) *compileError {
	t.Helper()
	lw := &lowerer{mod: ir.NewModule("robust.c"), globals: map[string]*symbol{}}
	lw.b = ir.NewBuilder(lw.mod)
	var ce *compileError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: lowerer accepted malformed input", name)
			}
			var ok bool
			if ce, ok = r.(*compileError); !ok {
				t.Fatalf("%s: panicked with %T (%v), not *compileError", name, r, r)
			}
		}()
		f(lw)
	}()
	return ce
}

// TestLowererRejectsMalformedAST pins the error paths that used to be
// panics in type lowering. The parser never produces these shapes (it
// always fills StructRef.Def and never emits unknown type nodes), so they
// are exercised the way a future bug or a direct AST consumer would hit
// them: by feeding the lowerer a malformed AST.
func TestLowererRejectsMalformedAST(t *testing.T) {
	ce := expectCompileError(t, "nil struct def", func(lw *lowerer) {
		lw.irStruct(nil)
	})
	if !strings.Contains(ce.Error(), "undefined struct") {
		t.Fatalf("wrong diagnostic: %v", ce)
	}
	if strings.Contains(ce.Error(), "line 0") {
		t.Fatalf("position-free diagnostic rendered a bogus line: %v", ce)
	}

	ce = expectCompileError(t, "unknown type node", func(lw *lowerer) {
		lw.irTypeOf(nil)
	})
	if !strings.Contains(ce.Error(), "cannot lower C type") {
		t.Fatalf("wrong diagnostic: %v", ce)
	}

	// A StructRef whose Def was never resolved takes the same path as a
	// bare nil def.
	expectCompileError(t, "unresolved StructRef", func(lw *lowerer) {
		lw.irTypeOf(&StructRef{})
	})
}

// TestStructNameUniquify drives the AddStruct-collision branch from real
// source: a user struct named like the parser's generated anonymous names
// ("anon0", "anon1", ...) collides in the module's struct table and must
// be uniquified, not dropped or crashed on.
func TestStructNameUniquify(t *testing.T) {
	src := `
struct anon0 { int a; };
struct anon0 g;
int f() { return sizeof(struct { int x; int y; });  }
`
	m, err := Compile("uniq.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	names := map[string]bool{}
	for _, st := range m.Structs {
		if names[st.Name] {
			t.Fatalf("duplicate struct name %q in module", st.Name)
		}
		names[st.Name] = true
	}
	if len(m.Structs) < 2 {
		t.Fatalf("expected both colliding structs registered, got %v", m.Structs)
	}
}
