package cfront

import (
	"fmt"
	"strings"

	"github.com/pip-analysis/pip/internal/ir"
)

// CType models mini-C types.
type CType interface {
	String() string
	isCType()
}

// PrimKind enumerates primitive type kinds.
type PrimKind uint8

const (
	CVoid PrimKind = iota
	CChar
	CShort
	CInt
	CLong
	CFloat
	CDouble
)

// Prim is a primitive type.
type Prim struct{ Kind PrimKind }

// Ptr is a pointer type.
type Ptr struct{ Elem CType }

// Arr is a fixed-length array type.
type Arr struct {
	Elem CType
	Len  int
}

// StructRef names a struct type; Def is resolved during parsing.
type StructRef struct {
	Name string
	Def  *StructDef
}

// StructDef is a struct or union definition. Unions share storage between
// their members: member access resolves to offset 0, which keeps the alias
// clients sound (all members overlap).
type StructDef struct {
	Name   string
	Fields []Field
	Union  bool
	irType *ir.StructType
}

// Field is one struct member.
type Field struct {
	Name string
	Type CType
}

// FuncCT is a function type (used through pointers and declarations).
type FuncCT struct {
	Ret      CType
	Params   []CType
	Variadic bool
}

func (*Prim) isCType()      {}
func (*Ptr) isCType()       {}
func (*Arr) isCType()       {}
func (*StructRef) isCType() {}
func (*FuncCT) isCType()    {}

func (p *Prim) String() string {
	switch p.Kind {
	case CVoid:
		return "void"
	case CChar:
		return "char"
	case CShort:
		return "short"
	case CInt:
		return "int"
	case CLong:
		return "long"
	case CFloat:
		return "float"
	case CDouble:
		return "double"
	}
	return "?"
}

func (p *Ptr) String() string { return p.Elem.String() + "*" }
func (a *Arr) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }
func (s *StructRef) String() string {
	return "struct " + s.Name
}
func (f *FuncCT) String() string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.String()
	}
	if f.Variadic {
		parts = append(parts, "...")
	}
	return fmt.Sprintf("%s(%s)", f.Ret, strings.Join(parts, ", "))
}

// Common singletons.
var (
	cVoid   = &Prim{CVoid}
	cChar   = &Prim{CChar}
	cInt    = &Prim{CInt}
	cLong   = &Prim{CLong}
	cDouble = &Prim{CDouble}
)

// isVoid reports whether t is void.
func isVoid(t CType) bool {
	p, ok := t.(*Prim)
	return ok && p.Kind == CVoid
}

// isInteger reports whether t is an integer type.
func isInteger(t CType) bool {
	p, ok := t.(*Prim)
	return ok && p.Kind >= CChar && p.Kind <= CLong
}

// isFloating reports whether t is float or double.
func isFloating(t CType) bool {
	p, ok := t.(*Prim)
	return ok && (p.Kind == CFloat || p.Kind == CDouble)
}

// isPointerLike reports whether t is a pointer or decays to one.
func isPointerLike(t CType) bool {
	switch t.(type) {
	case *Ptr, *Arr, *FuncCT:
		return true
	}
	return false
}

// sameType is a loose structural comparison.
func sameType(a, b CType) bool { return a.String() == b.String() }

// irTypeOf lowers a C type to MIR. Struct types are registered in the
// module on first use.
func (lw *lowerer) irTypeOf(t CType) ir.Type {
	switch t := t.(type) {
	case *Prim:
		switch t.Kind {
		case CVoid:
			return ir.Void
		case CChar:
			return ir.I8
		case CShort:
			return ir.I16
		case CInt:
			return ir.I32
		case CLong:
			return ir.I64
		case CFloat:
			return ir.F32
		case CDouble:
			return ir.F64
		}
	case *Ptr:
		return ir.Ptr
	case *Arr:
		return &ir.ArrayType{Elem: lw.irTypeOf(t.Elem), Len: t.Len}
	case *StructRef:
		return lw.irStruct(t.Def)
	case *FuncCT:
		return ir.Ptr // function values decay to pointers
	}
	// No source position survives to type lowering, so these diagnostics
	// carry line 0 (rendered without a line prefix). They are believed
	// unreachable from parsed source — the parser never builds the shapes
	// they guard against — but a malformed AST handed to the lowerer
	// directly must produce a compile error, not a crash.
	lw.errf(0, "cannot lower C type %T (%v)", t, t)
	return ir.Void // unreachable: errf panics
}

func (lw *lowerer) irStruct(def *StructDef) *ir.StructType {
	if def == nil {
		lw.errf(0, "use of undefined struct type")
	}
	if def.irType != nil {
		return def.irType
	}
	// Register the shell first so self-referencing structs (through
	// pointers, which are opaque) terminate.
	st := &ir.StructType{Name: def.Name}
	def.irType = st
	for _, f := range def.Fields {
		st.Fields = append(st.Fields, lw.irTypeOf(f.Type))
	}
	if err := lw.mod.AddStruct(st); err != nil {
		// Name collision across scopes: uniquify.
		st.Name = fmt.Sprintf("%s.%d", def.Name, len(lw.mod.Structs))
		if err := lw.mod.AddStruct(st); err != nil {
			lw.errf(0, "cannot register struct %q: %v", def.Name, err)
		}
	}
	return st
}

// irFuncSig lowers a C function type to an MIR signature.
func (lw *lowerer) irFuncSig(ft *FuncCT) *ir.FuncType {
	sig := &ir.FuncType{Ret: lw.irTypeOf(ft.Ret), Variadic: ft.Variadic}
	for _, pt := range ft.Params {
		sig.Params = append(sig.Params, lw.irTypeOf(decay(pt)))
	}
	return sig
}

// decay converts array and function types to pointers (C parameter decay).
func decay(t CType) CType {
	switch t := t.(type) {
	case *Arr:
		return &Ptr{Elem: t.Elem}
	case *FuncCT:
		return &Ptr{Elem: t}
	}
	return t
}
