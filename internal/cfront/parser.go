package cfront

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser for mini-C.
type parser struct {
	toks []token
	pos  int

	structs  map[string]*StructDef
	typedefs map[string]CType
	file     *File
	anonSeq  int
	// lastParams holds the parameter names of the most recently parsed
	// declarator with a function suffix (consumed by function definitions).
	lastParams []string
	// enumConsts maps enumerator names to their values.
	enumConsts map[string]int64
}

// ParseC parses a mini-C translation unit into an AST.
func ParseC(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:     toks,
		structs:  map[string]*StructDef{},
		typedefs: map[string]CType{},
		file:     &File{},
	}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) peek2() token  { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) acceptPunct(s string) bool {
	if t := p.peek(); t.kind == tPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return p.errf(t, "expected %q, found %s", s, t)
	}
	return nil
}

func (p *parser) acceptKeyword(s string) bool {
	if t := p.peek(); t.kind == tKeyword && t.text == s {
		p.pos++
		return true
	}
	return false
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	t := p.peek()
	switch t.kind {
	case tKeyword:
		switch t.text {
		case "void", "char", "short", "int", "long", "float", "double",
			"unsigned", "signed", "struct", "union", "enum", "const",
			"static", "extern":
			return true
		}
		return false
	case tIdent:
		_, isTypedef := p.typedefs[t.text]
		return isTypedef
	}
	return false
}

func (p *parser) parseFile() error {
	for p.peek().kind != tEOF {
		if p.acceptKeyword("typedef") {
			base, err := p.parseSpecifiers(nil)
			if err != nil {
				return err
			}
			name, t, err := p.parseDeclarator(base, false)
			if err != nil {
				return err
			}
			if name == "" {
				return p.errf(p.peek(), "typedef needs a name")
			}
			p.typedefs[name] = t
			if err := p.expectPunct(";"); err != nil {
				return err
			}
			continue
		}
		storage := DefaultStorage
		base, err := p.parseSpecifiers(&storage)
		if err != nil {
			return err
		}
		// Bare "struct S { ... };" declaration.
		if p.acceptPunct(";") {
			continue
		}
		if err := p.parseTopDeclarators(base, storage); err != nil {
			return err
		}
	}
	return nil
}

// parseSpecifiers parses storage-class and type specifiers.
func (p *parser) parseSpecifiers(storage *Storage) (CType, error) {
	var base CType
	sawSign := false
	longCount := 0
	for {
		t := p.peek()
		if t.kind == tKeyword {
			switch t.text {
			case "static":
				p.pos++
				if storage != nil {
					*storage = StaticStorage
				}
				continue
			case "extern":
				p.pos++
				if storage != nil {
					*storage = ExternStorage
				}
				continue
			case "const":
				p.pos++
				continue
			case "unsigned", "signed":
				p.pos++
				sawSign = true
				continue
			case "void":
				p.pos++
				base = cVoid
				continue
			case "char":
				p.pos++
				base = cChar
				continue
			case "short":
				p.pos++
				base = &Prim{CShort}
				continue
			case "int":
				p.pos++
				if base == nil {
					base = cInt
				}
				continue
			case "long":
				p.pos++
				longCount++
				base = cLong
				continue
			case "float":
				p.pos++
				base = &Prim{CFloat}
				continue
			case "double":
				p.pos++
				base = cDouble
				continue
			case "struct":
				p.pos++
				st, err := p.parseStruct(false)
				if err != nil {
					return nil, err
				}
				base = st
				continue
			case "union":
				p.pos++
				st, err := p.parseStruct(true)
				if err != nil {
					return nil, err
				}
				base = st
				continue
			case "enum":
				p.pos++
				if err := p.parseEnum(); err != nil {
					return nil, err
				}
				base = cInt
				continue
			}
		}
		if t.kind == tIdent && base == nil && !sawSign {
			if td, ok := p.typedefs[t.text]; ok {
				p.pos++
				base = td
				continue
			}
		}
		break
	}
	if base == nil {
		if sawSign || longCount > 0 {
			base = cInt
		} else {
			return nil, p.errf(p.peek(), "expected a type, found %s", p.peek())
		}
	}
	return base, nil
}

// parseStruct parses "struct Name", "struct Name { ... }", or
// "struct { ... }" (and the union equivalents when isUnion is set).
func (p *parser) parseStruct(isUnion bool) (*StructRef, error) {
	name := ""
	if t := p.peek(); t.kind == tIdent {
		name = t.text
		p.pos++
	}
	if !p.acceptPunct("{") {
		if name == "" {
			return nil, p.errf(p.peek(), "anonymous struct requires a body")
		}
		def := p.structs[name]
		if def == nil {
			// Forward reference: create an empty def to be filled later.
			def = &StructDef{Name: name, Union: isUnion}
			p.structs[name] = def
			p.file.Structs = append(p.file.Structs, def)
		}
		return &StructRef{Name: name, Def: def}, nil
	}
	if name == "" {
		p.anonSeq++
		name = fmt.Sprintf("anon%d", p.anonSeq)
	}
	def := p.structs[name]
	if def == nil {
		def = &StructDef{Name: name, Union: isUnion}
		p.structs[name] = def
		p.file.Structs = append(p.file.Structs, def)
	}
	def.Union = isUnion
	if len(def.Fields) > 0 {
		return nil, p.errf(p.peek(), "struct %s redefined", name)
	}
	for !p.acceptPunct("}") {
		base, err := p.parseSpecifiers(nil)
		if err != nil {
			return nil, err
		}
		for {
			fname, ft, err := p.parseDeclarator(base, false)
			if err != nil {
				return nil, err
			}
			if fname == "" {
				return nil, p.errf(p.peek(), "struct field needs a name")
			}
			def.Fields = append(def.Fields, Field{Name: fname, Type: ft})
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
	}
	return &StructRef{Name: name, Def: def}, nil
}

// parseEnum parses "enum [Name] [{ A [= n], B, ... }]", registering the
// enumerators as integer constants.
func (p *parser) parseEnum() error {
	if t := p.peek(); t.kind == tIdent {
		p.pos++ // enum tag names are accepted and ignored
	}
	if !p.acceptPunct("{") {
		return nil
	}
	next := int64(0)
	first := true
	for !p.acceptPunct("}") {
		if !first {
			if err := p.expectPunct(","); err != nil {
				return err
			}
			if p.acceptPunct("}") { // trailing comma
				return nil
			}
		}
		first = false
		t := p.next()
		if t.kind != tIdent {
			return p.errf(t, "expected an enumerator name, found %s", t)
		}
		if p.acceptPunct("=") {
			vt := p.next()
			neg := false
			if vt.kind == tPunct && vt.text == "-" {
				neg = true
				vt = p.next()
			}
			if vt.kind != tInt {
				return p.errf(vt, "enumerator value must be an integer")
			}
			v, err := strconv.ParseInt(vt.text, 0, 64)
			if err != nil {
				return p.errf(vt, "bad enumerator value %q", vt.text)
			}
			if neg {
				v = -v
			}
			next = v
		}
		if p.enumConsts == nil {
			p.enumConsts = map[string]int64{}
		}
		p.enumConsts[t.text] = next
		next++
	}
	return nil
}

// declParts is the parsed shape of a C declarator.
type declParts struct {
	stars    int
	name     string
	inner    *declParts
	suffixes []declSuffix
}

type declSuffix struct {
	isArray bool
	arrLen  int
	params  []CType
	names   []string
	varArg  bool
}

// parseDeclarator parses a (possibly abstract) declarator over base and
// returns the declared name (may be empty when abstract) and full type.
// Parameter names, if any, are attached via lastParams.
func (p *parser) parseDeclarator(base CType, abstract bool) (string, CType, error) {
	parts, err := p.parseDeclParts(abstract)
	if err != nil {
		return "", nil, err
	}
	name, t := applyDeclParts(parts, base)
	p.lastParams = collectParamNames(parts)
	return name, t, nil
}

func collectParamNames(d *declParts) []string {
	for _, s := range d.suffixes {
		if !s.isArray {
			return s.names
		}
	}
	if d.inner != nil {
		return collectParamNames(d.inner)
	}
	return nil
}

func applyDeclParts(d *declParts, base CType) (string, CType) {
	t := base
	for i := 0; i < d.stars; i++ {
		t = &Ptr{Elem: t}
	}
	for i := len(d.suffixes) - 1; i >= 0; i-- {
		s := d.suffixes[i]
		if s.isArray {
			t = &Arr{Elem: t, Len: s.arrLen}
		} else {
			t = &FuncCT{Ret: t, Params: s.params, Variadic: s.varArg}
		}
	}
	if d.inner != nil {
		return applyDeclParts(d.inner, t)
	}
	return d.name, t
}

func (p *parser) parseDeclParts(abstract bool) (*declParts, error) {
	d := &declParts{}
	for p.acceptPunct("*") {
		d.stars++
		for p.acceptKeyword("const") {
		}
	}
	t := p.peek()
	switch {
	case t.kind == tIdent:
		if _, isTD := p.typedefs[t.text]; !isTD {
			d.name = t.text
			p.pos++
		}
	case t.kind == tPunct && t.text == "(":
		// Nested declarator iff followed by '*' or '(' (otherwise it is a
		// function-parameter suffix of an abstract declarator).
		nt := p.peek2()
		if nt.kind == tPunct && (nt.text == "*" || nt.text == "(") {
			p.pos++
			inner, err := p.parseDeclParts(abstract)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			d.inner = inner
		} else if nt.kind == tIdent {
			if _, isTD := p.typedefs[nt.text]; !isTD {
				// "(name..." is a nested declarator too.
				p.pos++
				inner, err := p.parseDeclParts(abstract)
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				d.inner = inner
			}
		}
	}
	for {
		switch {
		case p.acceptPunct("["):
			ln := 0
			if t := p.peek(); t.kind == tInt {
				v, _ := strconv.ParseInt(t.text, 0, 64)
				ln = int(v)
				p.pos++
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			d.suffixes = append(d.suffixes, declSuffix{isArray: true, arrLen: ln})
		case p.acceptPunct("("):
			sfx := declSuffix{}
			if p.acceptPunct(")") {
				d.suffixes = append(d.suffixes, sfx)
				continue
			}
			// "(void)" means no parameters.
			if p.peek().kind == tKeyword && p.peek().text == "void" &&
				p.peek2().kind == tPunct && p.peek2().text == ")" {
				p.pos += 2
				d.suffixes = append(d.suffixes, sfx)
				continue
			}
			for {
				if p.acceptPunct(".") {
					// "..." lexes as three dots.
					if err := p.expectPunct("."); err != nil {
						return nil, err
					}
					if err := p.expectPunct("."); err != nil {
						return nil, err
					}
					sfx.varArg = true
					break
				}
				pbase, err := p.parseSpecifiers(nil)
				if err != nil {
					return nil, err
				}
				pname, pt, err := p.parseDeclarator(pbase, true)
				if err != nil {
					return nil, err
				}
				sfx.params = append(sfx.params, pt)
				sfx.names = append(sfx.names, pname)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			d.suffixes = append(d.suffixes, sfx)
		default:
			return d, nil
		}
	}
}

// parseTopDeclarators parses the declarator list of a top-level
// declaration, handling function definitions.
func (p *parser) parseTopDeclarators(base CType, storage Storage) error {
	first := true
	for {
		name, t, err := p.parseDeclarator(base, false)
		if err != nil {
			return err
		}
		if name == "" {
			return p.errf(p.peek(), "declaration needs a name")
		}
		if ft, isFunc := t.(*FuncCT); isFunc {
			// Capture parameter names now: parsing the body (or the next
			// declarator) reuses the same scratch slot.
			params := p.lastParamsFor(name)
			if first && p.peek().kind == tPunct && p.peek().text == "{" {
				// Function definition.
				line := p.peek().line
				body, err := p.parseBlock()
				if err != nil {
					return err
				}
				p.file.Funcs = append(p.file.Funcs, &FuncDef{
					Name: name, Type: ft, Params: params,
					Body: body, Storage: storage, Line: line,
				})
				return nil
			}
			// Prototype.
			p.file.Funcs = append(p.file.Funcs, &FuncDef{
				Name: name, Type: ft, Params: params,
				Storage: ExternStorage, Line: p.peek().line,
			})
		} else {
			var init Expr
			if p.acceptPunct("=") {
				init, err = p.parseInitializer()
				if err != nil {
					return err
				}
			}
			p.file.Globals = append(p.file.Globals, &VarDecl{
				Name: name, Type: t, Init: init, Storage: storage,
				Line: p.peek().line,
			})
		}
		first = false
		if p.acceptPunct(",") {
			continue
		}
		return p.expectPunct(";")
	}
}

func (p *parser) lastParamsFor(string) []string { return p.lastParams }
