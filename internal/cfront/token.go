// Package cfront is a frontend for a C subset ("mini-C") that lowers to
// MIR. It supports the language constructs that matter to a points-to
// analysis: pointers, arrays, structs, address-of and dereference, function
// pointers and indirect calls, static/extern linkage, pointer-integer
// casts, and the standard allocation functions. It stands in for clang in
// this reproduction, letting the examples and tests analyze real C source
// such as the paper's Figure 1.
package cfront

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tKeyword
	tInt
	tFloat
	tChar
	tString
	tPunct
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "unsigned": true, "signed": true,
	"struct": true, "union": true, "enum": true,
	"static": true, "extern": true, "const": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"switch": true, "case": true, "default": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
	"typedef": true, "NULL": true,
}

// multi-character punctuation, longest first.
var punct2 = []string{
	"->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, &lexError{line, "unterminated comment"}
			}
			i += 2
		case c == '#':
			// Preprocessor lines are ignored (the mini-C frontend takes
			// already-preprocessed input).
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '"':
			i++
			var sb strings.Builder
			for i < n && src[i] != '"' {
				if src[i] == '\n' {
					return nil, &lexError{line, "newline in string literal"}
				}
				if src[i] == '\\' && i+1 < n {
					i++
					sb.WriteByte(unescape(src[i]))
				} else {
					sb.WriteByte(src[i])
				}
				i++
			}
			if i >= n {
				return nil, &lexError{line, "unterminated string literal"}
			}
			i++
			toks = append(toks, token{tString, sb.String(), line})
		case c == '\'':
			i++
			if i >= n {
				return nil, &lexError{line, "unterminated character literal"}
			}
			var ch byte
			if src[i] == '\\' && i+1 < n {
				i++
				ch = unescape(src[i])
			} else {
				ch = src[i]
			}
			i++
			if i >= n || src[i] != '\'' {
				return nil, &lexError{line, "unterminated character literal"}
			}
			i++
			toks = append(toks, token{tChar, string(ch), line})
		case isDigit(c):
			start := i
			isFloat := false
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				i += 2
				for i < n && isHexDigit(src[i]) {
					i++
				}
			} else {
				for i < n && isDigit(src[i]) {
					i++
				}
				if i < n && src[i] == '.' {
					isFloat = true
					i++
					for i < n && isDigit(src[i]) {
						i++
					}
				}
				if i < n && (src[i] == 'e' || src[i] == 'E') {
					j := i + 1
					if j < n && (src[j] == '+' || src[j] == '-') {
						j++
					}
					if j < n && isDigit(src[j]) {
						isFloat = true
						i = j
						for i < n && isDigit(src[i]) {
							i++
						}
					}
				}
			}
			numEnd := i
			// Integer/float suffixes (dropped from the token text).
			for i < n && (src[i] == 'u' || src[i] == 'U' || src[i] == 'l' || src[i] == 'L' ||
				src[i] == 'f' || src[i] == 'F') {
				if src[i] == 'f' || src[i] == 'F' {
					isFloat = true
				}
				i++
			}
			kind := tInt
			if isFloat {
				kind = tFloat
			}
			toks = append(toks, token{kind, src[start:numEnd], line})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			kind := tIdent
			if keywords[word] {
				kind = tKeyword
			}
			toks = append(toks, token{kind, word, line})
		default:
			matched := false
			for _, p2 := range punct2 {
				if strings.HasPrefix(src[i:], p2) {
					toks = append(toks, token{tPunct, p2, line})
					i += len(p2)
					matched = true
					break
				}
			}
			if matched {
				break
			}
			if strings.ContainsRune("+-*/%<>=!&|^~?:;,.(){}[]", rune(c)) {
				toks = append(toks, token{tPunct, string(c), line})
				i++
				break
			}
			return nil, &lexError{line, fmt.Sprintf("unexpected character %q", string(c))}
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	default:
		return c
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
