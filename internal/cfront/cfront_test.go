package cfront

import (
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

// figure1C is the paper's Figure 1, verbatim C.
const figure1C = `
static int x, y;
int z;
extern int* getPtr();

int* p = &x;

void callMe(int* q) {
    int w;
    int* r = getPtr();
    if (r == NULL)
        r = &w;
}
`

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.Print(m))
	}
	return m
}

func TestCompileFigure1(t *testing.T) {
	m := compile(t, figure1C)
	for _, name := range []string{"x", "y", "z", "p"} {
		if m.Global(name) == nil {
			t.Fatalf("missing global %s", name)
		}
	}
	if m.Global("x").Linkage != ir.Internal || m.Global("z").Linkage != ir.Exported {
		t.Fatal("wrong linkage for x/z")
	}
	if g := m.Global("p"); g.Init != m.Global("x") {
		t.Fatalf("p should be initialized to &x, got %v", g.Init)
	}
	gp := m.Func("getPtr")
	if gp == nil || !gp.IsDecl() {
		t.Fatal("getPtr must be a declaration")
	}
	cm := m.Func("callMe")
	if cm == nil || cm.IsDecl() || cm.Linkage != ir.Exported {
		t.Fatal("callMe must be an exported definition")
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	// The complete pipeline: C → MIR → constraints → solution, checking
	// the paper's introduction claims.
	m := compile(t, figure1C)
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())

	xMem := g.MemOf[m.Global("x")]
	yMem := g.MemOf[m.Global("y")]
	zMem := g.MemOf[m.Global("z")]
	pMem := g.MemOf[m.Global("p")]

	has := func(v core.VarID, x core.VarID) bool {
		for _, t := range sol.PointsTo(v) {
			if t == x {
				return true
			}
		}
		return false
	}
	if !has(pMem, xMem) || !has(pMem, zMem) || !sol.PointsToExternal(pMem) {
		t.Fatalf("Sol(p) must include x, z, Ω: %v", sol.PointsTo(pMem))
	}
	if has(pMem, yMem) {
		t.Fatal("Sol(p) must exclude y")
	}
	if sol.Escaped(yMem) {
		t.Fatal("static y must not escape")
	}
	// w (the only alloca in callMe) must not escape.
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpAlloca {
			if mem, ok := g.MemOf[in]; ok && in.Ty == ir.I32 {
				if sol.Escaped(mem) {
					t.Fatalf("local %s escaped", g.Problem.Names[mem])
				}
			}
		}
	})
}

func TestStructsAndLinkedList(t *testing.T) {
	src := `
struct node {
    int value;
    struct node *next;
};

static struct node *head;

void push(struct node *n) {
    n->next = head;
    head = n;
}

int sum() {
    int total = 0;
    struct node *cur;
    for (cur = head; cur != NULL; cur = cur->next) {
        total += cur->value;
    }
    return total;
}
`
	m := compile(t, src)
	if m.Struct("node") == nil {
		t.Fatal("struct node not lowered")
	}
	st := m.Struct("node")
	if len(st.Fields) != 2 || !ir.PointerCompatible(st) {
		t.Fatalf("struct node fields wrong: %v", st.Fields)
	}
	// Run the analysis; head must not escape (static, no external calls).
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	if sol.Escaped(g.MemOf[m.Global("head")]) {
		t.Fatal("static head must not escape in a module without external calls")
	}
}

func TestFunctionPointers(t *testing.T) {
	src := `
static int doubler(int v) { return v + v; }
static int (*op)(int) = doubler;

int apply(int v) {
    return op(v);
}

int applyPtr(int (*f)(int), int v) {
    return f(v);
}
`
	m := compile(t, src)
	op := m.Global("op")
	if op == nil || op.Init != m.Func("doubler") {
		t.Fatal("function pointer initializer")
	}
	// The indirect call through op must resolve to doubler in the
	// points-to solution.
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	found := false
	for _, x := range sol.PointsTo(g.MemOf[op]) {
		if x == g.MemOf[m.Func("doubler")] {
			found = true
		}
	}
	if !found {
		t.Fatal("op must point to doubler")
	}
}

func TestMallocAndCasts(t *testing.T) {
	src := `
extern void *malloc(long n);
extern void free(void *p);

struct box { int **handle; };

int **make(int n) {
    int **arr = (int**)malloc(sizeof(int*) * n);
    int i;
    for (i = 0; i < n; i = i + 1) {
        arr[i] = (int*)malloc(sizeof(int));
    }
    return arr;
}

long expose(int *p) {
    long addr = (long)p;
    return addr;
}

int *recreate(long addr) {
    return (int*)addr;
}
`
	m := compile(t, src)
	// ptrtoint and inttoptr must appear.
	var sawP2I, sawI2P bool
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpPtrToInt:
			sawP2I = true
		case ir.OpIntToPtr:
			sawI2P = true
		}
	})
	if !sawP2I || !sawI2P {
		t.Fatal("pointer-integer casts not lowered")
	}
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	// recreate's result must point to external memory (unknown origin).
	ret := g.RetOf[m.Func("recreate")]
	if !sol.PointsToExternal(ret) {
		t.Fatal("inttoptr result must have unknown origin")
	}
}

func TestControlFlowLowering(t *testing.T) {
	src := `
int classify(int v) {
    int r = 0;
    if (v > 10) { r = 1; } else if (v > 0) { r = 2; } else { r = 3; }
    while (v > 0) { v = v - 1; r += 1; if (r > 100) break; }
    do { r = r - 1; } while (r > 50);
    for (;;) { if (r < 10) break; r = r / 2; }
    return v > 0 && r < 5 || v == 0 ? r : -r;
}
`
	m := compile(t, src)
	f := m.Func("classify")
	if len(f.Blocks) < 10 {
		t.Fatalf("expected rich control flow, got %d blocks", len(f.Blocks))
	}
	// Every block terminated (Verify checks, but assert explicitly).
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			t.Fatalf("block %s unterminated", b.BName)
		}
	}
}

func TestArraysAndStrings(t *testing.T) {
	src := `
static char buffer[64];
static char *names[4];

void setName(int i, char *n) {
    names[i] = n;
}

char *greeting() {
    return "hello";
}

char *bufferPtr() {
    return &buffer[8];
}
`
	m := compile(t, src)
	if g := m.Global("buffer"); g == nil {
		t.Fatal("buffer missing")
	} else if at, ok := g.Elem.(*ir.ArrayType); !ok || at.Len != 64 {
		t.Fatalf("buffer type: %v", g.Elem)
	}
	// A string literal global must exist.
	foundStr := false
	for _, gl := range m.Globals {
		if strings.HasPrefix(gl.GName, "str.") {
			foundStr = true
			if gl.Linkage != ir.Internal {
				t.Fatal("string literal must be internal")
			}
		}
	}
	if !foundStr {
		t.Fatal("string literal not interned")
	}
	// greeting's result points to the string global.
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	ret := g.RetOf[m.Func("greeting")]
	if len(sol.PointsTo(ret)) == 0 {
		t.Fatal("greeting returns no pointees")
	}
}

func TestTypedefAndSizeof(t *testing.T) {
	src := `
typedef struct pair { int a; int b; } pair_t;
typedef pair_t *pair_ptr;

static pair_t global_pair;

long size() { return sizeof(pair_t); }

pair_ptr get() { return &global_pair; }
`
	m := compile(t, src)
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	ret := g.RetOf[m.Func("get")]
	want := g.MemOf[m.Global("global_pair")]
	found := false
	for _, x := range sol.PointsTo(ret) {
		if x == want {
			found = true
		}
	}
	if !found {
		t.Fatal("get() must return &global_pair")
	}
}

func TestStructCopyUsesMemcpy(t *testing.T) {
	src := `
struct big { int *p; int data[8]; };
static struct big a, b;

void copy() {
    a = b;
}
`
	m := compile(t, src)
	saw := false
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpMemcpy {
			saw = true
		}
	})
	if !saw {
		t.Fatal("struct assignment must lower to memcpy")
	}
	// The copy transfers pointees: store into b.p, then a.p sees it.
	src2 := `
struct big { int *p; };
static struct big a, b;
static int target;

int *read() {
    b.p = &target;
    a = b;
    return a.p;
}
`
	m2 := compile(t, src2)
	g := core.Generate(m2)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	ret := g.RetOf[m2.Func("read")]
	want := g.MemOf[m2.Global("target")]
	found := false
	for _, x := range sol.PointsTo(ret) {
		if x == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("struct copy must transfer pointees: %v", sol.Dump())
	}
}

func TestParserErrors(t *testing.T) {
	cases := []struct{ name, src, frag string }{
		{"bad token", "int x = $;", "unexpected character"},
		{"missing semi", "int f() { return 1 }", "expected"},
		{"unknown ident", "int f() { return nope; }", "unknown identifier"},
		{"bad deref", "int f(int x) { return *x; }", "dereference of non-pointer"},
		{"bad member", "int f(int x) { return x.f; }", "member access on non-struct"},
		{"break outside", "int f() { break; }", "break outside"},
		{"undeclared call", "int f() { return g(); }", "undeclared function"},
		{"unterminated comment", "/* oops", "unterminated comment"},
		{"unterminated string", "char *s = \"abc;", "unterminated string"},
	}
	for _, c := range cases {
		_, err := Compile("t", c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func TestRoundTripThroughIRText(t *testing.T) {
	m := compile(t, figure1C)
	text := ir.Print(m)
	m2, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if ir.Print(m2) != text {
		t.Fatal("compiled module does not round-trip through MIR text")
	}
}

func TestNestedDeclarators(t *testing.T) {
	src := `
int (*handlers[4])(int);
static int h0(int v) { return v; }

void init() {
    handlers[0] = h0;
}

int dispatch(int i, int v) {
    return handlers[i](v);
}
`
	m := compile(t, src)
	g := m.Global("handlers")
	if g == nil {
		t.Fatal("handlers missing")
	}
	at, ok := g.Elem.(*ir.ArrayType)
	if !ok || at.Len != 4 || !ir.PointerCompatible(at) {
		t.Fatalf("handlers type wrong: %v", g.Elem)
	}
	// dispatch's indirect call must resolve to h0.
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())
	hMem := gen.MemOf[m.Global("handlers")]
	want := gen.MemOf[m.Func("h0")]
	found := false
	for _, x := range sol.PointsTo(hMem) {
		if x == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("handlers must contain h0: %v", sol.Dump())
	}
}

func TestPointerArithmetic(t *testing.T) {
	src := `
int *advance(int *p, int n) {
    return p + n;
}
int *retreat(int *p) {
    return p - 1;
}
long distance(int *a, int *b) {
    return a - b;
}
`
	m := compile(t, src)
	sawGEP := 0
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpGEP {
			sawGEP++
		}
	})
	if sawGEP < 2 {
		t.Fatalf("pointer arithmetic must lower to gep, saw %d", sawGEP)
	}
	// advance preserves points-to sets (field-insensitive).
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	f := m.Func("advance")
	ret := g.RetOf[f]
	// Parameters of exported functions have unknown origins.
	if !sol.PointsToExternal(ret) {
		t.Fatal("advance's result should carry the parameter's unknown origin")
	}
}
