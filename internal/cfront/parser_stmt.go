package cfront

// Statement parsing.

func (p *parser) parseBlock() (*Block, error) {
	line := p.peek().line
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	blk := &Block{Line: line}
	for !p.acceptPunct("}") {
		if p.peek().kind == tEOF {
			return nil, p.errf(p.peek(), "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.kind == tPunct && t.text == "{":
		return p.parseBlock()
	case t.kind == tPunct && t.text == ";":
		p.pos++
		return &Block{Line: t.line}, nil
	case p.acceptKeyword("if"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.acceptKeyword("else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{C: c, Then: then, Else: els, Line: t.line}, nil
	case p.acceptKeyword("while"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &While{C: c, Body: body, Line: t.line}, nil
	case p.acceptKeyword("do"):
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("while") {
			return nil, p.errf(p.peek(), "expected while after do body")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &While{C: c, Body: body, Post: true, Line: t.line}, nil
	case p.acceptKeyword("for"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.acceptPunct(";") {
			var err error
			if p.isTypeStart() {
				init, err = p.parseDeclStmt()
			} else {
				var x Expr
				x, err = p.parseExpr()
				if err == nil {
					init = &ExprStmt{X: x, Line: t.line}
					err = p.expectPunct(";")
				}
			}
			if err != nil {
				return nil, err
			}
		}
		var cond Expr
		if !p.acceptPunct(";") {
			var err error
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
		var step Expr
		if p.peek().kind != tPunct || p.peek().text != ")" {
			var err error
			step, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &For{Init: init, Cond: cond, Step: step, Body: body, Line: t.line}, nil
	case p.acceptKeyword("switch"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		sw := &Switch{X: x, Line: t.line}
		curIdx := -1
		for !p.acceptPunct("}") {
			ct := p.peek()
			switch {
			case p.acceptKeyword("case"):
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				sw.Cases = append(sw.Cases, SwitchCase{Val: val, Line: ct.line})
				curIdx = len(sw.Cases) - 1
			case p.acceptKeyword("default"):
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				sw.Cases = append(sw.Cases, SwitchCase{Line: ct.line})
				curIdx = len(sw.Cases) - 1
			default:
				if curIdx < 0 {
					return nil, p.errf(ct, "statement before first case label")
				}
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				sw.Cases[curIdx].Body = append(sw.Cases[curIdx].Body, s)
			}
		}
		return sw, nil
	case p.acceptKeyword("return"):
		if p.acceptPunct(";") {
			return &Return{Line: t.line}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Return{X: x, Line: t.line}, nil
	case p.acceptKeyword("break"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Break{Line: t.line}, nil
	case p.acceptKeyword("continue"):
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Continue{Line: t.line}, nil
	case p.isTypeStart():
		return p.parseDeclStmt()
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Line: t.line}, nil
	}
}

// parseDeclStmt parses a local declaration statement (consumes ';').
func (p *parser) parseDeclStmt() (Stmt, error) {
	line := p.peek().line
	storage := DefaultStorage
	base, err := p.parseSpecifiers(&storage)
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{Line: line}
	for {
		name, t, err := p.parseDeclarator(base, false)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf(p.peek(), "declaration needs a name")
		}
		var init Expr
		if p.acceptPunct("=") {
			init, err = p.parseInitializer()
			if err != nil {
				return nil, err
			}
		}
		ds.Vars = append(ds.Vars, &VarDecl{Name: name, Type: t, Init: init, Storage: storage, Line: line})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return ds, nil
}
