package cfront

import (
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

func TestSwitchLowering(t *testing.T) {
	src := `
int classify(int v) {
    int r;
    switch (v) {
    case 0:
        r = 10;
        break;
    case 1:
    case 2:
        r = 20;
        break;
    case 3:
        r = 30;
        /* fallthrough */
    default:
        r = 40;
    }
    return r;
}
`
	m := compile(t, src)
	f := m.Func("classify")
	if len(f.Blocks) < 8 {
		t.Fatalf("switch should produce many blocks, got %d", len(f.Blocks))
	}
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			t.Fatalf("block %s unterminated", b.BName)
		}
	}
}

func TestSwitchOnPointersStillAnalyzes(t *testing.T) {
	src := `
static int a, b;

int *choose(int k) {
    int *r = NULL;
    switch (k) {
    case 1: r = &a; break;
    case 2: r = &b; break;
    }
    return r;
}
`
	m := compile(t, src)
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	ret := g.RetOf[m.Func("choose")]
	got := map[string]bool{}
	for _, x := range sol.PointsTo(ret) {
		got[g.Problem.Names[x]] = true
	}
	if !got["@a"] || !got["@b"] {
		t.Fatalf("choose must return &a or &b: %v", got)
	}
}

func TestUnionMembersOverlap(t *testing.T) {
	src := `
union box {
    long num;
    int *ptr;
};

static int target;

long launder() {
    union box b;
    b.ptr = &target;
    return b.num;
}
`
	m := compile(t, src)
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	// Reading the pointer back as a long is pointer smuggling through the
	// union: target must be exposed.
	if !sol.Escaped(g.MemOf[m.Global("target")]) {
		t.Fatalf("union-laundered pointer target must escape:\n%s", sol.Dump())
	}
}

func TestUnionAliasSoundness(t *testing.T) {
	// Distinct union members must NOT be reported NoAlias (they overlap).
	src := `
union u { long a; long b; };
static union u shared;

void touch() {
    shared.a = 1;
    shared.b = 2;
}
`
	m := compile(t, src)
	// Find the two store instructions and query BasicAA.
	var stores []*ir.Instr
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpStore {
			stores = append(stores, in)
		}
	})
	if len(stores) != 2 {
		t.Fatalf("want 2 stores, got %d", len(stores))
	}
	// Both stores hit the same address (offset 0 of the union).
	if stores[0].Args[1] != stores[1].Args[1] {
		// Different SSA values are fine as long as they decompose to the
		// same base+offset; the alias package tests cover that. Here we
		// just require both addresses to be the union global itself.
		t.Logf("store addrs: %v, %v", stores[0].Args[1].Ident(), stores[1].Args[1].Ident())
	}
}

func TestEnumConstants(t *testing.T) {
	src := `
enum mode { MODE_OFF, MODE_ON = 5, MODE_AUTO };

int pick(int m) {
    switch (m) {
    case MODE_OFF: return 0;
    case MODE_ON: return 1;
    case MODE_AUTO: return 2;
    }
    return MODE_ON + MODE_AUTO;
}
`
	m := compile(t, src)
	// MODE_ON + MODE_AUTO = 5 + 6 = 11; check the constants resolved by
	// finding an 11 in the IR... simpler: check the module compiled and
	// the function exists with blocks.
	f := m.Func("pick")
	if f == nil || len(f.Blocks) < 5 {
		t.Fatal("enum switch did not lower")
	}
	text := ir.Print(m)
	if !strings.Contains(text, "5:i32") || !strings.Contains(text, "6:i32") {
		t.Fatalf("enum values not substituted:\n%s", text)
	}
}

func TestStaticLocals(t *testing.T) {
	src := `
static int seed;

int *counter_addr() {
    static int counter = 7;
    counter = counter + 1;
    return &counter;
}

int other() {
    static int counter;    /* distinct from the one above */
    return counter;
}
`
	m := compile(t, src)
	g1 := m.Global("counter_addr.counter")
	g2 := m.Global("other.counter")
	if g1 == nil || g2 == nil {
		var names []string
		for _, gl := range m.Globals {
			names = append(names, gl.GName)
		}
		t.Fatalf("static locals not hoisted: %v", names)
	}
	if g1.Linkage != ir.Internal || g2.Linkage != ir.Internal {
		t.Fatal("static locals must have internal linkage")
	}
	ci, ok := g1.Init.(*ir.ConstInt)
	if !ok || ci.Val != 7 {
		t.Fatalf("static initializer lost: %v", g1.Init)
	}
	// The returned address must point to the hoisted global.
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())
	ret := gen.RetOf[m.Func("counter_addr")]
	pts := sol.PointsTo(ret)
	if len(pts) != 1 || pts[0] != gen.MemOf[g1] {
		t.Fatalf("counter_addr must return its static: %v", pts)
	}
}

func TestFunctionPointerTable(t *testing.T) {
	src := `
static int h0(int v) { return v; }
static int h1(int v) { return v + 1; }

static int (*table[2])(int) = { h0, h1 };

int dispatch(int i, int v) {
    return table[i](v);
}
`
	m := compile(t, src)
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())
	tab := gen.MemOf[m.Global("table")]
	got := map[string]bool{}
	for _, x := range sol.PointsTo(tab) {
		got[gen.Problem.Names[x]] = true
	}
	if !got["@h0"] || !got["@h1"] {
		t.Fatalf("initializer list must populate the table: %v", got)
	}
	if sol.PointsToExternal(tab) {
		t.Fatal("private table must not hold unknown pointers")
	}
}

func TestLocalInitLists(t *testing.T) {
	src := `
static int a, b;

struct pair { int *x; int *y; };

int *second() {
    int *arr[2] = { &a, &b };
    struct pair p = { &a, &b };
    return p.y ? p.y : arr[1];
}
`
	m := compile(t, src)
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())
	ret := gen.RetOf[m.Func("second")]
	got := map[string]bool{}
	for _, x := range sol.PointsTo(ret) {
		got[gen.Problem.Names[x]] = true
	}
	if !got["@b"] {
		t.Fatalf("local initializer lists must flow: %v", got)
	}
}

func TestGlobalStructInitializer(t *testing.T) {
	src := `
static int x;

struct cfg { int level; int *probe; };

static struct cfg defaults = { 3, &x };

int *probe_addr() {
    return defaults.probe;
}
`
	m := compile(t, src)
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())
	ret := gen.RetOf[m.Func("probe_addr")]
	got := map[string]bool{}
	for _, xx := range sol.PointsTo(ret) {
		got[gen.Problem.Names[xx]] = true
	}
	if !got["@x"] {
		t.Fatalf("struct initializer must populate pointees: %v", got)
	}
}

func TestEnumTrailingCommaAndNegative(t *testing.T) {
	src := `
enum e { NEG = -2, NEXT, };
int v() { return NEXT; }
`
	m := compile(t, src)
	if !strings.Contains(ir.Print(m), "-1:i32") {
		t.Fatalf("negative enum progression failed:\n%s", ir.Print(m))
	}
}

func TestExternLocalDeclaration(t *testing.T) {
	src := `
int use() {
    extern int shared_state;
    return shared_state;
}
`
	m := compile(t, src)
	g := m.Global("shared_state")
	if g == nil || g.Linkage != ir.Declared {
		t.Fatal("extern local must declare the real symbol")
	}
}

func TestPointerCompoundAssignAndIncrement(t *testing.T) {
	src := `
int consume(int *p, int n) {
    int s = 0;
    p += 2;
    s += *p;
    p++;
    s += *p;
    p -= 1;
    s += *p;
    return s;
}
`
	m := compile(t, src)
	geps := 0
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpGEP {
			geps++
		}
	})
	if geps < 3 {
		t.Fatalf("pointer compound assignment must lower to geps, saw %d", geps)
	}
	g := core.Generate(m)
	if err := g.Problem.Validate(); err != nil {
		t.Fatal(err)
	}
	core.MustSolve(g.Problem, core.DefaultConfig())
}

func TestArrowChains(t *testing.T) {
	src := `
struct inner { int v; };
struct outer { struct inner *in; struct outer *next; };

int walk(struct outer *o) {
    return o->next->next->in->v;
}
`
	m := compile(t, src)
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	// Parameter of exported function: everything unknown, but it must
	// not crash and the loads must chain.
	_ = sol
	loads := 0
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpLoad {
			loads++
		}
	})
	if loads < 4 {
		t.Fatalf("arrow chain should produce ≥4 loads, saw %d", loads)
	}
}

func TestFunctionPointerCasts(t *testing.T) {
	src := `
extern void *dlsym_like(int idx);

int invoke(int idx, int v) {
    int (*f)(int) = (int(*)(int))dlsym_like(idx);
    return f(v);
}
`
	m := compile(t, src)
	g := core.Generate(m)
	sol := core.MustSolve(g.Problem, core.DefaultConfig())
	// The callee pointer has unknown origin; the call must be treated as
	// potentially external.
	var fSlot core.VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpAlloca && in.IName == "f" {
			fSlot = g.MemOf[in]
		}
	})
	if !sol.PointsToExternal(fSlot) {
		t.Fatal("cast function pointer must have unknown origin")
	}
}
