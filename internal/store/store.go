// Package store is the persistent on-disk solution store: the second
// cache tier under the engine's in-memory LRU. Entries are keyed by the
// engine's content-hash cache keys (sha256 of the printed module + the
// rendered configuration, including the |inc-g<gen> incremental and PAR
// parallel key conventions), so a restarted process rebuilds exactly the
// keys it would compute fresh and every hit is, by construction, for
// byte-identical input.
//
// The layout is a single append-only log (solutions.log): a file header
// followed by records of
//
//	recMagic u32 · keyLen u16 · key · fpHash u64 · payloadLen u32 ·
//	payload (core.Solution wire encoding) · crc32 u32 (IEEE, over
//	key+fpHash+payload)
//
// Appends never rewrite existing bytes, so a crash can only tear the
// tail; Open scans the log, keeps the last intact record per key, and
// truncates a torn tail. Compact rewrites live records to a temp file and
// atomically renames it over the log.
//
// The load path is paranoid by design — this tier survives restarts, so
// it is the one place stale or corrupt state could leak back into a sound
// analysis. Every Load re-checks the CRC, decodes through the
// bounds-checked wire reader, recomputes core.FingerprintHash, and
// compares it to the hash recorded at save time. Any mismatch is a miss,
// counted but never served; the caller simply re-solves. The store.load
// and store.save fault points inject errors and bit flips here so the
// chaos suite can pin that contract.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/faults"
)

const (
	logName    = "solutions.log"
	fileHeader = "PIPSTORE1\n"
	recMagic   = 0x50495052 // "PIPR"
	maxKeyLen  = 1 << 12
	maxPayload = 1 << 30
)

// Stats counts store traffic. Corrupt counts entries rejected on load by
// the CRC or fingerprint check — every one of them was answered by a
// re-solve, never by the bad bytes.
type Stats struct {
	Saves    int // records appended
	Skipped  int // saves skipped because the same key+fingerprint is live
	Loads    int // lookup attempts
	Hits     int // verified loads served
	Misses   int // absent keys
	Corrupt  int // present but failed CRC/decode/fingerprint verification
	SaveErrs int // failed appends (I/O or injected fault)
}

type entry struct {
	off int64 // record start offset
	len int64 // full record length
	fp  uint64
}

// Store is a persistent solution store bound to one directory. All
// methods are safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	dir   string
	f     *os.File
	size  int64 // logical end of the last intact record
	dead  int64 // bytes held by superseded records
	index map[string]entry
	stats Stats
}

// Open opens (creating if needed) the store in dir and indexes the
// existing log. A torn tail — from a crash mid-append — is truncated; the
// intact prefix stays live. If more than half of the surviving log is
// superseded records, the log is compacted in place before use.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, f: f, index: make(map[string]entry)}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	if s.dead > s.size/2 {
		if err := s.compactLocked(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// scan builds the index from the log, writing the header into an empty
// file and truncating a torn tail from a crashed one.
func (s *Store) scan() error {
	st, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if st.Size() == 0 {
		if _, err := s.f.Write([]byte(fileHeader)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.size = int64(len(fileHeader))
		return nil
	}
	hdr := make([]byte, len(fileHeader))
	if _, err := io.ReadFull(s.f, hdr); err != nil || string(hdr) != fileHeader {
		return fmt.Errorf("store: %s is not a pip solution log", logName)
	}
	off := int64(len(fileHeader))
	for off < st.Size() {
		key, e, ok := s.readRecordAt(off, st.Size())
		if !ok {
			break // torn tail: keep the intact prefix
		}
		if old, dup := s.index[key]; dup {
			s.dead += old.len
		}
		s.index[key] = e
		off += e.len
	}
	s.size = off
	if off < st.Size() {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	return nil
}

// readRecordAt parses the record frame at off without verifying the CRC
// (Load does that per-lookup; the scan only needs framing to walk the
// log). Returns ok=false when the bytes at off do not frame an intact
// record.
func (s *Store) readRecordAt(off, fileSize int64) (string, entry, bool) {
	var fixed [4 + 2]byte
	if off+int64(len(fixed)) > fileSize {
		return "", entry{}, false
	}
	if _, err := s.f.ReadAt(fixed[:], off); err != nil {
		return "", entry{}, false
	}
	if binary.LittleEndian.Uint32(fixed[:4]) != recMagic {
		return "", entry{}, false
	}
	keyLen := int64(binary.LittleEndian.Uint16(fixed[4:6]))
	if keyLen == 0 || keyLen > maxKeyLen {
		return "", entry{}, false
	}
	head := make([]byte, keyLen+8+4)
	if off+6+int64(len(head)) > fileSize {
		return "", entry{}, false
	}
	if _, err := s.f.ReadAt(head, off+6); err != nil {
		return "", entry{}, false
	}
	fp := binary.LittleEndian.Uint64(head[keyLen : keyLen+8])
	payloadLen := int64(binary.LittleEndian.Uint32(head[keyLen+8:]))
	if payloadLen > maxPayload {
		return "", entry{}, false
	}
	total := 6 + keyLen + 8 + 4 + payloadLen + 4
	if off+total > fileSize {
		return "", entry{}, false
	}
	return string(head[:keyLen]), entry{off: off, len: total, fp: fp}, true
}

// Save appends the solution under key. A save whose key is already live
// with the same fingerprint is skipped — drains flush the whole resident
// cache, and rewriting identical entries would grow the log for nothing.
// Degraded solutions must not be persisted (they encode a budget decision,
// not a fixed point); Save rejects them.
func (s *Store) Save(key string, sol *core.Solution) error {
	if sol.Degraded {
		return errors.New("store: refusing to persist a degraded solution")
	}
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range", len(key))
	}
	fp := core.FingerprintHash(sol)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[key]; ok && e.fp == fp {
		s.stats.Skipped++
		return nil
	}
	if err := faults.Inject(faults.StoreSave); err != nil {
		s.stats.SaveErrs++
		return err
	}
	payload := sol.EncodeWire()
	rec := make([]byte, 0, 6+len(key)+8+4+len(payload)+4)
	rec = binary.LittleEndian.AppendUint32(rec, recMagic)
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(key)))
	rec = append(rec, key...)
	rec = binary.LittleEndian.AppendUint64(rec, fp)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crcOf(rec[6:]))
	n, err := s.f.WriteAt(rec, s.size)
	if err != nil {
		// A partial append is a torn tail; the next Open truncates it.
		// Do not advance size, so a later Save overwrites the fragment.
		s.stats.SaveErrs++
		return fmt.Errorf("store: append (%d/%d bytes): %w", n, len(rec), err)
	}
	if old, ok := s.index[key]; ok {
		s.dead += old.len
	}
	s.index[key] = entry{off: s.size, len: int64(len(rec)), fp: fp}
	s.size += int64(len(rec))
	s.stats.Saves++
	return nil
}

// crcOf is the record checksum: IEEE CRC-32 over key+fpHash+payload (the
// frame after the magic and key length).
func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// Load returns the verified solution stored under key, bound to p, or
// (nil, false) on any miss: absent key, I/O error, CRC mismatch, decode
// failure, or fingerprint mismatch. A failed verification never returns
// bytes to the caller.
func (s *Store) Load(key string, p *core.Problem) (*core.Solution, bool) {
	s.mu.Lock()
	s.stats.Loads++
	e, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()

	sol, err := s.loadEntry(key, e, p)
	if err != nil {
		s.mu.Lock()
		s.stats.Corrupt++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return sol, true
}

func (s *Store) loadEntry(key string, e entry, p *core.Problem) (*core.Solution, error) {
	if err := faults.Inject(faults.StoreLoad); err != nil {
		return nil, err
	}
	rec := make([]byte, e.len)
	if _, err := s.f.ReadAt(rec, e.off); err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	body := rec[6 : len(rec)-4] // key+fp+payload
	if faults.ShouldCorrupt(faults.StoreLoad) {
		// Deterministic single-byte disk corruption for the chaos suite:
		// flip a payload byte in our private copy of the record.
		body[len(body)-1] ^= 0x41
	}
	if crcOf(body) != binary.LittleEndian.Uint32(rec[len(rec)-4:]) {
		return nil, errors.New("store: CRC mismatch")
	}
	if string(body[:len(key)]) != key {
		return nil, errors.New("store: key mismatch at indexed offset")
	}
	fp := binary.LittleEndian.Uint64(body[len(key) : len(key)+8])
	sol, err := core.DecodeSolution(p, body[len(key)+8+4:])
	if err != nil {
		return nil, err
	}
	if got := core.FingerprintHash(sol); got != fp {
		return nil, fmt.Errorf("store: fingerprint mismatch (have %x, recorded %x)", got, fp)
	}
	return sol, nil
}

// Contains reports whether key has a live record, without reading or
// verifying it.
func (s *Store) Contains(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Sync flushes the log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Compact rewrites the live records into a fresh log and atomically
// renames it over the old one, dropping superseded records.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	tmpPath := filepath.Join(s.dir, logName+".compact")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	if _, err := tmp.Write([]byte(fileHeader)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	// Deterministic record order keeps compacted logs of equal content
	// byte-identical: sort by original append offset.
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && s.index[keys[j]].off < s.index[keys[j-1]].off; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	newIndex := make(map[string]entry, len(s.index))
	off := int64(len(fileHeader))
	for _, k := range keys {
		e := s.index[k]
		rec := make([]byte, e.len)
		if _, err := s.f.ReadAt(rec, e.off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact read: %w", err)
		}
		if _, err := tmp.Write(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact write: %w", err)
		}
		newIndex[k] = entry{off: off, len: e.len, fp: e.fp}
		off += e.len
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, logName)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	s.f.Close()
	s.f = tmp
	s.index = newIndex
	s.size = off
	s.dead = 0
	return nil
}

// Close syncs and closes the log. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
