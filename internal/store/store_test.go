package store

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/ir"
)

const storeSrc = `
module "st"
global @g : ptr = zero:ptr internal
global @buf : [8 x i8] = zero:[8 x i8] internal
declare func @ext(ptr) -> ptr

func @main() -> ptr internal {
entry:
  %p = alloca ptr
  store @buf, %p
  %l = load ptr, %p
  %r = call ptr, @ext(%l)
  ret %r
}
`

func solveOne(t *testing.T, cfgStr string) (*core.Problem, *core.Solution) {
	t.Helper()
	m, err := ir.Parse(storeSrc)
	if err != nil {
		t.Fatal(err)
	}
	g := core.Generate(m)
	return g.Problem, core.MustSolve(g.Problem, core.MustParseConfig(cfgStr))
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, sol := solveOne(t, "IP+WL(FIFO)+PIP")
	s := mustOpen(t, dir)
	if err := s.Save("k1", sol); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load("k1", p)
	if !ok {
		t.Fatal("verified load missed")
	}
	if got.Fingerprint() != sol.Fingerprint() {
		t.Fatal("fingerprint changed through the store")
	}
	if _, ok := s.Load("absent", p); ok {
		t.Fatal("absent key hit")
	}
	st := s.Stats()
	if st.Saves != 1 || st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReopenIsWarm(t *testing.T) {
	dir := t.TempDir()
	p, sol := solveOne(t, "IP+WL(FIFO)+PIP")
	_, sol2 := solveOne(t, "EP+OVS+WL(LRF)+OCD")
	s := mustOpen(t, dir)
	if err := s.Save("a", sol); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("b", sol2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d entries, want 2", s2.Len())
	}
	for key, want := range map[string]*core.Solution{"a": sol, "b": sol2} {
		got, ok := s2.Load(key, p)
		if !ok {
			t.Fatalf("key %q missed after reopen", key)
		}
		if core.FingerprintHash(got) != core.FingerprintHash(want) {
			t.Fatalf("key %q: fingerprint hash changed across restart", key)
		}
	}
}

// TestOnDiskCorruptionIsAMiss flips one byte inside the first record's
// payload directly in the log file: after reopen that entry must be a
// counted miss while the untouched entry stays a verified hit.
func TestOnDiskCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	p, sol := solveOne(t, "IP+WL(FIFO)+PIP")
	_, sol2 := solveOne(t, "EP+OVS+WL(LRF)+OCD")
	s := mustOpen(t, dir)
	if err := s.Save("clean", sol2); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("dirty", sol); err != nil {
		t.Fatal(err)
	}
	s.mu.RLock()
	dirtyOff := s.index["dirty"].off
	dirtyLen := s.index["dirty"].len
	s.mu.RUnlock()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[dirtyOff+dirtyLen-8] ^= 0x01 // inside the payload, ahead of the CRC
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	if _, ok := s2.Load("dirty", p); ok {
		t.Fatal("corrupted entry was served")
	}
	if got, ok := s2.Load("clean", p); !ok {
		t.Fatal("clean entry missed")
	} else if core.FingerprintHash(got) != core.FingerprintHash(sol2) {
		t.Fatal("clean entry fingerprint drifted")
	}
	if st := s2.Stats(); st.Corrupt != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt + 1 hit", st)
	}
}

// TestLoadFaultPoint arms the store.load point: an injected error is a
// miss; an injected flip corrupts the read copy (caught by CRC) and the
// next, un-flipped load of the same key is served verified.
func TestLoadFaultPoint(t *testing.T) {
	dir := t.TempDir()
	p, sol := solveOne(t, "IP+WL(FIFO)+PIP")
	s := mustOpen(t, dir)
	if err := s.Save("k", sol); err != nil {
		t.Fatal(err)
	}

	reg, err := faults.ParseSpec("seed=7;store.load=error:@1")
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	defer faults.Disarm()
	if _, ok := s.Load("k", p); ok {
		t.Fatal("load with injected error was served")
	}
	if _, ok := s.Load("k", p); !ok {
		t.Fatal("load after the injected error missed")
	}

	reg, err = faults.ParseSpec("seed=7;store.load=flip:@1")
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	if _, ok := s.Load("k", p); ok {
		t.Fatal("flipped load was served")
	}
	if _, ok := s.Load("k", p); !ok {
		t.Fatal("load after the flip missed — corruption must not persist")
	}
	if st := s.Stats(); st.Corrupt != 2 {
		t.Fatalf("stats = %+v, want 2 corrupt (1 error + 1 flip)", st)
	}
}

func TestSaveFaultPoint(t *testing.T) {
	dir := t.TempDir()
	p, sol := solveOne(t, "IP+WL(FIFO)+PIP")
	s := mustOpen(t, dir)
	reg, err := faults.ParseSpec("seed=7;store.save=error:@1")
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	defer faults.Disarm()
	if err := s.Save("k", sol); !faults.IsFault(err) {
		t.Fatalf("Save with injected fault returned %v", err)
	}
	if s.Contains("k") {
		t.Fatal("failed save left a live index entry")
	}
	if err := s.Save("k", sol); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("k", p); !ok {
		t.Fatal("retried save did not round-trip")
	}
}

// TestTornTailTruncated crashes mid-append by chopping bytes off the log;
// reopen must keep every intact record and drop the fragment.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	p, sol := solveOne(t, "IP+WL(FIFO)+PIP")
	_, sol2 := solveOne(t, "EP+OVS+WL(LRF)+OCD")
	s := mustOpen(t, dir)
	if err := s.Save("keep", sol); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("torn", sol2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	if s2.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want the 1 intact one", s2.Len())
	}
	if _, ok := s2.Load("keep", p); !ok {
		t.Fatal("intact record lost with the torn tail")
	}
	// The truncated tail must not block new appends from round-tripping.
	if err := s2.Save("torn", sol2); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Load("torn", p); !ok || core.FingerprintHash(got) != core.FingerprintHash(sol2) {
		t.Fatal("re-append over a torn tail did not round-trip")
	}
}

func TestSupersedeAndCompact(t *testing.T) {
	dir := t.TempDir()
	p, sol := solveOne(t, "IP+WL(FIFO)+PIP")
	_, sol2 := solveOne(t, "EP+OVS+WL(LRF)+OCD")
	s := mustOpen(t, dir)
	if err := s.Save("k", sol); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k", sol2); err != nil { // supersedes
		t.Fatal(err)
	}
	if err := s.Save("k", sol2); err != nil { // identical: skipped
		t.Fatal(err)
	}
	if st := s.Stats(); st.Saves != 2 || st.Skipped != 1 {
		t.Fatalf("stats = %+v, want 2 saves + 1 skip", st)
	}
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s.Len())
	}
	before, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink the log (%d -> %d)", before.Size(), after.Size())
	}
	if got, ok := s.Load("k", p); !ok || got.Fingerprint() != sol2.Fingerprint() {
		t.Fatal("latest version lost by compaction")
	}
	// And the compacted log must survive a reopen.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if got, ok := s2.Load("k", p); !ok || got.Fingerprint() != sol2.Fingerprint() {
		t.Fatal("compacted log did not reopen warm")
	}
}

// TestAutoCompactOnOpen: a log that is mostly superseded records is
// compacted during Open.
func TestAutoCompactOnOpen(t *testing.T) {
	dir := t.TempDir()
	p, sol := solveOne(t, "IP+WL(FIFO)+PIP")
	_, sol2 := solveOne(t, "EP+OVS+WL(LRF)+OCD")
	s := mustOpen(t, dir)
	// Alternate so every save supersedes (identical saves are skipped).
	for i := 0; i < 6; i++ {
		v := sol
		if i%2 == 1 {
			v = sol2
		}
		if err := s.Save("k", v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	after, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("open did not auto-compact a mostly-dead log (%d -> %d)", before.Size(), after.Size())
	}
	if got, ok := s2.Load("k", p); !ok || got.Fingerprint() != sol2.Fingerprint() {
		t.Fatal("auto-compacted log lost the live version")
	}
}

func TestDegradedNeverPersisted(t *testing.T) {
	dir := t.TempDir()
	p, _ := solveOne(t, "IP+WL(FIFO)+PIP")
	s := mustOpen(t, dir)
	if err := s.Save("d", core.DegradedSolution(p)); err == nil {
		t.Fatal("Save accepted a degraded solution")
	}
	if s.Len() != 0 {
		t.Fatal("degraded solution reached the log")
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("not a pip log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a foreign file as the log")
	}
}
