package opt

import (
	"github.com/pip-analysis/pip/internal/alias"
	"github.com/pip-analysis/pip/internal/callgraph"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
	"github.com/pip-analysis/pip/internal/modref"
)

// Context bundles the whole-module analyses for interprocedural
// optimization: instead of treating every call as clobbering all memory,
// call sites are resolved through the call graph and their effects through
// the mod/ref summaries.
type Context struct {
	An  alias.Analysis
	Gen *core.Gen
	Sol *core.Solution
	CG  *callgraph.Graph
	MR  *modref.Analysis

	edges map[*ir.Instr]*callgraph.Edge
}

// NewContext builds the full analysis context for a module.
func NewContext(m *ir.Module, cfg core.Config) (*Context, error) {
	gen := core.Generate(m)
	sol, err := core.Solve(gen.Problem, cfg)
	if err != nil {
		return nil, err
	}
	cg := callgraph.Build(m, gen, sol)
	mr := modref.Compute(m, gen, sol, cg)
	ctx := &Context{
		An:    alias.Combined{alias.NewBasicAA(m), alias.NewAndersen(gen, sol)},
		Gen:   gen,
		Sol:   sol,
		CG:    cg,
		MR:    mr,
		edges: map[*ir.Instr]*callgraph.Edge{},
	}
	for _, node := range cg.Nodes {
		for _, e := range node.Calls {
			ctx.edges[e.Site] = e
		}
	}
	return ctx, nil
}

// ptrLocations resolves the abstract locations a pointer operand may
// reference, plus whether it may reference external/escaped memory.
func (ctx *Context) ptrLocations(ptr ir.Value) ([]core.VarID, bool) {
	for {
		in, ok := ptr.(*ir.Instr)
		if !ok || (in.Op != ir.OpGEP && in.Op != ir.OpBitcast) {
			break
		}
		ptr = in.Args[0]
	}
	switch v := ptr.(type) {
	case *ir.Global:
		return []core.VarID{ctx.Gen.MemOf[v]}, false
	case *ir.Instr:
		if v.Op == ir.OpAlloca {
			if mem, ok := ctx.Gen.MemOf[v]; ok {
				return []core.VarID{mem}, false
			}
		}
	}
	id, ok := ctx.Gen.VarOf[ptr]
	if !ok {
		return nil, true // unmodeled pointer: assume anything
	}
	var locs []core.VarID
	external := false
	for _, x := range ctx.Sol.PointsTo(id) {
		if x == core.OmegaPointee {
			external = true
			continue
		}
		locs = append(locs, x)
	}
	return locs, external
}

// callMayMod reports whether the call site may write memory overlapping
// the locations of ptr.
func (ctx *Context) callMayMod(site *ir.Instr, ptr ir.Value) bool {
	return ctx.callEffect(site, ptr, true)
}

// callMayRef reports whether the call site may read the locations of ptr.
func (ctx *Context) callMayRef(site *ir.Instr, ptr ir.Value) bool {
	return ctx.callEffect(site, ptr, false)
}

func (ctx *Context) callEffect(site *ir.Instr, ptr ir.Value, mod bool) bool {
	e := ctx.edges[site]
	if e == nil {
		return true
	}
	locs, external := ctx.ptrLocations(ptr)
	if e.External {
		// External code can only touch externally accessible memory
		// (Section III-A): module-private locations are safe even across
		// completely unknown calls.
		if external {
			return true
		}
		for _, loc := range locs {
			if ctx.Sol.Escaped(loc) {
				return true
			}
		}
		// Fall through: module-local targets of the same call site may
		// still touch the locations.
	}
	for _, target := range e.Targets {
		sum := ctx.MR.Summaries[target]
		if sum == nil {
			return true
		}
		for _, loc := range locs {
			if mod && sum.MayMod(ctx.Sol, loc) {
				return true
			}
			if !mod && sum.MayRef(ctx.Sol, loc) {
				return true
			}
		}
		if external && ((mod && sum.ModExternal) || (!mod && sum.RefExternal)) {
			return true
		}
	}
	return false
}

// RunInterproc applies both eliminations with call effects resolved
// through the mod/ref summaries.
func RunInterproc(m *ir.Module, ctx *Context) Stats {
	var s Stats
	for {
		l := eliminateRedundantLoadsCtx(m, ctx)
		d := eliminateDeadStoresCtx(m, ctx)
		s.LoadsEliminated += l
		s.StoresEliminated += d
		if l == 0 && d == 0 {
			return s
		}
	}
}

func eliminateRedundantLoadsCtx(m *ir.Module, ctx *Context) int {
	removed := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			var avail []*ir.Instr
			for ii := 0; ii < len(b.Instrs); ii++ {
				in := b.Instrs[ii]
				switch in.Op {
				case ir.OpLoad:
					matched := false
					for _, prev := range avail {
						if prev.Args[0] == in.Args[0] && ir.TypesEqual(prev.Ty, in.Ty) {
							ir.ReplaceUses(f, in, prev)
							ir.RemoveInstr(in)
							ii--
							removed++
							matched = true
							break
						}
					}
					if !matched {
						avail = append(avail, in)
					}
				case ir.OpStore, ir.OpMemcpy:
					kept := avail[:0]
					for _, prev := range avail {
						if !clobbers(ctx.An, in, prev.Args[0], ir.SizeOf(prev.Ty)) {
							kept = append(kept, prev)
						}
					}
					avail = kept
				case ir.OpCall:
					kept := avail[:0]
					for _, prev := range avail {
						if !ctx.callMayMod(in, prev.Args[0]) {
							kept = append(kept, prev)
						}
					}
					avail = kept
				}
			}
		}
	}
	return removed
}

func eliminateDeadStoresCtx(m *ir.Module, ctx *Context) int {
	removed := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for ii := 0; ii < len(b.Instrs); ii++ {
				st := b.Instrs[ii]
				if st.Op != ir.OpStore {
					continue
				}
				size := ir.SizeOf(st.Args[0].Type())
			scan:
				for j := ii + 1; j < len(b.Instrs); j++ {
					nxt := b.Instrs[j]
					switch nxt.Op {
					case ir.OpStore:
						if ir.SizeOf(nxt.Args[0].Type()) >= size &&
							ctx.An.Alias(nxt.Args[1], ir.SizeOf(nxt.Args[0].Type()), st.Args[1], size) == alias.MustAlias {
							ir.RemoveInstr(st)
							ii--
							removed++
							break scan
						}
						if clobbers(ctx.An, nxt, st.Args[1], size) {
							break scan
						}
					case ir.OpCall:
						if ctx.callMayRef(nxt, st.Args[1]) || ctx.callMayMod(nxt, st.Args[1]) {
							break scan
						}
					default:
						if reads(ctx.An, nxt, st.Args[1], size) || clobbers(ctx.An, nxt, st.Args[1], size) {
							break scan
						}
					}
				}
			}
		}
	}
	return removed
}
