package opt

import (
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/alias"
	"github.com/pip-analysis/pip/internal/cfront"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

func analyses(t *testing.T, src string) (*ir.Module, alias.Analysis, alias.Analysis) {
	t.Helper()
	m, err := cfront.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	basic := alias.NewBasicAA(m)
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())
	combined := alias.Combined{basic, alias.NewAndersen(gen, sol)}
	return m, basic, combined
}

func countOps(m *ir.Module, op ir.Op) int {
	n := 0
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

func TestRedundantLoadElimination(t *testing.T) {
	// Both loads of *p survive lowering in one block; the second is
	// redundant because the intervening store writes a provably distinct
	// object.
	src := `
static long other;

long twice(long *p) {
    long a = *p;
    other = 1;
    long b = *p;
    return a + b;
}
`
	m, _, combined := analyses(t, src)
	before := countOps(m, ir.OpLoad)
	removed := EliminateRedundantLoads(m, combined)
	if removed == 0 {
		t.Fatalf("no loads eliminated (before: %d)\n%s", before, ir.Print(m))
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("broken IR after elimination: %v", err)
	}
	if countOps(m, ir.OpLoad) != before-removed {
		t.Fatal("count mismatch")
	}
}

func TestLoadsNotEliminatedAcrossMayAlias(t *testing.T) {
	// The intervening store may alias (same points-to set): the reload
	// must survive.
	src := `
long twice(long *p, long *q) {
    long a = *p;
    *q = 1;
    long b = *p;
    return a + b;
}
`
	m, _, combined := analyses(t, src)
	// Count loads through p's slot: total loads before/after must differ
	// only by eliminations that are provably safe. Here p and q both have
	// unknown origin, so the *p reload must remain.
	text := ir.Print(m)
	EliminateRedundantLoads(m, combined)
	// We cannot eliminate the second *p load; the slot reloads (of the
	// p.addr alloca) are eliminable. Verify the transformed module still
	// contains at least two loads through the value of p.
	if err := ir.Verify(m); err != nil {
		t.Fatalf("broken IR: %v\nbefore:\n%s\nafter:\n%s", err, text, ir.Print(m))
	}
	loads := 0
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpLoad && ir.TypesEqual(in.Ty, ir.I64) {
			loads++
		}
	})
	if loads < 2 {
		t.Fatalf("may-aliasing reload was wrongly eliminated:\n%s", ir.Print(m))
	}
}

func TestAndersenEnablesMoreElimination(t *testing.T) {
	// The classic motivation: pointers loaded back from memory defeat
	// BasicAA, but the points-to analysis proves the heap objects
	// distinct, unlocking the elimination.
	src := `
extern void *malloc(long);

static long *slot_a;
static long *slot_b;

void setup() {
    slot_a = (long*)malloc(8);
    slot_b = (long*)malloc(8);
}

long hot(long n) {
    long *a = slot_a;
    long *b = slot_b;
    long acc = *a;
    *b = n;
    long again = *a;   /* redundant iff a and b cannot alias */
    return acc + again;
}
`
	mBasic, basic, _ := analyses(t, src)
	removedBasic := EliminateRedundantLoads(mBasic, basic)

	mComb, _, combined := analyses(t, src)
	removedComb := EliminateRedundantLoads(mComb, combined)

	if removedComb <= removedBasic {
		t.Fatalf("Andersen should unlock more eliminations: basic=%d combined=%d",
			removedBasic, removedComb)
	}
	if err := ir.Verify(mComb); err != nil {
		t.Fatal(err)
	}
}

func TestDeadStoreElimination(t *testing.T) {
	src := `
static long g;

void doubleWrite(long v) {
    g = 1;
    g = v;
}
`
	m, _, combined := analyses(t, src)
	before := countOps(m, ir.OpStore)
	removed := EliminateDeadStores(m, combined)
	if removed == 0 {
		t.Fatalf("dead store not removed:\n%s", ir.Print(m))
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if countOps(m, ir.OpStore) != before-removed {
		t.Fatal("count mismatch")
	}
}

func TestStoresKeptAcrossPotentialReads(t *testing.T) {
	src := `
static long g;
extern void observe();

void visible(long v) {
    g = 1;
    observe();      /* may read g: the first store is live */
    g = v;
}
`
	m, _, combined := analyses(t, src)
	removed := EliminateDeadStores(m, combined)
	if removed != 0 {
		t.Fatalf("store before an observing call was removed (%d)", removed)
	}
}

func TestStoresKeptAcrossMayAliasLoads(t *testing.T) {
	src := `
long shuffle(long *p, long *q) {
    *p = 1;
    long v = *q;    /* may read *p */
    *p = 2;
    return v;
}
`
	m, _, combined := analyses(t, src)
	if removed := EliminateDeadStores(m, combined); removed != 0 {
		t.Fatalf("store before may-aliasing load removed (%d)", removed)
	}
}

func TestRunFixedPoint(t *testing.T) {
	src := `
static long a;
static long b;

long churn(long n) {
    a = 1;
    a = 2;
    long x = a;
    b = n;
    long y = a;
    a = 3;
    a = 4;
    return x + y;
}
`
	m, _, combined := analyses(t, src)
	stats := Run(m, combined)
	if stats.LoadsEliminated == 0 || stats.StoresEliminated == 0 {
		t.Fatalf("expected both kinds of elimination: %+v", stats)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("broken IR after Run: %v\n%s", err, ir.Print(m))
	}
	// Idempotence: a second run changes nothing.
	if again := Run(m, combined); again.LoadsEliminated != 0 || again.StoresEliminated != 0 {
		t.Fatalf("Run not at fixed point: %+v", again)
	}
}

func TestMutationHelpers(t *testing.T) {
	m := ir.MustParse(`
func @f(%p: ptr) export {
entry:
  %a = load i64, %p
  %b = load i64, %p
  %c = add i64, %a, %b
  ret
}
`)
	f := m.Func("f")
	l0, l1 := f.Blocks[0].Instrs[0], f.Blocks[0].Instrs[1]
	if n := ir.ReplaceUses(f, l1, l0); n != 1 {
		t.Fatalf("ReplaceUses = %d", n)
	}
	if ir.HasUses(f, l1) {
		t.Fatal("stale use")
	}
	if !ir.RemoveInstr(l1) {
		t.Fatal("RemoveInstr failed")
	}
	if ir.RemoveInstr(l1) {
		t.Fatal("double remove succeeded")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ir.Print(m), "%c = add i64, %a, %a") {
		t.Fatalf("rewrite missing:\n%s", ir.Print(m))
	}
}
