// Package opt implements two alias-analysis clients as real IR
// transformations — the optimizations the paper's introduction motivates
// ("dead load and store elimination"): block-local redundant-load
// elimination and dead-store elimination. Both consult an alias.Analysis,
// so the sound incomplete-program points-to analysis directly enables more
// optimization than the local BasicAA baseline.
package opt

import (
	"github.com/pip-analysis/pip/internal/alias"
	"github.com/pip-analysis/pip/internal/ir"
)

// Stats counts the transformations applied.
type Stats struct {
	LoadsEliminated  int
	StoresEliminated int
}

// clobbers reports whether instruction in may write memory overlapping an
// access of size bytes at ptr.
func clobbers(an alias.Analysis, in *ir.Instr, ptr ir.Value, size int64) bool {
	switch in.Op {
	case ir.OpStore:
		return an.Alias(in.Args[1], ir.SizeOf(in.Args[0].Type()), ptr, size) != alias.NoAlias
	case ir.OpMemcpy:
		return an.Alias(in.Args[0], 0, ptr, size) != alias.NoAlias
	case ir.OpCall:
		// Calls may write anything reachable; a more precise client
		// would consult mod/ref summaries. Be conservative here.
		return true
	}
	return false
}

// reads reports whether instruction in may read memory overlapping an
// access of size bytes at ptr.
func reads(an alias.Analysis, in *ir.Instr, ptr ir.Value, size int64) bool {
	switch in.Op {
	case ir.OpLoad:
		return an.Alias(in.Args[0], ir.SizeOf(in.Ty), ptr, size) != alias.NoAlias
	case ir.OpMemcpy:
		return an.Alias(in.Args[1], 0, ptr, size) != alias.NoAlias
	case ir.OpCall, ir.OpRet:
		return true
	}
	return false
}

// EliminateRedundantLoads removes block-local loads whose value is already
// available from an earlier load of the same address with no intervening
// may-aliasing store. Returns the number of loads removed.
func EliminateRedundantLoads(m *ir.Module, an alias.Analysis) int {
	removed := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			// avail maps earlier loads still known valid.
			var avail []*ir.Instr
			for ii := 0; ii < len(b.Instrs); ii++ {
				in := b.Instrs[ii]
				switch in.Op {
				case ir.OpLoad:
					matched := false
					for _, prev := range avail {
						if prev.Args[0] == in.Args[0] && ir.TypesEqual(prev.Ty, in.Ty) {
							ir.ReplaceUses(f, in, prev)
							ir.RemoveInstr(in)
							ii--
							removed++
							matched = true
							break
						}
					}
					if !matched {
						avail = append(avail, in)
					}
				case ir.OpStore, ir.OpMemcpy, ir.OpCall:
					// Drop loads whose memory may be clobbered.
					kept := avail[:0]
					for _, prev := range avail {
						if !clobbers(an, in, prev.Args[0], ir.SizeOf(prev.Ty)) {
							kept = append(kept, prev)
						}
					}
					avail = kept
				}
			}
		}
	}
	return removed
}

// EliminateDeadStores removes block-local stores that are overwritten by a
// later store to the same address before any potentially aliasing read,
// call, or block exit. Returns the number of stores removed.
func EliminateDeadStores(m *ir.Module, an alias.Analysis) int {
	removed := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for ii := 0; ii < len(b.Instrs); ii++ {
				st := b.Instrs[ii]
				if st.Op != ir.OpStore {
					continue
				}
				size := ir.SizeOf(st.Args[0].Type())
				// Scan forward for a killing store.
				for j := ii + 1; j < len(b.Instrs); j++ {
					nxt := b.Instrs[j]
					if nxt.Op == ir.OpStore &&
						ir.SizeOf(nxt.Args[0].Type()) >= size &&
						an.Alias(nxt.Args[1], ir.SizeOf(nxt.Args[0].Type()), st.Args[1], size) == alias.MustAlias {
						// Killed without an intervening read.
						ir.RemoveInstr(st)
						ii--
						removed++
						break
					}
					if reads(an, nxt, st.Args[1], size) || clobbers(an, nxt, st.Args[1], size) {
						break
					}
				}
			}
		}
	}
	return removed
}

// Run applies both eliminations until a fixed point and returns the
// combined statistics.
func Run(m *ir.Module, an alias.Analysis) Stats {
	var s Stats
	for {
		l := EliminateRedundantLoads(m, an)
		d := EliminateDeadStores(m, an)
		s.LoadsEliminated += l
		s.StoresEliminated += d
		if l == 0 && d == 0 {
			return s
		}
	}
}
