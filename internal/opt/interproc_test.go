package opt

import (
	"testing"

	"github.com/pip-analysis/pip/internal/cfront"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

const interprocSrc = `
static long counter;
static long config;

static void bump() { counter = counter + 1; }

long hot() {
    long a = config;
    bump();              /* touches only counter */
    long b = config;     /* redundant interprocedurally */
    return a + b;
}
`

func TestInterprocLoadEliminationAcrossCalls(t *testing.T) {
	// The intraprocedural pass must keep the reload (calls clobber
	// everything); the interprocedural pass may remove it.
	m1, err := cfront.Compile("t.c", interprocSrc)
	if err != nil {
		t.Fatal(err)
	}
	intra := EliminateRedundantLoads(m1, combinedFor(t, m1))

	m2, err := cfront.Compile("t.c", interprocSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(m2, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inter := eliminateRedundantLoadsCtx(m2, ctx)
	if inter <= intra {
		t.Fatalf("interprocedural should eliminate more: intra=%d inter=%d", intra, inter)
	}
	if err := ir.Verify(m2); err != nil {
		t.Fatal(err)
	}
}

func TestInterprocRespectsActualEffects(t *testing.T) {
	src := `
static long shared;

static void poke() { shared = 9; }

long observe() {
    long a = shared;
    poke();              /* writes shared! */
    long b = shared;     /* NOT redundant */
    return a + b;
}
`
	m, err := cfront.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(m, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	RunInterproc(m, ctx)
	// Count loads of shared left in observe: both must survive. The
	// slot reloads may be eliminated, so count loads whose operand is
	// the global @shared.
	loads := 0
	g := m.Global("shared")
	for _, b := range m.Func("observe").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad && in.Args[0] == ir.Value(g) {
				loads++
			}
		}
	}
	if loads < 2 {
		t.Fatalf("reload across an interfering call was removed (loads=%d)\n%s",
			loads, ir.Print(m))
	}
}

func TestInterprocExternalCallsStayConservative(t *testing.T) {
	src := `
extern void mystery();
static long g;

long f() {
    long a = g;
    mystery();
    long b = g;
    return a + b;
}
`
	m, err := cfront.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(m, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	RunInterproc(m, ctx)
	loads := 0
	gl := m.Global("g")
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpLoad && in.Args[0] == ir.Value(gl) {
			loads++
		}
	})
	// g is static but escapes? It does not escape (never passed out), so
	// actually the external call CANNOT touch g... and the summaries
	// know: mystery may touch only escaped memory. The reload is
	// eliminable! This is the incomplete-program precision story.
	if loads != 1 {
		t.Fatalf("external call cannot touch the private g; reload should go (loads=%d)", loads)
	}
}

func TestInterprocDifferential(t *testing.T) {
	// Interprocedural optimization must preserve semantics on the random
	// closed programs too.
	for seed := int64(100); seed <= 130; seed++ {
		m := randomClosedModule(seed)
		want := runModule(t, m)
		ctx, err := NewContext(m, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		RunInterproc(m, ctx)
		if err := ir.Verify(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := runModule(t, m); got != want {
			t.Fatalf("seed %d: result changed %d != %d", seed, got, want)
		}
	}
}

func TestInterprocDeadStoreAcrossCalls(t *testing.T) {
	src := `
static long a;
static long unrelated;

static void work() { unrelated = 1; }

void f(long v) {
    a = 1;          /* dead: work() neither reads nor writes a */
    work();
    a = v;
}
`
	m, err := cfront.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(m, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	removed := eliminateDeadStoresCtx(m, ctx)
	if removed == 0 {
		t.Fatalf("dead store across non-interfering call not removed\n%s", ir.Print(m))
	}
}
