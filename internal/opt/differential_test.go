package opt

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pip-analysis/pip/internal/alias"
	"github.com/pip-analysis/pip/internal/cfront"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/interp"
	"github.com/pip-analysis/pip/internal/ir"
)

// Differential testing: optimized programs must compute the same result as
// the original, executed by the reference interpreter.

// randomClosedModule builds a deterministic straight-line program over
// integer globals and stack slots, returning a checksum.
func randomClosedModule(seed int64) *ir.Module {
	rng := rand.New(rand.NewSource(seed))
	m := ir.NewModule(fmt.Sprintf("rand%d", seed))
	b := ir.NewBuilder(m)

	var ptrObjs []ir.Value // addresses of i64 cells
	for i := 0; i < 3+rng.Intn(4); i++ {
		g := b.GlobalVar(fmt.Sprintf("g%d", i), ir.I64, ir.Int(int64(i*7+1), ir.I64), ir.Internal)
		ptrObjs = append(ptrObjs, g)
	}
	b.NewFunc("main_", &ir.FuncType{Ret: ir.I64}, nil, ir.Exported)
	var ints []ir.Value
	ints = append(ints, ir.Int(int64(rng.Intn(100)), ir.I64))
	// Pointer slots: allocas holding pointers to cells.
	var slots []ir.Value
	anyPtr := func() ir.Value { return ptrObjs[rng.Intn(len(ptrObjs))] }
	anyInt := func() ir.Value { return ints[rng.Intn(len(ints))] }

	nOps := 20 + rng.Intn(40)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(8) {
		case 0: // new i64 cell on the stack
			a := b.Alloca(ir.I64)
			ptrObjs = append(ptrObjs, a)
		case 1: // new pointer slot
			s := b.Alloca(ir.Ptr)
			b.Store(anyPtr(), s)
			slots = append(slots, s)
		case 2: // overwrite a pointer slot
			if len(slots) > 0 {
				b.Store(anyPtr(), slots[rng.Intn(len(slots))])
			}
		case 3: // load a pointer back and use it for an int load
			if len(slots) > 0 {
				p := b.Load(ir.Ptr, slots[rng.Intn(len(slots))])
				v := b.Load(ir.I64, p)
				ints = append(ints, v)
			}
		case 4: // store an int through a direct address
			b.Store(anyInt(), anyPtr())
		case 5: // store through a loaded pointer
			if len(slots) > 0 {
				p := b.Load(ir.Ptr, slots[rng.Intn(len(slots))])
				b.Store(anyInt(), p)
			}
		case 6: // direct load
			ints = append(ints, b.Load(ir.I64, anyPtr()))
		default: // arithmetic
			kinds := []string{"add", "sub", "mul", "xor"}
			ints = append(ints, b.Bin(kinds[rng.Intn(len(kinds))], ir.I64, anyInt(), anyInt()))
		}
	}
	sum := ints[0]
	for _, v := range ints[1:] {
		sum = b.Bin("add", ir.I64, sum, v)
	}
	b.Ret(sum)
	return m
}

func runModule(t *testing.T, m *ir.Module) int64 {
	t.Helper()
	mc, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := mc.Call("main_")
	if err != nil {
		t.Fatalf("execution failed: %v\n%s", err, ir.Print(m))
	}
	return v.Int
}

func combinedFor(t *testing.T, m *ir.Module) alias.Analysis {
	t.Helper()
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())
	return alias.Combined{alias.NewBasicAA(m), alias.NewAndersen(gen, sol)}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		m := randomClosedModule(seed)
		if err := ir.Verify(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := runModule(t, m)

		stats := Run(m, combinedFor(t, m))
		if err := ir.Verify(m); err != nil {
			t.Fatalf("seed %d: optimizer broke the IR: %v", seed, err)
		}
		got := runModule(t, m)
		if got != want {
			t.Fatalf("seed %d: optimization changed the result: %d != %d (removed %d loads, %d stores)\n%s",
				seed, got, want, stats.LoadsEliminated, stats.StoresEliminated, ir.Print(m))
		}
	}
}

func TestDifferentialCPrograms(t *testing.T) {
	programs := []struct {
		src  string
		want int64
	}{
		{`
static long a = 10, b = 20;
long main_() {
    long x = a;
    b = 99;
    long y = a;     /* redundant: b cannot alias a */
    a = 1; a = 2;   /* first store dead */
    return x + y + a + b;
}
`, 10 + 10 + 2 + 99},
		{`
extern void *malloc(long);
long main_() {
    long *p = (long*)malloc(8);
    long *q = (long*)malloc(8);
    *p = 5;
    *q = 6;
    long v1 = *p;
    *q = 7;
    long v2 = *p;   /* redundant under Andersen */
    return v1 + v2 + *q;
}
`, 5 + 5 + 7},
		{`
static long tab[4];
long main_() {
    long i;
    for (i = 0; i < 4; i++) tab[i] = i * 10;
    return tab[0] + tab[1] + tab[2] + tab[3];
}
`, 0 + 10 + 20 + 30},
	}
	for pi, p := range programs {
		m, err := cfront.Compile("p.c", p.src)
		if err != nil {
			t.Fatalf("program %d: %v", pi, err)
		}
		if got := runModule(t, m); got != p.want {
			t.Fatalf("program %d before opt: %d, want %d", pi, got, p.want)
		}
		Run(m, combinedFor(t, m))
		if err := ir.Verify(m); err != nil {
			t.Fatalf("program %d: broken IR: %v", pi, err)
		}
		if got := runModule(t, m); got != p.want {
			t.Fatalf("program %d after opt: %d, want %d\n%s", pi, got, p.want, ir.Print(m))
		}
	}
}
