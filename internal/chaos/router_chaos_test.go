// Router and persistent-store chaos: the PR 8 additions to the
// invariant suite. The router test kills a live shard mid-load and
// checks the promises end to end — every request answered, every
// non-degraded answer bit-exact, degradation (reroute or local Ω) the
// only concession. The store test flips and fails disk records under
// load and checks that verification turns every corruption into a miss,
// never a served lie.
package chaos_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/engine"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/serve"
	"github.com/pip-analysis/pip/internal/store"
	"github.com/pip-analysis/pip/internal/workload"
)

// chaosSeedRouter pins the router/store chaos trajectory separately from
// the main suite. Override with PIP_CHAOS_SEED3 to explore.
func chaosSeedRouter() int64 {
	if v := os.Getenv("PIP_CHAOS_SEED3"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 777
}

// TestChaosRouterKillShard is the PR 8 acceptance scenario: three shards
// behind the router, concurrent load, one shard killed mid-flight with
// its connections cut, plus injected router.forward faults. Every
// request must come back definitive and sound: exact (200), degraded Ω
// (200, marked), or honestly refused — never dropped, never wrong.
func TestChaosRouterKillShard(t *testing.T) {
	srcs := make([]string, 8)
	for i := range srcs {
		srcs[i] = fmt.Sprintf(`
static int x%d;
int *p%d = &x%d;
extern void take(int**);
void f%d() { take(&p%d); }
`, i, i, i, i, i)
	}
	// Ground truth under the default configuration, before arming.
	exact := make([]string, len(srcs))
	for i, src := range srcs {
		m, err := pip.CompileC("chaos.c", src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pip.Analyze(m, pip.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		exact[i] = res.Dump()
	}

	reg, err := faults.ParseSpec(fmt.Sprintf("seed=%d;router.forward=error:0.05", chaosSeedRouter()))
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	t.Cleanup(faults.Disarm)

	servers := make([]*serve.Server, 3)
	backends := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	for i := range servers {
		servers[i] = serve.New(serve.Options{MaxConcurrent: 4, MaxQueue: 64})
		backends[i] = httptest.NewServer(servers[i].Handler())
		urls[i] = backends[i].URL
		defer backends[i].Close()
	}
	// Flight-recorder dumps land where CI can collect them on failure
	// (PIP_CHAOS_DUMPDIR), or in a throwaway dir otherwise.
	dumpDir := os.Getenv("PIP_CHAOS_DUMPDIR")
	if dumpDir == "" {
		dumpDir = t.TempDir()
	}
	rt := serve.NewRouter(serve.RouterOptions{
		Backends:  urls,
		Breaker:   serve.BreakerOptions{Window: 8, MinSamples: 4, Threshold: 0.5, Cooldown: 50 * time.Millisecond, Probes: 2},
		FlightDir: dumpDir,
	})
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	type reply struct {
		code     int
		degraded bool
		dump     string
		src      int
	}
	const rounds = 8
	replies := make([]reply, 0, rounds*len(srcs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	killed := make(chan struct{})
	for r := 0; r < rounds; r++ {
		for si, src := range srcs {
			wg.Add(1)
			go func(r, si int, src string) {
				defer wg.Done()
				body, _ := json.Marshal(map[string]string{"c": src})
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Errorf("round %d src %d: transport error (dropped request): %v", r, si, err)
					return
				}
				defer resp.Body.Close()
				var out struct {
					Degraded bool   `json:"degraded"`
					Dump     string `json:"dump"`
				}
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						t.Errorf("round %d src %d: bad 200 body: %v", r, si, err)
						return
					}
				}
				mu.Lock()
				replies = append(replies, reply{resp.StatusCode, out.Degraded, out.Dump, si})
				mu.Unlock()
			}(r, si, src)
		}
		if r == rounds/2 {
			// Kill a live shard mid-load: cut its connections (in-flight
			// forwards fail over) and stop accepting new ones.
			backends[1].CloseClientConnections()
			backends[1].Close()
			close(killed)
		}
	}
	wg.Wait()
	<-killed

	var exactN, degraded, refused, failed int
	for _, rp := range replies {
		switch rp.code {
		case http.StatusOK:
			if rp.degraded {
				degraded++ // sound Ω via the router's local fallback
				continue
			}
			exactN++
			if rp.dump != exact[rp.src] {
				t.Fatalf("unsound non-degraded response for src %d", rp.src)
			}
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			refused++ // shed: answered, not dropped
		case http.StatusInternalServerError:
			failed++ // honest failure: answered, not dropped
		default:
			t.Fatalf("unexpected status %d for src %d", rp.code, rp.src)
		}
	}
	// Never a drop: every fired request is accounted for.
	if len(replies) != rounds*len(srcs) {
		t.Fatalf("dropped requests: sent %d, answered %d", rounds*len(srcs), len(replies))
	}
	t.Logf("router chaos: %d exact, %d degraded, %d refused, %d failed (1 shard killed mid-load)",
		exactN, degraded, refused, failed)
	if exactN == 0 {
		t.Fatal("chaos drowned every request; the suite proved nothing")
	}
	if faults.Active().Hits(faults.RouterForward) == 0 {
		t.Fatal("injection point router.forward never reached")
	}
	// The cluster still answers exactly after the kill: the dead shard's
	// keyspace rerouted to the survivors.
	for si, src := range srcs {
		body, _ := json.Marshal(map[string]string{"c": src})
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("post-kill src %d: %v", si, err)
		}
		var out struct {
			Degraded bool   `json:"degraded"`
			Dump     string `json:"dump"`
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill src %d: status %d", si, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !out.Degraded && out.Dump != exact[si] {
			t.Fatalf("post-kill src %d: unsound answer", si)
		}
	}

	// The flight recorder must have caught the anomaly: killing the shard
	// drove its breaker open, and the dump names which backend tripped.
	var flight struct {
		Dumps []obs.Dump `json:"dumps"`
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/debug/flightrec")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&flight)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("bad /debug/flightrec body: %v", err)
		}
		found := false
		for _, d := range flight.Dumps {
			if d.Reason == "breaker.open" && strings.Contains(d.Detail, urls[1]) {
				found = true
				if d.File == "" {
					t.Fatal("breaker.open dump has no on-disk file despite FlightDir")
				}
				if _, err := os.Stat(d.File); err != nil {
					t.Fatalf("breaker.open dump file missing: %v", err)
				}
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no flight-recorder dump names the killed backend %s (dumps: %+v)", urls[1], flight.Dumps)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosStoreFaults hammers the persistent store's fault points:
// saves fail, loads fail, and loaded records are bit-flipped. The
// verify-on-load contract must hold — a flipped record is a miss that
// re-solves, never a served corruption — so every answer stays exact
// across repeated warm restarts.
func TestChaosStoreFaults(t *testing.T) {
	const nModules = 5
	mods := make([]*pip.Module, 0, nModules)
	for seed := int64(1); len(mods) < nModules; seed++ {
		mods = append(mods, workload.GenerateLinked(seed).A)
	}
	cfg := core.DefaultConfig()
	exact := make([]string, len(mods))
	for i, m := range mods {
		exact[i] = core.MustSolve(core.Generate(m).Problem, cfg).Fingerprint()
	}

	// One rule per point (the spec's last clause wins): saves error, loads
	// flip. Load errors are covered by the engine store tests.
	reg, err := faults.ParseSpec(fmt.Sprintf(
		"seed=%d;store.save=error:0.15;store.load=flip:0.3", chaosSeedRouter()))
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	t.Cleanup(faults.Disarm)

	dir := t.TempDir()
	const restarts = 4
	var diskHits, corrupt int64
	for round := 0; round < restarts; round++ {
		ds, err := store.Open(dir)
		if err != nil {
			t.Fatalf("restart %d: %v", round, err)
		}
		eng := engine.New(engine.Options{Workers: 2, Cache: true})
		eng.SetStore(ds)
		var jobs []engine.Job
		for _, m := range mods {
			jobs = append(jobs, engine.Job{Module: m, Config: cfg})
		}
		for mi, res := range eng.Run(jobs) {
			if res.Err != nil {
				t.Fatalf("restart %d mod %d: store faults must never fail a job: %v", round, mi, res.Err)
			}
			if res.Degraded {
				t.Fatalf("restart %d mod %d: store faults must never degrade a solve", round, mi)
			}
			if got := res.Sol.Fingerprint(); got != exact[mi] {
				t.Fatalf("restart %d mod %d: unsound answer under store chaos", round, mi)
			}
		}
		if err := eng.SyncStore(); err != nil {
			t.Fatalf("restart %d: sync: %v", round, err)
		}
		st := eng.Stats()
		diskHits += st.DiskHits
		corrupt += st.StoreCorrupt
		ds.Close()
	}
	t.Logf("store chaos: %d disk hits, %d corruptions caught over %d restarts", diskHits, corrupt, restarts)
	// The trajectory is pinned by the seed: both sides of the contract
	// must actually have been exercised — clean records hit, and at
	// least one flip was caught by verification.
	if diskHits == 0 {
		t.Fatal("no disk hits across restarts; the store tier was never exercised")
	}
	if corrupt == 0 {
		t.Fatal("no corruption caught despite 30% load flips; verification was never exercised")
	}
	for _, p := range []faults.Point{faults.StoreSave, faults.StoreLoad} {
		if faults.Active().Hits(p) == 0 {
			t.Fatalf("injection point %s never reached", p)
		}
	}
}
