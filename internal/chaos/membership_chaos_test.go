// Membership-churn chaos: the PR 10 acceptance scenario. A cluster
// under concurrent load has its membership churned through every
// dynamic path — a backend drained via the admin surface, a fresh one
// joined, the drained one removed, and a live one killed outright for
// the prober to discover — with forward faults injected throughout and
// hedging racing the slow tail. The invariants are the router's
// promises end to end: no request is ever dropped, every non-degraded
// answer is bit-exact, the ring generation only moves forward, the
// flight recorder catches the membership changes, and the hedge volume
// stays inside its token-bucket budget.
package chaos_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/serve"
)

// chaosSeedMembership pins the membership-churn trajectory separately
// from the other suites. Override with PIP_CHAOS_SEED4 to explore.
func chaosSeedMembership() int64 {
	if v := os.Getenv("PIP_CHAOS_SEED4"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 909
}

func TestChaosMembershipChurn(t *testing.T) {
	const hedgeBurst, hedgeRatio = 8.0, 0.05
	srcs := make([]string, 6)
	for i := range srcs {
		srcs[i] = fmt.Sprintf(`
static int m%d;
int *q%d = &m%d;
extern void keep(int**);
void g%d() { keep(&q%d); }
`, i, i, i, i, i)
	}
	exact := make([]string, len(srcs))
	for i, src := range srcs {
		m, err := pip.CompileC("churn.c", src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pip.Analyze(m, pip.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		exact[i] = res.Dump()
	}

	reg, err := faults.ParseSpec(fmt.Sprintf("seed=%d;router.forward=error:0.03", chaosSeedMembership()))
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	t.Cleanup(faults.Disarm)

	// Three initial shards plus a spare that joins mid-churn.
	servers := make([]*serve.Server, 4)
	backends := make([]*httptest.Server, 4)
	urls := make([]string, 4)
	for i := range servers {
		servers[i] = serve.New(serve.Options{MaxConcurrent: 4, MaxQueue: 64})
		backends[i] = httptest.NewServer(servers[i].Handler())
		urls[i] = backends[i].URL
		defer backends[i].Close()
	}
	dumpDir := os.Getenv("PIP_CHAOS_DUMPDIR")
	if dumpDir == "" {
		dumpDir = t.TempDir()
	}
	rt := serve.NewRouter(serve.RouterOptions{
		Backends: urls[:3],
		Breaker:  serve.BreakerOptions{Window: 8, MinSamples: 4, Threshold: 0.5, Cooldown: 50 * time.Millisecond, Probes: 2},
		Probe: serve.ProbeOptions{
			Interval: 20 * time.Millisecond, Timeout: 250 * time.Millisecond,
			FailThreshold: 2, SuccessThreshold: 1,
		},
		Hedge: serve.HedgeOptions{
			DelayMin: 5 * time.Millisecond, DelayMax: 25 * time.Millisecond,
			Burst: hedgeBurst, Ratio: hedgeRatio,
		},
		FlightDir: dumpDir,
	})
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	ringGen := func() uint64 {
		resp, err := http.Get(ts.URL + "/debug/ring")
		if err != nil {
			return 0 // the router itself is never down in this test; transient only
		}
		defer resp.Body.Close()
		var ring struct {
			Generation uint64 `json:"generation"`
		}
		if json.NewDecoder(resp.Body).Decode(&ring) != nil {
			return 0
		}
		return ring.Generation
	}
	admin := func(op, backend string) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"op": op, "backend": backend})
		resp, err := http.Post(ts.URL+"/admin/backends", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("admin %s %s: %v", op, backend, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admin %s %s: status %d", op, backend, resp.StatusCode)
		}
	}

	// Generation watcher: the ring generation, observed concurrently with
	// the churn, must never move backwards — in-flight snapshots are
	// immutable and publishes are ordered.
	watchStop := make(chan struct{})
	var watchWG sync.WaitGroup
	var genErr error
	var genMu sync.Mutex
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		var last uint64
		for {
			select {
			case <-watchStop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			g := ringGen()
			if g == 0 {
				continue
			}
			genMu.Lock()
			if g < last {
				genErr = fmt.Errorf("ring generation went backwards: %d after %d", g, last)
			}
			last = g
			genMu.Unlock()
		}
	}()

	type reply struct {
		code     int
		degraded bool
		dump     string
		src      int
	}
	const rounds = 10
	replies := make([]reply, 0, rounds*len(srcs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for si, src := range srcs {
			wg.Add(1)
			go func(r, si int, src string) {
				defer wg.Done()
				body, _ := json.Marshal(map[string]string{"c": src})
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Errorf("round %d src %d: transport error (dropped request): %v", r, si, err)
					return
				}
				defer resp.Body.Close()
				var out struct {
					Degraded bool   `json:"degraded"`
					Dump     string `json:"dump"`
				}
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						t.Errorf("round %d src %d: bad 200 body: %v", r, si, err)
						return
					}
				}
				mu.Lock()
				replies = append(replies, reply{resp.StatusCode, out.Degraded, out.Dump, si})
				mu.Unlock()
			}(r, si, src)
		}
		// Churn the membership mid-load: drain, join, remove, kill.
		switch r {
		case 3:
			admin("drain", urls[1])
		case 5:
			admin("add", urls[3])
		case 7:
			admin("remove", urls[1])
		case 8:
			// Kill a live shard outright — no admin notice; the prober and
			// the breakers must discover it.
			backends[2].CloseClientConnections()
			backends[2].Close()
		}
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	close(watchStop)
	watchWG.Wait()
	genMu.Lock()
	if genErr != nil {
		t.Fatal(genErr)
	}
	genMu.Unlock()

	var exactN, degraded, refused, failed int
	for _, rp := range replies {
		switch rp.code {
		case http.StatusOK:
			if rp.degraded {
				degraded++
				continue
			}
			exactN++
			if rp.dump != exact[rp.src] {
				t.Fatalf("unsound non-degraded response for src %d under churn", rp.src)
			}
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			refused++
		case http.StatusInternalServerError:
			failed++
		default:
			t.Fatalf("unexpected status %d for src %d", rp.code, rp.src)
		}
	}
	if len(replies) != rounds*len(srcs) {
		t.Fatalf("dropped requests: sent %d, answered %d", rounds*len(srcs), len(replies))
	}
	t.Logf("membership chaos: %d exact, %d degraded, %d refused, %d failed across drain/join/remove/kill",
		exactN, degraded, refused, failed)
	if exactN == 0 {
		t.Fatal("chaos drowned every request; the suite proved nothing")
	}
	if faults.Active().Hits(faults.RouterForward) == 0 {
		t.Fatal("injection point router.forward never reached")
	}

	// Three membership changes happened (drain, add, remove): the final
	// generation reflects all of them on top of the initial ring.
	if g := ringGen(); g < 4 {
		t.Fatalf("final ring generation %d, want >= 4 after three membership changes", g)
	}

	// The surviving cluster (shard 0 + the joiner) still answers every
	// module; non-degraded answers stay bit-exact.
	postExact := 0
	for si, src := range srcs {
		body, _ := json.Marshal(map[string]string{"c": src})
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("post-churn src %d: %v", si, err)
		}
		var out struct {
			Degraded bool   `json:"degraded"`
			Dump     string `json:"dump"`
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-churn src %d: status %d", si, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !out.Degraded {
			if out.Dump != exact[si] {
				t.Fatalf("post-churn src %d: unsound answer", si)
			}
			postExact++
		}
	}
	if postExact == 0 {
		t.Fatal("no exact answers from the post-churn cluster")
	}

	// The flight recorder caught the churn: at least one membership.change
	// dump, written to disk.
	var flight struct {
		Dumps []obs.Dump `json:"dumps"`
	}
	resp, err := http.Get(ts.URL + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&flight)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	foundMembership := false
	for _, d := range flight.Dumps {
		if d.Reason == "membership.change" {
			foundMembership = true
			if d.File == "" {
				t.Fatal("membership.change dump has no on-disk file despite FlightDir")
			}
			if _, err := os.Stat(d.File); err != nil {
				t.Fatalf("membership.change dump file missing: %v", err)
			}
		}
	}
	if !foundMembership {
		t.Fatalf("no membership.change flight dump after drain/add/remove (dumps: %+v)", flight.Dumps)
	}

	// Hedge volume respects the token bucket: hedges <= Burst + Ratio ×
	// successful forwards (the refill source), read from /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var hedges, successes float64
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pip_router_hedges_total ") {
			hedges, _ = strconv.ParseFloat(strings.Fields(line)[1], 64)
		}
		if strings.HasPrefix(line, "pip_router_backend_forwarded_total{") {
			v, _ := strconv.ParseFloat(strings.Fields(line)[1], 64)
			successes += v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cap := hedgeBurst + hedgeRatio*successes; hedges > cap+1e-9 {
		t.Fatalf("hedges_total = %v exceeds the retry budget %v (burst %v + ratio %v × %v successes)",
			hedges, cap, hedgeBurst, hedgeRatio, successes)
	}
	t.Logf("membership chaos: %v hedges within budget (%v successes), final generation %d", hedges, successes, ringGen())
}
