// Package chaos is the fault-injection invariant suite: it arms every
// injection point at once (each at >= 1%) and checks that the system
// keeps its three resilience promises under fire:
//
//  1. no admitted request is dropped — every client gets a definitive
//     response and shutdown drains cleanly;
//  2. every returned solution is either the exact answer or the sound
//     Ω-degradation, never silently wrong;
//  3. the cache never serves a corrupted entry — content verification
//     drops bad entries and the job re-solves.
//
// The fault registry is deterministic in (seed, point, hit#), so a run is
// reproducible given the same seed (pinned below, overridable with
// PIP_CHAOS_SEED) and workload. `make chaos` runs this package under the
// race detector.
package chaos_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/core/differential"
	"github.com/pip-analysis/pip/internal/engine"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/serve"
	"github.com/pip-analysis/pip/internal/workload"
)

// chaosSeed pins the run; override with PIP_CHAOS_SEED to explore.
func chaosSeed() int64 {
	if v := os.Getenv("PIP_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 42
}

// chaosSeedParallel pins the run of the parallel-solve suite separately
// from chaosSeed: the stratified schedule reaches the injection points in
// a different order, so it deserves its own reproducible trajectory.
// Override with PIP_CHAOS_SEED2 to explore.
func chaosSeedParallel() int64 {
	if v := os.Getenv("PIP_CHAOS_SEED2"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1337
}

// chaosSpec arms all nine injection points, every one at >= 1%, with the
// kinds spread so each failure mode is exercised: errors in the solver
// core (which degrade to Ω), panics at dispatch and in the handler (which
// the retry layer and recovery middleware absorb), cache corruption
// (which verification catches), and admission errors (refused before
// admission, so the drain guarantee is untouched).
func chaosSpec() string {
	return fmt.Sprintf("seed=%d"+
		";core.solve=error:0.02"+
		";core.wave=error:0.05"+
		";core.strata=error:0.05"+
		";core.collapse=error:0.03"+
		";engine.dispatch=panic:0.02"+
		";engine.cache.insert=flip:0.5"+
		";engine.cache.lookup=error:0.02"+
		";serve.admission=error:0.03"+
		";serve.handler=panic:0.02",
		chaosSeed())
}

func armChaos(t *testing.T) {
	t.Helper()
	reg, err := faults.ParseSpec(chaosSpec())
	if err != nil {
		t.Fatalf("bad chaos spec: %v", err)
	}
	faults.Arm(reg)
	t.Cleanup(faults.Disarm)
}

// chaosConfigs spans the solver paths that carry injection points: the
// default worklist (collapse via PIP unification and OVS), the wave
// solver (per-wave hook plus collapseAllSCCs), the naive baseline
// (core.solve only), and a stratified parallel worklist (core.strata on
// top of the rest) so the fault machinery runs under SolveWorkers > 1
// schedules too.
func chaosConfigs(t *testing.T) []core.Config {
	t.Helper()
	var cfgs []core.Config
	for _, name := range []string{"IP+WL(FIFO)+PIP", "IP+Wave+PIP", "EP+Naive"} {
		cfg, err := core.ParseConfig(name)
		if err != nil {
			t.Fatalf("config %s: %v", name, err)
		}
		cfgs = append(cfgs, cfg)
	}
	par := cfgs[0]
	par.SolveWorkers = 4
	return append(cfgs, par)
}

// TestChaosEngineInvariants hammers the engine with every point armed and
// checks invariant 2 and 3 at the result level: a job either fails with a
// classifiable fault, degrades to the sound Ω solution, or returns the
// bit-exact answer computed with chaos off. A corrupted cache entry can
// never surface: it would produce a non-degraded result whose fingerprint
// differs from the exact one.
func TestChaosEngineInvariants(t *testing.T) {
	const nModules = 6
	const passes = 3
	mods := make([]*pip.Module, 0, nModules)
	for seed := int64(1); len(mods) < nModules; seed++ {
		mods = append(mods, workload.GenerateLinked(seed).A)
	}
	cfgs := chaosConfigs(t)

	// Ground truth, computed before arming.
	exact := map[string]string{}
	for ci, cfg := range cfgs {
		for mi, m := range mods {
			sol := core.MustSolve(core.Generate(m).Problem, cfg)
			exact[fmt.Sprintf("%d/%d", ci, mi)] = sol.Fingerprint()
		}
	}

	armChaos(t)
	eng := engine.New(engine.Options{
		Workers: 4,
		Cache:   true,
		Retry:   engine.RetryPolicy{Max: 3},
	})
	var failed, degraded, exactCount int
	for pass := 0; pass < passes; pass++ {
		for ci, cfg := range cfgs {
			var jobs []engine.Job
			for _, m := range mods {
				jobs = append(jobs, engine.Job{Module: m, Config: cfg})
			}
			for mi, res := range eng.Run(jobs) {
				switch {
				case res.Err != nil:
					// Invariant 2: failures must be honest fault
					// reports, not mangled results.
					if !faults.IsFault(res.Err) && !strings.Contains(res.Err.Error(), "job panicked") {
						t.Fatalf("pass %d cfg %d mod %d: non-fault error: %v", pass, ci, mi, res.Err)
					}
					failed++
				case res.Degraded:
					if !res.Sol.Degraded {
						t.Fatalf("pass %d cfg %d mod %d: Degraded result with non-degraded solution", pass, ci, mi)
					}
					degraded++
				default:
					// Invariant 2 + 3: a non-degraded answer must be the
					// exact solution — served from a verified cache entry
					// or re-solved, never from a corrupted one.
					key := fmt.Sprintf("%d/%d", ci, mi)
					if got := res.Sol.Fingerprint(); got != exact[key] {
						t.Fatalf("pass %d cfg %d mod %d: unsound non-degraded solution", pass, ci, mi)
					}
					exactCount++
				}
			}
		}
	}
	t.Logf("chaos engine: %d exact, %d degraded, %d failed over %d jobs",
		exactCount, degraded, failed, passes*len(cfgs)*len(mods))
	if exactCount == 0 {
		t.Fatal("chaos drowned every job; the suite proved nothing — lower the rates")
	}
	st := eng.Stats()
	if st.Jobs != passes*len(cfgs)*len(mods) {
		t.Fatalf("jobs lost: ran %d, stats say %d", passes*len(cfgs)*len(mods), st.Jobs)
	}
	// With insert-flip at 50% over multiple cached passes, verification
	// must have caught corrupted entries (deterministic given the seed).
	if st.CacheCorrupt == 0 {
		t.Fatal("no corrupted cache entries detected despite 50% insert flips")
	}
	// The engine-side points must all have been exercised.
	reg := faults.Active()
	for _, p := range []faults.Point{faults.CoreSolve, faults.EngineDispatch, faults.EngineCacheIns, faults.EngineCacheLook} {
		if reg.Hits(p) == 0 {
			t.Fatalf("injection point %s never reached", p)
		}
	}
}

// TestChaosServeInvariants drives the full HTTP stack under the same
// armed registry and checks invariant 1 end to end: every request gets a
// definitive response, non-degraded 200s carry the exact dump, and
// shutdown drains with nothing left behind.
func TestChaosServeInvariants(t *testing.T) {
	srcs := make([]string, 8)
	for i := range srcs {
		srcs[i] = fmt.Sprintf(`
static int x%d;
int *p%d = &x%d;
extern void take(int**);
void f%d() { take(&p%d); }
`, i, i, i, i, i)
	}
	// Ground-truth dumps per (module, config), computed before arming.
	configNames := []string{"IP+WL(FIFO)+PIP", "IP+Wave+PIP", "EP+Naive"}
	exact := map[string]string{}
	for _, cn := range configNames {
		cfg, err := pip.ParseConfig(cn)
		if err != nil {
			t.Fatal(err)
		}
		for si, src := range srcs {
			m, err := pip.CompileC("chaos.c", src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pip.Analyze(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			exact[cn+"/"+strconv.Itoa(si)] = res.Dump()
		}
	}

	armChaos(t)
	s := serve.New(serve.Options{
		MaxConcurrent: 4,
		MaxQueue:      64,
		Retries:       3,
		Breaker:       serve.BreakerOptions{Window: 32, MinSamples: 16, Threshold: 0.6, Cooldown: 30 * time.Millisecond, Probes: 2},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type reply struct {
		code     int
		degraded bool
		dump     string
		key      string
	}
	const rounds = 9
	replies := make([]reply, 0, rounds*len(srcs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for si, src := range srcs {
			wg.Add(1)
			go func(r, si int, src string) {
				defer wg.Done()
				cn := configNames[(r+si)%len(configNames)]
				body, _ := json.Marshal(map[string]string{"c": src, "config": cn})
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Errorf("round %d src %d: transport error (dropped request): %v", r, si, err)
					return
				}
				defer resp.Body.Close()
				var out struct {
					Degraded bool   `json:"degraded"`
					Dump     string `json:"dump"`
				}
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						t.Errorf("round %d src %d: bad 200 body: %v", r, si, err)
						return
					}
				}
				mu.Lock()
				replies = append(replies, reply{resp.StatusCode, out.Degraded, out.Dump, cn + "/" + strconv.Itoa(si)})
				mu.Unlock()
			}(r, si, src)
		}
	}
	wg.Wait()

	var ok200, degraded, refused, failed int
	for _, rp := range replies {
		switch rp.code {
		case http.StatusOK:
			if rp.degraded {
				degraded++
				continue
			}
			ok200++
			// Invariant 2/3 through the full stack: non-degraded answers
			// are bit-exact.
			if rp.dump != exact[rp.key] {
				t.Fatalf("unsound non-degraded response for %s", rp.key)
			}
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			refused++ // shed before admission: allowed, and answered
		case http.StatusInternalServerError:
			failed++ // honest failure after retries: answered, not dropped
		default:
			t.Fatalf("unexpected status %d for %s", rp.code, rp.key)
		}
	}
	// Invariant 1: every fired request is accounted for.
	if len(replies) != rounds*len(srcs) {
		t.Fatalf("dropped requests: sent %d, answered %d", rounds*len(srcs), len(replies))
	}
	t.Logf("chaos serve: %d exact, %d degraded, %d refused, %d failed", ok200, degraded, refused, failed)
	if ok200 == 0 {
		t.Fatal("chaos drowned every request; the suite proved nothing — lower the rates")
	}

	// Drain under chaos: shutdown completes and leaves nothing in flight.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain under chaos failed: %v", err)
	}
	// Serve-side injection points were exercised.
	reg := faults.Active()
	for _, p := range []faults.Point{faults.ServeAdmission, faults.ServeHandler} {
		if reg.Hits(p) == 0 {
			t.Fatalf("injection point %s never reached", p)
		}
	}
}

// TestChaosWaveAndCollapsePoints runs the two solver-internal points
// hard enough to prove an injected mid-solve error always lands as the
// sound Ω-degradation, exactly like budget exhaustion — never an error,
// never a partial result.
func TestChaosWaveAndCollapsePoints(t *testing.T) {
	spec := fmt.Sprintf("seed=%d;core.wave=error:0.5;core.collapse=error:0.5", chaosSeed())
	reg, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	t.Cleanup(faults.Disarm)

	mods := []*pip.Module{workload.GenerateLinked(1).A, workload.GenerateLinked(2).A}
	for _, name := range []string{"IP+Wave+PIP", "IP+WL(FIFO)+PIP"} {
		cfg, err := core.ParseConfig(name)
		if err != nil {
			t.Fatal(err)
		}
		var sawDegraded bool
		for _, m := range mods {
			for i := 0; i < 8; i++ {
				sol, err := core.Solve(core.Generate(m).Problem, cfg)
				if err != nil {
					t.Fatalf("%s: mid-solve fault surfaced as error: %v", name, err)
				}
				if sol.Degraded {
					sawDegraded = true
				}
			}
		}
		if name == "IP+Wave+PIP" && !sawDegraded {
			t.Fatalf("%s: 50%% wave faults never degraded a solve", name)
		}
	}
	if reg.Hits(faults.CoreWave) == 0 {
		t.Fatal("core.wave point never reached")
	}
}

// TestChaosParallelSolveInvariants arms the registry inside stratified
// parallel solves: problems big enough to stratify, SolveWorkers 2 and 8,
// all nine points armed under the second pinned seed. The three result
// invariants must hold under the parallel schedule exactly as they do
// sequentially — every job answered, every answer exact or soundly
// Ω-degraded, and a core.strata fault always landing as a degradation,
// never as an error or a torn solution.
func TestChaosParallelSolveInvariants(t *testing.T) {
	const nProblems = 4
	const passes = 3
	gens := make([]*core.Gen, nProblems)
	for i := range gens {
		gens[i] = &core.Gen{Problem: differential.Generate(int64(i+1), differential.DefaultGen())}
	}
	cfgs := []core.Config{
		core.MustParseConfig("IP+WL(FIFO)+PIP"),
		core.MustParseConfig("EP+OVS+WL(LRF)+OCD"),
	}
	cfgs[0].SolveWorkers = 2
	cfgs[1].SolveWorkers = 8

	// Ground truth before arming; worker counts cannot change it (that is
	// the differential gate), so each config's fingerprint doubles as the
	// exactness oracle for every schedule chaos produces.
	exact := map[string]string{}
	for ci, cfg := range cfgs {
		for gi, g := range gens {
			exact[fmt.Sprintf("%d/%d", ci, gi)] = core.MustSolve(g.Problem, cfg).Fingerprint()
		}
	}

	spec := fmt.Sprintf("seed=%d"+
		";core.solve=error:0.02"+
		";core.strata=error:0.25"+
		";core.collapse=error:0.03"+
		";engine.dispatch=panic:0.02"+
		";engine.cache.insert=flip:0.5"+
		";engine.cache.lookup=error:0.02",
		chaosSeedParallel())
	reg, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	t.Cleanup(faults.Disarm)

	eng := engine.New(engine.Options{Workers: 4, Cache: true, Retry: engine.RetryPolicy{Max: 3}})
	var failed, degraded, exactCount int
	for pass := 0; pass < passes; pass++ {
		for ci, cfg := range cfgs {
			var jobs []engine.Job
			for gi, g := range gens {
				jobs = append(jobs, engine.Job{
					Gen:    g,
					Config: cfg,
					Key:    fmt.Sprintf("chaos-par-%d-%d", ci, gi),
				})
			}
			for gi, res := range eng.Run(jobs) {
				switch {
				case res.Err != nil:
					if !faults.IsFault(res.Err) && !strings.Contains(res.Err.Error(), "job panicked") {
						t.Fatalf("pass %d cfg %d gen %d: non-fault error: %v", pass, ci, gi, res.Err)
					}
					failed++
				case res.Degraded:
					if !res.Sol.Degraded {
						t.Fatalf("pass %d cfg %d gen %d: Degraded result with non-degraded solution", pass, ci, gi)
					}
					degraded++
				default:
					key := fmt.Sprintf("%d/%d", ci, gi)
					if res.Sol.Fingerprint() != exact[key] {
						t.Fatalf("pass %d cfg %d gen %d: unsound non-degraded solution under parallel chaos", pass, ci, gi)
					}
					exactCount++
				}
			}
		}
	}
	t.Logf("chaos parallel: %d exact, %d degraded, %d failed over %d jobs",
		exactCount, degraded, failed, passes*len(cfgs)*nProblems)
	if exactCount == 0 {
		t.Fatal("chaos drowned every job; the suite proved nothing — lower the rates")
	}
	if degraded == 0 {
		t.Fatal("25% strata faults never degraded a solve; the parallel path is not being exercised")
	}
	if reg.Hits(faults.CoreStrata) == 0 {
		t.Fatal("core.strata point never reached")
	}
}
