package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(xs, 0); !approx(got, 1) {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); !approx(got, 10) {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !approx(got, 5.5) {
		t.Fatalf("median = %v, want 5.5", got)
	}
	if got := Quantile([]float64{42}, 0.9); !approx(got, 42) {
		t.Fatalf("single-element quantile = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := Summarize(xs)
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
	if !approx(s.Max, 100) {
		t.Fatalf("Max = %v", s.Max)
	}
	if !approx(s.Mean, 50.5) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.P10 < 10 || s.P10 > 12 {
		t.Fatalf("P10 = %v", s.P10)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.P25 > s.P50 || s.P50 > s.P90 || s.P90 > s.P99 {
		t.Fatal("quantiles not monotone")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Summarize mutated input: %v", xs)
	}
}

func TestMeanSumGeoMean(t *testing.T) {
	if !approx(Mean([]float64{2, 4}), 3) {
		t.Fatal("Mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if !approx(Sum([]float64{1, 2, 3}), 6) {
		t.Fatal("Sum")
	}
	if !approx(GeoMean([]float64{1, 4}), 2) {
		t.Fatal("GeoMean")
	}
	if GeoMean([]float64{0, -1}) != 0 {
		t.Fatal("GeoMean of non-positive values")
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		999:      "999",
		1000:     "1 000",
		43437029: "43 437 029",
		-1234:    "-1 234",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Fatalf("FormatCount(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "Demo",
		Header: []string{"Name", "p50", "Max"},
	}
	tab.AddRow("alpha", "10", "100")
	tab.AddRow("beta-long-name", "7", "9999")
	out := tab.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// All data lines equal width (right-aligned numeric columns).
	if len(lines[1]) == 0 || !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("unexpected layout:\n%s", out)
	}
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("rows not aligned:\n%s", out)
	}
}

func TestScatter(t *testing.T) {
	x := make([]float64, 50)
	r := make([]float64, 50)
	for i := range x {
		x[i] = float64(i + 1)
		r[i] = 2.0
	}
	out := Scatter("fig", x, r)
	if !strings.Contains(out, "fig") || !strings.Contains(out, "geomean") {
		t.Fatalf("scatter output malformed:\n%s", out)
	}
	if strings.Count(out, "\n") < 5 {
		t.Fatalf("scatter too short:\n%s", out)
	}
	if got := Scatter("empty", nil, nil); !strings.Contains(got, "no data") {
		t.Fatalf("empty scatter: %q", got)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, []float64{1, 2}, []float64{3})
	want := "a,b\n1,3\n2,\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := Quantile(xs, q1), Quantile(xs, q2)
		return a <= b+1e-9 && a >= xs[0]-1e-9 && b <= xs[len(xs)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
