// Package stats provides the summary statistics, distribution quantiles, and
// text-table rendering used to regenerate the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the distribution statistics reported in the paper's
// Tables V and VI: quantiles p10/p25/p50/p90/p99, the maximum, and the mean.
type Summary struct {
	P10, P25, P50, P90, P99 float64
	Max                     float64
	Mean                    float64
	N                       int
}

// Summarize computes a Summary of xs. It copies and sorts the input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, x := range s {
		sum += x
	}
	return Summary{
		P10:  Quantile(s, 0.10),
		P25:  Quantile(s, 0.25),
		P50:  Quantile(s, 0.50),
		P90:  Quantile(s, 0.90),
		P99:  Quantile(s, 0.99),
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
		N:    len(s),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted slice,
// using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// GeoMean returns the geometric mean of xs. Non-positive values are skipped;
// if none remain, it returns 0.
func GeoMean(xs []float64) float64 {
	logSum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// FormatCount renders a non-negative number with thin thousands separators
// in the paper's style, e.g. 43437029 -> "43 437 029".
func FormatCount(v float64) string {
	n := int64(math.Round(v))
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, " ")
	if neg {
		out = "-" + out
	}
	return out
}

// Table is a simple right-aligned text table with a left-aligned first
// column, matching the layout of the paper's tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells to the table.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Scatter renders an ASCII log-log style scatter summary of a ratio series,
// standing in for the paper's Figure 10 plots: each line is a decile of the
// x-axis metric with the distribution of ratios in that decile.
func Scatter(title string, x, ratio []float64) string {
	if len(x) != len(ratio) || len(x) == 0 {
		return title + ": (no data)\n"
	}
	type pt struct{ x, r float64 }
	pts := make([]pt, len(x))
	for i := range x {
		pts[i] = pt{x[i], ratio[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-24s %10s %10s %10s %10s\n", "x-decile", "min", "median", "geomean", "max")
	const buckets = 10
	for bi := 0; bi < buckets; bi++ {
		lo := bi * len(pts) / buckets
		hi := (bi + 1) * len(pts) / buckets
		if lo >= hi {
			continue
		}
		rs := make([]float64, 0, hi-lo)
		for _, p := range pts[lo:hi] {
			rs = append(rs, p.r)
		}
		sort.Float64s(rs)
		label := fmt.Sprintf("[%.3g, %.3g]", pts[lo].x, pts[hi-1].x)
		fmt.Fprintf(&b, "%-24s %10.3g %10.3g %10.3g %10.3g\n",
			label, rs[0], Quantile(rs, 0.5), GeoMean(rs), rs[len(rs)-1])
	}
	return b.String()
}

// CSV renders columns as comma-separated values with a header, used to dump
// figure series for external plotting.
func CSV(header []string, cols ...[]float64) string {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	n := 0
	for _, c := range cols {
		if len(c) > n {
			n = len(c)
		}
	}
	for i := 0; i < n; i++ {
		for j, c := range cols {
			if j > 0 {
				b.WriteByte(',')
			}
			if i < len(c) {
				fmt.Fprintf(&b, "%g", c[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
