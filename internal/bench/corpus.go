// Package bench implements the experiment drivers that regenerate every
// table and figure of the paper's evaluation (Section VI): Table III
// (corpus summary), Figure 9 (alias precision), Table V (solver runtime),
// Figure 10 (per-file runtime ratios), Table VI (explicit pointees), and
// the headline numbers quoted in the text. All drivers run on the parallel
// batch-analysis engine (internal/engine); per-file solves fan out across
// the corpus, and results are deterministic in corpus order regardless of
// the worker count.
package bench

import (
	"fmt"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/engine"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/workload"
)

// CorpusFile is one benchmark file with its phase-1 output.
type CorpusFile struct {
	workload.File
	Gen *core.Gen
	// Hash is the module's content hash, the base of engine cache keys.
	Hash string
}

// Corpus is the generated benchmark corpus with constraints built once
// (phase 1 is identical across solver configurations, so it is hoisted out
// of the timed region, as in the paper, which times the solving phase).
type Corpus struct {
	Opts  workload.Options
	Files []CorpusFile
	// Workers bounds the engine pool used by the measurement drivers;
	// <= 0 means GOMAXPROCS.
	Workers int
	// Budget bounds every solve the drivers run; files that exhaust it
	// produce Ω-degraded (still sound) rows. The zero value means none.
	Budget core.Budget
	// SolveWorkers is the intra-solve worker count folded into every
	// measured configuration (core.Config.SolveWorkers): 0 benches the
	// legacy sequential solver, >= 1 benches stratified presaturation.
	SolveWorkers int
	// CacheEntries bounds the solution cache of caching drivers; <= 0
	// means unbounded (fine for a bounded corpus, wrong for a daemon).
	CacheEntries int
	// Trace, when set, records job and solve spans from every engine the
	// drivers create (pipbench -trace).
	Trace *obs.Trace

	// engines tracks every engine the drivers created, so EngineStats can
	// aggregate pool counters across a whole measurement run.
	engines []*engine.Engine
}

// BuildCorpus generates the corpus and runs constraint generation with the
// default worker pool.
func BuildCorpus(opts workload.Options) *Corpus {
	return BuildCorpusParallel(opts, 0)
}

// BuildCorpusParallel is BuildCorpus with an explicit worker bound. Module
// generation is sequential (it is one seeded PRNG stream); constraint
// generation and content hashing, the expensive parts, fan out.
func BuildCorpusParallel(opts workload.Options, workers int) *Corpus {
	files := workload.GenerateCorpus(opts)
	c := &Corpus{Opts: opts, Workers: workers, Files: make([]CorpusFile, len(files))}
	engine.RunIndexed(len(files), workers, func(i int) {
		c.Files[i] = CorpusFile{
			File: files[i],
			Gen:  core.Generate(files[i].Module),
			Hash: engine.ModuleHash(files[i].Module),
		}
	})
	return c
}

// engineFor returns a fresh engine sized for this corpus's drivers and
// remembers it for EngineStats aggregation.
func (c *Corpus) engineFor(cache bool) *engine.Engine {
	e := engine.New(engine.Options{Workers: c.Workers, Cache: cache, CacheEntries: c.CacheEntries, Budget: c.Budget, Trace: c.Trace})
	c.engines = append(c.engines, e)
	return e
}

// EngineStats aggregates the pool counters (and solver telemetry) of every
// engine the drivers have created so far.
func (c *Corpus) EngineStats() engine.Stats {
	var st engine.Stats
	for _, e := range c.engines {
		st.Merge(e.Stats())
	}
	return st
}

// Jobs builds one engine job per corpus file under cfg, keyed by content
// hash so caching engines can reuse solutions across passes. The corpus
// budget is folded into the configuration here so the cache key reflects
// the effective (budgeted) configuration.
func (c *Corpus) Jobs(cfg core.Config, reps int) []engine.Job {
	if cfg.Budget.IsZero() {
		cfg.Budget = c.Budget
	}
	if cfg.SolveWorkers == 0 {
		cfg.SolveWorkers = c.SolveWorkers
	}
	jobs := make([]engine.Job, len(c.Files))
	for i, f := range c.Files {
		jobs[i] = engine.Job{
			Key:    engine.CacheKey(f.Hash, cfg),
			Gen:    f.Gen,
			Config: cfg,
			Reps:   reps,
		}
	}
	return jobs
}

// SuiteNames returns the suite names in corpus order.
func (c *Corpus) SuiteNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, f := range c.Files {
		if !seen[f.Suite] {
			seen[f.Suite] = true
			names = append(names, f.Suite)
		}
	}
	return names
}

// String summarizes the corpus.
func (c *Corpus) String() string {
	instrs := 0
	for _, f := range c.Files {
		instrs += f.Module.NumInstrs()
	}
	return fmt.Sprintf("corpus: %d files, %d IR instructions (scale=%.3g, sizeScale=%.3g)",
		len(c.Files), instrs, c.Opts.Scale, c.Opts.SizeScale)
}

// solveOnce solves one file under cfg and returns the solution.
func solveOnce(f CorpusFile, cfg core.Config) *core.Solution {
	return core.MustSolve(f.Gen.Problem, cfg)
}

// mustResults converts engine failures into panics: corpus files are
// generated valid, so a failed job is a bug, and the drivers keep the old
// MustSolve semantics.
func mustResults(rs []engine.Result) []engine.Result {
	for i, r := range rs {
		if r.Err != nil {
			panic(fmt.Sprintf("bench: corpus job %d failed: %v", i, r.Err))
		}
	}
	return rs
}
