// Package bench implements the experiment drivers that regenerate every
// table and figure of the paper's evaluation (Section VI): Table III
// (corpus summary), Figure 9 (alias precision), Table V (solver runtime),
// Figure 10 (per-file runtime ratios), Table VI (explicit pointees), and
// the headline numbers quoted in the text.
package bench

import (
	"fmt"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/workload"
)

// CorpusFile is one benchmark file with its phase-1 output.
type CorpusFile struct {
	workload.File
	Gen *core.Gen
}

// Corpus is the generated benchmark corpus with constraints built once
// (phase 1 is identical across solver configurations, so it is hoisted out
// of the timed region, as in the paper, which times the solving phase).
type Corpus struct {
	Opts  workload.Options
	Files []CorpusFile
}

// BuildCorpus generates the corpus and runs constraint generation.
func BuildCorpus(opts workload.Options) *Corpus {
	files := workload.GenerateCorpus(opts)
	c := &Corpus{Opts: opts}
	for _, f := range files {
		c.Files = append(c.Files, CorpusFile{File: f, Gen: core.Generate(f.Module)})
	}
	return c
}

// SuiteNames returns the suite names in corpus order.
func (c *Corpus) SuiteNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, f := range c.Files {
		if !seen[f.Suite] {
			seen[f.Suite] = true
			names = append(names, f.Suite)
		}
	}
	return names
}

// String summarizes the corpus.
func (c *Corpus) String() string {
	instrs := 0
	for _, f := range c.Files {
		instrs += f.Module.NumInstrs()
	}
	return fmt.Sprintf("corpus: %d files, %d IR instructions (scale=%.3g, sizeScale=%.3g)",
		len(c.Files), instrs, c.Opts.Scale, c.Opts.SizeScale)
}

// solveOnce solves one file under cfg and returns the solution.
func solveOnce(f CorpusFile, cfg core.Config) *core.Solution {
	return core.MustSolve(f.Gen.Problem, cfg)
}
