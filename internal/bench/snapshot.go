package bench

import (
	"encoding/json"
	"runtime"
	"sort"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/stats"
)

// ConfigSnapshot is one configuration's roll-up inside a RunSnapshot:
// aggregate solve wall time plus the telemetry counters that track
// solver effort (rule firings, worklist pressure).
type ConfigSnapshot struct {
	Config string `json:"config"`
	// SolveWallUS is the summed best-of-reps solve time across files, in
	// microseconds — the "total solving work" number CI diffs across PRs.
	SolveWallUS float64 `json:"solve_wall_us"`
	MeanUS      float64 `json:"mean_us"`
	P50US       float64 `json:"p50_us"`
	P99US       float64 `json:"p99_us"`
	MaxUS       float64 `json:"max_us"`
	// Degraded counts files whose solve exhausted the corpus budget.
	Degraded int `json:"degraded"`
	// Firings sums inference-rule applications across all files.
	Firings core.RuleFirings `json:"firings"`
	// WorklistPeak is the largest per-file worklist high-water mark.
	WorklistPeak int `json:"worklist_peak"`
}

// RunSnapshot is the machine-readable summary of one benchmark run,
// written by pipbench -json. It pins the corpus parameters next to the
// numbers so snapshots from different runs are comparable (or visibly
// not).
type RunSnapshot struct {
	Files     int     `json:"files"`
	Instrs    int     `json:"instrs"`
	Scale     float64 `json:"scale"`
	SizeScale float64 `json:"size_scale"`
	Seed      int64   `json:"seed"`
	Reps      int     `json:"reps"`
	Workers   int     `json:"workers"`
	// SolveWorkers is the intra-solve worker count every measured config
	// ran with (0 = legacy sequential solver).
	SolveWorkers int `json:"solve_workers"`
	GoMaxProcs   int `json:"gomaxprocs"`
	// OracleWallUS is the EP Oracle's summed per-file minimum.
	OracleWallUS float64          `json:"oracle_wall_us"`
	Configs      []ConfigSnapshot `json:"configs"`
	Headline     HeadlineNumbers  `json:"headline"`
	// Incremental is the incremental re-solve measurement, present when
	// the run included the incremental driver (pipbench -run incremental).
	Incremental *IncrementalResult `json:"incremental,omitempty"`
	// Store is the persistent-store warm-restart measurement, present when
	// the run included the store driver (pipbench -run store).
	Store *StoreResult `json:"store,omitempty"`
}

// Snapshot rolls a runtime measurement into a RunSnapshot. Every
// measured configuration appears, sorted by name, so the JSON is
// deterministic modulo timings.
func Snapshot(c *Corpus, res *RuntimeResult, reps int) RunSnapshot {
	snap := RunSnapshot{
		Files:        len(c.Files),
		Scale:        c.Opts.Scale,
		SizeScale:    c.Opts.SizeScale,
		Seed:         c.Opts.Seed,
		Reps:         reps,
		Workers:      c.Workers,
		SolveWorkers: c.SolveWorkers,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		OracleWallUS: stats.Sum(res.Oracle),
		Headline:     Headline(res),
	}
	for _, f := range c.Files {
		snap.Instrs += f.Module.NumInstrs()
	}
	names := make([]string, 0, len(res.PerFile))
	for name := range res.PerFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := stats.Summarize(res.PerFile[name])
		snap.Configs = append(snap.Configs, ConfigSnapshot{
			Config:       name,
			SolveWallUS:  stats.Sum(res.PerFile[name]),
			MeanUS:       s.Mean,
			P50US:        s.P50,
			P99US:        s.P99,
			MaxUS:        s.Max,
			Degraded:     res.Degraded[name],
			Firings:      res.Firings[name],
			WorklistPeak: res.WorklistPeak[name],
		})
	}
	return snap
}

// JSON renders the snapshot as indented JSON with a trailing newline.
func (s RunSnapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "{}" // unreachable: RunSnapshot has no unmarshalable fields
	}
	return string(b) + "\n"
}
