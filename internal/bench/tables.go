package bench

import (
	"fmt"
	"sort"
	"strings"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/stats"
)

// Table3 reproduces Table III: per-suite file counts and the mean/max of
// IR instructions, |V|, and |C| per analyzed file.
func Table3(c *Corpus) string {
	type agg struct {
		files              int
		instrs, vars, cons []float64
	}
	bySuite := map[string]*agg{}
	for _, f := range c.Files {
		a := bySuite[f.Suite]
		if a == nil {
			a = &agg{}
			bySuite[f.Suite] = a
		}
		a.files++
		a.instrs = append(a.instrs, float64(f.Module.NumInstrs()))
		a.vars = append(a.vars, float64(f.Gen.Problem.NumVars()))
		a.cons = append(a.cons, float64(f.Gen.Problem.NumConstraints()))
	}
	tab := &stats.Table{
		Title:  "Table III: programs used to benchmark points-to analysis runtime and precision (generated corpus)",
		Header: []string{"Name", "#Files", "Instr mean", "Instr max", "|V| mean", "|V| max", "|C| mean", "|C| max"},
	}
	mx := func(xs []float64) float64 {
		m := 0.0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	for _, name := range c.SuiteNames() {
		a := bySuite[name]
		tab.AddRow(name,
			fmt.Sprint(a.files),
			stats.FormatCount(stats.Mean(a.instrs)), stats.FormatCount(mx(a.instrs)),
			stats.FormatCount(stats.Mean(a.vars)), stats.FormatCount(mx(a.vars)),
			stats.FormatCount(stats.Mean(a.cons)), stats.FormatCount(mx(a.cons)))
	}
	return tab.String()
}

// Table5Configs are the named configurations of the paper's Table V.
var Table5Configs = []string{
	"EP+OVS+WL(LRF)+OCD",
	"IP+WL(FIFO)+LCD+DP",
	"IP+WL(FIFO)",
	"IP+WL(FIFO)+PIP",
}

// EPOracleConfigs is the configuration pool the EP Oracle minimizes over.
// The paper's oracle picks the fastest of all EP configurations per file;
// we use a representative pool covering every technique family (the paper
// notes 98% of the oracle's wins come from the naive solver and the rest
// from OVS, both of which are included).
var EPOracleConfigs = []string{
	"EP+Naive",
	"EP+OVS+Naive",
	"EP+WL(FIFO)",
	"EP+WL(LRF)+OCD",
	"EP+OVS+WL(LRF)+OCD",
	"EP+WL(FIFO)+LCD+DP",
	"EP+OVS+WL(FIFO)+LCD+DP",
	"EP+WL(2LRF)+HCD",
}

// RuntimeResult holds per-file solver timings (µs) and derived statistics.
type RuntimeResult struct {
	// PerFile maps configuration name to µs per file, in corpus order.
	PerFile map[string][]float64
	// Oracle is the per-file minimum across EPOracleConfigs.
	Oracle []float64
	// Pointees maps configuration name to explicit-pointee counts.
	Pointees map[string][]int
	// Bytes maps configuration name to approximate solution memory.
	Bytes map[string][]int
	// Degraded maps configuration name to the number of files whose solve
	// exhausted the corpus budget and fell back to the Ω-degraded
	// solution. Degraded rows keep their (budget-bounded) timings but are
	// excluded from the pointee/bytes aggregates' meaningfulness.
	Degraded map[string]int
	// Firings maps configuration name to inference-rule firings summed
	// across all files (from each solution's telemetry block).
	Firings map[string]core.RuleFirings
	// WorklistPeak maps configuration name to the largest per-file
	// worklist high-water mark.
	WorklistPeak map[string]int
	// PointsExtFraction is the fraction of pointers with p ⊒ Ω, measured
	// on the reference configuration (paper Section VI: 51%).
	PointsExtFraction float64
}

// MeasureRuntime solves every file under every Table V configuration plus
// the EP-oracle pool, repeating each measurement reps times and keeping the
// fastest (the paper solves each file 50 times).
func MeasureRuntime(c *Corpus, reps int) *RuntimeResult {
	return MeasureRuntimeVerbose(c, reps, nil)
}

// MeasureRuntimeVerbose is MeasureRuntime with per-configuration progress
// reporting through logf (may be nil). Each configuration's per-file
// solves fan out across the corpus's engine pool; all derived metrics
// (pointees, bytes, the p ⊒ Ω fraction) are deterministic in the corpus,
// only the timings vary run to run.
func MeasureRuntimeVerbose(c *Corpus, reps int, logf func(format string, args ...interface{})) *RuntimeResult {
	if reps < 1 {
		reps = 1
	}
	res := &RuntimeResult{
		PerFile:      map[string][]float64{},
		Pointees:     map[string][]int{},
		Bytes:        map[string][]int{},
		Degraded:     map[string]int{},
		Firings:      map[string]core.RuleFirings{},
		WorklistPeak: map[string]int{},
	}
	all := map[string]bool{}
	for _, name := range Table5Configs {
		all[name] = true
	}
	for _, name := range EPOracleConfigs {
		all[name] = true
	}
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)

	// Timing runs must re-solve, so the cache stays off here.
	eng := c.engineFor(false)
	var ptrTotal, ptrExt int
	for _, name := range names {
		cfg := core.MustParseConfig(name)
		if logf != nil {
			logf("  solving %d files x %d reps with %s (%d workers)",
				len(c.Files), reps, name, eng.Workers())
		}
		rs := mustResults(eng.Run(c.Jobs(cfg, reps)))
		times := make([]float64, len(c.Files))
		pointees := make([]int, len(c.Files))
		bytes := make([]int, len(c.Files))
		firings := res.Firings[name]
		for i, r := range rs {
			times[i] = float64(r.Duration.Nanoseconds()) / 1e3
			pointees[i] = r.Sol.Stats.ExplicitPointees
			bytes[i] = r.Sol.ApproxBytes()
			firings.Add(r.Sol.Telemetry.Firings)
			if wp := r.Sol.Telemetry.WorklistPeak; wp > res.WorklistPeak[name] {
				res.WorklistPeak[name] = wp
			}
			if r.Degraded {
				res.Degraded[name]++
			}
			if name == "IP+WL(FIFO)+PIP" {
				p := c.Files[i].Gen.Problem
				for v := core.VarID(0); v < core.VarID(p.NumVars()); v++ {
					if p.PtrCompat[v] {
						ptrTotal++
						if r.Sol.PointsToExternal(v) {
							ptrExt++
						}
					}
				}
			}
		}
		res.PerFile[name] = times
		res.Pointees[name] = pointees
		res.Bytes[name] = bytes
		res.Firings[name] = firings
		if n := res.Degraded[name]; n > 0 && logf != nil {
			logf("  %s: %d/%d files hit the budget and degraded", name, n, len(c.Files))
		}
	}
	if ptrTotal > 0 {
		res.PointsExtFraction = float64(ptrExt) / float64(ptrTotal)
	}

	// EP Oracle: per-file minimum.
	res.Oracle = make([]float64, len(c.Files))
	for i := range c.Files {
		best := -1.0
		for _, name := range EPOracleConfigs {
			t := res.PerFile[name][i]
			if best < 0 || t < best {
				best = t
			}
		}
		res.Oracle[i] = best
	}
	return res
}

// Table5 renders the runtime distribution table.
func Table5(res *RuntimeResult) string {
	tab := &stats.Table{
		Title:  "Table V: constraint graph solver runtime for selected configurations [µs]",
		Header: []string{"Configuration", "p10", "p25", "p50", "p90", "p99", "Max", "Mean"},
	}
	row := func(name string, xs []float64) {
		s := stats.Summarize(xs)
		tab.AddRow(name,
			stats.FormatCount(s.P10), stats.FormatCount(s.P25), stats.FormatCount(s.P50),
			stats.FormatCount(s.P90), stats.FormatCount(s.P99), stats.FormatCount(s.Max),
			stats.FormatCount(s.Mean))
	}
	row("EP+OVS+WL(LRF)+OCD", res.PerFile["EP+OVS+WL(LRF)+OCD"])
	row("EP Oracle", res.Oracle)
	row("IP+WL(FIFO)+LCD+DP", res.PerFile["IP+WL(FIFO)+LCD+DP"])
	row("IP+WL(FIFO)", res.PerFile["IP+WL(FIFO)"])
	row("IP+WL(FIFO)+PIP", res.PerFile["IP+WL(FIFO)+PIP"])
	return tab.String()
}

// Table6 renders the explicit-pointee distribution table.
func Table6(res *RuntimeResult) string {
	tab := &stats.Table{
		Title:  "Table VI: number of explicit pointees in the solutions",
		Header: []string{"Configuration", "p10", "p25", "p50", "p90", "p99", "Max", "Mean"},
	}
	for _, name := range []string{"EP+OVS+WL(LRF)+OCD", "IP+WL(FIFO)", "IP+WL(FIFO)+LCD+DP", "IP+WL(FIFO)+PIP"} {
		xs := make([]float64, len(res.Pointees[name]))
		for i, v := range res.Pointees[name] {
			xs[i] = float64(v)
		}
		s := stats.Summarize(xs)
		tab.AddRow(name,
			stats.FormatCount(s.P10), stats.FormatCount(s.P25), stats.FormatCount(s.P50),
			stats.FormatCount(s.P90), stats.FormatCount(s.P99), stats.FormatCount(s.Max),
			stats.FormatCount(s.Mean))
	}
	return tab.String()
}

// Figure10 renders both per-file ratio plots as decile summaries and CSV
// series: IP (sans PIP) vs the EP Oracle, and PIP vs the best
// configuration without PIP.
func Figure10(res *RuntimeResult) string {
	var b strings.Builder
	ip := res.PerFile["IP+WL(FIFO)+LCD+DP"]
	pip := res.PerFile["IP+WL(FIFO)+PIP"]

	ratio1 := make([]float64, len(ip))
	for i := range ip {
		if ip[i] > 0 {
			ratio1[i] = res.Oracle[i] / ip[i]
		}
	}
	b.WriteString(stats.Scatter(
		"Figure 10 (top): EP-Oracle time / IP+WL(FIFO)+LCD+DP time, by EP-Oracle runtime [µs] (ratio > 1 means IP wins)",
		res.Oracle, ratio1))
	b.WriteByte('\n')

	ratio2 := make([]float64, len(ip))
	for i := range ip {
		if pip[i] > 0 {
			ratio2[i] = ip[i] / pip[i]
		}
	}
	b.WriteString(stats.Scatter(
		"Figure 10 (bottom): best-without-PIP time / IP+WL(FIFO)+PIP time, by no-PIP runtime [µs] (ratio > 1 means PIP wins)",
		ip, ratio2))
	return b.String()
}

// Figure10CSV dumps the raw ratio series for external plotting.
func Figure10CSV(res *RuntimeResult) string {
	ip := res.PerFile["IP+WL(FIFO)+LCD+DP"]
	pip := res.PerFile["IP+WL(FIFO)+PIP"]
	return stats.CSV(
		[]string{"ep_oracle_us", "ip_lcd_dp_us", "ip_pip_us"},
		res.Oracle, ip, pip)
}

// Headline computes the numbers quoted in the paper's running text.
type HeadlineNumbers struct {
	// PointsExtFraction: "51% of all pointers end up pointing to external
	// memory".
	PointsExtFraction float64
	// IPvsEPOracle: "15× faster than the EP Oracle" (total-time ratio).
	IPvsEPOracle float64
	// PIPvsBestNoPIP: "1.9× faster than the best configuration without
	// PIP" (mean-time ratio).
	PIPvsBestNoPIP float64
	// PIPvsPlainIP: "enabling PIP decreases the average solver runtime by
	// 14×" relative to IP+WL(FIFO).
	PIPvsPlainIP float64
	// LCDDPvsPlainIP: "LCD+DP only reduces the average by 7×".
	LCDDPvsPlainIP float64
}

// Headline derives the text numbers from measured runtimes.
func Headline(res *RuntimeResult) HeadlineNumbers {
	total := func(xs []float64) float64 { return stats.Sum(xs) }
	h := HeadlineNumbers{PointsExtFraction: res.PointsExtFraction}
	ipBest := res.PerFile["IP+WL(FIFO)+LCD+DP"]
	plain := res.PerFile["IP+WL(FIFO)"]
	pip := res.PerFile["IP+WL(FIFO)+PIP"]
	if t := total(ipBest); t > 0 {
		h.IPvsEPOracle = total(res.Oracle) / t
	}
	if t := total(pip); t > 0 {
		h.PIPvsBestNoPIP = total(ipBest) / t
		h.PIPvsPlainIP = total(plain) / t
	}
	if t := total(ipBest); t > 0 {
		h.LCDDPvsPlainIP = total(plain) / t
	}
	return h
}

// RenderScalability reports the memory side of the evaluation (Section
// VI-C): approximate bytes backing the explicit points-to sets, per
// configuration.
func RenderScalability(res *RuntimeResult) string {
	tab := &stats.Table{
		Title:  "Solver memory scalability (Section VI-C): approximate Sol_e bytes per file",
		Header: []string{"Configuration", "p50", "p99", "Max", "Mean", "Total"},
	}
	for _, name := range []string{"EP+OVS+WL(LRF)+OCD", "IP+WL(FIFO)", "IP+WL(FIFO)+LCD+DP", "IP+WL(FIFO)+PIP"} {
		xs := make([]float64, len(res.Bytes[name]))
		total := 0.0
		for i, v := range res.Bytes[name] {
			xs[i] = float64(v)
			total += float64(v)
		}
		s := stats.Summarize(xs)
		tab.AddRow(name,
			stats.FormatCount(s.P50), stats.FormatCount(s.P99),
			stats.FormatCount(s.Max), stats.FormatCount(s.Mean),
			stats.FormatCount(total))
	}
	return tab.String()
}

// RenderHeadline formats the headline comparison against the paper.
func RenderHeadline(h HeadlineNumbers) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline numbers (paper value in parentheses):\n")
	fmt.Fprintf(&b, "  pointers with p ⊒ Ω:              %5.1f%%  (51%%)\n", 100*h.PointsExtFraction)
	fmt.Fprintf(&b, "  IP best-no-PIP vs EP Oracle:      %5.1fx  (15x)\n", h.IPvsEPOracle)
	fmt.Fprintf(&b, "  PIP vs best configuration w/o PIP:%5.1fx  (1.9x)\n", h.PIPvsBestNoPIP)
	fmt.Fprintf(&b, "  PIP vs plain IP+WL(FIFO):         %5.1fx  (14x)\n", h.PIPvsPlainIP)
	fmt.Fprintf(&b, "  LCD+DP vs plain IP+WL(FIFO):      %5.1fx  (7x)\n", h.LCDDPvsPlainIP)
	return b.String()
}
