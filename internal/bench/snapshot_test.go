package bench

import (
	"encoding/json"
	"testing"
)

// TestSnapshotRoundTrip: the -json snapshot covers every measured
// configuration with non-trivial telemetry and survives a JSON round
// trip.
func TestSnapshotRoundTrip(t *testing.T) {
	c := BuildCorpus(tinyOpts)
	if len(c.Files) == 0 {
		t.Fatal("empty corpus")
	}
	res := MeasureRuntime(c, 1)
	snap := Snapshot(c, res, 1)

	if snap.Files != len(c.Files) || snap.Instrs == 0 || snap.Reps != 1 {
		t.Fatalf("corpus header wrong: %+v", snap)
	}
	if len(snap.Configs) != len(res.PerFile) {
		t.Fatalf("snapshot has %d configs, measured %d", len(snap.Configs), len(res.PerFile))
	}
	seen := map[string]bool{}
	for _, cs := range snap.Configs {
		seen[cs.Config] = true
		if cs.SolveWallUS <= 0 {
			t.Errorf("%s: no wall time", cs.Config)
		}
		if cs.Firings.Total() == 0 {
			t.Errorf("%s: no rule firings", cs.Config)
		}
		if cs.WorklistPeak == 0 && cs.Config != "EP+Naive" && cs.Config != "EP+OVS+Naive" {
			t.Errorf("%s: no worklist peak", cs.Config)
		}
	}
	for _, name := range Table5Configs {
		if !seen[name] {
			t.Errorf("Table V configuration %s missing from snapshot", name)
		}
	}
	if snap.OracleWallUS <= 0 {
		t.Error("oracle wall missing")
	}

	var back RunSnapshot
	if err := json.Unmarshal([]byte(snap.JSON()), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back.Files != snap.Files || len(back.Configs) != len(snap.Configs) ||
		back.Configs[0].Firings != snap.Configs[0].Firings {
		t.Fatalf("round trip lost data:\n%+v\n%+v", snap, back)
	}
}
