package bench

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"time"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/engine"
	"github.com/pip-analysis/pip/internal/store"
)

// StoreResult summarizes the warm-restart measurement: the corpus solved
// cold (solve + flush to the persistent store) versus answered by a
// restarted engine over the same store directory (every file a
// fingerprint-verified disk hit, zero re-solves). Times in microseconds.
type StoreResult struct {
	Config string `json:"config"`
	Files  int    `json:"files"`
	// ColdUS is the cold pass: solve every file and flush the store.
	ColdUS float64 `json:"cold_us"`
	// WarmUS is the restarted pass: answer every file from the store.
	WarmUS float64 `json:"warm_us"`
	// Speedup is ColdUS / WarmUS.
	Speedup float64 `json:"speedup"`
	// DiskHits counts warm answers served from the store — equal to
	// Files when nothing degraded.
	DiskHits int64 `json:"disk_hits"`
	// Resolves counts warm-pass rule firings — the zero-re-solves check.
	Resolves int64 `json:"resolves"`
	// StoreBytes is the on-disk size of the flushed store.
	StoreBytes int64 `json:"store_bytes"`
	// Entries is the number of live store records after the cold pass.
	Entries int `json:"entries"`
}

// MeasureStore times a warm restart against the cold solve it replays.
// The cold engine solves every corpus file and drains to a fresh store
// under dir; a second engine — cold memory, same directory, the restart
// — then answers the same jobs. Every warm answer must be a verified
// disk hit with a fingerprint bit-identical to the cold solve's; a
// mismatch panics, since it would invalidate both the numbers and the
// store's verify-on-load contract.
func MeasureStore(c *Corpus, dir string) StoreResult {
	cfg := core.DefaultConfig()
	jobs := c.Jobs(cfg, 1)
	res := StoreResult{Config: cfg.String(), Files: len(c.Files)}

	ds, err := store.Open(dir)
	if err != nil {
		panic(fmt.Sprintf("bench: store open: %v", err))
	}
	cold := engine.New(engine.Options{Workers: c.Workers, Cache: true, Budget: c.Budget})
	cold.SetStore(ds)
	t0 := time.Now()
	coldRes := cold.Run(jobs)
	if err := cold.SyncStore(); err != nil {
		panic(fmt.Sprintf("bench: store flush: %v", err))
	}
	res.ColdUS = float64(time.Since(t0).Nanoseconds()) / 1e3
	fps := make([]string, len(coldRes))
	degraded := 0
	for i, r := range coldRes {
		if r.Err != nil {
			panic(fmt.Sprintf("bench: cold solve %d failed: %v", i, r.Err))
		}
		fps[i] = r.Sol.Fingerprint()
		if r.Degraded {
			degraded++
		}
	}
	res.Entries = ds.Len()
	res.StoreBytes = dirBytes(dir)
	if err := ds.Close(); err != nil {
		panic(fmt.Sprintf("bench: store close: %v", err))
	}

	// The restart: cold memory tier, same directory.
	ds2, err := store.Open(dir)
	if err != nil {
		panic(fmt.Sprintf("bench: store reopen: %v", err))
	}
	warm := engine.New(engine.Options{Workers: c.Workers, Cache: true, Budget: c.Budget})
	warm.SetStore(ds2)
	t0 = time.Now()
	warmRes := warm.Run(jobs)
	res.WarmUS = float64(time.Since(t0).Nanoseconds()) / 1e3
	for i, r := range warmRes {
		if r.Err != nil {
			panic(fmt.Sprintf("bench: warm solve %d failed: %v", i, r.Err))
		}
		if r.Sol.Fingerprint() != fps[i] {
			panic(fmt.Sprintf("bench: warm answer %d differs from the cold solve", i))
		}
	}
	st := warm.Stats()
	res.DiskHits = st.DiskHits
	res.Resolves = st.Telemetry.Firings.Total()
	if res.DiskHits != int64(res.Files-degraded) {
		panic(fmt.Sprintf("bench: warm restart served %d/%d disk hits (%d degraded cold)",
			res.DiskHits, res.Files, degraded))
	}
	if degraded == 0 && res.Resolves != 0 {
		panic(fmt.Sprintf("bench: warm restart fired %d rules — not a zero-re-solve restart", res.Resolves))
	}
	ds2.Close()
	if res.WarmUS > 0 {
		res.Speedup = res.ColdUS / res.WarmUS
	}
	return res
}

// dirBytes sums the file sizes under dir; best effort, 0 on error.
func dirBytes(dir string) int64 {
	var n int64
	filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			n += info.Size()
		}
		return nil
	})
	return n
}

// RenderStore formats the measurement for the terminal.
func RenderStore(r StoreResult) string {
	var b strings.Builder
	b.WriteString("Persistent store: warm restart vs cold solve\n")
	fmt.Fprintf(&b, "  configuration:        %s\n", r.Config)
	fmt.Fprintf(&b, "  files:                %d\n", r.Files)
	fmt.Fprintf(&b, "  store:                %d entries, %d bytes\n", r.Entries, r.StoreBytes)
	fmt.Fprintf(&b, "  cold (solve+flush):   %10.0f us\n", r.ColdUS)
	fmt.Fprintf(&b, "  warm (verified hits): %10.0f us (%d disk hits, %d rule firings)\n",
		r.WarmUS, r.DiskHits, r.Resolves)
	fmt.Fprintf(&b, "  speedup:              %.1fx\n", r.Speedup)
	return b.String()
}
