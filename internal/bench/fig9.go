package bench

import (
	"fmt"
	"strings"

	"github.com/pip-analysis/pip/internal/alias"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/engine"
	"github.com/pip-analysis/pip/internal/stats"
)

// PrecisionRow is one suite's Figure 9 data: the MayAlias rate of each
// alias-analysis configuration over all intra-procedural store×(load∪store)
// pairs.
type PrecisionRow struct {
	Suite    string
	Queries  int
	BasicAA  float64
	Andersen float64
	Combined float64
}

// Figure9 runs the precision client over the corpus. Per-file work (one
// solve plus three conflict-rate sweeps) fans out across the engine pool;
// aggregation runs afterwards in corpus order, so the result is identical
// at any worker count.
func Figure9(c *Corpus) []PrecisionRow {
	type fileRates struct {
		skip                      bool
		basic, andersen, combined alias.ConflictStats
	}
	rates := make([]fileRates, len(c.Files))
	engine.RunIndexed(len(c.Files), c.Workers, func(i int) {
		f := c.Files[i]
		if f.Pathological {
			// Pathological files exist to stress the solver (Table V /
			// Figure 10); their quadratic store/load pair counts would
			// drown the suite's precision statistics.
			rates[i].skip = true
			return
		}
		basic := alias.NewBasicAA(f.Module)
		sol := solveOnce(f, core.DefaultConfig())
		and := alias.NewAndersen(f.Gen, sol)
		comb := alias.Combined{basic, and}
		rates[i].basic = alias.ConflictRate(f.Module, basic)
		rates[i].andersen = alias.ConflictRate(f.Module, and)
		rates[i].combined = alias.ConflictRate(f.Module, comb)
	})

	type agg struct {
		basic, andersen, combined alias.ConflictStats
	}
	bySuite := map[string]*agg{}
	for i, f := range c.Files {
		if rates[i].skip {
			continue
		}
		a := bySuite[f.Suite]
		if a == nil {
			a = &agg{}
			bySuite[f.Suite] = a
		}
		a.basic.Add(rates[i].basic)
		a.andersen.Add(rates[i].andersen)
		a.combined.Add(rates[i].combined)
	}
	var rows []PrecisionRow
	for _, name := range c.SuiteNames() {
		a := bySuite[name]
		if a == nil {
			continue
		}
		rows = append(rows, PrecisionRow{
			Suite:    name,
			Queries:  a.basic.Total(),
			BasicAA:  a.basic.MayRate(),
			Andersen: a.andersen.MayRate(),
			Combined: a.combined.MayRate(),
		})
	}
	return rows
}

// RenderFigure9 formats the precision rows as a table plus the average
// MayAlias reduction the paper quotes (40% vs BasicAA alone).
func RenderFigure9(rows []PrecisionRow) string {
	tab := &stats.Table{
		Title:  "Figure 9: percentage of intra-procedural alias queries answering MayAlias (lower is better)",
		Header: []string{"Benchmark", "Queries", "BasicAA", "Andersen", "Andersen+BasicAA"},
	}
	var reductions []float64
	for _, r := range rows {
		tab.AddRow(r.Suite, fmt.Sprint(r.Queries),
			fmt.Sprintf("%.1f%%", 100*r.BasicAA),
			fmt.Sprintf("%.1f%%", 100*r.Andersen),
			fmt.Sprintf("%.1f%%", 100*r.Combined))
		if r.BasicAA > 0 {
			reductions = append(reductions, 1-r.Combined/r.BasicAA)
		}
	}
	var b strings.Builder
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "\nAverage MayAlias reduction of Andersen+BasicAA vs BasicAA alone: %.0f%% (paper: 40%%)\n",
		100*stats.Mean(reductions))
	return b.String()
}
