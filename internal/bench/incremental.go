package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/core/incr"
)

// IncrementalConfig is the configuration the incremental driver measures.
// It must be resumable (core.Resumable): identity representation, worklist
// solver, no unification passes and no budget — otherwise every edit would
// fall back to a from-scratch solve and the driver would measure nothing.
// Difference propagation is on the resumable trajectory and keeps the
// from-scratch baseline tractable on the corpus's big cyclic files (cycle
// collapse, which would also help, is not resumable).
var IncrementalConfig = core.Config{Rep: core.IP, Solver: core.Worklist, Order: core.FIFO, DP: true}

// IncrementalResult summarizes the incremental re-solve measurement: for
// every corpus file, a small monotone edit is re-solved once from scratch
// and once by resuming the previous generation's checkpoint. Times are
// summed best-of-reps across files, in microseconds.
type IncrementalResult struct {
	Config string `json:"config"`
	Files  int    `json:"files"`
	// EditConstraints is the number of constraints each edit adds.
	EditConstraints int `json:"edit_constraints"`
	// ScratchUS sums the from-scratch re-solve of every edited file.
	ScratchUS float64 `json:"scratch_us"`
	// ResolveUS sums the incremental re-solve (summary diff + resume).
	ResolveUS float64 `json:"resolve_us"`
	// Speedup is ScratchUS / ResolveUS.
	Speedup float64 `json:"speedup"`
	// Resumed and Fallbacks count which path each file's update took.
	Resumed   int `json:"resumed"`
	Fallbacks int `json:"fallbacks"`
	// ReusedConstraints sums the constraints carried over across files.
	ReusedConstraints int `json:"reused_constraints"`
}

// MeasureIncremental times re-solving a small edit of every corpus file,
// incrementally versus from scratch. The baseline solve of the unedited
// file (which establishes the checkpoint) is untimed setup: the scenario
// is a long-lived analysis session absorbing an edit, where generation 0
// was paid long ago. Both paths are verified to produce bit-identical
// fingerprints; a mismatch panics, since it would invalidate the numbers.
func MeasureIncremental(c *Corpus, reps int) IncrementalResult {
	cfg := IncrementalConfig
	if reps < 1 {
		reps = 1
	}
	res := IncrementalResult{Config: cfg.String(), Files: len(c.Files), EditConstraints: 2}
	for _, f := range c.Files {
		base := f.Gen.Problem

		// The edit: one fresh pointer aimed at one fresh object, plus a
		// copy into an existing variable — the shape of adding a local
		// and an assignment to a function body.
		edited := base.Clone()
		p := edited.AddVar("__edit_p", core.Register, true)
		obj := edited.AddVar("__edit_obj", core.Memory, true)
		edited.AddBase(p, obj)
		edited.AddSimple(0, p)

		st, err := incr.New(base, cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: incremental baseline %s failed: %v", f.Name, err))
		}

		var scratchBest, incrBest time.Duration
		var scratchSol *core.Solution
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			sol := core.MustSolve(edited, cfg)
			if d := time.Since(t0); rep == 0 || d < scratchBest {
				scratchBest, scratchSol = d, sol
			}
		}
		var nst *incr.State
		var stats *incr.UpdateStats
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			s, us, err := st.Update(edited)
			if err != nil {
				panic(fmt.Sprintf("bench: incremental update %s failed: %v", f.Name, err))
			}
			if d := time.Since(t0); rep == 0 || d < incrBest {
				incrBest, nst, stats = d, s, us
			}
		}
		if nst.Sol.Fingerprint() != scratchSol.Fingerprint() {
			panic(fmt.Sprintf("bench: incremental re-solve of %s differs from scratch", f.Name))
		}
		res.ScratchUS += float64(scratchBest.Nanoseconds()) / 1e3
		res.ResolveUS += float64(incrBest.Nanoseconds()) / 1e3
		if stats.Resumed {
			res.Resumed++
		} else {
			res.Fallbacks++
		}
		res.ReusedConstraints += stats.Reused
	}
	if res.ResolveUS > 0 {
		res.Speedup = res.ScratchUS / res.ResolveUS
	}
	return res
}

// RenderIncremental formats the measurement for the terminal.
func RenderIncremental(r IncrementalResult) string {
	var b strings.Builder
	b.WriteString("Incremental re-solve: small edit, resume vs from-scratch\n")
	fmt.Fprintf(&b, "  configuration:        %s\n", r.Config)
	fmt.Fprintf(&b, "  files:                %d (%d resumed, %d fell back)\n",
		r.Files, r.Resumed, r.Fallbacks)
	fmt.Fprintf(&b, "  edit size:            +%d constraints per file\n", r.EditConstraints)
	fmt.Fprintf(&b, "  from-scratch:         %10.0f us\n", r.ScratchUS)
	fmt.Fprintf(&b, "  incremental:          %10.0f us (%d constraints reused)\n",
		r.ResolveUS, r.ReusedConstraints)
	fmt.Fprintf(&b, "  speedup:              %.1fx\n", r.Speedup)
	return b.String()
}
