package bench

import (
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/workload"
)

// tinyOpts keeps unit tests fast; the real evaluation runs via cmd/pipbench
// and the repository-root benchmarks.
var tinyOpts = workload.Options{Seed: 5, Scale: 0.01, SizeScale: 0.03, MaxInstrs: 1500}

func tinyCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := BuildCorpus(tinyOpts)
	if len(c.Files) < len(workload.Suites) {
		t.Fatalf("corpus too small: %d", len(c.Files))
	}
	return c
}

func TestTable3(t *testing.T) {
	c := tinyCorpus(t)
	out := Table3(c)
	for _, suite := range c.SuiteNames() {
		if !strings.Contains(out, suite) {
			t.Fatalf("Table III missing suite %s:\n%s", suite, out)
		}
	}
	if !strings.Contains(out, "|V| mean") {
		t.Fatalf("Table III header malformed:\n%s", out)
	}
}

func TestMeasureRuntimeAndTables(t *testing.T) {
	c := tinyCorpus(t)
	res := MeasureRuntime(c, 1)
	for _, name := range Table5Configs {
		if len(res.PerFile[name]) != len(c.Files) {
			t.Fatalf("missing timings for %s", name)
		}
		for i, v := range res.PerFile[name] {
			if v <= 0 {
				t.Fatalf("%s: non-positive timing for file %d", name, i)
			}
		}
	}
	if len(res.Oracle) != len(c.Files) {
		t.Fatal("oracle timings missing")
	}
	// The oracle must never be slower than any pool member.
	for i := range c.Files {
		for _, name := range EPOracleConfigs {
			if res.Oracle[i] > res.PerFile[name][i] {
				t.Fatalf("oracle %f > %s %f on file %d", res.Oracle[i], name, res.PerFile[name][i], i)
			}
		}
	}
	t5 := Table5(res)
	if !strings.Contains(t5, "EP Oracle") || !strings.Contains(t5, "IP+WL(FIFO)+PIP") {
		t.Fatalf("Table V malformed:\n%s", t5)
	}
	t6 := Table6(res)
	if !strings.Contains(t6, "explicit pointees") {
		t.Fatalf("Table VI malformed:\n%s", t6)
	}
	f10 := Figure10(res)
	if !strings.Contains(f10, "EP-Oracle") || !strings.Contains(f10, "PIP") {
		t.Fatalf("Figure 10 malformed:\n%s", f10)
	}
	csv := Figure10CSV(res)
	if !strings.HasPrefix(csv, "ep_oracle_us,") {
		t.Fatalf("Figure 10 CSV malformed: %q", csv[:40])
	}

	h := Headline(res)
	if h.PointsExtFraction <= 0 || h.PointsExtFraction >= 1 {
		t.Fatalf("implausible p ⊒ Ω fraction: %v", h.PointsExtFraction)
	}
	if h.IPvsEPOracle <= 0 || h.PIPvsBestNoPIP <= 0 {
		t.Fatal("headline ratios missing")
	}
	render := RenderHeadline(h)
	if !strings.Contains(render, "51%") {
		t.Fatalf("headline render missing paper reference:\n%s", render)
	}
}

func TestTable6PIPReducesPointees(t *testing.T) {
	c := tinyCorpus(t)
	res := MeasureRuntime(c, 1)
	sum := func(name string) int {
		total := 0
		for _, v := range res.Pointees[name] {
			total += v
		}
		return total
	}
	noPip := sum("IP+WL(FIFO)")
	pip := sum("IP+WL(FIFO)+PIP")
	if pip > noPip {
		t.Fatalf("PIP increased total explicit pointees: %d > %d", pip, noPip)
	}
	// The corpus contains pathological escape-heavy files, so the gap
	// must be substantial (Table VI shows 3188 vs 922 mean).
	if noPip < 2*pip {
		t.Fatalf("expected ≥2x pointee reduction from PIP, got %d vs %d", noPip, pip)
	}
}

func TestFigure9Precision(t *testing.T) {
	c := tinyCorpus(t)
	rows := Figure9(c)
	if len(rows) == 0 || len(rows) > len(c.SuiteNames()) {
		t.Fatalf("rows = %d, suites = %d", len(rows), len(c.SuiteNames()))
	}
	for _, r := range rows {
		if r.Queries == 0 {
			t.Fatalf("%s: no alias queries issued", r.Suite)
		}
		if r.Combined > r.BasicAA+1e-9 || r.Combined > r.Andersen+1e-9 {
			t.Fatalf("%s: combined (%.3f) worse than components (%.3f, %.3f)",
				r.Suite, r.Combined, r.BasicAA, r.Andersen)
		}
		for _, v := range []float64{r.BasicAA, r.Andersen, r.Combined} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: rate out of range: %v", r.Suite, v)
			}
		}
	}
	out := RenderFigure9(rows)
	if !strings.Contains(out, "MayAlias reduction") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestRenderScalability(t *testing.T) {
	c := tinyCorpus(t)
	res := MeasureRuntime(c, 1)
	out := RenderScalability(res)
	if !strings.Contains(out, "memory scalability") || !strings.Contains(out, "IP+WL(FIFO)+PIP") {
		t.Fatalf("scalability table malformed:\n%s", out)
	}
	// PIP must never use more set memory in total than plain IP.
	sum := func(name string) int {
		total := 0
		for _, v := range res.Bytes[name] {
			total += v
		}
		return total
	}
	if sum("IP+WL(FIFO)+PIP") > sum("IP+WL(FIFO)") {
		t.Fatalf("PIP used more memory: %d vs %d", sum("IP+WL(FIFO)+PIP"), sum("IP+WL(FIFO)"))
	}
}
