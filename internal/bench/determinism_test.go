package bench

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/engine"
)

// deterministicTables renders every results/ table whose content is a pure
// function of the corpus (timing columns excluded: wall-clock is never
// reproducible, sequentially or otherwise).
func deterministicTables(c *Corpus, res *RuntimeResult) string {
	return Table3(c) + "\n" +
		RenderFigure9(Figure9(c)) + "\n" +
		Table6(res) + "\n" +
		RenderScalability(res)
}

// TestEngineRunsEmitIdenticalTables is the determinism regression test:
// two full engine runs at different worker counts — one of them with the
// job submission order shuffled — must emit byte-identical table output.
func TestEngineRunsEmitIdenticalTables(t *testing.T) {
	build := func(workers int) (*Corpus, *RuntimeResult) {
		c := BuildCorpusParallel(tinyOpts, workers)
		return c, MeasureRuntime(c, 1)
	}
	c2, res2 := build(2)
	c8, res8 := build(8)
	want := deterministicTables(c2, res2)
	got := deterministicTables(c8, res8)
	if want != got {
		t.Fatalf("tables differ between 2-worker and 8-worker runs:\n--- workers=2 ---\n%s\n--- workers=8 ---\n%s", want, got)
	}

	// Shuffled submission: push the corpus jobs through the engine in a
	// random order and check the per-file metrics land unchanged.
	cfg := core.DefaultConfig()
	jobs := c2.Jobs(cfg, 1)
	perm := rand.New(rand.NewSource(99)).Perm(len(jobs))
	shuffled := make([]engine.Job, len(jobs))
	for to, from := range perm {
		shuffled[to] = jobs[from]
	}
	ordered := mustResults(engine.New(engine.Options{Workers: 8}).Run(jobs))
	perm2 := mustResults(engine.New(engine.Options{Workers: 2}).Run(shuffled))
	for to, from := range perm {
		if ordered[from].Sol.Fingerprint() != perm2[to].Sol.Fingerprint() {
			t.Fatalf("file %d: solution changed under shuffled submission", from)
		}
		if ordered[from].Sol.Stats.ExplicitPointees != perm2[to].Sol.Stats.ExplicitPointees {
			t.Fatalf("file %d: pointee count changed under shuffled submission", from)
		}
	}
}

// TestSmokeReport checks the bench-smoke driver end to end on the tiny
// corpus: it must attest solution equality and report engine stats.
func TestSmokeReport(t *testing.T) {
	c := BuildCorpusParallel(tinyOpts, 4)
	out := Smoke(c, 4)
	for _, needle := range []string{"wall-clock speedup", "all paths solution-identical", "engine:"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("smoke report missing %q:\n%s", needle, out)
		}
	}
	if strings.Contains(out, "SMOKE FAILED") {
		t.Fatalf("smoke failed:\n%s", out)
	}
}
