package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/engine"
)

// Smoke runs the checked-in engine smoke test over a corpus: it solves the
// whole corpus under the default configuration through the sequential path
// (one worker) and through the parallel path (the given worker bound),
// verifies with the differential harness that every worker count produces
// solution-identical results, exercises a cached second pass, and reports
// the wall-clock speedup. The returned report is what `make bench-smoke`
// prints.
func Smoke(c *Corpus, workers int) string {
	cfg := core.DefaultConfig()
	jobs := c.Jobs(cfg, 1)

	// Warm-up pass: the first solve of a corpus pays page faults and heap
	// growth that a later one doesn't, which would flatter whichever path
	// runs second. Both timed runs below start warm and behind a GC
	// barrier, so neither inherits the other's garbage.
	mustResults(engine.New(engine.Options{Workers: 1}).Run(jobs))

	runtime.GC()
	seq := engine.New(engine.Options{Workers: 1})
	mustResults(seq.Run(jobs))
	seqStats := seq.Stats()

	runtime.GC()
	par := engine.New(engine.Options{Workers: workers})
	mustResults(par.Run(jobs))
	parStats := par.Stats()

	// Solution equality across worker counts, against the engine-free
	// sequential reference, plus a cached double pass.
	t0 := time.Now()
	diff := engine.Differential(jobs, engine.DiffOptions{
		WorkerCounts: []int{1, 2, parStats.Workers},
		CachedPass:   true,
	})
	diffDur := time.Since(t0)

	var b strings.Builder
	b.WriteString("Engine smoke test: full-corpus solve, sequential vs parallel\n")
	fmt.Fprintf(&b, "  corpus:            %s\n", c)
	fmt.Fprintf(&b, "  configuration:     %s\n", cfg)
	fmt.Fprintf(&b, "  sequential:        %s\n", seqStats)
	fmt.Fprintf(&b, "  parallel:          %s\n", parStats)
	speedup := 0.0
	if parStats.Wall > 0 {
		speedup = float64(seqStats.Wall) / float64(parStats.Wall)
	}
	fmt.Fprintf(&b, "  wall-clock speedup: %.2fx at %d workers\n", speedup, parStats.Workers)
	fmt.Fprintf(&b, "  differential:      %s [%v]\n",
		strings.TrimSpace(diff.String()), diffDur.Round(time.Millisecond))
	if !diff.OK() {
		b.WriteString("  SMOKE FAILED: parallel path is not solution-identical to sequential\n")
	} else if parStats.Workers == 1 {
		b.WriteString("  SMOKE OK (pool size 1 — GOMAXPROCS=1, no parallelism available to measure)\n")
	} else if speedup <= 1 {
		b.WriteString("  SMOKE OK (no wall-clock speedup — single-core runner or tiny corpus?)\n")
	} else {
		b.WriteString("  SMOKE OK\n")
	}
	return b.String()
}
