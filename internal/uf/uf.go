// Package uf implements a union-find (disjoint-set) forest with path
// compression and union by rank, used for cycle unification in the
// constraint-graph solvers (paper Section II-D and V-B).
package uf

// Forest is a disjoint-set forest over the integers [0, n).
// The zero value is an empty forest; use Grow to add elements.
type Forest struct {
	parent []uint32
	rank   []uint8
}

// New returns a forest with n singleton sets.
func New(n int) *Forest {
	f := &Forest{}
	f.Grow(n)
	return f
}

// Len returns the number of elements in the forest.
func (f *Forest) Len() int { return len(f.parent) }

// Grow extends the forest to hold n elements; new elements are singletons.
func (f *Forest) Grow(n int) {
	for i := len(f.parent); i < n; i++ {
		f.parent = append(f.parent, uint32(i))
		f.rank = append(f.rank, 0)
	}
}

// Reset reinitializes the forest to n singleton sets, reusing the backing
// storage when possible. Pooled solver arenas use this to recycle one
// forest across solves instead of allocating a fresh one per solve.
func (f *Forest) Reset(n int) {
	if cap(f.parent) >= n {
		f.parent = f.parent[:n]
		f.rank = f.rank[:n]
	} else {
		f.parent = make([]uint32, n)
		f.rank = make([]uint8, n)
	}
	for i := range f.parent {
		f.parent[i] = uint32(i)
		f.rank[i] = 0
	}
}

// Find returns the representative of x's set, compressing paths as it goes.
func (f *Forest) Find(x uint32) uint32 {
	root := x
	for f.parent[root] != root {
		root = f.parent[root]
	}
	for f.parent[x] != root {
		f.parent[x], x = root, f.parent[x]
	}
	return root
}

// SameSet reports whether a and b are in the same set.
func (f *Forest) SameSet(a, b uint32) bool { return f.Find(a) == f.Find(b) }

// Union merges the sets of a and b and returns the new representative.
// If they are already in the same set, that representative is returned.
func (f *Forest) Union(a, b uint32) uint32 {
	ra, rb := f.Find(a), f.Find(b)
	if ra == rb {
		return ra
	}
	if f.rank[ra] < f.rank[rb] {
		ra, rb = rb, ra
	}
	f.parent[rb] = ra
	if f.rank[ra] == f.rank[rb] {
		f.rank[ra]++
	}
	return ra
}

// UnionInto merges b's set into a's set, forcing a's representative to win.
// Solvers use this when the surviving node must keep its identity (for
// example, when auxiliary data is already keyed by a's representative).
func (f *Forest) UnionInto(a, b uint32) uint32 {
	ra, rb := f.Find(a), f.Find(b)
	if ra == rb {
		return ra
	}
	f.parent[rb] = ra
	if f.rank[ra] <= f.rank[rb] {
		f.rank[ra] = f.rank[rb] + 1
	}
	return ra
}
