package uf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	f := New(10)
	for i := uint32(0); i < 10; i++ {
		if f.Find(i) != i {
			t.Fatalf("Find(%d) = %d in fresh forest", i, f.Find(i))
		}
	}
	if f.SameSet(1, 2) {
		t.Fatal("fresh singletons in same set")
	}
}

func TestUnionFind(t *testing.T) {
	f := New(8)
	f.Union(0, 1)
	f.Union(2, 3)
	if !f.SameSet(0, 1) || !f.SameSet(2, 3) {
		t.Fatal("union did not merge")
	}
	if f.SameSet(0, 2) {
		t.Fatal("separate sets merged")
	}
	f.Union(1, 3)
	for _, pair := range [][2]uint32{{0, 2}, {1, 2}, {0, 3}} {
		if !f.SameSet(pair[0], pair[1]) {
			t.Fatalf("(%d,%d) not merged transitively", pair[0], pair[1])
		}
	}
	if f.SameSet(0, 4) {
		t.Fatal("untouched element merged")
	}
}

func TestUnionIdempotent(t *testing.T) {
	f := New(4)
	r1 := f.Union(0, 1)
	r2 := f.Union(0, 1)
	if r1 != r2 {
		t.Fatalf("repeated Union returned different reps: %d vs %d", r1, r2)
	}
}

func TestUnionInto(t *testing.T) {
	f := New(6)
	// Build a set with a high-rank representative, then force a low-rank
	// element to become the representative via UnionInto.
	f.Union(1, 2)
	f.Union(1, 3)
	rep := f.UnionInto(5, 1)
	if rep != 5 {
		t.Fatalf("UnionInto(5, 1) rep = %d, want 5", rep)
	}
	for _, x := range []uint32{1, 2, 3, 5} {
		if f.Find(x) != 5 {
			t.Fatalf("Find(%d) = %d, want 5", x, f.Find(x))
		}
	}
}

func TestGrow(t *testing.T) {
	f := New(2)
	f.Union(0, 1)
	f.Grow(5)
	if f.Len() != 5 {
		t.Fatalf("Len = %d, want 5", f.Len())
	}
	if !f.SameSet(0, 1) {
		t.Fatal("Grow disturbed existing sets")
	}
	for i := uint32(2); i < 5; i++ {
		if f.Find(i) != i {
			t.Fatalf("grown element %d not a singleton", i)
		}
	}
}

// Property: union-find agrees with a reference implementation that tracks
// set membership with explicit maps.
func TestQuickMatchesReference(t *testing.T) {
	check := func(seed int64, nOps uint8) bool {
		const n = 24
		rng := rand.New(rand.NewSource(seed))
		f := New(n)
		ref := make([]int, n) // ref[i] = set id
		for i := range ref {
			ref[i] = i
		}
		refSame := func(a, b int) bool { return ref[a] == ref[b] }
		refUnion := func(a, b int) {
			old, now := ref[b], ref[a]
			if old == now {
				return
			}
			for i := range ref {
				if ref[i] == old {
					ref[i] = now
				}
			}
		}
		for i := 0; i < int(nOps); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				f.Union(uint32(a), uint32(b))
				refUnion(a, b)
			} else if f.SameSet(uint32(a), uint32(b)) != refSame(a, b) {
				return false
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if f.SameSet(uint32(a), uint32(b)) != refSame(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFindDeep(b *testing.B) {
	const n = 1 << 14
	f := New(n)
	for i := 1; i < n; i++ {
		f.parent[i] = uint32(i - 1) // worst-case chain, compressed on first Find
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Find(uint32(i % n))
	}
}

func TestReset(t *testing.T) {
	f := New(8)
	f.Union(0, 1)
	f.Union(2, 3)
	f.Union(0, 3)
	if !f.SameSet(1, 2) {
		t.Fatalf("setup: 1 and 2 should share a set")
	}
	// Shrinking reset: everything is a singleton again.
	f.Reset(4)
	if f.Len() != 4 {
		t.Fatalf("Len after Reset(4) = %d", f.Len())
	}
	for i := uint32(0); i < 4; i++ {
		if f.Find(i) != i {
			t.Fatalf("Find(%d) = %d after reset, want singleton", i, f.Find(i))
		}
	}
	// Growing reset past the original capacity.
	f.Reset(16)
	if f.Len() != 16 {
		t.Fatalf("Len after Reset(16) = %d", f.Len())
	}
	if r := f.Union(10, 15); f.Find(10) != r || f.Find(15) != r {
		t.Fatalf("union after growing reset broken")
	}
	if f.SameSet(0, 1) {
		t.Fatalf("reset left 0 and 1 merged")
	}
}
