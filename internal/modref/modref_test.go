package modref

import (
	"strings"
	"testing"

	"github.com/pip-analysis/pip/internal/callgraph"
	"github.com/pip-analysis/pip/internal/cfront"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

func analyze(t *testing.T, src string) (*Analysis, *ir.Module, *core.Gen, *core.Solution) {
	t.Helper()
	m, err := cfront.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	gen := core.Generate(m)
	sol := core.MustSolve(gen.Problem, core.DefaultConfig())
	cg := callgraph.Build(m, gen, sol)
	return Compute(m, gen, sol, cg), m, gen, sol
}

const src = `
static int counter;
static int config;
static int scratch;

static void bump() {
    counter = counter + 1;
}

int read_config() {
    return config;
}

int tick() {
    bump();
    return read_config();
}

void touch_scratch() {
    scratch = 7;
}
`

func TestLocalModRef(t *testing.T) {
	a, m, gen, sol := analyze(t, src)
	counter := gen.MemOf[m.Global("counter")]
	config := gen.MemOf[m.Global("config")]
	scratch := gen.MemOf[m.Global("scratch")]

	bump := a.Summaries[m.Func("bump")]
	if !bump.MayMod(sol, counter) || !bump.MayRef(sol, counter) {
		t.Fatal("bump must mod+ref counter")
	}
	if bump.MayMod(sol, config) || bump.MayRef(sol, config) {
		t.Fatal("bump must not touch config")
	}

	rc := a.Summaries[m.Func("read_config")]
	if rc.MayMod(sol, config) {
		t.Fatal("read_config must not mod config")
	}
	if !rc.MayRef(sol, config) {
		t.Fatal("read_config must ref config")
	}
	_ = scratch
}

func TestTransitiveModRef(t *testing.T) {
	a, m, gen, sol := analyze(t, src)
	counter := gen.MemOf[m.Global("counter")]
	config := gen.MemOf[m.Global("config")]
	scratch := gen.MemOf[m.Global("scratch")]

	tick := a.Summaries[m.Func("tick")]
	if !tick.MayMod(sol, counter) {
		t.Fatal("tick modifies counter via bump")
	}
	if !tick.MayRef(sol, config) {
		t.Fatal("tick reads config via read_config")
	}
	if tick.MayMod(sol, scratch) || tick.MayRef(sol, scratch) {
		t.Fatal("tick never touches scratch")
	}
	if tick.ModExternal || tick.RefExternal {
		t.Fatal("tick calls no external code")
	}
}

func TestExternalCallsTaintSummaries(t *testing.T) {
	src := `
extern void mystery(int *p);

int exposed;
static int hidden;

void call_out() {
    mystery(&exposed);
}
`
	a, m, gen, sol := analyze(t, src)
	co := a.Summaries[m.Func("call_out")]
	if !co.ModExternal || !co.RefExternal {
		t.Fatal("calling external code must set the external mod/ref bits")
	}
	exposed := gen.MemOf[m.Global("exposed")]
	hidden := gen.MemOf[m.Global("hidden")]
	if !co.MayMod(sol, exposed) {
		t.Fatal("external call may modify the escaped exposed")
	}
	if co.MayMod(sol, hidden) {
		t.Fatal("external call cannot modify the private hidden")
	}
}

func TestIndirectStores(t *testing.T) {
	src := `
static int a, b;
static int *sel;

void pick(int which) {
    if (which) { sel = &a; } else { sel = &b; }
}

void write_selected(int v) {
    *sel = v;
}
`
	an, m, gen, sol := analyze(t, src)
	ws := an.Summaries[m.Func("write_selected")]
	aMem := gen.MemOf[m.Global("a")]
	bMem := gen.MemOf[m.Global("b")]
	if !ws.MayMod(sol, aMem) || !ws.MayMod(sol, bMem) {
		t.Fatal("indirect store must mod both possible targets")
	}
	pick := an.Summaries[m.Func("pick")]
	if pick.MayMod(sol, aMem) {
		t.Fatal("pick only writes the selector, not a")
	}
	if !pick.MayMod(sol, gen.MemOf[m.Global("sel")]) {
		t.Fatal("pick must mod sel")
	}
}

func TestMutualRecursionConverges(t *testing.T) {
	src := `
static int x, y;

static void even(int n);

static void odd(int n) {
    y = n;
    if (n > 0) even(n - 1);
}

static void even(int n) {
    x = n;
    if (n > 0) odd(n - 1);
}

void start(int n) { even(n); }
`
	a, m, gen, sol := analyze(t, src)
	start := a.Summaries[m.Func("start")]
	if !start.MayMod(sol, gen.MemOf[m.Global("x")]) || !start.MayMod(sol, gen.MemOf[m.Global("y")]) {
		t.Fatal("mutual recursion: start must mod both x and y")
	}
}

func TestReport(t *testing.T) {
	a, _, _, _ := analyze(t, src)
	out := a.Report()
	for _, frag := range []string{"@tick:", "mod:", "ref:", "@counter"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestMemcpyModRef(t *testing.T) {
	src := `
struct blob { int data[4]; };
static struct blob a, b;

void clone() {
    a = b;
}
`
	an, m, gen, sol := analyze(t, src)
	cl := an.Summaries[m.Func("clone")]
	if !cl.MayMod(sol, gen.MemOf[m.Global("a")]) {
		t.Fatal("struct copy must mod the destination")
	}
	if !cl.MayRef(sol, gen.MemOf[m.Global("b")]) {
		t.Fatal("struct copy must ref the source")
	}
	if cl.MayMod(sol, gen.MemOf[m.Global("b")]) {
		t.Fatal("struct copy must not mod the source")
	}
}
