// Package modref computes sound per-function mod/ref summaries from a
// points-to solution and call graph — the second client the paper names
// (Section I). A function's summary lists the abstract memory locations it
// may write (Mod) and read (Ref), transitively through callees, with
// explicit bits for "may touch external / escaped memory", which keeps the
// summaries sound when calls reach external modules.
package modref

import (
	"fmt"
	"sort"
	"strings"

	"github.com/pip-analysis/pip/internal/bitset"
	"github.com/pip-analysis/pip/internal/callgraph"
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/ir"
)

// Summary is one function's memory behaviour.
type Summary struct {
	mod, ref bitset.Set
	// ModExternal/RefExternal report that the function may additionally
	// write/read externally accessible memory (because it calls external
	// code, or dereferences pointers of unknown origin).
	ModExternal bool
	RefExternal bool
}

// MayMod reports whether the function may write location x.
func (s *Summary) MayMod(sol *core.Solution, x core.VarID) bool {
	if s.mod.Contains(x) {
		return true
	}
	return s.ModExternal && sol.Escaped(x)
}

// MayRef reports whether the function may read location x.
func (s *Summary) MayRef(sol *core.Solution, x core.VarID) bool {
	if s.ref.Contains(x) {
		return true
	}
	return s.RefExternal && sol.Escaped(x)
}

// ModSet returns the explicit mod set, sorted.
func (s *Summary) ModSet() []core.VarID { return s.mod.Slice() }

// RefSet returns the explicit ref set, sorted.
func (s *Summary) RefSet() []core.VarID { return s.ref.Slice() }

// Analysis holds mod/ref summaries for a module.
type Analysis struct {
	gen       *core.Gen
	sol       *core.Solution
	Summaries map[*ir.Function]*Summary
}

// Compute builds summaries for every defined function, iterating over the
// call graph to a fixed point (mutual recursion converges because the sets
// only grow).
func Compute(m *ir.Module, gen *core.Gen, sol *core.Solution, cg *callgraph.Graph) *Analysis {
	a := &Analysis{gen: gen, sol: sol, Summaries: map[*ir.Function]*Summary{}}
	for f := range cg.Nodes {
		a.Summaries[f] = &Summary{}
	}
	// Local effects.
	for f := range cg.Nodes {
		sum := a.Summaries[f]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpLoad:
					a.addTargets(&sum.ref, &sum.RefExternal, in.Args[0])
				case ir.OpStore:
					a.addTargets(&sum.mod, &sum.ModExternal, in.Args[1])
				case ir.OpMemcpy:
					a.addTargets(&sum.mod, &sum.ModExternal, in.Args[0])
					a.addTargets(&sum.ref, &sum.RefExternal, in.Args[1])
				}
			}
		}
	}
	// Transitive closure over the call graph.
	for changed := true; changed; {
		changed = false
		for f, node := range cg.Nodes {
			sum := a.Summaries[f]
			for _, e := range node.Calls {
				if e.External {
					// External code may touch anything escaped.
					if !sum.ModExternal {
						sum.ModExternal = true
						changed = true
					}
					if !sum.RefExternal {
						sum.RefExternal = true
						changed = true
					}
				}
				for _, callee := range e.Targets {
					cs := a.Summaries[callee]
					if cs == nil {
						continue
					}
					if sum.mod.UnionWith(&cs.mod) {
						changed = true
					}
					if sum.ref.UnionWith(&cs.ref) {
						changed = true
					}
					if cs.ModExternal && !sum.ModExternal {
						sum.ModExternal = true
						changed = true
					}
					if cs.RefExternal && !sum.RefExternal {
						sum.RefExternal = true
						changed = true
					}
				}
			}
		}
	}
	return a
}

// addTargets folds the points-to set of a pointer operand into dst.
func (a *Analysis) addTargets(dst *bitset.Set, external *bool, ptr ir.Value) {
	// Direct object addresses.
	switch v := ptr.(type) {
	case *ir.Global:
		dst.Add(a.gen.MemOf[v])
		return
	case *ir.Instr:
		if v.Op == ir.OpAlloca {
			if mem, ok := a.gen.MemOf[v]; ok {
				dst.Add(mem)
				return
			}
		}
	}
	id, ok := a.gen.VarOf[stripDerived(ptr)]
	if !ok {
		return
	}
	for _, x := range a.sol.PointsTo(id) {
		if x == core.OmegaPointee {
			*external = true
			continue
		}
		dst.Add(x)
	}
}

// stripDerived walks through geps and bitcasts to the underlying pointer.
func stripDerived(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Instr)
		if !ok || (in.Op != ir.OpGEP && in.Op != ir.OpBitcast) {
			return v
		}
		v = in.Args[0]
	}
}

// Report renders a human-readable summary table.
func (a *Analysis) Report() string {
	var funcs []*ir.Function
	for f := range a.Summaries {
		funcs = append(funcs, f)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].FName < funcs[j].FName })
	var b strings.Builder
	names := func(set []core.VarID) string {
		out := make([]string, len(set))
		for i, x := range set {
			out[i] = a.gen.Problem.Names[x]
		}
		return strings.Join(out, " ")
	}
	for _, f := range funcs {
		s := a.Summaries[f]
		fmt.Fprintf(&b, "@%s:\n", f.FName)
		fmt.Fprintf(&b, "  mod: %s", names(s.ModSet()))
		if s.ModExternal {
			b.WriteString(" +<external>")
		}
		fmt.Fprintf(&b, "\n  ref: %s", names(s.RefSet()))
		if s.RefExternal {
			b.WriteString(" +<external>")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
