package core

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the two offline (pre-solve) techniques of Table IV:
//
//   - OVS, offline variable substitution (Rountev and Chandra): merge
//     variables that are provably pointer-equivalent before solving, using
//     hash-based value numbering over the offline constraint graph.
//   - The offline half of HCD, hybrid cycle detection (Hardekopf and Lin):
//     collapse offline simple-constraint cycles immediately and record, for
//     cycles that run through a dereference node *p, the online rule
//     "unify every pointee of p with r".
//
// Both analyses use the same offline constraint graph: one node per
// variable plus one dereference node per variable that is dereferenced by a
// load or store constraint.

// offlineGraph is the offline constraint graph. Node ids 0..n-1 are the
// variables; node n+v is the dereference node *v.
type offlineGraph struct {
	n        int
	preds    [][]int32 // incoming edges
	hasDeref []bool
}

func (g *offlineGraph) derefNode(v VarID) int32 { return int32(g.n) + int32(v) }
func (g *offlineGraph) isDeref(node int32) bool { return int(node) >= g.n }
func (g *offlineGraph) varOf(node int32) VarID  { return VarID(int(node) - g.n) }

func buildOfflineGraph(p *Problem) *offlineGraph {
	n := p.NumVars()
	g := &offlineGraph{
		n:        n,
		preds:    make([][]int32, 2*n),
		hasDeref: make([]bool, n),
	}
	addEdge := func(from, to int32) {
		g.preds[to] = append(g.preds[to], from)
	}
	for _, e := range p.Simple {
		addEdge(int32(e.Src), int32(e.Dst))
	}
	for _, e := range p.Load {
		// Dst ⊇ *Src.
		g.hasDeref[e.Src] = true
		addEdge(g.derefNode(e.Src), int32(e.Dst))
	}
	for _, e := range p.Store {
		// *Dst ⊇ Src.
		g.hasDeref[e.Dst] = true
		addEdge(int32(e.Src), g.derefNode(e.Dst))
	}
	return g
}

// offlineSCCs computes strongly connected components of the offline graph
// (over nodes that participate in any edge) using iterative Tarjan over the
// predecessor lists (direction does not matter for SCCs). It returns a
// component id per node and the component count. Nodes in no edge get
// singleton components.
func offlineSCCs(g *offlineGraph) ([]int32, int32) {
	total := 2 * g.n
	// Build successor lists from predecessor lists.
	succs := make([][]int32, total)
	for to, ps := range g.preds {
		for _, from := range ps {
			succs[from] = append(succs[from], int32(to))
		}
	}
	const unvisited = int32(-1)
	index := make([]int32, total)
	low := make([]int32, total)
	comp := make([]int32, total)
	onStack := make([]bool, total)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		next   int32
		nComp  int32
		sstack []int32
	)
	type frame struct {
		v int32
		i int
	}
	for start := 0; start < total; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: int32(start)}}
		index[start] = next
		low[start] = next
		next++
		sstack = append(sstack, int32(start))
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.i < len(succs[v]) {
				w := succs[v][f.i]
				f.i++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					sstack = append(sstack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && low[w] < low[v] {
					low[v] = low[w]
				}
				continue
			}
			if low[v] == index[v] {
				for {
					w := sstack[len(sstack)-1]
					sstack = sstack[:len(sstack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	return comp, nComp
}

// runOVS performs offline variable substitution: hash-based value numbering
// assigns each variable a label describing its points-to set symbolically;
// variables with identical labels are unified before solving. Indirect
// nodes (memory locations, dereference nodes, flagged variables, call
// results, and function parameters) receive unique labels, which makes the
// substitution exact: it never changes the computed solution.
func (s *solver) runOVS() {
	p := s.p
	g := buildOfflineGraph(p)
	comp, nComp := offlineSCCs(g)

	n := p.NumVars()
	indirect := make([]bool, n)
	for v := 0; v < n; v++ {
		if p.Kind[v] == Memory || p.Flags[v] != 0 || !p.PtrCompat[v] {
			indirect[v] = true
		}
	}
	for _, fc := range p.Funcs {
		// Parameters receive edges from unknown call sites.
		for _, a := range fc.Args {
			if a != NoVar {
				indirect[a] = true
			}
		}
		indirect[fc.F] = true
	}
	for _, cc := range p.Calls {
		// Results receive edges from unknown returns.
		if cc.Ret != NoVar {
			indirect[cc.Ret] = true
		}
		indirect[cc.Target] = true
	}

	// Base labels: ref(x) per base-constraint target set.
	baseLabels := make(map[VarID][]int64, len(p.Base))
	for _, e := range p.Base {
		baseLabels[e.Dst] = append(baseLabels[e.Dst], int64(e.Src))
	}

	// Condensation: group offline nodes by component; process components
	// in topological order (Tarjan emits them in reverse topological
	// order of the successor DAG, so components can be processed in
	// increasing id order only after sorting by dependency; instead we
	// process with memoized recursion over components).
	compIndirect := make([]bool, nComp)
	compMembers := make([][]int32, nComp)
	total := 2 * n
	for node := 0; node < total; node++ {
		c := comp[node]
		compMembers[c] = append(compMembers[c], int32(node))
		if g.isDeref(int32(node)) || indirect[node] {
			compIndirect[c] = true
		}
	}

	// Component predecessor sets.
	compPreds := make([][]int32, nComp)
	for to := 0; to < total; to++ {
		ct := comp[to]
		for _, from := range g.preds[to] {
			cf := comp[from]
			if cf != ct {
				compPreds[ct] = append(compPreds[ct], cf)
			}
		}
	}

	// Assign label sets per component, memoized. Fresh labels are
	// negative and unique; base labels are non-negative variable ids.
	labelOf := make([][]int64, nComp)
	freshCounter := int64(0)
	var labelsFor func(c int32) []int64
	labelsFor = func(c int32) []int64 {
		if labelOf[c] != nil {
			return labelOf[c]
		}
		labelOf[c] = []int64{} // cycle guard; components form a DAG
		if compIndirect[c] {
			freshCounter++
			labelOf[c] = []int64{-freshCounter}
			return labelOf[c]
		}
		set := map[int64]bool{}
		for _, m := range compMembers[c] {
			if !g.isDeref(m) {
				for _, l := range baseLabels[VarID(m)] {
					set[l] = true
				}
			}
		}
		for _, pc := range compPreds[c] {
			for _, l := range labelsFor(pc) {
				set[l] = true
			}
		}
		out := make([]int64, 0, len(set))
		for l := range set {
			out = append(out, l)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		labelOf[c] = out
		return out
	}

	// Unify: (1) direct variables in the same component (offline copy
	// cycles); (2) direct variables with identical non-empty label sets.
	byLabel := map[string]VarID{}
	for v := 0; v < n; v++ {
		if indirect[v] {
			continue
		}
		c := comp[v]
		if compIndirect[c] {
			// A direct variable on a cycle through an indirect node: the
			// cycle is not guaranteed to materialize, so members are not
			// provably equivalent. Skip to keep OVS exact.
			continue
		}
		ls := labelsFor(c)
		if len(ls) == 0 {
			continue // provably points to nothing
		}
		var b strings.Builder
		for _, l := range ls {
			fmt.Fprintf(&b, "%d,", l)
		}
		key := b.String()
		if first, ok := byLabel[key]; ok {
			s.forest.Union(first, VarID(v))
			s.stats.Unifications++
		} else {
			byLabel[key] = VarID(v)
		}
	}
}

// runHCDOffline computes the hybrid-cycle-detection table. Offline cycles
// consisting purely of variable nodes are collapsed immediately. For a
// cycle that passes through exactly one dereference node *p, the table
// records hcdRef[p] = r for a variable r on the cycle: at solve time, every
// pointee of p provably joins a cycle with r and is unified with it. Cycles
// through two or more dereference nodes are skipped, keeping the technique
// exact (the materialization of one deref's edges depends on the other's
// points-to set, so the cycle is not guaranteed).
func (s *solver) runHCDOffline() {
	p := s.p
	g := buildOfflineGraph(p)
	comp, nComp := offlineSCCs(g)

	n := p.NumVars()
	type info struct {
		vars   []VarID
		derefs []VarID
	}
	comps := make([]info, nComp)
	for node := 0; node < 2*n; node++ {
		c := comp[node]
		if g.isDeref(int32(node)) {
			v := g.varOf(int32(node))
			if g.hasDeref[v] {
				comps[c].derefs = append(comps[c].derefs, v)
			}
		} else {
			comps[c].vars = append(comps[c].vars, VarID(node))
		}
	}
	s.hcdRef = map[VarID]VarID{}
	for _, ci := range comps {
		if len(ci.vars)+len(ci.derefs) < 2 {
			continue
		}
		switch {
		case len(ci.derefs) == 0:
			// Pure simple-constraint cycle: collapse now.
			rep := ci.vars[0]
			for _, v := range ci.vars[1:] {
				if p.PtrCompat[v] && p.PtrCompat[rep] {
					rep = s.forest.Union(rep, v)
					s.stats.Unifications++
				}
			}
		case len(ci.derefs) == 1 && len(ci.vars) > 0:
			// The cycle runs a → *p → b → … → a. It materializes through
			// every pointee x of p, so x can be unified with an on-cycle
			// variable r the moment it appears. The on-cycle variables
			// themselves are NOT collapsed offline: if p never gains a
			// pointee the cycle never exists, and eager collapsing would
			// change the solution.
			r := ci.vars[0]
			if !p.PtrCompat[r] {
				break
			}
			pv := s.forest.Find(ci.derefs[0])
			s.hcdRef[pv] = r
		}
	}
}
