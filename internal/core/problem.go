// Package core implements the paper's contribution: an Andersen-style,
// inclusion-based, flow/context/field-insensitive points-to analysis that is
// sound for incomplete C programs.
//
// The analysis runs in two phases. Phase 1 (gen.go) converts an MIR module
// into a Problem: sets of constraint variables (pointers P and abstract
// memory locations M, paper Section II-A) plus constraints in the language
// of Table I, extended with the six Ω-constraints of Table II represented as
// 1-bit flags. Phase 2 (solver.go et al.) solves the constraints under one
// of the many solver configurations of Table IV, producing a Solution.
package core

import "fmt"

// VarID identifies a constraint variable. The paper indexes constraint
// variables with 32-bit integers (Section V-B).
type VarID = uint32

// NoVar marks an absent variable (for example, a pointer-incompatible
// return value, which Func/Call constraints ignore).
const NoVar VarID = ^VarID(0)

// VarKind distinguishes virtual registers (drawn as circles in the paper's
// constraint graphs) from abstract memory locations (squares).
type VarKind uint8

const (
	// Register is an SSA virtual register; it can point but cannot be
	// pointed to.
	Register VarKind = iota
	// Memory is an abstract memory location: a named object, function, or
	// heap allocation site. It can be pointed to, and it is also a pointer
	// if its content type is pointer compatible.
	Memory
)

func (k VarKind) String() string {
	if k == Register {
		return "register"
	}
	return "memory"
}

// Flags encodes the six constraint types of the extended language
// (Table II) as 1-bit flags on constraint variables.
type Flags uint8

const (
	// FlagExternal is Ω ⊒ {x}: x is externally accessible (a member of E).
	FlagExternal Flags = 1 << iota
	// FlagPointsExt is x ⊒ Ω: x may target every externally accessible
	// memory location (x has unknown-origin pointees).
	FlagPointsExt
	// FlagEscapedPointees is Ω ⊒ x: every pointee of x is externally
	// accessible (x's value escapes).
	FlagEscapedPointees
	// FlagStoreScalar is *x ⊒ Ω: a scalar is stored through x
	// (pointer-smuggling store, Section III-C).
	FlagStoreScalar
	// FlagLoadScalar is Ω ⊒ *x: a scalar is loaded through x
	// (pointer-smuggling load, Section III-C).
	FlagLoadScalar
	// FlagImpFunc is ImpFunc(x): x is an imported external function.
	FlagImpFunc
)

func (f Flags) String() string {
	s := ""
	add := func(bit Flags, name string) {
		if f&bit != 0 {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	add(FlagExternal, "Ω⊒{x}")
	add(FlagPointsExt, "x⊒Ω")
	add(FlagEscapedPointees, "Ω⊒x")
	add(FlagStoreScalar, "*x⊒Ω")
	add(FlagLoadScalar, "Ω⊒*x")
	add(FlagImpFunc, "ImpFunc")
	if s == "" {
		s = "-"
	}
	return s
}

// Edge is a directed two-variable constraint. Its meaning depends on the
// list that holds it (Simple, Load, or Store).
type Edge struct {
	// Dst ⊇ Src for simple constraints; Dst ⊇ *Ptr for loads (Src is the
	// pointer); *Dst ⊇ Src for stores (Dst is the pointer).
	Dst, Src VarID
}

// FuncConstraint is Func(f, r, a1..an): variable F names a function object
// with pointer-compatible return variable Ret (or NoVar) and parameter
// variables Args (NoVar entries for pointer-incompatible parameters).
type FuncConstraint struct {
	F    VarID
	Ret  VarID
	Args []VarID
}

// CallConstraint is Call(t, r, a1..an): an indirect or direct call through
// pointer Target with result variable Ret (or NoVar) and argument variables
// Args (NoVar entries for pointer-incompatible arguments).
type CallConstraint struct {
	Target VarID
	Ret    VarID
	Args   []VarID
}

// Problem is the output of analysis phase 1: the variable universe
// V = P ∪ M and all constraints, ready to be solved under any
// configuration.
type Problem struct {
	// Names holds a diagnostic name per variable.
	Names []string
	// Kind distinguishes registers from memory locations.
	Kind []VarKind
	// PtrCompat marks the members of P: variables whose values may
	// contain pointers and therefore have points-to sets.
	PtrCompat []bool
	// Flags holds the initial Ω-constraints per variable.
	Flags []Flags

	// Base constraints p ⊇ {x} (placed directly into Sol_e when solving).
	Base []Edge // Dst ⊇ {Src}
	// Simple constraints p ⊇ q.
	Simple []Edge
	// Load constraints p ⊇ *q (Dst = p, Src = q).
	Load []Edge
	// Store constraints *p ⊇ q (Dst = p, Src = q).
	Store []Edge
	// Funcs and Calls model functions and call sites (Table I).
	Funcs []FuncConstraint
	Calls []CallConstraint
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns |V|.
func (p *Problem) NumVars() int { return len(p.Names) }

// NumConstraints returns |C|: base, simple, load, and store constraints plus
// function and call constraints and flag bits, matching the paper's
// Table III metric.
func (p *Problem) NumConstraints() int {
	n := len(p.Base) + len(p.Simple) + len(p.Load) + len(p.Store) + len(p.Funcs) + len(p.Calls)
	for _, f := range p.Flags {
		for b := Flags(1); b < 1<<6; b <<= 1 {
			if f&b != 0 {
				n++
			}
		}
	}
	return n
}

// AddVar appends a variable and returns its id.
func (p *Problem) AddVar(name string, kind VarKind, ptrCompat bool) VarID {
	id := VarID(len(p.Names))
	p.Names = append(p.Names, name)
	p.Kind = append(p.Kind, kind)
	p.PtrCompat = append(p.PtrCompat, ptrCompat)
	p.Flags = append(p.Flags, 0)
	return id
}

// SetFlag ors bit into the variable's initial flags.
func (p *Problem) SetFlag(v VarID, bit Flags) { p.Flags[v] |= bit }

// AddBase records p ⊇ {x}.
func (p *Problem) AddBase(dst, loc VarID) { p.Base = append(p.Base, Edge{dst, loc}) }

// AddSimple records dst ⊇ src, normalizing pointer-incompatible endpoints
// into pointer-integer conversions (paper Section V-B): dst ⊇ x with x ∉ P
// becomes dst ⊒ Ω, and x ⊇ src with x ∉ P becomes Ω ⊒ src.
func (p *Problem) AddSimple(dst, src VarID) {
	switch {
	case p.PtrCompat[dst] && p.PtrCompat[src]:
		p.Simple = append(p.Simple, Edge{dst, src})
	case p.PtrCompat[dst]:
		p.SetFlag(dst, FlagPointsExt)
	case p.PtrCompat[src]:
		p.SetFlag(src, FlagEscapedPointees)
	}
}

// AddLoad records dst ⊇ *ptr; a pointer-incompatible dst is a scalar load
// Ω ⊒ *ptr (pointer smuggling).
func (p *Problem) AddLoad(dst, ptr VarID) {
	if !p.PtrCompat[ptr] {
		// Loading through a non-pointer is loading through an integer
		// cast to a pointer: the result has unknown origin.
		if p.PtrCompat[dst] {
			p.SetFlag(dst, FlagPointsExt)
		}
		return
	}
	if !p.PtrCompat[dst] {
		p.SetFlag(ptr, FlagLoadScalar)
		return
	}
	p.Load = append(p.Load, Edge{dst, ptr})
}

// AddStore records *ptr ⊇ src; a pointer-incompatible src is a scalar store
// *ptr ⊒ Ω (pointer smuggling).
func (p *Problem) AddStore(ptr, src VarID) {
	if !p.PtrCompat[ptr] {
		// Storing through an integer cast to a pointer: the stored value
		// escapes to unknown memory.
		if p.PtrCompat[src] {
			p.SetFlag(src, FlagEscapedPointees)
		}
		return
	}
	if !p.PtrCompat[src] {
		p.SetFlag(ptr, FlagStoreScalar)
		return
	}
	p.Store = append(p.Store, Edge{ptr, src})
}

// AddFunc records Func(f, ret, args...).
func (p *Problem) AddFunc(f, ret VarID, args []VarID) {
	p.Funcs = append(p.Funcs, FuncConstraint{F: f, Ret: ret, Args: args})
}

// AddCall records Call(target, ret, args...).
func (p *Problem) AddCall(target, ret VarID, args []VarID) {
	p.Calls = append(p.Calls, CallConstraint{Target: target, Ret: ret, Args: args})
}

// Validate checks internal consistency of the problem.
func (p *Problem) Validate() error {
	n := VarID(p.NumVars())
	chk := func(v VarID, what string) error {
		if v != NoVar && v >= n {
			return fmt.Errorf("%s references variable %d of %d", what, v, n)
		}
		return nil
	}
	for _, e := range p.Base {
		if err := chk(e.Dst, "base"); err != nil {
			return err
		}
		if err := chk(e.Src, "base"); err != nil {
			return err
		}
		if p.Kind[e.Src] != Memory {
			return fmt.Errorf("base constraint targets register %s", p.Names[e.Src])
		}
	}
	for _, lst := range [][]Edge{p.Simple, p.Load, p.Store} {
		for _, e := range lst {
			if err := chk(e.Dst, "edge"); err != nil {
				return err
			}
			if err := chk(e.Src, "edge"); err != nil {
				return err
			}
		}
	}
	for _, f := range p.Funcs {
		if err := chk(f.F, "func"); err != nil {
			return err
		}
		if err := chk(f.Ret, "func ret"); err != nil {
			return err
		}
		for _, a := range f.Args {
			if err := chk(a, "func arg"); err != nil {
				return err
			}
		}
	}
	for _, c := range p.Calls {
		if err := chk(c.Target, "call"); err != nil {
			return err
		}
		if err := chk(c.Ret, "call ret"); err != nil {
			return err
		}
		for _, a := range c.Args {
			if err := chk(a, "call arg"); err != nil {
				return err
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the problem: mutating the clone's tables or
// constraint lists never aliases the original. The incremental layer clones
// before applying edit scripts and before persisting a problem alongside
// its checkpoint.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		Names:     append([]string(nil), p.Names...),
		Kind:      append([]VarKind(nil), p.Kind...),
		PtrCompat: append([]bool(nil), p.PtrCompat...),
		Flags:     append([]Flags(nil), p.Flags...),
		Base:      append([]Edge(nil), p.Base...),
		Simple:    append([]Edge(nil), p.Simple...),
		Load:      append([]Edge(nil), p.Load...),
		Store:     append([]Edge(nil), p.Store...),
		Funcs:     make([]FuncConstraint, len(p.Funcs)),
		Calls:     make([]CallConstraint, len(p.Calls)),
	}
	for i, f := range p.Funcs {
		f.Args = append([]VarID(nil), f.Args...)
		q.Funcs[i] = f
	}
	for i, c := range p.Calls {
		c.Args = append([]VarID(nil), c.Args...)
		q.Calls[i] = c
	}
	return q
}
