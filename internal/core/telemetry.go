package core

import (
	"fmt"
	"time"
)

// RuleFirings counts inference-rule applications per rule family of
// Figures 2 and 7. A "firing" is one application of a rule to one
// constraint during solving: one propagation across a simple edge (TRANS
// and its Ω variant), one load or store constraint processed against a
// visited node's pointee batch, one (call, func) pair resolved, or one
// Ω-flag inference. The sum of all counters is what a Budget.Firings cap
// is compared against.
type RuleFirings struct {
	Trans int64 `json:"trans"`
	Load  int64 `json:"load"`
	Store int64 `json:"store"`
	Call  int64 `json:"call"`
	Flag  int64 `json:"flag"`
}

// Total sums the per-rule counters.
func (f RuleFirings) Total() int64 {
	return f.Trans + f.Load + f.Store + f.Call + f.Flag
}

// Add accumulates g into f.
func (f *RuleFirings) Add(g RuleFirings) {
	f.Trans += g.Trans
	f.Load += g.Load
	f.Store += g.Store
	f.Call += g.Call
	f.Flag += g.Flag
}

// Telemetry is the per-solve instrumentation block, exposed on every
// Solution (and aggregated across the worker pool by the engine). All
// duration fields marshal to JSON as integer nanoseconds; the firings
// block is per inference rule.
type Telemetry struct {
	// Offline is the time spent in the offline phases (OVS and the HCD
	// offline analysis) before solving starts.
	Offline time.Duration `json:"offline_ns"`
	// Propagate is the time spent in the main solve loop excluding cycle
	// collapse: worklist management, rule application, and set
	// propagation.
	Propagate time.Duration `json:"propagate_ns"`
	// Collapse is the time spent detecting and collapsing cycles (OCD
	// reachability checks, LCD/HCD collapse, and whole-graph SCC passes).
	Collapse time.Duration `json:"collapse_ns"`
	// Presaturate is the time spent in stratified presaturation: building
	// the SCC-condensed stratum plan and running the parallel closure
	// passes (zero when Config.SolveWorkers is 0).
	Presaturate time.Duration `json:"presaturate_ns"`
	// Strata is the peak number of topological strata observed across the
	// solve's presaturation passes (zero on the sequential path).
	Strata int `json:"strata"`
	// Firings counts rule applications per inference rule.
	Firings RuleFirings `json:"firings"`
	// WorklistPeak is the high-water mark of pending worklist entries.
	WorklistPeak int `json:"worklist_peak"`
	// Degraded reports that the solve exhausted its budget and returned
	// the Ω-degraded solution.
	Degraded bool `json:"degraded"`
}

// Merge accumulates u into t: durations and firings sum, the worklist
// high-water mark takes the maximum, and Degraded ors. The engine uses
// this to aggregate telemetry across all jobs of a pool.
//
// Merged durations are CPU-time sums: each solve contributes the time its
// own goroutine spent in each phase, so when solves overlap on a worker
// pool the summed phase durations can (and routinely do) exceed the
// busy-span wall clock of the pool (engine.Stats.Wall). Consumers that
// want elapsed time must use the busy-span measurement; consumers that
// want total work done (e.g. phase-time breakdowns, cost attribution)
// want these sums. The /metrics endpoint exposes both, under
// pip_engine_phase_seconds_total (these sums) and
// pip_engine_busy_seconds_total (busy-span wall).
func (t *Telemetry) Merge(u Telemetry) {
	t.Offline += u.Offline
	t.Propagate += u.Propagate
	t.Collapse += u.Collapse
	t.Presaturate += u.Presaturate
	t.Firings.Add(u.Firings)
	if u.WorklistPeak > t.WorklistPeak {
		t.WorklistPeak = u.WorklistPeak
	}
	if u.Strata > t.Strata {
		t.Strata = u.Strata
	}
	t.Degraded = t.Degraded || u.Degraded
}

func (t Telemetry) String() string {
	s := fmt.Sprintf("offline %v, propagate %v, collapse %v, %d firings (trans %d, load %d, store %d, call %d, flag %d), worklist peak %d",
		t.Offline.Round(time.Microsecond), t.Propagate.Round(time.Microsecond),
		t.Collapse.Round(time.Microsecond), t.Firings.Total(),
		t.Firings.Trans, t.Firings.Load, t.Firings.Store, t.Firings.Call, t.Firings.Flag,
		t.WorklistPeak)
	if t.Presaturate > 0 {
		s += fmt.Sprintf(", presaturate %v (%d strata)", t.Presaturate.Round(time.Microsecond), t.Strata)
	}
	if t.Degraded {
		s += ", DEGRADED"
	}
	return s
}
