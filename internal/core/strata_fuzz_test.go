package core

import (
	"testing"
)

// Fuzz targets for stratified presaturation: the first drives the
// differential oracle (parallel solve must be bit-identical to the
// workers=1 reference and Canonical-equal to the legacy sequential path),
// the second checks the structural invariants of the stratum plan itself.
// Both decode arbitrary bytes into small constraint problems and force the
// stratified path by lowering presatMinVars. Run continuously with
// `make fuzz`.

// decodeStrataProblem turns fuzz bytes into a small constraint problem and
// a firing cap (0 = unbudgeted). The decoder is total over inputs of at
// least five bytes: every byte string is a valid problem, so the fuzzer
// spends its time exploring graph shapes rather than fighting a parser.
func decodeStrataProblem(data []byte) (*Problem, int64) {
	if len(data) < 5 {
		return nil, 0
	}
	n := 8 + int(data[0])%24
	fcap := int64(data[1])
	p := NewProblem()
	vars := make([]VarID, n)
	for i := 0; i < n; i++ {
		kind := Memory
		if i%3 == 2 {
			kind = Register
		}
		vars[i] = p.AddVar("", kind, i%11 != 10)
	}
	// mem rounds an index down to a Memory variable (kinds repeat
	// Memory, Memory, Register).
	mem := func(b byte) VarID {
		i := int(b) % n
		return vars[i-i%3]
	}
	flags := []Flags{FlagPointsExt, FlagEscapedPointees, FlagStoreScalar, FlagLoadScalar}
	for body := data[2:]; len(body) >= 3; body = body[3:] {
		op, a, b := body[0], body[1], body[2]
		x, y := vars[int(a)%n], vars[int(b)%n]
		switch op % 8 {
		case 0:
			p.AddSimple(x, y)
		case 1:
			p.AddBase(x, mem(b))
		case 2:
			p.AddLoad(x, y)
		case 3:
			p.AddStore(x, y)
		case 4:
			p.SetFlag(mem(a), FlagExternal)
		case 5:
			p.SetFlag(x, flags[int(b)%len(flags)])
		case 6:
			p.AddFunc(mem(a), y, []VarID{x})
			p.AddCall(y, x, []VarID{vars[int(a+b)%n]})
		default:
			p.AddSimple(x, x) // explicit self-loop op
		}
	}
	if p.Validate() != nil {
		return nil, 0
	}
	return p, fcap
}

// strataSeeds are hand-built corpus entries covering the shapes the
// stratifier must not get wrong: pure chains (every stratum a single
// node), self-loop farms, and a large cycle under a budget small enough to
// abort mid-collapse.
func strataSeeds() [][]byte {
	// Chain: 16 vars, unbudgeted, edges i+1 ⊇ i plus a few base facts.
	chain := []byte{8, 0}
	for i := 0; i < 15; i++ {
		chain = append(chain, 0, byte(i+1), byte(i))
	}
	for i := 0; i < 4; i++ {
		chain = append(chain, 1, byte(i), byte(3*i))
	}

	// Self-loops: every op-7 edge is v ⊇ v; mix in loads through them.
	loops := []byte{4, 0}
	for i := 0; i < 12; i++ {
		loops = append(loops, 7, byte(i), byte(i))
	}
	for i := 0; i < 6; i++ {
		loops = append(loops, 1, byte(i), byte(i), 2, byte(i+1), byte(i))
	}

	// Cycle under budget: a 20-node ring with bases, capped at 37
	// firings so the solve degrades somewhere inside the collapse.
	ring := []byte{16, 37}
	for i := 0; i < 20; i++ {
		ring = append(ring, 0, byte((i+1)%20), byte(i))
	}
	for i := 0; i < 8; i++ {
		ring = append(ring, 1, byte(i), byte(3*i), 3, byte(i), byte(i+5))
	}

	// Two rings joined by a chain, unbudgeted: multi-component strata.
	twin := []byte{10, 0}
	for i := 0; i < 6; i++ {
		twin = append(twin, 0, byte((i+1)%6), byte(i))
		twin = append(twin, 0, byte(8+(i+1)%6), byte(8+i))
	}
	twin = append(twin, 0, 8, 5, 1, 0, 0, 4, 9, 0)

	return [][]byte{chain, loops, ring, twin}
}

// FuzzStrataDifferential is the fuzzing face of the differential gate:
// arbitrary problems, workers 1 vs 4 bit-identity (plus Degraded
// identity under the decoded firing cap), and Canonical agreement with the
// legacy SolveWorkers=0 solver when unbudgeted.
func FuzzStrataDifferential(f *testing.F) {
	for _, s := range strataSeeds() {
		f.Add(s)
	}
	cfgs := []string{"IP+WL(FIFO)+PIP", "EP+OVS+WL(LRF)+OCD", "IP+WL(LIFO)+LCD+DP"}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, fcap := decodeStrataProblem(data)
		if p == nil {
			return
		}
		defer func(old int) { presatMinVars = old }(presatMinVars)
		presatMinVars = 4
		for _, cs := range cfgs {
			cfg := MustParseConfig(cs)
			cfg.Budget = Budget{Firings: fcap}
			cfg.SolveWorkers = 1
			ref := MustSolve(p, cfg)
			cfg.SolveWorkers = 4
			par := MustSolve(p, cfg)
			if par.Degraded != ref.Degraded {
				t.Fatalf("%s cap=%d: workers=4 degraded=%v, workers=1 degraded=%v",
					cs, fcap, par.Degraded, ref.Degraded)
			}
			if par.Fingerprint() != ref.Fingerprint() {
				t.Fatalf("%s cap=%d: workers=4 fingerprint diverged from workers=1", cs, fcap)
			}
			if fcap == 0 {
				cfg.SolveWorkers = 0
				legacy := MustSolve(p, cfg)
				if legacy.Canonical() != ref.Canonical() {
					t.Fatalf("%s: stratified solve disagrees with legacy sequential solution", cs)
				}
			}
		}
	})
}

// FuzzStrataPlan checks the stratum plan's structural invariants on
// arbitrary graphs: components partition the active nodes, members are
// sorted with the leader first, every predecessor component sits in a
// strictly earlier stratum, and the levels partition the components.
func FuzzStrataPlan(f *testing.F) {
	for _, s := range strataSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, _ := decodeStrataProblem(data)
		if p == nil {
			return
		}
		s := newSolver(p, Config{Rep: IP, Solver: Worklist, SolveWorkers: 2}, NewArena())
		s.seed()
		plan := s.buildStrata()
		if plan == nil {
			return // no simple edges survived seeding
		}
		seen := make(map[VarID]int32)
		for ci, comp := range plan.comps {
			if len(comp) == 0 {
				t.Fatalf("component %d is empty", ci)
			}
			for i, m := range comp {
				if s.find(m) != m {
					t.Fatalf("component %d member %d is not a representative", ci, m)
				}
				if i > 0 && comp[i-1] >= m {
					t.Fatalf("component %d members not strictly ascending", ci)
				}
				if prev, dup := seen[m]; dup {
					t.Fatalf("node %d in components %d and %d", m, prev, ci)
				}
				seen[m] = int32(ci)
			}
		}
		compLevel := make([]int32, len(plan.comps))
		inLevel := 0
		for li, lvl := range plan.levels {
			for _, c := range lvl {
				compLevel[c] = int32(li)
				inLevel++
			}
		}
		if inLevel != len(plan.comps) {
			t.Fatalf("levels hold %d components, plan has %d", inLevel, len(plan.comps))
		}
		for ci := range plan.comps {
			for _, pc := range plan.preds[ci] {
				if compLevel[pc] >= compLevel[ci] {
					t.Fatalf("component %d (level %d) has predecessor %d at level %d",
						ci, compLevel[ci], pc, compLevel[pc])
				}
			}
		}
		// Cross-check against the live graph: every inter-component simple
		// edge must respect the level order.
		for v := 0; v < s.n; v++ {
			r := VarID(v)
			if s.find(r) != r || s.succ[r] == nil {
				continue
			}
			cv, ok := seen[r]
			if !ok {
				continue
			}
			s.succ[r].ForEach(func(q uint32) {
				w := s.find(VarID(q))
				if w == r {
					return
				}
				cw, ok := seen[w]
				if !ok {
					t.Fatalf("edge target %d missing from the condensation", w)
				}
				if cv != cw && compLevel[cv] >= compLevel[cw] {
					t.Fatalf("edge %d->%d violates level order (%d >= %d)",
						r, w, compLevel[cv], compLevel[cw])
				}
			})
		}
	})
}
