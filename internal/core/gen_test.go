package core

import (
	"testing"

	"github.com/pip-analysis/pip/internal/ir"
)

// figure1IR is the paper's Figure 1 program in MIR.
const figure1IR = `
module "figure1"
global @x : i32 = 0:i32 internal
global @y : i32 = 0:i32 internal
global @z : i32 = 0:i32 export
global @p : ptr = @x export
declare func @getPtr() -> ptr

func @callMe(%q: ptr) export {
entry:
  %w = alloca i32
  %r = call ptr, @getPtr()
  %c = icmp eq, %r, null
  condbr %c, isnull, done
isnull:
  br done
done:
  %r2 = phi ptr, [%r, entry], [%w, isnull]
  ret
}
`

func genFromIR(t *testing.T, src string) (*Gen, *ir.Module) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	g := Generate(m)
	if err := g.Problem.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, m
}

// points returns Sol for a named value, mapped back to readable names.
func points(t *testing.T, g *Gen, sol *Solution, v VarID) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, x := range sol.PointsTo(v) {
		if x == OmegaPointee {
			out["Ω"] = true
		} else {
			out[g.Problem.Names[x]] = true
		}
	}
	return out
}

func TestGenerateFigure1(t *testing.T) {
	g, m := genFromIR(t, figure1IR)
	callMe := m.Func("callMe")
	sol := MustSolve(g.Problem, DefaultConfig())

	pMem := g.MemOf[m.Global("p")]
	qVar := g.VarOf[callMe.Params[0]]
	var rVar, r2Var VarID
	var wMem VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		switch in.IName {
		case "r":
			rVar = g.VarOf[in]
		case "r2":
			r2Var = g.VarOf[in]
		case "w":
			wMem = g.MemOf[in]
		}
	})

	// The paper's claim: p, q, and r may target x, z, or external memory,
	// but never y. Only r (via r2) may target w.
	for name, v := range map[string]VarID{"p": pMem, "q": qVar, "r": rVar} {
		got := points(t, g, sol, v)
		if !got["@x"] || !got["@z"] || !got["Ω"] {
			t.Fatalf("Sol(%s) = %v, want ⊇ {@x, @z, Ω}", name, got)
		}
		if got["@y"] {
			t.Fatalf("Sol(%s) includes @y", name)
		}
		if got[g.Problem.Names[wMem]] {
			t.Fatalf("Sol(%s) includes non-escaping w", name)
		}
	}
	r2 := points(t, g, sol, r2Var)
	if !r2[g.Problem.Names[wMem]] {
		t.Fatalf("Sol(r2) = %v, want to include w", r2)
	}
	if sol.Escaped(wMem) {
		t.Fatal("w escaped")
	}
	if !sol.Escaped(g.MemOf[m.Global("z")]) || !sol.Escaped(pMem) {
		t.Fatal("exported globals must escape")
	}
	if sol.Escaped(g.MemOf[m.Global("y")]) {
		t.Fatal("static y must not escape")
	}
}

func TestGenerateStaticOnlyModuleIsClosed(t *testing.T) {
	// A module with only internal definitions and no external calls has no
	// externally accessible memory at all.
	src := `
module "closed"
global @a : ptr = null internal
global @b : i32 = 0:i32 internal

func @main() internal {
entry:
  %t = alloca ptr
  store @b, %t
  %v = load ptr, %t
  store %v, @a
  ret
}
`
	g, _ := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	if ext := sol.ExternalSet(); len(ext) != 0 {
		t.Fatalf("closed module has external locations: %v", ext)
	}
	for v := VarID(0); v < VarID(g.Problem.NumVars()); v++ {
		if g.Problem.PtrCompat[v] && sol.PointsToExternal(v) {
			t.Fatalf("%s points to external memory in a closed module", g.Problem.Names[v])
		}
	}
}

func TestGenerateMallocFreeSummaries(t *testing.T) {
	src := `
module "heap"
declare func @malloc(i64) -> ptr
declare func @free(ptr)

func @build() -> ptr internal {
entry:
  %h1 = call ptr, @malloc(8:i64)
  %h2 = call ptr, @malloc(8:i64)
  %c = icmp eq, %h1, %h2
  condbr %c, a, b
a:
  %fr = call void, @free(%h1)
  ret %h1
b:
  ret %h2
}
`
	g, m := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	var h1, h2 VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		switch in.IName {
		case "h1":
			h1 = g.VarOf[in]
		case "h2":
			h2 = g.VarOf[in]
		}
	})
	s1, s2 := points(t, g, sol, h1), points(t, g, sol, h2)
	if len(s1) != 1 || len(s2) != 1 {
		t.Fatalf("heap pointers should have singleton per-site sets: %v %v", s1, s2)
	}
	for k := range s1 {
		if s2[k] {
			t.Fatalf("distinct malloc sites share an abstract location: %v %v", s1, s2)
		}
	}
	// malloc has a summary: calling it must not make arguments escape or
	// poison the result with Ω.
	if sol.PointsToExternal(h1) {
		t.Fatal("malloc result polluted with external memory")
	}
	// free must add no constraints at all.
	ret := g.RetOf[m.Func("build")]
	got := points(t, g, sol, ret)
	if len(got) != 2 {
		t.Fatalf("Sol($ret) = %v, want both heap sites", got)
	}
}

func TestGenerateIndirectCalls(t *testing.T) {
	src := `
module "fp"
global @handler : ptr = @impl internal

func @impl(%a: ptr) -> ptr internal {
entry:
  ret %a
}

func @run(%x: ptr) -> ptr internal {
entry:
  %f = load ptr, @handler
  %r = call ptr, %f(%x)
  ret %r
}
`
	g, m := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	run := m.Func("run")
	impl := m.Func("impl")

	// The indirect call resolves to impl, so impl's parameter receives
	// run's argument and run's result receives impl's return (identity).
	implParam := g.VarOf[impl.Params[0]]
	runRet := g.RetOf[run]

	// Give run's parameter a concrete pointee via another caller.
	// Here, simply: impl's param flows from run's %x which has no pointees,
	// so check the call graph plumbing instead: the return of run must be
	// connected to impl's return.
	_ = implParam
	var rVar VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.IName == "r" {
			rVar = g.VarOf[in]
		}
	})
	// No escapes anywhere: all internal, no external calls.
	if len(sol.ExternalSet()) != 0 {
		t.Fatalf("unexpected external locations: %v", sol.ExternalSet())
	}
	if sol.PointsToExternal(rVar) || sol.PointsToExternal(runRet) {
		t.Fatal("indirect call to internal function must not produce unknown pointees")
	}
}

func TestGenerateIndirectCallFlow(t *testing.T) {
	src := `
module "fpflow"
global @g : i32 = 0:i32 internal
global @handler : ptr = @impl internal

func @impl(%a: ptr) -> ptr internal {
entry:
  ret %a
}

func @run() -> ptr internal {
entry:
  %f = load ptr, @handler
  %r = call ptr, %f(@g)
  ret %r
}
`
	g, m := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	var rVar VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.IName == "r" {
			rVar = g.VarOf[in]
		}
	})
	got := points(t, g, sol, rVar)
	if !got["@g"] || len(got) != 1 {
		t.Fatalf("Sol(r) = %v, want exactly {@g} through the indirect call", got)
	}
}

func TestGeneratePointerIntCasts(t *testing.T) {
	src := `
module "casts"
global @secret : ptr = null internal
global @leaked : ptr = null internal

func @f() internal {
entry:
  %s = alloca i32
  store %s, @leaked
  %pl = load ptr, @leaked
  %i = ptrtoint %pl
  %q = inttoptr %i
  store %q, @secret
  ret
}
`
	g, m := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	var sMem, qVar VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		switch in.IName {
		case "s":
			sMem = g.MemOf[in]
		case "q":
			qVar = g.VarOf[in]
		}
	})
	// ptrtoint exposes %s (it is a pointee of %pl): it becomes externally
	// accessible, and the inttoptr result may target it again.
	if !sol.Escaped(sMem) {
		t.Fatal("ptrtoint must expose the pointee")
	}
	if !sol.PointsToExternal(qVar) {
		t.Fatal("inttoptr result must have unknown origin")
	}
	got := points(t, g, sol, qVar)
	if !got[g.Problem.Names[sMem]] {
		t.Fatalf("Sol(q) = %v, must include the exposed alloca", got)
	}
}

func TestGeneratePointerSmuggling(t *testing.T) {
	// Storing a pointer into memory, then loading it back as a scalar and
	// storing that scalar elsewhere: the pointee must be treated as
	// exposed (pointer smuggling, Section III-C).
	src := `
module "smuggle"
func @f(%dst: ptr) export {
entry:
  %x = alloca i32
  %box = alloca ptr
  store %x, %box
  %raw = load i64, %box
  store %raw, %dst
  ret
}
`
	g, m := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	var xMem VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		if in.IName == "x" {
			xMem = g.MemOf[in]
		}
	})
	if !sol.Escaped(xMem) {
		t.Fatal("smuggled pointer target must be externally accessible")
	}
}

func TestGenerateMemcpyTransfersPointees(t *testing.T) {
	src := `
module "mc"
global @a : i32 = 0:i32 internal

func @f() -> ptr internal {
entry:
  %src = alloca ptr
  %dst = alloca ptr
  store @a, %src
  memcpy %dst, %src, 8:i64
  %out = load ptr, %dst
  ret %out
}
`
	g, m := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	ret := g.RetOf[m.Func("f")]
	got := points(t, g, sol, ret)
	if !got["@a"] {
		t.Fatalf("Sol(ret) = %v, memcpy must transfer pointees", got)
	}
	if got["Ω"] {
		t.Fatalf("Sol(ret) = %v, memcpy of private memory must stay private", got)
	}
}

func TestGenerateMemcpyViaDeclaredFunction(t *testing.T) {
	src := `
module "mc2"
global @a : i32 = 0:i32 internal
declare func @memcpy(ptr, ptr, i64) -> ptr

func @f() -> ptr internal {
entry:
  %src = alloca ptr
  %dst = alloca ptr
  store @a, %src
  %r = call ptr, @memcpy(%dst, %src, 8:i64)
  %out = load ptr, %dst
  ret %out
}
`
	g, m := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	ret := g.RetOf[m.Func("f")]
	got := points(t, g, sol, ret)
	if !got["@a"] {
		t.Fatalf("Sol(ret) = %v, memcpy summary must transfer pointees", got)
	}
	if got["Ω"] {
		t.Fatalf("Sol(ret) = %v, summary call must not leak Ω", got)
	}
}

func TestGenerateExternalCallEscapesArguments(t *testing.T) {
	src := `
module "escape"
declare func @mystery(ptr) -> ptr

func @f() -> ptr internal {
entry:
  %x = alloca i32
  %r = call ptr, @mystery(%x)
  ret %r
}
`
	g, m := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	var xMem, rVar VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		switch in.IName {
		case "x":
			xMem = g.MemOf[in]
		case "r":
			rVar = g.VarOf[in]
		}
	})
	if !sol.Escaped(xMem) {
		t.Fatal("argument to external call must escape")
	}
	if !sol.PointsToExternal(rVar) {
		t.Fatal("result of external call must have unknown origin")
	}
	// The external module may return the escaped x.
	got := points(t, g, sol, rVar)
	if !got[g.Problem.Names[xMem]] {
		t.Fatalf("Sol(r) = %v, must include escaped x", got)
	}
}

func TestGenerateEscapedFunctionParams(t *testing.T) {
	// An internal function whose address escapes can be called from
	// external modules: its parameters gain unknown origins.
	src := `
module "fnescape"
declare func @register(ptr)

func @cb(%arg: ptr) internal {
entry:
  ret
}

func @setup() export {
entry:
  call void, @register(@cb)
  ret
}
`
	g, m := genFromIR(t, src)
	sol := MustSolve(g.Problem, DefaultConfig())
	cb := m.Func("cb")
	if !sol.Escaped(g.MemOf[cb]) {
		t.Fatal("cb's address was passed to an external call: it must escape")
	}
	arg := g.VarOf[cb.Params[0]]
	if !sol.PointsToExternal(arg) {
		t.Fatal("parameter of escaped function must have unknown origin")
	}
}

func TestGenerateAllConfigsOnIRModules(t *testing.T) {
	sources := []string{figure1IR, `
module "mix"
struct %Node = { ptr, i64 }
global @head : ptr = null internal
declare func @ext(ptr) -> ptr
declare func @malloc(i64) -> ptr

func @push(%v: ptr) export {
entry:
  %n = call ptr, @malloc(16:i64)
  %slot = gep %Node, %n, 0:i64, 0:i64
  %old = load ptr, @head
  store %old, %slot
  store %n, @head
  %e = call ptr, @ext(%n)
  store %e, %slot
  ret
}

func @pop() -> ptr export {
entry:
  %h = load ptr, @head
  %slot = gep %Node, %h, 0:i64, 0:i64
  %next = load ptr, %slot
  store %next, @head
  ret %h
}
`}
	for si, src := range sources {
		g, _ := genFromIR(t, src)
		want := ReferenceSolve(g.Problem)
		for _, cfg := range AllConfigs() {
			sol, err := Solve(g.Problem, cfg)
			if err != nil {
				t.Fatalf("source %d, %s: %v", si, cfg, err)
			}
			if sol.Canonical() != want {
				t.Fatalf("source %d: %s disagrees with reference", si, cfg)
			}
		}
	}
}

func TestGenerateCounts(t *testing.T) {
	g, m := genFromIR(t, figure1IR)
	if g.Problem.NumVars() == 0 || g.Problem.NumConstraints() == 0 {
		t.Fatal("empty problem from non-empty module")
	}
	// Every global and function has a memory location.
	for _, gl := range m.Globals {
		if _, ok := g.MemOf[gl]; !ok {
			t.Fatalf("global %s has no memory location", gl.GName)
		}
	}
	for _, f := range m.Funcs {
		if _, ok := g.MemOf[f]; !ok {
			t.Fatalf("function %s has no memory location", f.FName)
		}
	}
}
