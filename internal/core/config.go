package core

import (
	"fmt"
	"strings"
)

// Rep selects the pointee representation (paper Table IV).
type Rep uint8

const (
	// EP uses only explicit pointees: the Ω node is materialized as a real
	// constraint variable with the constraints of Section III-B.
	EP Rep = iota
	// IP represents Ω implicitly via the six flag constraints and the
	// inference rules of Figure 7 (Section III-D).
	IP
)

func (r Rep) String() string {
	if r == EP {
		return "EP"
	}
	return "IP"
}

// SolverKind selects the constraint solver.
type SolverKind uint8

const (
	// Naive iterates over all constraints until a fixed point, as in
	// Andersen's thesis.
	Naive SolverKind = iota
	// Worklist runs the worklist algorithm of Section II-C / Algorithm 1.
	Worklist
	// Wave runs wave propagation (Pereira and Berlin): collapse all
	// cycles, then propagate in topological order, one wave per round of
	// newly discovered edges. An extension beyond the paper's Table IV;
	// not included in AllConfigs.
	Wave
)

func (s SolverKind) String() string {
	switch s {
	case Naive:
		return "Naive"
	case Wave:
		return "Wave"
	default:
		return "WL"
	}
}

// Order selects the worklist iteration order (paper Table IV).
type Order uint8

const (
	FIFO Order = iota // first in, first out
	LIFO              // last in, first out
	LRF               // least recently fired
	LRF2              // 2-phase least recently fired
	Topo              // periodic topological sweeps
)

func (o Order) String() string {
	switch o {
	case FIFO:
		return "FIFO"
	case LIFO:
		return "LIFO"
	case LRF:
		return "LRF"
	case LRF2:
		return "2LRF"
	case Topo:
		return "TOPO"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// Config describes a full solver configuration: one path through the
// paper's Figure 8 flowchart.
type Config struct {
	Rep    Rep
	OVS    bool // offline variable substitution (Rountev and Chandra)
	Solver SolverKind
	Order  Order // meaningful only for the worklist solver

	// Worklist online techniques.
	PIP bool // prefer implicit pointees (Section IV); requires IP
	OCD bool // online cycle detection
	HCD bool // hybrid cycle detection
	LCD bool // lazy cycle detection
	DP  bool // difference propagation

	// PIPMask selects a subset of the four PIP additions for ablation
	// studies: bit i-1 enables addition i (Section IV's numbering).
	// Zero means "all rules" and is the normal setting.
	PIPMask uint8

	// Budget bounds the solve; a solve that exhausts it returns the
	// trivially sound Ω-degraded solution with Solution.Degraded set.
	// The zero value means no budget. The budget is part of the
	// configuration's canonical name (and therefore of engine cache
	// keys): budgeted and unbudgeted solves never share cached solutions.
	Budget Budget

	// SolveWorkers enables intra-solve parallelism: 0 selects the legacy
	// fully sequential path, any value ≥ 1 runs stratified presaturation
	// (SCC-condensed topological strata, difference-propagation merges at
	// stratum boundaries) with that many propagation workers. The strata
	// are data-independent within a level, so every worker count ≥ 1
	// produces a bit-identical Solution; String therefore renders all of
	// them as a single "PAR" marker and engine cache keys are shared
	// across worker counts. The differential harness
	// (internal/core/differential) is the gate for this property.
	SolveWorkers int
}

// pipRule reports whether PIP addition n (1-4) is enabled.
func (c Config) pipRule(n int) bool {
	if !c.PIP {
		return false
	}
	if c.PIPMask == 0 {
		return true
	}
	return c.PIPMask&(1<<(n-1)) != 0
}

// Validate reports whether the configuration is a valid combination
// (paper Figure 8): the naive solver takes no order and no online
// techniques, OCD subsumes and therefore excludes HCD and LCD, and PIP
// requires the implicit pointee representation.
func (c Config) Validate() error {
	if c.Solver == Naive {
		if c.PIP || c.OCD || c.HCD || c.LCD || c.DP {
			return fmt.Errorf("naive solver cannot use online worklist techniques")
		}
		if c.Order != FIFO {
			return fmt.Errorf("naive solver has no iteration order")
		}
	}
	if c.Solver == Wave {
		if c.OCD || c.HCD || c.LCD {
			return fmt.Errorf("wave propagation collapses all cycles itself")
		}
		if c.DP {
			return fmt.Errorf("wave propagation always propagates full sets")
		}
		if c.Order != FIFO {
			return fmt.Errorf("wave propagation has no iteration order")
		}
	}
	if c.OCD && (c.HCD || c.LCD) {
		return fmt.Errorf("OCD detects all cycles; combining it with HCD/LCD is invalid")
	}
	if c.PIP && c.Rep != IP {
		return fmt.Errorf("PIP requires the implicit pointee representation")
	}
	if c.PIPMask != 0 && !c.PIP {
		return fmt.Errorf("PIPMask requires PIP")
	}
	if c.PIPMask > 0xF {
		return fmt.Errorf("PIPMask has only four rule bits")
	}
	if c.Solver == Worklist && c.Order > Topo {
		return fmt.Errorf("unknown iteration order %d", c.Order)
	}
	if c.SolveWorkers < 0 {
		return fmt.Errorf("SolveWorkers must be >= 0, got %d", c.SolveWorkers)
	}
	if err := c.Budget.Validate(); err != nil {
		return err
	}
	return nil
}

// String renders the configuration in the paper's notation, for example
// "IP+WL(FIFO)+LCD+DP" or "EP+OVS+WL(LRF)+OCD".
func (c Config) String() string {
	var parts []string
	parts = append(parts, c.Rep.String())
	if c.OVS {
		parts = append(parts, "OVS")
	}
	switch c.Solver {
	case Naive:
		parts = append(parts, "Naive")
	case Wave:
		parts = append(parts, "Wave")
	default:
		parts = append(parts, fmt.Sprintf("WL(%s)", c.Order))
	}
	if c.OCD {
		parts = append(parts, "OCD")
	}
	if c.HCD {
		parts = append(parts, "HCD")
	}
	if c.LCD {
		parts = append(parts, "LCD")
	}
	if c.DP {
		parts = append(parts, "DP")
	}
	if c.PIP {
		// A non-zero mask always renders its rule list (even the full
		// 0xF, which behaves like 0) so that ParseConfig(c.String())
		// reconstructs the exact Config value.
		if c.PIPMask != 0 {
			var rules []string
			for i := 1; i <= 4; i++ {
				if c.PIPMask&(1<<(i-1)) != 0 {
					rules = append(rules, fmt.Sprint(i))
				}
			}
			parts = append(parts, "PIP["+strings.Join(rules, ",")+"]")
		} else {
			parts = append(parts, "PIP")
		}
	}
	if !c.Budget.IsZero() {
		parts = append(parts, "B("+c.Budget.String()+")")
	}
	if c.SolveWorkers > 0 {
		// One marker for every worker count ≥ 1: solutions are
		// bit-identical across counts, so cache keys deliberately
		// coalesce. ParseConfig reconstructs the canonical count 1.
		parts = append(parts, "PAR")
	}
	return strings.Join(parts, "+")
}

// ParseConfig parses the String notation back into a Config.
func ParseConfig(s string) (Config, error) {
	c := Config{}
	seenSolver := false
	for _, part := range strings.Split(s, "+") {
		switch {
		case part == "EP":
			c.Rep = EP
		case part == "IP":
			c.Rep = IP
		case part == "OVS":
			c.OVS = true
		case part == "Naive":
			c.Solver = Naive
			seenSolver = true
		case part == "Wave":
			c.Solver = Wave
			seenSolver = true
		case strings.HasPrefix(part, "WL(") && strings.HasSuffix(part, ")"):
			c.Solver = Worklist
			seenSolver = true
			switch ord := part[3 : len(part)-1]; ord {
			case "FIFO":
				c.Order = FIFO
			case "LIFO":
				c.Order = LIFO
			case "LRF":
				c.Order = LRF
			case "2LRF":
				c.Order = LRF2
			case "TOPO":
				c.Order = Topo
			default:
				return c, fmt.Errorf("unknown iteration order %q", ord)
			}
		case part == "PIP":
			c.PIP = true
		case strings.HasPrefix(part, "PIP[") && strings.HasSuffix(part, "]"):
			c.PIP = true
			for _, r := range strings.Split(part[4:len(part)-1], ",") {
				switch strings.TrimSpace(r) {
				case "1":
					c.PIPMask |= 1
				case "2":
					c.PIPMask |= 2
				case "3":
					c.PIPMask |= 4
				case "4":
					c.PIPMask |= 8
				default:
					return c, fmt.Errorf("bad PIP rule %q", r)
				}
			}
		case strings.HasPrefix(part, "B(") && strings.HasSuffix(part, ")"):
			b, err := ParseBudget(part[2 : len(part)-1])
			if err != nil {
				return c, err
			}
			c.Budget = b
		case part == "PAR":
			c.SolveWorkers = 1
		case part == "OCD":
			c.OCD = true
		case part == "HCD":
			c.HCD = true
		case part == "LCD":
			c.LCD = true
		case part == "DP":
			c.DP = true
		default:
			return c, fmt.Errorf("unknown configuration component %q", part)
		}
	}
	if !seenSolver {
		return c, fmt.Errorf("configuration %q names no solver", s)
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// MustParseConfig is ParseConfig that panics on error; for tests and tables.
func MustParseConfig(s string) Config {
	c, err := ParseConfig(s)
	if err != nil {
		panic(err)
	}
	return c
}

// DefaultConfig returns the configuration the paper found fastest overall:
// IP+WL(FIFO)+PIP.
func DefaultConfig() Config {
	return Config{Rep: IP, Solver: Worklist, Order: FIFO, PIP: true}
}

// AllConfigs enumerates every valid configuration. The compatibility matrix
// implemented here (see Validate) yields 304 configurations; the paper
// reports 208 from a flowchart whose complete incompatibility list is only
// available as a figure, so our space is a superset that contains all five
// Table V configurations verbatim.
func AllConfigs() []Config {
	var out []Config
	for _, rep := range []Rep{EP, IP} {
		for _, ovs := range []bool{false, true} {
			// Naive solver.
			c := Config{Rep: rep, OVS: ovs, Solver: Naive}
			out = append(out, c)
			// Worklist solver.
			for _, order := range []Order{FIFO, LIFO, LRF, LRF2, Topo} {
				for _, cyc := range []struct{ ocd, hcd, lcd bool }{
					{false, false, false},
					{true, false, false},
					{false, true, false},
					{false, false, true},
					{false, true, true},
				} {
					for _, dp := range []bool{false, true} {
						pips := []bool{false}
						if rep == IP {
							pips = []bool{false, true}
						}
						for _, pip := range pips {
							c := Config{
								Rep: rep, OVS: ovs, Solver: Worklist, Order: order,
								OCD: cyc.ocd, HCD: cyc.hcd, LCD: cyc.lcd,
								DP: dp, PIP: pip,
							}
							out = append(out, c)
						}
					}
				}
			}
		}
	}
	return out
}
