package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/pip-analysis/pip/internal/bitset"
	"github.com/pip-analysis/pip/internal/obs"
)

// This file implements checkpointed solves: the split between "constraint
// generation" and "propagation state" that lets a converged solve be
// resumed after the constraint set grows, instead of re-propagating from
// scratch. A Checkpoint snapshots the converged solver state (points-to
// sets, simple-edge graph, flags, escape facts); ResumeAdded restores it,
// re-seeds the (idempotent) constraint tables from the new problem, pushes
// only the nodes touched by the added constraints, and drains to the new
// fixpoint.
//
// Soundness and exactness rest on two properties of resumable
// configurations:
//
//  1. Monotonicity. Every restored fact is derivable from the old
//     constraint set, which is a subset of the new one, so the restored
//     state is a pre-fixpoint of the new system. Draining a monotone
//     worklist from a pre-fixpoint reaches the least fixpoint — the same
//     solution a from-scratch solve computes.
//
//  2. Identity representatives. Resumable configurations perform no
//     unification (no OVS, no online/offline cycle collapse), so find(v)
//     == v on both the checkpointed and the from-scratch side and the
//     snapshot can be indexed by plain variable id. This also makes the
//     resumed Fingerprint bit-identical, not merely query-equal — the
//     property the edit-script differential suite asserts.
//
// Deltas with removals (or retyped variables) invalidate property 1 —
// facts may no longer be derivable — and PIP rules 2/4 shrink explicit
// sets and edges mid-solve, breaking the pre-fixpoint argument; both force
// the caller (internal/core/incr) to fall back to a from-scratch solve.

// ErrNotResumable reports that a checkpoint cannot be resumed for the
// given delta; callers fall back to a from-scratch solve.
var ErrNotResumable = errors.New("core: checkpoint cannot resume this delta")

// Resumable reports whether solves under cfg can be checkpointed and
// resumed. The configuration must be a pure least-fixpoint computation:
// no unification (OVS/OCD/HCD/LCD collapse representatives, making the
// snapshot's identity indexing wrong), no PIP additions (rules 2 and 4
// shrink explicit sets and edges non-monotonically), not the wave solver
// (its per-wave SCC collapse unifies), and no budget (a resumed solve
// fires fewer rules than a from-scratch one, so degrade decisions — and
// with them the answer — would depend on solve history).
func Resumable(cfg Config) bool {
	return !cfg.OVS && !cfg.OCD && !cfg.HCD && !cfg.LCD && !cfg.PIP &&
		cfg.Solver != Wave && cfg.Budget.IsZero()
}

// Checkpoint is the propagation state of a converged solve, detached from
// the solver's arena so it survives arbitrary later solves. It is
// immutable after capture: resuming clones out of it, so one checkpoint
// can seed many resumes (and the chain of generations in incr.State).
type Checkpoint struct {
	cfg   Config
	nvars int   // problem variable count (excludes Ω)
	n     int   // solver variable count (includes Ω in EP mode)
	omega VarID // materialized Ω (EP) or NoVar (IP)

	pts      []*bitset.Set
	succ     []*bitset.Set
	repFlags []Flags
	external []bool
	impFunc  []bool
}

// Config returns the configuration the checkpoint was solved under; a
// resume must use the same configuration.
func (ck *Checkpoint) Config() Config { return ck.cfg }

// NumVars returns the checkpointed problem's variable count.
func (ck *Checkpoint) NumVars() int { return ck.nvars }

// ApproxBytes estimates the checkpoint's retained memory (set storage
// only; the flat tables are small by comparison).
func (ck *Checkpoint) ApproxBytes() int {
	b := len(ck.repFlags) + 3*len(ck.external)
	for _, s := range ck.pts {
		if s != nil {
			b += s.ApproxBytes()
		}
	}
	for _, s := range ck.succ {
		if s != nil {
			b += s.ApproxBytes()
		}
	}
	return b
}

// captureCheckpoint snapshots the solver's converged state. Points-to
// sets are shared, not cloned: they escape into the returned Solution,
// where they are immutable after the solve (queries only read, and
// ResumeAdded clones before mutating), so the Solution and the Checkpoint
// of one solve safely alias the same sets. Simple-edge sets are stolen
// from the arena rather than cloned — capture runs after finish, nothing
// reads the solver's succ table afterwards, and a nil arena slot just
// means the next solve allocates that set fresh. The remaining flat
// tables are arena scratch the next solve overwrites, so those are
// copied.
func captureCheckpoint(s *solver) *Checkpoint {
	ck := &Checkpoint{
		cfg:      s.cfg,
		nvars:    s.p.NumVars(),
		n:        s.n,
		omega:    s.omega,
		pts:      make([]*bitset.Set, s.n),
		succ:     make([]*bitset.Set, s.n),
		repFlags: append([]Flags(nil), s.repFlags...),
		external: append([]bool(nil), s.external...),
		impFunc:  append([]bool(nil), s.impFunc...),
	}
	for i, set := range s.pts {
		if set != nil && !set.Empty() {
			ck.pts[i] = set
		}
	}
	for i, set := range s.succ {
		if set != nil && !set.Empty() {
			ck.succ[i] = set
			s.succ[i] = nil // steal: s.succ aliases the arena's table
		}
	}
	return ck
}

// SolveCheckpointed is SolveTracedIn that additionally captures a resume
// checkpoint when the configuration is Resumable and the solve completed
// exactly (a degraded solve has no propagation state worth keeping). The
// checkpoint is nil otherwise; the solution is always valid.
func SolveCheckpointed(prob *Problem, cfg Config, tk obs.Track, ar *Arena) (*Solution, *Checkpoint, error) {
	var ck *Checkpoint
	var capture func(*solver)
	if Resumable(cfg) {
		capture = func(s *solver) { ck = captureCheckpoint(s) }
	}
	sol, err := solveTracedCapture(prob, cfg, tk, ar, capture)
	if err != nil {
		return nil, nil, err
	}
	if sol.Degraded {
		ck = nil
	}
	return sol, ck, nil
}

// ResumeAdded solves prob — the checkpointed problem plus the added
// constraints described by d — by restoring the checkpoint and draining
// only from the additions. d must be the summary delta from the
// checkpointed problem to prob and must be Monotone. On success it
// returns the solution (bit-identical to a from-scratch solve of prob)
// and a new checkpoint for the next generation.
//
// ErrNotResumable is returned (wrapped) when the delta cannot be resumed:
// non-monotone edits, or a grown variable universe under the explicit-Ω
// representation (Ω's id is the variable count, so appending variables
// would shift it out from under the snapshot).
func (ck *Checkpoint) ResumeAdded(prob *Problem, d *SummaryDelta, tk obs.Track, ar *Arena) (*Solution, *Checkpoint, error) {
	if !d.Monotone() {
		return nil, nil, fmt.Errorf("%w: delta removes or retypes constraints", ErrNotResumable)
	}
	if prob.NumVars() < ck.nvars {
		return nil, nil, fmt.Errorf("%w: variable universe shrank", ErrNotResumable)
	}
	if ck.cfg.Rep == EP && prob.NumVars() != ck.nvars {
		return nil, nil, fmt.Errorf("%w: variable universe grew under the explicit-Ω representation", ErrNotResumable)
	}
	if err := prob.Validate(); err != nil {
		return nil, nil, err
	}
	if ar == nil {
		pooled := arenaPool.Get().(*Arena)
		defer arenaPool.Put(pooled)
		ar = pooled
	}
	start := time.Now()
	s := newSolver(prob, ck.cfg, ar)
	s.tk = tk
	span := tk.Begin("resume",
		obs.S("config", ck.cfg.String()),
		obs.N("vars", int64(prob.NumVars())),
		obs.N("added", int64(d.Added())))

	// Restore the converged propagation state. Points-to and successor
	// sets are shared copy-on-write: the drain clones a set the moment it
	// first mutates it (ptsOf/ownSucc/addSucc), so the checkpoint and its
	// Solution stay valid while a small edit only pays for the handful of
	// sets it actually changes. The flat tables copy over the snapshot
	// prefix — appended variables (IP mode) keep their zero state and are
	// populated by the added constraints.
	s.ptsShared = make([]bool, s.n)
	s.succShared = make([]bool, s.n)
	for i, set := range ck.pts {
		if set != nil {
			s.pts[i] = set
			s.ptsShared[i] = true
		}
	}
	for i, set := range ck.succ {
		if set != nil {
			s.succ[i] = set
			s.succShared[i] = true
		}
	}
	// The arena's succ table now aliases checkpoint-owned sets.
	// captureCheckpoint detaches every non-empty slot; this defer also
	// detaches them on abort, error, or panic, so the next solve's
	// in-place arena reset can never clear a live checkpoint's sets.
	defer func() {
		for i, sh := range s.succShared {
			if sh {
				s.succ[i] = nil
			}
		}
	}()
	copy(s.repFlags, ck.repFlags)
	copy(s.external, ck.external)
	copy(s.impFunc, ck.impFunc)

	// The worklist must exist before seeding: unlike a from-scratch solve
	// (whose initial push-all covers everything), resume relies on the
	// enqueues that seed-time inferences make for newly flagged variables.
	if ck.cfg.Solver != Naive {
		s.wl = newWorklist(ck.cfg.Order, s)
	}
	// Re-seed from the full new problem. All set/flag installs are
	// idempotent on the restored state (no counters move, nothing is
	// re-enqueued for old facts), while the attachment tables
	// (loadTo/storeFrom/callsAt/funcsAt) — arena scratch, reset above —
	// are rebuilt completely, landing at the same indices as the original
	// solve because representatives are the identity.
	s.seed()
	s.seedResume(d)
	switch ck.cfg.Solver {
	case Naive:
		s.solveNaive()
	default:
		s.drainWorklist()
	}
	span.End(obs.N("firings", s.fired), obs.N("visits", int64(s.stats.Visits)))
	ar.iterBuf = s.iterBuf[:0]
	s.recycleWorklist()
	s.tel.Propagate = time.Since(start)
	var sol *Solution
	var next *Checkpoint
	if s.aborted {
		// Zero budget means this only happens under fault injection; keep
		// the same sound degradation contract as the from-scratch path.
		sol = degradedSolution(prob)
		sol.Stats = s.stats
		sol.Stats.ExplicitPointees = 0
	} else {
		sol = s.finish()
		next = captureCheckpoint(s)
	}
	s.tel.Degraded = sol.Degraded
	sol.Telemetry = s.tel
	sol.Stats.Duration = time.Since(start)
	return sol, next, nil
}

// kick schedules v's representative for a full revisit.
func (s *solver) kick(v VarID) {
	if v == NoVar {
		return
	}
	r := s.find(v)
	s.fullVisit[r] = true
	s.satVisit[r] = false
	s.enqueue(r)
}

// seedResume schedules exactly the work the added constraints introduce.
// seed() has already installed them; what is missing relative to a
// from-scratch solve is the initial push-all, so each added constraint's
// driver node is kicked for a full visit, which re-fires the node's
// complex constraints over its (restored) points-to set.
func (s *solver) seedResume(d *SummaryDelta) {
	touched := false
	for _, e := range d.AddedBase {
		s.kick(e.Dst)
		touched = true
	}
	for _, e := range d.AddedSimple {
		// The new edge was installed without propagation (addEdgeInit);
		// kicking the source flows its full set across.
		s.kick(e.Src)
		s.kick(e.Dst)
		touched = true
	}
	for _, e := range d.AddedLoad {
		s.kick(e.Src) // Dst ⊇ *Src attaches at the pointer Src
		touched = true
	}
	for _, e := range d.AddedStore {
		s.kick(e.Dst) // *Dst ⊇ Src attaches at the pointer Dst
		touched = true
	}
	for _, c := range d.AddedCalls {
		s.kick(c.Target)
		touched = true
	}
	revisitCalls := len(d.AddedFuncs) > 0
	for _, fc := range d.AddedFuncs {
		s.kick(fc.F)
		if s.cfg.Rep == IP && s.external[fc.F] {
			// From scratch, markExternallyAccessible(F) applies every
			// function constraint's escape effects; on resume F is already
			// marked (idempotent early-out), so apply the new constraint's
			// effects directly.
			if fc.Ret != NoVar && s.ptrCompat[s.find(fc.Ret)] {
				s.setFlag(fc.Ret, FlagEscapedPointees)
			}
			for _, a := range fc.Args {
				if a != NoVar && s.ptrCompat[s.find(a)] {
					s.setFlag(a, FlagPointsExt)
				}
			}
		}
		touched = true
	}
	for _, fe := range d.AddedFlags {
		// seed() installed the flag itself (and markExternallyAccessible
		// already handled newly external variables); the kick re-fires the
		// variable's own rules under the new flag.
		s.kick(fe.Var)
		if fe.Bits&FlagImpFunc != 0 {
			revisitCalls = true
		}
		touched = true
	}
	if revisitCalls {
		// A new function constraint (or imported-function mark) can change
		// the meaning of any already-resolved indirect call; revisit every
		// node carrying call constraints.
		for r := 0; r < s.n; r++ {
			if len(s.callsAt[r]) > 0 {
				s.kick(VarID(r))
			}
		}
	}
	if s.cfg.Rep == EP && touched {
		// Ω is the hub every flag constraint routes through; a full Ω
		// visit re-fires its self load/store/call rules over any pointees
		// the additions contributed.
		s.kick(s.omega)
	}
}
