package core

import (
	"math/rand"
	"strings"
	"testing"
)

// buildFigure3 reproduces the constraint set of the paper's Figure 3/4:
//
//	p ⊇ {x}   q ⊇ {y}   r ⊇ p   *r ⊇ q   s ⊇ *p
//
// Expected solved state (Figure 4): r ⊇ {x}, x ⊇ {y}, s ⊇ {y} (after
// inference x ⊇ q gives x ⊇ {y}; s ⊇ *p dereferences p = {x} so s ⊇ x).
func buildFigure3(t *testing.T) (*Problem, map[string]VarID) {
	t.Helper()
	p := NewProblem()
	ids := map[string]VarID{}
	// x and y are memory locations; x can hold pointers, y cannot be a
	// pointer in the figure (y ∉ P), but to match the figure exactly we
	// make x pointer-compatible and y not.
	ids["x"] = p.AddVar("x", Memory, true)
	ids["y"] = p.AddVar("y", Memory, false)
	for _, n := range []string{"p", "q", "r", "s"} {
		ids[n] = p.AddVar(n, Register, true)
	}
	p.AddBase(ids["p"], ids["x"])
	p.AddBase(ids["q"], ids["y"])
	p.AddSimple(ids["r"], ids["p"]) // r ⊇ p
	p.AddStore(ids["r"], ids["q"])  // *r ⊇ q
	p.AddLoad(ids["s"], ids["p"])   // s ⊇ *p
	return p, ids
}

func solSet(t *testing.T, sol *Solution, v VarID) map[VarID]bool {
	t.Helper()
	out := map[VarID]bool{}
	for _, x := range sol.PointsTo(v) {
		out[x] = true
	}
	return out
}

func TestFigure3AllConfigs(t *testing.T) {
	for _, cfg := range AllConfigs() {
		prob, ids := buildFigure3(t)
		sol, err := Solve(prob, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if got := solSet(t, sol, ids["p"]); !got[ids["x"]] || len(got) != 1 {
			t.Fatalf("%s: Sol(p) = %v, want {x}", cfg, got)
		}
		if got := solSet(t, sol, ids["r"]); !got[ids["x"]] || len(got) != 1 {
			t.Fatalf("%s: Sol(r) = %v, want {x}", cfg, got)
		}
		if got := solSet(t, sol, ids["x"]); !got[ids["y"]] || len(got) != 1 {
			t.Fatalf("%s: Sol(x) = %v, want {y}", cfg, got)
		}
		if got := solSet(t, sol, ids["s"]); !got[ids["y"]] || len(got) != 1 {
			t.Fatalf("%s: Sol(s) = %v, want {y}", cfg, got)
		}
	}
}

// buildFigure1 models the paper's Figure 1 program at the constraint level:
//
//	static int x, y; int z; extern int* getPtr();
//	int* p = &x;
//	void callMe(int* q) { int w; int* r = getPtr(); if (!r) r = &w; }
//
// p, z, callMe are exported; getPtr is imported.
func buildFigure1(t *testing.T) (*Problem, map[string]VarID) {
	t.Helper()
	p := NewProblem()
	ids := map[string]VarID{}
	ids["x"] = p.AddVar("x", Memory, false)
	ids["y"] = p.AddVar("y", Memory, false)
	ids["z"] = p.AddVar("z", Memory, false)
	ids["p"] = p.AddVar("p", Memory, true)
	ids["w"] = p.AddVar("w", Memory, false)
	ids["callMe"] = p.AddVar("callMe", Memory, false)
	ids["getPtr"] = p.AddVar("getPtr", Memory, false)
	ids["q"] = p.AddVar("q", Register, true)
	ids["r"] = p.AddVar("r", Register, true)
	// Dummy pointer for the direct call to getPtr (Figure 6).
	ids["&getPtr"] = p.AddVar("&getPtr", Register, true)

	p.AddBase(ids["p"], ids["x"]) // int* p = &x
	p.AddBase(ids["&getPtr"], ids["getPtr"])
	p.AddBase(ids["r"], ids["w"])            // r = &w (one arm of the phi)
	p.AddCall(ids["&getPtr"], ids["r"], nil) // r = getPtr()
	p.AddFunc(ids["callMe"], NoVar, []VarID{ids["q"]})

	// Escape seeding: exported p, z, callMe; imported getPtr.
	p.SetFlag(ids["p"], FlagExternal)
	p.SetFlag(ids["z"], FlagExternal)
	p.SetFlag(ids["callMe"], FlagExternal)
	p.SetFlag(ids["getPtr"], FlagExternal)
	p.SetFlag(ids["getPtr"], FlagImpFunc)
	return p, ids
}

func TestFigure1Semantics(t *testing.T) {
	for _, cfg := range AllConfigs() {
		prob, ids := buildFigure1(t)
		sol, err := Solve(prob, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		// All of p, q, r may point to x, z, and external memory, never y.
		for _, name := range []string{"p", "q", "r"} {
			got := solSet(t, sol, ids[name])
			if !got[ids["x"]] {
				t.Fatalf("%s: Sol(%s) misses x: %v", cfg, name, got)
			}
			if !got[ids["z"]] {
				t.Fatalf("%s: Sol(%s) misses z: %v", cfg, name, got)
			}
			if !got[OmegaPointee] {
				t.Fatalf("%s: Sol(%s) misses Ω", cfg, name)
			}
			if got[ids["y"]] {
				t.Fatalf("%s: Sol(%s) soundly includes private y: %v", cfg, name, got)
			}
		}
		// Only r may target w; w must not escape.
		if got := solSet(t, sol, ids["r"]); !got[ids["w"]] {
			t.Fatalf("%s: Sol(r) misses w", cfg)
		}
		for _, name := range []string{"p", "q"} {
			if got := solSet(t, sol, ids[name]); got[ids["w"]] {
				t.Fatalf("%s: Sol(%s) includes non-escaped w", cfg, name)
			}
		}
		if sol.Escaped(ids["w"]) || sol.Escaped(ids["y"]) {
			t.Fatalf("%s: non-escaping locals reported escaped", cfg)
		}
		for _, name := range []string{"x", "z", "p", "callMe", "getPtr"} {
			if !sol.Escaped(ids[name]) {
				t.Fatalf("%s: %s should be externally accessible", cfg, name)
			}
		}
	}
}

// randomProblem builds a deterministic pseudo-random problem exercising
// every constraint type and flag.
func randomProblem(seed int64, nVars, nCons int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem()
	var mems []VarID
	for i := 0; i < nVars; i++ {
		kind := Register
		compat := true
		r := rng.Intn(10)
		switch {
		case r < 4: // memory, pointer-compatible
			kind = Memory
		case r < 6: // memory, scalar cell
			kind = Memory
			compat = false
		case r < 9: // register, pointer
		default: // register-ish scalar var
			compat = false
		}
		id := p.AddVar("", kind, compat)
		if kind == Memory {
			mems = append(mems, id)
		}
	}
	if len(mems) == 0 {
		mems = append(mems, p.AddVar("", Memory, true))
		nVars++
	}
	anyVar := func() VarID { return VarID(rng.Intn(nVars)) }
	anyMem := func() VarID { return mems[rng.Intn(len(mems))] }
	for i := 0; i < nCons; i++ {
		switch rng.Intn(12) {
		case 0, 1, 2:
			p.AddBase(anyVar(), anyMem())
		case 3, 4, 5:
			p.AddSimple(anyVar(), anyVar())
		case 6:
			p.AddLoad(anyVar(), anyVar())
		case 7:
			p.AddStore(anyVar(), anyVar())
		case 8:
			// Function with 0-2 args; functions live on memory vars.
			f := anyMem()
			ret := NoVar
			if rng.Intn(2) == 0 {
				ret = anyVar()
			}
			var args []VarID
			for a := rng.Intn(3); a > 0; a-- {
				if rng.Intn(4) == 0 {
					args = append(args, NoVar)
				} else {
					args = append(args, anyVar())
				}
			}
			p.AddFunc(f, ret, args)
		case 9:
			tgt := anyVar()
			ret := NoVar
			if rng.Intn(2) == 0 {
				ret = anyVar()
			}
			var args []VarID
			for a := rng.Intn(3); a > 0; a-- {
				args = append(args, anyVar())
			}
			p.AddCall(tgt, ret, args)
		case 10:
			flags := []Flags{FlagExternal, FlagPointsExt, FlagEscapedPointees,
				FlagStoreScalar, FlagLoadScalar}
			p.SetFlag(anyVar(), flags[rng.Intn(len(flags))])
		case 11:
			p.SetFlag(anyMem(), FlagImpFunc)
		}
	}
	return p
}

// TestAllConfigsAgreeWithReference is the paper's solution-validation step:
// every valid configuration must produce the exact same solution, which
// must also match the independent brute-force reference solver.
func TestAllConfigsAgreeWithReference(t *testing.T) {
	configs := AllConfigs()
	problems := []*Problem{}
	if fp, _ := buildFigure3(t); fp != nil {
		problems = append(problems, fp)
	}
	if fp, _ := buildFigure1(t); fp != nil {
		problems = append(problems, fp)
	}
	for seed := int64(1); seed <= 12; seed++ {
		problems = append(problems, randomProblem(seed, 18, 36))
	}
	for pi, prob := range problems {
		want := ReferenceSolve(prob)
		for _, cfg := range configs {
			sol, err := Solve(prob, cfg)
			if err != nil {
				t.Fatalf("problem %d, %s: %v", pi, cfg, err)
			}
			if got := sol.Canonical(); got != want {
				t.Fatalf("problem %d: configuration %s disagrees with reference\n--- got\n%s--- want\n%s",
					pi, cfg, got, want)
			}
		}
	}
}

// TestLargerRandomAgreement runs fewer, larger random instances through the
// interesting configuration corners.
func TestLargerRandomAgreement(t *testing.T) {
	configs := []Config{
		MustParseConfig("EP+Naive"),
		MustParseConfig("EP+OVS+WL(LRF)+OCD"),
		MustParseConfig("EP+WL(TOPO)+HCD+LCD+DP"),
		MustParseConfig("IP+Naive"),
		MustParseConfig("IP+WL(FIFO)"),
		MustParseConfig("IP+WL(FIFO)+PIP"),
		MustParseConfig("IP+WL(FIFO)+LCD+DP"),
		MustParseConfig("IP+OVS+WL(2LRF)+HCD+DP+PIP"),
		MustParseConfig("IP+OVS+WL(LIFO)+OCD+DP+PIP"),
	}
	for seed := int64(100); seed < 106; seed++ {
		prob := randomProblem(seed, 120, 300)
		want := ReferenceSolve(prob)
		for _, cfg := range configs {
			sol, err := Solve(prob, cfg)
			if err != nil {
				t.Fatalf("seed %d, %s: %v", seed, cfg, err)
			}
			if got := sol.Canonical(); got != want {
				t.Fatalf("seed %d: configuration %s disagrees with reference", seed, cfg)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rep: EP, Solver: Naive, PIP: true},
		{Rep: EP, Solver: Naive, DP: true},
		{Rep: EP, Solver: Naive, Order: LIFO},
		{Rep: EP, Solver: Worklist, OCD: true, LCD: true},
		{Rep: EP, Solver: Worklist, OCD: true, HCD: true},
		{Rep: EP, Solver: Worklist, PIP: true},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestAllConfigsValidAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range AllConfigs() {
		if err := c.Validate(); err != nil {
			t.Fatalf("AllConfigs produced invalid %s: %v", c, err)
		}
		key := c.String()
		if seen[key] {
			t.Fatalf("duplicate configuration %s", key)
		}
		seen[key] = true
	}
	if len(seen) != 304 {
		t.Fatalf("got %d configurations, want 304 (documented superset of the paper's 208)", len(seen))
	}
}

func TestConfigStringRoundTrip(t *testing.T) {
	for _, c := range AllConfigs() {
		parsed, err := ParseConfig(c.String())
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if parsed != c {
			t.Fatalf("round-trip mismatch: %s vs %s", c, parsed)
		}
	}
	if _, err := ParseConfig("IP+WL(WRONG)"); err == nil {
		t.Fatal("bad order accepted")
	}
	if _, err := ParseConfig("IP+XYZ+Naive"); err == nil {
		t.Fatal("bad component accepted")
	}
	if _, err := ParseConfig("IP"); err == nil {
		t.Fatal("missing solver accepted")
	}
}

func TestSolutionQueries(t *testing.T) {
	prob, ids := buildFigure1(t)
	sol := MustSolve(prob, DefaultConfig())
	// q and p may share targets (both include x and external memory).
	if !sol.MayShareTargets(ids["q"], ids["p"]) {
		t.Fatal("q and p should share targets")
	}
	// Two pointers with unknown origin share Ω.
	if !sol.MayShareTargets(ids["q"], ids["r"]) {
		t.Fatal("q and r should share external targets")
	}
	if !sol.PointsToExternal(ids["q"]) {
		t.Fatal("q should point to external memory")
	}
	ext := sol.ExternalSet()
	if len(ext) == 0 {
		t.Fatal("external set empty")
	}
	if sol.Stats.Duration <= 0 {
		t.Fatal("missing duration")
	}
	dump := sol.Dump()
	if len(dump) == 0 {
		t.Fatal("empty dump")
	}
}

func TestExplicitPointeeCountPIPvsNoPIP(t *testing.T) {
	// On an escape-heavy problem PIP must produce no more explicit
	// pointees than the same configuration without PIP.
	prob := escapeHeavyProblem(40)
	pip := MustSolve(prob, MustParseConfig("IP+WL(FIFO)+PIP"))
	noPip := MustSolve(prob, MustParseConfig("IP+WL(FIFO)"))
	if pip.CountExplicitPointees() > noPip.CountExplicitPointees() {
		t.Fatalf("PIP increased explicit pointees: %d > %d",
			pip.CountExplicitPointees(), noPip.CountExplicitPointees())
	}
	if pip.Canonical() != noPip.Canonical() {
		t.Fatal("PIP changed the solution")
	}
	if noPip.CountExplicitPointees() <= 2*pip.CountExplicitPointees() {
		t.Fatalf("escape-heavy workload should show a clear PIP reduction: %d vs %d",
			noPip.CountExplicitPointees(), pip.CountExplicitPointees())
	}
}

// escapeHeavyProblem models a file with many exported globals that hold
// each other's addresses: without PIP, every exported pointer explicitly
// accumulates the full external set (doubled-up pointees).
func escapeHeavyProblem(n int) *Problem {
	p := NewProblem()
	ids := make([]VarID, n)
	for i := range ids {
		ids[i] = p.AddVar("", Memory, true)
		p.SetFlag(ids[i], FlagExternal)
	}
	for i := range ids {
		p.AddBase(ids[i], ids[(i+1)%n])
		p.AddSimple(ids[(i+3)%n], ids[i])
	}
	return p
}

func TestStatsPopulated(t *testing.T) {
	prob, _ := buildFigure1(t)
	wl := MustSolve(prob, MustParseConfig("IP+WL(FIFO)"))
	if wl.Stats.Visits == 0 {
		t.Fatal("worklist solve should count visits")
	}
	nv := MustSolve(prob, MustParseConfig("IP+Naive"))
	if nv.Stats.Passes == 0 {
		t.Fatal("naive solve should count passes")
	}
	ocd := MustSolve(escapeHeavyProblem(10), MustParseConfig("EP+WL(FIFO)+OCD"))
	if ocd.Stats.Unifications == 0 {
		t.Fatal("OCD on a cyclic problem should unify something")
	}
}

func TestProblemValidateErrors(t *testing.T) {
	p := NewProblem()
	mem := p.AddVar("m", Memory, true)
	reg := p.AddVar("r", Register, true)

	bad := NewProblem()
	bad.AddVar("m", Memory, true)
	bad.Base = append(bad.Base, Edge{Dst: 0, Src: 99})
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range base accepted")
	}

	bad2 := NewProblem()
	bad2.AddVar("a", Register, true)
	bad2.AddVar("b", Memory, true)
	bad2.Base = append(bad2.Base, Edge{Dst: 1, Src: 0}) // base targets a register
	if err := bad2.Validate(); err == nil {
		t.Fatal("base constraint on register pointee accepted")
	}

	bad3 := NewProblem()
	bad3.AddVar("a", Register, true)
	bad3.Simple = append(bad3.Simple, Edge{Dst: 7, Src: 0})
	if err := bad3.Validate(); err == nil {
		t.Fatal("out-of-range edge accepted")
	}

	bad4 := NewProblem()
	bad4.AddVar("f", Memory, true)
	bad4.AddFunc(0, 42, nil)
	if err := bad4.Validate(); err == nil {
		t.Fatal("out-of-range func ret accepted")
	}

	bad5 := NewProblem()
	bad5.AddVar("t", Register, true)
	bad5.AddCall(0, NoVar, []VarID{88})
	if err := bad5.Validate(); err == nil {
		t.Fatal("out-of-range call arg accepted")
	}

	good := NewProblem()
	gm := good.AddVar("m", Memory, true)
	gr := good.AddVar("r", Register, true)
	good.AddBase(gr, gm)
	good.AddSimple(gr, gr)
	good.AddFunc(gm, NoVar, []VarID{NoVar, gr})
	good.AddCall(gr, NoVar, nil)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	_ = mem
	_ = reg
}

func TestFlagsString(t *testing.T) {
	if s := Flags(0).String(); s != "-" {
		t.Fatalf("empty flags = %q", s)
	}
	f := FlagExternal | FlagPointsExt | FlagImpFunc
	s := f.String()
	for _, frag := range []string{"Ω⊒{x}", "x⊒Ω", "ImpFunc"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("flags string %q missing %q", s, frag)
		}
	}
}

func TestVarKindAndRepStrings(t *testing.T) {
	if Register.String() != "register" || Memory.String() != "memory" {
		t.Fatal("VarKind strings")
	}
	if EP.String() != "EP" || IP.String() != "IP" {
		t.Fatal("Rep strings")
	}
	if Topo.String() != "TOPO" || LRF2.String() != "2LRF" {
		t.Fatal("Order strings")
	}
	if Order(99).String() == "" {
		t.Fatal("unknown order should still render")
	}
}

func TestNumConstraintsCountsFlags(t *testing.T) {
	p := NewProblem()
	v := p.AddVar("v", Memory, true)
	base := p.NumConstraints()
	p.SetFlag(v, FlagExternal)
	p.SetFlag(v, FlagImpFunc)
	if p.NumConstraints() != base+2 {
		t.Fatalf("flag bits not counted: %d vs %d", p.NumConstraints(), base)
	}
}
