package core

import (
	"testing"

	"github.com/pip-analysis/pip/internal/ir"
)

func genWith(t *testing.T, src string, sums map[string]Summary) (*Gen, *ir.Module) {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := GenerateWith(m, sums)
	if err := g.Problem.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, m
}

const strchrSrc = `
module "s"
global @buf : [16 x i8] = zero:[16 x i8] internal
declare func @strchr(ptr, i32) -> ptr

func @find() -> ptr internal {
entry:
  %r = call ptr, @strchr(@buf, 47:i32)
  ret %r
}
`

func TestSummaryRetAliasesArg(t *testing.T) {
	// Without a summary, strchr is a generic import: the argument escapes
	// and the result is unknown.
	gNone, m := genWith(t, strchrSrc, nil)
	solNone := MustSolve(gNone.Problem, DefaultConfig())
	bufNone := gNone.MemOf[m.Global("buf")]
	if !solNone.Escaped(bufNone) {
		t.Fatal("generic import must escape its argument")
	}

	// With a summary "returns into arg 0", the result points exactly at
	// the buffer and nothing escapes.
	sums := map[string]Summary{"strchr": {RetAliasesArgs: []int{0}}}
	g, m2 := genWith(t, strchrSrc, sums)
	sol := MustSolve(g.Problem, DefaultConfig())
	buf := g.MemOf[m2.Global("buf")]
	if sol.Escaped(buf) {
		t.Fatal("summarized strchr must not escape its argument")
	}
	ret := g.RetOf[m2.Func("find")]
	pts := sol.PointsTo(ret)
	if len(pts) != 1 || pts[0] != buf {
		t.Fatalf("Sol(find ret) = %v, want exactly {buf}", pts)
	}
	if sol.PointsToExternal(ret) {
		t.Fatal("summarized result must not be unknown-origin")
	}
}

func TestSummaryFreshHeapPerSite(t *testing.T) {
	src := `
module "h"
declare func @my_alloc(i64) -> ptr

func @two() internal {
entry:
  %a = call ptr, @my_alloc(8:i64)
  %b = call ptr, @my_alloc(8:i64)
  ret
}
`
	g, m := genWith(t, src, map[string]Summary{"my_alloc": {RetFreshHeap: true}})
	sol := MustSolve(g.Problem, DefaultConfig())
	var a, b VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		switch in.IName {
		case "a":
			a = g.VarOf[in]
		case "b":
			b = g.VarOf[in]
		}
	})
	sa, sb := sol.PointsTo(a), sol.PointsTo(b)
	if len(sa) != 1 || len(sb) != 1 || sa[0] == sb[0] {
		t.Fatalf("per-site heap locations expected: %v vs %v", sa, sb)
	}
}

func TestSummaryEscapeAndUnknownInto(t *testing.T) {
	src := `
module "cb"
declare func @register_handler(ptr)
declare func @read_into(ptr)

func @setup() internal {
entry:
  %obj = alloca ptr
  %fr = call void, @register_handler(%obj)
  %slot = alloca ptr
  %fr2 = call void, @read_into(%slot)
  %got = load ptr, %slot
  ret
}
`
	sums := map[string]Summary{
		"register_handler": {EscapeArgs: []int{0}},
		"read_into":        {UnknownIntoArgs: []int{0}},
	}
	g, m := genWith(t, src, sums)
	sol := MustSolve(g.Problem, DefaultConfig())
	var obj, slot, got VarID
	m.ForEachInstr(func(_ *ir.Function, _ *ir.Block, in *ir.Instr) {
		switch in.IName {
		case "obj":
			obj = g.MemOf[in]
		case "slot":
			slot = g.MemOf[in]
		case "got":
			got = g.VarOf[in]
		}
	})
	if !sol.Escaped(obj) {
		t.Fatal("EscapeArgs summary must escape the pointee")
	}
	if sol.Escaped(slot) {
		t.Fatal("UnknownIntoArgs must not escape the slot itself")
	}
	if !sol.PointsToExternal(got) {
		t.Fatal("value read from an out-param slot must have unknown origin")
	}
}

func TestSummaryOverridesDefault(t *testing.T) {
	// Overriding malloc with "no behaviour" removes the heap location.
	src := `
module "o"
declare func @malloc(i64) -> ptr

func @f() -> ptr internal {
entry:
  %h = call ptr, @malloc(8:i64)
  ret %h
}
`
	g, m := genWith(t, src, map[string]Summary{"malloc": {}})
	sol := MustSolve(g.Problem, DefaultConfig())
	ret := g.RetOf[m.Func("f")]
	if n := len(sol.PointsTo(ret)); n != 0 {
		t.Fatalf("overridden malloc still produced %d pointees", n)
	}
}

func TestSummaryIndirectCallUsesFuncConstraint(t *testing.T) {
	// Taking malloc's address and calling it indirectly must still return
	// heap memory (the shared per-allocator location).
	src := `
module "ind"
global @allocfn : ptr = @malloc internal
declare func @malloc(i64) -> ptr

func @f() -> ptr internal {
entry:
  %fp = load ptr, @allocfn
  %h = call ptr, %fp(8:i64)
  ret %h
}
`
	g, m := genWith(t, src, nil)
	sol := MustSolve(g.Problem, DefaultConfig())
	ret := g.RetOf[m.Func("f")]
	pts := sol.PointsTo(ret)
	if len(pts) == 0 {
		t.Fatal("indirect malloc produced no pointees")
	}
	found := false
	for _, x := range pts {
		if g.Problem.Names[x] == "heap.$malloc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("indirect malloc result should include the shared heap: %v", pts)
	}
}

func TestSummaryMaxArgIndexBeyondParams(t *testing.T) {
	// A variadic-style declaration with fewer declared params than the
	// summary references.
	src := `
module "v"
global @a : ptr = null internal
global @b : ptr = null internal
declare func @sprintf2(ptr, ...) -> i32

func @f() internal {
entry:
  %r = call i32, @sprintf2(@a, @b)
  ret
}
`
	sums := map[string]Summary{"sprintf2": {Copies: [][2]int{{0, 1}}}}
	g, m := genWith(t, src, sums)
	sol := MustSolve(g.Problem, DefaultConfig())
	_ = sol
	if g.Problem.NumVars() == 0 {
		t.Fatal("empty problem")
	}
	_ = m
}

func TestDefaultSummariesCoverPaperSet(t *testing.T) {
	d := DefaultSummaries()
	for _, name := range []string{"malloc", "free", "memcpy"} {
		if _, ok := d[name]; !ok {
			t.Fatalf("missing paper summary %s", name)
		}
	}
	if !d["malloc"].RetFreshHeap || d["malloc"].hasRet() == false {
		t.Fatal("malloc summary wrong")
	}
	if d["free"].hasRet() {
		t.Fatal("free summary wrong")
	}
	if len(d["memcpy"].Copies) != 1 {
		t.Fatal("memcpy summary wrong")
	}
	if got := (Summary{Copies: [][2]int{{3, 1}}, EscapeArgs: []int{5}}).maxArgIndex(); got != 5 {
		t.Fatalf("maxArgIndex = %d", got)
	}
}
