package core

import (
	"sync"

	"github.com/pip-analysis/pip/internal/bitset"
	"github.com/pip-analysis/pip/internal/uf"
)

// Arena owns the reusable scratch state of one solver: the union-find
// forests, flag/visit tables, simple-edge and difference sets, complex
// constraint tables, worklist storage, and the stratification scratch.
// Reusing an arena across solves removes the dominant per-solve allocation
// churn (everything sized by variable count except the points-to sets
// themselves, which escape into the returned Solution and are always
// allocated fresh).
//
// An Arena is NOT safe for concurrent use: at most one solve may use it at
// a time. The intended owners are engine worker goroutines, each holding
// one arena across all jobs it processes. Passing a nil arena to
// SolveTracedIn borrows one from an internal sync.Pool for the duration of
// the solve. All state is reset when a solve acquires the arena, never
// when it finishes, so a solve that panics (or is abandoned by a watchdog
// while still running) can never hand dirty or in-use state to the next
// solve.
type Arena struct {
	forest *uf.Forest
	// strata holds the scratch union-find used by stratified
	// presaturation to group SCC members without touching the solver's
	// real forest (workers must never path-compress shared state).
	strata *uf.Forest

	repFlags  []Flags
	fullVisit []bool
	satVisit  []bool
	ptrCompat []bool
	impFunc   []bool
	visitMark []uint32

	succ      []*bitset.Set
	dif       []*bitset.Set
	loadTo    [][]VarID
	storeFrom [][]VarID
	callsAt   [][]callC
	funcsAt   [][]funcC

	// iterBuf is the visit-level pointee snapshot buffer; visit is not
	// reentrant, so one buffer per solve suffices.
	iterBuf []uint32

	// Worklist storage (FIFO/LIFO orders).
	wlPending []bool
	wlQueue   []VarID

	// Stratification scratch: CSR adjacency and Tarjan state.
	csrOff  []int32
	csrNext []int32
	csrDst  []VarID
	compOf  []int32
	tjIndex []int32
	tjLow   []int32
	tjOn    []bool
	actMark []bool
	tjStack []VarID
}

// NewArena returns an empty arena ready for SolveTracedIn. Engine workers
// create one per goroutine and reuse it across jobs.
func NewArena() *Arena { return &Arena{} }

var arenaPool = sync.Pool{New: func() any { return &Arena{} }}

// reset sizes every table for n variables and clears it, reusing backing
// storage wherever capacity allows. Set objects left over from the
// previous solve are cleared in place so their storage (including bitmap
// words) is recycled.
func (a *Arena) reset(n int) {
	if a.forest == nil {
		a.forest = uf.New(n)
	} else {
		a.forest.Reset(n)
	}

	a.repFlags = growZero(a.repFlags, n)
	a.fullVisit = growZero(a.fullVisit, n)
	a.satVisit = growZero(a.satVisit, n)
	a.ptrCompat = growZero(a.ptrCompat, n)
	a.impFunc = growZero(a.impFunc, n)
	a.visitMark = growZero(a.visitMark, n)

	a.succ = resetSets(a.succ, n)
	a.dif = resetSets(a.dif, n)
	a.loadTo = resetNested(a.loadTo, n)
	a.storeFrom = resetNested(a.storeFrom, n)
	a.callsAt = resetNested(a.callsAt, n)
	a.funcsAt = resetNested(a.funcsAt, n)
}

// growZero is the shared resize-and-clear for flat scratch slices.
func growZero[T comparable](s []T, n int) []T {
	var zero T
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = zero
	}
	return s
}

// resetSets resizes a set table, clearing surviving sets in place so their
// storage is reused by the next solve.
func resetSets(s []*bitset.Set, n int) []*bitset.Set {
	if cap(s) < n {
		grown := make([]*bitset.Set, n)
		copy(grown, s)
		s = grown
	}
	s = s[:n]
	for i := range s {
		if s[i] != nil {
			s[i].Clear()
		}
	}
	return s
}

// resetNested resizes a table of slices, truncating each entry to length
// zero so the inner capacity is reused.
func resetNested[T any](s [][]T, n int) [][]T {
	if cap(s) < n {
		grown := make([][]T, n)
		copy(grown, s)
		s = grown
	}
	s = s[:n]
	for i := range s {
		s[i] = s[i][:0]
	}
	return s
}

// wlPendingBuf returns the arena's worklist membership table, sized and
// cleared for this solve.
func (s *solver) wlPendingBuf() []bool {
	s.ar.wlPending = growZero(s.ar.wlPending, s.n)
	return s.ar.wlPending
}

// wlQueueBuf returns the arena's (empty) worklist queue storage.
func (s *solver) wlQueueBuf() []VarID { return s.ar.wlQueue[:0] }

// recycleWorklist hands a worklist's grown storage back to the arena.
func (s *solver) recycleWorklist() {
	switch w := s.wl.(type) {
	case *fifoWL:
		s.ar.wlPending, s.ar.wlQueue = w.pending, w.q[:0]
	case *lifoWL:
		s.ar.wlPending, s.ar.wlQueue = w.pending, w.stack[:0]
	}
}

// strataForest returns the scratch union-find for stratification, reset to
// n singletons.
func (a *Arena) strataForest(n int) *uf.Forest {
	if a.strata == nil {
		a.strata = uf.New(n)
	} else {
		a.strata.Reset(n)
	}
	return a.strata
}
