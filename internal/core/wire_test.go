package core

import (
	"bytes"
	"testing"

	"github.com/pip-analysis/pip/internal/ir"
)

const wireSrc = `
module "w"
global @g : ptr = zero:ptr internal
global @buf : [16 x i8] = zero:[16 x i8] internal
declare func @ext(ptr) -> ptr

func @main() -> ptr internal {
entry:
  %p = alloca i64
  %q = alloca ptr
  store %p, %q
  %l = load ptr, %q
  store @buf, @g
  %r = call ptr, @ext(%l)
  ret %r
}
`

func wireProblem(t *testing.T) *Problem {
	t.Helper()
	m, err := ir.Parse(wireSrc)
	if err != nil {
		t.Fatal(err)
	}
	g := Generate(m)
	if err := g.Problem.Validate(); err != nil {
		t.Fatal(err)
	}
	return g.Problem
}

// TestWireRoundTrip is the store's core contract: encode → decode
// reproduces the solution bit-for-bit — identical fingerprint text,
// identical FingerprintHash, identical canonical form, and a re-encode
// that is byte-identical to the first (so compaction rewrites are stable).
func TestWireRoundTrip(t *testing.T) {
	p := wireProblem(t)
	for _, cs := range []string{
		"IP+WL(FIFO)+PIP", // the default configuration
		"EP+OVS+WL(LRF)+OCD",
		"EP+Naive",
		"IP+WL(LIFO)+HCD+LCD+DP",
	} {
		cfg := MustParseConfig(cs)
		sol := MustSolve(p, cfg)
		enc := sol.EncodeWire()
		got, err := DecodeSolution(p, enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", cs, err)
		}
		if got.Fingerprint() != sol.Fingerprint() {
			t.Fatalf("%s: fingerprint changed across the wire", cs)
		}
		if FingerprintHash(got) != FingerprintHash(sol) {
			t.Fatalf("%s: fingerprint hash changed across the wire", cs)
		}
		if got.Canonical() != sol.Canonical() {
			t.Fatalf("%s: canonical form changed across the wire", cs)
		}
		if got.Stats != sol.Stats {
			t.Fatalf("%s: stats changed across the wire: %+v vs %+v", cs, got.Stats, sol.Stats)
		}
		if re := got.EncodeWire(); !bytes.Equal(re, enc) {
			t.Fatalf("%s: re-encode is not byte-identical", cs)
		}
	}
}

func TestWireRoundTripDegraded(t *testing.T) {
	p := wireProblem(t)
	sol := DegradedSolution(p)
	got, err := DecodeSolution(p, sol.EncodeWire())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded {
		t.Fatal("Degraded flag lost across the wire")
	}
	if got.Fingerprint() != sol.Fingerprint() {
		t.Fatal("degraded fingerprint changed across the wire")
	}
}

// TestWireTruncation: a torn record (every possible prefix) must decode to
// an error, never a panic and never a plausible solution.
func TestWireTruncation(t *testing.T) {
	p := wireProblem(t)
	enc := MustSolve(p, DefaultConfig()).EncodeWire()
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeSolution(p, enc[:n]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(enc))
		}
	}
	// Trailing garbage is also rejected: an appended record boundary error
	// must not be silently absorbed.
	if _, err := DecodeSolution(p, append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("decode with trailing byte succeeded")
	}
}

// TestWireFlipNeverPanics: single-bit corruption anywhere in the record
// either fails the decode or yields a structurally valid solution whose
// queries do not panic (the store's CRC + fingerprint verification is what
// rejects the semantic change; this test pins the memory-safety half).
func TestWireFlipNeverPanics(t *testing.T) {
	p := wireProblem(t)
	sol := MustSolve(p, MustParseConfig("EP+WL(FIFO)"))
	enc := sol.EncodeWire()
	for i := 0; i < len(enc); i++ {
		mut := append([]byte{}, enc...)
		mut[i] ^= 0x41
		got, err := DecodeSolution(p, mut)
		if err != nil {
			continue
		}
		got.Fingerprint()
		got.Canonical()
	}
}

func TestWireWrongProblemRejected(t *testing.T) {
	p := wireProblem(t)
	enc := MustSolve(p, DefaultConfig()).EncodeWire()
	m, err := ir.Parse(`
module "other"
global @x : ptr = zero:ptr internal
`)
	if err != nil {
		t.Fatal(err)
	}
	other := Generate(m).Problem
	if other.NumVars() == p.NumVars() {
		t.Fatal("test problems must differ in variable count")
	}
	if _, err := DecodeSolution(other, enc); err == nil {
		t.Fatal("decode against a different variable universe succeeded")
	}
}
