package core

import (
	"fmt"
	"sort"
	"strings"
)

// ReferenceSolve is an independent, deliberately simple fixed-point solver
// used only by tests to validate the production solver. It materializes Ω
// as an explicit pseudo-variable, represents points-to sets as maps, and
// applies every inference rule of Figures 2 and 7 in a loop until nothing
// changes. It shares no code with the solver under test.
//
// It returns the canonical solution string in the same format as
// Solution.Canonical.
func ReferenceSolve(p *Problem) string {
	n := p.NumVars()
	omega := VarID(n)

	pts := make([]map[VarID]bool, n+1)
	succ := make([]map[VarID]bool, n+1)
	for i := range pts {
		pts[i] = map[VarID]bool{}
		succ[i] = map[VarID]bool{}
	}
	compat := func(v VarID) bool {
		if v == omega {
			return true
		}
		return p.PtrCompat[v]
	}

	type loadC struct{ dst, ptr VarID }
	type storeC struct{ ptr, src VarID }
	var loads []loadC
	var stores []storeC
	funcs := map[VarID][]FuncConstraint{}
	extFunc := map[VarID]bool{} // imported functions: Func(f, Ω, ⋯, Ω)
	var calls []CallConstraint

	changed := true
	mark := func(m map[VarID]bool, v VarID) {
		if !m[v] {
			m[v] = true
			changed = true
		}
	}
	// addEdge normalizes pointer-incompatible endpoints to Ω (Section V-B).
	addEdge := func(src, dst VarID) {
		if !compat(src) {
			src = omega
		}
		if !compat(dst) {
			dst = omega
		}
		if src == dst {
			return
		}
		mark(succ[src], dst)
	}

	// Seed.
	for _, e := range p.Base {
		if compat(e.Dst) {
			mark(pts[e.Dst], e.Src)
		}
	}
	for _, e := range p.Simple {
		addEdge(e.Src, e.Dst)
	}
	for _, e := range p.Load {
		if !compat(e.Src) {
			// Loading through an integer: unknown-origin result.
			addEdge(omega, e.Dst)
			continue
		}
		if !compat(e.Dst) {
			// Scalar load: Ω ⊇ *ptr.
			loads = append(loads, loadC{dst: omega, ptr: e.Src})
			continue
		}
		loads = append(loads, loadC{dst: e.Dst, ptr: e.Src})
	}
	for _, e := range p.Store {
		if !compat(e.Dst) {
			addEdge(e.Src, omega)
			continue
		}
		if !compat(e.Src) {
			stores = append(stores, storeC{ptr: e.Dst, src: omega})
			continue
		}
		stores = append(stores, storeC{ptr: e.Dst, src: e.Src})
	}
	for _, fc := range p.Funcs {
		funcs[fc.F] = append(funcs[fc.F], fc)
	}
	calls = append(calls, p.Calls...)

	// Ω constraints of Section III-B.
	mark(pts[omega], omega)
	loads = append(loads, loadC{dst: omega, ptr: omega})
	stores = append(stores, storeC{ptr: omega, src: omega})

	for v := VarID(0); v < VarID(n); v++ {
		f := p.Flags[v]
		if f&FlagExternal != 0 {
			mark(pts[omega], v)
		}
		if f&FlagImpFunc != 0 {
			extFunc[v] = true
		}
		if f&FlagPointsExt != 0 {
			addEdge(omega, v)
		}
		if f&FlagEscapedPointees != 0 {
			addEdge(v, omega)
		}
		if f&FlagStoreScalar != 0 {
			stores = append(stores, storeC{ptr: v, src: omega})
		}
		if f&FlagLoadScalar != 0 {
			loads = append(loads, loadC{dst: omega, ptr: v})
		}
	}

	members := func(v VarID) []VarID {
		out := make([]VarID, 0, len(pts[v]))
		for x := range pts[v] {
			out = append(out, x)
		}
		return out
	}

	for changed {
		changed = false
		// TRANS.
		for src := VarID(0); src <= omega; src++ {
			for dst := range succ[src] {
				for x := range pts[src] {
					mark(pts[dst], x)
				}
			}
		}
		// LOAD.
		for _, l := range loads {
			for _, x := range members(l.ptr) {
				addEdge(x, l.dst)
			}
		}
		// STORE.
		for _, st := range stores {
			for _, x := range members(st.ptr) {
				addEdge(st.src, x)
			}
		}
		// CALL, including Ω's external call (external modules call every
		// function reachable from Ω) and imported functions.
		apply := func(target VarID, ret VarID, args []VarID, externalCaller bool) {
			for _, x := range members(target) {
				if x == omega && !externalCaller {
					// Call through an unknown pointer behaves as a call
					// to an imported function.
					if ret != NoVar {
						addEdge(omega, ret)
					}
					for _, a := range args {
						if a != NoVar {
							addEdge(a, omega)
						}
					}
					continue
				}
				if extFunc[x] && !externalCaller {
					// Imported-function effects; a variable can in
					// principle carry both ImpFunc and explicit Func
					// constraints, in which case both apply.
					if ret != NoVar {
						addEdge(omega, ret)
					}
					for _, a := range args {
						if a != NoVar {
							addEdge(a, omega)
						}
					}
				}
				for _, fc := range funcs[x] {
					if externalCaller {
						if fc.Ret != NoVar {
							addEdge(fc.Ret, omega)
						}
						for _, fa := range fc.Args {
							if fa != NoVar {
								addEdge(omega, fa)
							}
						}
						continue
					}
					if ret != NoVar && fc.Ret != NoVar {
						addEdge(fc.Ret, ret)
					}
					k := len(args)
					if len(fc.Args) < k {
						k = len(fc.Args)
					}
					for i := 0; i < k; i++ {
						if args[i] != NoVar && fc.Args[i] != NoVar {
							addEdge(args[i], fc.Args[i])
						}
					}
				}
			}
		}
		for _, c := range calls {
			apply(c.Target, c.Ret, c.Args, false)
		}
		apply(omega, NoVar, nil, true)
	}

	// Canonical rendering: Sol(v) = Sol_e(v) \ {Ω} plus, when Ω ∈ Sol(v),
	// all of E and the Ω marker.
	external := map[VarID]bool{}
	for x := range pts[omega] {
		if x != omega {
			external[x] = true
		}
	}
	var b strings.Builder
	for v := VarID(0); v < VarID(n); v++ {
		if !p.PtrCompat[v] {
			continue
		}
		set := map[VarID]bool{}
		hasOmega := false
		for x := range pts[v] {
			if x == omega {
				hasOmega = true
				continue
			}
			set[x] = true
		}
		if hasOmega {
			for x := range external {
				set[x] = true
			}
		}
		out := make([]VarID, 0, len(set))
		for x := range set {
			out = append(out, x)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		fmt.Fprintf(&b, "%d:", v)
		for _, x := range out {
			fmt.Fprintf(&b, " %d", x)
		}
		if hasOmega {
			b.WriteString(" Ω")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
