package core

import "testing"

// PIP rule-mask tests: every subset of the four PIP additions must be
// solution-preserving, and the full mask must equal plain PIP.

func TestPIPMaskAllSubsetsExact(t *testing.T) {
	problems := []*Problem{escapeHeavyProblem(20)}
	for seed := int64(50); seed < 56; seed++ {
		problems = append(problems, randomProblem(seed, 40, 90))
	}
	for pi, prob := range problems {
		want := ReferenceSolve(prob)
		for mask := uint8(0); mask <= 0xF; mask++ {
			cfg := Config{Rep: IP, Solver: Worklist, Order: FIFO, PIP: true, PIPMask: mask}
			sol, err := Solve(prob, cfg)
			if err != nil {
				t.Fatalf("mask %04b: %v", mask, err)
			}
			if sol.Canonical() != want {
				t.Fatalf("problem %d: PIP mask %04b changed the solution", pi, mask)
			}
		}
	}
}

func TestPIPMaskStringRoundTrip(t *testing.T) {
	cfg := Config{Rep: IP, Solver: Worklist, Order: FIFO, PIP: true, PIPMask: 0b0101}
	s := cfg.String()
	if s != "IP+WL(FIFO)+PIP[1,3]" {
		t.Fatalf("String = %q", s)
	}
	parsed, err := ParseConfig(s)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != cfg {
		t.Fatalf("round trip: %+v vs %+v", parsed, cfg)
	}
	// The full mask behaves like mask 0 but is a distinct Config value, so
	// it renders its explicit rule list: normalizing it to plain "PIP"
	// would parse back to mask 0 and break ParseConfig(c.String()) == c.
	full := Config{Rep: IP, Solver: Worklist, Order: FIFO, PIP: true, PIPMask: 0xF}
	if full.String() != "IP+WL(FIFO)+PIP[1,2,3,4]" {
		t.Fatalf("full mask String = %q", full.String())
	}
	reparsed, err := ParseConfig(full.String())
	if err != nil {
		t.Fatal(err)
	}
	if reparsed != full {
		t.Fatalf("full-mask round trip: %+v vs %+v", reparsed, full)
	}
	if _, err := ParseConfig("IP+WL(FIFO)+PIP[9]"); err == nil {
		t.Fatal("bad rule accepted")
	}
}

func TestPIPMaskValidation(t *testing.T) {
	bad := Config{Rep: IP, Solver: Worklist, PIPMask: 3}
	if err := bad.Validate(); err == nil {
		t.Fatal("PIPMask without PIP accepted")
	}
	bad2 := Config{Rep: IP, Solver: Worklist, PIP: true, PIPMask: 0x1F}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range PIPMask accepted")
	}
}

// TestPIPRule2DrivesPointeeReduction: on escape-heavy input, rule 2
// (clearing doubled-up sets) is the main source of the explicit-pointee
// reduction.
func TestPIPRule2DrivesPointeeReduction(t *testing.T) {
	prob := escapeHeavyProblem(40)
	noPip := MustSolve(prob, MustParseConfig("IP+WL(FIFO)"))
	rule2 := MustSolve(prob, Config{Rep: IP, Solver: Worklist, Order: FIFO, PIP: true, PIPMask: 0b0010})
	all := MustSolve(prob, MustParseConfig("IP+WL(FIFO)+PIP"))
	if rule2.Stats.ExplicitPointees >= noPip.Stats.ExplicitPointees {
		t.Fatalf("rule 2 alone should reduce pointees: %d vs %d",
			rule2.Stats.ExplicitPointees, noPip.Stats.ExplicitPointees)
	}
	if all.Stats.ExplicitPointees > rule2.Stats.ExplicitPointees {
		t.Fatalf("full PIP should not exceed rule 2 alone: %d vs %d",
			all.Stats.ExplicitPointees, rule2.Stats.ExplicitPointees)
	}
}

// TestPIPInvariantEmptySolWhenDoubledUp checks the paper's Section IV
// property: under PIP, any node marked both x ⊒ Ω and Ω ⊒ x has an empty
// explicit solution set at the fixed point.
func TestPIPInvariantEmptySolWhenDoubledUp(t *testing.T) {
	problems := []*Problem{escapeHeavyProblem(30)}
	for seed := int64(600); seed < 610; seed++ {
		problems = append(problems, randomProblem(seed, 50, 120))
	}
	for pi, prob := range problems {
		sol := MustSolve(prob, MustParseConfig("IP+WL(FIFO)+PIP"))
		for v := VarID(0); v < VarID(prob.NumVars()); v++ {
			if !prob.PtrCompat[v] {
				continue
			}
			if sol.PointsToExternal(v) && sol.pointsExt[sol.rep(v)] {
				// Need both flags: x ⊒ Ω is pointsExt; Ω ⊒ x is the
				// escaped-pointees flag, which MarkExternallyAccessible
				// sets together with External on x itself. Use Escaped
				// as the observable proxy for doubled-up nodes.
				if sol.Escaped(v) && len(sol.Explicit(v)) != 0 {
					t.Fatalf("problem %d: externally accessible %d keeps %d explicit pointees under PIP",
						pi, v, len(sol.Explicit(v)))
				}
			}
		}
	}
}
