package core

import (
	"fmt"

	"github.com/pip-analysis/pip/internal/ir"
)

// Gen is the result of analysis phase 1: the Problem plus the mapping from
// IR values back to constraint variables, which alias-analysis clients use
// to look up points-to sets for instruction operands.
type Gen struct {
	Problem *Problem
	// Module is the module the constraints were generated from. The VarOf /
	// MemOf / RetOf keys are this module's values: clients resolving names
	// against a Gen (e.g. after a cache hit returns another instance's Gen)
	// must look them up in this module, not in a structurally equal copy.
	Module *ir.Module
	// VarOf maps pointer-compatible registers, parameters, and symbol
	// addresses to their constraint variable.
	VarOf map[ir.Value]VarID
	// MemOf maps globals, functions, and allocation sites (alloca or
	// heap-allocating call instructions) to their abstract memory
	// location.
	MemOf map[ir.Value]VarID
	// RetOf maps defined functions to their return-value variable.
	RetOf map[*ir.Function]VarID
}

// genState carries phase-1 state.
type genState struct {
	Gen
	m *ir.Module
	// addrRegs caches the dummy address registers for globals/functions
	// used in operand position (Figure 6's "dummy pointer").
	addrRegs map[ir.Value]VarID
	// summaries maps imported-function names to handwritten summaries.
	summaries map[string]Summary
	// sharedHeaps holds the per-function abstract locations for heap
	// memory allocated via indirect or external calls to allocators.
	sharedHeaps map[string]VarID
	tmpCounter  int
}

// Generate converts a module into a points-to Problem, implementing the
// constraint-building rules of Sections II-A and III (escape seeding,
// pointer-integer conversions, pointer smuggling) with the default library
// summaries of Section V-B (malloc, free, memcpy).
func Generate(m *ir.Module) *Gen { return GenerateWith(m, nil) }

// GenerateWith is Generate with additional handwritten summaries for
// imported functions. Entries in extra override the defaults; mapping a
// name to the zero Summary declares "no pointer-relevant behaviour".
func GenerateWith(m *ir.Module, extra map[string]Summary) *Gen {
	summaries := DefaultSummaries()
	for name, s := range extra {
		summaries[name] = s
	}
	g := &genState{
		Gen: Gen{
			Problem: NewProblem(),
			Module:  m,
			VarOf:   map[ir.Value]VarID{},
			MemOf:   map[ir.Value]VarID{},
			RetOf:   map[*ir.Function]VarID{},
		},
		m:           m,
		addrRegs:    map[ir.Value]VarID{},
		summaries:   summaries,
		sharedHeaps: map[string]VarID{},
	}
	g.declareSymbols()
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			g.genFunction(f)
		}
	}
	res := g.Gen
	return &res
}

func (g *genState) declareSymbols() {
	p := g.Problem
	for _, gl := range g.m.Globals {
		v := p.AddVar("@"+gl.GName, Memory, ir.PointerCompatible(gl.Elem))
		g.MemOf[gl] = v
		if gl.Linkage != ir.Internal {
			// Exported and imported globals are externally accessible.
			p.SetFlag(v, FlagExternal)
		}
	}
	for _, f := range g.m.Funcs {
		// Function objects can be pointed to but hold no pointers.
		v := p.AddVar("@"+f.FName, Memory, false)
		g.MemOf[f] = v
		if f.Linkage != ir.Internal {
			p.SetFlag(v, FlagExternal)
		}
		switch {
		case !f.IsDecl():
			g.declareFuncConstraint(f, v)
		default:
			if sum, ok := g.summaries[f.FName]; ok {
				g.declareSummaryConstraint(f, v, sum)
			} else {
				// Generic imported function: Func(f, Ω, ⋯, Ω).
				p.SetFlag(v, FlagImpFunc)
			}
		}
	}
	// Global initializers that take addresses: global @p : ptr = @x, or
	// aggregates such as function-pointer tables (field-insensitive: all
	// symbol elements become pointees of the global).
	for _, gl := range g.m.Globals {
		if gl.Init == nil || !ir.PointerCompatible(gl.Elem) {
			continue
		}
		g.addInitPointees(g.MemOf[gl], gl.Init)
	}
}

// addInitPointees records base constraints for every symbol address inside
// an initializer value.
func (g *genState) addInitPointees(mem VarID, init ir.Value) {
	switch init := init.(type) {
	case *ir.Global:
		g.Problem.AddBase(mem, g.MemOf[init])
	case *ir.Function:
		g.Problem.AddBase(mem, g.MemOf[init])
	case *ir.ConstAggregate:
		for _, e := range init.Elems {
			if e != nil {
				g.addInitPointees(mem, e)
			}
		}
	}
}

// declareFuncConstraint creates parameter/return variables and the
// Func(f, r, a1..an) constraint for a defined function.
func (g *genState) declareFuncConstraint(f *ir.Function, fv VarID) {
	p := g.Problem
	ret := NoVar
	if ir.PointerCompatible(f.Sig.Ret) {
		ret = p.AddVar("@"+f.FName+".$ret", Register, true)
		g.RetOf[f] = ret
	}
	args := make([]VarID, len(f.Params))
	for i, prm := range f.Params {
		if ir.PointerCompatible(prm.T) {
			args[i] = p.AddVar("@"+f.FName+".%"+prm.PName, Register, true)
			g.VarOf[prm] = args[i]
		} else {
			args[i] = NoVar
		}
	}
	p.AddFunc(fv, ret, args)
}

// declareSummaryConstraint installs a Func constraint implementing a
// handwritten summary, used when the function is called indirectly or from
// external modules. Direct calls are expanded inline by genCall with
// per-call-site heap locations.
func (g *genState) declareSummaryConstraint(f *ir.Function, fv VarID, sum Summary) {
	p := g.Problem
	nArgs := len(f.Params)
	if m := sum.maxArgIndex() + 1; m > nArgs {
		nArgs = m
	}
	args := make([]VarID, nArgs)
	for i := range args {
		args[i] = NoVar
	}
	argVar := func(i int) VarID {
		if args[i] == NoVar {
			args[i] = p.AddVar(fmt.Sprintf("@%s.$arg%d", f.FName, i), Register, true)
		}
		return args[i]
	}
	ret := NoVar
	if sum.hasRet() {
		ret = p.AddVar("@"+f.FName+".$ret", Register, true)
	}
	if sum.RetFreshHeap {
		p.AddBase(ret, g.sharedHeapFor(f.FName))
	}
	if sum.RetUnknown {
		p.SetFlag(ret, FlagPointsExt)
	}
	for _, i := range sum.RetAliasesArgs {
		p.AddSimple(ret, argVar(i))
	}
	for _, c := range sum.Copies {
		tmp := p.AddVar(fmt.Sprintf("@%s.$cpy%d_%d", f.FName, c[0], c[1]), Register, true)
		p.AddLoad(tmp, argVar(c[1]))
		p.AddStore(argVar(c[0]), tmp)
	}
	for _, i := range sum.EscapeArgs {
		p.SetFlag(argVar(i), FlagEscapedPointees)
	}
	for _, i := range sum.UnknownIntoArgs {
		p.SetFlag(argVar(i), FlagStoreScalar)
	}
	p.AddFunc(fv, ret, args)
}

// sharedHeapFor returns the per-allocator abstract location representing
// heap memory from indirect or external calls to the named function.
func (g *genState) sharedHeapFor(name string) VarID {
	if v, ok := g.sharedHeaps[name]; ok {
		return v
	}
	v := g.Problem.AddVar("heap.$"+name, Memory, true)
	g.sharedHeaps[name] = v
	return v
}

// addrOf returns the dummy address register for a symbol operand.
func (g *genState) addrOf(sym ir.Value, mem VarID) VarID {
	if v, ok := g.addrRegs[sym]; ok {
		return v
	}
	v := g.Problem.AddVar("&"+sym.Ident(), Register, true)
	g.Problem.AddBase(v, mem)
	g.addrRegs[sym] = v
	g.VarOf[sym] = v
	return v
}

// operand resolves an instruction operand to a constraint variable.
// The second result is false for operands with no points-to relevance
// (scalar constants, null, undef, and pointer-incompatible registers).
func (g *genState) operand(v ir.Value) (VarID, bool) {
	switch v := v.(type) {
	case *ir.Global:
		return g.addrOf(v, g.MemOf[v]), true
	case *ir.Function:
		return g.addrOf(v, g.MemOf[v]), true
	case *ir.Param, *ir.Instr:
		id, ok := g.VarOf[v]
		return id, ok
	default:
		return NoVar, false
	}
}

// genFunction emits constraints for a function body. Pass 1 creates result
// variables (phis may reference later instructions); pass 2 emits the
// constraints.
func (g *genState) genFunction(f *ir.Function) {
	p := g.Problem
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !in.Op.HasResult() || !ir.PointerCompatible(in.Type()) {
				continue
			}
			name := fmt.Sprintf("@%s.%%%s", f.FName, in.IName)
			g.VarOf[in] = p.AddVar(name, Register, true)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			g.genInstr(f, in)
		}
	}
}

func (g *genState) genInstr(f *ir.Function, in *ir.Instr) {
	p := g.Problem
	res, hasRes := g.VarOf[in]
	switch in.Op {
	case ir.OpAlloca:
		mem := p.AddVar(fmt.Sprintf("@%s.%%%s.mem", f.FName, in.IName), Memory,
			ir.PointerCompatible(in.Ty))
		g.MemOf[in] = mem
		p.AddBase(res, mem)

	case ir.OpLoad:
		ptr, ok := g.operand(in.Args[0])
		if !ok {
			// Loading through null/undef traps; no constraint.
			return
		}
		if hasRes {
			p.AddLoad(res, ptr)
		} else if p.PtrCompat[ptr] {
			// Scalar load: Ω ⊒ *ptr (pointer smuggling, Section III-C).
			p.SetFlag(ptr, FlagLoadScalar)
		}

	case ir.OpStore:
		ptr, ptrOK := g.operand(in.Args[1])
		if !ptrOK {
			return
		}
		val, valOK := g.operand(in.Args[0])
		switch {
		case valOK:
			p.AddStore(ptr, val)
		case ir.PointerCompatible(in.Args[0].Type()):
			// Storing null/undef pointers introduces no pointees.
		default:
			// Scalar store: *ptr ⊒ Ω (pointer smuggling).
			if p.PtrCompat[ptr] {
				p.SetFlag(ptr, FlagStoreScalar)
			}
		}

	case ir.OpGEP, ir.OpBitcast:
		src, ok := g.operand(in.Args[0])
		switch {
		case hasRes && ok:
			p.AddSimple(res, src)
		case hasRes && !ir.PointerCompatible(in.Args[0].Type()):
			// Reinterpreting a scalar as a pointer: unknown origin.
			p.SetFlag(res, FlagPointsExt)
		case !hasRes && ok:
			// Pointer reinterpreted as a scalar: pointees escape.
			p.SetFlag(src, FlagEscapedPointees)
		}

	case ir.OpPtrToInt:
		if src, ok := g.operand(in.Args[0]); ok {
			// Casting to an integer exposes every pointee: Ω ⊒ p.
			p.SetFlag(src, FlagEscapedPointees)
		}

	case ir.OpIntToPtr:
		// The result may target any externally accessible location: p ⊒ Ω.
		if hasRes {
			p.SetFlag(res, FlagPointsExt)
		}

	case ir.OpPhi, ir.OpSelect:
		if !hasRes {
			return
		}
		args := in.Args
		if in.Op == ir.OpSelect {
			args = in.Args[1:] // skip the condition
		}
		for _, a := range args {
			if src, ok := g.operand(a); ok {
				p.AddSimple(res, src)
			} else if !ir.PointerCompatible(a.Type()) {
				// Merging a scalar into a pointer value.
				p.SetFlag(res, FlagPointsExt)
			}
		}

	case ir.OpCall:
		g.genCall(f, in)

	case ir.OpRet:
		if len(in.Args) == 0 {
			return
		}
		ret, okRet := g.RetOf[f]
		src, okSrc := g.operand(in.Args[0])
		switch {
		case okRet && okSrc:
			p.AddSimple(ret, src)
		case !okRet && okSrc:
			// Returning a pointer from a function whose return type is
			// not pointer compatible (type punning through the return
			// value): the pointees escape.
			p.SetFlag(src, FlagEscapedPointees)
		case okRet && !okSrc && !ir.PointerCompatible(in.Args[0].Type()):
			p.SetFlag(ret, FlagPointsExt)
		}

	case ir.OpMemcpy:
		dst, dstOK := g.operand(in.Args[0])
		src, srcOK := g.operand(in.Args[1])
		if !dstOK || !srcOK {
			return
		}
		g.tmpCounter++
		tmp := p.AddVar(fmt.Sprintf("@%s.$cpy%d", f.FName, g.tmpCounter), Register, true)
		p.AddLoad(tmp, src)
		p.AddStore(dst, tmp)

	case ir.OpBin, ir.OpICmp:
		// Scalar computation. Pointer operands fed into arithmetic other
		// than gep expose their pointees (equivalent to ptrtoint).
		if in.Op == ir.OpBin {
			for _, a := range in.Args {
				if src, ok := g.operand(a); ok {
					p.SetFlag(src, FlagEscapedPointees)
				}
			}
			if hasRes {
				p.SetFlag(res, FlagPointsExt)
			}
		}

	case ir.OpBr, ir.OpCondBr, ir.OpUnreachable:
		// Control flow is invisible to a flow-insensitive analysis.
	}
}

// genCall emits constraints for a call instruction: inline summaries for
// direct calls to the special-cased library functions, and Call(t, r, a…)
// constraints otherwise (direct calls go through a dummy address register,
// Figure 6).
func (g *genState) genCall(f *ir.Function, in *ir.Instr) {
	p := g.Problem
	res, hasRes := g.VarOf[in]
	callee := in.Callee()
	if cf, ok := callee.(*ir.Function); ok && cf.IsDecl() {
		if sum, hasSum := g.summaries[cf.FName]; hasSum {
			g.genSummaryCall(f, in, res, hasRes, sum)
			return
		}
	}

	target, ok := g.operand(callee)
	if !ok {
		return // call through null/undef traps
	}
	ret := NoVar
	if hasRes {
		ret = res
	}
	args := make([]VarID, len(in.CallArgs()))
	for i, a := range in.CallArgs() {
		if av, ok := g.operand(a); ok {
			args[i] = av
		} else {
			args[i] = NoVar
		}
	}
	p.AddCall(target, ret, args)
}

// genSummaryCall expands a direct call to a summarized library function
// inline, with a distinct abstract heap location per allocation site
// (heap objects are "named after their allocation site", Section II-A).
func (g *genState) genSummaryCall(f *ir.Function, in *ir.Instr, res VarID, hasRes bool, sum Summary) {
	p := g.Problem
	actual := func(i int) (VarID, bool) {
		args := in.CallArgs()
		if i >= len(args) {
			return NoVar, false
		}
		return g.operand(args[i])
	}
	if hasRes {
		if sum.RetFreshHeap {
			site := p.AddVar(fmt.Sprintf("heap.@%s.%%%s", f.FName, in.IName), Memory, true)
			g.MemOf[in] = site
			p.AddBase(res, site)
		}
		if sum.RetUnknown {
			p.SetFlag(res, FlagPointsExt)
		}
		for _, i := range sum.RetAliasesArgs {
			if av, ok := actual(i); ok {
				p.AddSimple(res, av)
			}
		}
	}
	for _, c := range sum.Copies {
		dst, dstOK := actual(c[0])
		src, srcOK := actual(c[1])
		if dstOK && srcOK {
			g.tmpCounter++
			tmp := p.AddVar(fmt.Sprintf("@%s.$cpy%d", f.FName, g.tmpCounter), Register, true)
			p.AddLoad(tmp, src)
			p.AddStore(dst, tmp)
		}
	}
	for _, i := range sum.EscapeArgs {
		if av, ok := actual(i); ok {
			p.SetFlag(av, FlagEscapedPointees)
		}
	}
	for _, i := range sum.UnknownIntoArgs {
		if av, ok := actual(i); ok {
			p.SetFlag(av, FlagStoreScalar)
		}
	}
}
