package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
)

// This file implements stratified presaturation, the intra-solve
// parallelism layer selected by Config.SolveWorkers. The simple-edge graph
// is condensed into strongly connected components (read-only Tarjan over a
// scratch union-find, never the solver's real forest: workers must not
// path-compress shared state), the components are layered into topological
// strata (every simple-edge predecessor of a component sits in a strictly
// earlier stratum), and the TRANS closure — explicit pointees plus the
// p ⊒ Ω flag — is then propagated stratum by stratum. Components within
// one stratum are data-independent, so a bounded worker pool processes
// them concurrently with whole-word batched set unions; each component's
// result is a pure join (union) of frozen earlier-stratum results, which
// makes the outcome independent of the worker count by construction. The
// differential harness (internal/core/differential) gates exactly this
// property: bit-identical Solutions for every SolveWorkers ≥ 1.
//
// All order-sensitive work — unification, PIP rules 1–4, complex
// constraints, cycle detection — stays on the sequential visit path.
// Presaturation only fast-forwards the schedule-independent saturation
// that the sequential path would reach anyway, and marks the nodes it
// saturated (solver.satVisit) so their visits skip the now-redundant
// per-edge TRANS propagation.

// presatMinVars is the problem size below which presaturation is skipped
// and the solve falls back to the plain sequential path: stratification
// has a fixed per-solve cost that tiny graphs cannot amortize. The
// threshold depends only on the problem (never on the worker count), so
// the fallback decision — and therefore the solution — is identical for
// every SolveWorkers ≥ 1. Variable so the differential harness and fuzz
// targets can force the stratified path onto small generated problems.
var presatMinVars = 64

// presatMinCompsPerLevel is the number of components a stratum needs
// before its work is sharded across goroutines; thinner strata are
// processed inline (goroutine dispatch would cost more than the unions).
const presatMinCompsPerLevel = 8

// stratumPlan is the SCC condensation of the current simple-edge graph,
// layered into topological strata. It is built sequentially and read-only
// during the parallel phase.
type stratumPlan struct {
	// comps[c] lists the component's member representatives in ascending
	// order; the first member is the component's leader.
	comps [][]VarID
	// preds[c] lists the components with a simple edge into c.
	preds [][]int32
	// levels[l] lists the components of stratum l; every predecessor of a
	// level-l component sits in a level < l.
	levels [][]int32
}

// strataShard is one worker's private telemetry accumulator. Workers
// never touch the solver's counters directly — the shards are merged by
// the coordinating goroutine at the end of the pass, which keeps the
// counters race-clean and their totals deterministic (per-component
// contributions are fixed, and integer addition commutes). The padding
// keeps adjacent shards on separate cache lines.
type strataShard struct {
	adds     int64
	flags    int64
	progress bool
	_        [5]int64
}

// presaturate runs one stratified presaturation pass over the current
// constraint graph. It is a no-op on the sequential path, for problems
// below the size threshold, and after a budget abort.
func (s *solver) presaturate() {
	if s.cfg.SolveWorkers <= 0 || s.aborted || s.n < presatMinVars {
		return
	}
	// Chaos hook: an injected error latches the abort flag so the solve
	// degrades to the sound Ω top element, exactly like an exhausted
	// budget; injected panics propagate to the engine's per-job recovery.
	if err := faults.Inject(faults.CoreStrata); err != nil {
		s.aborted = true
		s.tk.Event("fault_injected", obs.S("point", string(faults.CoreStrata)))
		return
	}
	t0 := time.Now()
	sp := s.tk.Begin("presaturate", obs.N("workers", int64(s.cfg.SolveWorkers)))
	plan := s.buildStrata()
	if plan == nil {
		sp.End(obs.N("strata", 0))
		s.tel.Presaturate += time.Since(t0)
		return
	}
	if len(plan.levels) > s.tel.Strata {
		s.tel.Strata = len(plan.levels)
	}
	workers := s.cfg.SolveWorkers
	var lanes []obs.Track
	if tr := s.tk.Trace(); tr != nil && workers > 1 {
		// One trace lane per stratum worker so a trace shows the
		// per-worker occupancy of each stratum barrier.
		lanes = make([]obs.Track, workers)
		for i := range lanes {
			lanes[i] = tr.NewTrack(fmt.Sprintf("stratum-w%d", i))
		}
	}
	shards := make([]strataShard, workers)
	completed := true
	for li, lvl := range plan.levels {
		// The pass's rule firings are derived from the plan alone —
		// predecessor merges plus member fold and write-back unions — so
		// budget accounting is identical for every worker count, and the
		// budget is checked only at stratum boundaries so an abort always
		// lands on a deterministic level edge.
		var levelFirings int64
		for _, c := range lvl {
			levelFirings += int64(len(plan.preds[c])) + 2*int64(len(plan.comps[c])-1)
		}
		if workers > 1 && len(lvl) >= presatMinCompsPerLevel {
			chunk := (len(lvl) + workers - 1) / workers
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo := w * chunk
				if lo >= len(lvl) {
					break
				}
				hi := lo + chunk
				if hi > len(lvl) {
					hi = len(lvl)
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					if lanes != nil {
						lsp := lanes[w].Begin("stratum",
							obs.N("level", int64(li)), obs.N("comps", int64(hi-lo)))
						defer lsp.End()
					}
					for _, c := range lvl[lo:hi] {
						s.processComp(plan, c, &shards[w])
					}
				}(w, lo, hi)
			}
			wg.Wait()
		} else {
			for _, c := range lvl {
				s.processComp(plan, c, &shards[0])
			}
		}
		s.tel.Firings.Trans += levelFirings
		s.fired += levelFirings
		if s.budgetExhausted() {
			completed = false
			break
		}
	}
	for i := range shards {
		s.pointeeAdds += shards[i].adds
		s.flagMarks += shards[i].flags
		if shards[i].progress {
			s.noteProgress()
		}
	}
	if completed {
		// Every stratum ran: each node's successors now hold its full
		// closure, so its visits can skip per-edge TRANS propagation
		// until the node itself changes again.
		for _, comp := range plan.comps {
			for _, m := range comp {
				s.satVisit[m] = true
			}
		}
	}
	sp.End(obs.N("strata", int64(len(plan.levels))), obs.N("comps", int64(len(plan.comps))))
	s.tel.Presaturate += time.Since(t0)
}

// processComp computes one component's TRANS closure: fold the members'
// explicit sets and the p ⊒ Ω flag into the leader, join every
// predecessor component's (already final) closure, and write the result
// back to all members. Components in one stratum write disjoint state and
// read only frozen earlier strata, so this is safe to run concurrently
// for all components of a level.
func (s *solver) processComp(plan *stratumPlan, c int32, sh *strataShard) {
	members := plan.comps[c]
	leader := members[0]
	var flag Flags
	for _, m := range members {
		flag |= s.repFlags[m] & FlagPointsExt
	}
	// Every mutation goes through ptsOf: it creates missing sets and
	// clones copy-on-write state restored from a checkpoint. Ownership
	// writes stay inside this component's variables, so the stratum-level
	// concurrency contract is unchanged.
	lp := s.pts[leader]
	adds := 0
	for _, m := range members[1:] {
		if mp := s.pts[m]; mp != nil && mp.Len() > 0 {
			lp = s.ptsOf(leader)
			adds += lp.UnionWithDelta(mp, nil)
		}
	}
	for _, pc := range plan.preds[c] {
		pl := plan.comps[pc][0]
		flag |= s.repFlags[pl] & FlagPointsExt
		if pp := s.pts[pl]; pp != nil && pp.Len() > 0 {
			lp = s.ptsOf(leader)
			adds += lp.UnionWithDelta(pp, nil)
		}
	}
	if lp != nil && lp.Len() > 0 {
		for _, m := range members[1:] {
			adds += s.ptsOf(m).UnionWithDelta(lp, nil)
		}
	}
	if adds > 0 {
		sh.adds += int64(adds)
		sh.progress = true
	}
	if flag != 0 {
		for _, m := range members {
			if s.repFlags[m]&FlagPointsExt == 0 {
				s.repFlags[m] |= FlagPointsExt
				s.fullVisit[m] = true
				sh.flags++
				sh.progress = true
			}
		}
	}
	// Difference sets are deliberately left untouched: presaturation runs
	// either before the worklist's initial full visits (which clear them)
	// or under solvers that never use them (wave/naive reject DP).
}

// buildStrata snapshots the simple-edge graph over current
// representatives into CSR form, runs an iterative Tarjan SCC pass,
// groups members through the arena's scratch union-find, and layers the
// condensation into topological strata via longest-path levels. Returns
// nil when the graph has no simple edges. Entirely sequential and
// deterministic: component ids follow Tarjan's emission order, which is a
// reverse topological order of the condensation.
func (s *solver) buildStrata() *stratumPlan {
	n := s.n
	ar := s.ar
	ar.csrOff = growZero(ar.csrOff, n+1)
	deg := ar.csrOff[1:] // deg[v] counts v's outgoing edges; shifted for the prefix sum
	edges := 0
	for v := 0; v < n; v++ {
		r := VarID(v)
		if s.find(r) != r || s.succ[r] == nil {
			continue
		}
		s.succ[r].ForEach(func(q uint32) {
			if w := s.find(VarID(q)); w != r {
				deg[v]++
				edges++
			}
		})
	}
	if edges == 0 {
		return nil
	}
	for i := 1; i <= n; i++ {
		ar.csrOff[i] += ar.csrOff[i-1]
	}
	if cap(ar.csrDst) < edges {
		ar.csrDst = make([]VarID, edges)
	}
	ar.csrDst = ar.csrDst[:edges]
	ar.csrNext = growZero(ar.csrNext, n)
	for v := 0; v < n; v++ {
		r := VarID(v)
		if s.find(r) != r || s.succ[r] == nil {
			continue
		}
		s.succ[r].ForEach(func(q uint32) {
			if w := s.find(VarID(q)); w != r {
				ar.csrDst[ar.csrOff[v]+ar.csrNext[v]] = w
				ar.csrNext[v]++
			}
		})
	}
	// A node joins the condensation when it touches at least one edge.
	ar.actMark = growZero(ar.actMark, n)
	active := ar.actMark
	for v := 0; v < n; v++ {
		if ar.csrNext[v] > 0 {
			active[v] = true
		}
	}
	for _, w := range ar.csrDst {
		active[w] = true
	}

	// Iterative Tarjan over the active representatives, ascending id
	// order for determinism. Frames carry only a CSR edge cursor.
	ar.tjIndex = growZero(ar.tjIndex, n)
	ar.tjLow = growZero(ar.tjLow, n)
	idx, low := ar.tjIndex, ar.tjLow
	for i := range idx {
		idx[i] = -1
	}
	ar.tjOn = growZero(ar.tjOn, n)
	onStack := ar.tjOn
	stack := ar.tjStack[:0]
	forest := ar.strataForest(n)
	var comps [][]VarID
	next := int32(0)
	type frame struct {
		v VarID
		i int32
	}
	var frames []frame
	for v0 := 0; v0 < n; v0++ {
		if !active[v0] || idx[v0] >= 0 {
			continue
		}
		frames = append(frames[:0], frame{v: VarID(v0)})
		idx[v0], low[v0] = next, next
		next++
		stack = append(stack, VarID(v0))
		onStack[v0] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.i < ar.csrNext[f.v] {
				w := ar.csrDst[ar.csrOff[f.v]+f.i]
				f.i++
				if idx[w] < 0 {
					idx[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && low[w] < low[f.v] {
					low[f.v] = low[w]
				}
			}
			if advanced {
				continue
			}
			if low[f.v] == idx[f.v] {
				var comp []VarID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				// Ascending members; the minimum is the leader. The
				// scratch forest records the grouping so edge targets
				// resolve to their component through one Find.
				sortVarIDs(comp)
				for _, m := range comp[1:] {
					forest.UnionInto(uint32(comp[0]), uint32(m))
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	ar.tjStack = stack[:0]

	// Condensed edges: compOf maps a component leader to its id.
	ar.compOf = growZero(ar.compOf, n)
	compOf := ar.compOf
	for ci, comp := range comps {
		compOf[comp[0]] = int32(ci)
	}
	preds := make([][]int32, len(comps))
	for ci, comp := range comps {
		c := int32(ci)
		for _, m := range comp {
			off, cnt := ar.csrOff[m], ar.csrNext[m]
			for _, w := range ar.csrDst[off : off+cnt] {
				cw := compOf[forest.Find(uint32(w))]
				if cw == c {
					continue
				}
				// Edges of one component are scanned consecutively, so
				// checking the last entry dedupes this source component.
				if l := len(preds[cw]); l > 0 && preds[cw][l-1] == c {
					continue
				}
				preds[cw] = append(preds[cw], c)
			}
		}
	}

	// Longest-path layering over the reverse emission order (Tarjan emits
	// successors first, so the reverse is topological: predecessors have
	// already been assigned their level).
	level := make([]int32, len(comps))
	depth := int32(0)
	for c := len(comps) - 1; c >= 0; c-- {
		var l int32
		for _, p := range preds[c] {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[c] = l
		if l+1 > depth {
			depth = l + 1
		}
	}
	levels := make([][]int32, depth)
	for c := len(comps) - 1; c >= 0; c-- {
		levels[level[c]] = append(levels[level[c]], int32(c))
	}
	return &stratumPlan{comps: comps, preds: preds, levels: levels}
}

// sortVarIDs sorts a small component member list ascending (insertion
// sort: components are overwhelmingly tiny).
func sortVarIDs(v []VarID) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}
