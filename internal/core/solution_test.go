package core

import (
	"strings"
	"testing"
)

// Direct tests of Solution accessors, including EP/IP parity.

func solvePair(t *testing.T, prob *Problem) (*Solution, *Solution) {
	t.Helper()
	ep := MustSolve(prob, MustParseConfig("EP+WL(FIFO)"))
	ip := MustSolve(prob, MustParseConfig("IP+WL(FIFO)+PIP"))
	return ep, ip
}

func TestSolutionParityEPvsIP(t *testing.T) {
	prob, ids := buildFigure1(t)
	ep, ip := solvePair(t, prob)
	for name, v := range ids {
		if !prob.PtrCompat[v] {
			// Escape parity holds for every variable.
			if ep.Escaped(v) != ip.Escaped(v) {
				t.Fatalf("%s: Escaped differs EP=%v IP=%v", name, ep.Escaped(v), ip.Escaped(v))
			}
			continue
		}
		if ep.PointsToExternal(v) != ip.PointsToExternal(v) {
			t.Fatalf("%s: PointsToExternal differs", name)
		}
		epSet := ep.PointsTo(v)
		ipSet := ip.PointsTo(v)
		if len(epSet) != len(ipSet) {
			t.Fatalf("%s: PointsTo differs: %v vs %v", name, epSet, ipSet)
		}
		for i := range epSet {
			if epSet[i] != ipSet[i] {
				t.Fatalf("%s: PointsTo differs at %d: %v vs %v", name, i, epSet, ipSet)
			}
		}
	}
	// External sets identical.
	e1, e2 := ep.ExternalSet(), ip.ExternalSet()
	if len(e1) != len(e2) {
		t.Fatalf("ExternalSet differs: %v vs %v", e1, e2)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("ExternalSet differs: %v vs %v", e1, e2)
		}
	}
}

func TestMayShareTargetsParity(t *testing.T) {
	for seed := int64(900); seed < 905; seed++ {
		prob := randomProblem(seed, 30, 70)
		ep, ip := solvePair(t, prob)
		for a := VarID(0); a < VarID(prob.NumVars()); a++ {
			if !prob.PtrCompat[a] {
				continue
			}
			for b := a; b < VarID(prob.NumVars()); b++ {
				if !prob.PtrCompat[b] {
					continue
				}
				if ep.MayShareTargets(a, b) != ip.MayShareTargets(a, b) {
					t.Fatalf("seed %d: MayShareTargets(%d,%d) differs: EP=%v IP=%v",
						seed, a, b, ep.MayShareTargets(a, b), ip.MayShareTargets(a, b))
				}
				// Symmetry.
				if ip.MayShareTargets(a, b) != ip.MayShareTargets(b, a) {
					t.Fatalf("seed %d: MayShareTargets not symmetric", seed)
				}
			}
		}
	}
}

func TestMayShareTargetsConsistentWithPointsTo(t *testing.T) {
	for seed := int64(910); seed < 914; seed++ {
		prob := randomProblem(seed, 25, 60)
		sol := MustSolve(prob, DefaultConfig())
		for a := VarID(0); a < VarID(prob.NumVars()); a++ {
			if !prob.PtrCompat[a] {
				continue
			}
			sa := map[VarID]bool{}
			for _, x := range sol.PointsTo(a) {
				sa[x] = true
			}
			for b := VarID(0); b < VarID(prob.NumVars()); b++ {
				if !prob.PtrCompat[b] {
					continue
				}
				shared := false
				for _, x := range sol.PointsTo(b) {
					if sa[x] {
						shared = true
						break
					}
				}
				if got := sol.MayShareTargets(a, b); got != shared {
					t.Fatalf("seed %d: MayShareTargets(%d,%d)=%v but PointsTo intersection=%v\nA=%v\nB=%v",
						seed, a, b, got, shared, sol.PointsTo(a), sol.PointsTo(b))
				}
			}
		}
	}
}

func TestApproxBytesMonotonicInPointees(t *testing.T) {
	prob := escapeHeavyProblem(30)
	noPip := MustSolve(prob, MustParseConfig("IP+WL(FIFO)"))
	pip := MustSolve(prob, MustParseConfig("IP+WL(FIFO)+PIP"))
	if pip.ApproxBytes() > noPip.ApproxBytes() {
		t.Fatalf("PIP should not use more set memory: %d vs %d",
			pip.ApproxBytes(), noPip.ApproxBytes())
	}
	if noPip.ApproxBytes() == 0 {
		t.Fatal("zero memory estimate")
	}
}

func TestDumpNamesAndMarkers(t *testing.T) {
	prob, _ := buildFigure1(t)
	sol := MustSolve(prob, DefaultConfig())
	dump := sol.Dump()
	if !strings.Contains(dump, "<external>") {
		t.Fatalf("dump missing external marker:\n%s", dump)
	}
	if !strings.Contains(dump, "p ->") {
		t.Fatalf("dump missing named variable:\n%s", dump)
	}
}
