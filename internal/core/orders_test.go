package core

import "testing"

// Worklist-order unit tests: each policy must dedupe pushes, drain
// completely, and (for the solver) reach the same fixed point.

func drain(w worklist) []VarID {
	var out []VarID
	for {
		n, ok := w.pop()
		if !ok {
			return out
		}
		out = append(out, n)
	}
}

func newTestSolver(n int) *solver {
	p := NewProblem()
	for i := 0; i < n; i++ {
		p.AddVar("", Register, true)
	}
	return newSolver(p, Config{Rep: IP, Solver: Worklist}, NewArena())
}

func TestFIFOOrder(t *testing.T) {
	s := newTestSolver(8)
	w := newWorklist(FIFO, s)
	for _, v := range []VarID{3, 1, 4, 1, 5} { // duplicate 1
		w.push(v)
	}
	got := drain(w)
	want := []VarID{3, 1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("FIFO drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FIFO order %v, want %v", got, want)
		}
	}
}

func TestLIFOOrder(t *testing.T) {
	s := newTestSolver(8)
	w := newWorklist(LIFO, s)
	for _, v := range []VarID{1, 2, 3} {
		w.push(v)
	}
	got := drain(w)
	want := []VarID{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LIFO order %v, want %v", got, want)
		}
	}
}

func TestLRFPrefersLeastRecentlyFired(t *testing.T) {
	s := newTestSolver(8)
	w := newWorklist(LRF, s)
	w.push(1)
	w.push(2)
	// Pop both: 1 and 2 now have fire times 1 and 2.
	if n, _ := w.pop(); n != 1 && n != 2 {
		t.Fatal("unexpected pop")
	}
	first, _ := w.pop()
	_ = first
	// Re-push both plus a never-fired node: the never-fired node (fire
	// time 0) must come out first.
	w.push(2)
	w.push(5)
	w.push(1)
	if n, _ := w.pop(); n != 5 {
		t.Fatalf("LRF popped %d first, want the never-fired 5", n)
	}
}

func TestTwoPhaseDrainsEverything(t *testing.T) {
	s := newTestSolver(16)
	w := newWorklist(LRF2, s)
	for v := VarID(0); v < 10; v++ {
		w.push(v)
	}
	seen := map[VarID]bool{}
	// Push more nodes while draining (they go to the next phase).
	for i := 0; i < 3; i++ {
		n, ok := w.pop()
		if !ok {
			t.Fatal("drained early")
		}
		seen[n] = true
	}
	w.push(12)
	w.push(13)
	for {
		n, ok := w.pop()
		if !ok {
			break
		}
		seen[n] = true
	}
	if len(seen) != 12 {
		t.Fatalf("2LRF drained %d unique nodes, want 12", len(seen))
	}
}

func TestTopoRespectsSimpleEdges(t *testing.T) {
	// Graph: 0 → 1 → 2. A topological sweep visits sources first.
	s := newTestSolver(4)
	s.succOf(0).Add(1)
	s.succOf(1).Add(2)
	w := newWorklist(Topo, s)
	for _, v := range []VarID{2, 0, 1} {
		w.push(v)
	}
	got := drain(w)
	pos := map[VarID]int{}
	for i, v := range got {
		pos[v] = i
	}
	if pos[0] > pos[1] || pos[1] > pos[2] {
		t.Fatalf("topo order violated: %v", got)
	}
}

func TestTopoSurvivesUnification(t *testing.T) {
	// A pending node merged away must not wedge the sweep.
	s := newTestSolver(6)
	w := newWorklist(Topo, s)
	w.push(2)
	w.push(3)
	s.wl = w
	s.unify(2, 3)
	count := 0
	for {
		_, ok := w.pop()
		if !ok {
			break
		}
		count++
		if count > 10 {
			t.Fatal("topo worklist did not terminate")
		}
	}
	if count == 0 {
		t.Fatal("nothing drained")
	}
}

// All orders must solve a stress problem to the same fixed point.
func TestAllOrdersSameFixedPoint(t *testing.T) {
	prob := randomProblem(777, 150, 400)
	want := ReferenceSolve(prob)
	for _, o := range []string{"FIFO", "LIFO", "LRF", "2LRF", "TOPO"} {
		for _, rep := range []string{"IP", "EP"} {
			cfg := MustParseConfig(rep + "+WL(" + o + ")")
			sol := MustSolve(prob, cfg)
			if sol.Canonical() != want {
				t.Fatalf("%s diverged from reference", cfg)
			}
		}
	}
}
