package core

import "testing"

func TestWaveMatchesReference(t *testing.T) {
	problems := []*Problem{escapeHeavyProblem(25)}
	if fp, _ := buildFigure1(t); fp != nil {
		problems = append(problems, fp)
	}
	if fp, _ := buildFigure3(t); fp != nil {
		problems = append(problems, fp)
	}
	for seed := int64(400); seed < 410; seed++ {
		problems = append(problems, randomProblem(seed, 60, 150))
	}
	for pi, prob := range problems {
		want := ReferenceSolve(prob)
		for _, name := range []string{"IP+Wave", "EP+Wave", "IP+Wave+PIP", "IP+OVS+Wave"} {
			sol, err := Solve(prob, MustParseConfig(name))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if sol.Canonical() != want {
				t.Fatalf("problem %d: %s diverged from reference", pi, name)
			}
			if sol.Stats.Passes == 0 {
				t.Fatalf("%s: no waves counted", name)
			}
		}
	}
}

func TestWaveValidation(t *testing.T) {
	for _, bad := range []string{"IP+Wave+OCD", "IP+Wave+LCD", "IP+Wave+DP", "IP+Wave+HCD"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Fatalf("%s should be invalid", bad)
		}
	}
	cfg := MustParseConfig("IP+Wave+PIP")
	if cfg.Solver != Wave || !cfg.PIP {
		t.Fatalf("parsed %+v", cfg)
	}
	if cfg.String() != "IP+Wave+PIP" {
		t.Fatalf("String = %q", cfg.String())
	}
}

func TestWaveCollapsesCycles(t *testing.T) {
	// Wave must unify the offline copy cycle in its first wave.
	p := NewProblem()
	loc := p.AddVar("loc", Memory, true)
	a := p.AddVar("a", Register, true)
	b := p.AddVar("b", Register, true)
	c := p.AddVar("c", Register, true)
	p.AddBase(a, loc)
	p.AddSimple(b, a)
	p.AddSimple(c, b)
	p.AddSimple(a, c)
	sol := MustSolve(p, MustParseConfig("IP+Wave"))
	if sol.Stats.Unifications == 0 {
		t.Fatal("wave did not collapse the cycle")
	}
	if sol.Canonical() != ReferenceSolve(p) {
		t.Fatal("wave changed the solution")
	}
}
