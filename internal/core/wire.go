package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/pip-analysis/pip/internal/bitset"
)

// This file is the canonical wire encoding for Solution, the unit the
// persistent store (internal/store) appends to disk. The format is
// deterministic — two solutions with equal fingerprints encode to equal
// bytes — and self-describing enough that a decode against the wrong
// problem fails loudly instead of producing a plausible-but-wrong
// solution: the variable universe size is embedded and checked, and every
// slice read is bounds-checked so a truncated or bit-flipped record comes
// back as an error, never a panic.
//
// Layout (all integers little-endian):
//
//	magic   "PSW1" (4 bytes)
//	nVars   u32    problem variable count (checked against the Problem)
//	n       u32    internal table length: nVars, or nVars+1 in EP mode
//	omega   u32    materialized Ω VarID (NoVar outside EP mode)
//	flags   u8     bit 0: Degraded
//	repOf   n × u32
//	pointsExt ⌈n/8⌉ bytes, bit-packed
//	external  ⌈n/8⌉ bytes, bit-packed
//	nSets   u32    number of non-nil points-to sets
//	sets    nSets × { idx u32, len u32, elems len × u32 ascending }, idx ascending
//	stats   6 × i64 (duration ns, explicit pointees, visits, passes,
//	               unifications, simple edges)

const wireMagic = "PSW1"

// EncodeWire renders the solution in the canonical wire format.
func (s *Solution) EncodeWire() []byte {
	n := len(s.repOf)
	buf := make([]byte, 0, 4+4+4+4+1+4*n+2*((n+7)/8)+4)
	buf = append(buf, wireMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.p.NumVars()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.omega))
	var flags byte
	if s.Degraded {
		flags |= 1
	}
	buf = append(buf, flags)
	for _, r := range s.repOf {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	buf = appendBits(buf, s.pointsExt)
	buf = appendBits(buf, s.external)
	nSets := 0
	for _, set := range s.pts {
		if set != nil {
			nSets++
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nSets))
	for i, set := range s.pts {
		if set == nil {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(set.Len()))
		set.ForEach(func(x uint32) {
			buf = binary.LittleEndian.AppendUint32(buf, x)
		})
	}
	for _, v := range []int64{
		int64(s.Stats.Duration),
		int64(s.Stats.ExplicitPointees),
		int64(s.Stats.Visits),
		int64(s.Stats.Passes),
		int64(s.Stats.Unifications),
		int64(s.Stats.SimpleEdges),
	} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// DecodeSolution rebuilds a Solution from its wire encoding, binding it to
// p. The encoding must have been produced from a solve of a
// constraint-identical problem: the embedded variable count is checked,
// and every structural invariant (table lengths, Ω consistency,
// representative and pointee ranges) is validated so corruption surfaces
// as an error.
func DecodeSolution(p *Problem, data []byte) (*Solution, error) {
	d := &wireReader{data: data}
	magic := d.bytes(4)
	if d.err != nil || string(magic) != wireMagic {
		return nil, fmt.Errorf("core: solution wire: bad magic")
	}
	nVars := d.u32()
	n := d.u32()
	omega := VarID(d.u32())
	flags := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	if int(nVars) != p.NumVars() {
		return nil, fmt.Errorf("core: solution wire: encoded for %d vars, problem has %d", nVars, p.NumVars())
	}
	switch {
	case n == nVars:
		if omega != NoVar {
			return nil, fmt.Errorf("core: solution wire: Ω=%d with no Ω slot", omega)
		}
	case n == nVars+1:
		if omega != VarID(nVars) {
			return nil, fmt.Errorf("core: solution wire: Ω slot present but Ω=%d, want %d", omega, nVars)
		}
	default:
		return nil, fmt.Errorf("core: solution wire: table length %d for %d vars", n, nVars)
	}
	// Guard against absurd lengths before allocating (a flipped length
	// byte must not become a multi-gigabyte make).
	if int(n) > len(data) {
		return nil, fmt.Errorf("core: solution wire: table length %d exceeds record size", n)
	}
	s := &Solution{
		p:         p,
		repOf:     make([]VarID, n),
		pts:       make([]*bitset.Set, n),
		pointsExt: make([]bool, n),
		external:  make([]bool, n),
		omega:     omega,
		Degraded:  flags&1 != 0,
	}
	for i := range s.repOf {
		r := VarID(d.u32())
		if d.err == nil && uint32(r) >= n {
			return nil, fmt.Errorf("core: solution wire: repOf[%d]=%d out of range", i, r)
		}
		s.repOf[i] = r
	}
	d.bits(s.pointsExt)
	d.bits(s.external)
	nSets := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	if nSets > n {
		return nil, fmt.Errorf("core: solution wire: %d sets for %d variables", nSets, n)
	}
	prev := -1
	for k := uint32(0); k < nSets; k++ {
		idx := d.u32()
		ln := d.u32()
		if d.err != nil {
			return nil, d.err
		}
		if int(idx) >= int(n) || int(idx) <= prev {
			return nil, fmt.Errorf("core: solution wire: set index %d out of order or range", idx)
		}
		prev = int(idx)
		if int(ln)*4 > len(data) {
			return nil, fmt.Errorf("core: solution wire: set length %d exceeds record size", ln)
		}
		set := &bitset.Set{}
		last := int64(-1)
		for j := uint32(0); j < ln; j++ {
			x := d.u32()
			if d.err != nil {
				return nil, d.err
			}
			if int64(x) <= last {
				return nil, fmt.Errorf("core: solution wire: set %d elements not ascending", idx)
			}
			last = int64(x)
			set.Add(x)
		}
		s.pts[idx] = set
	}
	s.Stats.Duration = time.Duration(d.i64())
	s.Stats.ExplicitPointees = int(d.i64())
	s.Stats.Visits = int(d.i64())
	s.Stats.Passes = int(d.i64())
	s.Stats.Unifications = int(d.i64())
	s.Stats.SimpleEdges = int(d.i64())
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != d.off {
		return nil, fmt.Errorf("core: solution wire: %d trailing bytes", len(d.data)-d.off)
	}
	return s, nil
}

// FingerprintHash is the integrity hash stored beside persisted and cached
// solutions: FNV-64a over the canonical Fingerprint text, with 0 mapped to
// 1 so 0 can mean "no hash recorded". The engine's verify-on-read and the
// store's verify-on-load both recompute it and treat a mismatch as
// corruption.
func FingerprintHash(sol *Solution) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sol.Fingerprint()))
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}

func appendBits(buf []byte, bits []bool) []byte {
	nb := (len(bits) + 7) / 8
	start := len(buf)
	buf = append(buf, make([]byte, nb)...)
	for i, b := range bits {
		if b {
			buf[start+i/8] |= 1 << (i % 8)
		}
	}
	return buf
}

// wireReader is a bounds-checked little-endian cursor: the first
// out-of-range read latches err and every later read is a no-op, so decode
// paths check d.err at structural boundaries instead of after every field.
type wireReader struct {
	data []byte
	off  int
	err  error
}

func (d *wireReader) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("core: solution wire: truncated record at offset %d", d.off)
	}
}

func (d *wireReader) bytes(n int) []byte {
	if d.err != nil || d.off+n > len(d.data) {
		d.fail()
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *wireReader) u8() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wireReader) u32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wireReader) i64() int64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (d *wireReader) bits(dst []bool) {
	b := d.bytes((len(dst) + 7) / 8)
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = b[i/8]&(1<<(i%8)) != 0
	}
}
