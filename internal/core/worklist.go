package core

import (
	"time"

	"github.com/pip-analysis/pip/internal/bitset"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
)

// This file implements Algorithm 1 from the paper: the worklist solver for
// the combined inference rules of Figure 2 (TRANS/LOAD/STORE/CALL) and
// Figure 7 (the Ω rules of the extended language), with the four PIP
// additions of Section IV. The same visit routine also drives the naive
// solver (naive.go) and the explicit-Ω (EP) representation, in which the
// flag branches are inert because Ω is an ordinary constraint variable.

// progress is set by every state mutation; the naive solver polls it.
func (s *solver) noteProgress() { s.progress = true }

// fire records one inference-rule application on the given telemetry
// counter and on the budget's total-firings counter.
func (s *solver) fire(counter *int64) {
	*counter++
	s.fired++
}

// budgetExhausted checks the configured budget and latches the aborted
// flag once it is exceeded. It is designed to sit on every iteration of
// the solve loops: the firing comparison is a pair of integer tests, and
// the wall clock is only read every 64 calls (so a deadline overshoots by
// at most 64 loop iterations plus the current node visit).
func (s *solver) budgetExhausted() bool {
	if s.aborted {
		return true
	}
	b := s.cfg.Budget
	if b.Firings != 0 && (b.Firings < 0 || s.fired >= b.Firings) {
		s.aborted = true
		s.tk.Event("budget_exhausted", obs.S("reason", "firings"), obs.N("fired", s.fired))
		return true
	}
	if !s.deadline.IsZero() {
		if s.budgetTick++; s.budgetTick&63 == 0 && time.Now().After(s.deadline) {
			s.aborted = true
			s.tk.Event("budget_exhausted", obs.S("reason", "deadline"), obs.N("fired", s.fired))
			return true
		}
	}
	return false
}

// collapseSpan starts a cycle-collapse telemetry span and returns its end
// function (for defer). Nested spans — detectAndCollapse under ocdCheck —
// count only once.
func (s *solver) collapseSpan() func() {
	s.collapseDepth++
	if s.collapseDepth > 1 {
		return func() { s.collapseDepth-- }
	}
	// Chaos hook at top-level collapse entry: an injected error latches
	// the abort flag — every solve loop polls budgetExhausted, so the
	// solver unwinds cooperatively and returns the sound Ω-degradation.
	// Injected panics propagate to the engine's per-job recovery.
	if err := faults.Inject(faults.CoreCollapse); err != nil {
		s.aborted = true
		s.tk.Event("fault_injected", obs.S("point", string(faults.CoreCollapse)))
	}
	t0 := time.Now()
	sp := s.tk.Begin("collapse")
	return func() {
		s.collapseDepth--
		s.tel.Collapse += time.Since(t0)
		sp.End()
	}
}

func (s *solver) solveWorklist() {
	s.wl = newWorklist(s.cfg.Order, s)
	if s.cfg.LCD {
		s.lcdDone = map[uint64]bool{}
	}
	if s.cfg.OCD {
		// OCD detects every cycle as soon as it appears; the phase-1
		// constraints may already contain cycles, so collapse them first.
		s.collapseAllSCCs()
	}
	// Stratified presaturation (SolveWorkers ≥ 1): saturate the TRANS
	// closure of the seeded graph in parallel before the initial visits,
	// so the worklist only has to drive the complex constraints and the
	// PIP rules instead of element-wise transitive propagation.
	s.presaturate()
	// W ← P ∪ M: initialize with every node; first visits are full.
	for v := 0; v < s.n; v++ {
		r := s.find(VarID(v))
		s.fullVisit[r] = true
		s.wl.push(r)
	}
	s.drainWorklist()
}

// drainWorklist runs the worklist to empty (or budget exhaustion). It is
// the fixpoint loop shared by the from-scratch solve (which first pushes
// every node) and the incremental resume (which pushes only the nodes
// touched by added constraints; see checkpoint.go).
func (s *solver) drainWorklist() {
	traced := s.tk.Enabled()
	for {
		if s.budgetExhausted() {
			return
		}
		// Convergence profile: sample worklist depth and the growth
		// counters every 256 iterations so a trace shows the solve's shape
		// over time without per-iteration overhead.
		if s.loopIters++; traced && s.loopIters&255 == 0 {
			s.sampleConvergence()
		}
		for len(s.pendingHCDUnions) > 0 {
			pair := s.pendingHCDUnions[len(s.pendingHCDUnions)-1]
			s.pendingHCDUnions = s.pendingHCDUnions[:len(s.pendingHCDUnions)-1]
			s.unify(pair[0], pair[1])
		}
		if sz := s.wl.size(); sz > s.tel.WorklistPeak {
			s.tel.WorklistPeak = sz
		}
		n, ok := s.wl.pop()
		if !ok {
			break
		}
		if s.find(n) != n {
			continue // stale: merged into another representative
		}
		s.visit(n)
	}
}

// visit processes one node: Algorithm 1 loop body.
func (s *solver) visit(n VarID) {
	if s.aborted {
		return
	}
	s.stats.Visits++
	ip := s.cfg.Rep == IP

	// HCD: pointees of n collapse into the offline-designated partner.
	if s.hcdRef != nil {
		if ref, ok := s.hcdRef[n]; ok {
			rr := s.find(ref)
			if s.pts[n] != nil {
				for _, x := range s.pts[n].Slice() {
					if !s.ptrCompat[s.find(x)] {
						continue // pointer-incompatible pointees keep Ω semantics
					}
					rr = s.unify(rr, x)
				}
			}
			n = s.find(n)
		}
	}

	// PIP addition 1: backpropagate Ω ⊒ n from simple-edge successors.
	if s.cfg.pipRule(1) && !s.hasFlag(n, FlagEscapedPointees) && s.succ[n] != nil {
		found := false
		s.succ[n].ForEach(func(q uint32) {
			if !found && s.repFlags[s.find(q)]&FlagEscapedPointees != 0 {
				found = true
			}
		})
		if found {
			s.setFlag(n, FlagEscapedPointees)
		}
	}

	flags := s.repFlags[n]
	full := !s.cfg.DP || s.fullVisit[n]
	// PIP addition 2 requires marking every current pointee before the
	// set is cleared, so force a full iteration in that case.
	pip2 := s.cfg.pipRule(2) && flags&FlagEscapedPointees != 0 && flags&FlagPointsExt != 0
	if pip2 {
		full = true
	}
	s.fullVisit[n] = false

	// The pointee snapshot lives in the solver's reusable buffer: visit is
	// not reentrant (the nested addEdgeOnline path propagates whole sets
	// without snapshotting), so one buffer per solve suffices.
	var iter []uint32
	if full {
		if s.pts[n] != nil {
			iter = s.pts[n].AppendTo(s.iterBuf[:0])
		}
		if s.cfg.DP && s.dif[n] != nil {
			s.dif[n].Clear()
		}
	} else if s.dif[n] != nil {
		iter = s.dif[n].AppendTo(s.iterBuf[:0])
		s.dif[n].Clear()
	}
	if iter != nil {
		s.iterBuf = iter
	}

	// Escape processing: if Ω ⊒ n, every pointee becomes externally
	// accessible (IP mode; in EP mode the Ω self-edges achieve this).
	if ip && flags&FlagEscapedPointees != 0 {
		for _, x := range iter {
			if !s.external[x] {
				s.markExternallyAccessible(x)
			}
		}
	}

	// PIP addition 2: with both n ⊒ Ω and Ω ⊒ n, Sol(n) = Sol_i(n); all
	// explicit pointees are doubled-up and can be dropped, and the
	// complex-constraint work below is subsumed by the flag branches.
	if pip2 {
		if s.pts[n] != nil && s.pts[n].Len() > 0 {
			if s.ptsShared != nil && s.ptsShared[n] {
				// Shared with an old checkpoint: drop the alias instead
				// of clearing (cheaper than clone-then-clear).
				s.pts[n] = &bitset.Set{}
				s.ptsShared[n] = false
			} else {
				s.pts[n].Clear()
			}
			s.satVisit[n] = false
			s.noteProgress()
		}
		if s.cfg.DP && s.dif[n] != nil {
			s.dif[n].Clear()
		}
		iter = nil
	}

	// Simple edges n → p: TRANS / TRANSΩ.
	if s.succ[n] != nil && s.succ[n].Len() > 0 {
		// Presaturated and unchanged since: every successor already holds
		// this node's full closure, so propagation is skipped. Edge
		// maintenance (self-edge and PIP-4 removal) still runs.
		sat := s.satVisit[n]
		for _, q := range s.succ[n].Slice() {
			rq := s.find(q)
			if rq == n {
				s.ownSucc(n).Remove(q)
				continue
			}
			// PIP addition 4: with p ⊒ Ω on the target and Ω ⊒ n here,
			// the edge can never contribute; remove it.
			if s.cfg.pipRule(4) && s.repFlags[n]&FlagEscapedPointees != 0 && s.repFlags[rq]&FlagPointsExt != 0 {
				s.ownSucc(n).Remove(q)
				s.noteProgress()
				continue
			}
			if sat {
				continue
			}
			s.propagate(n, rq, iter, full)
			n = s.find(n) // LCD may have merged n into a cycle
		}
	}
	n = s.find(n)
	flags = s.repFlags[n]

	// Store edges *n ⊇ p: STORE / STORETOΩ.
	for _, p := range s.storeFrom[n] {
		s.fire(&s.tel.Firings.Store)
		rp := s.find(p)
		for i, x := range iter {
			if i&63 == 63 && s.budgetExhausted() {
				return
			}
			s.addEdgeOnline(rp, x)
			rp = s.find(rp)
		}
		if ip && flags&FlagPointsExt != 0 && s.ptrCompat[rp] {
			// Storing through a pointer that may target external memory:
			// the stored value escapes (Ω ⊒ p).
			s.setFlag(rp, FlagEscapedPointees)
		}
	}
	// Scalar store *n ⊒ Ω: every pointee may receive a smuggled pointer.
	if ip && flags&FlagStoreScalar != 0 {
		for _, x := range iter {
			if s.ptrCompat[s.find(x)] {
				s.setFlag(x, FlagPointsExt)
			}
		}
	}

	// Load edges p ⊇ *n: LOAD / LOADFROMΩ.
	for _, p := range s.loadTo[n] {
		s.fire(&s.tel.Firings.Load)
		rp := s.find(p)
		for i, x := range iter {
			if i&63 == 63 && s.budgetExhausted() {
				return
			}
			s.addEdgeOnline(x, rp)
			rp = s.find(rp)
		}
		if ip && flags&FlagPointsExt != 0 && s.ptrCompat[rp] {
			// Loading through an unknown pointer yields an unknown pointer.
			s.setFlag(rp, FlagPointsExt)
		}
	}
	// Scalar load Ω ⊒ *n: every pointee's content is exposed.
	if ip && flags&FlagLoadScalar != 0 {
		for _, x := range iter {
			if s.ptrCompat[s.find(x)] {
				s.setFlag(x, FlagEscapedPointees)
			}
		}
	}

	// Calls Call(n, r, a…): CALL and the Ω call rules.
	n = s.find(n)
	if len(s.callsAt[n]) > 0 {
		calls := s.callsAt[n]
		for ci := range calls {
			c := calls[ci]
			for i, x := range iter {
				if i&63 == 63 && s.budgetExhausted() {
					return
				}
				for fi := range s.funcsAt[x] {
					s.applyCall(c, s.funcsAt[x][fi])
				}
				if ip && s.impFunc[x] {
					s.callToImported(c)
				}
			}
			if ip && flags&FlagPointsExt != 0 && !c.external {
				// Indirect call through a pointer of unknown origin: it
				// may target functions in external modules.
				s.callToImported(c)
			}
		}
	}
}

// applyCall applies the CALL inference rule for one (call, func) pair,
// including the external variants used by the EP representation.
func (s *solver) applyCall(c callC, fc funcC) {
	s.fire(&s.tel.Firings.Call)
	switch {
	case c.external && fc.external:
		return // Ω calling Ω: self-edges only
	case c.external:
		// External modules call function fc: its return value escapes and
		// its parameters receive unknown-origin pointers.
		if fc.ret != NoVar {
			s.addEdgeOnline(s.find(fc.ret), s.find(s.omega))
		}
		for _, a := range fc.args {
			if a != NoVar {
				s.addEdgeOnline(s.find(s.omega), s.find(a))
			}
		}
	case fc.external:
		// Call to an imported function: the result has unknown origin and
		// the arguments escape.
		if c.ret != NoVar {
			s.addEdgeOnline(s.find(s.omega), s.find(c.ret))
		}
		for _, a := range c.args {
			if a != NoVar {
				s.addEdgeOnline(s.find(a), s.find(s.omega))
			}
		}
	default:
		if c.ret != NoVar && fc.ret != NoVar {
			s.addEdgeOnline(s.find(fc.ret), s.find(c.ret))
		}
		k := len(c.args)
		if len(fc.args) < k {
			k = len(fc.args)
		}
		for i := 0; i < k; i++ {
			if c.args[i] != NoVar && fc.args[i] != NoVar {
				s.addEdgeOnline(s.find(c.args[i]), s.find(fc.args[i]))
			}
		}
	}
}

// propagate implements PROPAGATEPOINTEES(f, t): copy pointees (the full set
// or the difference-propagation delta) and the p ⊒ Ω flag from f to t.
func (s *solver) propagate(from, to VarID, iter []uint32, full bool) {
	s.fire(&s.tel.Firings.Trans)
	changed := false
	if len(iter) > 0 {
		tp := s.ptsOf(to)
		adds := int64(0) // kept local so the hot loop stays register-only
		if s.cfg.DP {
			td := s.difOf(to)
			for _, x := range iter {
				if tp.Add(x) {
					td.Add(x)
					adds++
				}
			}
		} else {
			for _, x := range iter {
				if tp.Add(x) {
					adds++
				}
			}
		}
		if adds > 0 {
			s.pointeeAdds += adds
			changed = true
		}
	}
	if s.repFlags[from]&FlagPointsExt != 0 && s.repFlags[to]&FlagPointsExt == 0 {
		s.repFlags[to] |= FlagPointsExt
		s.fullVisit[to] = true
		changed = true
	}
	if changed {
		s.noteProgress()
		s.satVisit[to] = false
		s.enqueue(to)
		return
	}
	// Lazy cycle detection: propagation added nothing and the sets are
	// equal — a strong hint that from and to sit on a cycle.
	if s.cfg.LCD && full && s.pts[from] != nil && s.pts[from].Len() > 0 {
		key := uint64(from)<<32 | uint64(to)
		if !s.lcdDone[key] {
			s.lcdDone[key] = true
			if s.pts[to] != nil && s.pts[from].Equal(s.pts[to]) {
				s.detectAndCollapse(to, from)
			}
		}
	}
}

// propagateFull is propagate for a freshly inserted edge: the source's
// whole current set flows across, so the per-element snapshot loop is
// replaced by one whole-word batched union that records the delta
// directly. Behavior (adds counted, difference sets, flag copy, LCD
// trigger) is identical to propagate(from, to, pts[from].Slice(), true).
func (s *solver) propagateFull(from, to VarID) {
	s.fire(&s.tel.Firings.Trans)
	changed := false
	if s.pts[from] != nil && s.pts[from].Len() > 0 {
		tp := s.ptsOf(to)
		var td *bitset.Set
		if s.cfg.DP {
			td = s.difOf(to)
		}
		if adds := tp.UnionWithDelta(s.pts[from], td); adds > 0 {
			s.pointeeAdds += int64(adds)
			changed = true
		}
	}
	if s.repFlags[from]&FlagPointsExt != 0 && s.repFlags[to]&FlagPointsExt == 0 {
		s.repFlags[to] |= FlagPointsExt
		s.fullVisit[to] = true
		changed = true
	}
	if changed {
		s.noteProgress()
		s.satVisit[to] = false
		s.enqueue(to)
		return
	}
	if s.cfg.LCD && s.pts[from] != nil && s.pts[from].Len() > 0 {
		key := uint64(from)<<32 | uint64(to)
		if !s.lcdDone[key] {
			s.lcdDone[key] = true
			if s.pts[to] != nil && s.pts[from].Equal(s.pts[to]) {
				s.detectAndCollapse(to, from)
			}
		}
	}
}

// addEdgeOnline inserts a simple edge src→dst discovered during solving,
// applying PIP addition 3, full propagation across the new edge, and
// online cycle detection.
func (s *solver) addEdgeOnline(src, dst VarID) {
	if s.aborted {
		return
	}
	rs, rd := s.find(src), s.find(dst)
	if rs == rd {
		return
	}
	if !s.edgeCompat(&rs, &rd) {
		return
	}
	if rs == rd {
		return
	}
	if s.succ[rs] != nil && s.succ[rs].Contains(rd) {
		return
	}
	if s.cfg.pipRule(3) {
		// PIP addition 3: if the destination's pointees all escape,
		// backpropagate Ω ⊒ src; if additionally dst ⊒ Ω, the edge is
		// redundant and is never added.
		if s.repFlags[rd]&FlagEscapedPointees != 0 {
			s.setFlag(rs, FlagEscapedPointees)
			rs = s.find(rs)
		}
		if s.repFlags[rs]&FlagEscapedPointees != 0 && s.repFlags[rd]&FlagPointsExt != 0 {
			return
		}
	}
	s.addSucc(rs, rd)
	s.noteProgress()
	// New edges always propagate the full source set, batched whole-word.
	s.propagateFull(rs, rd)
	if s.cfg.OCD {
		s.ocdCheck(rs, rd)
	}
}
