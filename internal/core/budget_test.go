package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/pip-analysis/pip/internal/workload"
)

// Budget tests: parsing round trips, the Ω-degradation soundness property
// (a degraded solution over-approximates the exact fixed point), firing
// determinism, and bounded return under wall-clock deadlines.

func TestBudgetStringRoundTrip(t *testing.T) {
	cases := []Budget{
		{},
		{Deadline: 10 * time.Millisecond},
		{Firings: 5000},
		{Firings: -1},
		{Deadline: 250 * time.Microsecond, Firings: 123},
	}
	for _, b := range cases {
		got, err := ParseBudget(b.String())
		if err != nil {
			t.Fatalf("ParseBudget(%q): %v", b.String(), err)
		}
		if got != b {
			t.Fatalf("budget round trip: %q -> %+v, want %+v", b.String(), got, b)
		}
	}
	if _, err := ParseBudget("-3ms"); err == nil {
		t.Fatal("negative deadline accepted")
	}
	if _, err := ParseBudget("xyzf"); err == nil {
		t.Fatal("bad firing cap accepted")
	}
	if err := (Budget{Deadline: -time.Second}).Validate(); err == nil {
		t.Fatal("Validate accepted a negative deadline")
	}
}

func TestConfigBudgetRoundTrip(t *testing.T) {
	cfg := Config{Rep: IP, Solver: Worklist, Order: FIFO, PIP: true,
		Budget: Budget{Deadline: 10 * time.Millisecond, Firings: 5000}}
	s := cfg.String()
	if s != "IP+WL(FIFO)+PIP+B(10ms,5000f)" {
		t.Fatalf("String = %q", s)
	}
	parsed, err := ParseConfig(s)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != cfg {
		t.Fatalf("round trip: %+v vs %+v", parsed, cfg)
	}
	// Budgeted and unbudgeted configurations must never share a name (the
	// engine derives cache keys from it).
	plain := cfg
	plain.Budget = Budget{}
	if plain.String() == cfg.String() {
		t.Fatal("budget not reflected in the configuration name")
	}
}

// degradedCoversExact asserts the superset-soundness property: every fact
// reported by the exact solution is also reported by the degraded one.
func degradedCoversExact(t *testing.T, label string, exact, deg *Solution) {
	t.Helper()
	p := exact.Problem()
	for v := VarID(0); v < VarID(p.NumVars()); v++ {
		if exact.Escaped(v) && !deg.Escaped(v) {
			t.Fatalf("%s: var %d escaped in exact but not in degraded solution", label, v)
		}
		if !p.PtrCompat[v] {
			continue
		}
		if exact.PointsToExternal(v) && !deg.PointsToExternal(v) {
			t.Fatalf("%s: var %d has p ⊒ Ω in exact but not in degraded solution", label, v)
		}
		degSet := map[VarID]bool{}
		for _, x := range deg.PointsTo(v) {
			degSet[x] = true
		}
		for _, x := range exact.PointsTo(v) {
			if !degSet[x] {
				t.Fatalf("%s: var %d may point to %d in exact but not in degraded solution", label, v, x)
			}
		}
	}
}

// TestDegradationSoundnessSweep sweeps firing budgets from "no firings
// allowed" upward. Every degraded solution must over-approximate the exact
// fixed point, and the first budget large enough to finish must yield the
// exact solution (budgets never change completed answers).
func TestDegradationSoundnessSweep(t *testing.T) {
	configs := []string{"IP+WL(FIFO)+PIP", "EP+WL(FIFO)", "EP+Naive", "IP+Wave", "IP+WL(LIFO)+OCD"}
	for seed := int64(1); seed <= 4; seed++ {
		for _, mod := range []struct {
			name string
			prob *Problem
		}{
			{"A", Generate(workload.GenerateLinked(seed).A).Problem},
			{"whole", Generate(workload.GenerateLinked(seed).Whole).Problem},
			{"rand", randomProblem(seed*100, 50, 120)},
		} {
			for _, name := range configs {
				cfg := MustParseConfig(name)
				exact := MustSolve(mod.prob, cfg)
				want := exact.Canonical()
				sawDegraded := false
				for cap := int64(-1); ; { // -1 (no firings), 1, 2, 4, 8, ...
					cfg.Budget = Budget{Firings: cap}
					sol := MustSolve(mod.prob, cfg)
					label := fmt.Sprintf("seed %d %s %s cap %d", seed, mod.name, name, cap)
					if sol.Degraded {
						sawDegraded = true
						if !sol.Telemetry.Degraded {
							t.Fatalf("%s: Solution.Degraded set but Telemetry.Degraded clear", label)
						}
						degradedCoversExact(t, label, exact, sol)
					} else {
						if sol.Canonical() != want {
							t.Fatalf("%s: budgeted but completed solve differs from exact solution", label)
						}
						break
					}
					if cap < 0 {
						cap = 1
					} else {
						cap *= 2
					}
					if cap > 1<<30 {
						t.Fatalf("seed %d %s %s: solve still degraded at %d firings", seed, mod.name, name, cap)
					}
				}
				if !sawDegraded {
					t.Fatalf("seed %d %s %s: zero-firing budget did not degrade", seed, mod.name, name)
				}
			}
		}
	}
}

// TestFiringBudgetDeterministic: a firing cap is deterministic, so two
// budgeted solves are fingerprint-identical (including the degraded
// marker), unlike a wall-clock deadline.
func TestFiringBudgetDeterministic(t *testing.T) {
	prob := randomProblem(7, 60, 140)
	for _, name := range []string{"IP+WL(FIFO)+PIP", "EP+OVS+WL(LRF)+OCD"} {
		cfg := MustParseConfig(name)
		cfg.Budget = Budget{Firings: 5}
		a := MustSolve(prob, cfg)
		b := MustSolve(prob, cfg)
		if !a.Degraded {
			t.Fatalf("%s: 5-firing budget did not degrade", name)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("%s: firing-budgeted solves disagree", name)
		}
		// The degraded fingerprint is marked, so it can never be confused
		// with (or cached as) an exact solution's fingerprint.
		exact := MustSolve(prob, MustParseConfig(name))
		if a.Fingerprint() == exact.Fingerprint() {
			t.Fatalf("%s: degraded fingerprint equals exact fingerprint", name)
		}
	}
}

// TestDeadlineBudgetReturnsInBounds: an exhausted wall-clock budget makes
// the solve return degraded within the deadline plus a small epsilon (one
// node visit; the generous bound below absorbs CI scheduling noise).
func TestDeadlineBudgetReturnsInBounds(t *testing.T) {
	prob := randomProblem(11, 600, 1800)
	cfg := DefaultConfig()
	cfg.Budget = Budget{Deadline: time.Nanosecond}
	start := time.Now()
	sol := MustSolve(prob, cfg)
	elapsed := time.Since(start)
	if !sol.Degraded {
		t.Fatal("1ns deadline did not degrade")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("degraded solve took %v, far beyond the deadline epsilon", elapsed)
	}
	degradedCoversExact(t, "deadline", MustSolve(prob, DefaultConfig()), sol)
}

// TestDegradedSolutionShape: the degraded solution is built from the
// problem alone — every variable escapes, every pointer-compatible
// variable is Ω-tainted, and no explicit pointees survive.
func TestDegradedSolutionShape(t *testing.T) {
	prob := Generate(workload.GenerateLinked(2).A).Problem
	cfg := DefaultConfig()
	cfg.Budget = Budget{Firings: -1}
	sol := MustSolve(prob, cfg)
	if !sol.Degraded {
		t.Fatal("no-firings budget did not degrade")
	}
	for v := VarID(0); v < VarID(prob.NumVars()); v++ {
		if !sol.Escaped(v) {
			t.Fatalf("var %d not escaped in the degraded solution", v)
		}
		if prob.PtrCompat[v] && !sol.PointsToExternal(v) {
			t.Fatalf("pointer-compatible var %d lacks p ⊒ Ω", v)
		}
		if got := sol.Explicit(v); len(got) != 0 {
			t.Fatalf("var %d has explicit pointees %v in the degraded solution", v, got)
		}
	}
	if sol.Stats.ExplicitPointees != 0 {
		t.Fatalf("degraded ExplicitPointees = %d", sol.Stats.ExplicitPointees)
	}
}

// TestTelemetryPopulated: an ordinary (unbudgeted) solve fills the
// telemetry block: firings happened, the worklist saw entries, and phase
// timers are non-negative with Degraded clear.
func TestTelemetryPopulated(t *testing.T) {
	prob := randomProblem(3, 80, 200)
	for _, name := range []string{"IP+WL(FIFO)+PIP", "EP+OVS+WL(LRF)+OCD", "EP+Naive", "IP+Wave"} {
		sol := MustSolve(prob, MustParseConfig(name))
		tel := sol.Telemetry
		if tel.Degraded {
			t.Fatalf("%s: unbudgeted solve marked degraded", name)
		}
		if tel.Firings.Total() == 0 {
			t.Fatalf("%s: no rule firings recorded", name)
		}
		if tel.Offline < 0 || tel.Propagate < 0 || tel.Collapse < 0 {
			t.Fatalf("%s: negative phase timer: %+v", name, tel)
		}
		if name == "IP+WL(FIFO)+PIP" && tel.WorklistPeak == 0 {
			t.Fatalf("%s: worklist peak never recorded", name)
		}
	}
}

// TestTelemetryMerge covers the aggregation the engine relies on.
func TestTelemetryMerge(t *testing.T) {
	a := Telemetry{Offline: 1, Propagate: 2, Collapse: 3,
		Firings: RuleFirings{Trans: 1, Load: 2, Store: 3, Call: 4, Flag: 5}, WorklistPeak: 7}
	b := Telemetry{Offline: 10, Propagate: 20, Collapse: 30,
		Firings: RuleFirings{Trans: 10}, WorklistPeak: 3, Degraded: true}
	a.Merge(b)
	if a.Offline != 11 || a.Propagate != 22 || a.Collapse != 33 {
		t.Fatalf("durations: %+v", a)
	}
	if a.Firings.Trans != 11 || a.Firings.Total() != 25 {
		t.Fatalf("firings: %+v", a.Firings)
	}
	if a.WorklistPeak != 7 {
		t.Fatalf("peak: %d", a.WorklistPeak)
	}
	if !a.Degraded {
		t.Fatal("Degraded did not propagate")
	}
}

// TestBudgetFromContext covers the deadline → budget mapping a server uses
// for per-request budgets.
func TestBudgetFromContext(t *testing.T) {
	base := Budget{Deadline: 50 * time.Millisecond, Firings: 99}

	// No deadline: base passes through untouched.
	if got := BudgetFromContext(context.Background(), base); got != base {
		t.Fatalf("no-deadline context changed the budget: %+v", got)
	}

	// A context deadline tighter than the base deadline wins.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	got := BudgetFromContext(ctx, base)
	if got.Deadline <= 0 || got.Deadline > 5*time.Millisecond {
		t.Fatalf("context deadline not applied: %+v", got)
	}
	if got.Firings != 99 {
		t.Fatalf("firing cap lost: %+v", got)
	}

	// A base deadline tighter than the context's wins.
	loose, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	if got := BudgetFromContext(loose, base); got.Deadline != base.Deadline {
		t.Fatalf("loose context tightened the budget: %+v", got)
	}

	// A deadline on an unbudgeted base creates a deadline-only budget.
	if got := BudgetFromContext(ctx, Budget{}); got.Deadline <= 0 || got.Firings != 0 {
		t.Fatalf("unbudgeted base: %+v", got)
	}

	// An expired context yields the no-firings budget, which degrades
	// deterministically before any propagation work — a strided wall-clock
	// check could let a small solve slip through a tiny positive deadline.
	expired, cancel3 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel3()
	eb := BudgetFromContext(expired, base)
	if err := eb.Validate(); err != nil {
		t.Fatalf("expired context produced an invalid budget: %v", err)
	}
	if eb.Firings != -1 {
		t.Fatalf("expired context budget = %+v, want the no-firings cap", eb)
	}
	cfg := DefaultConfig()
	cfg.Budget = eb
	sol := MustSolve(Generate(workload.GenerateLinked(1).A).Problem, cfg)
	if !sol.Degraded {
		t.Fatal("expired-context budget did not degrade the solve")
	}
}

// TestDegradedSolutionQueriesTolerateNilSets is the nil-pts audit:
// degradedSolution leaves every explicit set nil, so every Solution query
// method must tolerate nil sets without panicking and still report the
// sound top element. Exercises each exported query plus the DOT dump.
func TestDegradedSolutionQueriesTolerateNilSets(t *testing.T) {
	prob := Generate(workload.GenerateLinked(3).A).Problem
	cfg := DefaultConfig()
	cfg.Budget = Budget{Firings: -1}
	sol := MustSolve(prob, cfg)
	if !sol.Degraded {
		t.Fatal("no-firings budget did not degrade")
	}
	n := VarID(sol.NumVars())
	if int(n) != prob.NumVars() {
		t.Fatalf("NumVars = %d, want %d", n, prob.NumVars())
	}
	if sol.Problem() != prob {
		t.Fatal("Problem() lost the problem")
	}
	ext := sol.ExternalSet()
	if len(ext) != int(n) {
		t.Fatalf("ExternalSet has %d entries, want all %d", len(ext), n)
	}
	for v := VarID(0); v < n; v++ {
		if sol.Rep(v) != v {
			t.Fatalf("degraded rep of %d is %d", v, sol.Rep(v))
		}
		if got := sol.Explicit(v); got != nil {
			t.Fatalf("Explicit(%d) = %v on nil set", v, got)
		}
		if !sol.Escaped(v) {
			t.Fatalf("var %d not escaped", v)
		}
		pts := sol.PointsTo(v)
		if prob.PtrCompat[v] {
			if !sol.PointsToExternal(v) {
				t.Fatalf("ptr-compat var %d lacks p ⊒ Ω", v)
			}
			// Sol(v) = E ∪ {Ω}: every location plus the external marker.
			if len(pts) != int(n)+1 {
				t.Fatalf("PointsTo(%d) has %d entries, want %d", v, len(pts), int(n)+1)
			}
			if pts[len(pts)-1] != OmegaPointee {
				t.Fatalf("PointsTo(%d) lacks the Ω marker: %v", v, pts)
			}
		} else if len(pts) != 0 {
			t.Fatalf("non-pointer var %d has pointees %v", v, pts)
		}
		for w := VarID(0); w < n; w++ {
			if prob.PtrCompat[v] && prob.PtrCompat[w] && !sol.MayShareTargets(v, w) {
				t.Fatalf("degraded MayShareTargets(%d,%d) = false", v, w)
			}
		}
	}
	if got := sol.CountExplicitPointees(); got != 0 {
		t.Fatalf("CountExplicitPointees = %d on nil sets", got)
	}
	if sol.ApproxBytes() != 0 {
		t.Fatal("ApproxBytes counted nil sets")
	}
	for label, s := range map[string]string{
		"Canonical":   sol.Canonical(),
		"Fingerprint": sol.Fingerprint(),
		"Dump":        sol.Dump(),
		"DOT":         SolutionDOT(prob, sol),
	} {
		if s == "" {
			t.Fatalf("%s rendered empty on the degraded solution", label)
		}
	}
	if !strings.HasPrefix(sol.Fingerprint(), "degraded\n") {
		t.Fatal("fingerprint lost the degraded marker")
	}
}
