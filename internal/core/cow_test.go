package core

import (
	"testing"

	"github.com/pip-analysis/pip/internal/bitset"
	"github.com/pip-analysis/pip/internal/obs"
)

// TestCopyOnWriteAccessors pins the clone-before-mutate contract of the
// solver accessors that back checkpoint sharing: a set marked shared must
// be cloned exactly once on its first mutation and the original left
// untouched, while reads and idempotent edge re-inserts must not clone.
func TestCopyOnWriteAccessors(t *testing.T) {
	s := newTestSolver(6)
	s.ptsShared = make([]bool, s.n)
	s.succShared = make([]bool, s.n)

	orig := &bitset.Set{}
	orig.Add(3)
	s.pts[0] = orig
	s.ptsShared[0] = true
	got := s.ptsOf(0)
	if got == orig {
		t.Fatal("ptsOf returned the shared set itself")
	}
	if s.ptsShared[0] {
		t.Fatal("ptsOf left the shared mark set")
	}
	if got != s.ptsOf(0) {
		t.Fatal("second ptsOf cloned again")
	}
	got.Add(4)
	if orig.Contains(4) || orig.Len() != 1 {
		t.Fatal("mutation leaked into the shared set")
	}

	edge := &bitset.Set{}
	edge.Add(2)
	s.succ[1] = edge
	s.succShared[1] = true
	// Re-inserting an existing edge is the idempotent re-seed case: no
	// clone, no ownership change.
	if s.addSucc(1, 2) {
		t.Fatal("existing edge reported as added")
	}
	if s.succ[1] != edge || !s.succShared[1] {
		t.Fatal("idempotent re-insert broke the sharing")
	}
	// A genuinely new edge clones first.
	if !s.addSucc(1, 5) {
		t.Fatal("new edge not added")
	}
	if s.succ[1] == edge || s.succShared[1] {
		t.Fatal("new edge mutated the shared set in place")
	}
	if edge.Contains(5) || edge.Len() != 1 {
		t.Fatal("shared successor set changed")
	}
	if own := s.ownSucc(1); own != s.succ[1] || own == edge {
		t.Fatal("ownSucc did not return the owned clone")
	}
	if s.ownSucc(4).Len() != 0 {
		t.Fatal("ownSucc on a nil slot should create an empty set")
	}
}

// TestCopyOnWriteUnifyTransfersOwnership drives unify directly over
// shared sets. Resumable configurations never unify, so this path is
// defensive — but if a unifying configuration ever meets shared state,
// the ownership marks must move with the sets.
func TestCopyOnWriteUnifyTransfersOwnership(t *testing.T) {
	s := newTestSolver(6)
	s.ptsShared = make([]bool, s.n)
	s.succShared = make([]bool, s.n)

	lpts := &bitset.Set{}
	lpts.Add(1)
	lsucc := &bitset.Set{}
	lsucc.Add(2)
	s.pts[0], s.ptsShared[0] = lpts, true
	s.succ[0], s.succShared[0] = lsucc, true

	// Winner has no sets: the loser's shared sets transfer with their
	// marks intact.
	w := s.unify(0, 1)
	if s.pts[w] != lpts || !s.ptsShared[w] {
		t.Fatal("shared points-to set did not transfer with its mark")
	}
	if s.succ[w] != lsucc || !s.succShared[w] {
		t.Fatal("shared successor set did not transfer with its mark")
	}

	// Winner already has sets: the merge must clone the winner's shared
	// sets before the union, leaving the originals untouched.
	wpts := &bitset.Set{}
	wpts.Add(7)
	s2 := newTestSolver(6)
	s2.ptsShared = make([]bool, s2.n)
	s2.succShared = make([]bool, s2.n)
	s2.pts[0], s2.ptsShared[0] = wpts.Clone(), true
	shared0 := s2.pts[0]
	s2.pts[1] = &bitset.Set{}
	s2.pts[1].Add(9)
	w2 := s2.unify(0, 1)
	if s2.pts[w2] == nil || !s2.pts[w2].Contains(9) || !s2.pts[w2].Contains(7) {
		t.Fatal("merge lost pointees")
	}
	if shared0.Contains(9) {
		t.Fatal("merge mutated a shared set in place")
	}
}

// TestResumeSharesCheckpointState is the end-to-end pin for copy-on-write
// restores: one checkpoint seeds several resumes (including with
// stratified presaturation workers, whose component merges also mutate
// restored sets), each bit-identical to a from-scratch solve, while the
// checkpoint and the solutions already handed out stay intact.
func TestResumeSharesCheckpointState(t *testing.T) {
	for _, cfg := range []Config{
		{Rep: IP, Solver: Worklist, Order: FIFO, DP: true},
		{Rep: IP, Solver: Worklist, Order: FIFO, SolveWorkers: 4},
	} {
		base := genCheckpointProblem(11, 96)
		sol0, ck, err := SolveCheckpointed(base, cfg, obs.Track{}, nil)
		if err != nil || ck == nil {
			t.Fatalf("%s: checkpointed solve: %v", cfg, err)
		}
		if ck.Config() != cfg || ck.NumVars() != base.NumVars() {
			t.Fatalf("%s: checkpoint metadata wrong", cfg)
		}
		if ck.ApproxBytes() <= 0 {
			t.Fatalf("%s: checkpoint reports no retained memory", cfg)
		}
		fp0 := sol0.Fingerprint()

		edited := base.Clone()
		p := edited.AddVar("p", Register, true)
		m := edited.AddVar("m", Memory, true)
		edited.AddBase(p, m)
		edited.AddSimple(0, p)
		edited.AddStore(p, 1)
		d := DiffSummaries(BuildSummary(base), BuildSummary(edited))

		want := MustSolve(edited, cfg).Fingerprint()
		var prev string
		for trial := 0; trial < 3; trial++ {
			sol, next, err := ck.ResumeAdded(edited, d, obs.Track{}, nil)
			if err != nil {
				t.Fatalf("%s trial %d: resume: %v", cfg, trial, err)
			}
			fp := sol.Fingerprint()
			if fp != want {
				t.Fatalf("%s trial %d: resumed solution differs from scratch", cfg, trial)
			}
			if trial > 0 && fp != prev {
				t.Fatalf("%s trial %d: repeated resume from one checkpoint diverged", cfg, trial)
			}
			prev = fp
			if next == nil {
				t.Fatalf("%s trial %d: no next-generation checkpoint", cfg, trial)
			}
			// The chained generation must also resume correctly.
			if trial == 0 {
				grown := edited.Clone()
				q := grown.AddVar("q", Register, true)
				grown.AddBase(q, m)
				d2 := DiffSummaries(BuildSummary(edited), BuildSummary(grown))
				sol2, _, err := next.ResumeAdded(grown, d2, obs.Track{}, nil)
				if err != nil {
					t.Fatalf("%s: chained resume: %v", cfg, err)
				}
				if sol2.Fingerprint() != MustSolve(grown, cfg).Fingerprint() {
					t.Fatalf("%s: chained resume differs from scratch", cfg)
				}
			}
		}
		// The generation-0 solution shares sets with the checkpoint the
		// resumes drew from; it must still match a fresh baseline solve.
		if sol0.Fingerprint() != fp0 || fp0 != MustSolve(base, cfg).Fingerprint() {
			t.Fatalf("%s: baseline solution corrupted by resumes", cfg)
		}
	}
}
