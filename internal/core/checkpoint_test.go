package core

import (
	"math/rand"
	"testing"

	"github.com/pip-analysis/pip/internal/obs"
)

// resumableConfigs are the configuration cells the checkpoint tests sweep:
// every Resumable combination axis that matters (representation ×
// solver × order × difference propagation × parallel presaturation).
func resumableConfigs() []Config {
	return []Config{
		{Rep: EP, Solver: Naive},
		{Rep: IP, Solver: Naive},
		{Rep: EP, Solver: Worklist, Order: FIFO},
		{Rep: IP, Solver: Worklist, Order: LIFO},
		{Rep: IP, Solver: Worklist, Order: LRF, DP: true},
		{Rep: EP, Solver: Worklist, Order: Topo, DP: true},
		{Rep: IP, Solver: Worklist, Order: FIFO, SolveWorkers: 4},
	}
}

// genCheckpointProblem builds a deterministic random problem with every
// constraint kind and flag represented.
func genCheckpointProblem(seed int64, n int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem()
	vars := make([]VarID, n)
	var mems []VarID
	for i := 0; i < n; i++ {
		kind := Register
		if rng.Intn(3) == 0 {
			kind = Memory
		}
		vars[i] = p.AddVar("", kind, rng.Intn(8) != 0)
		if kind == Memory {
			mems = append(mems, vars[i])
		}
	}
	if len(mems) == 0 {
		m := p.AddVar("", Memory, true)
		mems = append(mems, m)
		vars = append(vars, m)
	}
	anyVar := func() VarID { return vars[rng.Intn(len(vars))] }
	anyMem := func() VarID { return mems[rng.Intn(len(mems))] }
	for i := 0; i < n; i++ {
		p.AddBase(anyVar(), anyMem())
		p.AddSimple(anyVar(), anyVar())
	}
	for i := 0; i < n/3; i++ {
		p.AddLoad(anyVar(), anyVar())
		p.AddStore(anyVar(), anyVar())
	}
	for i := 0; i < n/8; i++ {
		f := anyMem()
		p.AddFunc(f, anyVar(), []VarID{anyVar(), anyVar()})
		tgt := anyVar()
		p.AddBase(tgt, f)
		p.AddCall(tgt, anyVar(), []VarID{anyVar()})
	}
	for i := 0; i < n/8; i++ {
		p.SetFlag(anyMem(), FlagExternal)
	}
	for _, fl := range []Flags{FlagPointsExt, FlagEscapedPointees, FlagStoreScalar, FlagLoadScalar, FlagImpFunc} {
		p.SetFlag(anyMem(), fl)
	}
	return p
}

// growProblem returns a clone of p with additional random constraints (and
// optionally appended variables) layered on top.
func growProblem(p *Problem, seed int64, appendVars bool) *Problem {
	rng := rand.New(rand.NewSource(seed))
	q := p.Clone()
	n := q.NumVars()
	anyVar := func() VarID { return VarID(rng.Intn(n)) }
	anyMem := func() VarID {
		for {
			v := anyVar()
			if q.Kind[v] == Memory {
				return v
			}
		}
	}
	if appendVars {
		for i := 0; i < 4; i++ {
			q.AddVar("", VarKind(rng.Intn(2)), true)
		}
		n = q.NumVars()
	}
	for i := 0; i < 6; i++ {
		switch rng.Intn(6) {
		case 0:
			q.AddBase(anyVar(), anyMem())
		case 1:
			q.AddSimple(anyVar(), anyVar())
		case 2:
			q.AddLoad(anyVar(), anyVar())
		case 3:
			q.AddStore(anyVar(), anyVar())
		case 4:
			q.AddCall(anyVar(), anyVar(), []VarID{anyVar()})
		case 5:
			f := anyMem()
			q.AddFunc(f, anyVar(), []VarID{anyVar()})
			q.AddBase(anyVar(), f)
		}
	}
	q.SetFlag(anyMem(), FlagExternal)
	q.SetFlag(anyVar(), []Flags{FlagPointsExt, FlagEscapedPointees, FlagStoreScalar, FlagLoadScalar, FlagImpFunc}[rng.Intn(5)])
	return q
}

// TestResumeMatchesScratch grows random problems and asserts the resumed
// solve's fingerprint is bit-identical to a from-scratch solve of the
// grown problem, across every resumable configuration shape, including a
// second chained generation resumed from the first resume's checkpoint.
func TestResumeMatchesScratch(t *testing.T) {
	for _, cfg := range resumableConfigs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				p0 := genCheckpointProblem(seed, 64)
				sol0, ck, err := SolveCheckpointed(p0, cfg, obs.Track{}, nil)
				if err != nil {
					t.Fatalf("seed %d: checkpointed solve: %v", seed, err)
				}
				if ck == nil {
					t.Fatalf("seed %d: no checkpoint for resumable config", seed)
				}
				ref0 := MustSolve(p0, cfg)
				if sol0.Fingerprint() != ref0.Fingerprint() {
					t.Fatalf("seed %d: checkpointed solve differs from plain solve", seed)
				}
				appendVars := cfg.Rep == IP && seed%2 == 0
				p1 := growProblem(p0, seed*977, appendVars)
				d := DiffSummaries(BuildSummary(p0), BuildSummary(p1))
				if !d.Monotone() {
					t.Fatalf("seed %d: grown delta should be monotone", seed)
				}
				sol1, ck1, err := ck.ResumeAdded(p1, d, obs.Track{}, nil)
				if err != nil {
					t.Fatalf("seed %d: resume: %v", seed, err)
				}
				ref1 := MustSolve(p1, cfg)
				if got, want := sol1.Fingerprint(), ref1.Fingerprint(); got != want {
					t.Fatalf("seed %d appendVars=%v: resumed fingerprint differs from scratch\nresumed:\n%s\nscratch:\n%s",
						seed, appendVars, got, want)
				}
				if ck1 == nil {
					t.Fatalf("seed %d: resume returned no next checkpoint", seed)
				}
				// Chain a second generation off the resumed checkpoint.
				p2 := growProblem(p1, seed*31337, false)
				d12 := DiffSummaries(BuildSummary(p1), BuildSummary(p2))
				sol2, _, err := ck1.ResumeAdded(p2, d12, obs.Track{}, nil)
				if err != nil {
					t.Fatalf("seed %d: second resume: %v", seed, err)
				}
				ref2 := MustSolve(p2, cfg)
				if sol2.Fingerprint() != ref2.Fingerprint() {
					t.Fatalf("seed %d: second-generation resume differs from scratch", seed)
				}
			}
		})
	}
}

// TestResumeRejects covers the fallback conditions: non-monotone deltas,
// EP variable growth, and non-resumable configurations.
func TestResumeRejects(t *testing.T) {
	p0 := genCheckpointProblem(7, 64)
	cfg := Config{Rep: EP, Solver: Worklist}
	_, ck, err := SolveCheckpointed(p0, cfg, obs.Track{}, nil)
	if err != nil || ck == nil {
		t.Fatalf("checkpointed solve: ck=%v err=%v", ck, err)
	}

	// Removal → non-monotone → rejected.
	p1 := p0.Clone()
	p1.Simple = p1.Simple[:len(p1.Simple)-1]
	d := DiffSummaries(BuildSummary(p0), BuildSummary(p1))
	if d.Monotone() {
		t.Fatal("removal delta should not be monotone")
	}
	if _, _, err := ck.ResumeAdded(p1, d, obs.Track{}, nil); err == nil {
		t.Fatal("resume of a non-monotone delta should fail")
	}

	// EP + appended variable → rejected even though monotone.
	p2 := p0.Clone()
	p2.AddVar("", Register, true)
	d2 := DiffSummaries(BuildSummary(p0), BuildSummary(p2))
	if !d2.Monotone() {
		t.Fatal("append delta should be monotone")
	}
	if _, _, err := ck.ResumeAdded(p2, d2, obs.Track{}, nil); err == nil {
		t.Fatal("EP resume with a grown universe should fail")
	}

	// Non-resumable configs yield no checkpoint.
	for _, bad := range []Config{
		{Rep: IP, Solver: Worklist, OVS: true},
		{Rep: IP, Solver: Worklist, HCD: true},
		{Rep: IP, Solver: Worklist, LCD: true},
		{Rep: IP, Solver: Worklist, OCD: true},
		{Rep: IP, Solver: Worklist, PIP: true},
		{Rep: EP, Solver: Wave},
		{Rep: IP, Solver: Worklist, Budget: Budget{Firings: 10000}},
	} {
		if Resumable(bad) {
			t.Fatalf("config %s should not be resumable", bad.String())
		}
		_, ck, err := SolveCheckpointed(p0, bad, obs.Track{}, nil)
		if err != nil {
			t.Fatalf("config %s: %v", bad.String(), err)
		}
		if ck != nil {
			t.Fatalf("config %s returned a checkpoint", bad.String())
		}
	}
}
