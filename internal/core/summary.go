package core

// Summary is a handwritten points-to summary for an imported function
// (paper Section III-B: "If the imported function is a common library
// function, it is also possible to use a handwritten summary function
// instead of the overly conservative constraint (5)").
//
// A summary declares the complete pointer behaviour of the external
// function; using one for a function that does more than it declares makes
// the analysis unsound, exactly as in C compilers' builtin handling.
type Summary struct {
	// RetFreshHeap: the function returns newly allocated heap memory.
	// Direct calls get one abstract location per call site; indirect and
	// external calls share one location per function.
	RetFreshHeap bool
	// RetUnknown: the function returns a pointer of unknown origin
	// (ret ⊒ Ω).
	RetUnknown bool
	// RetAliasesArgs lists argument indices whose pointees flow to the
	// return value (e.g. strchr returns into its first argument).
	RetAliasesArgs []int
	// Copies lists {dst, src} argument-index pairs with memcpy semantics:
	// *dst ⊇ *src.
	Copies [][2]int
	// EscapeArgs lists argument indices whose pointees become externally
	// accessible (the function stashes or publishes them).
	EscapeArgs []int
	// UnknownIntoArgs lists argument indices that receive stores of
	// unknown-origin pointers (*arg ⊒ Ω), e.g. scanf-style out-params.
	UnknownIntoArgs []int
}

// maxArgIndex returns the highest argument index the summary references.
func (s Summary) maxArgIndex() int {
	maxIdx := -1
	up := func(i int) {
		if i > maxIdx {
			maxIdx = i
		}
	}
	for _, i := range s.RetAliasesArgs {
		up(i)
	}
	for _, c := range s.Copies {
		up(c[0])
		up(c[1])
	}
	for _, i := range s.EscapeArgs {
		up(i)
	}
	for _, i := range s.UnknownIntoArgs {
		up(i)
	}
	return maxIdx
}

// hasRet reports whether the summary gives the return value any pointees.
func (s Summary) hasRet() bool {
	return s.RetFreshHeap || s.RetUnknown || len(s.RetAliasesArgs) > 0
}

// DefaultSummaries returns the library summaries the paper special-cases
// (malloc, free, memcpy — Section V-B) plus the obvious allocator family.
func DefaultSummaries() map[string]Summary {
	return map[string]Summary{
		"malloc":  {RetFreshHeap: true},
		"calloc":  {RetFreshHeap: true},
		"realloc": {RetFreshHeap: true, RetAliasesArgs: []int{0}},
		"free":    {},
		"memcpy":  {Copies: [][2]int{{0, 1}}, RetAliasesArgs: []int{0}},
		"memmove": {Copies: [][2]int{{0, 1}}, RetAliasesArgs: []int{0}},
	}
}
