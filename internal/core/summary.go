package core

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"slices"
	"strings"
)

// Summary is a handwritten points-to summary for an imported function
// (paper Section III-B: "If the imported function is a common library
// function, it is also possible to use a handwritten summary function
// instead of the overly conservative constraint (5)").
//
// A summary declares the complete pointer behaviour of the external
// function; using one for a function that does more than it declares makes
// the analysis unsound, exactly as in C compilers' builtin handling.
type Summary struct {
	// RetFreshHeap: the function returns newly allocated heap memory.
	// Direct calls get one abstract location per call site; indirect and
	// external calls share one location per function.
	RetFreshHeap bool
	// RetUnknown: the function returns a pointer of unknown origin
	// (ret ⊒ Ω).
	RetUnknown bool
	// RetAliasesArgs lists argument indices whose pointees flow to the
	// return value (e.g. strchr returns into its first argument).
	RetAliasesArgs []int
	// Copies lists {dst, src} argument-index pairs with memcpy semantics:
	// *dst ⊇ *src.
	Copies [][2]int
	// EscapeArgs lists argument indices whose pointees become externally
	// accessible (the function stashes or publishes them).
	EscapeArgs []int
	// UnknownIntoArgs lists argument indices that receive stores of
	// unknown-origin pointers (*arg ⊒ Ω), e.g. scanf-style out-params.
	UnknownIntoArgs []int
}

// maxArgIndex returns the highest argument index the summary references.
func (s Summary) maxArgIndex() int {
	maxIdx := -1
	up := func(i int) {
		if i > maxIdx {
			maxIdx = i
		}
	}
	for _, i := range s.RetAliasesArgs {
		up(i)
	}
	for _, c := range s.Copies {
		up(c[0])
		up(c[1])
	}
	for _, i := range s.EscapeArgs {
		up(i)
	}
	for _, i := range s.UnknownIntoArgs {
		up(i)
	}
	return maxIdx
}

// hasRet reports whether the summary gives the return value any pointees.
func (s Summary) hasRet() bool {
	return s.RetFreshHeap || s.RetUnknown || len(s.RetAliasesArgs) > 0
}

// DefaultSummaries returns the library summaries the paper special-cases
// (malloc, free, memcpy — Section V-B) plus the obvious allocator family.
func DefaultSummaries() map[string]Summary {
	return map[string]Summary{
		"malloc":  {RetFreshHeap: true},
		"calloc":  {RetFreshHeap: true},
		"realloc": {RetFreshHeap: true, RetAliasesArgs: []int{0}},
		"free":    {},
		"memcpy":  {Copies: [][2]int{{0, 1}}, RetAliasesArgs: []int{0}},
		"memmove": {Copies: [][2]int{{0, 1}}, RetAliasesArgs: []int{0}},
	}
}

// ---------------------------------------------------------------------------
// Problem summaries: the diffable per-module constraint artifact.
//
// A ProblemSummary is the canonical form of a Problem's constraint set:
// variable kinds, pointer compatibility, flag constraints, and the six
// constraint lists, each sorted into a deterministic order with duplicates
// preserved (multiset semantics). Diagnostic names are deliberately
// excluded — renaming a variable changes no constraint, so a rename
// produces an empty diff and the previous solution can be reused verbatim.
//
// Summaries exist to make resubmission cheap: the incremental layer
// (internal/core/incr) persists the summary of the last solved problem,
// diffs the resubmitted module's summary against it, and re-propagates
// only from the added constraints when the edit is monotone (nothing
// removed, nothing retyped). Serialize/ParseSummary give the artifact a
// stable wire form for an on-disk or cross-process summary store.
// ---------------------------------------------------------------------------

// ProblemSummary is the canonical, diffable form of a Problem's constraint
// set. Build one with BuildSummary; compare with Equal/Hash; diff two with
// DiffSummaries.
type ProblemSummary struct {
	// Kind, PtrCompat, and Flags are the per-variable tables, indexed by
	// VarID exactly as in the Problem (the variable universe is shared).
	Kind      []VarKind
	PtrCompat []bool
	Flags     []Flags
	// The constraint lists, each sorted canonically with duplicates kept.
	Base   []Edge
	Simple []Edge
	Load   []Edge
	Store  []Edge
	Funcs  []FuncConstraint
	Calls  []CallConstraint
}

// NumVars returns the size of the summarized variable universe.
func (s *ProblemSummary) NumVars() int { return len(s.Kind) }

// NumConstraints mirrors Problem.NumConstraints on the summary: list
// constraints plus set flag bits.
func (s *ProblemSummary) NumConstraints() int {
	n := len(s.Base) + len(s.Simple) + len(s.Load) + len(s.Store) + len(s.Funcs) + len(s.Calls)
	for _, f := range s.Flags {
		for b := Flags(1); b < 1<<6; b <<= 1 {
			if f&b != 0 {
				n++
			}
		}
	}
	return n
}

// BuildSummary canonicalizes a problem into its summary: per-variable
// tables are copied, constraint lists are copied and sorted. The problem
// is not modified and not retained.
func BuildSummary(p *Problem) *ProblemSummary {
	s := &ProblemSummary{
		Kind:      append([]VarKind(nil), p.Kind...),
		PtrCompat: append([]bool(nil), p.PtrCompat...),
		Flags:     append([]Flags(nil), p.Flags...),
		Base:      sortedEdges(p.Base),
		Simple:    sortedEdges(p.Simple),
		Load:      sortedEdges(p.Load),
		Store:     sortedEdges(p.Store),
		Funcs:     sortedFuncs(p.Funcs),
		Calls:     sortedCalls(p.Calls),
	}
	return s
}

// sortedEdges sorts by (Dst, Src) via packed uint64 keys: edge lists are
// the bulk of every summary, and sorting machine words is several times
// faster than sort.Slice's interface-driven comparator.
func sortedEdges(in []Edge) []Edge {
	keys := make([]uint64, len(in))
	for i, e := range in {
		keys[i] = uint64(e.Dst)<<32 | uint64(e.Src)
	}
	slices.Sort(keys)
	out := make([]Edge, len(in))
	for i, k := range keys {
		out[i] = Edge{Dst: VarID(k >> 32), Src: VarID(uint32(k))}
	}
	return out
}

// varSeqLess orders variable sequences lexicographically (NoVar sorts
// after every real id because it is the maximum uint32).
func varSeqLess(a, b []VarID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func funcKey(f FuncConstraint) []VarID {
	k := make([]VarID, 0, len(f.Args)+2)
	k = append(k, f.F, f.Ret)
	return append(k, f.Args...)
}

func callKey(c CallConstraint) []VarID {
	k := make([]VarID, 0, len(c.Args)+2)
	k = append(k, c.Target, c.Ret)
	return append(k, c.Args...)
}

// sortedFuncs and sortedCalls order by the same lexicographic key
// sequence as funcKey/callKey (head pair, then args), but compare the
// fields in place — building a key slice per comparison dominated
// BuildSummary's profile.
func sortedFuncs(in []FuncConstraint) []FuncConstraint {
	out := append([]FuncConstraint(nil), in...)
	slices.SortFunc(out, func(a, b FuncConstraint) int {
		if a.F != b.F {
			return cmpVar(a.F, b.F)
		}
		if a.Ret != b.Ret {
			return cmpVar(a.Ret, b.Ret)
		}
		return slices.Compare(a.Args, b.Args)
	})
	return out
}

func sortedCalls(in []CallConstraint) []CallConstraint {
	out := append([]CallConstraint(nil), in...)
	slices.SortFunc(out, func(a, b CallConstraint) int {
		if a.Target != b.Target {
			return cmpVar(a.Target, b.Target)
		}
		if a.Ret != b.Ret {
			return cmpVar(a.Ret, b.Ret)
		}
		return slices.Compare(a.Args, b.Args)
	})
	return out
}

func cmpVar(a, b VarID) int {
	if a < b {
		return -1
	}
	return 1
}

// Equal reports whether two summaries describe identical constraint sets.
func (s *ProblemSummary) Equal(o *ProblemSummary) bool {
	if len(s.Kind) != len(o.Kind) {
		return false
	}
	for i := range s.Kind {
		if s.Kind[i] != o.Kind[i] || s.PtrCompat[i] != o.PtrCompat[i] || s.Flags[i] != o.Flags[i] {
			return false
		}
	}
	eqEdges := func(a, b []Edge) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !eqEdges(s.Base, o.Base) || !eqEdges(s.Simple, o.Simple) ||
		!eqEdges(s.Load, o.Load) || !eqEdges(s.Store, o.Store) {
		return false
	}
	if len(s.Funcs) != len(o.Funcs) || len(s.Calls) != len(o.Calls) {
		return false
	}
	for i := range s.Funcs {
		if !varSeqEq(funcKey(s.Funcs[i]), funcKey(o.Funcs[i])) {
			return false
		}
	}
	for i := range s.Calls {
		if !varSeqEq(callKey(s.Calls[i]), callKey(o.Calls[i])) {
			return false
		}
	}
	return true
}

func varSeqEq(a, b []VarID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Hash returns the summary's content hash (over its serialized form):
// two summaries hash equal iff they are Equal.
func (s *ProblemSummary) Hash() string {
	h := sha256.Sum256(s.Serialize())
	return hex.EncodeToString(h[:])
}

// Serialize renders the summary in its stable line-oriented wire form:
//
//	pipsummary v1
//	vars <n>
//	v <kind:r|m><ptr:0|1><flags-hex>        one line per variable
//	b|s|l|t <dst> <src>                     base/simple/load/store edges
//	f|c <f|target> <ret> <args...>          func/call constraints (- = NoVar)
//
// The rendering of a canonical summary is deterministic, so Serialize is
// also the basis of Hash.
func (s *ProblemSummary) Serialize() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "pipsummary v1\nvars %d\n", len(s.Kind))
	for i := range s.Kind {
		k := byte('r')
		if s.Kind[i] == Memory {
			k = 'm'
		}
		p := byte('0')
		if s.PtrCompat[i] {
			p = '1'
		}
		fmt.Fprintf(&b, "v %c%c%x\n", k, p, uint8(s.Flags[i]))
	}
	writeEdges := func(tag byte, es []Edge) {
		for _, e := range es {
			fmt.Fprintf(&b, "%c %d %d\n", tag, e.Dst, e.Src)
		}
	}
	writeEdges('b', s.Base)
	writeEdges('s', s.Simple)
	writeEdges('l', s.Load)
	writeEdges('t', s.Store)
	writeSeq := func(tag byte, seq []VarID) {
		b.WriteByte(tag)
		for _, v := range seq {
			if v == NoVar {
				b.WriteString(" -")
			} else {
				fmt.Fprintf(&b, " %d", v)
			}
		}
		b.WriteByte('\n')
	}
	for _, f := range s.Funcs {
		writeSeq('f', funcKey(f))
	}
	for _, c := range s.Calls {
		writeSeq('c', callKey(c))
	}
	return b.Bytes()
}

// ParseSummary parses the wire form produced by Serialize.
func ParseSummary(data []byte) (*ProblemSummary, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() || sc.Text() != "pipsummary v1" {
		return nil, fmt.Errorf("summary: bad header")
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("summary: missing vars line")
	}
	var n int
	if _, err := fmt.Sscanf(sc.Text(), "vars %d", &n); err != nil || n < 0 {
		return nil, fmt.Errorf("summary: bad vars line %q", sc.Text())
	}
	s := &ProblemSummary{
		Kind:      make([]VarKind, 0, n),
		PtrCompat: make([]bool, 0, n),
		Flags:     make([]Flags, 0, n),
	}
	parseSeq := func(line string) ([]VarID, error) {
		var out []VarID
		for _, tok := range strings.Fields(line[1:]) {
			if tok == "-" {
				out = append(out, NoVar)
				continue
			}
			var v uint64
			if _, err := fmt.Sscanf(tok, "%d", &v); err != nil {
				return nil, fmt.Errorf("summary: bad id %q", tok)
			}
			out = append(out, VarID(v))
		}
		if len(out) < 2 {
			return nil, fmt.Errorf("summary: short constraint line %q", line)
		}
		return out, nil
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch line[0] {
		case 'v':
			if len(line) < 5 || line[1] != ' ' {
				return nil, fmt.Errorf("summary: bad var line %q", line)
			}
			body := line[2:]
			kind := Register
			if body[0] == 'm' {
				kind = Memory
			} else if body[0] != 'r' {
				return nil, fmt.Errorf("summary: bad kind in %q", line)
			}
			var fl uint8
			if _, err := fmt.Sscanf(body[2:], "%x", &fl); err != nil {
				return nil, fmt.Errorf("summary: bad flags in %q", line)
			}
			s.Kind = append(s.Kind, kind)
			s.PtrCompat = append(s.PtrCompat, body[1] == '1')
			s.Flags = append(s.Flags, Flags(fl))
		case 'b', 's', 'l', 't':
			var d, src uint64
			if _, err := fmt.Sscanf(line[2:], "%d %d", &d, &src); err != nil {
				return nil, fmt.Errorf("summary: bad edge line %q", line)
			}
			e := Edge{Dst: VarID(d), Src: VarID(src)}
			switch line[0] {
			case 'b':
				s.Base = append(s.Base, e)
			case 's':
				s.Simple = append(s.Simple, e)
			case 'l':
				s.Load = append(s.Load, e)
			case 't':
				s.Store = append(s.Store, e)
			}
		case 'f':
			seq, err := parseSeq(line)
			if err != nil {
				return nil, err
			}
			s.Funcs = append(s.Funcs, FuncConstraint{F: seq[0], Ret: seq[1], Args: seq[2:]})
		case 'c':
			seq, err := parseSeq(line)
			if err != nil {
				return nil, err
			}
			s.Calls = append(s.Calls, CallConstraint{Target: seq[0], Ret: seq[1], Args: seq[2:]})
		default:
			return nil, fmt.Errorf("summary: unknown line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Kind) != n {
		return nil, fmt.Errorf("summary: expected %d vars, found %d", n, len(s.Kind))
	}
	return s, nil
}

// FlagEdit is one per-variable flag change in a SummaryDelta.
type FlagEdit struct {
	Var  VarID
	Bits Flags
}

// SummaryDelta is the difference between two summaries of the same module
// lineage: everything that must be added to and removed from the old
// constraint set to obtain the new one. Applying a delta to the old
// summary reconstructs the new one exactly (round-trip property, tested in
// the core suite). A delta with no removals, no retyped variables, and no
// shrunk universe is Monotone: the incremental solver can resume a
// checkpointed solve by seeding only the added constraints.
type SummaryDelta struct {
	// OldVars and NewVars are the universe sizes on the two sides.
	OldVars, NewVars int
	// Retyped reports that a variable present on both sides changed its
	// Kind or pointer compatibility — the propagation state attached to it
	// is meaningless for the new problem, forcing a from-scratch solve.
	Retyped bool
	// NewKind/NewPtrCompat hold the new problem's per-variable tables for
	// appended variables (index 0 is variable OldVars), or — when Retyped
	// or the universe shrank — the complete replacement tables.
	NewKind      []VarKind
	NewPtrCompat []bool

	// Flag bits newly set / cleared per variable. AddedFlags entries for
	// variables >= OldVars carry appended variables' initial flags.
	AddedFlags   []FlagEdit
	RemovedFlags []FlagEdit

	AddedBase, RemovedBase     []Edge
	AddedSimple, RemovedSimple []Edge
	AddedLoad, RemovedLoad     []Edge
	AddedStore, RemovedStore   []Edge
	AddedFuncs, RemovedFuncs   []FuncConstraint
	AddedCalls, RemovedCalls   []CallConstraint
}

// Empty reports that the two summaries are identical — the previous
// solution can be reused without solving anything (this is what a pure
// rename diff looks like: names are not part of the summary).
func (d *SummaryDelta) Empty() bool {
	return d.OldVars == d.NewVars && !d.Retyped &&
		len(d.AddedFlags) == 0 && len(d.RemovedFlags) == 0 &&
		len(d.AddedBase) == 0 && len(d.RemovedBase) == 0 &&
		len(d.AddedSimple) == 0 && len(d.RemovedSimple) == 0 &&
		len(d.AddedLoad) == 0 && len(d.RemovedLoad) == 0 &&
		len(d.AddedStore) == 0 && len(d.RemovedStore) == 0 &&
		len(d.AddedFuncs) == 0 && len(d.RemovedFuncs) == 0 &&
		len(d.AddedCalls) == 0 && len(d.RemovedCalls) == 0
}

// Monotone reports that the delta only grows the constraint set: the
// variable universe did not shrink, no variable changed type, and nothing
// was removed. Monotone deltas are the ones a checkpointed solve can
// resume from (removals would invalidate already-propagated facts: the
// solved state is a superset of what the new constraints justify).
func (d *SummaryDelta) Monotone() bool {
	return d.NewVars >= d.OldVars && !d.Retyped &&
		len(d.RemovedFlags) == 0 &&
		len(d.RemovedBase) == 0 && len(d.RemovedSimple) == 0 &&
		len(d.RemovedLoad) == 0 && len(d.RemovedStore) == 0 &&
		len(d.RemovedFuncs) == 0 && len(d.RemovedCalls) == 0
}

// Added counts added constraints (flag bits included), the size of the
// incremental reseed.
func (d *SummaryDelta) Added() int {
	n := len(d.AddedBase) + len(d.AddedSimple) + len(d.AddedLoad) + len(d.AddedStore) +
		len(d.AddedFuncs) + len(d.AddedCalls)
	for _, fe := range d.AddedFlags {
		n += flagBits(fe.Bits)
	}
	return n
}

// Removed counts removed constraints (flag bits included).
func (d *SummaryDelta) Removed() int {
	n := len(d.RemovedBase) + len(d.RemovedSimple) + len(d.RemovedLoad) + len(d.RemovedStore) +
		len(d.RemovedFuncs) + len(d.RemovedCalls)
	for _, fe := range d.RemovedFlags {
		n += flagBits(fe.Bits)
	}
	return n
}

func flagBits(f Flags) int {
	n := 0
	for b := Flags(1); b < 1<<6; b <<= 1 {
		if f&b != 0 {
			n++
		}
	}
	return n
}

// DiffSummaries computes new − old as a SummaryDelta. Constraint lists are
// compared as multisets, so duplicated constraints diff by occurrence
// count.
func DiffSummaries(old, new *ProblemSummary) *SummaryDelta {
	d := &SummaryDelta{OldVars: old.NumVars(), NewVars: new.NumVars()}
	shared := d.OldVars
	if d.NewVars < shared {
		shared = d.NewVars
	}
	for i := 0; i < shared; i++ {
		if old.Kind[i] != new.Kind[i] || old.PtrCompat[i] != new.PtrCompat[i] {
			d.Retyped = true
		}
		if add := new.Flags[i] &^ old.Flags[i]; add != 0 {
			d.AddedFlags = append(d.AddedFlags, FlagEdit{Var: VarID(i), Bits: add})
		}
		if rem := old.Flags[i] &^ new.Flags[i]; rem != 0 {
			d.RemovedFlags = append(d.RemovedFlags, FlagEdit{Var: VarID(i), Bits: rem})
		}
	}
	if d.Retyped || d.NewVars < d.OldVars {
		d.NewKind = append([]VarKind(nil), new.Kind...)
		d.NewPtrCompat = append([]bool(nil), new.PtrCompat...)
	} else if d.NewVars > d.OldVars {
		d.NewKind = append([]VarKind(nil), new.Kind[d.OldVars:]...)
		d.NewPtrCompat = append([]bool(nil), new.PtrCompat[d.OldVars:]...)
	}
	for i := shared; i < d.NewVars; i++ {
		if new.Flags[i] != 0 {
			d.AddedFlags = append(d.AddedFlags, FlagEdit{Var: VarID(i), Bits: new.Flags[i]})
		}
	}
	d.AddedBase, d.RemovedBase = diffEdgeMultisets(old.Base, new.Base)
	d.AddedSimple, d.RemovedSimple = diffEdgeMultisets(old.Simple, new.Simple)
	d.AddedLoad, d.RemovedLoad = diffEdgeMultisets(old.Load, new.Load)
	d.AddedStore, d.RemovedStore = diffEdgeMultisets(old.Store, new.Store)
	d.AddedFuncs, d.RemovedFuncs = diffFuncMultisets(old.Funcs, new.Funcs)
	d.AddedCalls, d.RemovedCalls = diffCallMultisets(old.Calls, new.Calls)
	return d
}

// diffEdgeMultisets merge-walks two canonically sorted edge lists and
// returns (new−old, old−new) by occurrence count.
func diffEdgeMultisets(old, new []Edge) (added, removed []Edge) {
	less := func(a, b Edge) bool {
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Src < b.Src
	}
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i] == new[j]:
			i++
			j++
		case less(old[i], new[j]):
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, new[j])
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, new[j:]...)
	return added, removed
}

func diffFuncMultisets(old, new []FuncConstraint) (added, removed []FuncConstraint) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		ko, kn := funcKey(old[i]), funcKey(new[j])
		switch {
		case varSeqEq(ko, kn):
			i++
			j++
		case varSeqLess(ko, kn):
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, new[j])
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, new[j:]...)
	return added, removed
}

func diffCallMultisets(old, new []CallConstraint) (added, removed []CallConstraint) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		ko, kn := callKey(old[i]), callKey(new[j])
		switch {
		case varSeqEq(ko, kn):
			i++
			j++
		case varSeqLess(ko, kn):
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, new[j])
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, new[j:]...)
	return added, removed
}

// Apply reconstructs the new-side summary from the old side plus the
// delta: Apply(old, DiffSummaries(old, new)).Equal(new) holds for every
// pair of summaries. It never modifies old.
func (d *SummaryDelta) Apply(old *ProblemSummary) *ProblemSummary {
	s := &ProblemSummary{}
	switch {
	case d.Retyped || d.NewVars < d.OldVars:
		s.Kind = append([]VarKind(nil), d.NewKind...)
		s.PtrCompat = append([]bool(nil), d.NewPtrCompat...)
	default:
		s.Kind = append(append([]VarKind(nil), old.Kind...), d.NewKind...)
		s.PtrCompat = append(append([]bool(nil), old.PtrCompat...), d.NewPtrCompat...)
	}
	s.Flags = make([]Flags, d.NewVars)
	copy(s.Flags, old.Flags)
	for _, fe := range d.RemovedFlags {
		if int(fe.Var) < len(s.Flags) {
			s.Flags[fe.Var] &^= fe.Bits
		}
	}
	for _, fe := range d.AddedFlags {
		if int(fe.Var) < len(s.Flags) {
			s.Flags[fe.Var] |= fe.Bits
		}
	}
	s.Base = applyEdgeDelta(old.Base, d.AddedBase, d.RemovedBase)
	s.Simple = applyEdgeDelta(old.Simple, d.AddedSimple, d.RemovedSimple)
	s.Load = applyEdgeDelta(old.Load, d.AddedLoad, d.RemovedLoad)
	s.Store = applyEdgeDelta(old.Store, d.AddedStore, d.RemovedStore)
	s.Funcs = applyFuncDelta(old.Funcs, d.AddedFuncs, d.RemovedFuncs)
	s.Calls = applyCallDelta(old.Calls, d.AddedCalls, d.RemovedCalls)
	return s
}

func applyEdgeDelta(old, added, removed []Edge) []Edge {
	out := make([]Edge, 0, len(old)+len(added)-len(removed))
	i := 0
	for _, e := range old {
		if i < len(removed) && removed[i] == e {
			i++
			continue
		}
		out = append(out, e)
	}
	out = append(out, added...)
	return sortedEdges(out)
}

func applyFuncDelta(old, added, removed []FuncConstraint) []FuncConstraint {
	out := make([]FuncConstraint, 0, len(old)+len(added))
	i := 0
	for _, f := range old {
		if i < len(removed) && varSeqEq(funcKey(removed[i]), funcKey(f)) {
			i++
			continue
		}
		out = append(out, f)
	}
	out = append(out, added...)
	return sortedFuncs(out)
}

func applyCallDelta(old, added, removed []CallConstraint) []CallConstraint {
	out := make([]CallConstraint, 0, len(old)+len(added))
	i := 0
	for _, c := range old {
		if i < len(removed) && varSeqEq(callKey(removed[i]), callKey(c)) {
			i++
			continue
		}
		out = append(out, c)
	}
	out = append(out, added...)
	return sortedCalls(out)
}
