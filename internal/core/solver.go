package core

import (
	"time"

	"github.com/pip-analysis/pip/internal/bitset"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/uf"
)

// funcC is a solver-local function constraint. In EP mode, imported
// functions carry external=true, standing for Func(f, Ω, ⋯, Ω).
type funcC struct {
	ret      VarID
	args     []VarID
	external bool
}

// callC is a solver-local call constraint. In EP mode, the Ω node carries
// one callC with external=true, standing for Call(Ω, Ω, ⋯): external
// modules may call every function they can reach.
type callC struct {
	ret      VarID
	args     []VarID
	external bool
}

// solver holds all mutable constraint-graph state during a solve.
type solver struct {
	cfg Config
	p   *Problem

	n     int   // variable count, including Ω in EP mode
	omega VarID // materialized Ω (EP) or NoVar (IP)

	forest *uf.Forest
	// pts[r] is Sol_e of representative r (nil for pointer-incompatible
	// variables, which have no points-to sets).
	pts []*bitset.Set
	// ptsShared[r] marks pts[r] as aliasing a previous generation's
	// checkpoint (copy-on-write restore): the set must be cloned before
	// its first mutation so the old Solution stays valid. Nil outside
	// resumed solves, making every ownership check a no-op from scratch.
	ptsShared []bool
	// succShared[r] is the same copy-on-write mark for succ[r]. Shared
	// successor sets additionally alias arena slots, so ResumeAdded
	// detaches them before returning (see the scrub defer there).
	succShared []bool
	// dif[r] is the difference-propagation delta of representative r.
	dif []*bitset.Set
	// succ[r] holds simple-edge successors of r (possibly stale ids).
	succ []*bitset.Set
	// loadTo[r] lists p with p ⊇ *r; storeFrom[r] lists q with *r ⊇ q.
	loadTo    [][]VarID
	storeFrom [][]VarID
	// callsAt[r] lists call constraints whose target is r.
	callsAt [][]callC
	// funcsAt[x] lists function constraints on the (never-merged pointee
	// identity) variable x.
	funcsAt [][]funcC

	// Pointee-side facts, per original variable id.
	external []bool // Ω ⊒ {x}
	impFunc  []bool // ImpFunc(x), IP mode

	// Pointer-side flags, per representative.
	repFlags []Flags

	// fullVisit[r] forces the next visit of r to iterate the full Sol_e
	// instead of the difference set (used when flags or topology change).
	fullVisit []bool

	// satVisit[r] records that r's Sol_e and points-external flag are
	// unchanged since the last stratified presaturation pass, so every
	// simple-edge successor already holds everything r could propagate;
	// visit skips the TRANS propagation for such nodes. Any mutation of
	// r's set or flags clears the mark. Always all-false on the
	// sequential path (SolveWorkers == 0).
	satVisit []bool

	ptrCompat []bool

	// ar is the scratch arena backing this solver's tables; iterBuf is
	// the visit-level pointee snapshot buffer it owns (visit is not
	// reentrant, so one buffer suffices).
	ar      *Arena
	iterBuf []uint32

	wl worklist
	// progress records whether any constraint was inferred since it was
	// last reset; the naive solver uses it to detect its fixed point.
	progress bool
	stats    SolveStats
	tel      Telemetry

	// tk is the solve's trace lane (zero when tracing is off: every
	// recording call below is then a single pointer test). The running
	// counters feed the sampled convergence profile — they are cheap
	// plain increments maintained unconditionally so the traced and
	// untraced solves execute the same code.
	tk obs.Track
	// pointeeAdds counts successful explicit-pointee insertions (growth
	// of ∑|Sol_e|, ignoring unification merges).
	pointeeAdds int64
	// extMarks counts variables marked externally accessible (growth of
	// |E|, the implicit side; IP mode).
	extMarks int64
	// flagMarks counts pointer-side flag inferences (p ⊒ Ω and friends).
	flagMarks int64
	// loopIters strides the convergence-profile sampling.
	loopIters uint64

	// Budget state: fired mirrors tel.Firings.Total() as a single counter
	// cheap enough to compare on every loop iteration; aborted latches
	// budget exhaustion; deadline is the absolute wall-clock cutoff (zero
	// time when no deadline is set); budgetTick rate-limits time.Now().
	fired      int64
	aborted    bool
	deadline   time.Time
	budgetTick uint32
	// collapseDepth guards the cycle-collapse timer against nested spans.
	collapseDepth int

	// LCD bookkeeping: edges already considered for lazy cycle detection.
	lcdDone map[uint64]bool
	// HCD offline table: hcdRef[p] = r means pointees of p collapse into r.
	hcdRef map[VarID]VarID
	// pendingHCDUnions defers unions discovered while merging HCD table
	// entries during unify; the worklist loop drains them.
	pendingHCDUnions [][2]VarID

	// scratch for cycle detection.
	visitMark []uint32
	markGen   uint32
}

// Solve runs analysis phase 2 on prob under configuration cfg.
func Solve(prob *Problem, cfg Config) (*Solution, error) {
	return SolveTraced(prob, cfg, obs.Track{})
}

// SolveTraced is Solve recording structured spans and events onto the
// given trace lane: phase spans (offline with OVS/HCD children, the solve
// loop, cycle collapses), per-collapse SCC events, wave boundaries,
// budget-stride samples, and the sampled convergence profile (worklist
// depth and explicit/implicit growth over time). The zero Track disables
// recording; the traced and untraced paths run the same solver code, so
// tracing never changes the solution.
func SolveTraced(prob *Problem, cfg Config, tk obs.Track) (*Solution, error) {
	return SolveTracedIn(prob, cfg, tk, nil)
}

// SolveTracedIn is SolveTraced drawing all solver scratch state from the
// given arena. A nil arena borrows one from an internal pool for the
// duration of the solve; engine workers pass their own arena so one
// allocation set is reused across every job the worker processes. The
// arena never changes the solution — only where scratch memory comes from.
func SolveTracedIn(prob *Problem, cfg Config, tk obs.Track, ar *Arena) (*Solution, error) {
	return solveTracedCapture(prob, cfg, tk, ar, nil)
}

// solveTracedCapture is the full solve pipeline with an optional hook that
// observes the solver's final state before the arena is released. The
// checkpointing path (checkpoint.go) uses it to snapshot the converged
// propagation state; capture runs only for exact (non-degraded) solves.
func solveTracedCapture(prob *Problem, cfg Config, tk obs.Track, ar *Arena, capture func(*solver)) (*Solution, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	// Chaos hook: the per-solve injection point sits after validation, so
	// an injected error is indistinguishable from a real internal solver
	// failure to the layers above (engine retry, serve error mapping).
	if err := faults.Inject(faults.CoreSolve); err != nil {
		return nil, err
	}
	if ar == nil {
		pooled := arenaPool.Get().(*Arena)
		// The deferred Put runs when this solve stops using the arena —
		// normal return or unwinding panic — and an abandoned (watchdogged)
		// solve reaches it only when it actually finishes, so an arena is
		// never pooled while in use. Dirt left by a panic is harmless:
		// reset-at-acquire clears everything before the next solve reads it.
		defer arenaPool.Put(pooled)
		ar = pooled
	}
	start := time.Now()
	s := newSolver(prob, cfg, ar)
	s.tk = tk
	if cfg.Budget.Deadline > 0 {
		s.deadline = start.Add(cfg.Budget.Deadline)
	}
	solveSpan := tk.Begin("solve",
		obs.S("config", cfg.String()),
		obs.N("vars", int64(prob.NumVars())),
		obs.N("constraints", int64(prob.NumConstraints())))
	offSpan := tk.Begin("offline")
	if cfg.OVS {
		sp := tk.Begin("ovs")
		s.runOVS()
		sp.End(obs.N("unifications", int64(s.stats.Unifications)))
	}
	if cfg.HCD {
		sp := tk.Begin("hcd-offline")
		s.runHCDOffline()
		sp.End(obs.N("table", int64(len(s.hcdRef))))
	}
	offSpan.End()
	s.tel.Offline = time.Since(start)
	solveStart := time.Now()
	propSpan := tk.Begin("propagate")
	s.seed()
	switch cfg.Solver {
	case Naive:
		s.solveNaive()
	case Wave:
		s.solveWave()
	default:
		s.solveWorklist()
	}
	propSpan.End(obs.N("firings", s.fired), obs.N("visits", int64(s.stats.Visits)))
	ar.iterBuf = s.iterBuf[:0] // hand the grown snapshot buffer back for reuse
	s.recycleWorklist()
	// Propagation time is the solve loop minus the collapse spans timed
	// inside it.
	if s.tel.Propagate = time.Since(solveStart) - s.tel.Collapse; s.tel.Propagate < 0 {
		s.tel.Propagate = 0
	}
	var sol *Solution
	if s.aborted {
		// Budget exhausted: fall back to the trivially sound Ω-degraded
		// solution, built from the problem alone so the answer does not
		// depend on where the abort happened.
		sol = degradedSolution(prob)
		sol.Stats = s.stats
		sol.Stats.ExplicitPointees = 0
	} else {
		fin := tk.Begin("finish")
		sol = s.finish()
		fin.End()
		if capture != nil {
			capture(s)
		}
	}
	s.sampleConvergence()
	s.tel.Degraded = sol.Degraded
	sol.Telemetry = s.tel
	sol.Stats.Duration = time.Since(start)
	solveSpan.End(
		obs.N("degraded", boolArg(sol.Degraded)),
		obs.N("explicit_pointees", int64(sol.Stats.ExplicitPointees)))
	return sol, nil
}

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// sampleConvergence records one convergence-profile sample: current
// worklist depth, cumulative explicit-pointee insertions, external marks
// (the implicit side), flag inferences, and total rule firings.
func (s *solver) sampleConvergence() {
	if !s.tk.Enabled() {
		return
	}
	depth := 0
	if s.wl != nil {
		depth = s.wl.size()
	}
	s.tk.Count("worklist_depth", int64(depth))
	s.tk.Count("explicit_pointees", s.pointeeAdds)
	s.tk.Count("escaped_marks", s.extMarks)
	s.tk.Count("flag_marks", s.flagMarks)
	s.tk.Count("firings", s.fired)
}

// MustSolve is Solve that panics on error; for tests and examples.
func MustSolve(prob *Problem, cfg Config) *Solution {
	sol, err := Solve(prob, cfg)
	if err != nil {
		panic(err)
	}
	return sol
}

func newSolver(prob *Problem, cfg Config, ar *Arena) *solver {
	n := prob.NumVars()
	omega := NoVar
	if cfg.Rep == EP {
		omega = VarID(n)
		n++
	}
	ar.reset(n)
	// pts and external escape into the returned Solution, so they are the
	// two tables that must always be freshly allocated; everything else is
	// arena-backed scratch that dies with the solver.
	s := &solver{
		cfg:       cfg,
		p:         prob,
		n:         n,
		omega:     omega,
		forest:    ar.forest,
		pts:       make([]*bitset.Set, n),
		succ:      ar.succ,
		loadTo:    ar.loadTo,
		storeFrom: ar.storeFrom,
		callsAt:   ar.callsAt,
		funcsAt:   ar.funcsAt,
		external:  make([]bool, n),
		impFunc:   ar.impFunc,
		repFlags:  ar.repFlags,
		fullVisit: ar.fullVisit,
		satVisit:  ar.satVisit,
		ptrCompat: ar.ptrCompat,
		visitMark: ar.visitMark,
		ar:        ar,
		iterBuf:   ar.iterBuf[:0],
	}
	if cfg.DP {
		s.dif = ar.dif
	}
	copy(s.ptrCompat, prob.PtrCompat)
	if omega != NoVar {
		s.ptrCompat[omega] = true
	}
	return s
}

func (s *solver) find(v VarID) VarID { return s.forest.Find(v) }

func (s *solver) ptsOf(r VarID) *bitset.Set {
	if s.pts[r] == nil {
		s.pts[r] = &bitset.Set{}
	} else if s.ptsShared != nil && s.ptsShared[r] {
		s.pts[r] = s.pts[r].Clone()
		s.ptsShared[r] = false
	}
	return s.pts[r]
}

func (s *solver) difOf(r VarID) *bitset.Set {
	if s.dif[r] == nil {
		s.dif[r] = &bitset.Set{}
	}
	return s.dif[r]
}

func (s *solver) succOf(r VarID) *bitset.Set {
	if s.succ[r] == nil {
		s.succ[r] = &bitset.Set{}
	}
	return s.succ[r]
}

// ownSucc returns r's successor set for mutation, cloning it first if it
// is still shared with a checkpoint.
func (s *solver) ownSucc(r VarID) *bitset.Set {
	if s.succ[r] == nil {
		s.succ[r] = &bitset.Set{}
	} else if s.succShared != nil && s.succShared[r] {
		s.succ[r] = s.succ[r].Clone()
		s.succShared[r] = false
	}
	return s.succ[r]
}

// addSucc inserts the simple edge rs→rd, cloning a checkpoint-shared
// successor set only when the edge is genuinely new — re-seeding after a
// resume re-installs every existing edge, and those no-op inserts must
// not break the sharing.
func (s *solver) addSucc(rs, rd VarID) bool {
	if set := s.succ[rs]; set != nil && s.succShared != nil && s.succShared[rs] && set.Contains(rd) {
		return false
	}
	return s.ownSucc(rs).Add(rd)
}

// hasFlag reports a pointer-side flag on v's representative.
func (s *solver) hasFlag(v VarID, bit Flags) bool {
	return s.repFlags[s.find(v)]&bit != 0
}

// setFlag sets a pointer-side flag on v's representative, enqueues it on
// change, and reports whether anything changed.
func (s *solver) setFlag(v VarID, bit Flags) bool {
	r := s.find(v)
	if s.repFlags[r]&bit == bit {
		return false
	}
	s.repFlags[r] |= bit
	s.fullVisit[r] = true
	s.satVisit[r] = false
	s.flagMarks++
	s.fire(&s.tel.Firings.Flag)
	s.noteProgress()
	s.enqueue(r)
	return true
}

func (s *solver) enqueue(r VarID) {
	if s.wl != nil {
		s.wl.push(r)
	}
}

// seed loads the problem's constraints into the solver state.
func (s *solver) seed() {
	prob := s.p
	// Base constraints go directly into Sol_e (paper Section V-B).
	for _, e := range prob.Base {
		dst := s.find(e.Dst)
		if !s.ptrCompat[dst] {
			continue
		}
		s.addPointee(dst, e.Src)
	}
	for _, e := range prob.Simple {
		s.addEdgeInit(e.Src, e.Dst)
	}
	for _, e := range prob.Load {
		// Dst ⊇ *Src: attach to the pointer Src.
		r := s.find(e.Src)
		s.loadTo[r] = append(s.loadTo[r], e.Dst)
	}
	for _, e := range prob.Store {
		// *Dst ⊇ Src: attach to the pointer Dst.
		r := s.find(e.Dst)
		s.storeFrom[r] = append(s.storeFrom[r], e.Src)
	}
	for _, fc := range prob.Funcs {
		s.funcsAt[fc.F] = append(s.funcsAt[fc.F], funcC{ret: fc.Ret, args: fc.Args})
	}
	for _, cc := range prob.Calls {
		r := s.find(cc.Target)
		s.callsAt[r] = append(s.callsAt[r], callC{ret: cc.Ret, args: cc.Args})
	}

	if s.cfg.Rep == EP {
		s.seedEP()
	} else {
		s.seedIP()
	}
}

// seedIP installs the initial flags and runs MarkExternallyAccessible on
// every initially external location (Algorithm 1 preamble).
func (s *solver) seedIP() {
	prob := s.p
	for v := VarID(0); v < VarID(prob.NumVars()); v++ {
		f := prob.Flags[v]
		if f == 0 {
			continue
		}
		if f&FlagImpFunc != 0 {
			s.impFunc[v] = true
		}
		r := s.find(v)
		if s.ptrCompat[r] {
			s.repFlags[r] |= f & (FlagPointsExt | FlagEscapedPointees | FlagStoreScalar | FlagLoadScalar)
		}
		if f&FlagExternal != 0 {
			s.markExternallyAccessible(v)
		}
	}
}

// seedEP materializes the Ω node and translates the flag constraints into
// the original constraint language (Section III-B, Table II "Old" column).
func (s *solver) seedEP() {
	prob := s.p
	o := s.omega
	// Ω ⊇ {Ω}: external pointers may target external memory.
	s.addPointee(s.find(o), o)
	// Ω ⊇ *Ω and *Ω ⊇ Ω: self load/store edges.
	s.loadTo[s.find(o)] = append(s.loadTo[s.find(o)], o)
	s.storeFrom[s.find(o)] = append(s.storeFrom[s.find(o)], o)
	// Call_e: external modules call everything Ω can reach.
	s.callsAt[s.find(o)] = append(s.callsAt[s.find(o)], callC{ret: o, external: true})
	// Func_e on Ω: indirect calls through unknown pointers reach external
	// functions.
	s.funcsAt[o] = append(s.funcsAt[o], funcC{ret: o, external: true})

	for v := VarID(0); v < VarID(prob.NumVars()); v++ {
		f := prob.Flags[v]
		if f == 0 {
			continue
		}
		if f&FlagExternal != 0 {
			s.addPointee(s.find(o), v)
		}
		if f&FlagImpFunc != 0 {
			s.funcsAt[v] = append(s.funcsAt[v], funcC{ret: o, external: true})
		}
		if s.ptrCompat[s.find(v)] {
			if f&FlagPointsExt != 0 {
				s.addEdgeInit(o, v)
			}
			if f&FlagEscapedPointees != 0 {
				s.addEdgeInit(v, o)
			}
		}
		if f&FlagStoreScalar != 0 {
			r := s.find(v)
			s.storeFrom[r] = append(s.storeFrom[r], o)
		}
		if f&FlagLoadScalar != 0 {
			r := s.find(v)
			s.loadTo[r] = append(s.loadTo[r], o)
		}
	}
}

// addPointee inserts x into Sol_e(r) (r must be a representative), keeping
// the difference set in sync. Reports change.
func (s *solver) addPointee(r, x VarID) bool {
	if !s.ptsOf(r).Add(x) {
		return false
	}
	s.pointeeAdds++
	s.satVisit[r] = false
	if s.cfg.DP {
		s.difOf(r).Add(x)
	}
	return true
}

// addEdgeInit installs a phase-1 simple edge src→dst without any online
// processing (the initial worklist pass propagates everything).
func (s *solver) addEdgeInit(src, dst VarID) {
	rs, rd := s.find(src), s.find(dst)
	if rs == rd {
		return
	}
	// Pointer-incompatible endpoints become pointer-integer conversions
	// (paper Section V-B).
	if !s.edgeCompat(&rs, &rd) {
		return
	}
	s.addSucc(rs, rd)
}

// edgeCompat normalizes an edge whose endpoint is pointer incompatible.
// It reports whether a real edge should still be added (both endpoints
// compatible after normalization). It may rewrite endpoints to Ω in EP
// mode.
func (s *solver) edgeCompat(src, dst *VarID) bool {
	sOK, dOK := s.ptrCompat[*src], s.ptrCompat[*dst]
	if sOK && dOK {
		return true
	}
	if s.cfg.Rep == EP {
		// Treat the incompatible endpoint as Ω itself (Section V-B:
		// "x is unified with Ω").
		if !sOK {
			*src = s.find(s.omega)
		}
		if !dOK {
			*dst = s.find(s.omega)
		}
		return *src != *dst
	}
	// IP mode: dst ⊇ x becomes dst ⊒ Ω; x ⊇ src becomes Ω ⊒ src.
	if !sOK && dOK {
		s.setFlag(*dst, FlagPointsExt)
	}
	if sOK && !dOK {
		s.setFlag(*src, FlagEscapedPointees)
	}
	return false
}

// markExternallyAccessible implements MARKEXTERNALLYACCESSIBLE(x) from
// Algorithm 1: x joins E, gains x ⊒ Ω and Ω ⊒ x, and if x is a function,
// its return value escapes and its parameters gain unknown origins.
// IP mode only.
func (s *solver) markExternallyAccessible(x VarID) {
	if s.external[x] {
		return
	}
	s.external[x] = true
	s.extMarks++
	s.noteProgress()
	if s.ptrCompat[s.find(x)] {
		s.setFlag(x, FlagPointsExt)
		s.setFlag(x, FlagEscapedPointees)
	}
	for _, fc := range s.funcsAt[x] {
		if fc.ret != NoVar && s.ptrCompat[s.find(fc.ret)] {
			s.setFlag(fc.ret, FlagEscapedPointees)
		}
		for _, a := range fc.args {
			if a != NoVar && s.ptrCompat[s.find(a)] {
				s.setFlag(a, FlagPointsExt)
			}
		}
	}
	s.enqueue(s.find(x))
}

// callToImported implements CALLTOIMPORTED(r, a1..ak) from Algorithm 1:
// the call's result has unknown origin and its arguments escape. IP mode.
func (s *solver) callToImported(c callC) {
	if c.ret != NoVar && s.ptrCompat[s.find(c.ret)] {
		s.setFlag(c.ret, FlagPointsExt)
	}
	for _, a := range c.args {
		if a != NoVar && s.ptrCompat[s.find(a)] {
			s.setFlag(a, FlagEscapedPointees)
		}
	}
}

// unify merges the constraint-graph nodes of a and b (cycle elimination,
// Section II-D). The surviving representative keeps the merged Sol_e,
// flags, edges, and call constraints, and is re-enqueued.
func (s *solver) unify(a, b VarID) VarID {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return ra
	}
	w := s.forest.Union(ra, rb)
	l := ra
	if w == ra {
		l = rb
	}
	s.stats.Unifications++
	s.noteProgress()
	if s.pts[l] != nil {
		if s.pts[w] == nil {
			s.pts[w] = s.pts[l]
			if s.ptsShared != nil {
				s.ptsShared[w] = s.ptsShared[l]
			}
		} else {
			s.ptsOf(w).UnionWith(s.pts[l])
		}
		s.pts[l] = nil
		if s.ptsShared != nil {
			s.ptsShared[l] = false
		}
	}
	if s.cfg.DP && s.dif[l] != nil {
		if s.dif[w] == nil {
			s.dif[w] = s.dif[l]
		} else {
			s.dif[w].UnionWith(s.dif[l])
		}
		s.dif[l] = nil
	}
	if s.succ[l] != nil {
		if s.succ[w] == nil {
			s.succ[w] = s.succ[l]
			if s.succShared != nil {
				s.succShared[w] = s.succShared[l]
			}
		} else {
			s.ownSucc(w).UnionWith(s.succ[l])
		}
		s.succ[l] = nil
		if s.succShared != nil {
			s.succShared[l] = false
		}
	}
	s.loadTo[w] = append(s.loadTo[w], s.loadTo[l]...)
	s.loadTo[l] = nil
	s.storeFrom[w] = append(s.storeFrom[w], s.storeFrom[l]...)
	s.storeFrom[l] = nil
	s.callsAt[w] = append(s.callsAt[w], s.callsAt[l]...)
	s.callsAt[l] = nil
	s.repFlags[w] |= s.repFlags[l]
	s.ptrCompat[w] = s.ptrCompat[w] || s.ptrCompat[l]
	if s.hcdRef != nil {
		if rl, ok := s.hcdRef[l]; ok {
			if rw, ok2 := s.hcdRef[w]; ok2 {
				// Both halves had HCD partners: they must collapse too.
				s.pendingHCDUnions = append(s.pendingHCDUnions, [2]VarID{rl, rw})
			} else {
				s.hcdRef[w] = rl
			}
			delete(s.hcdRef, l)
		}
	}
	s.fullVisit[w] = true
	s.satVisit[w] = false
	s.enqueue(w)
	return w
}

// finish assembles the Solution.
func (s *solver) finish() *Solution {
	sol := &Solution{
		p:         s.p,
		repOf:     make([]VarID, s.n),
		pts:       s.pts,
		pointsExt: make([]bool, s.n),
		external:  s.external,
		omega:     s.omega,
	}
	// Flatten the union-find forest into a plain representative table so
	// solution queries never path-compress (write) shared state.
	for v := 0; v < s.n; v++ {
		sol.repOf[v] = s.find(VarID(v))
	}
	for r := 0; r < s.n; r++ {
		sol.pointsExt[r] = s.repFlags[r]&FlagPointsExt != 0
	}
	sol.Stats = s.stats
	sol.Stats.ExplicitPointees = sol.CountExplicitPointees()
	seen := make([]bool, s.n)
	edges := 0
	for v := 0; v < s.n; v++ {
		r := s.find(VarID(v))
		if !seen[r] {
			seen[r] = true
			if s.succ[r] != nil {
				edges += s.succ[r].Len()
			}
		}
	}
	sol.Stats.SimpleEdges = edges
	return sol
}
