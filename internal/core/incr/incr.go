// Package incr orchestrates incremental re-solving: it persists the
// summary and checkpoint of the last solved generation of a module and,
// on resubmission, diffs the new constraint set against the summary to
// decide between three paths —
//
//  1. reuse: the delta is empty (e.g. a pure rename — names are not part
//     of the summary), so the previous solution is returned as-is;
//  2. resume: the delta only adds constraints and the configuration is
//     checkpointable, so the solver resumes from the persisted
//     propagation state and drains only the additions;
//  3. fallback: deletions, retyped variables, or a non-resumable
//     configuration invalidate the monotone state, so a from-scratch
//     solve runs (and re-establishes the checkpoint for the next
//     generation).
//
// States are immutable: Update returns a new State, so callers can keep
// multiple generations alive (the engine's cache keys include the
// generation for exactly this reason).
package incr

import (
	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/obs"
)

// State is one solved generation of a module: the problem, its diffable
// summary, the solution, and — when the configuration allows it — the
// checkpointed propagation state the next generation can resume from.
type State struct {
	// Generation counts solves in this lineage, starting at 0.
	Generation int
	// Config is the solve configuration; every generation uses the same
	// one (a config change is a different lineage).
	Config core.Config
	// Problem is the generation's constraint problem.
	Problem *core.Problem
	// Summary is Problem's canonical diffable form.
	Summary *core.ProblemSummary
	// Sol is the generation's solution.
	Sol *core.Solution

	ck *core.Checkpoint
}

// UpdateStats reports which path an Update took and how much work it
// reused.
type UpdateStats struct {
	// Generation is the new state's generation number.
	Generation int `json:"generation"`
	// ReusedSolution is set when the delta was empty and the previous
	// solution was returned without solving.
	ReusedSolution bool `json:"reused_solution"`
	// Resumed is set when the solve resumed from the checkpoint instead
	// of starting from scratch.
	Resumed bool `json:"resumed"`
	// FallbackReason is non-empty when a from-scratch solve ran: why the
	// incremental path was unavailable.
	FallbackReason string `json:"fallback_reason,omitempty"`
	// Added and Removed count constraint-level delta entries (flag bits
	// included); Reused counts the new problem's constraints carried over
	// from the previous generation, and FullConstraints the new problem's
	// total.
	Added           int `json:"added"`
	Removed         int `json:"removed"`
	Reused          int `json:"reused"`
	FullConstraints int `json:"full_constraints"`
}

// Checkpointed reports whether the state carries resumable propagation
// state for the next Update.
func (st *State) Checkpointed() bool { return st.ck != nil }

// New solves p from scratch under cfg and establishes the first
// generation. The solve is checkpointed when cfg is core.Resumable (and
// the solve completed exactly), so the following Update can resume.
func New(p *core.Problem, cfg core.Config) (*State, error) {
	return NewTraced(p, cfg, obs.Track{}, nil)
}

// NewTraced is New with a trace lane and an optional solver arena.
func NewTraced(p *core.Problem, cfg core.Config, tk obs.Track, ar *core.Arena) (*State, error) {
	sol, ck, err := core.SolveCheckpointed(p, cfg, tk, ar)
	if err != nil {
		return nil, err
	}
	return &State{
		Config:  cfg,
		Problem: p,
		Summary: core.BuildSummary(p),
		Sol:     sol,
		ck:      ck,
	}, nil
}

// Update solves the resubmitted problem p, reusing as much of st as the
// summary delta allows. st is not modified; the returned State is the new
// generation.
func (st *State) Update(p *core.Problem) (*State, *UpdateStats, error) {
	return st.UpdateTraced(p, obs.Track{}, nil)
}

// UpdateTraced is Update with a trace lane and an optional solver arena.
func (st *State) UpdateTraced(p *core.Problem, tk obs.Track, ar *core.Arena) (*State, *UpdateStats, error) {
	sum := core.BuildSummary(p)
	d := core.DiffSummaries(st.Summary, sum)
	stats := &UpdateStats{
		Generation:      st.Generation + 1,
		Added:           d.Added(),
		Removed:         d.Removed(),
		FullConstraints: sum.NumConstraints(),
	}
	stats.Reused = stats.FullConstraints - stats.Added

	if d.Empty() {
		// Constraint-identical resubmission (renames included): the old
		// solution answers the new problem; only the name table differs.
		stats.ReusedSolution = true
		return &State{
			Generation: st.Generation + 1,
			Config:     st.Config,
			Problem:    p,
			Summary:    sum,
			Sol:        st.Sol.WithProblem(p),
			ck:         st.ck,
		}, stats, nil
	}

	if reason := st.resumeBlocked(d, p); reason != "" {
		stats.FallbackReason = reason
		return st.fallback(p, sum, tk, ar, stats)
	}
	sol, ck, err := st.ck.ResumeAdded(p, d, tk, ar)
	if err != nil {
		// ResumeAdded re-checks its preconditions; any refusal falls back
		// to the sound from-scratch path rather than failing the request.
		stats.FallbackReason = err.Error()
		return st.fallback(p, sum, tk, ar, stats)
	}
	stats.Resumed = true
	return &State{
		Generation: st.Generation + 1,
		Config:     st.Config,
		Problem:    p,
		Summary:    sum,
		Sol:        sol,
		ck:         ck,
	}, stats, nil
}

// resumeBlocked explains why the incremental path cannot run for this
// delta, or returns "" when it can.
func (st *State) resumeBlocked(d *core.SummaryDelta, p *core.Problem) string {
	switch {
	case st.ck == nil:
		if !core.Resumable(st.Config) {
			return "config not resumable"
		}
		return "no checkpoint (previous solve degraded)"
	case d.Retyped:
		return "variables retyped"
	case d.Removed() > 0 || p.NumVars() < st.Problem.NumVars():
		return "removals invalidate monotone state"
	case st.Config.Rep == core.EP && p.NumVars() > st.Problem.NumVars():
		return "variable universe grew under explicit-Ω"
	}
	return ""
}

// fallback runs the from-scratch solve and packages the new generation.
func (st *State) fallback(p *core.Problem, sum *core.ProblemSummary, tk obs.Track, ar *core.Arena, stats *UpdateStats) (*State, *UpdateStats, error) {
	sol, ck, err := core.SolveCheckpointed(p, st.Config, tk, ar)
	if err != nil {
		return nil, nil, err
	}
	stats.Reused = 0
	return &State{
		Generation: st.Generation + 1,
		Config:     st.Config,
		Problem:    p,
		Summary:    sum,
		Sol:        sol,
		ck:         ck,
	}, stats, nil
}
