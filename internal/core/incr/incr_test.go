package incr

import (
	"testing"

	"github.com/pip-analysis/pip/internal/core"
)

func buildProblem() *core.Problem {
	p := core.NewProblem()
	a := p.AddVar("a", core.Register, true)
	b := p.AddVar("b", core.Register, true)
	m := p.AddVar("m", core.Memory, true)
	n := p.AddVar("n", core.Memory, true)
	p.AddBase(a, m)
	p.AddSimple(b, a)
	p.AddStore(b, a)
	p.AddLoad(b, a)
	p.SetFlag(n, core.FlagExternal)
	return p
}

func TestUpdatePaths(t *testing.T) {
	cfg := core.Config{Rep: core.IP, Solver: core.Worklist}
	st, err := New(buildProblem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Checkpointed() {
		t.Fatal("resumable config should checkpoint")
	}

	// Rename-only resubmission: empty delta, solution reused.
	renamed := buildProblem()
	renamed.Names[0] = "a_renamed"
	st1, stats, err := st.Update(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ReusedSolution || stats.Resumed || stats.Added != 0 {
		t.Fatalf("rename should reuse the solution, got %+v", stats)
	}
	if st1.Generation != 1 || st1.Sol.Problem() != renamed {
		t.Fatal("reused solution should resolve against the new problem")
	}

	// Added constraint: resumed, fingerprint identical to scratch.
	grown := buildProblem()
	v := grown.AddVar("p", core.Register, true)
	w := grown.AddVar("q", core.Memory, true)
	grown.AddBase(v, w)
	grown.AddSimple(core.VarID(grown.NumVars()-2), 0)
	st2, stats, err := st1.Update(grown)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Resumed || stats.FallbackReason != "" {
		t.Fatalf("monotone growth should resume, got %+v", stats)
	}
	if stats.Added == 0 || stats.Reused == 0 {
		t.Fatalf("resume stats should count added and reused constraints: %+v", stats)
	}
	ref := core.MustSolve(grown, cfg)
	if st2.Sol.Fingerprint() != ref.Fingerprint() {
		t.Fatal("resumed solution differs from scratch")
	}

	// Removal: falls back to a full solve but still answers exactly.
	shrunk := buildProblem()
	shrunk.Simple = nil
	st3, stats, err := st1.Update(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed || stats.ReusedSolution || stats.FallbackReason == "" {
		t.Fatalf("removal should fall back, got %+v", stats)
	}
	if st3.Sol.Fingerprint() != core.MustSolve(shrunk, cfg).Fingerprint() {
		t.Fatal("fallback solution differs from scratch")
	}
	if !st3.Checkpointed() {
		t.Fatal("fallback should re-establish the checkpoint")
	}
}

func TestUpdateNonResumableConfig(t *testing.T) {
	cfg := core.Config{Rep: core.IP, Solver: core.Worklist, PIP: true}
	st, err := New(buildProblem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpointed() {
		t.Fatal("PIP config should not checkpoint")
	}
	grown := buildProblem()
	grown.AddSimple(0, 1)
	st1, stats, err := st.Update(grown)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed || stats.FallbackReason == "" {
		t.Fatalf("non-resumable config should fall back, got %+v", stats)
	}
	if st1.Sol.Fingerprint() != core.MustSolve(grown, cfg).Fingerprint() {
		t.Fatal("fallback solution differs from scratch")
	}

	// Rename-only reuse works even without a checkpoint.
	renamed := buildProblem()
	renamed.Names[1] = "other"
	_, stats, err = st.Update(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ReusedSolution {
		t.Fatalf("empty delta should reuse regardless of checkpointability: %+v", stats)
	}
}

func TestUpdateChainedGenerations(t *testing.T) {
	cfg := core.Config{Rep: core.IP, Solver: core.Worklist, Order: core.Topo, DP: true}
	p := buildProblem()
	st, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cur := p
	for gen := 1; gen <= 5; gen++ {
		next := cur.Clone()
		v := next.AddVar("", core.Register, true)
		m := next.AddVar("", core.Memory, true)
		next.AddBase(v, m)
		next.AddSimple(v, core.VarID(gen%next.NumVars()))
		st2, stats, err := st.Update(next)
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if !stats.Resumed {
			t.Fatalf("gen %d should resume, got %+v", gen, stats)
		}
		if st2.Generation != gen {
			t.Fatalf("gen %d: got generation %d", gen, st2.Generation)
		}
		if st2.Sol.Fingerprint() != core.MustSolve(next, cfg).Fingerprint() {
			t.Fatalf("gen %d: resumed solution differs from scratch", gen)
		}
		st, cur = st2, next
	}
}

func TestUpdateRetypedAndEPGrowth(t *testing.T) {
	// Retyped variable: same counts, different kind — non-monotone.
	cfg := core.Config{Rep: core.IP, Solver: core.Worklist}
	st, err := New(buildProblem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	retyped := buildProblem()
	retyped.Kind[0] = core.Memory
	_, stats, err := st.Update(retyped)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed || stats.FallbackReason == "" {
		t.Fatalf("retyped variable should fall back, got %+v", stats)
	}

	// Universe growth under the explicit-Ω representation: Ω's id would
	// shift, so the checkpoint cannot be reused.
	epCfg := core.Config{Rep: core.EP, Solver: core.Worklist}
	stEP, err := New(buildProblem(), epCfg)
	if err != nil {
		t.Fatal(err)
	}
	grown := buildProblem()
	v := grown.AddVar("x", core.Register, true)
	grown.AddSimple(v, 0)
	st1, stats, err := stEP.Update(grown)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed || stats.FallbackReason == "" {
		t.Fatalf("EP universe growth should fall back, got %+v", stats)
	}
	if st1.Sol.Fingerprint() != core.MustSolve(grown, epCfg).Fingerprint() {
		t.Fatal("EP fallback solution differs from scratch")
	}
}

func TestUpdateInvalidProblem(t *testing.T) {
	cfg := core.Config{Rep: core.IP, Solver: core.Worklist}
	bad := buildProblem()
	bad.Simple = append(bad.Simple, core.Edge{Dst: 0, Src: 99}) // dangling id
	if _, err := New(bad, cfg); err == nil {
		t.Fatal("New accepted an invalid problem")
	}
	st, err := New(buildProblem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The resume path rejects the invalid problem, and so does the
	// from-scratch fallback: Update must surface the error, not panic.
	if _, _, err := st.Update(bad); err == nil {
		t.Fatal("Update accepted an invalid problem")
	}
}
