package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/pip-analysis/pip/internal/bitset"
)

// Budget bounds the work a single Solve may perform. The paper's soundness
// story for incomplete programs (Section III) means the analysis can always
// fall back to "everything escapes" without becoming wrong: Ω already
// stands for all memory the analysis cannot see, so a solve that runs out
// of budget may report the trivially sound Ω-degraded solution instead of
// its exact fixed point. A budgeted solve therefore always returns a sound
// answer in bounded time, which is what makes the solver safe to run
// against adversarial inputs from untrusted users.
//
// The zero value means "no budget": the solve runs to its exact fixed
// point, byte-identical to an unbudgeted solve.
type Budget struct {
	// Deadline is a wall-clock limit on the solve. Zero means no limit.
	// The limit is checked at worklist-loop granularity, so the solve
	// returns within the deadline plus the duration of one node visit.
	Deadline time.Duration
	// Firings caps the number of constraint-rule firings (inference-rule
	// applications, summed over all rules — see RuleFirings). Zero means
	// no cap; a negative cap permits no firings at all, degrading the
	// solve immediately. Unlike Deadline, a firing cap is deterministic:
	// the same problem under the same configuration either always or
	// never degrades.
	Firings int64
}

// IsZero reports whether the budget imposes no limit.
func (b Budget) IsZero() bool { return b == Budget{} }

// Validate reports whether the budget is well formed.
func (b Budget) Validate() error {
	if b.Deadline < 0 {
		return fmt.Errorf("budget deadline is negative")
	}
	return nil
}

// String renders the budget in the notation embedded in Config.String:
// "10ms", "5000f", or "10ms,5000f". The zero budget renders as "".
func (b Budget) String() string {
	var parts []string
	if b.Deadline != 0 {
		parts = append(parts, b.Deadline.String())
	}
	if b.Firings != 0 {
		parts = append(parts, strconv.FormatInt(b.Firings, 10)+"f")
	}
	return strings.Join(parts, ",")
}

// ParseBudget parses the String notation back into a Budget: a duration
// ("100ms"), a firing cap ("5000f"), or both separated by a comma.
func ParseBudget(s string) (Budget, error) {
	var b Budget
	if s == "" {
		return b, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case strings.HasSuffix(tok, "f"):
			n, err := strconv.ParseInt(tok[:len(tok)-1], 10, 64)
			if err != nil {
				return b, fmt.Errorf("bad firing cap %q", tok)
			}
			b.Firings = n
		default:
			d, err := time.ParseDuration(tok)
			if err != nil {
				return b, fmt.Errorf("bad budget component %q", tok)
			}
			b.Deadline = d
		}
	}
	if err := b.Validate(); err != nil {
		return b, err
	}
	return b, nil
}

// BudgetFromContext tightens base so a solve started now finishes within
// the context's deadline: the effective wall-clock limit is the smaller of
// base.Deadline and the time remaining until ctx's deadline. A context
// without a deadline leaves base unchanged; a context whose deadline has
// already passed yields the no-firings budget, which degrades before any
// propagation work (the wall-clock check is strided for cheapness, so a
// tiny positive deadline could let a small solve run to completion — the
// firing cap cannot). Either way the caller gets the sound Ω-degraded
// solution instead of an error or a wasted solve.
//
// This is how a server maps request deadlines onto solver budgets: an
// overloaded or slow request degrades soundly inside its deadline rather
// than timing out with nothing.
func BudgetFromContext(ctx context.Context, base Budget) Budget {
	d, ok := ctx.Deadline()
	if !ok {
		return base
	}
	remaining := time.Until(d)
	if remaining <= 0 {
		base.Firings = -1
		return base
	}
	if base.Deadline == 0 || remaining < base.Deadline {
		base.Deadline = remaining
	}
	return base
}

// degradedSolution builds the trivially sound Ω-degraded solution for a
// problem: every variable is marked externally accessible and every
// pointer-compatible variable is Ω-tainted (x ⊒ Ω), with no explicit
// pointees at all. Sol(p) then covers every abstract location plus Ω, a
// superset of any sound solution of the problem, so a budget-exhausted
// solve may return it in place of the exact fixed point. (The escaped set
// covers registers too, not just memory locations: the constraint language
// allows Ω ⊒ {x} on any variable via SetFlag, so the top element must as
// well.)
//
// The construction reads only the Problem, never the aborted solver state,
// so the degraded answer is identical no matter where the abort happened.
//
// DegradedSolution is the exported form. The engine's resilience layer
// uses it to answer for solves it had to abandon (watchdog timeouts,
// exhausted retries): the Ω top element is sound for the problem
// regardless of what the stuck or failed solve had done.
func DegradedSolution(p *Problem) *Solution { return degradedSolution(p) }

func degradedSolution(p *Problem) *Solution {
	n := p.NumVars()
	sol := &Solution{
		p:         p,
		repOf:     make([]VarID, n),
		pts:       make([]*bitset.Set, n),
		pointsExt: make([]bool, n),
		external:  make([]bool, n),
		omega:     NoVar,
		Degraded:  true,
	}
	for v := 0; v < n; v++ {
		sol.repOf[v] = VarID(v)
		sol.pointsExt[v] = p.PtrCompat[v]
		sol.external[v] = true
	}
	return sol
}
