package core

import (
	"testing"

	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
)

// Deterministic in-package tests for the stratified presaturation pass.
// The cross-package differential harness proves worker-count bit-identity
// at scale; these pin the branches of the pass itself — the chunked
// fan-out with per-worker trace lanes, cycle components whose leader has
// no explicit pointees, the deterministic budget abort at a stratum
// boundary, and the chaos hook.

// strataTestProblem builds 12 parallel chains of 8 variables (96 vars,
// comfortably past presatMinVars) so every stratum level holds 12
// components — enough to engage the chunked worker fan-out — plus a
// two-variable cycle whose base fact sits on the non-leader member and
// which points twice at the same downstream component (exercising the
// consecutive-edge dedupe in buildStrata).
func strataTestProblem() *Problem {
	p := NewProblem()
	const chains, depth = 12, 8
	vars := make([][]VarID, chains)
	for c := range vars {
		vars[c] = make([]VarID, depth)
		for d := range vars[c] {
			vars[c][d] = p.AddVar("", Memory, true)
		}
	}
	for c := range vars {
		p.AddBase(vars[c][0], vars[c][0])
		for d := 1; d < depth; d++ {
			p.AddSimple(vars[c][d], vars[c][d-1])
		}
	}
	// Cycle {a, b} with the base fact on b: Tarjan's leader is the
	// smaller id a, whose points-to set starts nil inside processComp.
	a := p.AddVar("", Memory, true)
	b := p.AddVar("", Memory, true)
	p.AddSimple(a, b)
	p.AddSimple(b, a)
	p.AddBase(b, a)
	// Both members feed the same target: two consecutive inter-component
	// edges from the cycle's component.
	t := p.AddVar("", Memory, true)
	p.AddSimple(t, a)
	p.AddSimple(t, b)
	p.SetFlag(vars[0][0], FlagPointsExt)
	return p
}

func strataTestConfig(workers int) Config {
	cfg := MustParseConfig("IP+WL(FIFO)+PIP")
	cfg.SolveWorkers = workers
	return cfg
}

// TestPresaturateChunkedWorkersTraced drives the parallel fan-out (8
// workers over 12-component levels, so one worker's chunk starts past the
// end and takes the break) with tracing enabled, and checks the result is
// bit-identical to the single-worker reference.
func TestPresaturateChunkedWorkersTraced(t *testing.T) {
	p := strataTestProblem()
	ref, err := Solve(p, strataTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Telemetry.Strata == 0 {
		t.Fatal("reference solve did not stratify")
	}
	tr := obs.New("strata-test", 1<<12)
	sol, err := SolveTracedIn(p, strataTestConfig(8), tr.NewTrack("solve"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Telemetry.Strata == 0 {
		t.Fatal("parallel solve did not stratify")
	}
	if got, want := sol.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("8-worker solution differs from 1-worker reference:\ngot  %s\nwant %s", got, want)
	}
	if sol.Degraded || ref.Degraded {
		t.Fatal("unbudgeted solves degraded")
	}
}

// TestPresaturateBudgetAbortsAtStratumBoundary: a firing cap smaller than
// the first level's plan-derived charge must degrade the solve — and
// identically for every worker count, since the charge depends only on
// the plan.
func TestPresaturateBudgetAbortsAtStratumBoundary(t *testing.T) {
	var fps [3]string
	for i, workers := range []int{1, 2, 8} {
		cfg := strataTestConfig(workers)
		cfg.Budget = Budget{Firings: 3}
		sol, err := Solve(strataTestProblem(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !sol.Degraded {
			t.Fatalf("workers=%d: solve under a 3-firing cap did not degrade", workers)
		}
		fps[i] = sol.Fingerprint()
	}
	if fps[0] != fps[1] || fps[1] != fps[2] {
		t.Fatalf("degraded fingerprints differ across worker counts:\n%s\n%s\n%s", fps[0], fps[1], fps[2])
	}
}

// TestPresaturateFaultInjection: an injected core.strata error must latch
// the abort flag and surface as the sound Ω-degradation, not an error.
func TestPresaturateFaultInjection(t *testing.T) {
	reg, err := faults.ParseSpec("seed=1;core.strata=error:1.0")
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(reg)
	t.Cleanup(faults.Disarm)
	sol, err := Solve(strataTestProblem(), strataTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Degraded {
		t.Fatal("injected strata fault did not degrade the solve")
	}
	if reg.Hits(faults.CoreStrata) == 0 {
		t.Fatal("core.strata point never fired")
	}
}

// TestPresaturateSkipsSmallProblems: below presatMinVars the pass must
// not run at all, keeping tiny solves on the zero-overhead path.
func TestPresaturateSkipsSmallProblems(t *testing.T) {
	p := NewProblem()
	v := p.AddVar("", Memory, true)
	w := p.AddVar("", Memory, true)
	p.AddBase(v, v)
	p.AddSimple(w, v)
	sol, err := Solve(p, strataTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Telemetry.Strata != 0 || sol.Telemetry.Presaturate != 0 {
		t.Fatalf("small problem stratified: strata=%d presaturate=%v",
			sol.Telemetry.Strata, sol.Telemetry.Presaturate)
	}
}
