package core

// solveNaive iterates the inference rules over every node until no new
// constraint can be inferred, as in Andersen's original formulation. It
// reuses the worklist visit body with a nil worklist, so every pass applies
// every rule to every node with full points-to sets.
func (s *solver) solveNaive() {
	for {
		s.progress = false
		// Stratified presaturation (SolveWorkers ≥ 1): each pass first
		// saturates the TRANS closure of the current graph in parallel,
		// so the per-node visits below only drive complex constraints.
		s.presaturate()
		for v := 0; v < s.n; v++ {
			if s.budgetExhausted() {
				return
			}
			r := s.find(VarID(v))
			if r != VarID(v) {
				continue
			}
			s.fullVisit[r] = true
			s.visit(r)
		}
		s.stats.Passes++
		if !s.progress {
			return
		}
	}
}
