package core

import "testing"

// Offline-technique unit tests on crafted constraint graphs.

// copyChain builds p0 → p1 → … → p(n-1) with a base constraint at the head.
func copyChain(n int) (*Problem, []VarID) {
	p := NewProblem()
	loc := p.AddVar("loc", Memory, true)
	vars := make([]VarID, n)
	for i := range vars {
		vars[i] = p.AddVar("", Register, true)
	}
	p.AddBase(vars[0], loc)
	for i := 1; i < n; i++ {
		p.AddSimple(vars[i], vars[i-1])
	}
	return p, vars
}

func TestOVSMergesCopyChain(t *testing.T) {
	// Straight copy chains are pointer-equivalent after the head; OVS
	// must shrink the number of distinct solution sets dramatically.
	prob, _ := copyChain(50)
	with := MustSolve(prob, MustParseConfig("IP+OVS+WL(FIFO)"))
	without := MustSolve(prob, MustParseConfig("IP+WL(FIFO)"))
	if with.Canonical() != without.Canonical() {
		t.Fatal("OVS changed the solution")
	}
	// All 50 chain members share one Sol set under OVS: total explicit
	// pointees counted per representative collapses to ~1.
	if with.Stats.ExplicitPointees >= without.Stats.ExplicitPointees {
		t.Fatalf("OVS should reduce explicit pointees: %d vs %d",
			with.Stats.ExplicitPointees, without.Stats.ExplicitPointees)
	}
	if with.Stats.ExplicitPointees > 3 {
		t.Fatalf("copy chain should collapse to a few sets, got %d pointees",
			with.Stats.ExplicitPointees)
	}
}

func TestOVSKeepsDistinctChainsApart(t *testing.T) {
	// Two chains with different base constraints must not merge.
	p := NewProblem()
	locA := p.AddVar("a", Memory, true)
	locB := p.AddVar("b", Memory, true)
	a0 := p.AddVar("", Register, true)
	a1 := p.AddVar("", Register, true)
	b0 := p.AddVar("", Register, true)
	b1 := p.AddVar("", Register, true)
	p.AddBase(a0, locA)
	p.AddBase(b0, locB)
	p.AddSimple(a1, a0)
	p.AddSimple(b1, b0)
	sol := MustSolve(p, MustParseConfig("IP+OVS+WL(FIFO)"))
	sa := sol.PointsTo(a1)
	sb := sol.PointsTo(b1)
	if len(sa) != 1 || len(sb) != 1 || sa[0] == sb[0] {
		t.Fatalf("distinct chains merged: %v vs %v", sa, sb)
	}
}

func TestOVSWithFlagsStaysExact(t *testing.T) {
	// A flagged variable in the middle of a chain must not be merged away.
	prob, vars := copyChain(10)
	prob.SetFlag(vars[5], FlagPointsExt)
	prob.SetFlag(vars[2], FlagEscapedPointees)
	want := ReferenceSolve(prob)
	for _, cfg := range []string{"IP+OVS+WL(FIFO)", "EP+OVS+WL(FIFO)", "IP+OVS+Naive"} {
		sol := MustSolve(prob, MustParseConfig(cfg))
		if sol.Canonical() != want {
			t.Fatalf("%s with flags diverged from reference", cfg)
		}
	}
}

func TestHCDCollapsesOfflineCycle(t *testing.T) {
	// A pure simple-edge cycle collapses offline under HCD.
	p := NewProblem()
	loc := p.AddVar("loc", Memory, true)
	a := p.AddVar("a", Register, true)
	b := p.AddVar("b", Register, true)
	c := p.AddVar("c", Register, true)
	p.AddBase(a, loc)
	p.AddSimple(b, a)
	p.AddSimple(c, b)
	p.AddSimple(a, c)
	sol := MustSolve(p, MustParseConfig("IP+WL(FIFO)+HCD"))
	noHCD := MustSolve(p, MustParseConfig("IP+WL(FIFO)"))
	if sol.Canonical() != noHCD.Canonical() {
		t.Fatal("HCD changed the solution")
	}
	if sol.Stats.Unifications == 0 {
		t.Fatal("HCD should collapse the offline cycle")
	}
}

func TestHCDDerefCycleUnifiesPointees(t *testing.T) {
	// The cycle a → *p → a (store *p ⊇ a; load a ⊇ *p): every pointee of
	// p joins a's cycle at solve time.
	p := NewProblem()
	x := p.AddVar("x", Memory, true)
	y := p.AddVar("y", Memory, true)
	loc := p.AddVar("loc", Memory, true)
	a := p.AddVar("a", Register, true)
	ptr := p.AddVar("p", Register, true)
	p.AddBase(ptr, x)
	p.AddBase(ptr, y)
	p.AddBase(a, loc)
	p.AddStore(ptr, a) // *p ⊇ a
	p.AddLoad(a, ptr)  // a ⊇ *p
	want := ReferenceSolve(p)
	sol := MustSolve(p, MustParseConfig("IP+WL(FIFO)+HCD"))
	if sol.Canonical() != want {
		t.Fatal("HCD deref cycle changed the solution")
	}
	if sol.Stats.Unifications < 2 {
		t.Fatalf("HCD should unify both pointees with a, got %d unifications",
			sol.Stats.Unifications)
	}
}

func TestLCDCollapsesOnlineCycle(t *testing.T) {
	// A cycle that only materializes online (through a load) is caught by
	// LCD once the sets become equal.
	p := NewProblem()
	cell := p.AddVar("cell", Memory, true)
	x := p.AddVar("x", Memory, true)
	a := p.AddVar("a", Register, true)
	b := p.AddVar("b", Register, true)
	hnd := p.AddVar("hnd", Register, true)
	p.AddBase(hnd, cell)
	p.AddBase(a, x)
	p.AddSimple(b, a)  // a → b
	p.AddStore(hnd, b) // *hnd ⊇ b  (creates b → cell)
	p.AddLoad(a, hnd)  // a ⊇ *hnd  (creates cell → a): cycle a→b→cell→a
	want := ReferenceSolve(p)
	lcd := MustSolve(p, MustParseConfig("IP+WL(FIFO)+LCD"))
	if lcd.Canonical() != want {
		t.Fatal("LCD changed the solution")
	}
	ocd := MustSolve(p, MustParseConfig("IP+WL(FIFO)+OCD"))
	if ocd.Canonical() != want {
		t.Fatal("OCD changed the solution")
	}
	if ocd.Stats.Unifications == 0 {
		t.Fatal("OCD must find the online cycle")
	}
}

func TestDPMatchesNonDPOnChains(t *testing.T) {
	// Difference propagation produces identical results with fewer
	// propagated elements on repeated small updates.
	for seed := int64(300); seed < 305; seed++ {
		prob := randomProblem(seed, 60, 150)
		want := ReferenceSolve(prob)
		for _, cfg := range []string{"IP+WL(FIFO)+DP", "EP+WL(LIFO)+DP", "IP+WL(LRF)+DP+PIP"} {
			sol := MustSolve(prob, MustParseConfig(cfg))
			if sol.Canonical() != want {
				t.Fatalf("seed %d: %s diverged", seed, cfg)
			}
		}
	}
}
