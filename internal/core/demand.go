package core

import (
	"fmt"

	"github.com/pip-analysis/pip/internal/bitset"
	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/uf"
)

// This file implements demand-driven solving: answering "what does this
// pointer reach" without paying for the whole module. The constraint set
// is partitioned into connected components of the co-occurrence graph
// (two variables are connected when some constraint mentions both); only
// the components containing the queried roots are solved, and every
// variable outside them is soundly answered with Ω.
//
// Exactness on the explored slice follows from the partition being a real
// disjoint union: no inference rule of the solver ever moves a fact
// between variables that share no constraint chain, so solving the
// explored components in isolation computes exactly the full solution's
// answers for them. The one global coupling is Ω in the explicit-Ω
// representation: every flagged variable exchanges facts with the Ω node,
// and constraints with pointer-incompatible endpoints are rewritten to Ω
// by the solver. Those variables are therefore all tied into a single
// "Ω cluster" component, so the cluster is either fully explored or fully
// unexplored — never split.

// DemandStats describes how much of the problem a demand solve explored.
type DemandStats struct {
	ExploredVars        int `json:"explored_vars"`
	TotalVars           int `json:"total_vars"`
	ExploredConstraints int `json:"explored_constraints"`
	TotalConstraints    int `json:"total_constraints"`
}

// DemandResult is the outcome of a demand-driven solve: a Solution over
// the full variable universe in which explored variables carry their
// exact full-solve answers and unexplored variables answer Ω (escaped,
// points-to-external, no explicit pointees).
type DemandResult struct {
	Sol *Solution
	// Explored[v] reports whether v's component was solved; unexplored
	// variables answer the sound Ω top element.
	Explored []bool
	Stats    DemandStats
}

// SolveDemand solves prob only as far as needed to answer queries about
// the given root pointers. See SolveDemandTraced.
func SolveDemand(prob *Problem, cfg Config, roots []VarID) (*DemandResult, error) {
	return SolveDemandTraced(prob, cfg, roots, obs.Track{}, nil)
}

// SolveDemandTraced runs a demand-driven solve: it computes the
// constraint components backward- and forward-reachable from roots (they
// coincide — components are undirected), solves the filtered problem
// containing only those components, and patches every unexplored variable
// to the sound Ω answer. Budget exhaustion degrades exactly like a full
// solve: the result is the all-Ω degraded solution, which is ⊒ every
// exact answer.
func SolveDemandTraced(prob *Problem, cfg Config, roots []VarID, tk obs.Track, ar *Arena) (*DemandResult, error) {
	n := prob.NumVars()
	for _, r := range roots {
		if int(r) >= n {
			return nil, fmt.Errorf("demand root %d out of range (%d vars)", r, n)
		}
	}
	explored := demandComponents(prob, cfg, roots)

	// Filter the problem down to the explored components: same variable
	// universe (ids must keep their meaning), constraints kept only when
	// fully explored, flags cleared on unexplored variables.
	q := &Problem{
		Names:     prob.Names,
		Kind:      prob.Kind,
		PtrCompat: prob.PtrCompat,
		Flags:     make([]Flags, n),
	}
	kept := 0
	for v := 0; v < n; v++ {
		if explored[v] {
			q.Flags[v] = prob.Flags[v]
			kept += flagBits(prob.Flags[v])
		}
	}
	keepEdge := func(e Edge) bool { return explored[e.Dst] && explored[e.Src] }
	for _, e := range prob.Base {
		if keepEdge(e) {
			q.Base = append(q.Base, e)
		}
	}
	for _, e := range prob.Simple {
		if keepEdge(e) {
			q.Simple = append(q.Simple, e)
		}
	}
	for _, e := range prob.Load {
		if keepEdge(e) {
			q.Load = append(q.Load, e)
		}
	}
	for _, e := range prob.Store {
		if keepEdge(e) {
			q.Store = append(q.Store, e)
		}
	}
	for _, fc := range prob.Funcs {
		if explored[fc.F] && varsExplored(explored, fc.Ret, fc.Args) {
			q.Funcs = append(q.Funcs, fc)
		}
	}
	for _, cc := range prob.Calls {
		if explored[cc.Target] && varsExplored(explored, cc.Ret, cc.Args) {
			q.Calls = append(q.Calls, cc)
		}
	}
	kept += len(q.Base) + len(q.Simple) + len(q.Load) + len(q.Store) + len(q.Funcs) + len(q.Calls)

	exploredVars := 0
	for _, e := range explored {
		if e {
			exploredVars++
		}
	}
	span := tk.Begin("demand",
		obs.N("roots", int64(len(roots))),
		obs.N("explored_vars", int64(exploredVars)),
		obs.N("vars", int64(n)))
	sol, err := SolveTracedIn(q, cfg, tk, ar)
	span.End()
	if err != nil {
		return nil, err
	}
	res := &DemandResult{
		Sol:      sol,
		Explored: explored,
		Stats: DemandStats{
			ExploredVars:        exploredVars,
			TotalVars:           n,
			ExploredConstraints: kept,
			TotalConstraints:    prob.NumConstraints(),
		},
	}
	// Queries must resolve against the original problem (its names; the
	// variable universe is shared by construction).
	sol.p = prob
	if sol.Degraded {
		// Budget exhausted mid-slice: the degraded solution is already the
		// all-Ω top element over the full universe — soundly ⊒ both the
		// explored and unexplored answers.
		return res, nil
	}
	// Patch unexplored variables to Ω: escaped, pointing externally, no
	// explicit pointees. Post-solve set surgery is safe because nothing
	// propagates anymore — unexplored variables have no constraints in the
	// filtered problem, so they are untouched singleton representatives.
	for v := 0; v < n; v++ {
		if explored[v] {
			continue
		}
		id := VarID(v)
		// The escape mark goes through the external table, not Ω's
		// points-to set: cycle collapse may have unified Ω with explored
		// variables, and writing into the shared set would corrupt their
		// explicit answers.
		sol.external[id] = true
		if sol.omega != NoVar {
			if prob.PtrCompat[v] {
				sol.ptsOfRep(sol.rep(id)).Add(sol.omega)
			}
		} else if prob.PtrCompat[v] {
			sol.pointsExt[sol.rep(id)] = true
		}
	}
	return res, nil
}

func varsExplored(explored []bool, ret VarID, args []VarID) bool {
	if ret != NoVar && !explored[ret] {
		return false
	}
	for _, a := range args {
		if a != NoVar && !explored[a] {
			return false
		}
	}
	return true
}

// demandComponents returns the explored-variable mask: the union of the
// constraint co-occurrence components containing the roots. In EP mode an
// extra virtual node (index n) represents the Ω cluster; every flagged
// variable and every constraint with a pointer-incompatible endpoint is
// unioned into it, because the solver routes all of those through the
// materialized Ω node.
func demandComponents(prob *Problem, cfg Config, roots []VarID) []bool {
	n := prob.NumVars()
	f := uf.New(n + 1)
	cluster := uint32(n)
	ep := cfg.Rep == EP

	join := func(a, b VarID) { f.Union(uint32(a), uint32(b)) }
	clusterIfIncompat := func(vs ...VarID) {
		if !ep {
			return
		}
		for _, v := range vs {
			if v != NoVar && !prob.PtrCompat[v] {
				for _, w := range vs {
					if w != NoVar {
						f.Union(uint32(w), cluster)
					}
				}
				return
			}
		}
	}
	for _, e := range prob.Base {
		join(e.Dst, e.Src)
		clusterIfIncompat(e.Dst, e.Src)
	}
	for _, e := range prob.Simple {
		join(e.Dst, e.Src)
		clusterIfIncompat(e.Dst, e.Src)
	}
	for _, e := range prob.Load {
		join(e.Dst, e.Src)
		clusterIfIncompat(e.Dst, e.Src)
	}
	for _, e := range prob.Store {
		join(e.Dst, e.Src)
		clusterIfIncompat(e.Dst, e.Src)
	}
	for _, fc := range prob.Funcs {
		all := append([]VarID{fc.F, fc.Ret}, fc.Args...)
		prev := fc.F
		for _, v := range all {
			if v != NoVar {
				join(prev, v)
				prev = v
			}
		}
		clusterIfIncompat(all...)
	}
	for _, cc := range prob.Calls {
		all := append([]VarID{cc.Target, cc.Ret}, cc.Args...)
		prev := cc.Target
		for _, v := range all {
			if v != NoVar {
				join(prev, v)
				prev = v
			}
		}
		clusterIfIncompat(all...)
	}
	if ep {
		for v := 0; v < n; v++ {
			if prob.Flags[v] != 0 {
				f.Union(uint32(v), cluster)
			}
		}
	}

	explored := make([]bool, n)
	rootRep := make(map[uint32]bool, len(roots))
	for _, r := range roots {
		rootRep[f.Find(uint32(r))] = true
	}
	if len(rootRep) == 0 {
		return explored
	}
	for v := 0; v < n; v++ {
		if rootRep[f.Find(uint32(v))] {
			explored[v] = true
		}
	}
	return explored
}

// ptsOfRep returns the points-to set of representative r, allocating the
// cell when the solve left it nil (demand patching writes into cells the
// filtered solve never touched).
func (s *Solution) ptsOfRep(r VarID) *bitset.Set {
	if s.pts[r] == nil {
		s.pts[r] = &bitset.Set{}
	}
	return s.pts[r]
}
