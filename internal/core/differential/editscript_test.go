package differential

import (
	"math/rand"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
)

// editWorkers returns the solve-worker counts the edit-script gate sweeps.
// The CI matrix pins the top rung via PIP_SOLVE_WORKERS (see workerLadder);
// locally the gate runs sequential and one parallel rung.
func editWorkers() []int {
	ws := workerLadder()
	if len(ws) > 2 {
		ws = []int{ws[0], ws[len(ws)-1]}
	}
	return ws
}

// TestIncrementalEditScripts is the incremental gate: seeded random edit
// scripts across the representative configuration set and the worker
// ladder. After every edit the incremental solution must be bit-identical
// to a from-scratch solve — on resumable configurations via the resume
// path, everywhere else via the sound fallback.
func TestIncrementalEditScripts(t *testing.T) {
	const edits = 8
	for _, cfg := range RepresentativeConfigs() {
		if cfg.Solver == core.Wave {
			// Wave cells never resume (not checkpointable), and the wave
			// solver is the slowest; one fallback-only representative below
			// (Naive) already covers the non-worklist fallback path.
			continue
		}
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			for _, w := range editWorkers() {
				cfg.SolveWorkers = w
				for seed := int64(1); seed <= 2; seed++ {
					base := Generate(seed, DefaultGen())
					rng := rand.New(rand.NewSource(seed * 7919))
					script := make([]byte, 3*edits)
					rng.Read(script)
					rep, err := CheckEditScript(base, script, cfg)
					if err != nil {
						t.Fatalf("seed %d workers %d: %v", seed, w, err)
					}
					if rep.Edits == 0 {
						t.Fatalf("seed %d: script applied no edits", seed)
					}
					t.Logf("seed %d workers %d: %s", seed, w, rep)
				}
			}
		})
	}
}

// TestIncrementalEditPathsExercised guards the gate itself: a script of
// known shape on a resumable configuration must hit all three incremental
// paths (reuse on rename, resume on monotone growth, fallback on removal).
// Without this the sweep could pass vacuously with every edit falling back.
func TestIncrementalEditPathsExercised(t *testing.T) {
	cfg := core.Config{Rep: core.IP, Solver: core.Worklist, Order: core.FIFO}
	base := Generate(5, DefaultGen())
	script := []byte{
		5, 3, 9, // rename: empty delta, reuse
		0, 11, 42, // add copy edge: monotone, resume
		1, 7, 0, // grow universe: monotone under IP, resume
		4, 2, 0, // delete copy edge: fallback
		3, 8, 21, // add store after fallback: resume from re-established checkpoint
	}
	rep, err := CheckEditScript(base, script, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reused == 0 || rep.Resumed < 2 || rep.Fallbacks == 0 {
		t.Fatalf("script missed an incremental path: %s", rep)
	}
}

// TestIncrementalEditEPGrowthFallsBack pins the explicit-Ω rule: growing
// the variable universe under EP (where Ω is a materialized node whose
// points-to set enumerates every variable) must fall back, and the
// fallback must still match scratch bit-for-bit.
func TestIncrementalEditEPGrowthFallsBack(t *testing.T) {
	cfg := core.Config{Rep: core.EP, Solver: core.Worklist, Order: core.FIFO}
	base := Generate(6, DefaultGen())
	rep, err := CheckEditScript(base, []byte{1, 13, 0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fallbacks != 1 {
		t.Fatalf("EP universe growth should fall back: %s", rep)
	}
}

// TestIncrementalEditScriptDeterminism: the interpreter is part of the
// replay story — the same base and script must yield identical versions.
func TestIncrementalEditScriptDeterminism(t *testing.T) {
	base := Generate(8, DefaultGen())
	script := []byte{0, 1, 2, 6, 0, 0, 4, 5, 6, 8, 9, 10}
	a := ApplyEdits(base, script)
	b := ApplyEdits(base, script)
	if len(a) != len(b) {
		t.Fatalf("version counts differ: %d vs %d", len(a), len(b))
	}
	cfg := core.Config{Rep: core.IP, Solver: core.Worklist}
	for i := range a {
		if core.MustSolve(a[i], cfg).Fingerprint() != core.MustSolve(b[i], cfg).Fingerprint() {
			t.Fatalf("version %d not deterministic", i)
		}
	}
	if base.NumConstraints() != Generate(8, DefaultGen()).NumConstraints() {
		t.Fatal("ApplyEdits mutated the base problem")
	}
}
