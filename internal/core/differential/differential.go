package differential

import (
	"fmt"
	"strings"

	"github.com/pip-analysis/pip/internal/core"
)

// Options configures a sweep.
type Options struct {
	// Seeds are the problem-generator seeds; one problem per seed.
	Seeds []int64
	// Gen shapes every generated problem.
	Gen GenOptions
	// Configs are the solver configurations to sweep. SolveWorkers and
	// Budget on the entries are ignored: the sweep owns both axes.
	// Defaults to RepresentativeConfigs().
	Configs []core.Config
	// Workers are the solve-worker counts compared for bit identity.
	// Every count must be >= 1; the count 1 is the reference and is added
	// if absent. Defaults to 1, 2, 4, 8.
	Workers []int
	// Firings are the deterministic firing caps swept in addition to the
	// unbudgeted solve. Wall-clock deadlines are deliberately not swept:
	// only firing caps degrade deterministically (see core.Budget), so
	// only they can carry a bit-identity obligation.
	Firings []int64
	// Legacy disables the Canonical cross-check against SolveWorkers=0
	// when false is wanted; by default the check runs for every
	// unbudgeted cell.
	SkipLegacy bool
}

// DefaultOptions is the configuration used by the gate tests: four seeds,
// the representative config set, the full worker ladder, and two firing
// caps bracketing the degradation point.
func DefaultOptions() Options {
	return Options{
		Seeds:   []int64{1, 2, 3, 4},
		Gen:     DefaultGen(),
		Workers: []int{1, 2, 4, 8},
		Firings: []int64{0, 200, 5000},
	}
}

// RepresentativeConfigs covers every solver kind, both pointee
// representations, OVS, each worklist order, every cycle-detection mode,
// difference propagation, and PIP — without paying for the full 304-config
// product on every sweep cell.
func RepresentativeConfigs() []core.Config {
	return []core.Config{
		{Rep: core.EP, Solver: core.Naive},
		{Rep: core.IP, OVS: true, Solver: core.Naive},
		{Rep: core.EP, Solver: core.Wave},
		{Rep: core.IP, OVS: true, Solver: core.Wave},
		{Rep: core.EP, Solver: core.Worklist, Order: core.FIFO},
		{Rep: core.EP, Solver: core.Worklist, Order: core.LIFO, LCD: true},
		{Rep: core.EP, OVS: true, Solver: core.Worklist, Order: core.LRF, OCD: true},
		{Rep: core.IP, Solver: core.Worklist, Order: core.LRF2, HCD: true, DP: true},
		{Rep: core.IP, Solver: core.Worklist, Order: core.Topo, DP: true},
		{Rep: core.IP, Solver: core.Worklist, Order: core.FIFO, PIP: true},
		{Rep: core.IP, OVS: true, Solver: core.Worklist, Order: core.LRF, OCD: true, DP: true, PIP: true},
		{Rep: core.IP, Solver: core.Worklist, Order: core.LIFO, HCD: true, LCD: true, PIP: true},
	}
}

// Mismatch is one divergence between two solve paths on the same cell.
type Mismatch struct {
	Seed    int64
	Config  string
	Firings int64
	Path    string
	Detail  string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("seed %d, config %q, firings %d, path %s: %s",
		m.Seed, m.Config, m.Firings, m.Path, m.Detail)
}

// Report is the outcome of a sweep.
type Report struct {
	Problems   int
	Cells      int
	Solves     int
	Mismatches []Mismatch
}

// OK reports whether every cell was solution-identical across all paths.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential: %d problems, %d cells, %d solves\n",
		r.Problems, r.Cells, r.Solves)
	if r.OK() {
		b.WriteString("all paths solution-identical\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d mismatches:\n", len(r.Mismatches))
	for i, m := range r.Mismatches {
		if i == 8 {
			fmt.Fprintf(&b, "  ... %d more\n", len(r.Mismatches)-i)
			break
		}
		fmt.Fprintf(&b, "  %s\n", m)
	}
	return b.String()
}

// outcome reduces one solve to comparable form.
type outcome struct {
	fingerprint string
	canonical   string
	degraded    bool
	err         string
}

func solveCell(p *core.Problem, cfg core.Config, workers int, firings int64) outcome {
	cfg.SolveWorkers = workers
	cfg.Budget = core.Budget{Firings: firings}
	sol, err := core.Solve(p, cfg)
	if err != nil {
		return outcome{err: err.Error()}
	}
	return outcome{
		fingerprint: sol.Fingerprint(),
		canonical:   sol.Canonical(),
		degraded:    sol.Degraded,
	}
}

// Sweep runs the full matrix. For every (seed, config, firing-cap) cell it
// solves once per worker count and demands:
//
//   - bit-identical Solution.Fingerprint across every worker count >= 1
//     (identical explicit sets, flags, escaped set, AND identical cycle
//     representatives — the parallel strata must not perturb unification
//     history), and
//   - identical Degraded outcomes (a firing cap either degrades at every
//     worker count or at none: the presaturation phase charges its firings
//     from a precomputed plan, never from scheduling), and
//   - for unbudgeted cells, Solution.Canonical equality against the legacy
//     SolveWorkers=0 path, proving the stratified solver computes the same
//     fixed point the paper's sequential algorithm does. Fingerprint
//     identity is deliberately NOT required here: presaturation changes
//     visit order, and with PIP's non-monotone rules the chosen cycle
//     representatives are schedule-dependent even though the solution is
//     not (the same tolerance the paper needs for its 304-config matrix).
func Sweep(opt Options) *Report {
	if len(opt.Seeds) == 0 {
		opt.Seeds = DefaultOptions().Seeds
	}
	if len(opt.Configs) == 0 {
		opt.Configs = RepresentativeConfigs()
	}
	workers := normalizeWorkers(opt.Workers)
	firings := opt.Firings
	if len(firings) == 0 {
		firings = []int64{0}
	}

	rep := &Report{Problems: len(opt.Seeds)}
	for _, seed := range opt.Seeds {
		p := Generate(seed, opt.Gen)
		for _, cfg := range opt.Configs {
			for _, fcap := range firings {
				rep.Cells++
				ref := solveCell(p, cfg, 1, fcap)
				rep.Solves++
				cell := func(path, detail string) {
					rep.Mismatches = append(rep.Mismatches, Mismatch{
						Seed: seed, Config: cfg.String(), Firings: fcap,
						Path: path, Detail: detail,
					})
				}
				if ref.err != "" {
					cell("workers=1", "reference solve failed: "+ref.err)
					continue
				}
				for _, w := range workers {
					if w == 1 {
						continue
					}
					got := solveCell(p, cfg, w, fcap)
					rep.Solves++
					path := fmt.Sprintf("workers=%d", w)
					switch {
					case got.err != "":
						cell(path, "solve failed: "+got.err)
					case got.degraded != ref.degraded:
						cell(path, fmt.Sprintf("degraded %v, reference %v", got.degraded, ref.degraded))
					case got.fingerprint != ref.fingerprint:
						cell(path, firstDiff(ref.fingerprint, got.fingerprint))
					}
				}
				if fcap == 0 && !opt.SkipLegacy {
					legacy := solveCell(p, cfg, 0, 0)
					rep.Solves++
					switch {
					case legacy.err != "":
						cell("legacy", "solve failed: "+legacy.err)
					case legacy.canonical != ref.canonical:
						cell("legacy", firstDiff(legacy.canonical, ref.canonical))
					}
				}
			}
		}
	}
	return rep
}

func normalizeWorkers(ws []int) []int {
	if len(ws) == 0 {
		return DefaultOptions().Workers
	}
	out := []int{1}
	for _, w := range ws {
		if w > 1 {
			out = append(out, w)
		}
	}
	return out
}

// firstDiff pinpoints the first differing line of two multi-line dumps.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first divergence at line %d: reference %q vs %q", i, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("dump lengths differ: %d vs %d lines", len(wl), len(gl))
}
