package differential

import (
	"fmt"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/core/incr"
)

// Edit-script differential harness: the correctness gate for incremental
// re-solving. A byte-coded script is interpreted as a sequence of edits to
// a constraint problem (adds, removals, renames, store/load flips); an
// incr lineage absorbs every edit in order, and after each one the
// incremental solution must be bit-identical (Solution.Fingerprint) to a
// from-scratch solve of the same version. The byte coding is shared with
// the FuzzIncrementalEdit target, so every fuzz crash replays as a script.

// editOps is the number of distinct edit opcodes ApplyEdits understands.
const editOps = 10

// ApplyEdits interprets script as a sequence of edits against p and
// returns the successive problem versions, one per applied edit. p itself
// is never modified; each version is an independent clone. Every group of
// three bytes encodes one edit: an opcode and two operands (variable or
// constraint selectors, taken modulo the current problem's sizes).
func ApplyEdits(p *core.Problem, script []byte) []*core.Problem {
	var versions []*core.Problem
	cur := p
	for i := 0; i+2 < len(script); i += 3 {
		op, a, b := int(script[i])%editOps, int(script[i+1]), int(script[i+2])
		next := cur.Clone()
		n := next.NumVars()
		if n == 0 {
			break
		}
		va, vb := core.VarID(a%n), core.VarID(b%n)
		switch op {
		case 0: // add a copy edge
			next.AddSimple(va, vb)
		case 1: // grow the variable universe: fresh object, new base fact
			m := next.AddVar("", core.Memory, true)
			next.AddBase(va, m)
		case 2: // add a load
			next.AddLoad(va, vb)
		case 3: // add a store
			next.AddStore(va, vb)
		case 4: // delete a copy edge — possibly inside a collapsed SCC
			if len(next.Simple) == 0 {
				continue
			}
			j := a % len(next.Simple)
			next.Simple = append(next.Simple[:j:j], next.Simple[j+1:]...)
		case 5: // rename only: the constraint set (and the summary) is unchanged
			next.Names[va] = fmt.Sprintf("renamed%d", b)
		case 6: // flip a store into a load with the same endpoints
			if len(next.Store) == 0 {
				continue
			}
			j := a % len(next.Store)
			e := next.Store[j]
			next.Store = append(next.Store[:j:j], next.Store[j+1:]...)
			next.AddLoad(e.Dst, e.Src)
		case 7: // introduce an external root
			next.SetFlag(va, core.FlagExternal)
		case 8: // add a function object and an indirect call to it
			m := next.AddVar("", core.Memory, true)
			next.AddFunc(m, va, []core.VarID{vb})
			next.AddBase(va, m)
			next.AddCall(va, vb, []core.VarID{va})
		case 9: // delete a base fact
			if len(next.Base) == 0 {
				continue
			}
			j := a % len(next.Base)
			next.Base = append(next.Base[:j:j], next.Base[j+1:]...)
		}
		versions = append(versions, next)
		cur = next
	}
	return versions
}

// EditReport tallies which incremental paths an edit script exercised.
type EditReport struct {
	Edits     int
	Reused    int
	Resumed   int
	Fallbacks int
}

func (r EditReport) String() string {
	return fmt.Sprintf("%d edits: %d reused, %d resumed, %d fell back",
		r.Edits, r.Reused, r.Resumed, r.Fallbacks)
}

// CheckEditScript drives one incremental lineage through the script and
// compares every generation against a from-scratch solve of the same
// version. The configuration need not be resumable: non-resumable cells
// must take the fallback path and still answer identically. Returns the
// path tally and the first divergence found, if any.
func CheckEditScript(base *core.Problem, script []byte, cfg core.Config) (EditReport, error) {
	var rep EditReport
	st, err := incr.New(base, cfg)
	if err != nil {
		return rep, fmt.Errorf("generation 0: %w", err)
	}
	if st.Sol.Fingerprint() != core.MustSolve(base, cfg).Fingerprint() {
		return rep, fmt.Errorf("generation 0 differs from direct solve")
	}
	for i, version := range ApplyEdits(base, script) {
		nst, stats, err := st.Update(version)
		if err != nil {
			return rep, fmt.Errorf("edit %d: update: %w", i, err)
		}
		rep.Edits++
		switch {
		case stats.ReusedSolution:
			rep.Reused++
		case stats.Resumed:
			rep.Resumed++
		default:
			rep.Fallbacks++
		}
		scratch, err := core.Solve(version, cfg)
		if err != nil {
			return rep, fmt.Errorf("edit %d: scratch solve: %w", i, err)
		}
		if nst.Sol.Fingerprint() != scratch.Fingerprint() {
			return rep, fmt.Errorf("edit %d: incremental diverges from scratch: %s",
				i, firstDiff(scratch.Fingerprint(), nst.Sol.Fingerprint()))
		}
		st = nst
	}
	return rep, nil
}
