package differential

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
	"github.com/pip-analysis/pip/internal/obs"
)

// workerLadder honours the CI matrix: PIP_SOLVE_WORKERS pins the top rung
// (the reference rung 1 is always included), so the same test binary runs
// the {1} and {1,8} legs of the workflow without rebuilding.
func workerLadder() []int {
	if v := os.Getenv("PIP_SOLVE_WORKERS"); v != "" {
		if w, err := strconv.Atoi(v); err == nil && w >= 1 {
			return []int{1, w}
		}
	}
	return []int{1, 2, 4, 8}
}

// TestDifferentialSweep is the gate: generator-driven problems across the
// representative configuration set, the full worker ladder, and the firing
// caps, asserting bit-identical Fingerprints, identical Degraded outcomes,
// and Canonical agreement with the legacy sequential solver.
func TestDifferentialSweep(t *testing.T) {
	opt := DefaultOptions()
	opt.Workers = workerLadder()
	rep := Sweep(opt)
	t.Logf("%s", rep)
	if !rep.OK() {
		t.Fatalf("differential sweep failed:\n%s", rep)
	}
	if rep.Cells == 0 || rep.Solves < rep.Cells*2 {
		t.Fatalf("sweep ran a suspicious amount of work: %+v", rep)
	}
}

// TestDifferentialBudgetBoundary walks firing caps through the region where
// solves flip from degraded to exact, where a scheduling-dependent budget
// charge would be most visible. Every cap must flip identically at every
// worker count.
func TestDifferentialBudgetBoundary(t *testing.T) {
	caps := []int64{1, 7, 33, 100, 316, 1000, 3163, 10000, 31630, 100000}
	opt := Options{
		Seeds: []int64{7, 11},
		Gen:   GenOptions{Vars: 160, Density: 1.3, Cyclic: true},
		Configs: []core.Config{
			{Rep: core.EP, Solver: core.Worklist, Order: core.FIFO},
			{Rep: core.IP, Solver: core.Worklist, Order: core.LRF, OCD: true, DP: true, PIP: true},
			{Rep: core.EP, Solver: core.Wave},
			{Rep: core.IP, OVS: true, Solver: core.Naive},
		},
		Workers:    workerLadder(),
		Firings:    caps,
		SkipLegacy: true,
	}
	rep := Sweep(opt)
	t.Logf("%s", rep)
	if !rep.OK() {
		t.Fatalf("budget boundary sweep failed:\n%s", rep)
	}
}

// TestDifferentialDense pushes a denser, more cyclic problem through the
// sweep so stratification sees big SCCs and deep level structure.
func TestDifferentialDense(t *testing.T) {
	if testing.Short() {
		t.Skip("dense sweep skipped in -short mode")
	}
	opt := Options{
		Seeds:   []int64{42},
		Gen:     GenOptions{Vars: 512, Density: 2.0, Cyclic: true},
		Workers: workerLadder(),
		Firings: []int64{0, 20000},
	}
	rep := Sweep(opt)
	t.Logf("%s", rep)
	if !rep.OK() {
		t.Fatalf("dense sweep failed:\n%s", rep)
	}
}

// TestDifferentialGenDeterminism guards replayability: every mismatch is
// reported by seed, which is only useful if the seed regenerates the exact
// problem.
func TestDifferentialGenDeterminism(t *testing.T) {
	a := Generate(3, DefaultGen())
	b := Generate(3, DefaultGen())
	sa, err := core.Solve(a, core.Config{Rep: core.IP, Solver: core.Worklist, SolveWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := core.Solve(b, core.Config{Rep: core.IP, Solver: core.Worklist, SolveWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Fingerprint() != sb.Fingerprint() {
		t.Fatal("same seed generated different problems")
	}
	c := Generate(4, DefaultGen())
	sc, err := core.Solve(c, core.Config{Rep: core.IP, Solver: core.Worklist, SolveWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Fingerprint() == sc.Fingerprint() {
		t.Fatal("different seeds generated identical problems (generator ignores seed?)")
	}
}

// TestDifferentialStrataEngaged guards the gate itself: a standard
// generated problem at SolveWorkers>=1 must actually take the stratified
// presaturation path. Without this, a regression that silently disables
// presaturation would leave the whole sweep vacuously green.
func TestDifferentialStrataEngaged(t *testing.T) {
	p := Generate(1, DefaultGen())
	sol, err := core.Solve(p, core.Config{Rep: core.IP, Solver: core.Worklist, SolveWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Telemetry.Strata == 0 {
		t.Fatal("stratified presaturation never ran on a sweep-shaped problem")
	}
	if sol.Telemetry.Presaturate == 0 {
		t.Fatal("presaturation ran but recorded no time")
	}
}

// TestDifferentialRaceTelemetry is the race gate for the per-worker
// telemetry shards and trace lanes: a sizable cyclic problem solved at
// SolveWorkers=8 with tracing enabled, concurrently from several
// goroutines (each with its own arena, engine-style). Run under -race this
// fails if stratum workers share a counter, a trace buffer, or arena
// scratch without synchronization.
func TestDifferentialRaceTelemetry(t *testing.T) {
	p := Generate(9, GenOptions{Vars: 384, Density: 1.5, Cyclic: true})
	cfg := core.Config{
		Rep: core.IP, Solver: core.Worklist, Order: core.LRF,
		OCD: true, DP: true, PIP: true, SolveWorkers: 8,
	}
	ref, err := core.Solve(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := obs.New("differential-race", 1<<12)
			ar := core.NewArena()
			for i := 0; i < 3; i++ {
				sol, err := core.SolveTracedIn(p, cfg, tr.NewTrack("solve"), ar)
				if err != nil {
					errs <- err.Error()
					return
				}
				if sol.Fingerprint() != ref.Fingerprint() {
					errs <- "concurrent solve diverged from reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
