// Package differential is the correctness gate for intra-solve
// parallelism. It sweeps generator-driven constraint problems across the
// solver configuration space and the solve-worker axis, demanding
// bit-identical Solutions (Solution.Fingerprint) and identical Degraded
// outcomes for every worker count >= 1, and representative-independent
// equality (Solution.Canonical) against the legacy sequential path.
//
// The harness mirrors internal/engine's job-level differential oracle one
// layer down: the engine harness proves that scheduling jobs across a pool
// never changes any answer; this package proves that scheduling strata
// *within one solve* never changes the answer either.
package differential

import (
	"math/rand"

	"github.com/pip-analysis/pip/internal/core"
)

// GenOptions shapes a generated problem.
type GenOptions struct {
	// Vars is the variable count. It should comfortably exceed the
	// solver's stratification threshold (64 variables) so the parallel
	// presaturation path actually runs; Generate enforces a floor of 96.
	Vars int
	// Density multiplies the constraint counts (1.0 = one simple edge and
	// one base fact per variable, plus a smaller complement of loads,
	// stores, calls and flags).
	Density float64
	// Cyclic adds long simple-edge cycles (including self-loops) so SCC
	// condensation and online cycle detection both have work to do.
	Cyclic bool
}

// DefaultGen is the sweep's standard shape: a problem large enough to
// stratify, dense enough to fire every inference rule, and cyclic.
func DefaultGen() GenOptions { return GenOptions{Vars: 128, Density: 1.0, Cyclic: true} }

// Generate builds a deterministic pseudo-random constraint problem. The
// same seed and options always produce the identical problem, so every
// sweep failure is replayable from its seed alone.
func Generate(seed int64, opt GenOptions) *core.Problem {
	if opt.Vars < 96 {
		opt.Vars = 96
	}
	if opt.Density <= 0 {
		opt.Density = 1.0
	}
	rng := rand.New(rand.NewSource(seed))
	p := core.NewProblem()

	n := opt.Vars
	vars := make([]core.VarID, n)
	var mems []core.VarID
	for i := 0; i < n; i++ {
		kind := core.Register
		if rng.Intn(5) < 2 { // 40% memory locations
			kind = core.Memory
		}
		ptrCompat := rng.Intn(10) != 0 // 10% scalars exercise smuggling rules
		vars[i] = p.AddVar("", kind, ptrCompat)
		if kind == core.Memory {
			mems = append(mems, vars[i])
		}
	}
	if len(mems) == 0 {
		mems = append(mems, p.AddVar("", core.Memory, true))
		vars = append(vars, mems[0])
	}
	anyVar := func() core.VarID { return vars[rng.Intn(len(vars))] }
	anyMem := func() core.VarID { return mems[rng.Intn(len(mems))] }

	scale := func(base int) int {
		c := int(float64(base) * opt.Density)
		if c < 1 {
			c = 1
		}
		return c
	}

	for i := 0; i < scale(n); i++ {
		p.AddBase(anyVar(), anyMem())
	}
	for i := 0; i < scale(n); i++ {
		p.AddSimple(anyVar(), anyVar())
	}
	for i := 0; i < scale(n/3); i++ {
		p.AddLoad(anyVar(), anyVar())
	}
	for i := 0; i < scale(n/3); i++ {
		p.AddStore(anyVar(), anyVar())
	}
	// A handful of functions and calls so the Func/Call rules run too.
	for i := 0; i < scale(n/12); i++ {
		f := anyMem()
		args := []core.VarID{anyVar(), anyVar()}
		p.AddFunc(f, anyVar(), args)
		tgt := anyVar()
		p.AddBase(tgt, f)
		p.AddCall(tgt, anyVar(), []core.VarID{anyVar(), anyVar()})
	}
	// Seed the Ω machinery: external roots, escape sources, and the
	// smuggling flags, so PIP's non-monotone rules 1-4 all fire.
	for i := 0; i < scale(n/8); i++ {
		p.SetFlag(anyMem(), core.FlagExternal)
	}
	for _, fl := range []core.Flags{
		core.FlagPointsExt, core.FlagEscapedPointees,
		core.FlagStoreScalar, core.FlagLoadScalar,
	} {
		for i := 0; i < scale(n/16); i++ {
			p.SetFlag(anyVar(), fl)
		}
	}

	if opt.Cyclic {
		// Two long simple-edge cycles threaded through random variables,
		// plus explicit self-loops: both collapse paths (offline SCC and
		// online OCD/HCD/LCD) and the stratifier's single-node strata get
		// exercised.
		for c := 0; c < 2; c++ {
			ring := make([]core.VarID, 0, n/8)
			for i := 0; i < n/8; i++ {
				ring = append(ring, anyVar())
			}
			for i := range ring {
				p.AddSimple(ring[(i+1)%len(ring)], ring[i])
			}
		}
		for i := 0; i < 3; i++ {
			v := anyVar()
			p.AddSimple(v, v)
		}
	}
	return p
}
