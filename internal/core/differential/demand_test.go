package differential

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pip-analysis/pip/internal/core"
)

// checkDemand is the demand-vs-exhaustive oracle, shared with the
// FuzzDemandSlice target: explored variables must answer exactly like the
// full reference solution, unexplored ones exactly Ω (escaped, pointing
// externally when pointer-compatible, no explicit pointees).
func checkDemand(p *core.Problem, res *core.DemandResult, ref *core.Solution) error {
	for v := core.VarID(0); int(v) < p.NumVars(); v++ {
		if res.Explored[v] {
			if got, want := res.Sol.PointsToExternal(v), ref.PointsToExternal(v); got != want {
				return fmt.Errorf("var %d explored: PointsToExternal=%v want %v", v, got, want)
			}
			if got, want := res.Sol.Escaped(v), ref.Escaped(v); got != want {
				return fmt.Errorf("var %d explored: Escaped=%v want %v", v, got, want)
			}
			got, want := res.Sol.Explicit(v), ref.Explicit(v)
			if len(got) != len(want) {
				return fmt.Errorf("var %d explored: explicit %v want %v", v, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					return fmt.Errorf("var %d explored: explicit %v want %v", v, got, want)
				}
			}
			continue
		}
		if !res.Sol.Escaped(v) {
			return fmt.Errorf("var %d unexplored but not escaped", v)
		}
		if p.PtrCompat[v] && !res.Sol.PointsToExternal(v) {
			return fmt.Errorf("var %d unexplored but not pointing externally", v)
		}
		if ex := res.Sol.Explicit(v); len(ex) != 0 {
			return fmt.Errorf("var %d unexplored with explicit pointees %v", v, ex)
		}
	}
	return nil
}

// TestDemandOracleRepresentative runs the demand-vs-exhaustive oracle
// across the full representative configuration set (the same 12 cells the
// parallel differential gate sweeps — demand, unlike resume, supports
// every configuration) on generator-driven problems.
func TestDemandOracleRepresentative(t *testing.T) {
	for _, cfg := range RepresentativeConfigs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				p := Generate(seed, DefaultGen())
				ref := core.MustSolve(p, cfg)
				rng := rand.New(rand.NewSource(seed * 6151))
				for trial := 0; trial < 3; trial++ {
					roots := []core.VarID{core.VarID(rng.Intn(p.NumVars()))}
					if trial == 2 {
						roots = append(roots, core.VarID(rng.Intn(p.NumVars())))
					}
					res, err := core.SolveDemand(p, cfg, roots)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					for _, r := range roots {
						if !res.Explored[r] {
							t.Fatalf("seed %d: root %d not explored", seed, r)
						}
					}
					if err := checkDemand(p, res, ref); err != nil {
						t.Fatalf("seed %d roots %v: %v", seed, roots, err)
					}
				}
			}
		})
	}
}

// TestDemandBudgetExhaustion exhausts firing budgets inside demand solves
// across several representative cells and asserts the degraded answer is
// ⊒ the exact reference everywhere: every escaped-in-reference variable
// stays escaped, every explicit reference pointee survives (possibly
// absorbed into Ω), and nothing the exact solution rules out is ruled in
// as explicit-only.
func TestDemandBudgetExhaustion(t *testing.T) {
	configs := []core.Config{
		{Rep: core.EP, Solver: core.Naive},
		{Rep: core.IP, Solver: core.Worklist, Order: core.FIFO},
		{Rep: core.IP, Solver: core.Worklist, Order: core.LRF2, HCD: true, DP: true},
		{Rep: core.IP, OVS: true, Solver: core.Worklist, Order: core.LRF, OCD: true, DP: true, PIP: true},
	}
	p := Generate(3, DefaultGen())
	for _, cfg := range configs {
		ref := core.MustSolve(p, cfg)
		cfg.Budget = core.Budget{Firings: 7}
		res, err := core.SolveDemand(p, cfg, []core.VarID{0, 1})
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if !res.Sol.Degraded {
			t.Fatalf("%s: firing cap 7 did not degrade a default-shape problem", cfg)
		}
		for v := core.VarID(0); int(v) < p.NumVars(); v++ {
			if ref.Escaped(v) && !res.Sol.Escaped(v) {
				t.Fatalf("%s: degraded demand dropped escape of var %d", cfg, v)
			}
			if ref.PointsToExternal(v) && !res.Sol.PointsToExternal(v) {
				t.Fatalf("%s: degraded demand dropped external pointee of var %d", cfg, v)
			}
			if res.Sol.Escaped(v) {
				continue // Ω answer covers any explicit set
			}
			got := map[core.VarID]bool{}
			for _, x := range res.Sol.Explicit(v) {
				got[x] = true
			}
			for _, x := range ref.Explicit(v) {
				if !got[x] {
					t.Fatalf("%s: degraded demand dropped pointee %d of var %d", cfg, x, v)
				}
			}
		}
	}
}
