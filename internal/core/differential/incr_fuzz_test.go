package differential

import (
	"testing"

	"github.com/pip-analysis/pip/internal/core"
)

// fuzzConfigs is the configuration palette the incremental fuzzers draw
// from: the resumable trajectory (IP worklist cells, where edits actually
// resume) plus EP and PIP cells that force the fallback path.
func fuzzConfigs() []core.Config {
	return []core.Config{
		{Rep: core.IP, Solver: core.Worklist, Order: core.FIFO},
		{Rep: core.IP, Solver: core.Worklist, Order: core.Topo, DP: true},
		{Rep: core.EP, Solver: core.Worklist, Order: core.FIFO},
		{Rep: core.IP, Solver: core.Worklist, Order: core.FIFO, PIP: true},
	}
}

// FuzzIncrementalEdit feeds byte-coded edit scripts through the
// incremental lineage and demands bit-identity with from-scratch solves
// after every edit. The first byte picks the problem seed, the second the
// configuration; the rest is the script (see ApplyEdits for the coding).
func FuzzIncrementalEdit(f *testing.F) {
	// Hand-built seeds for the historically scary shapes:
	// a copy-edge deletion that lands inside a collapsed SCC (the base
	// problem is cyclic, op 4 deletes a Simple edge, and the monotone
	// state built by cycle collapse must be discarded, not patched);
	f.Add([]byte{1, 0, 4, 0, 0})
	// a store flipped into a load with the same endpoints (op 6): a
	// non-monotone rewrite whose delta is one removal plus one addition;
	f.Add([]byte{1, 0, 6, 0, 0})
	// a rename chased by growth (reuse path immediately followed by a
	// resume, checking the carried-forward checkpoint);
	f.Add([]byte{2, 0, 5, 3, 9, 0, 11, 42})
	// universe growth under EP, which must fall back (op 1);
	f.Add([]byte{3, 2, 1, 7, 0})
	// and a longer mixed script over the PIP cell.
	f.Add([]byte{2, 3, 0, 1, 2, 4, 5, 6, 7, 8, 9, 1, 3, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 || len(data) > 64 {
			t.Skip()
		}
		seed := int64(data[0]%4) + 1
		cfgs := fuzzConfigs()
		cfg := cfgs[int(data[1])%len(cfgs)]
		// A small problem keeps the per-exec cost low enough to fuzz.
		base := Generate(seed, GenOptions{Vars: 96, Density: 0.8, Cyclic: true})
		if _, err := CheckEditScript(base, data[2:], cfg); err != nil {
			t.Fatalf("seed %d, config %s: %v", seed, cfg, err)
		}
	})
}

// FuzzDemandSlice feeds root selections through the demand solver and
// checks the demand-vs-exhaustive oracle. The first byte picks the
// problem seed, the second the configuration; remaining bytes select
// roots modulo the variable count (the problem gets one extra
// constraint-free variable appended, so root bytes can land on a pointer
// no constraint references — the slice must stay exactly itself).
func FuzzDemandSlice(f *testing.F) {
	// Hand seeds: a query on the unreferenced pointer (root byte 96 is
	// the appended constraint-free variable for the generated sizes), a
	// single mid-graph root, and a multi-root query mixing both.
	f.Add([]byte{1, 0, 96})
	f.Add([]byte{2, 1, 17})
	f.Add([]byte{3, 3, 96, 17, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 || len(data) > 32 {
			t.Skip()
		}
		seed := int64(data[0]%4) + 1
		cfgs := fuzzConfigs()
		cfg := cfgs[int(data[1])%len(cfgs)]
		p := Generate(seed, GenOptions{Vars: 96, Density: 0.8, Cyclic: true})
		p.AddVar("unreferenced", core.Register, true)
		roots := make([]core.VarID, 0, len(data)-2)
		for _, b := range data[2:] {
			roots = append(roots, core.VarID(int(b)%p.NumVars()))
		}
		res, err := core.SolveDemand(p, cfg, roots)
		if err != nil {
			t.Fatalf("seed %d, config %s: %v", seed, cfg, err)
		}
		for _, r := range roots {
			if !res.Explored[r] {
				t.Fatalf("seed %d: root %d not explored", seed, r)
			}
		}
		ref := core.MustSolve(p, cfg)
		if err := checkDemand(p, res, ref); err != nil {
			t.Fatalf("seed %d, config %s, roots %v: %v", seed, cfg, roots, err)
		}
	})
}
