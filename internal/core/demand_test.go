package core

import (
	"math/rand"
	"testing"
)

// demandConfigs is a small cross-section including unification and PIP
// cells (demand supports every configuration, unlike resume).
func demandConfigs() []Config {
	return []Config{
		{Rep: EP, Solver: Naive},
		{Rep: IP, Solver: Worklist, Order: FIFO},
		{Rep: EP, Solver: Worklist, Order: LIFO, LCD: true},
		{Rep: IP, Solver: Worklist, Order: LRF, OVS: true, DP: true},
		{Rep: EP, Solver: Wave},
		{Rep: IP, Solver: Worklist, Order: FIFO, PIP: true},
		{Rep: IP, Solver: Worklist, Order: LIFO, HCD: true, PIP: true},
	}
}

// assertDemandMatches checks the demand contract against a full reference
// solution: exact equality on explored variables, exactly Ω on unexplored
// ones.
func assertDemandMatches(t *testing.T, res *DemandResult, ref *Solution, label string) {
	t.Helper()
	n := ref.NumVars()
	for v := VarID(0); int(v) < n; v++ {
		if res.Explored[v] {
			if got, want := res.Sol.PointsToExternal(v), ref.PointsToExternal(v); got != want {
				t.Fatalf("%s: var %d explored: PointsToExternal=%v want %v", label, v, got, want)
			}
			if got, want := res.Sol.Escaped(v), ref.Escaped(v); got != want {
				t.Fatalf("%s: var %d explored: Escaped=%v want %v", label, v, got, want)
			}
			got, want := res.Sol.Explicit(v), ref.Explicit(v)
			if len(got) != len(want) {
				t.Fatalf("%s: var %d explored: explicit %v want %v", label, v, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: var %d explored: explicit %v want %v", label, v, got, want)
				}
			}
		} else {
			if !res.Sol.Escaped(v) {
				t.Fatalf("%s: var %d unexplored but not escaped", label, v)
			}
			if ref.Problem().PtrCompat[v] && !res.Sol.PointsToExternal(v) {
				t.Fatalf("%s: var %d unexplored but not pointing externally", label, v)
			}
			if ex := res.Sol.Explicit(v); len(ex) != 0 {
				t.Fatalf("%s: var %d unexplored with explicit pointees %v", label, v, ex)
			}
		}
	}
}

// TestDemandMatchesExhaustive asserts the demand solve equals the full
// solution on explored variables and is exactly Ω on unexplored ones.
func TestDemandMatchesExhaustive(t *testing.T) {
	for _, cfg := range demandConfigs() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				p := genCheckpointProblem(seed, 72)
				ref := MustSolve(p, cfg)
				rng := rand.New(rand.NewSource(seed * 1013))
				for trial := 0; trial < 4; trial++ {
					roots := []VarID{VarID(rng.Intn(p.NumVars()))}
					if trial == 3 {
						roots = append(roots, VarID(rng.Intn(p.NumVars())))
					}
					res, err := SolveDemand(p, cfg, roots)
					if err != nil {
						t.Fatalf("seed %d: demand: %v", seed, err)
					}
					for _, r := range roots {
						if !res.Explored[r] {
							t.Fatalf("seed %d: root %d not explored", seed, r)
						}
					}
					if res.Stats.ExploredVars > res.Stats.TotalVars ||
						res.Stats.ExploredConstraints > res.Stats.TotalConstraints {
						t.Fatalf("seed %d: inconsistent stats %+v", seed, res.Stats)
					}
					assertDemandMatches(t, res, ref, cfg.String())
				}
			}
		})
	}
}

// TestDemandUnreferencedRootAndEmpty covers the degenerate slices: a root
// with no constraints explores only itself; no roots explores nothing and
// every answer is Ω.
func TestDemandUnreferencedRoot(t *testing.T) {
	p := NewProblem()
	a := p.AddVar("a", Register, true)
	m := p.AddVar("m", Memory, true)
	lone := p.AddVar("lone", Register, true)
	p.AddBase(a, m)
	cfg := Config{Rep: IP, Solver: Worklist}
	res, err := SolveDemand(p, cfg, []VarID{lone})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Explored[lone] || res.Explored[a] || res.Explored[m] {
		t.Fatalf("unexpected exploration mask %v", res.Explored)
	}
	if res.Sol.PointsToExternal(lone) || res.Sol.Escaped(lone) {
		t.Fatal("constraint-free root should have the exact empty answer")
	}
	if !res.Sol.Escaped(a) || !res.Sol.PointsToExternal(a) {
		t.Fatal("unexplored variable should answer Ω")
	}

	none, err := SolveDemand(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := VarID(0); int(v) < p.NumVars(); v++ {
		if none.Explored[v] {
			t.Fatalf("no-root demand explored %d", v)
		}
	}

	if _, err := SolveDemand(p, cfg, []VarID{VarID(99)}); err == nil {
		t.Fatal("out-of-range root should error")
	}
}

// TestDemandDegradedIsSound exhausts the budget inside a demand solve and
// asserts the degraded answer is ⊒ the exact reference everywhere.
func TestDemandDegradedIsSound(t *testing.T) {
	p := genCheckpointProblem(3, 96)
	cfg := Config{Rep: IP, Solver: Worklist, Budget: Budget{Firings: 5}}
	res, err := SolveDemand(p, cfg, []VarID{0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sol.Degraded {
		t.Skip("budget did not exhaust at this scale")
	}
	for v := VarID(0); int(v) < p.NumVars(); v++ {
		if !res.Sol.Escaped(v) {
			t.Fatalf("degraded demand: var %d not escaped", v)
		}
		if p.PtrCompat[v] && !res.Sol.PointsToExternal(v) {
			t.Fatalf("degraded demand: var %d not pointing externally", v)
		}
	}
}
