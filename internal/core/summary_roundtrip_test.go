package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSummaryRoundTripSerialize is the wire-format property test:
// build → serialize → parse must reproduce the summary exactly (Equal and
// Hash), across generated problems of several shapes and the empty
// problem.
func TestSummaryRoundTripSerialize(t *testing.T) {
	problems := []*Problem{NewProblem()}
	for seed := int64(1); seed <= 6; seed++ {
		problems = append(problems, genCheckpointProblem(seed, 40+8*int(seed)))
	}
	for i, p := range problems {
		s := BuildSummary(p)
		parsed, err := ParseSummary(s.Serialize())
		if err != nil {
			t.Fatalf("problem %d: parse: %v", i, err)
		}
		if !parsed.Equal(s) {
			t.Fatalf("problem %d: parsed summary differs from built", i)
		}
		if parsed.Hash() != s.Hash() {
			t.Fatalf("problem %d: hash not stable across round-trip", i)
		}
		if parsed.NumVars() != s.NumVars() || parsed.NumConstraints() != s.NumConstraints() {
			t.Fatalf("problem %d: size metrics drifted across round-trip", i)
		}
		// Serialization is canonical: re-serializing the parse is
		// byte-identical.
		if !bytes.Equal(parsed.Serialize(), s.Serialize()) {
			t.Fatalf("problem %d: serialization not canonical", i)
		}
	}
}

// TestSummaryDiffApply is the diff algebra property test: for arbitrary
// summary pairs (A, B), DiffSummaries(A, B).Apply(A) must equal B — the
// delta is a complete edit script between the two generations, in either
// direction. The self-diff must be empty.
func TestSummaryDiffApply(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		a := BuildSummary(genCheckpointProblem(rng.Int63n(1000)+1, 32+rng.Intn(64)))
		b := BuildSummary(genCheckpointProblem(rng.Int63n(1000)+1, 32+rng.Intn(64)))

		if !DiffSummaries(a, a).Empty() {
			t.Fatal("self-diff not empty")
		}
		d := DiffSummaries(a, b)
		if got := d.Apply(a); !got.Equal(b) {
			t.Fatalf("trial %d: Apply(Diff(a,b), a) != b", trial)
		}
		if got := d.Apply(a); got.Hash() != b.Hash() {
			t.Fatalf("trial %d: applied hash differs", trial)
		}
		// The reverse delta must also be a complete edit script.
		if got := DiffSummaries(b, a).Apply(b); !got.Equal(a) {
			t.Fatalf("trial %d: Apply(Diff(b,a), b) != a", trial)
		}
		if d.Empty() && a.Hash() != b.Hash() {
			t.Fatalf("trial %d: empty delta between distinct summaries", trial)
		}
	}
}

// TestSummaryDiffApplyAfterEdits mirrors the incremental pipeline's exact
// usage: small edits applied to one problem, with the delta between
// consecutive generations applied to the old summary reproducing the new
// one, and the monotonicity verdict matching the edit's shape.
func TestSummaryDiffApplyAfterEdits(t *testing.T) {
	base := genCheckpointProblem(7, 64)
	old := BuildSummary(base)

	grown := base.Clone()
	v := grown.AddVar("p", Register, true)
	m := grown.AddVar("o", Memory, true)
	grown.AddBase(v, m)
	grown.AddSimple(0, v)
	newSum := BuildSummary(grown)
	d := DiffSummaries(old, newSum)
	if d.Removed() != 0 || !d.Monotone() {
		t.Fatalf("pure growth should be monotone: +%d/-%d", d.Added(), d.Removed())
	}
	if !d.Apply(old).Equal(newSum) {
		t.Fatal("growth delta does not reproduce the new summary")
	}

	shrunk := base.Clone()
	shrunk.Simple = shrunk.Simple[:len(shrunk.Simple)-1]
	d = DiffSummaries(old, BuildSummary(shrunk))
	if d.Removed() == 0 || d.Monotone() {
		t.Fatalf("removal should be non-monotone: +%d/-%d", d.Added(), d.Removed())
	}
	if !d.Apply(old).Equal(BuildSummary(shrunk)) {
		t.Fatal("removal delta does not reproduce the new summary")
	}
}

// TestSummaryParseRejects pins the parser's error handling: corrupted
// inputs must produce errors, never panics or silently wrong summaries.
func TestSummaryParseRejects(t *testing.T) {
	good := BuildSummary(genCheckpointProblem(1, 24)).Serialize()
	bad := [][]byte{
		nil,
		[]byte("not a summary"),
		[]byte("pipsummary v1\n"),
		[]byte("pipsummary v1\nvars -3\n"),
		[]byte("pipsummary v1\nvars 1\nv zz\n"),
		[]byte("pipsummary v1\nvars 1\nv r1ff\nb 0\n"),
		[]byte("pipsummary v1\nvars 2\nv r1ff\n"), // fewer vars than declared
	}
	for i, data := range bad {
		if _, err := ParseSummary(data); err == nil {
			t.Errorf("corrupt input %d parsed without error", i)
		}
	}
	// Byte-flip robustness: a corrupted byte either parses to a summary
	// (benign flips inside numbers) or errors — it must never panic.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), good...)
		data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		_, _ = ParseSummary(data)
	}
}
