package core

import "github.com/pip-analysis/pip/internal/obs"

// This file implements the online cycle-detection techniques of Table IV:
// OCD (detect and collapse every cycle the moment an edge creates one) and
// the collapse step shared with LCD (lazy detection triggered from
// propagate when two sets are already equal). Cycle elimination never
// changes the solution, only the work needed to reach it (Section II-D).

// succSlice returns a snapshot of r's simple-edge successors.
func (s *solver) succSlice(r VarID) []uint32 {
	if s.succ[r] == nil {
		return nil
	}
	return s.succ[r].Slice()
}

// collapseAllSCCs collapses every simple-edge cycle currently in the graph.
func (s *solver) collapseAllSCCs() {
	defer s.collapseSpan()()
	t := &tarjanState{
		s:       s,
		index:   map[VarID]int{},
		lowlink: map[VarID]int{},
		onStack: map[VarID]bool{},
	}
	for v := 0; v < s.n; v++ {
		if s.budgetExhausted() {
			return
		}
		r := s.find(VarID(v))
		if _, seen := t.index[r]; !seen {
			t.strongConnect(r)
		}
	}
}

// ocdCheck runs after inserting edge src→dst: if dst reaches src, the new
// edge closed a cycle; collapse the strongly connected component.
func (s *solver) ocdCheck(src, dst VarID) {
	if s.aborted {
		return
	}
	defer s.collapseSpan()()
	if !s.reaches(dst, src) {
		return
	}
	s.detectAndCollapse(dst, src)
}

// reaches reports whether from reaches to along simple edges.
func (s *solver) reaches(from, to VarID) bool {
	from, to = s.find(from), s.find(to)
	if from == to {
		return true
	}
	s.markGen++
	gen := s.markGen
	stack := []VarID{from}
	s.visitMark[from] = gen
	for len(stack) > 0 {
		if s.budgetExhausted() {
			// Answering "no" on abort is harmless: the caller collapses
			// fewer cycles, and the solve is about to degrade anyway.
			return false
		}
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range s.succSlice(u) {
			v := s.find(q)
			if v == to {
				return true
			}
			if s.visitMark[v] != gen {
				s.visitMark[v] = gen
				stack = append(stack, v)
			}
		}
	}
	return false
}

// detectAndCollapse runs Tarjan's algorithm from root over the simple-edge
// graph and collapses every non-trivial strongly connected component it
// finds. The must pair (root, other) is known or suspected to share a
// cycle; collapsing all SCCs reachable from root covers it.
func (s *solver) detectAndCollapse(root, other VarID) {
	if s.aborted {
		return
	}
	defer s.collapseSpan()()
	root = s.find(root)
	t := &tarjanState{
		s:       s,
		index:   map[VarID]int{},
		lowlink: map[VarID]int{},
		onStack: map[VarID]bool{},
	}
	t.strongConnect(root)
	_ = other
}

type tarjanState struct {
	s       *solver
	index   map[VarID]int
	lowlink map[VarID]int
	onStack map[VarID]bool
	stack   []VarID
	next    int
}

// strongConnect is an iterative Tarjan SCC over representatives.
func (t *tarjanState) strongConnect(v0 VarID) {
	type frame struct {
		v     VarID
		succs []uint32
		i     int
	}
	s := t.s
	frames := []frame{{v: v0, succs: s.succSlice(v0)}}
	t.index[v0] = t.next
	t.lowlink[v0] = t.next
	t.next++
	t.stack = append(t.stack, v0)
	t.onStack[v0] = true

	for len(frames) > 0 {
		if s.budgetExhausted() {
			// Unwind mid-Tarjan: partially collapsed state is fine, the
			// degraded solution is built from the Problem alone.
			return
		}
		f := &frames[len(frames)-1]
		advanced := false
		for f.i < len(f.succs) {
			w := s.find(f.succs[f.i])
			f.i++
			if w == f.v {
				continue
			}
			if _, seen := t.index[w]; !seen {
				t.index[w] = t.next
				t.lowlink[w] = t.next
				t.next++
				t.stack = append(t.stack, w)
				t.onStack[w] = true
				frames = append(frames, frame{v: w, succs: s.succSlice(w)})
				advanced = true
				break
			}
			if t.onStack[w] && t.index[w] < t.lowlink[f.v] {
				t.lowlink[f.v] = t.index[w]
			}
			if t.lowlink[w] < t.lowlink[f.v] && t.onStack[w] {
				t.lowlink[f.v] = t.lowlink[w]
			}
		}
		if advanced {
			continue
		}
		// Finished f.v: maybe the root of an SCC.
		if t.lowlink[f.v] == t.index[f.v] {
			var comp []VarID
			for {
				w := t.stack[len(t.stack)-1]
				t.stack = t.stack[:len(t.stack)-1]
				t.onStack[w] = false
				comp = append(comp, w)
				if w == f.v {
					break
				}
			}
			if len(comp) > 1 {
				merged := comp[0]
				for _, w := range comp[1:] {
					merged = s.unify(merged, w)
				}
				s.tk.Event("scc_collapse",
					obs.N("size", int64(len(comp))), obs.N("rep", int64(merged)))
			}
		}
		frames = frames[:len(frames)-1]
		if len(frames) > 0 {
			parent := &frames[len(frames)-1]
			if t.lowlink[f.v] < t.lowlink[parent.v] {
				t.lowlink[parent.v] = t.lowlink[f.v]
			}
		}
	}
}
