package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/pip-analysis/pip/internal/bitset"
)

// SolveStats records measurable work done by a solve, used by the benchmark
// harness for Tables V and VI.
type SolveStats struct {
	// Duration is the wall-clock time of the constraint-solving phase.
	Duration time.Duration
	// ExplicitPointees is the total number of explicit pointees across all
	// (representative) solution sets, the Table VI metric.
	ExplicitPointees int
	// Visits counts worklist node visits (0 for the naive solver).
	Visits int
	// Passes counts full fixed-point passes of the naive solver.
	Passes int
	// Unifications counts cycle-elimination merges performed.
	Unifications int
	// SimpleEdges is the number of simple edges at fixed point.
	SimpleEdges int
}

// Solution is the result of solving a Problem: Sol : P → ℘(M), decomposed
// into explicit pointees (Sol_e) and the implicit part (Sol_i = E when the
// variable is marked x ⊒ Ω, Section III-D).
type Solution struct {
	p *Problem
	// repOf[v] is v's cycle representative, flattened from the solver's
	// union-find forest when the solve finishes. A plain slice (instead of
	// the live forest) makes every Solution query read-only: uf.Find
	// path-compresses, which would be a data race when a solution is
	// shared across goroutines (as the engine's cache does).
	repOf []VarID
	// pts[r] is Sol_e for representative r.
	pts []*bitset.Set
	// pointsExt[r] reports x ⊒ Ω for representative r.
	pointsExt []bool
	// external[v] reports Ω ⊒ {v} per original variable.
	external []bool
	// omega is the materialized Ω variable in EP mode, or NoVar.
	omega VarID

	Stats SolveStats

	// Degraded reports that the solve exhausted its Budget and this is the
	// trivially sound Ω-degraded solution, not the exact fixed point.
	Degraded bool

	// Telemetry is the per-solve instrumentation block: phase timers, rule
	// firing counts, and the worklist high-water mark.
	Telemetry Telemetry
}

// OmegaPointee is the pseudo memory location standing for "all memory in
// external modules not represented by any other abstract location" in
// reported points-to sets.
const OmegaPointee VarID = NoVar - 1

// NumVars returns the number of variables in the underlying problem
// (excluding the materialized Ω, if any).
func (s *Solution) NumVars() int { return s.p.NumVars() }

// Problem returns the problem this solution solves.
func (s *Solution) Problem() *Problem { return s.p }

// rep returns the variable's representative.
func (s *Solution) rep(v VarID) VarID { return s.repOf[v] }

// Rep returns v's cycle representative: variables unified by cycle
// elimination share one representative and therefore one points-to set.
// The differential harness compares representatives across solver paths.
func (s *Solution) Rep(v VarID) VarID { return s.repOf[v] }

// PointsToExternal reports whether v may target external memory (v ⊒ Ω).
func (s *Solution) PointsToExternal(v VarID) bool {
	if s.omega != NoVar {
		r := s.rep(v)
		return s.pts[r] != nil && s.pts[r].Contains(s.omega)
	}
	return s.pointsExt[s.rep(v)]
}

// Escaped reports whether location v is externally accessible (Ω ⊒ {v}).
// In EP mode the external table is consulted alongside Ω's points-to set:
// full solves record escapes only in the set, while demand solves mark
// unexplored variables through the table so the Ω answer never leaks into
// the explicit sets of variables unified with Ω (see demand.go).
func (s *Solution) Escaped(v VarID) bool {
	if s.external[v] {
		return true
	}
	if s.omega != NoVar {
		ro := s.rep(s.omega)
		return s.pts[ro] != nil && s.pts[ro].Contains(v)
	}
	return false
}

// ExternalSet returns E: all externally accessible memory locations, sorted.
func (s *Solution) ExternalSet() []VarID {
	var out []VarID
	if s.omega != NoVar {
		seen := make(map[VarID]bool)
		ro := s.rep(s.omega)
		if s.pts[ro] != nil {
			s.pts[ro].ForEach(func(x uint32) {
				if x != s.omega {
					out = append(out, x)
					seen[x] = true
				}
			})
		}
		// Demand solves mark unexplored variables through the external
		// table (Escaped documents why); merge them in, keeping the sort.
		extra := false
		for v := VarID(0); v < VarID(len(s.external)); v++ {
			if s.external[v] && !seen[v] && v != s.omega {
				out = append(out, v)
				extra = true
			}
		}
		if extra {
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		}
		return out
	}
	for v := VarID(0); v < VarID(len(s.external)); v++ {
		if s.external[v] {
			out = append(out, v)
		}
	}
	return out
}

// Explicit returns Sol_e(v) as a sorted slice (excluding Ω itself in EP
// mode, so EP and IP report the same explicit sets modulo doubled-up
// pointees).
func (s *Solution) Explicit(v VarID) []VarID {
	r := s.rep(v)
	if s.pts[r] == nil {
		return nil
	}
	out := make([]VarID, 0, s.pts[r].Len())
	s.pts[r].ForEach(func(x uint32) {
		if x != s.omega || s.omega == NoVar {
			out = append(out, x)
		}
	})
	return out
}

// PointsTo returns the full Sol(v) = Sol_e(v) ∪ Sol_i(v). When v may point
// to external memory, the set includes every externally accessible location
// and the OmegaPointee marker.
func (s *Solution) PointsTo(v VarID) []VarID {
	seen := map[VarID]bool{}
	for _, x := range s.Explicit(v) {
		seen[x] = true
	}
	if s.PointsToExternal(v) {
		for _, x := range s.ExternalSet() {
			seen[x] = true
		}
		seen[OmegaPointee] = true
	}
	out := make([]VarID, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MayShareTargets reports whether Sol(a) ∩ Sol(b) is non-empty, the core
// query of the alias-analysis client.
func (s *Solution) MayShareTargets(a, b VarID) bool {
	ra, rb := s.rep(a), s.rep(b)
	aExt, bExt := s.PointsToExternal(a), s.PointsToExternal(b)
	// Both have unknown-origin pointees: both may target Ω.
	if aExt && bExt {
		return true
	}
	pa, pb := s.pts[ra], s.pts[rb]
	if pa != nil && pb != nil && pa.Intersects(pb) {
		// In EP mode Ω may be the shared element; that is still a real
		// shared target (external memory).
		return true
	}
	// One side implicit: intersect the other side's explicit set with E.
	checkExt := func(explicit *bitset.Set) bool {
		if explicit == nil {
			return false
		}
		found := false
		explicit.ForEach(func(x uint32) {
			if !found && x != s.omega && s.Escaped(x) {
				found = true
			}
		})
		return found
	}
	if aExt && checkExt(pb) {
		return true
	}
	if bExt && checkExt(pa) {
		return true
	}
	return false
}

// CountExplicitPointees tallies explicit pointees over representative sets,
// the Table VI metric. Ω itself is not counted in EP mode so that EP and IP
// tallies measure the same doubled-up-pointee effect.
func (s *Solution) CountExplicitPointees() int {
	n := 0
	counted := map[VarID]bool{}
	for v := 0; v < len(s.pts); v++ {
		r := s.rep(VarID(v))
		if counted[r] || s.pts[r] == nil {
			continue
		}
		counted[r] = true
		n += s.pts[r].Len()
		if s.omega != NoVar && s.pts[r].Contains(s.omega) {
			n--
		}
	}
	return n
}

// ApproxBytes estimates the memory backing the explicit points-to sets,
// the dominant memory consumer of the analysis (paper Section VI-C).
func (s *Solution) ApproxBytes() int {
	n := 0
	counted := map[VarID]bool{}
	for v := 0; v < len(s.pts); v++ {
		r := s.rep(VarID(v))
		if counted[r] || s.pts[r] == nil {
			continue
		}
		counted[r] = true
		n += s.pts[r].ApproxBytes()
	}
	return n
}

// Canonical renders the complete solution in a normalized textual form used
// by the configuration-equivalence tests: one line per pointer-compatible
// variable with its full sorted Sol set.
func (s *Solution) Canonical() string {
	var b strings.Builder
	for v := VarID(0); v < VarID(s.p.NumVars()); v++ {
		if !s.p.PtrCompat[v] {
			continue
		}
		fmt.Fprintf(&b, "%d:", v)
		for _, x := range s.PointsTo(v) {
			if x == OmegaPointee {
				b.WriteString(" Ω")
			} else {
				fmt.Fprintf(&b, " %d", x)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fingerprint renders every observable component of the solution in a
// normalized textual form: per-variable cycle representatives, explicit
// pointee sets (Sol_e), the points-external flag (x ⊒ Ω), and the escaped
// set (Ω ⊒ {x}). Two solves of the same problem under the same
// configuration must produce byte-identical fingerprints; the engine's
// differential harness asserts exactly this across sequential, parallel,
// and cached solver paths.
func (s *Solution) Fingerprint() string {
	var b strings.Builder
	if s.Degraded {
		b.WriteString("degraded\n")
	}
	for v := VarID(0); v < VarID(s.p.NumVars()); v++ {
		fmt.Fprintf(&b, "%d r%d", v, s.Rep(v))
		if s.p.PtrCompat[v] {
			b.WriteString(" e:")
			for _, x := range s.Explicit(v) {
				fmt.Fprintf(&b, " %d", x)
			}
			if s.PointsToExternal(v) {
				b.WriteString(" Ω")
			}
		}
		if s.Escaped(v) {
			b.WriteString(" E")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dump renders a human-readable points-to report with variable names.
func (s *Solution) Dump() string {
	var b strings.Builder
	for v := VarID(0); v < VarID(s.p.NumVars()); v++ {
		if !s.p.PtrCompat[v] {
			continue
		}
		fmt.Fprintf(&b, "%s ->", s.p.Names[v])
		for _, x := range s.PointsTo(v) {
			if x == OmegaPointee {
				b.WriteString(" <external>")
			} else {
				fmt.Fprintf(&b, " %s", s.p.Names[x])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WithProblem returns a shallow copy of the solution whose queries resolve
// variable names against p instead of the originally solved problem. The
// caller must guarantee p is constraint-identical to the solved problem
// (same universe, kinds, compatibility, and constraint multiset) — the
// incremental layer uses this to reuse a solution across a pure rename,
// which by construction yields an empty summary delta.
func (s *Solution) WithProblem(p *Problem) *Solution {
	t := *s
	t.p = p
	return &t
}
