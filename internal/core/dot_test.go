package core

import (
	"strings"
	"testing"
)

func TestProblemDOT(t *testing.T) {
	prob, ids := buildFigure3(t)
	dot := ProblemDOT(prob)
	for _, frag := range []string{
		"digraph constraints",
		"shape=box",     // memory locations are squares
		"shape=ellipse", // registers are circles
		"{x}",           // base constraint of p
		"style=dashed",  // complex edges
	} {
		if !strings.Contains(dot, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, dot)
		}
	}
	_ = ids
}

func TestSolutionDOT(t *testing.T) {
	prob, ids := buildFigure1(t)
	sol := MustSolve(prob, DefaultConfig())
	dot := SolutionDOT(prob, sol)
	if !strings.Contains(dot, "x⊒Ω") {
		t.Fatalf("solution DOT missing inferred Ω marks:\n%s", dot)
	}
	// r keeps an explicit pointee (the non-escaping w) even under PIP.
	if !strings.Contains(dot, "r\\n{") {
		t.Fatalf("solution DOT missing r's solved set:\n%s", dot)
	}
	_ = ids
}

func TestDOTFuncCallLabels(t *testing.T) {
	prob, _ := buildFigure1(t)
	dot := ProblemDOT(prob)
	if !strings.Contains(dot, "Func1") || !strings.Contains(dot, "Call1") {
		t.Fatalf("DOT missing Func/Call constraint nodes:\n%s", dot)
	}
}
