package core

import "container/heap"

// worklist abstracts the iteration orders of Table IV. Nodes are pushed at
// most once (pending membership is tracked); pop order is the policy.
// size reports the number of pending nodes, feeding the telemetry
// high-water mark.
type worklist interface {
	push(n VarID)
	pop() (VarID, bool)
	size() int
}

// newWorklist constructs the worklist for the configured iteration order.
// The FIFO and LIFO orders draw their storage from the solver's arena so
// pooled solves reuse one queue allocation across jobs.
func newWorklist(o Order, s *solver) worklist {
	switch o {
	case FIFO:
		return &fifoWL{pending: s.wlPendingBuf(), q: s.wlQueueBuf()}
	case LIFO:
		return &lifoWL{pending: s.wlPendingBuf(), stack: s.wlQueueBuf()}
	case LRF:
		return newLRFWL(s.n)
	case LRF2:
		return &twoPhaseWL{cur: newLRFWL(s.n), next: newLRFWL(s.n)}
	case Topo:
		return &topoWL{s: s, pending: make([]bool, s.n)}
	default:
		return &fifoWL{pending: make([]bool, s.n)}
	}
}

// fifoWL is a first-in-first-out queue (Pearce et al.).
type fifoWL struct {
	q       []VarID
	head    int
	pending []bool
	nPend   int
}

func (w *fifoWL) size() int { return w.nPend }

func (w *fifoWL) push(n VarID) {
	if w.pending[n] {
		return
	}
	w.pending[n] = true
	w.nPend++
	w.q = append(w.q, n)
}

func (w *fifoWL) pop() (VarID, bool) {
	for w.head < len(w.q) {
		n := w.q[w.head]
		w.head++
		if w.head > 4096 && w.head*2 > len(w.q) {
			w.q = append(w.q[:0], w.q[w.head:]...)
			w.head = 0
		}
		if w.pending[n] {
			w.pending[n] = false
			w.nPend--
			return n, true
		}
	}
	w.q = w.q[:0]
	w.head = 0
	return 0, false
}

// lifoWL is a last-in-first-out stack.
type lifoWL struct {
	stack   []VarID
	pending []bool
	nPend   int
}

func (w *lifoWL) size() int { return w.nPend }

func (w *lifoWL) push(n VarID) {
	if w.pending[n] {
		return
	}
	w.pending[n] = true
	w.nPend++
	w.stack = append(w.stack, n)
}

func (w *lifoWL) pop() (VarID, bool) {
	for len(w.stack) > 0 {
		n := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		if w.pending[n] {
			w.pending[n] = false
			w.nPend--
			return n, true
		}
	}
	return 0, false
}

// lrfWL pops the node that was least recently fired (Pearce et al.): a
// min-heap keyed by the logical timestamp of the node's previous visit.
type lrfWL struct {
	h         lrfHeap
	lastFired []uint64
	pending   []bool
	clock     uint64
	nPend     int
}

func (w *lrfWL) size() int { return w.nPend }

type lrfItem struct {
	n    VarID
	fire uint64
}

type lrfHeap []lrfItem

func (h lrfHeap) Len() int            { return len(h) }
func (h lrfHeap) Less(i, j int) bool  { return h[i].fire < h[j].fire }
func (h lrfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lrfHeap) Push(x interface{}) { *h = append(*h, x.(lrfItem)) }
func (h *lrfHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

func newLRFWL(n int) *lrfWL {
	return &lrfWL{lastFired: make([]uint64, n), pending: make([]bool, n)}
}

func (w *lrfWL) push(n VarID) {
	if w.pending[n] {
		return
	}
	w.pending[n] = true
	w.nPend++
	heap.Push(&w.h, lrfItem{n: n, fire: w.lastFired[n]})
}

func (w *lrfWL) pop() (VarID, bool) {
	for w.h.Len() > 0 {
		it := heap.Pop(&w.h).(lrfItem)
		if !w.pending[it.n] {
			continue
		}
		w.pending[it.n] = false
		w.nPend--
		w.clock++
		w.lastFired[it.n] = w.clock
		return it.n, true
	}
	return 0, false
}

// twoPhaseWL is the 2-phase LRF order (Hardekopf and Lin): pops drain the
// current phase in LRF order while pushes accumulate in the next phase; the
// phases swap when the current one runs dry.
type twoPhaseWL struct {
	cur, next *lrfWL
}

func (w *twoPhaseWL) push(n VarID) { w.next.push(n) }

func (w *twoPhaseWL) size() int { return w.cur.size() + w.next.size() }

func (w *twoPhaseWL) pop() (VarID, bool) {
	if n, ok := w.cur.pop(); ok {
		return n, true
	}
	w.cur, w.next = w.next, w.cur
	// Timestamps carry across phases through each heap's own clock.
	return w.cur.pop()
}

// topoWL processes pending nodes in topological order of the current
// simple-edge graph, recomputing the order at the start of every sweep
// (Pearce et al.'s periodic topological iteration). Nodes that become
// pending mid-sweep wait for the next sweep.
type topoWL struct {
	s       *solver
	pending []bool
	order   []VarID
	idx     int
	nPend   int
}

func (w *topoWL) size() int { return w.nPend }

func (w *topoWL) push(n VarID) {
	if w.pending[n] {
		return
	}
	w.pending[n] = true
	w.nPend++
}

func (w *topoWL) pop() (VarID, bool) {
	for {
		for w.idx < len(w.order) {
			n := w.order[w.idx]
			w.idx++
			if w.pending[n] {
				w.pending[n] = false
				w.nPend--
				return n, true
			}
		}
		if w.nPend == 0 {
			return 0, false
		}
		w.computeOrder()
	}
}

// computeOrder builds a topological order (cycles broken arbitrarily by DFS
// post-order) over the representatives of all pending nodes.
func (w *topoWL) computeOrder() {
	s := w.s
	w.order = w.order[:0]
	w.idx = 0
	// Normalize pending entries whose node has been merged away, so the
	// sweep below can always retire them.
	for v := 0; v < s.n; v++ {
		if !w.pending[v] {
			continue
		}
		r := s.find(VarID(v))
		if r == VarID(v) {
			continue
		}
		w.pending[v] = false
		w.nPend--
		if !w.pending[r] {
			w.pending[r] = true
			w.nPend++
		}
	}
	s.markGen++
	gen := s.markGen
	type frame struct {
		n     VarID
		succs []uint32
		i     int
	}
	dfs := func(u VarID) {
		frames := []frame{{n: u, succs: s.succSlice(u)}}
		s.visitMark[u] = gen
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				v := s.find(f.succs[f.i])
				f.i++
				if s.visitMark[v] != gen {
					s.visitMark[v] = gen
					frames = append(frames, frame{n: v, succs: s.succSlice(v)})
				}
				continue
			}
			w.order = append(w.order, f.n)
			frames = frames[:len(frames)-1]
		}
	}
	for v := 0; v < s.n; v++ {
		r := s.find(VarID(v))
		if w.pending[r] && s.visitMark[r] != gen {
			dfs(r)
		}
	}
	// DFS emits reverse topological order; reverse it so sources come
	// first (pointees flow forward along simple edges).
	for i, j := 0, len(w.order)-1; i < j; i, j = i+1, j-1 {
		w.order[i], w.order[j] = w.order[j], w.order[i]
	}
}
