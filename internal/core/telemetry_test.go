package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/pip-analysis/pip/internal/obs"
	"github.com/pip-analysis/pip/internal/workload"
)

func TestTelemetryJSONRoundTrip(t *testing.T) {
	in := Telemetry{
		Offline:   3 * time.Millisecond,
		Propagate: 17 * time.Millisecond,
		Collapse:  5 * time.Millisecond,
		Firings: RuleFirings{
			Trans: 10, Load: 20, Store: 30, Call: 40, Flag: 50,
		},
		WorklistPeak: 1234,
		Degraded:     true,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	// Durations must serialize as integer nanoseconds under the _ns names.
	for _, want := range []string{
		`"offline_ns":3000000`, `"propagate_ns":17000000`, `"collapse_ns":5000000`,
		`"worklist_peak":1234`, `"degraded":true`, `"trans":10`, `"flag":50`,
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %s:\n%s", want, data)
		}
	}
	var out Telemetry
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v, want %+v", out, in)
	}
}

func TestTelemetryString(t *testing.T) {
	tel := Telemetry{
		Offline:      time.Millisecond,
		Firings:      RuleFirings{Trans: 2, Load: 1},
		WorklistPeak: 7,
	}
	s := tel.String()
	if !strings.Contains(s, "3 firings") || !strings.Contains(s, "worklist peak 7") {
		t.Fatalf("String = %q", s)
	}
	if strings.Contains(s, "DEGRADED") {
		t.Fatalf("non-degraded telemetry renders DEGRADED: %q", s)
	}
	tel.Degraded = true
	if s := tel.String(); !strings.HasSuffix(s, ", DEGRADED") {
		t.Fatalf("degraded telemetry missing marker: %q", s)
	}
}

// TestFiringsTotalBudgetConsistency pins down the accounting contract
// between RuleFirings.Total and Budget.Firings: the cap is compared against
// exactly the sum of the per-rule counters, so a cap at or above an
// unbudgeted solve's Total never degrades (and reproduces the same
// telemetry), while any cap below it does.
func TestFiringsTotalBudgetConsistency(t *testing.T) {
	prob := Generate(workload.GenerateLinked(7).A).Problem
	cfg := Config{Rep: IP, Solver: Worklist, Order: FIFO, PIP: true}

	exact := MustSolve(prob, cfg)
	f := exact.Telemetry.Firings
	if got := f.Trans + f.Load + f.Store + f.Call + f.Flag; got != f.Total() {
		t.Fatalf("Total() = %d, field sum = %d", f.Total(), got)
	}
	if f.Total() == 0 {
		t.Fatal("workload produced no firings; test is vacuous")
	}

	capped := cfg
	capped.Budget.Firings = f.Total()
	under := MustSolve(prob, capped)
	if under.Degraded {
		// The cap is b.Firings <= fired-so-far checked *before* the next
		// firing, so a cap equal to the exact total still aborts on the
		// loop iteration after the last firing... unless the solve finishes
		// first. Give it one slack firing to make the contract crisp.
		capped.Budget.Firings = f.Total() + 1
		under = MustSolve(prob, capped)
		if under.Degraded {
			t.Fatal("cap of Total+1 still degraded")
		}
	}
	if under.Telemetry.Firings != f {
		t.Fatalf("budgeted-but-unexhausted telemetry differs: %+v vs %+v",
			under.Telemetry.Firings, f)
	}

	capped.Budget.Firings = f.Total() / 2
	over := MustSolve(prob, capped)
	if !over.Degraded || !over.Telemetry.Degraded {
		t.Fatalf("cap of Total/2 did not degrade (Degraded=%v, tel=%v)",
			over.Degraded, over.Telemetry.Degraded)
	}
	// The budget check is strided (loop tops and every 64 inner
	// iterations), so the abort lands at or shortly after the cap — never
	// anywhere near the unbudgeted total.
	if got := over.Telemetry.Firings.Total(); got < f.Total()/2 || got >= f.Total() {
		t.Fatalf("degraded solve fired %d times, cap %d, exact total %d",
			got, f.Total()/2, f.Total())
	}

	capped.Budget.Firings = -1
	now := MustSolve(prob, capped)
	if !now.Degraded {
		t.Fatal("negative cap did not degrade immediately")
	}
}

// TestSolveTracedSpans asserts the trace contract the -trace flag relies
// on: a traced solve records the offline/propagate/collapse phase spans, an
// scc_collapse event for each collapsed cycle, and convergence-profile
// counter samples — and tracing does not change the solution.
func TestSolveTracedSpans(t *testing.T) {
	prob := NewProblem()
	x := prob.AddVar("x", Memory, false)
	vars := make([]VarID, 4)
	for i := range vars {
		vars[i] = prob.AddVar(string(rune('a'+i)), Register, true)
	}
	prob.AddBase(vars[0], x)
	// a → b → c → a is a simple-edge cycle; OCD collapses it up front.
	prob.AddSimple(vars[1], vars[0])
	prob.AddSimple(vars[2], vars[1])
	prob.AddSimple(vars[0], vars[2])
	prob.AddSimple(vars[3], vars[2])

	cfg := Config{Rep: IP, Solver: Worklist, Order: FIFO, OCD: true, PIP: true}
	tr := obs.New("test-solve", 1<<12)
	sol, err := SolveTraced(prob, cfg, tr.NewTrack("solver"))
	if err != nil {
		t.Fatal(err)
	}
	plain := MustSolve(prob, cfg)
	for _, v := range vars {
		got, want := fmt.Sprint(sol.PointsTo(v)), fmt.Sprint(plain.PointsTo(v))
		if got != want {
			t.Fatalf("tracing changed the solution at var %d: %s vs %s", v, got, want)
		}
	}

	tree := tr.Tree()
	for _, want := range []string{"solve", "offline", "propagate", "collapse",
		"scc_collapse", "worklist_depth", "explicit_pointees"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("trace tree missing %q:\n%s", want, tree)
		}
	}
	if tr.Dropped() != 0 {
		t.Fatalf("small solve dropped %d records", tr.Dropped())
	}
}
