package core

import (
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
)

// Wave-propagation solver (Pereira and Berlin, cited as reference [11] in
// the paper's related work) — an extension beyond the paper's Table IV
// configuration space. Each wave collapses every strongly connected
// component of the current simple-edge graph, then visits all nodes in
// topological order so points-to sets flow through the whole acyclic graph
// in a single pass; new edges discovered from complex constraints trigger
// the next wave. Wave is not part of AllConfigs (the paper's space) but is
// selectable explicitly via "IP+Wave" / "EP+Wave" / "IP+Wave+PIP".

// solveWave runs waves until no rule makes progress.
func (s *solver) solveWave() {
	// The worklist is only used as a change sink; waves visit every node
	// themselves.
	s.wl = newWorklist(FIFO, s)
	for v := 0; v < s.n; v++ {
		r := s.find(VarID(v))
		s.fullVisit[r] = true
	}
	for {
		s.progress = false
		if s.budgetExhausted() {
			return
		}
		// Chaos hook: an injected error mid-solve latches the abort flag,
		// so the wave solver degrades to the sound Ω top element exactly
		// like a budget exhaustion (injected panics propagate to the
		// engine's per-job recovery instead).
		if err := faults.Inject(faults.CoreWave); err != nil {
			s.aborted = true
			s.tk.Event("fault_injected", obs.S("point", string(faults.CoreWave)))
			return
		}
		wave := s.tk.Begin("wave", obs.N("pass", int64(s.stats.Passes+1)))
		s.collapseAllSCCs()
		// Stratified presaturation (SolveWorkers ≥ 1): batch-saturate the
		// TRANS closure of this wave's graph in parallel, so the visits
		// below only drive complex constraints and the PIP rules.
		s.presaturate()
		order := s.topoOrder()
		for _, r := range order {
			if s.budgetExhausted() {
				wave.End(obs.N("nodes", int64(len(order))))
				return
			}
			if s.find(r) != r {
				continue
			}
			s.fullVisit[r] = true
			s.visit(r)
		}
		s.stats.Passes++
		wave.End(obs.N("nodes", int64(len(order))))
		s.sampleConvergence()
		if !s.progress {
			// Drain the change sink: anything enqueued during the last
			// wave was already (or will be) covered because no progress
			// happened.
			for {
				if _, ok := s.wl.pop(); !ok {
					break
				}
			}
			return
		}
	}
}

// topoOrder returns all representatives in topological order of the
// simple-edge graph (sources first); cycle-free after collapseAllSCCs.
func (s *solver) topoOrder() []VarID {
	s.markGen++
	gen := s.markGen
	var order []VarID
	type frame struct {
		n     VarID
		succs []uint32
		i     int
	}
	var frames []frame
	for v := 0; v < s.n; v++ {
		root := s.find(VarID(v))
		if s.visitMark[root] == gen {
			continue
		}
		s.visitMark[root] = gen
		frames = frames[:0]
		frames = append(frames, frame{n: root, succs: s.succSlice(root)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := s.find(f.succs[f.i])
				f.i++
				if s.visitMark[w] != gen {
					s.visitMark[w] = gen
					frames = append(frames, frame{n: w, succs: s.succSlice(w)})
				}
				continue
			}
			order = append(order, f.n)
			frames = frames[:len(frames)-1]
		}
	}
	// Post-order is reverse topological; flip it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
