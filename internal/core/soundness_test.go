package core

import (
	"testing"

	"github.com/pip-analysis/pip/internal/ir"
	"github.com/pip-analysis/pip/internal/workload"
)

// The adversarial-linker soundness test (paper Section III-A), over the
// module pairs produced by workload.GenerateLinked: module A with exports
// and imports, and the closed whole program W = A + B where the external
// module B implements A's imports and abuses A's exports.
//
// Soundness condition: for every pointer p of A, the whole-program solution
// must be covered by A's incomplete-program solution:
//   - every A-owned pointee in Sol_whole(p) must be in Sol_incomplete(p);
//   - any B-owned pointee in Sol_whole(p) requires p ⊒ Ω in the
//     incomplete solution.

func TestIncompleteSolutionCoversWholeProgram(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		lg := workload.GenerateLinked(seed)
		mA, mW := lg.A, lg.Whole
		if err := ir.Verify(mA); err != nil {
			t.Fatalf("seed %d: module A invalid: %v", seed, err)
		}
		if err := ir.Verify(mW); err != nil {
			t.Fatalf("seed %d: whole program invalid: %v", seed, err)
		}
		genA := Generate(mA)
		genW := Generate(mW)
		solA := MustSolve(genA.Problem, DefaultConfig())
		solW := MustSolve(genW.Problem, DefaultConfig())

		// Map W memory ids back to A memory ids for A-owned objects.
		wToA := map[VarID]VarID{}
		for _, pair := range lg.MemPairs {
			va, okA := genA.MemOf[pair[0]]
			vw, okW := genW.MemOf[pair[1]]
			if !okA || !okW {
				// Globals are always mapped; allocas too.
				t.Fatalf("seed %d: missing memory mapping", seed)
			}
			wToA[vw] = va
		}
		// A-owned functions.
		for _, fp := range lg.LocalFuncPairs {
			wToA[genW.MemOf[fp[1]]] = genA.MemOf[fp[0]]
		}

		check := func(what string, aVar, wVar VarID) {
			aExt := solA.PointsToExternal(aVar)
			aSet := map[VarID]bool{}
			for _, x := range solA.PointsTo(aVar) {
				aSet[x] = true
			}
			for _, xw := range solW.PointsTo(wVar) {
				if xw == OmegaPointee {
					continue // whole program should not produce these
				}
				if xa, owned := wToA[xw]; owned {
					if !aSet[xa] {
						t.Fatalf("seed %d: %s: whole-program pointee %s missing from incomplete solution (ext=%v)",
							seed, what, genW.Problem.Names[xw], aExt)
					}
				} else if !aExt {
					t.Fatalf("seed %d: %s: points to B-owned %s but incomplete solution lacks ⊒ Ω",
						seed, what, genW.Problem.Names[xw])
				}
			}
		}

		// Check every A-owned memory cell and every parallel register.
		for _, pair := range lg.MemPairs {
			va := genA.MemOf[pair[0]]
			vw := genW.MemOf[pair[1]]
			if genA.Problem.PtrCompat[va] {
				check("mem "+genA.Problem.Names[va], va, vw)
			}
		}
		// Registers: walk both modules' instructions in lockstep per
		// function pair (identical bodies by construction).
		for _, fp := range lg.LocalFuncPairs {
			fa, fw := fp[0], fp[1]
			for bi := range fa.Blocks {
				for ii := range fa.Blocks[bi].Instrs {
					ia := fa.Blocks[bi].Instrs[ii]
					iw := fw.Blocks[bi].Instrs[ii]
					va, okA := genA.VarOf[ia]
					vw, okW := genW.VarOf[iw]
					if okA && okW {
						check("reg "+genA.Problem.Names[va], va, vw)
					}
				}
			}
			for pi := range fa.Params {
				va, okA := genA.VarOf[fa.Params[pi]]
				vw, okW := genW.VarOf[fw.Params[pi]]
				if okA && okW {
					check("param "+genA.Problem.Names[va], va, vw)
				}
			}
		}

		// Precision sanity: ensure the incomplete solve terminates with a
		// consistent external set.
		for _, x := range solA.ExternalSet() {
			if int(x) >= genA.Problem.NumVars() {
				t.Fatalf("seed %d: external set contains out-of-range id", seed)
			}
		}
	}
}
