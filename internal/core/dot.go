package core

import (
	"fmt"
	"sort"
	"strings"
)

// ProblemDOT renders the constraint graph in Graphviz format, following
// the paper's drawing conventions (Section II-B): virtual registers are
// circles, abstract memory locations are squares, base constraints appear
// as a braced list inside the node, simple constraints are plain edges,
// and load/store constraints are edges with a dereference marker. The six
// Ω-flag constraints are listed beneath the variable name.
func ProblemDOT(p *Problem) string { return dotRender(p, nil) }

// SolutionDOT renders the constraint graph with the solved points-to sets
// (the "blue" state of the paper's Figure 4) and the inferred p ⊒ Ω marks.
func SolutionDOT(p *Problem, sol *Solution) string { return dotRender(p, sol) }

func dotRender(p *Problem, sol *Solution) string {
	var b strings.Builder
	b.WriteString("digraph constraints {\n  rankdir=LR;\n  node [fontsize=10];\n")

	// Base sets per variable.
	base := map[VarID][]VarID{}
	if sol == nil {
		for _, e := range p.Base {
			base[e.Dst] = append(base[e.Dst], e.Src)
		}
	} else {
		for v := VarID(0); v < VarID(p.NumVars()); v++ {
			if p.PtrCompat[v] {
				base[v] = sol.Explicit(v)
			}
		}
	}

	flagText := func(v VarID) string {
		var marks []string
		f := p.Flags[v]
		if sol != nil {
			if sol.PointsToExternal(v) {
				f |= FlagPointsExt
			}
			if sol.Escaped(v) {
				f |= FlagExternal
			}
		}
		if f&FlagExternal != 0 {
			marks = append(marks, "Ω⊒{x}")
		}
		if f&FlagPointsExt != 0 {
			marks = append(marks, "x⊒Ω")
		}
		if f&FlagEscapedPointees != 0 {
			marks = append(marks, "Ω⊒x")
		}
		if f&FlagStoreScalar != 0 {
			marks = append(marks, "*x⊒Ω")
		}
		if f&FlagLoadScalar != 0 {
			marks = append(marks, "Ω⊒*x")
		}
		if f&FlagImpFunc != 0 {
			marks = append(marks, "ImpFunc")
		}
		if len(marks) == 0 {
			return ""
		}
		return "\\n" + strings.Join(marks, " ")
	}

	for v := VarID(0); v < VarID(p.NumVars()); v++ {
		shape := "ellipse"
		if p.Kind[v] == Memory {
			shape = "box"
		}
		label := p.Names[v]
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		if bs := base[v]; len(bs) > 0 {
			sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
			var names []string
			for _, x := range bs {
				n := p.Names[x]
				if n == "" {
					n = fmt.Sprintf("v%d", x)
				}
				names = append(names, n)
			}
			label += "\\n{" + strings.Join(names, ", ") + "}"
		}
		label += flagText(v)
		fmt.Fprintf(&b, "  n%d [shape=%s, label=\"%s\"];\n", v, shape, strings.ReplaceAll(label, "\"", "'"))
	}
	for _, e := range p.Simple {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.Src, e.Dst)
	}
	for _, e := range p.Load {
		// Dst ⊇ *Src: dereference at the tail.
		fmt.Fprintf(&b, "  n%d -> n%d [taillabel=\"*\", style=dashed];\n", e.Src, e.Dst)
	}
	for _, e := range p.Store {
		// *Dst ⊇ Src: dereference at the head.
		fmt.Fprintf(&b, "  n%d -> n%d [headlabel=\"*\", style=dashed];\n", e.Src, e.Dst)
	}
	for i, fc := range p.Funcs {
		fmt.Fprintf(&b, "  f%d [shape=plaintext, label=\"Func%d\"];\n", i, i+1)
		fmt.Fprintf(&b, "  f%d -> n%d [style=dotted, arrowhead=none];\n", i, fc.F)
		if fc.Ret != NoVar {
			fmt.Fprintf(&b, "  f%d -> n%d [style=dotted, label=\"r\"];\n", i, fc.Ret)
		}
		for ai, av := range fc.Args {
			if av != NoVar {
				fmt.Fprintf(&b, "  f%d -> n%d [style=dotted, label=\"a%d\"];\n", i, av, ai+1)
			}
		}
	}
	for i, cc := range p.Calls {
		fmt.Fprintf(&b, "  c%d [shape=plaintext, label=\"Call%d\"];\n", i, i+1)
		fmt.Fprintf(&b, "  c%d -> n%d [style=dotted, arrowhead=none];\n", i, cc.Target)
		if cc.Ret != NoVar {
			fmt.Fprintf(&b, "  c%d -> n%d [style=dotted, label=\"r\"];\n", i, cc.Ret)
		}
		for ai, av := range cc.Args {
			if av != NoVar {
				fmt.Fprintf(&b, "  c%d -> n%d [style=dotted, label=\"a%d\"];\n", i, av, ai+1)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
