package faults

import "testing"

// BenchmarkDisabledInject measures the cost every production call site
// pays with no registry armed: one atomic load and a nil check. This is
// the number that justifies compiling the hooks into release binaries.
func BenchmarkDisabledInject(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject(CoreSolve); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisabledShouldCorrupt is the cache-read variant of the same
// disabled-path cost.
func BenchmarkDisabledShouldCorrupt(b *testing.B) {
	Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ShouldCorrupt(EngineCacheLook) {
			b.Fatal("corrupt while disarmed")
		}
	}
}

// BenchmarkInterleavedInjectAB interleaves the disarmed hook with an
// empty baseline loop in alternating batches (the PR4 trace-overhead
// methodology): run with -bench InterleavedInjectAB and compare the two
// reported sub-benchmarks; scheduler drift affects both alike because
// they alternate within one process lifetime.
func BenchmarkInterleavedInjectAB(b *testing.B) {
	Disarm()
	var sink uint64
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink++
		}
	})
	b.Run("hook", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink++
			Inject(CoreSolve)
		}
	})
	_ = sink
}

// BenchmarkArmedMissInject measures an armed registry whose rule never
// fires (rate 0): the cost ceiling for points named in a chaos spec.
func BenchmarkArmedMissInject(b *testing.B) {
	Arm(New(3, map[Point]Rule{CoreSolve: {Kind: KindError, Rate: 0}}))
	defer Disarm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Inject(CoreSolve); err != nil {
			b.Fatal(err)
		}
	}
}
