package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "seed=42;core.wave=error:0.25;engine.dispatch=panic:@3;serve.handler=latency:0.5:2ms"
	r, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed() != 42 {
		t.Fatalf("seed = %d, want 42", r.Seed())
	}
	r2, err := ParseSpec(r.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", r.String(), err)
	}
	if r.String() != r2.String() {
		t.Fatalf("spec does not round-trip:\n  %s\n  %s", r.String(), r2.String())
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"core.wave",                 // no '='
		"core.wave=explode:0.5",     // unknown kind
		"core.wave=error",           // missing rate
		"core.wave=error:1.5",       // rate out of range
		"core.wave=error:-0.1",      // negative rate
		"core.wave=error:@0",        // zero hit trigger
		"seed=banana",               // bad seed
		"core.wave=latency:0.5:-2s", // negative latency
		"core.wave=error:0.5:junk",  // arg on argless kind
		"core.wave=mem:0.5:0MB",     // non-positive size
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestWildcardCoversAllPoints(t *testing.T) {
	r, err := ParseSpec("seed=1;*=error:1;core.wave=panic:@1")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Points() {
		if p == CoreWave {
			continue
		}
		if err := r.Inject(p); !IsFault(err) {
			t.Errorf("point %s: wildcard rule did not fire (err=%v)", p, err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("explicit panic rule did not override wildcard")
			}
		}()
		r.Inject(CoreWave)
	}()
}

// TestDeterministicFiring is the core contract: the set of hit numbers
// that fire depends only on (seed, point, rate), so any run observing N
// hits of a point injects the same number of faults in the same places.
func TestDeterministicFiring(t *testing.T) {
	const n = 10000
	fired := func() []int {
		r := New(7, map[Point]Rule{CoreSolve: {Kind: KindError, Rate: 0.05}})
		var out []int
		for i := 0; i < n; i++ {
			if r.Inject(CoreSolve) != nil {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := fired(), fired()
	if len(a) != len(b) {
		t.Fatalf("runs fired %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing sequences diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Rate sanity: 5% ± 1.5% absolute over 10k hits.
	if got := float64(len(a)) / n; got < 0.035 || got > 0.065 {
		t.Errorf("rate 0.05 fired at %.4f", got)
	}
	// A different seed must give a different firing set.
	r2 := New(8, map[Point]Rule{CoreSolve: {Kind: KindError, Rate: 0.05}})
	var c []int
	for i := 0; i < n; i++ {
		if r2.Inject(CoreSolve) != nil {
			c = append(c, i)
		}
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("seeds 7 and 8 produced identical firing sequences")
	}
}

// TestDeterministicUnderConcurrency: goroutines race to consume hit
// numbers, but the total number of fired faults in N hits is exactly the
// sequential count — the decision is a pure function of the hit number.
func TestDeterministicUnderConcurrency(t *testing.T) {
	const n = 8000
	seq := New(9, map[Point]Rule{EngineDispatch: {Kind: KindError, Rate: 0.1}})
	want := 0
	for i := 0; i < n; i++ {
		if seq.Inject(EngineDispatch) != nil {
			want++
		}
	}
	conc := New(9, map[Point]Rule{EngineDispatch: {Kind: KindError, Rate: 0.1}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				conc.Inject(EngineDispatch)
			}
		}()
	}
	wg.Wait()
	if got := conc.Injected(EngineDispatch); got != uint64(want) {
		t.Fatalf("concurrent run injected %d faults, sequential injected %d", got, want)
	}
}

func TestOnHitTrigger(t *testing.T) {
	r := New(1, map[Point]Rule{CoreCollapse: {Kind: KindError, OnHit: 3}})
	for i := 1; i <= 5; i++ {
		err := r.Inject(CoreCollapse)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		if err != nil {
			f, ok := AsFault(err)
			if !ok || f.Hit != 3 || f.Point != CoreCollapse {
				t.Fatalf("fault = %+v", f)
			}
		}
	}
}

func TestPanicKindPanicsWithFault(t *testing.T) {
	r := New(1, map[Point]Rule{EngineDispatch: {Kind: KindPanic, OnHit: 1}})
	defer func() {
		f, ok := recover().(*Fault)
		if !ok || f.Kind != KindPanic || f.Point != EngineDispatch {
			t.Fatalf("recovered %v", f)
		}
	}()
	r.Inject(EngineDispatch)
	t.Fatal("no panic")
}

func TestLatencyKindSleeps(t *testing.T) {
	r := New(1, map[Point]Rule{ServeHandler: {Kind: KindLatency, OnHit: 1, Latency: 30 * time.Millisecond}})
	start := time.Now()
	if err := r.Inject(ServeHandler); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency fault slept only %v", d)
	}
}

func TestFlipOnlyViaShouldCorrupt(t *testing.T) {
	r := New(1, map[Point]Rule{EngineCacheIns: {Kind: KindFlip, OnHit: 2}})
	// Inject must not consume flip hit numbers.
	for i := 0; i < 5; i++ {
		if err := r.Inject(EngineCacheIns); err != nil {
			t.Fatal(err)
		}
	}
	if r.ShouldCorrupt(EngineCacheIns) {
		t.Fatal("hit 1 fired, trigger is @2")
	}
	if !r.ShouldCorrupt(EngineCacheIns) {
		t.Fatal("hit 2 did not fire")
	}
	if r.ShouldCorrupt(EngineCacheIns) {
		t.Fatal("hit 3 fired")
	}
	if got := r.Injected(EngineCacheIns); got != 1 {
		t.Fatalf("injected = %d, want 1", got)
	}
}

func TestMemKindAllocates(t *testing.T) {
	r := New(1, map[Point]Rule{ServeAdmission: {Kind: KindMem, OnHit: 1, MemBytes: 1 << 20}})
	if err := r.Inject(ServeAdmission); err != nil {
		t.Fatal(err)
	}
	ps := r.points[ServeAdmission]
	buf := ps.memHold.Load()
	if buf == nil || len(*buf) != 1<<20 {
		t.Fatal("mem fault did not hold its allocation")
	}
}

func TestGlobalArmDisarm(t *testing.T) {
	defer Disarm()
	if err := Inject(CoreSolve); err != nil {
		t.Fatalf("disarmed Inject returned %v", err)
	}
	Arm(New(1, map[Point]Rule{CoreSolve: {Kind: KindError, Rate: 1}}))
	if err := Inject(CoreSolve); !IsFault(err) {
		t.Fatalf("armed Inject returned %v", err)
	}
	Disarm()
	if err := Inject(CoreSolve); err != nil {
		t.Fatalf("re-disarmed Inject returned %v", err)
	}
	if Active() != nil {
		t.Fatal("Active() non-nil after Disarm")
	}
}

func TestObserverCounts(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	SetObserver(func(p Point, k Kind) {
		mu.Lock()
		counts[string(p)+"/"+k.String()]++
		mu.Unlock()
	})
	defer SetObserver(nil)
	r := New(1, map[Point]Rule{
		CoreSolve:      {Kind: KindError, Rate: 1},
		EngineCacheIns: {Kind: KindFlip, Rate: 1},
	})
	r.Inject(CoreSolve)
	r.Inject(CoreSolve)
	r.ShouldCorrupt(EngineCacheIns)
	mu.Lock()
	defer mu.Unlock()
	if counts["core.solve/error"] != 2 || counts["engine.cache.insert/flip"] != 1 {
		t.Fatalf("observer counts = %v", counts)
	}
}

func TestIsFaultUnwraps(t *testing.T) {
	f := &Fault{Point: CoreSolve, Kind: KindError, Hit: 1}
	wrapped := fmt.Errorf("job failed: %w", f)
	if !IsFault(wrapped) {
		t.Fatal("IsFault failed to unwrap")
	}
	if IsFault(errors.New("ordinary")) {
		t.Fatal("IsFault misfired on ordinary error")
	}
	got, ok := AsFault(wrapped)
	if !ok || got != f {
		t.Fatal("AsFault failed to unwrap")
	}
}
