// Package faults is a deterministic, seedable fault-injection registry.
//
// The analysis stack (core solver, batch engine, pipserve) registers named
// injection points at the places where production failures strike: job
// dispatch, cache insert/lookup, per-wave and per-cycle-collapse solver
// steps, request admission, and the HTTP handler. A chaos run arms a
// registry ("spec" grammar below) and every hook then decides — purely as
// a function of (seed, point, hit number) — whether to inject a panic, an
// error, extra latency, synthetic memory pressure, or a cache-corruption
// flip. Reruns with the same seed and the same per-point hit sequence make
// the same decisions, which is what lets the chaos suite pin invariants
// under -race and lets a failure be replayed from its seed.
//
// When no registry is armed the entire subsystem is a single atomic
// pointer load per hook (see BenchmarkDisabledInject): production binaries
// compile the hooks in and pay ~1ns for them.
//
// Spec grammar (semicolon-separated clauses):
//
//	seed=42; engine.dispatch=panic:0.02; serve.handler=latency:0.05:2ms; *=error:0.01
//
// Each clause is point=kind:rate[:arg]. point is one of the Point
// constants or "*" (applies to every registered point not named
// explicitly). kind is panic|error|latency|mem|flip. rate is a
// probability in [0,1], or "N" / an integer count with the form kind:@N,
// which fires exactly on the Nth hit (1-based) of that point. arg is the
// latency duration (latency) or allocation size like 4MB (mem).
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point names one injection site. Points are free-form strings, but the
// stack uses the constants below so specs, metrics, and docs agree.
type Point string

// The registered injection points, in stack order.
const (
	CoreSolve       Point = "core.solve"      // start of every SolveTraced, after validation
	CoreWave        Point = "core.wave"       // top of each wave in the Wave strategy
	CoreCollapse    Point = "core.collapse"   // entry of each top-level cycle collapse
	CoreStrata      Point = "core.strata"     // entry of each stratified presaturation pass
	EngineDispatch  Point = "engine.dispatch" // worker picks up a job, before solve
	EngineCacheIns  Point = "engine.cache.insert"
	EngineCacheLook Point = "engine.cache.lookup"
	ServeAdmission  Point = "serve.admission" // request admitted, before queueing
	ServeHandler    Point = "serve.handler"   // solve/alias handler, before compile
	StoreSave       Point = "store.save"      // persistent store append, before write
	StoreLoad       Point = "store.load"      // persistent store read, before decode/verify
	RouterForward   Point = "router.forward"  // shard router, before each backend attempt
)

// Points lists every built-in injection point; the chaos suite uses it to
// arm "everything at ≥1%" without enumerating sites by hand.
func Points() []Point {
	return []Point{
		CoreSolve, CoreWave, CoreCollapse, CoreStrata,
		EngineDispatch, EngineCacheIns, EngineCacheLook,
		ServeAdmission, ServeHandler,
		StoreSave, StoreLoad, RouterForward,
	}
}

// Kind is the failure mode a rule injects.
type Kind uint8

const (
	KindNone    Kind = iota
	KindPanic        // panic(*Fault) at the hook
	KindError        // Inject returns *Fault
	KindLatency      // sleep Arg (duration), then proceed normally
	KindMem          // allocate and touch MemBytes, hold until next firing
	KindFlip         // cache-corruption flip: ShouldCorrupt reports true
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindMem:
		return "mem"
	case KindFlip:
		return "flip"
	}
	return "none"
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "panic":
		return KindPanic, nil
	case "error":
		return KindError, nil
	case "latency":
		return KindLatency, nil
	case "mem":
		return KindMem, nil
	case "flip":
		return KindFlip, nil
	}
	return KindNone, fmt.Errorf("unknown fault kind %q", s)
}

// Fault is the injected failure. It is both the error returned by Inject
// for KindError and the panic value for KindPanic, so recovery layers can
// identify synthetic faults with errors.As and classify them as transient.
type Fault struct {
	Point Point
	Kind  Kind
	Hit   uint64 // 1-based hit number at which the rule fired
}

func (f *Fault) Error() string {
	return fmt.Sprintf("injected %s fault at %s (hit %d)", f.Kind, f.Point, f.Hit)
}

// Rule arms one injection point.
type Rule struct {
	Kind Kind
	// Rate is the per-hit firing probability in [0,1]. Ignored when
	// OnHit is set.
	Rate float64
	// OnHit, when nonzero, fires exactly on that 1-based hit number
	// (deterministic single-shot triggers for targeted tests).
	OnHit uint64
	// Latency is the injected delay for KindLatency.
	Latency time.Duration
	// MemBytes is the allocation size for KindMem.
	MemBytes int
}

// pointState is the armed per-point state: the rule plus an atomic hit
// counter. The counter is the only mutable field, so a Registry is safe
// for concurrent use once built.
type pointState struct {
	rule     Rule
	hits     atomic.Uint64
	injected atomic.Uint64
	// memHold keeps the most recent KindMem allocation reachable until
	// the next firing, simulating sustained pressure rather than an
	// instantly-collected spike.
	memHold atomic.Pointer[[]byte]
}

// Registry is an armed set of rules. Build one with New or ParseSpec,
// then install it process-wide with Arm (or use it directly in tests).
type Registry struct {
	seed     uint64
	points   map[Point]*pointState
	fallback *Rule // the "*" clause, lazily instantiated per new point
}

// New builds a registry with the given seed and per-point rules.
func New(seed uint64, rules map[Point]Rule) *Registry {
	r := &Registry{seed: seed, points: make(map[Point]*pointState, len(rules))}
	for p, rule := range rules {
		r.points[p] = &pointState{rule: rule}
	}
	return r
}

// Seed reports the seed the registry was built with.
func (r *Registry) Seed() uint64 { return r.seed }

// ParseSpec parses the chaos spec grammar documented at the top of the
// package. Unknown points are accepted (hooks are free-form strings);
// unknown kinds and malformed rates are errors.
func ParseSpec(spec string) (*Registry, error) {
	r := &Registry{points: map[Point]*pointState{}}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		eq := strings.IndexByte(clause, '=')
		if eq < 0 {
			return nil, fmt.Errorf("faults: clause %q is not point=value", clause)
		}
		key, val := strings.TrimSpace(clause[:eq]), strings.TrimSpace(clause[eq+1:])
		if key == "seed" {
			s, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", val)
			}
			r.seed = s
			continue
		}
		rule, err := parseRule(val)
		if err != nil {
			return nil, fmt.Errorf("faults: point %s: %w", key, err)
		}
		if key == "*" {
			cp := rule
			r.fallback = &cp
			continue
		}
		r.points[Point(key)] = &pointState{rule: rule}
	}
	if r.fallback != nil {
		for _, p := range Points() {
			if _, explicit := r.points[p]; !explicit {
				r.points[p] = &pointState{rule: *r.fallback}
			}
		}
	}
	return r, nil
}

// parseRule parses kind:rate[:arg] or kind:@N[:arg].
func parseRule(s string) (Rule, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return Rule{}, fmt.Errorf("rule %q needs kind:rate", s)
	}
	kind, err := parseKind(parts[0])
	if err != nil {
		return Rule{}, err
	}
	rule := Rule{Kind: kind}
	if strings.HasPrefix(parts[1], "@") {
		n, err := strconv.ParseUint(parts[1][1:], 10, 64)
		if err != nil || n == 0 {
			return Rule{}, fmt.Errorf("bad hit trigger %q (want @N, N ≥ 1)", parts[1])
		}
		rule.OnHit = n
	} else {
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || rate < 0 || rate > 1 || math.IsNaN(rate) {
			return Rule{}, fmt.Errorf("bad rate %q (want probability in [0,1] or @N)", parts[1])
		}
		rule.Rate = rate
	}
	if len(parts) > 2 {
		switch kind {
		case KindLatency:
			d, err := time.ParseDuration(parts[2])
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("bad latency %q", parts[2])
			}
			rule.Latency = d
		case KindMem:
			n, err := parseBytes(parts[2])
			if err != nil {
				return Rule{}, err
			}
			rule.MemBytes = n
		default:
			return Rule{}, fmt.Errorf("kind %s takes no argument", kind)
		}
	}
	if rule.Kind == KindLatency && rule.Latency == 0 {
		rule.Latency = time.Millisecond
	}
	if rule.Kind == KindMem && rule.MemBytes == 0 {
		rule.MemBytes = 8 << 20
	}
	return rule, nil
}

func parseBytes(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, s[:len(s)-2]
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, s[:len(s)-2]
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, s[:len(s)-2]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

// String renders the registry back in spec grammar (points sorted for
// stability). Round-tripping through ParseSpec yields the same rules.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", r.seed)}
	names := make([]string, 0, len(r.points))
	for p := range r.points {
		names = append(names, string(p))
	}
	sort.Strings(names)
	for _, name := range names {
		rule := r.points[Point(name)].rule
		clause := fmt.Sprintf("%s=%s", name, rule.Kind)
		if rule.OnHit > 0 {
			clause += fmt.Sprintf(":@%d", rule.OnHit)
		} else {
			clause += ":" + strconv.FormatFloat(rule.Rate, 'g', -1, 64)
		}
		switch rule.Kind {
		case KindLatency:
			clause += ":" + rule.Latency.String()
		case KindMem:
			clause += fmt.Sprintf(":%d", rule.MemBytes)
		}
		parts = append(parts, clause)
	}
	return strings.Join(parts, ";")
}

// splitmix64 is the statistical mixer behind per-hit decisions: cheap,
// stateless, and good enough that rate=p fires ≈p of hits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pointHash(p Point) uint64 {
	// FNV-1a; inlined to keep the armed hot path allocation-free.
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// fire decides whether hit number n (1-based) of point p fires. The
// decision depends only on (seed, point, n): concurrency changes which
// goroutine observes a given hit number, never how many faults a run of
// N hits injects.
func (ps *pointState) fire(seed uint64, p Point, n uint64) bool {
	if ps.rule.OnHit > 0 {
		return n == ps.rule.OnHit
	}
	if ps.rule.Rate <= 0 {
		return false
	}
	if ps.rule.Rate >= 1 {
		return true
	}
	v := splitmix64(seed ^ pointHash(p) ^ n)
	return float64(v>>11)/float64(1<<53) < ps.rule.Rate
}

// Inject is the hook the stack calls at an injection point. With no
// armed rule for p it returns nil. A firing KindError returns *Fault; a
// firing KindPanic panics with *Fault (call sites without an error path
// let an outer recover translate it); KindLatency sleeps then returns
// nil; KindMem allocates then returns nil; KindFlip returns nil here —
// cache sites ask ShouldCorrupt instead.
func (r *Registry) Inject(p Point) error {
	if r == nil {
		return nil
	}
	ps := r.points[p]
	if ps == nil || ps.rule.Kind == KindFlip {
		// Flip rules are evaluated only by ShouldCorrupt; consuming hit
		// numbers here would shift (and for @N triggers, swallow) them.
		return nil
	}
	n := ps.hits.Add(1)
	if !ps.fire(r.seed, p, n) {
		return nil
	}
	switch ps.rule.Kind {
	case KindPanic:
		ps.injected.Add(1)
		observe(p, KindPanic)
		panic(&Fault{Point: p, Kind: KindPanic, Hit: n})
	case KindError:
		ps.injected.Add(1)
		observe(p, KindError)
		return &Fault{Point: p, Kind: KindError, Hit: n}
	case KindLatency:
		ps.injected.Add(1)
		observe(p, KindLatency)
		time.Sleep(ps.rule.Latency)
	case KindMem:
		ps.injected.Add(1)
		observe(p, KindMem)
		buf := make([]byte, ps.rule.MemBytes)
		for i := 0; i < len(buf); i += 4096 {
			buf[i] = 1 // touch every page so the pressure is resident
		}
		ps.memHold.Store(&buf)
	}
	return nil
}

// ShouldCorrupt reports whether a KindFlip rule fires at p. Cache code
// calls it on the insert path to decide whether to corrupt the entry it
// is about to store (the chaos suite then asserts the corruption is
// caught on read, never served).
func (r *Registry) ShouldCorrupt(p Point) bool {
	if r == nil {
		return false
	}
	ps := r.points[p]
	if ps == nil || ps.rule.Kind != KindFlip {
		return false
	}
	n := ps.hits.Add(1)
	if !ps.fire(r.seed, p, n) {
		return false
	}
	ps.injected.Add(1)
	observe(p, KindFlip)
	return true
}

// Injected reports how many faults have fired at p so far.
func (r *Registry) Injected(p Point) uint64 {
	if r == nil {
		return 0
	}
	ps := r.points[p]
	if ps == nil {
		return 0
	}
	return ps.injected.Load()
}

// Hits reports how many times p has been evaluated so far.
func (r *Registry) Hits(p Point) uint64 {
	if r == nil {
		return 0
	}
	ps := r.points[p]
	if ps == nil {
		return 0
	}
	return ps.hits.Load()
}

// InjectedTotal sums fired faults across all points.
func (r *Registry) InjectedTotal() uint64 {
	if r == nil {
		return 0
	}
	var total uint64
	for _, ps := range r.points {
		total += ps.injected.Load()
	}
	return total
}

// ---------------------------------------------------------------------------
// Process-wide arming. The hooks compiled into core/engine/serve read one
// atomic pointer; a nil registry (the default) short-circuits in ~1ns.

var active atomic.Pointer[Registry]

// Arm installs r as the process-wide registry. Passing nil disarms.
func Arm(r *Registry) { active.Store(r) }

// Disarm removes the process-wide registry.
func Disarm() { active.Store(nil) }

// Active returns the armed registry, or nil.
func Active() *Registry { return active.Load() }

// Inject evaluates the process-wide registry at p. This is the form the
// stack's hooks call: disabled cost is one atomic load and a nil check.
func Inject(p Point) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	return r.Inject(p)
}

// ShouldCorrupt evaluates the process-wide registry's flip rule at p.
func ShouldCorrupt(p Point) bool {
	r := active.Load()
	if r == nil {
		return false
	}
	return r.ShouldCorrupt(p)
}

// ---------------------------------------------------------------------------
// Metrics bridge. obs (or serve) registers an observer to count fired
// faults as pip_faults_injected_total{point,kind}; the indirection keeps
// this package dependency-free.

var observer atomic.Pointer[func(Point, Kind)]

// SetObserver installs fn to be called once per fired fault. Passing nil
// removes it. The observer must be fast and must not call back into the
// registry.
func SetObserver(fn func(Point, Kind)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

func observe(p Point, k Kind) {
	if fn := observer.Load(); fn != nil {
		(*fn)(p, k)
	}
}

// IsFault reports whether err is (or wraps) an injected fault. The
// resilience layer treats these as transient and retry-eligible.
func IsFault(err error) bool {
	_, ok := AsFault(err)
	return ok
}

// AsFault unwraps err to the injected *Fault, if any.
func AsFault(err error) (*Fault, bool) {
	for err != nil {
		if f, ok := err.(*Fault); ok {
			return f, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}
