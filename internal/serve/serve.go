// Package serve is the long-running analysis service: an HTTP/JSON front
// end over a shared pip.Engine. Modules (MIR or mini-C) arrive one request
// at a time — the incomplete-program setting of the paper, where results
// must be usable before the whole program exists — and points-to/alias
// answers go back, sound no matter what the rest of the program turns out
// to be.
//
// The server is built around the lifecycle properties a daemon needs that
// a batch run does not:
//
//   - admission control: a bounded queue in front of a bounded number of
//     concurrent solves; requests beyond both bounds are rejected with
//     429 instead of piling up goroutines without limit;
//   - per-request budgets: a ?budget= parameter or request deadline maps
//     onto core.Budget, so an overloaded or slow solve returns the sound
//     Ω-degraded solution inside its deadline instead of timing out;
//   - a bounded solution cache: the shared engine's LRU keeps the hot set
//     resident and evicts the tail, so memory stays bounded under an
//     unbounded stream of distinct modules;
//   - graceful shutdown: Shutdown stops admitting work and drains every
//     in-flight solve before returning, so no accepted request is dropped;
//   - observability: /healthz for liveness/readiness, /metrics in
//     Prometheus text exposition format (the legacy JSON body remains at
//     /metrics?format=json), optional /debug/pprof/* profiling endpoints,
//     per-request IDs (X-Request-Id, accepted or generated) threaded
//     through structured logs and solve traces, and latency histograms
//     split into queue wait and solve time.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pip-analysis/pip"
	"github.com/pip-analysis/pip/internal/faults"
	"github.com/pip-analysis/pip/internal/obs"
)

// Options configures a Server. The zero value serves with sane defaults.
type Options struct {
	// Config is the solver configuration used when a request names none.
	// The zero value means pip.DefaultConfig().
	Config pip.Config
	// HasConfig marks Config as explicitly set (the zero Config is a valid
	// configuration, EP+Naive, so "unset" needs a flag).
	HasConfig bool

	// Workers bounds the engine pool used for batch endpoints; <= 0 means
	// GOMAXPROCS.
	Workers int
	// CacheEntries bounds the solution cache; <= 0 means DefaultCacheEntries.
	// A long-running server must not run an unbounded cache.
	CacheEntries int

	// MaxConcurrent bounds solves running at once; <= 0 means DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a solve slot; beyond it the
	// server answers 429. <= 0 means DefaultMaxQueue.
	MaxQueue int

	// MaxSessions bounds live incremental sessions (POST /v1/resolve
	// lineages). Each session holds the previous generation's constraint
	// summary and — on checkpointable configurations — the solver's
	// propagation state, so the count must stay bounded; beyond it the
	// least recently used session is evicted and its client's next resolve
	// starts a fresh lineage. <= 0 means DefaultMaxSessions.
	MaxSessions int

	// DefaultBudget bounds every solve that names no budget of its own.
	// Zero means unbudgeted (not recommended for exposed servers).
	DefaultBudget pip.Budget

	// SolveWorkers is the default intra-solve worker count folded into
	// every request whose configuration leaves it unset: 0 keeps the
	// legacy sequential solver, >= 1 runs stratified parallel
	// presaturation inside each solve (bit-identical answers for every
	// count >= 1).
	SolveWorkers int

	// MaxBodyBytes bounds request bodies; <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// LogWriter receives structured (JSON) request logs; nil disables
	// request logging.
	LogWriter io.Writer

	// Summaries are extra imported-function summaries applied to every
	// analyzed module.
	Summaries map[string]pip.Summary

	// Trace, when non-nil, records every solve's phase spans onto a
	// request-scoped lane of the trace, named by the request's ID — so a
	// captured trace file can be cross-referenced against request logs.
	Trace *pip.Trace

	// EnablePprof exposes net/http/pprof under /debug/pprof/*. Off by
	// default: the profiling endpoints reveal internals (heap contents,
	// goroutine stacks) that an exposed analysis service must not leak.
	EnablePprof bool

	// Breaker configures the circuit breaker in front of admission. The
	// zero value enables it with conservative defaults (see BreakerOptions);
	// set Disabled to turn it off.
	Breaker BreakerOptions

	// Retries re-solves transiently failed jobs (recovered panics,
	// injected faults) on the shared engine; 0 disables retry.
	Retries int
	// WatchdogFactor abandons solves stuck past WatchdogFactor× their wall
	// deadline and answers with the sound Ω-degradation; <= 0 disables.
	WatchdogFactor int
	// MemSoftLimit switches new solves to TightBudget while the heap
	// exceeds this many bytes; 0 disables the guard.
	MemSoftLimit uint64
	// TightBudget is the budget applied under memory pressure.
	TightBudget pip.Budget

	// FlightRecords bounds the flight recorder's ring of recent completed
	// request records; <= 0 means obs.DefaultFlightRecords.
	FlightRecords int
	// FlightDumps bounds retained anomaly dumps (served at
	// GET /debug/flightrec); <= 0 means obs.DefaultFlightDumps.
	FlightDumps int
	// FlightDir, when non-empty, writes each anomaly dump to a
	// timestamped JSON file under it. Empty keeps dumps in memory only.
	FlightDir string
	// OnFlightDump, when non-nil, runs after each anomaly dump is
	// recorded (pipserve wires it to checkpoint the -trace file, so a
	// crash shortly after an anomaly still leaves the tail on disk).
	OnFlightDump func(reason string)
}

// Defaults for the zero Options value.
const (
	DefaultCacheEntries  = 1024
	DefaultMaxConcurrent = 8
	DefaultMaxQueue      = 64
	DefaultMaxBodyBytes  = 8 << 20
	DefaultMaxSessions   = 64
)

// Server is the analysis service. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	opts Options
	eng  *pip.Engine
	log  *slog.Logger
	mux  *http.ServeMux

	// queueSlots bounds admitted-but-not-yet-running requests, runSlots
	// bounds concurrent solves. Admission takes a queue slot without
	// blocking (full queue → 429), then blocks for a run slot.
	queueSlots chan struct{}
	runSlots   chan struct{}

	// inFlight tracks admitted requests for the shutdown drain. admitMu
	// orders admission against Shutdown: without it a request could pass
	// the draining check, lose the CPU while Shutdown flips the flag and
	// starts Wait() on a zero counter, and only then Add(1) — an admitted
	// request the drain never waits for (and a WaitGroup Add/Wait race).
	admitMu  sync.Mutex
	inFlight sync.WaitGroup
	draining atomic.Bool

	// Request counters, exported on /metrics.
	accepted    atomic.Int64 // admitted analysis requests
	rejected    atomic.Int64 // 429s from admission control
	badRequests atomic.Int64 // 4xx other than 429
	failures    atomic.Int64 // 5xx
	degraded    atomic.Int64 // solves that returned the Ω-degraded solution
	running     atomic.Int64 // solves currently holding a run slot
	queued      atomic.Int64 // requests currently waiting for a run slot

	// Latency histograms, exported on /metrics: queueWait is the time an
	// admitted request spends waiting for a run slot, solveLatency the
	// time inside the engine (generation + solve, or a cache hit). The
	// split is the useful one operationally — queue wait grows when the
	// server is saturated, solve latency when the modules get harder.
	queueWait    *obs.Histogram
	solveLatency *obs.Histogram

	// Incremental / demand request counters and the reused-constraints
	// histogram, exported on /metrics. The outcome split mirrors the three
	// incremental paths: resumed (checkpoint resume), reused (empty delta),
	// fallback (from-scratch re-solve).
	sessions     *sessionStore
	incrResumed  atomic.Int64
	incrReused   atomic.Int64
	incrFallback atomic.Int64
	incrReusedC  *obs.Histogram // reused constraints per incremental request
	demandReqs   atomic.Int64

	// breaker sheds load when the failure/degradation rate over recent
	// requests says the server is in distress; breakerRejected counts the
	// requests it turned away (they were never admitted).
	breaker         *breaker
	breakerRejected atomic.Int64
	panics          atomic.Int64 // handler panics converted to 500s

	// faultCounts tallies injected faults by (point, kind) for the
	// pip_faults_injected_total metric, fed by the faults observer.
	faultMu     sync.Mutex
	faultCounts map[[2]string]int64

	// traces indexes per-trace-ID recorders for GET /debug/trace; flight
	// is the anomaly flight recorder behind GET /debug/flightrec.
	// traceDropped accumulates spans dropped by saturated per-trace
	// rings (pip_trace_dropped_total).
	traces       *traceIndex
	flight       *obs.FlightRecorder
	traceDropped atomic.Uint64
}

// New returns a server around a fresh shared engine.
func New(opts Options) *Server {
	if !opts.HasConfig {
		opts.Config = pip.DefaultConfig()
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = DefaultCacheEntries
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = DefaultMaxConcurrent
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = DefaultMaxQueue
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	s := &Server{
		opts:         opts,
		queueSlots:   make(chan struct{}, opts.MaxQueue+opts.MaxConcurrent),
		runSlots:     make(chan struct{}, opts.MaxConcurrent),
		mux:          http.NewServeMux(),
		queueWait:    obs.NewHistogram(obs.LatencyBuckets()...),
		solveLatency: obs.NewHistogram(obs.LatencyBuckets()...),
		sessions:     newSessionStore(opts.MaxSessions),
		incrReusedC:  obs.NewHistogram(10, 100, 1e3, 1e4, 1e5, 1e6),
		breaker:      newBreaker(opts.Breaker),
		faultCounts:  map[[2]string]int64{},
		traces:       newTraceIndex(DefaultTraceIndexSize, DefaultTraceRecords),
	}
	// The flight recorder and the engine's anomaly hook reference each
	// other through s, so both are wired after the struct exists and
	// before any traffic. The metrics scrape and breaker notify run
	// outside their owners' locks (see obs.FlightRecorder and breaker),
	// so a dump can safely read engine stats and breaker snapshots.
	s.flight = obs.NewFlightRecorder(obs.FlightRecorderOptions{
		Records: opts.FlightRecords,
		Dumps:   opts.FlightDumps,
		Dir:     opts.FlightDir,
		Metrics: func() string {
			var b strings.Builder
			s.writeProm(&b)
			return b.String()
		},
		OnDump: func(d *obs.Dump) {
			s.log.Info("flight recorder dump", "reason", d.Reason, "detail", d.Detail, "file", d.File)
			if opts.OnFlightDump != nil {
				opts.OnFlightDump(d.Reason)
			}
		},
	})
	s.eng = pip.NewEngine(pip.BatchOptions{
		Workers:        opts.Workers,
		Cache:          true,
		CacheEntries:   opts.CacheEntries,
		SolveWorkers:   opts.SolveWorkers,
		Retries:        opts.Retries,
		WatchdogFactor: opts.WatchdogFactor,
		MemSoftLimit:   opts.MemSoftLimit,
		TightBudget:    opts.TightBudget,
		OnAnomaly: func(reason, detail string) {
			s.flight.Trigger(reason, detail)
		},
	})
	s.breaker.notify = func(from, to breakerState) {
		switch to {
		case breakerOpen:
			s.flight.Trigger(flightTriggerBreaker, "server breaker "+from.String()+"->open")
		case breakerHalfOpen:
			s.flight.Trigger(flightTriggerBreakerHalf, "server breaker open->half-open")
		}
	}
	if opts.LogWriter != nil {
		s.log = slog.New(slog.NewJSONHandler(opts.LogWriter, nil))
	} else {
		s.log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
	}
	// Count injected faults by (point, kind) for /metrics. The observer is
	// process-global like the fault registry itself; the most recently
	// created server owns it, which is the one under chaos in practice.
	faults.SetObserver(func(p faults.Point, k faults.Kind) {
		s.faultMu.Lock()
		s.faultCounts[[2]string{string(p), k.String()}]++
		s.faultMu.Unlock()
	})
	analysis := func(h http.HandlerFunc) http.HandlerFunc {
		return s.requestID(withTraceID(s.traced(s.logged(s.breakered(s.recovered(s.admitted(h)))))))
	}
	s.mux.HandleFunc("POST /v1/solve", analysis(s.handleSolve))
	s.mux.HandleFunc("POST /v1/alias", analysis(s.handleAlias))
	s.mux.HandleFunc("POST /v1/resolve", analysis(s.handleResolve))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace", s.handleTrace)
	s.mux.HandleFunc("GET /debug/flightrec", s.handleFlightrec)
	if opts.EnablePprof {
		// net/http/pprof registers on DefaultServeMux at import; route the
		// same handlers explicitly so they exist only when enabled.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// requestIDKey carries the request's ID through its context.
type requestIDKey struct{}

// requestID accepts a caller-supplied X-Request-Id (so the analysis
// service slots into a tracing mesh) or generates one, echoes it on the
// response, and stores it in the request context for logging and trace
// attachment. Caller-supplied IDs are dropped when unprintable or
// oversized — they end up in logs and trace files verbatim. Shared with
// the shard router, which threads the same ID to every backend attempt.
func withRequestID(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 128 || strings.ContainsFunc(id, func(c rune) bool {
			return c < 0x20 || c > 0x7e
		}) {
			id = obs.NewID()
		}
		w.Header().Set("X-Request-Id", id)
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		h(w, r.WithContext(ctx))
	}
}

func (s *Server) requestID(h http.HandlerFunc) http.HandlerFunc {
	return withRequestID(h)
}

// requestIDFrom returns the request's ID, or "" outside the middleware.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// Engine returns the server's shared engine (for expvar publishing).
func (s *Server) Engine() *pip.Engine { return s.eng }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: new analysis requests are refused with 503,
// /healthz flips to draining, and Shutdown blocks until every in-flight
// solve has finished or ctx expires. It returns ctx.Err() on a timed-out
// drain, nil on a clean one. No admitted request is ever dropped: whatever
// was past admission when Shutdown began completes and its response is
// written as usual.
func (s *Server) Shutdown(ctx context.Context) error {
	s.admitMu.Lock()
	s.draining.Store(true)
	s.admitMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inFlight.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Graceful drain: flush every resident cached solution to the
		// persistent store (when one is attached) so the next process
		// start over the same directory is warm. Failure costs only
		// warmth, never correctness — log it and drain clean anyway.
		if err := s.eng.SyncStore(); err != nil {
			s.log.Error("store flush on drain", "err", err)
		}
		return nil
	case <-ctx.Done():
		// Timed-out drain: still flush what we can, best effort.
		if err := s.eng.SyncStore(); err != nil {
			s.log.Error("store flush on timed-out drain", "err", err)
		}
		return ctx.Err()
	}
}

// OpenStore attaches a persistent solution store rooted at dir to the
// server's engine (see pip.Engine.OpenStore): restarts over the same
// directory answer their previous working set from verified disk hits
// instead of re-solving. Call before serving traffic.
func (s *Server) OpenStore(dir string) error { return s.eng.OpenStore(dir) }

// CloseStore flushes and closes the persistent store, if one is attached.
// Call after Shutdown has drained.
func (s *Server) CloseStore() error { return s.eng.CloseStore() }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusWriter captures the response status for request logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// logged wraps a handler with structured request logging.
func (s *Server) logged(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
			"remote", r.RemoteAddr,
			"request_id", requestIDFrom(r.Context()),
		)
	}
}

// outcomeWriter extends statusWriter with the one outcome bit the status
// code cannot carry: whether the solve came back Ω-degraded. The breaker
// treats both 5xx and degradation as "bad" — a window full of either
// means the server is not producing exact answers anymore.
type outcomeWriter struct {
	http.ResponseWriter
	status   int
	degraded bool
}

func (w *outcomeWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// markDegraded records a degradation on every outcome writer wrapping the
// request. Two middlewares each hold one: the breaker (feeding its
// bad-outcome window) and the tracing middleware (feeding the flight
// recorder and the degraded trigger), with the logging statusWriter in
// between — so this walks the whole wrapper chain. Outside the middleware
// stack it is a no-op.
func markDegraded(w http.ResponseWriter) {
	for w != nil {
		switch t := w.(type) {
		case *outcomeWriter:
			t.degraded = true
			w = t.ResponseWriter
		case *statusWriter:
			w = t.ResponseWriter
		default:
			return
		}
	}
}

// retryAfterSeconds renders a shed delay as a Retry-After value: whole
// seconds, rounded UP, floored at 1. Rounding down would tell well-behaved
// clients to retry after "0" seconds whenever the remaining cooldown is
// sub-second — an instruction to hammer a server that is shedding load.
// Every shed path (breaker 503, admission 429/503, drain 503) goes
// through this helper so none of them can regress to a zero.
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// breakered wraps an analysis handler with the circuit breaker: shed
// immediately with 503 + Retry-After while the breaker is open, feed
// every completed request's outcome back into its window. Shed requests
// are never admitted, so the shutdown drain guarantee is untouched.
func (s *Server) breakered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ok, retryAfter := s.breaker.allow()
		if !ok {
			s.breakerRejected.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
			s.writeError(w, http.StatusServiceUnavailable, "circuit breaker open: server is shedding load")
			return
		}
		ow := &outcomeWriter{ResponseWriter: w, status: http.StatusOK}
		h(ow, r)
		s.breaker.record(ow.status >= 500 || ow.degraded)
	}
}

// recovered converts a handler panic into a 500 instead of killing the
// connection (and, one level up, feeds the breaker a failure). The
// admission middleware sits inside this wrapper, so its deferred slot
// releases and inFlight.Done run during the unwind before the recovery —
// a panicking request still drains cleanly.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				s.log.Error("handler panic",
					"panic", fmt.Sprint(rec),
					"request_id", requestIDFrom(r.Context()))
				s.writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		h(w, r)
	}
}

// admitted wraps an analysis handler with the drain check and admission
// control: take a queue slot without blocking (429 when the server is
// saturated), then block for a run slot.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Chaos hook: an admission fault refuses the request before it is
		// admitted (no slot taken, not counted in the drain), exactly like
		// a transient front-door failure. Panics propagate to recovered.
		if err := faults.Inject(faults.ServeAdmission); err != nil {
			w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
			s.writeError(w, http.StatusServiceUnavailable, "admission failed, retry")
			return
		}
		s.admitMu.Lock()
		if s.draining.Load() {
			s.admitMu.Unlock()
			// A draining server is gone in moments; point clients at its
			// successor (or restart) after a beat rather than immediately.
			w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
			s.writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		select {
		case s.queueSlots <- struct{}{}:
		default:
			s.admitMu.Unlock()
			s.rejected.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
			s.writeError(w, http.StatusTooManyRequests, "server overloaded: request queue full")
			return
		}
		s.inFlight.Add(1)
		s.admitMu.Unlock()
		s.accepted.Add(1)
		s.queued.Add(1)
		defer func() {
			<-s.queueSlots
			s.inFlight.Done()
		}()
		// Wait for a run slot; give up if the client goes away first. The
		// wait is also a span on the request's trace lane, so a cluster
		// trace shows queue pressure per backend, not just in aggregate.
		var qspan obs.Span
		if rt := reqTraceFrom(r.Context()); rt != nil {
			qspan = rt.lane.Begin("queue-wait")
		}
		waitStart := time.Now()
		select {
		case s.runSlots <- struct{}{}:
		case <-r.Context().Done():
			s.queued.Add(-1)
			qspan.End(obs.S("outcome", "client-gone"))
			s.writeError(w, http.StatusServiceUnavailable, "client gave up while queued")
			return
		}
		s.queueWait.Observe(time.Since(waitStart).Seconds())
		qspan.End()
		s.queued.Add(-1)
		s.running.Add(1)
		defer func() {
			<-s.runSlots
			s.running.Add(-1)
		}()
		h(w, r)
	}
}

// writeJSON writes v with the given status; encoding failures turn into a
// plain 500 (v is built from marshalable fields, so this is defensive).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
	switch {
	case status == http.StatusTooManyRequests:
		// counted at the admission site
	case status >= 500:
		s.failures.Add(1)
	case status >= 400:
		s.badRequests.Add(1)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, errorResponse{Error: msg})
}
