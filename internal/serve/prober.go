package serve

// The active health prober closes the gap between a backend dying and
// the router noticing: without it, a dead shard is only discovered when
// a user request fails into it (and recovery waits for a user request
// to probe through half-open). The prober polls every resident
// backend's /healthz on a jittered interval and feeds the verdicts into
// the existing per-backend circuit breakers — consecutive failures
// force the breaker open before any user pays for the discovery,
// consecutive successes close it without waiting for canary traffic.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// ProbeOptions configures the router's active health prober.
type ProbeOptions struct {
	// Disabled turns the prober off; breakers then move only on user
	// traffic, as before.
	Disabled bool
	// Interval is the nominal probe cycle; each cycle waits a jittered
	// [Interval/2, 3·Interval/2) so a fleet of routers does not probe in
	// lockstep. <= 0 means DefaultProbeInterval.
	Interval time.Duration
	// Timeout bounds one probe request; <= 0 means DefaultProbeTimeout.
	Timeout time.Duration
	// FailThreshold is how many consecutive probe failures force the
	// backend's breaker open; <= 0 means DefaultProbeFailThreshold.
	FailThreshold int
	// SuccessThreshold is how many consecutive probe successes close an
	// open breaker; <= 0 means DefaultProbeSuccessThreshold.
	SuccessThreshold int
}

// Defaults for the zero ProbeOptions value.
const (
	DefaultProbeInterval         = 2 * time.Second
	DefaultProbeTimeout          = 2 * time.Second
	DefaultProbeFailThreshold    = 3
	DefaultProbeSuccessThreshold = 2
)

func (o ProbeOptions) withDefaults() ProbeOptions {
	if o.Interval <= 0 {
		o.Interval = DefaultProbeInterval
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultProbeTimeout
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = DefaultProbeFailThreshold
	}
	if o.SuccessThreshold <= 0 {
		o.SuccessThreshold = DefaultProbeSuccessThreshold
	}
	return o
}

// proberLoop runs on its own goroutine until Close. Each cycle loads
// the current ring snapshot, so backends added at runtime are probed
// from the next cycle and removed ones stop being probed.
func (rt *Router) proberLoop() {
	for {
		wait := rt.probeOpts.Interval/2 + time.Duration(rand.Int63n(int64(rt.probeOpts.Interval)))
		select {
		case <-rt.probeStop:
			return
		case <-time.After(wait):
		}
		snap := rt.snap.Load()
		for _, b := range snap.backends {
			select {
			case <-rt.probeStop:
				return
			default:
			}
			rt.probeOne(b)
		}
	}
}

// probeOne polls one backend's /healthz and updates its consecutive
// fail/success streaks. The streak counters are plain ints touched only
// by the prober goroutine; the breaker transitions they drive are the
// same mutexed state machine user traffic uses.
func (rt *Router) probeOne(b *routerBackend) {
	rt.probesTotal.Add(1)
	b.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeOpts.Timeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err == nil {
		resp, derr := rt.client.Do(req)
		if derr == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if ok {
		b.consecFail = 0
		b.consecOK++
		if b.consecOK >= rt.probeOpts.SuccessThreshold {
			if st, _ := b.breaker.snapshot(); st != breakerClosed {
				b.breaker.forceClose()
				rt.log.Info("probe recovery closed breaker", "backend", b.url)
			}
		}
		return
	}
	b.probeFails.Add(1)
	rt.probeFailsTotal.Add(1)
	b.consecOK = 0
	b.consecFail++
	if b.consecFail >= rt.probeOpts.FailThreshold {
		if st, _ := b.breaker.snapshot(); st != breakerOpen {
			b.breaker.forceOpen()
			rt.flight.Trigger(flightTriggerProbeFail,
				fmt.Sprintf("backend %s: %d consecutive health-probe failures", b.url, b.consecFail))
		}
	}
}
