package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const solveSrc = `
static int x;
int *p = &x;
extern void take(int**);
void f() { take(&p); }
`

// postJSON sends body to path and decodes the JSON response into out.
func postJSON(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestSolveEndpoint(t *testing.T) {
	var logs bytes.Buffer
	s := New(Options{LogWriter: &logs})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Query mode: named points-to sets.
	var resp solveResponse
	code := postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Queries:       []string{"p", "nosuch"},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("solve returned %d", code)
	}
	if resp.Degraded || resp.CacheHit {
		t.Fatalf("first solve: degraded=%v cacheHit=%v", resp.Degraded, resp.CacheHit)
	}
	pe := resp.PointsTo["p"]
	if !pe.External {
		t.Fatal("@p escaped through take() but external not reported")
	}
	found := false
	for _, tgt := range pe.Targets {
		if tgt == "@x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("PointsTo(p) lacks @x: %+v", pe)
	}
	if resp.PointsTo["nosuch"].Error == "" {
		t.Fatal("unknown query name did not report a per-query error")
	}
	if len(resp.Escaped) == 0 {
		t.Fatal("escaped set empty")
	}
	if resp.Config == "" || resp.Dump != "" {
		t.Fatalf("unexpected response shape: %+v", resp)
	}

	// Second identical request is served from the cache.
	var resp2 solveResponse
	postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{Name: "t.c", C: solveSrc},
		Queries:       []string{"p"},
	}, &resp2)
	if !resp2.CacheHit {
		t.Fatal("identical module+config not served from cache")
	}
	if resp2.DurationNS != 0 {
		t.Fatalf("cache hit reports solve duration %d", resp2.DurationNS)
	}

	// Dump mode (no queries) returns the full report.
	var dumpResp solveResponse
	postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{C: solveSrc},
	}, &dumpResp)
	if !strings.Contains(dumpResp.Dump, "@p ->") {
		t.Fatalf("dump missing points-to lines:\n%s", dumpResp.Dump)
	}

	// MIR input works too.
	var mirResp solveResponse
	code = postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{MIR: "module \"m\"\nglobal @g : ptr = null export\n"},
		Queries:       []string{"g"},
	}, &mirResp)
	if code != http.StatusOK {
		t.Fatalf("MIR solve returned %d", code)
	}
	if !mirResp.PointsTo["g"].External {
		t.Fatal("exported global must point to external memory")
	}

	// Structured request logs were written.
	if !strings.Contains(logs.String(), `"path":"/v1/solve"`) {
		t.Fatalf("no structured request log:\n%s", logs.String())
	}
}

func TestAliasEndpoint(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp aliasResponse
	code := postJSON(t, ts, "/v1/alias", aliasRequest{
		moduleRequest: moduleRequest{Name: "a.c", C: `
static int x; static int y;
int *p = &x; int *q = &y;
`},
		Pairs: [][2]string{{"p", "p"}, {"p", "q"}, {"p", "nosuch"}},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("alias returned %d", code)
	}
	if got := resp.Answers[0].Result; got != "MustAlias" {
		t.Fatalf("p vs p = %s", got)
	}
	if got := resp.Answers[1].Result; got != "NoAlias" {
		t.Fatalf("distinct globals p vs q = %s", got)
	}
	if resp.Answers[2].Error == "" {
		t.Fatal("unknown name did not report a per-pair error")
	}

	// Missing pairs is a client error.
	if code := postJSON(t, ts, "/v1/alias", aliasRequest{
		moduleRequest: moduleRequest{C: "int x;"},
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty pairs returned %d", code)
	}
}

// TestBudgetDegradation: a request whose budget cannot complete the solve
// gets the sound Ω-degraded answer with Degraded set — HTTP 200, never an
// error — and degraded solutions are not cached.
func TestBudgetDegradation(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, via := range []string{"body", "query"} {
		req := solveRequest{
			moduleRequest: moduleRequest{Name: "b.c", C: solveSrc},
			Queries:       []string{"p"},
		}
		path := "/v1/solve"
		if via == "body" {
			req.Budget = "-1f"
		} else {
			path += "?budget=-1f"
		}
		var resp solveResponse
		code := postJSON(t, ts, path, req, &resp)
		if code != http.StatusOK {
			t.Fatalf("budgeted solve via %s returned %d", via, code)
		}
		if !resp.Degraded {
			t.Fatalf("no-firings budget via %s did not degrade", via)
		}
		if resp.CacheHit {
			t.Fatalf("degraded solve via %s served from cache", via)
		}
		if !resp.PointsTo["p"].External {
			t.Fatal("degraded answer lost the external marker")
		}
	}

	// An already-expired request deadline (?timeout=) degrades too: the
	// deadline maps onto the budget via BudgetFromContext.
	var resp solveResponse
	code := postJSON(t, ts, "/v1/solve?timeout=1ns", solveRequest{
		moduleRequest: moduleRequest{Name: "b.c", C: solveSrc},
		Queries:       []string{"p"},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("timeout solve returned %d", code)
	}
	if !resp.Degraded {
		t.Fatal("expired request deadline did not degrade the solve")
	}
	if st := s.eng.Stats(); st.Degraded < 3 {
		t.Fatalf("engine stats lost degradations: %+v", st)
	}
}

// TestMalformedRequests: every client fault maps to 400 — never 500 — with
// a JSON error body.
func TestMalformedRequests(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"invalid JSON", `{"c": `},
		{"unknown field", `{"sources": "int x;"}`},
		{"no module", `{"name": "empty.c"}`},
		{"both module kinds", `{"c": "int x;", "mir": "module \"m\"\n"}`},
		{"C syntax error", `{"c": "int f( {"}`},
		{"bad MIR", `{"mir": "not a module"}`},
		{"bad config", `{"c": "int x;", "config": "BOGUS"}`},
		{"bad budget", `{"c": "int x;", "budget": "10parsecs"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: non-JSON error response: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (error %q)", tc.name, resp.StatusCode, e.Error)
		}
		if e.Error == "" {
			t.Fatalf("%s: empty error message", tc.name)
		}
	}
	// Bad query parameters too.
	for _, path := range []string{"/v1/solve?budget=xf", "/v1/solve?config=NOPE", "/v1/solve?timeout=-1s"} {
		if code := postJSON(t, ts, path, solveRequest{moduleRequest: moduleRequest{C: "int x;"}}, nil); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, code)
		}
	}
	if st := s.eng.Stats(); st.Jobs != 0 {
		t.Fatalf("malformed requests reached the engine: %+v", st)
	}
	var m metricsResponse
	getJSON(t, ts, "/metrics?format=json", &m)
	if m.Server.BadRequests == 0 || m.Server.Failures != 0 {
		t.Fatalf("bad requests not counted: %+v", m.Server)
	}
}

// TestAdmissionControlOverflow fills the run and queue slots, then asserts
// the next request bounces with 429 while the queued ones complete once
// capacity frees up.
func TestAdmissionControlOverflow(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only run slot so admitted requests stay queued.
	s.runSlots <- struct{}{}

	// Fill the queue: MaxQueue+MaxConcurrent = 2 admission slots.
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			var resp solveResponse
			results <- postJSON(t, ts, "/v1/solve", solveRequest{
				moduleRequest: moduleRequest{C: solveSrc},
				Queries:       []string{"p"},
			}, &resp)
		}()
	}
	// Wait until both requests hold admission slots.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queueSlots) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queued requests never took admission slots")
		}
		time.Sleep(time.Millisecond)
	}

	// The server is saturated: the next request must bounce immediately.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"c": "int x;"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Free the run slot: both queued requests complete successfully.
	<-s.runSlots
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("queued request %d finished with %d", i, code)
		}
	}
	var m metricsResponse
	getJSON(t, ts, "/metrics?format=json", &m)
	if m.Server.Rejected != 1 || m.Server.Accepted != 2 {
		t.Fatalf("admission counters: %+v", m.Server)
	}
}

// TestShutdownDrain: Shutdown refuses new work but blocks until every
// in-flight solve has written its response — no accepted request is
// dropped.
func TestShutdownDrain(t *testing.T) {
	s := New(Options{MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Hold the run slot so the in-flight request stays parked past
	// admission when Shutdown begins.
	s.runSlots <- struct{}{}
	result := make(chan int, 1)
	go func() {
		var resp solveResponse
		result <- postJSON(t, ts, "/v1/solve", solveRequest{
			moduleRequest: moduleRequest{C: solveSrc},
			Queries:       []string{"p"},
		}, &resp)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queueSlots) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Shutdown must wait for the in-flight request...
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a solve was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	// ...refuse new work...
	if code := postJSON(t, ts, "/v1/solve", solveRequest{
		moduleRequest: moduleRequest{C: "int x;"},
	}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server admitted work: %d", code)
	}
	var h healthzResponse
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz during drain: %d %+v", code, h)
	}

	// ...and finish once the solve completes.
	<-s.runSlots
	if code := <-result; code != http.StatusOK {
		t.Fatalf("in-flight request dropped during drain: %d", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	// A drain that cannot finish respects its context.
	s2 := New(Options{})
	s2.inFlight.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s2.Shutdown(ctx); err == nil {
		t.Fatal("stuck drain returned nil")
	}
	s2.inFlight.Done()
}

func TestHealthz(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var h healthzResponse
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, h)
	}
}

// TestConcurrentLoad is the acceptance scenario: ≥8 parallel clients with
// mixed cached/uncached/budgeted requests against a small cache cap. The
// server must answer every request, keep cache occupancy bounded, degrade
// budgeted solves soundly, and report /metrics consistent with the run.
func TestConcurrentLoad(t *testing.T) {
	const (
		cacheCap  = 4
		clients   = 8
		perClient = 12
	)
	s := New(Options{CacheEntries: cacheCap, MaxConcurrent: 4, MaxQueue: clients * perClient})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var (
		mu                         sync.Mutex
		ok, degraded, hits, solved int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := solveRequest{Queries: []string{"p"}}
				path := "/v1/solve"
				switch i % 3 {
				case 0: // hot module: identical content, cacheable
					req.C = solveSrc
					req.Name = "hot.c"
				case 1: // cold module: distinct content per client/iteration
					req.C = fmt.Sprintf("static int x_%d_%d;\nint *p = &x_%d_%d;\n", c, i, c, i)
					req.Name = fmt.Sprintf("cold_%d_%d.c", c, i)
				case 2: // budgeted: degrades deterministically
					req.C = solveSrc
					req.Name = "hot.c"
					req.Budget = "-1f"
				}
				var resp solveResponse
				code := postJSON(t, ts, path, req, &resp)
				if code != http.StatusOK {
					t.Errorf("client %d req %d: status %d", c, i, code)
					continue
				}
				if resp.PointsTo["p"].Error != "" {
					t.Errorf("client %d req %d: query error %q", c, i, resp.PointsTo["p"].Error)
				}
				mu.Lock()
				ok++
				if resp.Degraded {
					degraded++
				}
				if resp.CacheHit {
					hits++
				} else {
					solved++
				}
				if i%3 == 2 && !resp.Degraded {
					t.Errorf("client %d req %d: budgeted solve did not degrade", c, i)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	total := clients * perClient
	if ok != total {
		t.Fatalf("%d/%d requests succeeded", ok, total)
	}
	if hits == 0 {
		t.Fatal("hot module never hit the cache")
	}

	var m metricsResponse
	if code := getJSON(t, ts, "/metrics?format=json", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	// Engine counters line up with what the clients observed.
	if m.Engine.Jobs != total {
		t.Fatalf("engine jobs %d, want %d", m.Engine.Jobs, total)
	}
	if m.Engine.CacheHits != hits {
		t.Fatalf("engine cache hits %d, clients saw %d", m.Engine.CacheHits, hits)
	}
	if m.Engine.Degraded != degraded || m.Server.Degraded != int64(degraded) {
		t.Fatalf("degradations: engine %d server %d clients %d",
			m.Engine.Degraded, m.Server.Degraded, degraded)
	}
	if m.Engine.Failures != 0 || m.Server.Failures != 0 {
		t.Fatalf("failures: %+v / %+v", m.Engine, m.Server)
	}
	// The cache stayed bounded despite ~cold-module churn, and the churn
	// beyond the cap shows up as evictions.
	if m.Cache.Entries > cacheCap || m.Cache.Capacity != cacheCap {
		t.Fatalf("cache occupancy %d exceeds cap %d", m.Cache.Entries, cacheCap)
	}
	if m.Cache.Evictions == 0 {
		t.Fatal("cold churn produced no evictions")
	}
	if m.Server.Accepted != int64(total+0) || m.Server.Rejected != 0 {
		t.Fatalf("admission counters: %+v", m.Server)
	}
	if m.Server.InFlight != 0 || m.Server.Queued != 0 {
		t.Fatalf("idle server reports in-flight work: %+v", m.Server)
	}
	if m.Engine.Wall <= 0 || m.Engine.CPU <= 0 {
		t.Fatalf("engine timing counters empty: wall=%v cpu=%v", m.Engine.Wall, m.Engine.CPU)
	}
}
