package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pip-analysis/pip/internal/faults"
)

// armServeFaults arms a fault spec for one test and disarms on exit (the
// registry is process-global).
func armServeFaults(t *testing.T, spec string) {
	t.Helper()
	reg, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatalf("bad fault spec %q: %v", spec, err)
	}
	faults.Arm(reg)
	t.Cleanup(faults.Disarm)
}

// fastBreaker is a breaker configuration small enough to trip and recover
// inside a test.
func fastBreaker() BreakerOptions {
	return BreakerOptions{Window: 8, MinSamples: 4, Threshold: 0.5, Cooldown: 50 * time.Millisecond, Probes: 2}
}

func TestBreakerStateMachine(t *testing.T) {
	b := newBreaker(fastBreaker())
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }

	// Healthy traffic keeps it closed.
	for i := 0; i < 10; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatal("closed breaker refused a request")
		}
		b.record(false)
	}
	// A burst of failures trips it at the threshold.
	for i := 0; i < 8; i++ {
		b.record(true)
	}
	if st, trips := b.snapshot(); st != breakerOpen || trips != 1 {
		t.Fatalf("breaker not open after failure burst: state=%v trips=%d", st, trips)
	}
	if ok, retryAfter := b.allow(); ok || retryAfter <= 0 {
		t.Fatalf("open breaker admitted a request (ok=%v retryAfter=%v)", ok, retryAfter)
	}
	// After the cooldown it goes half-open and admits exactly Probes probes.
	now = now.Add(60 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatalf("half-open breaker refused probe %d", i)
		}
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("half-open breaker admitted more than Probes requests")
	}
	// One bad probe re-trips.
	b.record(true)
	if st, trips := b.snapshot(); st != breakerOpen || trips != 2 {
		t.Fatalf("bad probe did not re-trip: state=%v trips=%d", st, trips)
	}
	// Good probes close it again.
	now = now.Add(60 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatalf("half-open breaker refused probe %d after re-trip", i)
		}
		b.record(false)
	}
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("breaker did not re-close after good probes: state=%v", st)
	}
	if ok, _ := b.allow(); !ok {
		t.Fatal("re-closed breaker refused a request")
	}
}

func TestBreakerOpensAndReclosesOverHTTP(t *testing.T) {
	// Every handler pass fails while the fault is armed, so the window
	// fills with 500s and the breaker opens; after disarm and cooldown the
	// probes succeed and it closes again.
	armServeFaults(t, "seed=7;serve.handler=error:1")
	s := New(Options{Breaker: fastBreaker()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: solveSrc}}

	for i := 0; i < 4; i++ {
		if code := postJSON(t, ts, "/v1/solve", body, nil); code != http.StatusInternalServerError {
			t.Fatalf("request %d: got %d, want 500", i, code)
		}
	}
	if st, _ := s.breaker.snapshot(); st != breakerOpen {
		t.Fatalf("breaker not open after 4 consecutive 500s: %v", st)
	}
	// While open: immediate 503 with Retry-After, request never admitted.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker answered %d, want 503", resp.StatusCode)
	}
	assertRetryAfterFloor(t, resp)
	if s.breakerRejected.Load() == 0 {
		t.Fatal("shed request not counted in breakerRejected")
	}

	// Heal the server and wait out the cooldown: probes close the breaker.
	faults.Disarm()
	time.Sleep(60 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if code := postJSON(t, ts, "/v1/solve", body, nil); code != http.StatusOK {
			t.Fatalf("probe %d: got %d, want 200", i, code)
		}
	}
	if st, _ := s.breaker.snapshot(); st != breakerClosed {
		t.Fatalf("breaker did not re-close: %v", st)
	}
	if code := postJSON(t, ts, "/v1/solve", body, nil); code != http.StatusOK {
		t.Fatalf("post-recovery request failed: %d", code)
	}
}

func TestHandlerPanicRecoveredWithoutLeakingSlots(t *testing.T) {
	// Every request panics in the handler. With MaxConcurrent=2, more
	// panics than slots prove the admission defers release slots during
	// the unwind — otherwise the later requests would queue forever.
	armServeFaults(t, "seed=7;serve.handler=panic:1")
	s := New(Options{MaxConcurrent: 2, MaxQueue: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: solveSrc}}
	for i := 0; i < 5; i++ {
		if code := postJSON(t, ts, "/v1/solve", body, nil); code != http.StatusInternalServerError {
			t.Fatalf("panicking request %d: got %d, want 500", i, code)
		}
	}
	if got := s.panics.Load(); got != 5 {
		t.Fatalf("expected 5 recovered panics, got %d", got)
	}
	faults.Disarm()
	if code := postJSON(t, ts, "/v1/solve", body, nil); code != http.StatusOK {
		t.Fatalf("server broken after recovered panics: %d", code)
	}
}

func TestAdmissionFaultRejectsBeforeAdmission(t *testing.T) {
	armServeFaults(t, "seed=7;serve.admission=error:1")
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: solveSrc}}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(mustJSON(t, body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission fault answered %d, want 503", resp.StatusCode)
	}
	assertRetryAfterFloor(t, resp)
	// The request was refused before admission: nothing to drain, nothing
	// accepted.
	var m metricsResponse
	getJSON(t, ts, "/metrics?format=json", &m)
	if m.Server.Accepted != 0 {
		t.Fatalf("admission-faulted request was counted as accepted: %+v", m.Server)
	}
}

// TestDrainUnderFault is the satellite drain scenario: shutdown begins
// while the breaker is open and retried solves are still in flight. Every
// admitted request must still receive its response — the drain guarantee
// holds under chaos, with shed and refused requests answered 503 and
// never admitted in the first place.
func TestDrainUnderFault(t *testing.T) {
	// Slow every solve down (latency at core.solve) and make dispatch
	// flaky enough that the retry layer is exercised while the drain runs.
	armServeFaults(t, "seed=11;core.solve=latency:1:100ms;engine.dispatch=error:0.4")
	s := New(Options{
		MaxConcurrent: 3,
		MaxQueue:      16,
		Retries:       3,
		Breaker:       fastBreaker(),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 10
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct modules defeat the cache and coalescing, so every
			// request is a real (slow, flaky) solve.
			src := fmt.Sprintf("static int x%d; int *p%d = &x%d;", i, i, i)
			body := solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: src}}
			codes[i] = postJSON(t, ts, "/v1/solve", body, nil)
		}(i)
	}

	// Give the burst time to be admitted and start solving, then open the
	// breaker by hand and begin the drain while solves (and their retries)
	// are still running.
	time.Sleep(30 * time.Millisecond)
	s.breaker.mu.Lock()
	s.breaker.trip()
	s.breaker.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	wg.Wait()

	// Every client got a definitive answer: solved (200), admission-refused
	// (429), or shed/refused with 503. Nothing hung, nothing was dropped
	// mid-solve. (engine.dispatch faults at 40% with 3 retries can still
	// produce the odd 500 — that is a delivered response too.)
	for i, code := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests,
			http.StatusServiceUnavailable, http.StatusInternalServerError:
		default:
			t.Fatalf("request %d: no definitive response (code %d)", i, code)
		}
	}
	var m metricsResponse
	getJSON(t, ts, "/metrics?format=json", &m)
	if m.Server.InFlight != 0 || m.Server.Queued != 0 {
		t.Fatalf("drain left work behind: %+v", m.Server)
	}
	if !m.Server.Draining {
		t.Fatal("server not marked draining after Shutdown")
	}
	// New work is refused once draining.
	body := solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: solveSrc}}
	if code := postJSON(t, ts, "/v1/solve", body, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server admitted new work: %d", code)
	}
}

func TestMetricsExposeResilience(t *testing.T) {
	armServeFaults(t, "seed=7;serve.handler=error:@1")
	s := New(Options{Retries: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := solveRequest{moduleRequest: moduleRequest{Name: "t.c", C: solveSrc}}
	postJSON(t, ts, "/v1/solve", body, nil) // hit #1 injects, filling the fault counter
	postJSON(t, ts, "/v1/solve", body, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pip_breaker_state 0",
		"pip_breaker_trips_total 0",
		"pip_breaker_rejected_total 0",
		"pip_retries_total",
		"pip_watchdog_fired_total",
		"pip_budget_tightened_total",
		"pip_cache_corrupt_total",
		"pip_coalesced_total",
		"pip_handler_panics_total",
		`pip_faults_injected_total{point="serve.handler",kind="error"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestRetryAfterSeconds pins the helper's contract: ceil to whole
// seconds, floored at 1 — sub-second cooldowns must never truncate to 0.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// assertRetryAfterFloor checks the shed-path contract: every 429/503
// carries a Retry-After that is a whole number of seconds >= 1. A "0"
// (sub-second delay truncated down) would instruct well-behaved clients
// to hammer a server that is shedding load.
func assertRetryAfterFloor(t *testing.T, resp *http.Response) {
	t.Helper()
	v := resp.Header.Get("Retry-After")
	if v == "" {
		t.Fatalf("%d response missing Retry-After", resp.StatusCode)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", v)
	}
}

// TestShedPathsRetryAfterAtLeastOne drives each shed path — open breaker
// 503, queue-full 429, draining 503 — and asserts the floor directly. The
// breaker's 10ms cooldown makes its remaining delay sub-second, the case
// that integer-second truncation used to render as "0".
func TestShedPathsRetryAfterAtLeastOne(t *testing.T) {
	s := New(Options{
		MaxConcurrent: 1,
		MaxQueue:      1,
		Breaker:       BreakerOptions{Window: 4, MinSamples: 2, Threshold: 0.5, Cooldown: 10 * time.Millisecond, Probes: 1},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	post := func() *http.Response {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Open breaker: trip by hand so the whole cooldown (10ms) remains.
	s.breaker.mu.Lock()
	s.breaker.trip()
	s.breaker.mu.Unlock()
	resp := post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker answered %d, want 503", resp.StatusCode)
	}
	assertRetryAfterFloor(t, resp)
	// Wait out the cooldown and let one probe (a 4xx is not a breaker
	// failure) re-close it, so the later paths are not shadowed by the
	// breaker.
	time.Sleep(20 * time.Millisecond)
	post()

	// Queue full: occupy every admission slot so the non-blocking take in
	// admitted fails.
	for i := 0; i < cap(s.queueSlots); i++ {
		s.queueSlots <- struct{}{}
	}
	resp = post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	assertRetryAfterFloor(t, resp)
	for i := 0; i < cap(s.queueSlots); i++ {
		<-s.queueSlots
	}

	// Draining: a post-shutdown request is refused with a pointer at the
	// successor.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp = post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d, want 503", resp.StatusCode)
	}
	assertRetryAfterFloor(t, resp)
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
